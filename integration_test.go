package patdnn

// Integration tests spanning module boundaries: training → pruning →
// compilation → serialization → deserialization → parallel execution, with
// numeric equivalence asserted at every hand-off.

import (
	"bytes"
	"math/rand"
	"testing"

	"patdnn/internal/admm"
	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/compiler/reorder"
	"patdnn/internal/dataset"
	"patdnn/internal/model"
	"patdnn/internal/modelfile"
	"patdnn/internal/nn"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

// TestCompileSaveLoadExecute checks the deployment chain: a pruned layer
// compiled, serialized to the compact model format, reloaded, recompiled,
// and executed must produce FP16-close outputs to the original, at every
// optimization level, through the parallel runtime.
func TestCompileSaveLoadExecute(t *testing.T) {
	m := model.VGG16("cifar10")
	rng := rand.New(rand.NewSource(3))
	var file modelfile.File
	file.LR = &lr.Representation{Model: m.Name, Device: "CPU"}
	var biases [][]float32
	for _, l := range m.ConvLayers()[1:3] {
		c := pruned.Generate(l, pattern.Canonical(8), 3.6, 11, true)
		bias := make([]float32, c.OutC)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		biases = append(biases, bias)
		file.Layers = append(file.Layers, modelfile.Layer{Conv: c, Bias: bias})
		file.LR.Layers = append(file.LR.Layers,
			lr.FromPruned(c, reorder.Build(c), lr.DefaultTuning()))
	}

	var buf bytes.Buffer
	if err := modelfile.Write(&buf, &file); err != nil {
		t.Fatal(err)
	}
	loaded, err := modelfile.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	pool := runtime.NewPool(4)
	for i, orig := range file.Layers {
		in := tensor.New(orig.Conv.InC, orig.Conv.InH, orig.Conv.InW)
		in.Randn(rng, 1)
		for _, level := range []codegen.Level{codegen.NoOpt, codegen.Tuned} {
			p1, err := codegen.Compile(orig.Conv, level, lr.DefaultTuning())
			if err != nil {
				t.Fatal(err)
			}
			p2, err := codegen.Compile(loaded.Layers[i].Conv, level, lr.DefaultTuning())
			if err != nil {
				t.Fatal(err)
			}
			want := pool.RunLayer(p1, in, biases[i])
			got := pool.RunLayer(p2, in, loaded.Layers[i].Bias)
			// FP16 storage allows small relative error, amplified by the
			// accumulation over up to 64 input channels.
			if d := got.MaxAbsDiff(want); d > 0.05 {
				t.Fatalf("layer %d level %v: save/load diverged by %g", i, level, d)
			}
		}
	}
}

// TestPruneCompileAccuracyChain runs the full algorithmic pipeline on real
// data: dense training, ADMM pruning, per-layer compilation, and whole-network
// inference through the compiled kernels — predictions must match the pruned
// reference network exactly (the compiled path computes the same function).
func TestPruneCompileAccuracyChain(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a CNN")
	}
	cfg := dataset.DefaultConfig()
	cfg.N = 200
	data := dataset.Synthetic(cfg)
	train, test := data.Split(0.8)
	net := nn.SmallCNN(cfg.C, cfg.H, cfg.W, 6, 8, cfg.Classes, 3)
	nn.Train(net, train, nn.NewAdam(0.004), nn.TrainConfig{Epochs: 4, BatchSize: 16, Seed: 1})

	acfg := admm.DefaultConfig(pattern.Canonical(8))
	acfg.Iterations, acfg.EpochsPerIt, acfg.FinetuneEps = 2, 1, 2
	acfg.SkipFirstConv = true
	rep, err := admm.Run(net, train, test, acfg)
	if err != nil {
		t.Fatal(err)
	}

	convs := net.ConvLayers()
	var plans []*codegen.Plan
	for _, pc := range rep.Pruned {
		p, err := codegen.Compile(pc, codegen.Tuned, lr.DefaultTuning())
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, p)
	}
	pool := runtime.NewPool(2)
	predictCompiled := func(img *tensor.Tensor) int {
		x := img
		for i, plan := range plans {
			x = pool.RunLayer(plan, x, convs[i].Bias.W.Data)
			tensor.ReLU(x)
			x, _ = tensor.MaxPool2D(x, 2)
		}
		var fc *nn.Dense
		for _, l := range net.Layers {
			if d, ok := l.(*nn.Dense); ok {
				fc = d
			}
		}
		return fc.Forward(x.Reshape(x.Len())).ArgMax()
	}
	for i, img := range test.Images {
		if got, want := predictCompiled(img), net.Predict(img); got != want {
			t.Fatalf("example %d: compiled %d vs reference %d", i, got, want)
		}
	}
}

// TestTrainPruneSaveRun closes the full product loop with REAL weights: a
// trained CNN is ADMM-pruned, saved via the facade to the compact model
// format, reloaded, recompiled, and the compiled loaded model must classify
// test examples like the in-memory pruned network (modulo FP16 storage).
func TestTrainPruneSaveRun(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a CNN")
	}
	cfg := dataset.DefaultConfig()
	cfg.N = 160
	data := dataset.Synthetic(cfg)
	train, test := data.Split(0.8)
	net := nn.SmallCNN(cfg.C, cfg.H, cfg.W, 6, 8, cfg.Classes, 3)
	nn.Train(net, train, nn.NewAdam(0.004), nn.TrainConfig{Epochs: 4, BatchSize: 16, Seed: 1})

	pc := DefaultPruneConfig()
	pc.Iterations, pc.EpochsPerIter, pc.FinetuneEps = 2, 1, 2
	res, err := Prune(net, train, test, pc)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SavePruned(net, res, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := modelfile.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Layers) != len(res.Layers) {
		t.Fatalf("loaded %d layers, want %d", len(loaded.Layers), len(res.Layers))
	}

	pool := runtime.NewPool(2)
	predictLoaded := func(img *tensor.Tensor) int {
		x := img
		for _, layer := range loaded.Layers {
			p, err := codegen.Compile(layer.Conv, codegen.Tuned, lr.DefaultTuning())
			if err != nil {
				t.Fatal(err)
			}
			x = pool.RunLayer(p, x, layer.Bias)
			tensor.ReLU(x)
			x, _ = tensor.MaxPool2D(x, 2)
		}
		var fc *nn.Dense
		for _, l := range net.Layers {
			if d, ok := l.(*nn.Dense); ok {
				fc = d
			}
		}
		return fc.Forward(x.Reshape(x.Len())).ArgMax()
	}
	agree := 0
	for _, img := range test.Images {
		if predictLoaded(img) == net.Predict(img) {
			agree++
		}
	}
	// FP16 storage may flip a marginal prediction, but the vast majority
	// must match.
	if agree < test.Len()*9/10 {
		t.Fatalf("only %d/%d predictions survive save/load", agree, test.Len())
	}
}

// TestFacadeAgainstInternalPipeline cross-checks the public facade against a
// manual assembly of the same pipeline.
func TestFacadeAgainstInternalPipeline(t *testing.T) {
	c, err := Compile("MBNT", "imagenet", 8, 3.6)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := c.EstimateLatencyMs("sd855", "gpu")
	if err != nil {
		t.Fatal(err)
	}
	// MobileNet-V2 is small; it must be deeply real-time on GPU.
	if gpu > 10 {
		t.Fatalf("MBNT GPU latency %.1f ms implausibly slow", gpu)
	}
	// Depthwise pattern pruning must be active: LR layers exist only for
	// standard convs, but latency must reflect DW pruning (compare against
	// a connectivity-only compile at rate 1 being slower).
	mnn, err := c.BaselineLatencyMs("mnn", "sd855", "gpu")
	if err != nil {
		t.Fatal(err)
	}
	if mnn <= gpu {
		t.Fatalf("MNN (%.2f) should be slower than PatDNN (%.2f)", mnn, gpu)
	}
}
