module patdnn

go 1.24
