package patdnn_test

// Testable godoc examples for the public API. They print invariants rather
// than raw floats so `go test` keeps them honest on every platform.

import (
	"context"
	"fmt"
	"log"

	"patdnn"
	"patdnn/internal/dataset"
	"patdnn/internal/nn"
)

// ExamplePrune runs the ADMM pattern+connectivity pruning pipeline on a tiny
// CNN over the synthetic training substrate.
func ExamplePrune() {
	cfg := dataset.DefaultConfig()
	cfg.N = 120
	data := dataset.Synthetic(cfg)
	train, test := data.Split(0.8)
	net := nn.SmallCNN(cfg.C, cfg.H, cfg.W, 6, 8, cfg.Classes, 3)
	nn.Train(net, train, nn.NewAdam(0.004), nn.TrainConfig{Epochs: 2, BatchSize: 16, Seed: 1})

	pc := patdnn.DefaultPruneConfig()
	pc.Iterations, pc.EpochsPerIter, pc.FinetuneEps = 1, 1, 1
	res, err := patdnn.Prune(net, train, test, pc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pruned layers:", len(res.Layers) > 0)
	fmt.Println("compressed:", res.Compression > 1.5)
	fmt.Println("accuracy sane:", res.AccuracyAfter >= 0 && res.AccuracyAfter <= 100)
	// Output:
	// pruned layers: true
	// compressed: true
	// accuracy sane: true
}

// ExampleCompile lowers VGG-16 through the full PatDNN compiler and compares
// the modeled mobile latency against a baseline framework.
func ExampleCompile() {
	c, err := patdnn.Compile("VGG", "imagenet", 8, 3.6)
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := c.EstimateLatencyMs("sd855", "cpu")
	if err != nil {
		log.Fatal(err)
	}
	tflite, err := c.BaselineLatencyMs("tflite", "sd855", "cpu")
	if err != nil {
		log.Fatal(err)
	}
	acc := c.EstimatedAccuracy()

	fmt.Println("model:", c.Model.Name)
	fmt.Println("faster than TFLite:", cpu < tflite)
	fmt.Println("accuracy in band:", acc > 90 && acc < 93)
	// Output:
	// model: VGG-16
	// faster than TFLite: true
	// accuracy in band: true
}

// ExampleEngine_Infer embeds the concurrent inference engine: the model
// compiles once into the plan cache, then requests execute as batched layer
// sweeps over the worker pool.
func ExampleEngine_Infer() {
	eng := patdnn.NewEngine(patdnn.EngineConfig{MaxBatch: 4})
	defer eng.Close()

	// nil Input selects a deterministic synthetic image.
	resp, err := eng.Infer(context.Background(),
		patdnn.InferRequest{Network: "VGG", Dataset: "cifar10"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("output:", resp.Shape)
	fmt.Println("served in batch:", resp.BatchSize >= 1)
	fmt.Println("compiled once:", eng.Stats().PlanCompiles == 1)
	// Output:
	// output: [10 1 1]
	// served in batch: true
	// compiled once: true
}
