package patdnn

// Benchmark harness: one testing.B benchmark per paper table and figure
// (regenerating the artifact through internal/bench), plus host wall-clock
// microbenchmarks of the *real* convolution kernels — dense direct, Winograd,
// CSR sparse, and the four PatDNN code-generation levels — so the compiler's
// claims are grounded in measured time, not only in the device model.
//
// Run with: go test -bench=. -benchmem

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"patdnn/internal/baseline"
	"patdnn/internal/bench"
	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/compiler/tuner"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/runtime"
	"patdnn/internal/serve"
	"patdnn/internal/sparse"
	"patdnn/internal/tensor"
)

// benchArtifact regenerates one experiment per iteration.
func benchArtifact(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if t := e.Run(); len(t.Rows) == 0 {
			b.Fatal("empty artifact")
		}
	}
}

func BenchmarkTable1(b *testing.B)          { benchArtifact(b, "table1") }
func BenchmarkTable2(b *testing.B)          { benchArtifact(b, "table2") }
func BenchmarkTable3(b *testing.B)          { benchArtifact(b, "table3") }
func BenchmarkTable4(b *testing.B)          { benchArtifact(b, "table4") }
func BenchmarkTable5(b *testing.B)          { benchArtifact(b, "table5") }
func BenchmarkTable6(b *testing.B)          { benchArtifact(b, "table6") }
func BenchmarkTable7(b *testing.B)          { benchArtifact(b, "table7") }
func BenchmarkFigure12(b *testing.B)        { benchArtifact(b, "figure12") }
func BenchmarkFigure13(b *testing.B)        { benchArtifact(b, "figure13") }
func BenchmarkFigure14(b *testing.B)        { benchArtifact(b, "figure14") }
func BenchmarkFigure15(b *testing.B)        { benchArtifact(b, "figure15") }
func BenchmarkFigure16(b *testing.B)        { benchArtifact(b, "figure16") }
func BenchmarkFigure17(b *testing.B)        { benchArtifact(b, "figure17") }
func BenchmarkFigure18(b *testing.B)        { benchArtifact(b, "figure18") }
func BenchmarkAblationTuner(b *testing.B)   { benchArtifact(b, "ablation-tuner") }
func BenchmarkAblationStorage(b *testing.B) { benchArtifact(b, "ablation-storage") }

// --- Host kernel microbenchmarks ---
//
// A VGG-L4-shaped layer scaled to a 28x28 feature map so a benchmark
// iteration stays in the millisecond range: 128 filters, 128 channels,
// 3x3 kernels, 8 patterns, 3.6x connectivity.

type hostFixture struct {
	conv  *pruned.Conv
	dense *tensor.Tensor // same weights, dense layout (pruned values)
	input *tensor.Tensor
	bias  *tensor.Tensor
}

func newHostFixture() *hostFixture {
	rng := rand.New(rand.NewSource(7))
	const outC, inC, h, w = 128, 128, 28, 28
	weights := tensor.New(outC, inC, 3, 3)
	weights.Randn(rng, 0.1)
	geom := pruned.ConvGeom{Stride: 1, Pad: 1, InH: h, InW: w, OutH: h, OutW: w}
	kernels := float64(outC) * float64(inC)
	keep := int(kernels / 3.6)
	c := pruned.FromWeights("l4-host", weights, pattern.Canonical(8), keep, geom)
	input := tensor.New(inC, h, w)
	input.Randn(rng, 1)
	bias := tensor.New(outC)
	bias.Randn(rng, 0.1)
	return &hostFixture{conv: c, dense: c.Weights, input: input, bias: bias}
}

var hostFix = newHostFixture()

func BenchmarkHostDenseDirect(b *testing.B) {
	spec := tensor.ConvSpec{Stride: 1, Pad: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		baseline.DenseDirectConv(hostFix.input, hostFix.dense, hostFix.bias, spec)
	}
}

func BenchmarkHostWinograd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		baseline.WinogradConv3x3(hostFix.input, hostFix.dense, hostFix.bias)
	}
}

func BenchmarkHostCSRSparse(b *testing.B) {
	csr := sparse.FromConvWeights(hostFix.dense)
	spec := tensor.ConvSpec{Stride: 1, Pad: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.CSRConv(hostFix.input, csr, hostFix.bias, 3, 3, spec)
	}
}

func benchHostLevel(b *testing.B, level codegen.Level) {
	plan, err := codegen.Compile(hostFix.conv, level, lr.DefaultTuning())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Execute(hostFix.input, hostFix.bias.Data)
	}
}

func BenchmarkHostPatternNoOpt(b *testing.B)   { benchHostLevel(b, codegen.NoOpt) }
func BenchmarkHostPatternReorder(b *testing.B) { benchHostLevel(b, codegen.Reorder) }
func BenchmarkHostPatternLRE(b *testing.B)     { benchHostLevel(b, codegen.ReorderLRE) }
func BenchmarkHostPatternTuned(b *testing.B)   { benchHostLevel(b, codegen.Tuned) }
func BenchmarkHostPatternPacked(b *testing.B)  { benchHostLevel(b, codegen.Packed) }

// --- Tuned vs Packed head-to-head ---
//
// The acceptance sweep for the FKW-direct backend: both levels execute the
// same VGG-style bench layer through the identical batched harness the
// serving engine uses (batch×OutC ParallelFor, pooled padded buffers, fused
// bias+ReLU epilogue where the kernels support it); the only variable is the
// kernel generation. ns/op is per batch.

func hostLevelTuning(level codegen.Level) lr.Tuning {
	if level != codegen.Packed {
		return lr.DefaultTuning()
	}
	c := hostFix.conv
	return tuner.PackedTuning(c.OutH, c.OutW, c.InW+2*c.Pad, c.NNZ()/c.OutC, c.Stride, 4)
}

func benchBatchedLevel(b *testing.B, level codegen.Level, batch int) {
	plan, err := codegen.Compile(hostFix.conv, level, hostLevelTuning(level))
	if err != nil {
		b.Fatal(err)
	}
	pool := runtime.NewPool(0)
	inputs := make([]*tensor.Tensor, batch)
	for i := range inputs {
		inputs[i] = hostFix.input
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		outs := pool.RunLayerBatchFused(plan, inputs, hostFix.bias.Data, true)
		for _, out := range outs {
			runtime.PutTensor(out)
		}
	}
}

func BenchmarkTuned(b *testing.B)  { benchBatchedLevel(b, codegen.Tuned, 4) }
func BenchmarkPacked(b *testing.B) { benchBatchedLevel(b, codegen.Packed, 4) }

func BenchmarkTunedBatch8(b *testing.B)  { benchBatchedLevel(b, codegen.Tuned, 8) }
func BenchmarkPackedBatch8(b *testing.B) { benchBatchedLevel(b, codegen.Packed, 8) }

func BenchmarkHostPatternTunedParallel(b *testing.B) {
	plan, err := codegen.Compile(hostFix.conv, codegen.Tuned, lr.DefaultTuning())
	if err != nil {
		b.Fatal(err)
	}
	pool := runtime.NewPool(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.RunLayer(plan, hostFix.input, hostFix.bias.Data)
	}
}

func BenchmarkHostFKWEncode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sparse.Encode(hostFix.conv, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving engine benchmarks ---
//
// benchEngineThroughput drives the concurrent inference engine with waves of
// `clients` simultaneous VGG-16/CIFAR requests; ns/op is per request, so
// inverse throughput. The worker sweep shows batched throughput scaling with
// pool size; the batch sweep shows the effect of fusing more requests into
// one layer sweep at a fixed pool.
func benchEngineThroughput(b *testing.B, workers, maxBatch, clients int) {
	eng := serve.New(serve.Config{
		Workers: workers, MaxBatch: maxBatch,
		BatchWindow: 500 * time.Microsecond,
	})
	defer eng.Close()
	if err := eng.Preload("VGG", "cifar10"); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	input := make([]float32, 3*32*32)
	for i := range input {
		input[i] = float32(rng.NormFloat64())
	}
	req := serve.Request{Network: "VGG", Dataset: "cifar10", Input: input}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := clients
		if b.N-done < n {
			n = b.N - done
		}
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := eng.Infer(context.Background(), req); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
		done += n
	}
	b.StopTimer()
	s := eng.Stats()
	if s.Batches > 0 {
		b.ReportMetric(s.AvgBatch, "reqs/batch")
	}
}

func BenchmarkServeWorkers1(b *testing.B) { benchEngineThroughput(b, 1, 8, 8) }
func BenchmarkServeWorkers2(b *testing.B) { benchEngineThroughput(b, 2, 8, 8) }
func BenchmarkServeWorkers4(b *testing.B) { benchEngineThroughput(b, 4, 8, 8) }
func BenchmarkServeWorkers8(b *testing.B) { benchEngineThroughput(b, 8, 8, 8) }

func BenchmarkServeBatch1(b *testing.B)  { benchEngineThroughput(b, 0, 1, 16) }
func BenchmarkServeBatch4(b *testing.B)  { benchEngineThroughput(b, 0, 4, 16) }
func BenchmarkServeBatch16(b *testing.B) { benchEngineThroughput(b, 0, 16, 16) }

// BenchmarkHostVGGCifarConvStack times one real inference through all 13
// pruned VGG-16/CIFAR conv layers (8 patterns, 3.6x connectivity) executed by
// the fully optimized kernels on the parallel runtime — the closest host
// analogue to the paper's end-to-end measurement protocol.
func BenchmarkHostVGGCifarConvStack(b *testing.B) {
	m := model.VGG16("cifar10")
	set := pattern.Canonical(8)
	pool := runtime.NewPool(0)
	type stage struct {
		plan *codegen.Plan
		pool bool // max-pool after this conv (end of VGG block)
	}
	var stages []stage
	convs := m.ConvLayers()
	blockEnds := map[int]bool{1: true, 3: true, 6: true, 9: true, 12: true}
	for i, l := range convs {
		c := pruned.Generate(l, set, 3.6, int64(500+i), true)
		plan, err := codegen.Compile(c, codegen.Tuned, lr.DefaultTuning())
		if err != nil {
			b.Fatal(err)
		}
		stages = append(stages, stage{plan, blockEnds[i]})
	}
	rng := rand.New(rand.NewSource(1))
	input := tensor.New(3, 32, 32)
	input.Randn(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := input
		for _, s := range stages {
			x = pool.RunLayer(s.plan, x, nil)
			tensor.ReLU(x)
			if s.pool {
				x, _ = tensor.MaxPool2D(x, 2)
			}
		}
	}
}
