// Command patdnn-serve fronts the concurrent inference engine with an
// HTTP/JSON API: models compile once into the plan cache, and concurrent
// /infer requests are gathered into batched layer sweeps over the worker
// pool (the compile-once / execute-many deployment the paper's offline
// compiler implies, exposed as a server).
//
// Endpoints:
//
//	POST /infer   {"network":"VGG","dataset":"cifar10","input":[...]}
//	              input is the flattened [C,H,W] image and may be omitted
//	              for a deterministic synthetic input; an optional "level"
//	              ("noopt".."packed", "auto") overrides the engine's kernel
//	              optimization level for this request — each level is its own
//	              plan-cache entry. Responds with the output feature map,
//	              argmax, and batch/latency detail.
//	GET  /models  compiled models currently in the plan cache (with level)
//	GET  /stats   engine counters (requests, batches, plan-cache hits —
//	              including per-level hit counts)
//	GET  /healthz liveness probe
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops accepting,
// drains in-flight requests, then closes the engine.
//
// Quickstart:
//
//	patdnn-serve -addr :8080 -preload VGG/cifar10
//	curl -s -X POST localhost:8080/infer -d '{"network":"VGG","dataset":"cifar10"}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"patdnn/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	batch := flag.Int("batch", 8, "max requests fused into one batched sweep")
	window := flag.Duration("window", 2*time.Millisecond, "batch gather window")
	patterns := flag.Int("patterns", 8, "pattern-set size")
	connRate := flag.Float64("connrate", 3.6, "connectivity pruning rate")
	level := flag.String("level", serve.LevelAuto,
		"kernel optimization level: noopt, reorder, lre, tuned, packed, or auto (tuner picks per layer)")
	preload := flag.String("preload", "VGG/cifar10",
		"comma-separated network/dataset pairs to compile at startup (empty = compile lazily)")
	flag.Parse()

	eng := serve.New(serve.Config{
		Workers: *workers, MaxBatch: *batch, BatchWindow: *window,
		Patterns: *patterns, ConnRate: *connRate, Level: *level,
	})
	for _, spec := range strings.Split(*preload, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		network, dataset, ok := strings.Cut(spec, "/")
		if !ok {
			log.Fatalf("bad -preload entry %q: want network/dataset", spec)
		}
		start := time.Now()
		if err := eng.Preload(network, dataset); err != nil {
			log.Fatalf("preload %s: %v", spec, err)
		}
		log.Printf("compiled %s in %v", spec, time.Since(start).Round(time.Millisecond))
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /infer", func(w http.ResponseWriter, r *http.Request) {
		var req serve.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		resp, err := eng.Infer(r.Context(), req)
		if err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, serve.ErrClosed):
				status = http.StatusServiceUnavailable
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				status = 499 // client closed request
			}
			httpError(w, status, err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /models", func(w http.ResponseWriter, r *http.Request) {
		models := eng.Models()
		if models == nil {
			models = []serve.ModelInfo{}
		}
		writeJSON(w, models)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, eng.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})

	srv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// ListenAndServe returns as soon as Shutdown closes the listeners, while
	// in-flight requests are still draining — main must wait for the drain to
	// finish before closing the engine and exiting.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Print("shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("serving on %s (workers=%d batch=%d window=%v)",
		*addr, *workers, *batch, *window)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-shutdownDone
	eng.Close() // drain batchers after the HTTP server has quiesced
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
