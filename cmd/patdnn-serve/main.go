// Command patdnn-serve fronts the concurrent inference engine with an
// HTTP/JSON API: models compile once into the plan cache, and concurrent
// /infer requests are gathered into batched layer sweeps over the worker
// pool (the compile-once / execute-many deployment the paper's offline
// compiler implies, exposed as a server).
//
// With -models-dir the server additionally serves the disk-backed model
// registry: versioned .patdnn artifacts (written by `patdnn-compile
// -registry-dir`) become addressable as "name" or "name@version", hot-reload
// when files change, split bare-name traffic across versions by configured
// weights (canary rollouts), and are bounded by -memory-budget with LRU
// eviction of compiled plans.
//
// With -tuning-db (defaulting to <models-dir>/tuning.json when -models-dir
// is set; "off" disables) every plan compile consults the persistent tuning
// sidecar before running tuning heuristics and records its decisions, so
// recompiles of known layers — warm restarts, lazy reloads after eviction —
// do zero search work. -background-tune additionally starts the background
// tuning worker: once per -tune-interval it re-measures packed layers off
// the hot path, records winners as measured verdicts, and hot-swaps
// improved plans with no failed in-flight requests.
//
// Endpoints:
//
//	POST /infer    {"network":"VGG","dataset":"cifar10","input":[...]}
//	               input is the flattened [C,H,W] image and may be omitted
//	               for a deterministic synthetic input; an optional "level"
//	               ("noopt".."packed", "auto") overrides the engine's kernel
//	               optimization level for this request — each level is its
//	               own plan-cache entry. network may also be a registry model
//	               ("vgg" or "vgg@v2"); the response's "version" reports the
//	               version that served. Responds with the output feature map,
//	               argmax, and batch/latency detail.
//	               Scheduling: "class" ("interactive" default, or "batch")
//	               picks the bounded per-model lane the request queues on —
//	               batch-class sweeps run on a width-limited worker slice so
//	               background traffic can't starve interactive requests. A
//	               full lane sheds immediately with 429. "timeout_ms" sets a
//	               server-side deadline: if it expires while the request is
//	               queued the batcher drops it before compute (504).
//	GET  /models   compiled models: plan-cache entries plus every registry
//	               version with residency, byte footprint, and last-used time
//	GET  /stats    engine counters (requests, batches, plan-cache hits,
//	               per-level hits, sheds by class, deadline sheds, the
//	               executed-expired tripwire, and per-lane bounded queue
//	               depth/capacity/peak) plus registry counters (scans,
//	               reloads, evictions, resident bytes) and tuning counters
//	               (DB hits/misses/records/quarantined, background searches,
//	               hot swaps)
//	GET  /registry registry detail: versions, routes, quarantined files, stats
//	POST /registry/route  {"model":"vgg","weights":{"v1":90,"v2":10}}
//	               sets the weighted traffic split for bare-name requests;
//	               empty/omitted weights clear the route
//	GET  /healthz  liveness probe (process up)
//	GET  /readyz   readiness probe: 503 with per-model compile/load states
//	               while preload compiles or the registry's initial scan are
//	               in flight, 200 once traffic can be served without paying
//	               warm-up latency (steady-state work — lazy compiles,
//	               hot-reload rescans — never flaps it)
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops accepting,
// drains in-flight requests, then closes the engine (and its registry).
//
// Models lower through the graph executor (internal/compiler/execgraph):
// BatchNorm folds into conv weights at compile time, residual adds fuse into
// conv epilogues, and the paper's full CIFAR evaluation suite — VGG-16,
// ResNet-50, MobileNet-V2 — serves end to end, from generator specs and from
// format-v2 graph artifacts alike.
//
// Quickstart:
//
//	patdnn-compile -model resnet50 -dataset cifar10 -registry-dir models -name resnet50 -version v1
//	patdnn-serve -addr :8080 -models-dir models -memory-budget 512MB -preload ""
//	curl -s -X POST localhost:8080/infer -d '{"network":"resnet50"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"patdnn/internal/registry"
	"patdnn/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	batch := flag.Int("batch", 8, "max requests fused into one batched sweep")
	window := flag.Duration("window", 2*time.Millisecond, "batch gather window")
	patterns := flag.Int("patterns", 8, "pattern-set size")
	connRate := flag.Float64("connrate", 3.6, "connectivity pruning rate")
	level := flag.String("level", serve.LevelAuto,
		"kernel optimization level: noopt, reorder, lre, tuned, packed, or auto (tuner picks per layer)")
	queueDepth := flag.Int("queue-depth", 0,
		"per-model, per-class request queue bound; a full queue sheds with 429 (0 = default max(64, 8*batch))")
	queueBytes := flag.String("queue-bytes", "",
		"per-model, per-class bound on queued response-tensor bytes, e.g. 64MB; feature-map "+
			"models (SR) commit ~48KB per request where classifiers commit ~40B, so the byte "+
			"budget sheds what a slot count alone would admit (empty = 64MB)")
	batchWorkers := flag.Int("batch-workers", 0,
		"worker-pool width granted to batch-class sweeps so background traffic can't crowd out interactive (0 = workers/4)")
	preload := flag.String("preload", "VGG/cifar10",
		"comma-separated network/dataset pairs to compile at startup (empty = compile lazily)")
	modelsDir := flag.String("models-dir", "",
		"serve versioned .patdnn artifacts from this directory (enables /registry and name@version resolution)")
	memBudget := flag.String("memory-budget", "",
		"memory budget over compiled registry models, e.g. 512MB or 2GB (empty = unlimited); LRU-evicted models recompile lazily")
	regPoll := flag.Duration("registry-poll", 2*time.Second,
		"models-dir polling period for hot reload (negative disables)")
	tuningDB := flag.String("tuning-db", "",
		"persistent auto-tuning sidecar consulted by every plan compile, e.g. models/tuning.json "+
			"(empty with -models-dir set defaults to <models-dir>/tuning.json; 'off' disables)")
	bgTune := flag.Bool("background-tune", false,
		"run the background tuning worker: measure packed-layer configurations off the hot path, "+
			"record winners in the tuning DB, and hot-swap improved plans")
	tuneInterval := flag.Duration("tune-interval", 15*time.Second,
		"background tuning round period")
	flag.Parse()

	db := *tuningDB
	switch {
	case db == "off":
		db = ""
		if *bgTune {
			log.Fatal("-background-tune requires a tuning DB; drop -tuning-db=off")
		}
	case db == "" && *modelsDir != "":
		// The registry's sidecar convention: tuning decisions live next to
		// the .patdnn artifacts they accelerate (the scanner ignores
		// non-.patdnn files, so the sidecar is safe in the models dir).
		db = filepath.Join(*modelsDir, "tuning.json")
		log.Printf("tuning: using %s (set -tuning-db=off to disable)", db)
	}

	qBytes, err := parseBytes(*queueBytes)
	if err != nil {
		log.Fatalf("bad -queue-bytes: %v", err)
	}
	eng := serve.New(serve.Config{
		Workers: *workers, MaxBatch: *batch, BatchWindow: *window,
		Patterns: *patterns, ConnRate: *connRate, Level: *level,
		QueueDepth: *queueDepth, QueueBytes: qBytes, BatchWorkers: *batchWorkers,
		TuningDB: db, BackgroundTune: *bgTune, TuneInterval: *tuneInterval,
	})
	var reg *registry.Registry
	if *modelsDir != "" {
		budget, err := parseBytes(*memBudget)
		if err != nil {
			log.Fatalf("bad -memory-budget: %v", err)
		}
		reg, err = eng.WithRegistry(registry.Config{
			Dir: *modelsDir, MemoryBudget: budget, Poll: *regPoll, Logf: log.Printf,
		})
		if err != nil {
			log.Fatalf("registry: %v", err)
		}
		s := reg.Stats()
		log.Printf("registry: %d models / %d versions in %s (budget %s)",
			s.Models, s.Versions, *modelsDir, *memBudget)
	}
	for _, spec := range strings.Split(*preload, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		network, dataset, ok := strings.Cut(spec, "/")
		if !ok {
			log.Fatalf("bad -preload entry %q: want network/dataset", spec)
		}
		start := time.Now()
		if err := eng.Preload(network, dataset); err != nil {
			log.Fatalf("preload %s: %v", spec, err)
		}
		log.Printf("compiled %s in %v", spec, time.Since(start).Round(time.Millisecond))
	}

	// Responses carry the replica's identity (serve.ReplicaHeader) so fleet
	// tooling behind cmd/patdnn-router can attribute them to this instance.
	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(eng, reg, *addr)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// ListenAndServe returns as soon as Shutdown closes the listeners, while
	// in-flight requests are still draining — main must wait for the drain to
	// finish before closing the engine and exiting.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Print("shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("serving on %s (workers=%d batch=%d window=%v)",
		*addr, *workers, *batch, *window)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-shutdownDone
	eng.Close() // drain batchers (and close the registry) after the HTTP server has quiesced
}

// newMux builds the server's routing table (the serve package's canonical
// handler); reg may be nil (no models dir).
func newMux(eng *serve.Engine, reg *registry.Registry) http.Handler {
	return serve.NewHandler(eng, reg, "")
}

// parseBytes parses a human byte size: a plain integer (bytes) or an
// integer with a K/M/G suffix (binary multiples; a trailing B/iB is
// accepted). Empty means 0 (unlimited).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	upper := strings.ToUpper(s)
	mult := int64(1)
	for _, suf := range []struct {
		tag string
		m   int64
	}{{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"B", 1}} {
		if strings.HasSuffix(upper, suf.tag) {
			mult = suf.m
			upper = strings.TrimSuffix(upper, suf.tag)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%q is not a byte size (want e.g. 512MB, 2GB)", s)
	}
	// An overflowing product would wrap negative, which the registry treats
	// as "unlimited" — the opposite of what the operator asked for.
	if n > math.MaxInt64/mult {
		return 0, fmt.Errorf("%q overflows the byte-size range", s)
	}
	return n * mult, nil
}
