package main

// The scheduler's acceptance harness: patdnn-loadgen's generator (the exact
// Run/RunAll calls the binary wraps) drives a live patdnn-serve HTTP stack at
// a rate that forces shedding, and the run must show — asserted, not printed:
//
//   1. zero expired-deadline requests executed (Stats.ExpiredExecuted == 0
//      while Stats.DeadlineSheds > 0 proves the deadline path actually ran),
//   2. bounded queue depth in /stats (every lane's depth and peak within the
//      configured capacity, with shedding proving the bound was reached),
//   3. interactive-class p99 unaffected (within +10%) by saturating
//      batch-class traffic.
//
// The latency assertion compares two measured runs on the same process and
// is inherently timing-sensitive; the baseline is dominated by the batch
// window (a deliberately long sloWindow, 20ms) so scheduler jitter sits well
// inside the 10% budget, and the whole scenario retries up to three times
// before declaring failure. Structural violations (an executed expired request, a
// queue above its bound) fail immediately — no retry forgives those.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"patdnn/internal/loadgen"
	"patdnn/internal/model"
	"patdnn/internal/serve"
)

// sloTinyModel is a small end-to-end-servable network, so the scheduler —
// not kernel execution — dominates what the harness measures.
func sloTinyModel() *model.Model {
	m := &model.Model{Name: "Tiny-CNN", Short: "tiny", Dataset: "synthetic",
		Classes: 4, InC: 4, InH: 12, InW: 12}
	m.Layers = []*model.Layer{
		{Name: "input", Kind: model.Input, OutC: 4, OutH: 12, OutW: 12},
		{Name: "conv1", Kind: model.Conv, InC: 4, OutC: 8, KH: 3, KW: 3,
			Stride: 1, Pad: 1, Groups: 1, InH: 12, InW: 12, OutH: 12, OutW: 12},
		{Name: "relu1", Kind: model.ReLU, InC: 8, OutC: 8},
		{Name: "pool1", Kind: model.MaxPool, InC: 8, OutC: 8, KH: 2, KW: 2,
			Stride: 2, InH: 12, InW: 12, OutH: 6, OutW: 6},
		{Name: "conv2", Kind: model.Conv, InC: 8, OutC: 8, KH: 3, KW: 3,
			Stride: 1, Pad: 1, Groups: 1, InH: 6, InW: 6, OutH: 6, OutW: 6},
		{Name: "relu2", Kind: model.ReLU, InC: 8, OutC: 8},
		{Name: "flatten", Kind: model.Flatten, InC: 8, InH: 6, InW: 6,
			OutC: 288, OutH: 1, OutW: 1},
		{Name: "fc", Kind: model.FC, InC: 288, OutC: 4, HasBias: true},
	}
	return m
}

// The scenario is tuned for the worst supported machine, a single-CPU
// runner: the interactive baseline is dominated by the 20ms batch window, so
// the 10% budget (~2ms) comfortably covers the scheduling jitter a saturated
// batch lane adds, while a depth-2 queue against 6 hammering clients still
// guarantees admission-control sheds.
const (
	sloWindow     = 20 * time.Millisecond
	sloQueueDepth = 2
)

func TestSchedulerSLOEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load-generation scenario")
	}
	var last string
	for attempt := 1; attempt <= 3; attempt++ {
		msg := runSLOScenario(t)
		if msg == "" {
			return
		}
		last = fmt.Sprintf("attempt %d: %s", attempt, msg)
		t.Log(last)
	}
	t.Fatal("all attempts failed; " + last)
}

// runSLOScenario runs one full baseline-vs-saturated comparison on a fresh
// engine. It returns "" on success, a description for retryable (purely
// timing-dependent) violations, and fails the test outright for structural
// ones.
func runSLOScenario(t *testing.T) string {
	t.Helper()
	eng := serve.New(serve.Config{
		MaxBatch:    4,
		BatchWindow: sloWindow,
		QueueDepth:  sloQueueDepth,
		// On a single-core runner this still leaves batch sweeps one worker;
		// on real machines it pins them to a quarter of the pool.
		BatchWorkers: 1,
	})
	defer eng.Close()
	if err := eng.RegisterModel(sloTinyModel()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newMux(eng, nil))
	defer ts.Close()

	interactive := loadgen.Spec{
		Name: "interactive", URL: ts.URL,
		Network: "tiny", Dataset: "synthetic",
		Mode: "closed", Clients: 2, Requests: 200,
	}

	// Unmeasured warmup: connection setup, scratch pools, scheduler state —
	// the baseline must measure steady state, not first-contact costs.
	warm := interactive
	warm.Requests = 30
	if _, err := loadgen.Run(context.Background(), warm); err != nil {
		t.Fatal(err)
	}

	// Phase A: interactive traffic alone. Latency ≈ batch window + sweep.
	baseline, err := loadgen.Run(context.Background(), interactive)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.OK != baseline.Sent || baseline.Failed > 0 {
		t.Fatalf("baseline stream unhealthy: %+v", baseline)
	}

	// Phase B: the same interactive stream while 6 closed-loop batch-class
	// clients hammer a depth-2 queue — far more offered load than the batch
	// lane's bounded queue admits, so admission control must shed — with a
	// 2ms deadline so some admitted requests die while queued (expiry or the
	// abandoning client's disconnect) and the batcher must drop them before
	// compute. The batch stream is duration-bound past the interactive
	// stream's length, so every measured interactive request rides under
	// saturation.
	stop := make(chan struct{})
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			for _, q := range eng.Stats().Queues {
				if q.Depth > q.Capacity || q.Peak > q.Capacity || q.Capacity != sloQueueDepth {
					t.Errorf("queue bound violated mid-run: %+v", q)
					return
				}
			}
		}
	}()
	results, err := loadgen.RunAll(context.Background(), []loadgen.Spec{
		interactive,
		{
			Name: "background_batch", URL: ts.URL,
			Network: "tiny", Dataset: "synthetic", Class: "batch",
			Mode: "closed", Clients: 6,
			Duration: 4 * time.Second,
			Timeout:  2 * time.Millisecond,
		},
	})
	close(stop)
	<-monitorDone
	if err != nil {
		t.Fatal(err)
	}
	loaded, batch := results[0], results[1]
	if loaded.OK != loaded.Sent || loaded.Failed > 0 {
		t.Fatalf("interactive stream degraded to errors under batch load: %+v", loaded)
	}

	s := eng.Stats()
	// Structural assertions — never retried.
	if s.ExpiredExecuted != 0 {
		t.Fatalf("%d expired-deadline requests executed, want 0 (stats: %+v)", s.ExpiredExecuted, s)
	}
	for _, q := range s.Queues {
		if q.Depth > q.Capacity || q.Peak > q.Capacity {
			t.Fatalf("queue depth above bound: %+v", q)
		}
	}

	// Load-dependent assertions — retry the scenario if the machine didn't
	// produce the intended pressure.
	if batch.Shed == 0 || s.Shed == 0 {
		return fmt.Sprintf("offered batch load never forced shedding (client 429s=%d, server sheds=%d)",
			batch.Shed, s.Shed)
	}
	if s.ShedByClass["batch"] == 0 {
		return fmt.Sprintf("sheds not attributed to the batch class: %v", s.ShedByClass)
	}
	if s.DeadlineSheds == 0 {
		return "no queued request expired: the deadline-shed path went unexercised"
	}
	// The ±10% proportionality clause assumes production-shaped execution;
	// the race detector multiplies every synchronization by 5-20x and turns
	// the saturating batch load into a CPU tax the contract never promised
	// to absorb. Functional assertions above still ran; CI checks this
	// clause in a non-race pass.
	if !raceEnabled && loaded.P99Ms > baseline.P99Ms*1.10 {
		return fmt.Sprintf("interactive p99 %.2fms under batch saturation vs %.2fms alone (>+10%%)",
			loaded.P99Ms, baseline.P99Ms)
	}
	t.Logf("baseline p99 %.2fms; under saturation p99 %.2fms; batch: %d ok, %d shed (429), %d expired; server: shed=%d deadline_sheds=%d expired_executed=%d",
		baseline.P99Ms, loaded.P99Ms, batch.OK, batch.Shed, batch.Expired,
		s.Shed, s.DeadlineSheds, s.ExpiredExecuted)
	return ""
}
