//go:build race

package main

// raceEnabled reports that the race detector is instrumenting this build:
// its per-synchronization overhead (and the CPU it burns) invalidates
// latency-proportionality assertions, which are skipped under race while all
// functional assertions still run. CI exercises the latency contract in a
// separate non-race pass.
const raceEnabled = true
