package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"patdnn"
	"patdnn/internal/registry"
	"patdnn/internal/serve"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true}, {"0", 0, true}, {"123", 123, true},
		{"64MB", 64 << 20, true}, {"64MiB", 64 << 20, true}, {"64m", 64 << 20, true},
		{"2GB", 2 << 30, true}, {"512kb", 512 << 10, true}, {"10B", 10, true},
		{" 1 GB ", 1 << 30, true},
		{"-5MB", 0, false}, {"lots", 0, false}, {"12TB", 0, false},
		{"10000000000GB", 0, false}, // int64 overflow must error, not wrap to "unlimited"
	}
	for _, c := range cases {
		got, err := parseBytes(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Fatalf("parseBytes(%q) = %d, %v; want %d, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

// getJSON decodes a GET endpoint into out and returns the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// postJSON posts body to url, decodes into out when non-nil, and returns the
// status code.
func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: %v (body %s)", url, err, raw)
		}
	}
	return resp.StatusCode
}

// emitVersion runs the patdnn-compile emission path (Compile + WriteModel)
// into the models dir: the operating point doubles as the version's
// distinguishing content.
func emitVersion(t *testing.T, dir, name, version string, connRate float64) {
	t.Helper()
	c, err := patdnn.Compile("VGG", "cifar10", 8, connRate)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, registry.FileName(name, version)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := c.WriteModel(f); err != nil {
		t.Fatal(err)
	}
}

// TestServerRegistryLifecycleEndToEnd is the acceptance demo: two compiled
// versions of a model in a temp models dir; the server serves name@v1, picks
// up v2 by polling (hot reload), splits traffic 90/10 under a configured
// route, and evicts the LRU model once the memory budget shrinks — with the
// eviction and reload counters visible in /stats and /registry.
func TestServerRegistryLifecycleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles VGG-16 artifacts end to end")
	}
	dir := t.TempDir()
	emitVersion(t, dir, "vgg", "v1", 3.6)

	eng := serve.New(serve.Config{Workers: 4, MaxBatch: 4, BatchWindow: 300 * time.Microsecond})
	t.Cleanup(func() { eng.Close() })
	reg, err := eng.WithRegistry(registry.Config{Dir: dir, Poll: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newMux(eng, reg))
	t.Cleanup(ts.Close)

	// Liveness and readiness: the initial scan is done and nothing is
	// compiling yet, so the server is immediately routable.
	if st := getJSON(t, ts.URL+"/healthz", nil); st != http.StatusOK {
		t.Fatalf("/healthz = %d", st)
	}
	var rd serve.Readiness
	if st := getJSON(t, ts.URL+"/readyz", &rd); st != http.StatusOK || !rd.Ready {
		t.Fatalf("/readyz = %d %+v", st, rd)
	}

	infer := func(network string) serve.Response {
		t.Helper()
		var out serve.Response
		if st := postJSON(t, ts.URL+"/infer", map[string]string{"network": network}, &out); st != http.StatusOK {
			t.Fatalf("POST /infer %s = %d", network, st)
		}
		return out
	}
	if r := infer("vgg"); r.Version != "v1" || r.Shape != [3]int{512, 2, 2} {
		t.Fatalf("first infer: %+v", r)
	}

	// Hot reload: drop v2 into the watch dir; the poller must pick it up and
	// route bare-name traffic to it (the latest version) without a restart.
	emitVersion(t, dir, "vgg", "v2", 5.2)
	deadline := time.Now().Add(15 * time.Second)
	for infer("vgg").Version != "v2" {
		if time.Now().After(deadline) {
			t.Fatal("poller never promoted vgg@v2")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if r := infer("vgg@v1"); r.Version != "v1" {
		t.Fatalf("exact version pinning broken: %+v", r)
	}

	// Canary route: 90% v1, 10% v2, chosen per request by the deterministic
	// seeded picker.
	if st := postJSON(t, ts.URL+"/registry/route",
		map[string]any{"model": "vgg", "weights": map[string]int{"v1": 9, "v2": 1}}, nil); st != http.StatusOK {
		t.Fatalf("set route = %d", st)
	}
	const n = 40
	counts := make(map[string]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				v := infer("vgg").Version
				mu.Lock()
				counts[v]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if counts["v1"]+counts["v2"] != n || counts["v2"] < 1 || counts["v1"] < n/2 {
		t.Fatalf("90/10 split served %v over %d requests", counts, n)
	}

	// Registry detail: both versions resident with byte accounting, the
	// route visible.
	var rv struct {
		Models []registry.ModelInfo              `json:"models"`
		Routes map[string][]registry.RouteWeight `json:"routes"`
		Stats  registry.Stats                    `json:"stats"`
	}
	if st := getJSON(t, ts.URL+"/registry", &rv); st != http.StatusOK {
		t.Fatalf("/registry = %d", st)
	}
	if len(rv.Models) != 2 || len(rv.Routes["vgg"]) != 2 || rv.Stats.Loaded != 2 || rv.Stats.BytesInUse <= 0 {
		t.Fatalf("/registry view: %+v", rv)
	}
	for _, m := range rv.Models {
		if !m.Loaded || m.Bytes <= 0 || m.LastUsed.IsZero() {
			t.Fatalf("version %s missing residency detail: %+v", m.Version, m)
		}
	}
	// /models mirrors the registry entries with version + bytes + last-used.
	var models []serve.ModelInfo
	if st := getJSON(t, ts.URL+"/models", &models); st != http.StatusOK {
		t.Fatalf("/models = %d", st)
	}
	if len(models) != 2 || models[0].Version != "v1" || models[0].Source != "registry" ||
		models[0].MemoryBytes <= 0 || models[0].LastUsed.IsZero() {
		t.Fatalf("/models listing: %+v", models)
	}

	// Clear the route; bare names fall back to the latest version.
	if st := postJSON(t, ts.URL+"/registry/route", map[string]any{"model": "vgg"}, nil); st != http.StatusOK {
		t.Fatal("clear route failed")
	}
	if r := infer("vgg"); r.Version != "v2" {
		t.Fatalf("after clearing the route got %s, want latest v2", r.Version)
	}

	// Memory budget: shrink it below the two resident models — the LRU one
	// is evicted immediately; inferring it afterwards recompiles lazily and
	// evicts the other in turn. Counters surface in /stats and /registry.
	reg.SetMemoryBudget(rv.Stats.BytesInUse - 1)
	var es serve.Stats
	if st := getJSON(t, ts.URL+"/stats", &es); st != http.StatusOK || es.Registry == nil {
		t.Fatalf("/stats = %d %+v", st, es)
	}
	if es.Registry.Evictions != 1 || es.Registry.Loaded != 1 {
		t.Fatalf("after budget shrink: %+v", es.Registry)
	}
	if r := infer("vgg@v1"); r.Version != "v1" {
		t.Fatalf("evicted version did not recompile: %+v", r)
	}
	if getJSON(t, ts.URL+"/registry", &rv); rv.Stats.LazyReloads != 1 || rv.Stats.Evictions != 2 {
		t.Fatalf("after lazy reload: %+v", rv.Stats)
	}
}

func TestRouteEndpointValidation(t *testing.T) {
	dir := t.TempDir()
	eng := serve.New(serve.Config{Workers: 1})
	t.Cleanup(func() { eng.Close() })
	reg, err := eng.WithRegistry(registry.Config{Dir: dir, Poll: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newMux(eng, reg))
	t.Cleanup(ts.Close)

	if st := postJSON(t, ts.URL+"/registry/route",
		map[string]any{"model": "ghost", "weights": map[string]int{"v1": 1}}, nil); st != http.StatusNotFound {
		t.Fatalf("route to unknown model = %d, want 404", st)
	}
	if st := postJSON(t, ts.URL+"/registry/route", map[string]any{"weights": map[string]int{"v1": 1}}, nil); st != http.StatusBadRequest {
		t.Fatalf("route without model = %d, want 400", st)
	}
	var out map[string]string
	if st := postJSON(t, ts.URL+"/infer", map[string]string{"network": "ghost@v1"}, &out); st != http.StatusNotFound {
		t.Fatalf("infer unknown registry version = %d (%v), want 404", st, out)
	}
}

func TestRegistryEndpointsAbsentWithoutModelsDir(t *testing.T) {
	eng := serve.New(serve.Config{Workers: 1})
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(newMux(eng, nil))
	t.Cleanup(ts.Close)
	if st := getJSON(t, ts.URL+"/registry", nil); st != http.StatusNotFound {
		t.Fatalf("/registry without models dir = %d, want 404", st)
	}
	// /readyz exists regardless of the registry.
	var rd serve.Readiness
	if st := getJSON(t, ts.URL+"/readyz", &rd); st != http.StatusOK || !rd.Ready {
		t.Fatalf("/readyz = %d %+v", st, rd)
	}
}

// TestReadyzReportsCompileInFlight pins the 503 contract: while a preload
// compile is running the server must refuse readiness, then flip to 200.
func TestReadyzReportsCompileInFlight(t *testing.T) {
	eng := serve.New(serve.Config{Workers: 2})
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(newMux(eng, nil))
	t.Cleanup(ts.Close)

	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- eng.Preload("VGG", "cifar10") }()
	// Poll /readyz while the compile runs; it must report not-ready with the
	// model in "compiling" state (the compile takes far longer than one poll
	// round-trip on any plausible machine — but if it somehow finishes before
	// the first poll, the transition is unobservable and not a failure).
	sawCompiling := false
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			var rd serve.Readiness
			if st := getJSON(t, ts.URL+"/readyz", &rd); st != http.StatusOK || !rd.Ready {
				t.Fatalf("/readyz after compile = %d %+v", st, rd)
			}
			if !sawCompiling && time.Since(start) > 500*time.Millisecond {
				t.Fatal("compile ran long yet /readyz never reported compiling")
			}
			return
		default:
		}
		var rd serve.Readiness
		st := getJSON(t, ts.URL+"/readyz", &rd)
		if st == http.StatusServiceUnavailable {
			for _, m := range rd.Models {
				if m.State == "compiling" {
					sawCompiling = true
				}
			}
			if !sawCompiling {
				t.Fatalf("503 without a compiling model: %+v", rd)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// emitGraphVersion runs the patdnn-compile graph-emission path (Compile +
// WriteModelGraph, the -format graph default) into the models dir.
func emitGraphVersion(t *testing.T, dir, model, name, version string) {
	t.Helper()
	c, err := patdnn.Compile(model, "cifar10", 8, 3.6)
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, registry.FileName(name, version)+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteModelGraph(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Rename into place like the CLI does, so the poller never sees a
	// half-written artifact.
	if err := os.Rename(tmp, filepath.Join(dir, registry.FileName(name, version))); err != nil {
		t.Fatal(err)
	}
}

// TestServerGraphArtifactResNetEndToEnd is the graph-IR acceptance demo:
// `patdnn-compile -model resnet50 -registry-dir …` (the API the command
// wraps) emits a v2 graph artifact, a running patdnn-serve hot-loads it off
// the polled models dir, /infer returns the [10,1,1] class distribution, and
// /models reports the plan's fused-op counts (every BN folded, every residual
// add riding a conv epilogue).
func TestServerGraphArtifactResNetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a full ResNet-50/CIFAR-10 graph artifact")
	}
	dir := t.TempDir()
	eng := serve.New(serve.Config{Workers: 4, MaxBatch: 4, BatchWindow: 300 * time.Microsecond})
	t.Cleanup(func() { eng.Close() })
	reg, err := eng.WithRegistry(registry.Config{Dir: dir, Poll: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newMux(eng, reg))
	t.Cleanup(ts.Close)

	// The server is up and empty; the artifact lands afterwards — serving it
	// requires a hot reload, not a startup scan.
	emitGraphVersion(t, dir, "resnet50", "resnet50", "v1")
	deadline := time.Now().Add(30 * time.Second)
	for !reg.Has("resnet50") {
		if time.Now().After(deadline) {
			t.Fatal("poller never picked up the resnet50 graph artifact")
		}
		time.Sleep(20 * time.Millisecond)
	}

	var out serve.Response
	if st := postJSON(t, ts.URL+"/infer", map[string]string{"network": "resnet50"}, &out); st != http.StatusOK {
		t.Fatalf("POST /infer = %d", st)
	}
	if out.Version != "v1" || out.Shape != [3]int{10, 1, 1} {
		t.Fatalf("infer response: %+v", out)
	}
	// Softmax output: a probability distribution.
	var sum float64
	for _, v := range out.Output {
		if v < 0 || v > 1 {
			t.Fatalf("output %g outside [0,1]", v)
		}
		sum += float64(v)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("softmax outputs sum to %g", sum)
	}

	// /models reports the fused-op counts for the loaded version: ResNet-50
	// has 49 BatchNorms (one per non-projection conv, all folded) and 16
	// residual adds (all fused into bottleneck-tail conv epilogues).
	var models []serve.ModelInfo
	if st := getJSON(t, ts.URL+"/models", &models); st != http.StatusOK {
		t.Fatalf("/models = %d", st)
	}
	var found bool
	for _, m := range models {
		if m.Network != "resnet50" || m.Source != "registry" {
			continue
		}
		found = true
		if m.FusedOps.ConvBN != 49 || m.FusedOps.Residual != 16 || m.FusedOps.ConvReLU == 0 {
			t.Fatalf("fused ops: %+v", m.FusedOps)
		}
		if m.ArenaBytes <= 0 {
			t.Fatalf("missing arena accounting: %+v", m)
		}
	}
	if !found {
		t.Fatalf("resnet50 missing from /models: %+v", models)
	}
}
