//go:build !race

package main

// raceEnabled: see race_on_test.go.
const raceEnabled = false
