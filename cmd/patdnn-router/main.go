// Command patdnn-router is the serving fleet's front door: it
// consistent-hashes each /infer request's (network, dataset) key onto a set
// of patdnn-serve replicas, health-checks every replica's /readyz with an
// ejection / half-open-recovery circuit breaker, and — because /infer is
// idempotent — retries a shed (429), a closing engine (503), or a dead
// connection exactly once on the key's ring sibling when the request's
// deadline budget still allows it.
//
// Consistent hashing (FNV-1a over 128 virtual nodes per replica) pins each
// model to one replica, keeping its compiled-plan cache and batch lanes
// warm; adding or removing a replica moves only ~1/N of the keys.
//
// Endpoints:
//
//	POST /infer          proxied to the key's owner (spill: one hop to the
//	                     sibling on 429/503/connection failure); the
//	                     X-Patdnn-Replica response header names the replica
//	                     that actually served
//	GET  /stats          fleet-wide aggregation of every replica's /stats
//	                     (sums are monotonic: replicas carry admission
//	                     counters across hot-reload swaps) plus the
//	                     router's own spill/ejection counters
//	GET  /models         fleet-wide model view: each model with the list of
//	                     replicas reporting it
//	GET  /fleet          per-replica routing state: health, drain flag,
//	                     routed/spilled counts, probe and ejection counters
//	POST /fleet/drain    {"replica":"http://host:port"} takes a replica out
//	POST /fleet/undrain  of rotation (and back) without marking it unhealthy
//	POST /fleet/rollout  {"model":"vgg","weights":{"v2":100}} rolls a
//	                     registry canary-weight change across the fleet:
//	                     drain replica, wait for its in-flight requests,
//	                     shift its /registry/route, undrain, next replica
//	GET  /healthz        router process liveness
//	GET  /readyz         200 while at least one replica is routable
//
// Quickstart (3-replica fleet):
//
//	patdnn-serve -addr :8081 & patdnn-serve -addr :8082 & patdnn-serve -addr :8083 &
//	patdnn-router -addr :8080 -replicas http://localhost:8081,http://localhost:8082,http://localhost:8083
//	curl -s -X POST localhost:8080/infer -d '{"network":"VGG","dataset":"cifar10"}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"patdnn/internal/router"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	replicas := flag.String("replicas", "",
		"comma-separated patdnn-serve base URLs (e.g. http://host:8081,http://host:8082); required")
	vnodes := flag.Int("vnodes", 128, "virtual nodes per replica on the hash ring")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "/readyz health-check period")
	probeTimeout := flag.Duration("probe-timeout", 250*time.Millisecond, "per-probe deadline; a hung /readyz counts as a failure")
	ejectAfter := flag.Int("eject-after", 3, "consecutive failures (probe or forward) before a replica is ejected")
	recoverAfter := flag.Duration("recover-after", 2*time.Second, "cool-off before an ejected replica gets a half-open probe")
	retryBudget := flag.Duration("retry-budget", 5*time.Millisecond,
		"minimum remaining request deadline required to attempt the one spill retry")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	rt, err := router.New(router.Config{
		Replicas:      urls,
		VNodes:        *vnodes,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		EjectAfter:    *ejectAfter,
		RecoverAfter:  *recoverAfter,
		RetryBudget:   *retryBudget,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Print("shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("routing on %s over %d replicas (vnodes=%d eject-after=%d probe=%v)",
		*addr, len(urls), *vnodes, *ejectAfter, *probeInterval)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-shutdownDone
	rt.Close() // stop the prober after in-flight proxying has drained
}
