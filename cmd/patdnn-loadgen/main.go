// Command patdnn-loadgen drives a running patdnn-serve with generated
// traffic and reports per-class latency histograms — the SLO harness that
// makes the repo's real-time claims testable from outside the process.
//
// A primary stream (open-loop Poisson arrivals or a closed client loop) is
// optionally accompanied by a background batch-class stream, so the
// scheduler's core promise — interactive latency holds while batch traffic
// saturates and sheds — can be exercised in one invocation:
//
//	# 200 rps of Poisson interactive traffic with a 50ms p99 SLO, while
//	# 16 closed-loop batch clients saturate the batch lane for 10s:
//	patdnn-loadgen -url http://localhost:8080 -network VGG -dataset cifar10 \
//	    -mode open -rate 200 -duration 10s -timeout 500ms \
//	    -bg-clients 16 -slo-p99 50ms -json LOADGEN_vgg.json
//
// Exit status: 0 on success, 1 when -slo-p99 is violated, 2 on run errors.
// -json writes the histogram artifact in the BENCH_serve schema (the same
// format cmd/patdnn-bench emits and cmd/patdnn-benchgate consumes).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"patdnn/internal/loadgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	url := flag.String("url", "http://localhost:8080", "patdnn-serve base URL")
	urls := flag.String("urls", "",
		"comma-separated list of target base URLs (replicas hit round-robin, or router front doors); overrides -url and enables the per-target outcome breakdown")
	network := flag.String("network", "VGG", "model to request (generator name or registry name[@version])")
	dataset := flag.String("dataset", "cifar10", "dataset for generator models (empty for registry models)")
	level := flag.String("level", "", "optional per-request optimization level")
	class := flag.String("class", "interactive", "scheduling class of the primary stream: interactive or batch")
	mode := flag.String("mode", "closed", "primary arrival process: open (Poisson at -rate) or closed (-clients loop)")
	rate := flag.Float64("rate", 100, "open-loop mean arrival rate, requests/second")
	clients := flag.Int("clients", 0, "closed-loop concurrency / open-loop in-flight cap (0 = mode default: 4 closed, 1024 open)")
	requests := flag.Int("requests", 0, "stop the primary stream after N arrivals (0 = run for -duration)")
	duration := flag.Duration("duration", 10*time.Second,
		"stop streams after this wall-clock time (ignored for a -requests-bounded primary stream unless set explicitly)")
	timeout := flag.Duration("timeout", 0, "per-request deadline, enforced client- and server-side (0 = none)")
	seed := flag.Int64("seed", 1, "arrival-process RNG seed")
	bgClients := flag.Int("bg-clients", 0, "background batch-class closed-loop clients (0 = no background stream)")
	bgTimeout := flag.Duration("bg-timeout", 0, "background stream per-request deadline (0 = none)")
	sloP99 := flag.Duration("slo-p99", 0, "assert the primary stream's p99 <= this; exit 1 on violation (0 = off)")
	jsonPath := flag.String("json", "", "write the per-class histogram report (BENCH_serve schema) to this file")
	flag.Parse()

	// A request-bounded primary stream runs to completion: the -duration
	// default only bounds it when the operator explicitly asked for both.
	durationSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "duration" {
			durationSet = true
		}
	})
	primaryDuration := *duration
	if *requests > 0 && !durationSet {
		primaryDuration = 0
	}

	var targets []string
	for _, u := range strings.Split(*urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			targets = append(targets, u)
		}
	}

	specs := []loadgen.Spec{{
		Name: "primary_" + *class, URL: *url, URLs: targets,
		Network: *network, Dataset: *dataset, Level: *level, Class: *class,
		Mode: *mode, Rate: *rate, Clients: *clients,
		Requests: *requests, Duration: primaryDuration, Timeout: *timeout, Seed: *seed,
	}}
	if *bgClients > 0 {
		specs = append(specs, loadgen.Spec{
			Name: "background_batch", URL: *url, URLs: targets,
			Network: *network, Dataset: *dataset, Level: *level, Class: "batch",
			Mode: "closed", Clients: *bgClients,
			Duration: *duration, Timeout: *bgTimeout, Seed: *seed + 1,
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	results, err := loadgen.RunAll(ctx, specs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "patdnn-loadgen:", err)
		return 2
	}
	for _, r := range results {
		fmt.Printf("%-20s class=%-11s mode=%-6s sent=%-6d ok=%-6d shed=%-5d expired=%-5d failed=%-4d %.1f rps  p50=%.2fms p95=%.2fms p99=%.2fms\n",
			r.Name, r.Class, r.Mode, r.Sent, r.OK, r.Shed, r.Expired, r.Failed,
			r.ThroughputRPS, r.P50Ms, r.P95Ms, r.P99Ms)
		if r.FirstError != "" {
			fmt.Printf("%-20s first error: %s\n", r.Name, r.FirstError)
		}
		// Fleet breakdown: who actually served (replica header when routed,
		// else the target URL), so per-replica shedding is visible.
		byTarget := make([]string, 0, len(r.PerTarget))
		for target := range r.PerTarget {
			byTarget = append(byTarget, target)
		}
		sort.Strings(byTarget)
		for _, target := range byTarget {
			o := r.PerTarget[target]
			fmt.Printf("%-20s   @ %-28s sent=%-6d ok=%-6d shed=%-5d expired=%-5d failed=%d\n",
				r.Name, target, o.Sent, o.OK, o.Shed, o.Expired, o.Failed)
		}
	}
	if *jsonPath != "" {
		model := *network
		if *dataset != "" {
			model += "/" + *dataset
		}
		if err := loadgen.WriteReport(*jsonPath, model, results); err != nil {
			fmt.Fprintln(os.Stderr, "patdnn-loadgen: write report:", err)
			return 2
		}
		fmt.Println("wrote", *jsonPath)
	}
	if *sloP99 > 0 {
		if err := results[0].CheckP99(*sloP99); err != nil {
			fmt.Fprintln(os.Stderr, "SLO VIOLATION:", err)
			return 1
		}
		fmt.Printf("SLO OK: %s p99 %.2fms <= %v\n", results[0].Name, results[0].P99Ms, *sloP99)
	}
	return 0
}
