// Command patdnn-compile runs the paper's execution-code-generation stage on
// one of the evaluation networks: pattern+connectivity pruning at scale,
// filter kernel reorder, FKW encoding, load redundancy elimination, and
// latency estimation on the modeled mobile platforms. It prints the layerwise
// representation (Figure 8), the generated-code skeletons (Figure 7), and the
// per-framework latency comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"patdnn"
	"patdnn/internal/baseline"
	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/compiler/reorder"
	"patdnn/internal/model"
	"patdnn/internal/modelfile"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/sparse"
)

// writeModelFile prunes every 3x3 conv of m and writes the deployable
// compact model with its layerwise representation.
func writeModelFile(path string, m *model.Model, patterns int, connRate float64) error {
	set := pattern.Canonical(patterns)
	file := &modelfile.File{LR: &lr.Representation{Model: m.Name, Device: "CPU"}}
	first := true
	for i, l := range m.ConvLayers() {
		if l.KH != 3 || l.KW != 3 || l.Kind != model.Conv {
			continue
		}
		rate := connRate
		if first {
			rate = baseline.FirstLayerConnRate(connRate)
			first = false
		}
		c := pruned.Generate(l, set, rate, int64(400+i), true)
		file.Layers = append(file.Layers, modelfile.Layer{Conv: c})
		file.LR.Layers = append(file.LR.Layers,
			lr.FromPruned(c, reorder.Build(c), lr.DefaultTuning()))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return modelfile.Write(f, file)
}

func main() {
	network := flag.String("model", "VGG", "network: VGG, RNT, MBNT")
	ds := flag.String("dataset", "imagenet", "dataset: imagenet or cifar10")
	patterns := flag.Int("patterns", 8, "pattern-set size")
	connRate := flag.Float64("conn", 3.6, "connectivity pruning rate")
	dev := flag.String("device", "sd855", "device: sd855, sd845, kirin980")
	emit := flag.Bool("emit", false, "print generated code skeletons for the first 3x3 layer")
	showLR := flag.Bool("lr", false, "print the full layerwise representation JSON")
	out := flag.String("o", "", "write the deployable compact model (.patdnn) to this path")
	flag.Parse()

	c, err := patdnn.Compile(*network, *ds, *patterns, *connRate)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m := c.Model
	fmt.Printf("%s / %s: %d paper layers, %d CONV, %.1f MB dense, est. accuracy %.1f%%\n",
		m.Name, m.Dataset, m.PaperLayerCount(), len(m.ConvLayers()),
		m.SizeMB(4), c.EstimatedAccuracy())

	for _, target := range []string{"cpu", "gpu"} {
		pat, err := c.EstimateLatencyMs(*dev, target)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\n%s %s latency estimates:\n", *dev, target)
		fmt.Printf("  %-8s %8.1f ms\n", "PatDNN", pat)
		for _, f := range []string{"mnn", "tvm", "tflite", "dense"} {
			ms, err := c.BaselineLatencyMs(f, *dev, target)
			if err != nil {
				fmt.Printf("  %-8s %8s (%v)\n", f, "n/a", err)
				continue
			}
			fmt.Printf("  %-8s %8.1f ms  (%.1fx vs PatDNN)\n", f, ms, ms/pat)
		}
	}

	if *out != "" {
		if err := writeModelFile(*out, m, *patterns, *connRate); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote compact model to %s\n", *out)
	}

	if *showLR {
		data, err := c.LRJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nlayerwise representation:\n%s\n", data)
	}

	if *emit {
		var first *model.Layer
		for _, l := range m.ConvLayers() {
			if l.KH == 3 && l.Kind == model.Conv {
				first = l
				break
			}
		}
		pc := pruned.Generate(first, pattern.Canonical(*patterns), *connRate, 1, true)
		fmt.Printf("\ngenerated CPU code for %s at each optimization level:\n", first.Name)
		var tuned *codegen.Plan
		for _, level := range codegen.AllLevels() {
			plan, err := codegen.Compile(pc, level, lr.DefaultTuning())
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(plan.EmitSource())
			if level == codegen.Tuned {
				tuned = plan
			}
		}
		fmt.Printf("generated GPU (OpenCL) code for %s:\n%s\n", first.Name, tuned.EmitOpenCL())
		fkw, err := sparse.Encode(pc, nil)
		if err == nil {
			csr := sparse.FromConvWeights(pc.Weights)
			fmt.Printf("storage for %s: FKW %d B structure (%d B total) vs CSR %d B structure (%d B total)\n",
				first.Name, fkw.OverheadBytes(), fkw.TotalBytes(4),
				csr.OverheadBytes(), csr.TotalBytes(4))
		}
	}
}
