// Command patdnn-compile runs the paper's execution-code-generation stage on
// one of the evaluation networks: pattern+connectivity pruning at scale,
// filter kernel reorder, FKW encoding, load redundancy elimination, and
// latency estimation on the modeled mobile platforms. It prints the layerwise
// representation (Figure 8), the generated-code skeletons (Figure 7), and the
// per-framework latency comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"patdnn"
	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/registry"
	"patdnn/internal/sparse"
)

// writeModelFile writes the compiled network's deployable compact model to
// path, via a temp file renamed into place: the target may be a live,
// polled models directory, and a truncated half-written artifact there
// would be quarantined by every watching server until the write finished.
// format "graph" emits the v2 full-network artifact (topology + conv/dense/BN
// records — what ResNet-50 and MobileNet-V2 need to serve end to end);
// "conv" emits the legacy v1 3×3-conv-trunk artifact. quantBits >= 2 stores
// conv weights as per-filter symmetric integer levels instead of FP16 — the
// format-v3 quantized artifact the serving engine runs at level packedq8.
func writeModelFile(path, format string, quantBits int, c *patdnn.Compiled) error {
	write := func(w *os.File) error { return c.WriteModelGraphQuant(w, quantBits) }
	switch format {
	case "graph":
	case "conv":
		write = func(w *os.File) error { return c.WriteModelQuant(w, quantBits) }
	default:
		return fmt.Errorf("unknown -format %q (want graph or conv)", format)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func main() {
	network := flag.String("model", "VGG", "network: VGG, RNT, MBNT, SR")
	ds := flag.String("dataset", "imagenet", "dataset: imagenet or cifar10")
	patterns := flag.Int("patterns", 8, "pattern-set size")
	connRate := flag.Float64("conn", 3.6, "connectivity pruning rate")
	dev := flag.String("device", "sd855", "device: sd855, sd845, kirin980")
	emit := flag.Bool("emit", false, "print generated code skeletons for the first 3x3 layer")
	showLR := flag.Bool("lr", false, "print the full layerwise representation JSON")
	out := flag.String("o", "", "write the deployable compact model (.patdnn) to this path")
	format := flag.String("format", "graph",
		"artifact format: graph (v2 full network — serves ResNet-50/MobileNet-V2 end to end) or conv (legacy v1 3x3-conv trunk)")
	quantBits := flag.Int("quant-bits", 0,
		"quantize conv weights to this many bits (2..8) in the written artifact — emits a v3 quantized model served at level packedq8; 0 keeps FP16")
	regDir := flag.String("registry-dir", "",
		"write the compact model into this models directory in registry layout (<name>@<version>.patdnn), creating it if needed")
	regName := flag.String("name", "", "registry artifact name (default: lowercased model short name)")
	regVersion := flag.String("version", "v1", "registry artifact version")
	flag.Parse()

	c, err := patdnn.Compile(*network, *ds, *patterns, *connRate)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m := c.Model
	fmt.Printf("%s / %s: %d paper layers, %d CONV, %.1f MB dense, est. accuracy %.1f%%\n",
		m.Name, m.Dataset, m.PaperLayerCount(), len(m.ConvLayers()),
		m.SizeMB(4), c.EstimatedAccuracy())

	for _, target := range []string{"cpu", "gpu"} {
		pat, err := c.EstimateLatencyMs(*dev, target)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\n%s %s latency estimates:\n", *dev, target)
		fmt.Printf("  %-8s %8.1f ms\n", "PatDNN", pat)
		for _, f := range []string{"mnn", "tvm", "tflite", "dense"} {
			ms, err := c.BaselineLatencyMs(f, *dev, target)
			if err != nil {
				fmt.Printf("  %-8s %8s (%v)\n", f, "n/a", err)
				continue
			}
			fmt.Printf("  %-8s %8.1f ms  (%.1fx vs PatDNN)\n", f, ms, ms/pat)
		}
	}

	if *out != "" {
		if err := writeModelFile(*out, *format, *quantBits, c); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote compact model to %s\n", *out)
	}

	if *regDir != "" {
		name := *regName
		if name == "" {
			name = strings.ToLower(m.Short)
		}
		// Reject names/versions the registry scanner would silently skip
		// (e.g. a name containing '@', or an empty version) — publishing an
		// artifact no server will ever list is worse than failing here.
		base := registry.FileName(name, *regVersion)
		if _, _, err := registry.ParseFileName(base); err != nil {
			fmt.Fprintf(os.Stderr, "bad -name/-version: %v\n", err)
			os.Exit(1)
		}
		if err := os.MkdirAll(*regDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*regDir, base)
		if err := writeModelFile(path, *format, *quantBits, c); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote registry artifact %s@%s to %s (serve with: patdnn-serve -models-dir %s)\n",
			name, *regVersion, path, *regDir)
	}

	if *showLR {
		data, err := c.LRJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nlayerwise representation:\n%s\n", data)
	}

	if *emit {
		var first *model.Layer
		for _, l := range m.ConvLayers() {
			if l.KH == 3 && l.Kind == model.Conv {
				first = l
				break
			}
		}
		pc := pruned.Generate(first, pattern.Canonical(*patterns), *connRate, 1, true)
		fmt.Printf("\ngenerated CPU code for %s at each optimization level:\n", first.Name)
		var tuned *codegen.Plan
		for _, level := range codegen.AllLevels() {
			plan, err := codegen.Compile(pc, level, lr.DefaultTuning())
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(plan.EmitSource())
			if level == codegen.Tuned {
				tuned = plan
			}
		}
		fmt.Printf("generated GPU (OpenCL) code for %s:\n%s\n", first.Name, tuned.EmitOpenCL())
		fkw, err := sparse.Encode(pc, nil)
		if err == nil {
			csr := sparse.FromConvWeights(pc.Weights)
			fmt.Printf("storage for %s: FKW %d B structure (%d B total) vs CSR %d B structure (%d B total)\n",
				first.Name, fkw.OverheadBytes(), fkw.TotalBytes(4),
				csr.OverheadBytes(), csr.TotalBytes(4))
		}
	}
}
