// Command patdnn-run executes a deployed .patdnn compact model: it loads the
// file (LR + FKW-compressed FP16 weights), compiles each layer's execution
// plan at full optimization, runs real inference on synthetic inputs with the
// worker-pool runtime, and reports per-layer host wall-clock plus the
// device-model prediction for the Snapdragon 855.
//
// Models are addressed either by explicit file path, or — with -models-dir —
// through the registry layout the serving stack uses: -model then takes a
// "name" (latest version) or "name@version" spec resolved against the
// directory's <name>@<version>.patdnn artifacts.
//
// Create a model file with:
//
//	patdnn-compile -model VGG -dataset cifar10 -o vgg.patdnn
//	patdnn-compile -model VGG -dataset cifar10 -registry-dir models -name vgg -version v1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/device"
	"patdnn/internal/modelfile"
	"patdnn/internal/registry"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

func main() {
	spec := flag.String("model", "", "path to a .patdnn model file, or a name[@version] spec with -models-dir")
	modelsDir := flag.String("models-dir", "", "resolve -model through this registry models directory instead of as a file path")
	runs := flag.Int("runs", 10, "timed runs per layer")
	threads := flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	flag.Parse()
	if *spec == "" {
		fmt.Fprintln(os.Stderr, "usage: patdnn-run -model file.patdnn [-runs N]\n       patdnn-run -models-dir DIR -model name[@version] [-runs N]")
		os.Exit(2)
	}

	path := *spec
	if *modelsDir != "" {
		loc, err := registry.Locate(*modelsDir, *spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("resolved %s -> %s@%s (%s)\n", *spec, loc.Name, loc.Version, loc.Path)
		path = loc.Path
	}

	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mf, err := modelfile.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("loaded %s: %d pruned conv layers (device %s)\n",
		mf.LR.Model, len(mf.Layers), mf.LR.Device)

	pool := runtime.NewPool(*threads)
	d := device.SD855()
	rng := rand.New(rand.NewSource(1))
	var totalHost, totalDev float64
	for _, layer := range mf.Layers {
		c := layer.Conv
		plan, err := codegen.Compile(c, codegen.Tuned, lr.DefaultTuning())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		in := tensor.New(c.InC, c.InH, c.InW)
		in.Randn(rng, 1)
		hostMs := runtime.Measure(*runs, func() {
			pool.RunLayer(plan, in, layer.Bias)
		})
		devMs := d.TimeMs(plan.Stats(), device.CPU, 8, 4)
		totalHost += hostMs
		totalDev += devMs
		fmt.Printf("  %-10s [%d,%d,3,3] %3dx%-3d  %.2fx compressed  host %8.3f ms  sd855-cpu %8.3f ms\n",
			c.Name, c.OutC, c.InC, c.OutH, c.OutW, c.CompressionRate(), hostMs, devMs)
	}
	fmt.Printf("total: host %.2f ms, sd855-cpu model %.2f ms over %d layers\n",
		totalHost, totalDev, len(mf.Layers))
}
