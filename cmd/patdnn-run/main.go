// Command patdnn-run executes a deployed .patdnn compact model. Format-v2
// graph artifacts (the patdnn-compile default) run end to end through the
// graph executor — BN folded, residual adds fused, liveness-planned arena —
// and report whole-network latency plus fusion/arena stats. Legacy v1
// conv-trunk files compile each layer's execution plan at full optimization
// and report per-layer host wall-clock plus the device-model prediction for
// the Snapdragon 855.
//
// Models are addressed either by explicit file path, or — with -models-dir —
// through the registry layout the serving stack uses: -model then takes a
// "name" (latest version) or "name@version" spec resolved against the
// directory's <name>@<version>.patdnn artifacts.
//
// Create a model file with:
//
//	patdnn-compile -model VGG -dataset cifar10 -o vgg.patdnn
//	patdnn-compile -model VGG -dataset cifar10 -registry-dir models -name vgg -version v1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/execgraph"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/device"
	"patdnn/internal/modelfile"
	"patdnn/internal/registry"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

func main() {
	spec := flag.String("model", "", "path to a .patdnn model file, or a name[@version] spec with -models-dir")
	modelsDir := flag.String("models-dir", "", "resolve -model through this registry models directory instead of as a file path")
	runs := flag.Int("runs", 10, "timed runs per layer")
	threads := flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	flag.Parse()
	if *spec == "" {
		fmt.Fprintln(os.Stderr, "usage: patdnn-run -model file.patdnn [-runs N]\n       patdnn-run -models-dir DIR -model name[@version] [-runs N]")
		os.Exit(2)
	}

	path := *spec
	if *modelsDir != "" {
		loc, err := registry.Locate(*modelsDir, *spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("resolved %s -> %s@%s (%s)\n", *spec, loc.Name, loc.Version, loc.Path)
		path = loc.Path
	}

	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mf, err := modelfile.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("loaded %s: %d pruned conv layers (device %s)\n",
		mf.LR.Model, len(mf.Layers), mf.LR.Device)

	pool := runtime.NewPool(*threads)
	if mf.Net != nil {
		// V2 graph artifact: execute the whole network end to end through the
		// graph executor instead of layer by layer.
		runGraph(mf, pool, *runs)
		return
	}
	d := device.SD855()
	rng := rand.New(rand.NewSource(1))
	var totalHost, totalDev float64
	for _, layer := range mf.Layers {
		c := layer.Conv
		plan, err := codegen.Compile(c, codegen.Tuned, lr.DefaultTuning())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		in := tensor.New(c.InC, c.InH, c.InW)
		in.Randn(rng, 1)
		hostMs := runtime.Measure(*runs, func() {
			pool.RunLayer(plan, in, layer.Bias)
		})
		devMs := d.TimeMs(plan.Stats(), device.CPU, 8, 4)
		totalHost += hostMs
		totalDev += devMs
		fmt.Printf("  %-10s [%d,%d,3,3] %3dx%-3d  %.2fx compressed  host %8.3f ms  sd855-cpu %8.3f ms\n",
			c.Name, c.OutC, c.InC, c.OutH, c.OutW, c.CompressionRate(), hostMs, devMs)
	}
	fmt.Printf("total: host %.2f ms, sd855-cpu model %.2f ms over %d layers\n",
		totalHost, totalDev, len(mf.Layers))
}

// runGraph compiles a v2 graph artifact through execgraph and measures full
// end-to-end inference: BN folded, residual adds fused, all intermediates in
// the liveness-planned arena.
func runGraph(mf *modelfile.File, pool *runtime.Pool, runs int) {
	m, params, err := execgraph.FromFile(mf.Net.Short, mf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plan, err := execgraph.Compile(m, params, execgraph.Config{Level: execgraph.LevelAuto})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	planned, naive := plan.ArenaBytes()
	fmt.Printf("graph artifact %s: %d nodes, %d conv layers, %.2fx compressed\n",
		m.Name, len(plan.Nodes), plan.ConvLayers, plan.Compression())
	fmt.Printf("fused: %d conv+bn, %d conv/fc+relu, %d residual adds; arena %d B (naive %d B, %.1fx reuse)\n",
		plan.Fused.ConvBN, plan.Fused.ConvReLU, plan.Fused.Residual,
		planned, naive, float64(naive)/float64(planned))

	rng := rand.New(rand.NewSource(1))
	in := tensor.New(plan.InC, plan.InH, plan.InW)
	in.Randn(rng, 1)
	out := tensor.New(plan.OutC, plan.OutH, plan.OutW)
	ms := runtime.Measure(runs, func() {
		plan.Execute(pool, []*tensor.Tensor{in}, []*tensor.Tensor{out})
	})
	fmt.Printf("end-to-end: %.3f ms/inference over %d runs, output [%d,%d,%d] argmax %d\n",
		ms, runs, plan.OutC, plan.OutH, plan.OutW, out.ArgMax())
}
