package main

// The -serve-json mode measures the serving engine end to end (compile-once
// plan cache, request batching, batched layer sweeps) and writes the result
// as a stable, versioned JSON artifact. CI uploads BENCH_serve.json on every
// run, so the serving-path perf trajectory — throughput and tail latency —
// is comparable across PRs without digging through test -bench logs.

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"patdnn/internal/serve"
)

// serveBenchSchema versions the BENCH_serve.json format; bump it when the
// fields change meaning so trajectory tooling can tell runs apart. v2 adds
// the per-network sweep (-serve-net): CI uploads one artifact per paper
// network, each self-describing via the "model" field.
const serveBenchSchema = "patdnn/bench-serve/v2"

type serveBenchCase struct {
	Name          string  `json:"name"`
	Level         string  `json:"level,omitempty"` // engine level the sweep served at ("" = auto)
	MaxBatch      int     `json:"max_batch"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	AvgBatch      float64 `json:"avg_batch"`
}

type serveBenchReport struct {
	Schema    string           `json:"schema"`
	Model     string           `json:"model"`
	Go        string           `json:"go"`
	Workers   int              `json:"workers"`
	Timestamp time.Time        `json:"timestamp"`
	Cases     []serveBenchCase `json:"cases"`
}

// writeServeBench runs the serve benchmark sweep for one paper network
// (CIFAR-10 variant through the real engine — graph-compiled end to end —
// batching settings swept, fixed concurrent client count) and writes the
// JSON artifact to path. network is any spelling model.ByName accepts
// ("VGG", "RNT", "MBNT", "resnet50", ...). level pins the engine's
// optimization level for the whole sweep ("packedq8" benchmarks quantized
// serving); empty keeps the engine default and the historical case names,
// so existing baselines keep matching.
func writeServeBench(path string, requests int, network, level string) error {
	if requests < 8 {
		requests = 8
	}
	const clients = 16
	report := serveBenchReport{
		Schema:    serveBenchSchema,
		Model:     network + "/cifar10",
		Go:        runtime.Version(),
		Workers:   runtime.GOMAXPROCS(0),
		Timestamp: time.Now().UTC(),
	}
	for _, maxBatch := range []int{1, 4, 8} {
		c, err := runServeBenchCase(network, level, maxBatch, clients, requests)
		if err != nil {
			return err
		}
		report.Cases = append(report.Cases, c)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	// A write-back failure surfaced at close would otherwise leave a
	// truncated artifact behind a success exit code.
	return f.Close()
}

func runServeBenchCase(network, level string, maxBatch, clients, requests int) (serveBenchCase, error) {
	eng := serve.New(serve.Config{MaxBatch: maxBatch, BatchWindow: time.Millisecond, Level: level})
	defer eng.Close()
	if err := eng.Preload(network, "cifar10"); err != nil {
		return serveBenchCase{}, err
	}

	// Warm the batching path before timing.
	if _, err := eng.Infer(context.Background(), serve.Request{Network: network, Dataset: "cifar10"}); err != nil {
		return serveBenchCase{}, err
	}

	latencies := make([]float64, requests)
	var next int64
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	var firstErr error
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := int(next)
				if i >= requests {
					mu.Unlock()
					return
				}
				next++
				mu.Unlock()
				t0 := time.Now()
				_, err := eng.Infer(context.Background(), serve.Request{Network: network, Dataset: "cifar10"})
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				latencies[i] = float64(time.Since(t0).Nanoseconds()) / 1e6
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return serveBenchCase{}, firstErr
	}
	elapsed := time.Since(start).Seconds()
	sort.Float64s(latencies)
	s := eng.Stats()
	return serveBenchCase{
		Name:          caseName(network, level, maxBatch, clients),
		Level:         level,
		MaxBatch:      maxBatch,
		Clients:       clients,
		Requests:      requests,
		ThroughputRPS: float64(requests) / elapsed,
		P50Ms:         percentile(latencies, 0.50),
		P99Ms:         percentile(latencies, 0.99),
		AvgBatch:      s.AvgBatch,
	}, nil
}

// caseName keys one sweep row for the benchgate baseline matcher. A pinned
// level becomes part of the name ("vgg_cifar10_packedq8_batch4_clients16"),
// so level-specific baselines (e.g. BENCH_serve_VGGQ8.json) never collide
// with the historical default-level names.
func caseName(network, level string, maxBatch, clients int) string {
	name := strings.ToLower(network) + "_cifar10"
	if level != "" {
		name += "_" + strings.ToLower(level)
	}
	return name + "_batch" + strconv.Itoa(maxBatch) + "_clients" + strconv.Itoa(clients)
}

// percentile reads the q-quantile from sorted values (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
