// Command patdnn-bench regenerates the paper's evaluation artifacts: every
// table and figure of the PatDNN evaluation section, plus the extra
// ablations, from this repository's implementations. It also hosts the
// Tuned-vs-Packed kernel sweep: a measured head-to-head of the tuned
// dense-layout kernels against the FKW-direct packed backend on a VGG-style
// layer across batch sizes.
//
// Usage:
//
//	patdnn-bench -list             # show available experiments
//	patdnn-bench -run table3       # regenerate one artifact
//	patdnn-bench -run all          # regenerate everything (minutes)
//	patdnn-bench -sweep            # Tuned vs Packed wall-clock sweep
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	goruntime "runtime"
	"runtime/pprof"
	"time"

	"patdnn/internal/bench"
	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/compiler/tuner"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	run := flag.String("run", "", "experiment ID to run, or 'all'")
	sweep := flag.Bool("sweep", false, "run the Tuned-vs-Packed kernel sweep")
	serveJSON := flag.String("serve-json", "",
		"measure serving throughput + p50/p99 latency and write the versioned JSON artifact (BENCH_serve.json) to this path")
	serveRequests := flag.Int("serve-requests", 96, "timed requests per -serve-json case")
	serveNet := flag.String("serve-net", "VGG",
		"network the -serve-json sweep drives (VGG, RNT, MBNT, SR; CIFAR-10 variants) — CI uploads one artifact per net")
	serveLevel := flag.String("serve-level", "",
		"pin the -serve-json engine to this optimization level (e.g. packedq8 for the quantized-serving baseline); empty = engine default")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected mode to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile (after GC) to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			goruntime.GC() // materialize the steady-state heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	switch {
	case *serveJSON != "":
		if err := writeServeBench(*serveJSON, *serveRequests, *serveNet, *serveLevel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote serve benchmark artifact to %s\n", *serveJSON)
	case *sweep:
		runSweep()
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Desc)
		}
	case *run == "all":
		for _, e := range bench.All() {
			start := time.Now()
			fmt.Println(e.Run().Render())
			fmt.Printf("(%s regenerated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	case *run != "":
		e, ok := bench.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
			os.Exit(1)
		}
		fmt.Println(e.Run().Render())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runSweep measures the tuned dense-layout kernels against the packed
// FKW-direct backend on a VGG-L4-style layer (128×128 channels, 28×28 map,
// 8 patterns, 3.6× connectivity) through the batched execution harness the
// serving engine uses, across batch sizes.
func runSweep() {
	rng := rand.New(rand.NewSource(7))
	const outC, inC, h, w = 128, 128, 28, 28
	weights := tensor.New(outC, inC, 3, 3)
	weights.Randn(rng, 0.1)
	geom := pruned.ConvGeom{Stride: 1, Pad: 1, InH: h, InW: w, OutH: h, OutW: w}
	kernels := float64(outC) * float64(inC)
	conv := pruned.FromWeights("sweep-l4", weights, pattern.Canonical(8), int(kernels/3.6), geom)
	input := tensor.New(inC, h, w)
	input.Randn(rng, 1)
	bias := make([]float32, outC)

	pool := runtime.NewPool(0)
	levels := []codegen.Level{codegen.Tuned, codegen.Packed, codegen.PackedQ8}
	plans := map[codegen.Level]*codegen.Plan{}
	for _, lv := range levels {
		tune := lr.DefaultTuning()
		if lv == codegen.Packed || lv == codegen.PackedQ8 {
			// Budget the tile for the heaviest filter's weight stream, not the
			// layer mean — skewed sparsity otherwise overruns L1. The int8
			// stream is a quarter the bytes, which buys taller tiles.
			bpw := 4
			if lv == codegen.PackedQ8 {
				bpw = 1
			}
			tune = tuner.PackedTuning(conv.OutH, conv.OutW, conv.InW+2*conv.Pad, conv.MaxFilterNNZ(), conv.Stride, bpw)
		}
		p, err := codegen.Compile(conv, lv, tune)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compile %v: %v\n", lv, err)
			os.Exit(1)
		}
		plans[lv] = p
	}

	fmt.Printf("Tuned vs Packed vs Packed-INT8 sweep — %dx%d conv, %dx%d map, %d workers\n",
		outC, inC, h, w, pool.Workers())
	fmt.Printf("%-6s  %-18s  %-18s  %-18s  %-9s  %s\n",
		"batch", codegen.Tuned, codegen.Packed, codegen.PackedQ8, "pk/tuned", "q8/packed")
	for _, batch := range []int{1, 2, 4, 8, 16} {
		ms := map[codegen.Level]float64{}
		for _, lv := range levels {
			plan := plans[lv]
			ms[lv] = runtime.Measure(5, func() {
				runBatchOnce(pool, plan, input, bias, batch)
			})
		}
		fmt.Printf("%-6d  %15.2fms  %15.2fms  %15.2fms  %8.2fx  %8.2fx\n",
			batch, ms[codegen.Tuned], ms[codegen.Packed], ms[codegen.PackedQ8],
			ms[codegen.Tuned]/ms[codegen.Packed], ms[codegen.Packed]/ms[codegen.PackedQ8])
	}
}

// runBatchOnce executes one batched layer sweep through the serving engine's
// exact execution path (runtime.RunLayerBatchFused: pooled padded buffers,
// batch×OutC ParallelFor, fused epilogue).
func runBatchOnce(pool *runtime.Pool, plan *codegen.Plan, input *tensor.Tensor, bias []float32, batch int) {
	inputs := make([]*tensor.Tensor, batch)
	for i := range inputs {
		inputs[i] = input
	}
	outs := pool.RunLayerBatchFused(plan, inputs, bias, true)
	for _, out := range outs {
		runtime.PutTensor(out)
	}
}
