// Command patdnn-bench regenerates the paper's evaluation artifacts: every
// table and figure of the PatDNN evaluation section, plus the extra
// ablations, from this repository's implementations.
//
// Usage:
//
//	patdnn-bench -list             # show available experiments
//	patdnn-bench -run table3       # regenerate one artifact
//	patdnn-bench -run all          # regenerate everything (minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"patdnn/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	run := flag.String("run", "", "experiment ID to run, or 'all'")
	flag.Parse()

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Desc)
		}
	case *run == "all":
		for _, e := range bench.All() {
			start := time.Now()
			fmt.Println(e.Run().Render())
			fmt.Printf("(%s regenerated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	case *run != "":
		e, ok := bench.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
			os.Exit(1)
		}
		fmt.Println(e.Run().Render())
	default:
		flag.Usage()
		os.Exit(2)
	}
}
