// Command patdnn-train runs the paper's pattern-based training stage end to
// end on the real training substrate: it trains a small CNN on the synthetic
// dataset, applies joint kernel-pattern + connectivity pruning with the
// extended ADMM framework, fine-tunes with masked gradients, and reports
// accuracy and compression (the Table 3/4 experiment at laptop scale).
package main

import (
	"flag"
	"fmt"
	"os"

	"patdnn/internal/admm"
	"patdnn/internal/dataset"
	"patdnn/internal/nn"
	"patdnn/internal/pattern"
)

func main() {
	patterns := flag.Int("patterns", 8, "pattern-set size (paper: 6-12)")
	connRate := flag.Float64("conn", 3.6, "connectivity pruning rate (<=1 disables)")
	examples := flag.Int("n", 400, "synthetic dataset size")
	epochs := flag.Int("epochs", 6, "dense pre-training epochs")
	iters := flag.Int("admm", 4, "ADMM iterations")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := dataset.DefaultConfig()
	cfg.N = *examples
	cfg.Seed = *seed
	data := dataset.Synthetic(cfg)
	train, test := data.Split(0.8)
	fmt.Printf("dataset: %d train / %d test, %d classes, %dx%dx%d images\n",
		train.Len(), test.Len(), cfg.Classes, cfg.C, cfg.H, cfg.W)

	net := nn.SmallCNN(cfg.C, cfg.H, cfg.W, 8, 12, cfg.Classes, *seed)
	fmt.Printf("pre-training %d epochs...\n", *epochs)
	nn.Train(net, train, nn.NewAdam(0.004), nn.TrainConfig{
		Epochs: *epochs, BatchSize: 16, Seed: *seed,
	})
	fmt.Printf("dense accuracy: %.1f%%\n", 100*net.Accuracy(test))

	// Design the pattern set from the pre-trained weights (Section 4.1).
	set := pattern.DesignSet(*patterns,
		net.ConvLayers()[0].Weight.W, net.ConvLayers()[1].Weight.W)
	fmt.Printf("designed %d-pattern set from natural patterns:\n", len(set))
	for i, p := range set {
		fmt.Printf("  pattern %d: %s\n", i+1, p)
	}

	acfg := admm.DefaultConfig(set)
	acfg.ConnRate = *connRate
	acfg.Iterations = *iters
	acfg.Seed = *seed
	acfg.SkipFirstConv = true
	fmt.Printf("running ADMM: %d iterations, rho=%.3f, connectivity %.1fx...\n",
		acfg.Iterations, acfg.Rho, acfg.ConnRate)
	rep, err := admm.Run(net, train, test, acfg)
	if err != nil {
		fmt.Println("admm failed:", err)
		os.Exit(1)
	}
	fmt.Print(rep)
	fmt.Printf("ADMM residuals per iteration: %.4f\n", rep.Residuals)
}
