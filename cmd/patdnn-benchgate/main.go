// Command patdnn-benchgate gates serving-benchmark regressions: it pairs
// every BENCH_serve JSON in the committed baseline directory with the
// same-named freshly generated report and exits non-zero when any case's
// throughput drops — or p99 latency rises — beyond the tolerance.
//
//	# CI: fail the build on >15% regression against the committed baselines
//	patdnn-benchgate -baseline bench/baseline -fresh . -tolerance 0.15
//
//	# refresh the baselines after an intentional perf change (or new runner)
//	patdnn-benchgate -baseline bench/baseline -fresh . -update
//
// Exit status: 0 clean, 1 regressions found, 2 usage/IO errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"patdnn/internal/benchgate"
)

func main() {
	os.Exit(run())
}

func run() int {
	baselineDir := flag.String("baseline", "bench/baseline", "directory of committed BENCH_serve baselines")
	freshDir := flag.String("fresh", ".", "directory holding the freshly generated reports (matched by filename)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed relative regression (0.15 = 15%)")
	update := flag.Bool("update", false, "copy the fresh reports over the baselines instead of gating")
	flag.Parse()

	paths, err := filepath.Glob(filepath.Join(*baselineDir, "*.json"))
	if err != nil || len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "patdnn-benchgate: no baselines in %s\n", *baselineDir)
		return 2
	}
	sort.Strings(paths)
	failed := false
	for _, basePath := range paths {
		name := filepath.Base(basePath)
		freshPath := filepath.Join(*freshDir, name)
		if *update {
			raw, err := os.ReadFile(freshPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "patdnn-benchgate: update %s: %v\n", name, err)
				return 2
			}
			if _, err := benchgate.Load(freshPath); err != nil {
				fmt.Fprintf(os.Stderr, "patdnn-benchgate: refusing to install invalid baseline: %v\n", err)
				return 2
			}
			if err := os.WriteFile(basePath, raw, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "patdnn-benchgate: update %s: %v\n", name, err)
				return 2
			}
			fmt.Printf("%-28s baseline updated\n", name)
			continue
		}
		regs, err := benchgate.CompareFiles(basePath, freshPath, *tolerance)
		if err != nil {
			fmt.Fprintf(os.Stderr, "patdnn-benchgate: %s: %v\n", name, err)
			return 2
		}
		if len(regs) == 0 {
			fmt.Printf("%-28s ok (within %.0f%%)\n", name, *tolerance*100)
			continue
		}
		failed = true
		for _, r := range regs {
			fmt.Printf("%-28s REGRESSION %s\n", name, r)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "patdnn-benchgate: regressions found (see above); "+
			"if intentional, refresh baselines with -update")
		return 1
	}
	return 0
}
