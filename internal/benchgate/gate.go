// Package benchgate is the serving-benchmark regression gate: it compares a
// freshly generated BENCH_serve report (cmd/patdnn-bench -serve-json, or a
// cmd/patdnn-loadgen artifact — both write the same schema) against a
// committed baseline and reports every case whose throughput or p99 latency
// regressed beyond the tolerance. CI runs it on every push, turning the
// repo's perf trajectory from an artifact someone might eyeball into a
// check that fails the build.
//
// Baselines are machine-specific: regenerate them (cmd/patdnn-benchgate
// -update) when the runner class changes, not to paper over a regression.
package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Case is the schema subset the gate compares: higher throughput is better,
// lower p99 is better.
type Case struct {
	Name          string  `json:"name"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P99Ms         float64 `json:"p99_ms"`
}

// Report is one BENCH_serve artifact.
type Report struct {
	Schema string `json:"schema"`
	Model  string `json:"model"`
	Cases  []Case `json:"cases"`
}

// Load reads and validates one report file.
func Load(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if r.Schema == "" || len(r.Cases) == 0 {
		return nil, fmt.Errorf("benchgate: %s: not a BENCH_serve report (schema %q, %d cases)",
			path, r.Schema, len(r.Cases))
	}
	return &r, nil
}

// Regression is one gate violation.
type Regression struct {
	Case     string  `json:"case"`
	Metric   string  `json:"metric"` // "throughput_rps", "p99_ms", or "missing"
	Baseline float64 `json:"baseline"`
	Fresh    float64 `json:"fresh"`
	// Ratio is fresh/baseline: < 1-tolerance for throughput regressions,
	// > 1+tolerance for p99 regressions.
	Ratio float64 `json:"ratio"`
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: case present in baseline but missing from fresh report", r.Case)
	}
	return fmt.Sprintf("%s: %s %.2f -> %.2f (%.0f%% of baseline)",
		r.Case, r.Metric, r.Baseline, r.Fresh, r.Ratio*100)
}

// Compare gates fresh against baseline: for every baseline case, throughput
// must not drop below (1-tolerance)x and p99 must not rise above
// (1+tolerance)x; a case that vanished from the fresh report is itself a
// regression (deleting the slow case must not green the gate). Extra fresh
// cases pass freely — new coverage is not a regression. Schema mismatch is
// an error, not a regression: the comparison would be meaningless.
func Compare(baseline, fresh *Report, tolerance float64) ([]Regression, error) {
	if tolerance <= 0 {
		return nil, fmt.Errorf("benchgate: tolerance %g must be positive", tolerance)
	}
	if baseline.Schema != fresh.Schema {
		return nil, fmt.Errorf("benchgate: schema mismatch: baseline %q vs fresh %q",
			baseline.Schema, fresh.Schema)
	}
	freshBy := make(map[string]Case, len(fresh.Cases))
	for _, c := range fresh.Cases {
		freshBy[c.Name] = c
	}
	var regs []Regression
	for _, b := range baseline.Cases {
		f, ok := freshBy[b.Name]
		if !ok {
			regs = append(regs, Regression{Case: b.Name, Metric: "missing"})
			continue
		}
		if b.ThroughputRPS > 0 {
			ratio := f.ThroughputRPS / b.ThroughputRPS
			if ratio < 1-tolerance {
				regs = append(regs, Regression{Case: b.Name, Metric: "throughput_rps",
					Baseline: b.ThroughputRPS, Fresh: f.ThroughputRPS, Ratio: ratio})
			}
		}
		if b.P99Ms > 0 {
			ratio := f.P99Ms / b.P99Ms
			if ratio > 1+tolerance {
				regs = append(regs, Regression{Case: b.Name, Metric: "p99_ms",
					Baseline: b.P99Ms, Fresh: f.P99Ms, Ratio: ratio})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Case != regs[j].Case {
			return regs[i].Case < regs[j].Case
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs, nil
}

// CompareFiles loads both reports and gates fresh against baseline.
func CompareFiles(baselinePath, freshPath string, tolerance float64) ([]Regression, error) {
	baseline, err := Load(baselinePath)
	if err != nil {
		return nil, err
	}
	fresh, err := Load(freshPath)
	if err != nil {
		return nil, err
	}
	return Compare(baseline, fresh, tolerance)
}
