package benchgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(schema string, cases ...Case) *Report {
	return &Report{Schema: schema, Model: "VGG/cifar10", Cases: cases}
}

func TestCompareGatesBothMetrics(t *testing.T) {
	base := report("v2",
		Case{Name: "a", ThroughputRPS: 100, P99Ms: 50},
		Case{Name: "b", ThroughputRPS: 200, P99Ms: 20},
	)

	// Within tolerance (±15%): no regressions, including mild improvements.
	fresh := report("v2",
		Case{Name: "a", ThroughputRPS: 90, P99Ms: 55},
		Case{Name: "b", ThroughputRPS: 230, P99Ms: 15},
	)
	regs, err := Compare(base, fresh, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}

	// Throughput collapse on a, p99 blow-up on b: both flagged, sorted.
	bad := report("v2",
		Case{Name: "a", ThroughputRPS: 80, P99Ms: 50},
		Case{Name: "b", ThroughputRPS: 200, P99Ms: 24},
	)
	regs, err = Compare(base, bad, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 || regs[0].Case != "a" || regs[0].Metric != "throughput_rps" ||
		regs[1].Case != "b" || regs[1].Metric != "p99_ms" {
		t.Fatalf("regressions: %v", regs)
	}
	if regs[0].Ratio >= 0.85 || regs[1].Ratio <= 1.15 {
		t.Fatalf("ratios wrong: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "throughput_rps 100.00 -> 80.00") {
		t.Fatalf("message: %s", regs[0])
	}
}

func TestCompareMissingCaseIsRegression(t *testing.T) {
	base := report("v2", Case{Name: "a", ThroughputRPS: 100, P99Ms: 50},
		Case{Name: "b", ThroughputRPS: 10, P99Ms: 500})
	fresh := report("v2", Case{Name: "a", ThroughputRPS: 100, P99Ms: 50},
		Case{Name: "c", ThroughputRPS: 1, P99Ms: 1})
	regs, err := Compare(base, fresh, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Case != "b" || regs[0].Metric != "missing" {
		t.Fatalf("dropping the slow case must not green the gate: %v", regs)
	}
}

func TestCompareErrors(t *testing.T) {
	base := report("v2", Case{Name: "a", ThroughputRPS: 1, P99Ms: 1})
	if _, err := Compare(base, report("v3", base.Cases[0]), 0.15); err == nil {
		t.Fatal("schema mismatch must error")
	}
	if _, err := Compare(base, base, 0); err == nil {
		t.Fatal("zero tolerance must error")
	}
}

func TestLoadAndCompareFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	basePath := write("base.json",
		`{"schema":"v2","model":"m","cases":[{"name":"a","throughput_rps":100,"p99_ms":10}]}`)
	freshPath := write("fresh.json",
		`{"schema":"v2","model":"m","cases":[{"name":"a","throughput_rps":50,"p99_ms":10}]}`)
	regs, err := CompareFiles(basePath, freshPath, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "throughput_rps" {
		t.Fatalf("regs: %v", regs)
	}

	if _, err := Load(write("empty.json", `{"schema":"v2","cases":[]}`)); err == nil {
		t.Fatal("empty report must not load")
	}
	if _, err := Load(write("garbage.json", `{{`)); err == nil {
		t.Fatal("garbage must not load")
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file must error")
	}
}
