package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/model"
	"patdnn/internal/modelfile"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
)

// tinyFile builds a small valid two-conv artifact (conv 2→4 @8×8, conv 4→4
// @4×4) whose weights vary with seed, so versions are distinguishable.
func tinyFile(seed int64) *modelfile.File {
	set := pattern.Canonical(8)
	l1 := &model.Layer{Name: "c1", Kind: model.Conv, InC: 2, OutC: 4, KH: 3, KW: 3,
		Stride: 1, Pad: 1, Groups: 1, InH: 8, InW: 8, OutH: 8, OutW: 8}
	l2 := &model.Layer{Name: "c2", Kind: model.Conv, InC: 4, OutC: 4, KH: 3, KW: 3,
		Stride: 1, Pad: 1, Groups: 1, InH: 4, InW: 4, OutH: 4, OutW: 4}
	f := &modelfile.File{LR: &lr.Representation{Model: "tiny", Device: "CPU"}}
	for i, l := range []*model.Layer{l1, l2} {
		c := pruned.Generate(l, set, 2, seed+int64(i), true)
		f.Layers = append(f.Layers, modelfile.Layer{Conv: c})
	}
	return f
}

// writeArtifact writes a tiny artifact as <dir>/<name>@<ver>.patdnn and bumps
// its modtime past any previous content at the same path (filesystem modtime
// granularity must not hide the rewrite from Scan's size+modtime diff).
func writeArtifact(t *testing.T, dir, name, ver string, seed int64) string {
	t.Helper()
	path := filepath.Join(dir, FileName(name, ver))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := modelfile.Write(f, tinyFile(seed)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	bumpModTime(t, path, seed)
	return path
}

// bumpModTime gives path a distinct deterministic modtime per seed so
// rewrites always look changed to the scanner.
func bumpModTime(t *testing.T, path string, seed int64) {
	t.Helper()
	mt := time.Unix(1700000000+seed, seed)
	if err := os.Chtimes(path, mt, mt); err != nil {
		t.Fatal(err)
	}
}

// fakeArt is a loader artifact with fixed byte cost and release tracking.
type fakeArt struct {
	name, ver string
	bytes     int64
	released  atomic.Bool
}

func (a *fakeArt) MemoryBytes() int64 { return a.bytes }
func (a *fakeArt) Release()           { a.released.Store(true) }

// fakeLoader returns artifacts of fixed size and counts loads.
func fakeLoader(bytes int64, loads *atomic.Int64) Loader {
	return LoaderFunc(func(name, ver string, f *modelfile.File) (Artifact, error) {
		if loads != nil {
			loads.Add(1)
		}
		return &fakeArt{name: name, ver: ver, bytes: bytes}, nil
	})
}

func openTest(t *testing.T, dir string, budget int64, loader Loader) *Registry {
	t.Helper()
	r, err := Open(Config{Dir: dir, MemoryBudget: budget, Poll: -1}, loader)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestScanResolveAndAliases(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "a", "v1", 1)
	writeArtifact(t, dir, "a", "v2", 2)
	// Bare filename means v1.
	path := filepath.Join(dir, "b"+Ext)
	src, _ := os.ReadFile(filepath.Join(dir, FileName("a", "v1")))
	if err := os.WriteFile(path, src, 0o644); err != nil {
		t.Fatal(err)
	}
	// Non-artifacts are ignored.
	os.WriteFile(filepath.Join(dir, "README.md"), []byte("docs"), 0o644)

	r := openTest(t, dir, 0, fakeLoader(10, nil))
	res, err := r.Resolve("a")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != "v2" {
		t.Fatalf("bare name resolved to %s, want latest v2", res.Version)
	}
	if res, err = r.Resolve("a@v1"); err != nil || res.Version != "v1" {
		t.Fatalf("exact resolve = %v/%v, want v1", res, err)
	}
	if res, err = r.Resolve("b"); err != nil || res.Version != "v1" {
		t.Fatalf("bare filename resolve = %v/%v, want b@v1", res, err)
	}
	if _, err = r.Resolve("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing model: %v, want ErrNotFound", err)
	}
	if _, err = r.Resolve("a@v9"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing version: %v, want ErrNotFound", err)
	}

	ms := r.Models()
	if len(ms) != 3 {
		t.Fatalf("Models() = %d entries, want 3: %+v", len(ms), ms)
	}
	if ms[0].Name != "a" || ms[0].Version != "v1" || ms[0].Default {
		t.Fatalf("ms[0] = %+v, want a@v1 non-default", ms[0])
	}
	if ms[1].Version != "v2" || !ms[1].Default {
		t.Fatalf("ms[1] = %+v, want a@v2 default", ms[1])
	}
	if ms[1].ConvLayers != 2 || ms[1].Model != "tiny" || ms[1].FileBytes == 0 {
		t.Fatalf("artifact metadata not captured: %+v", ms[1])
	}
	if s := r.Stats(); s.Models != 2 || s.Versions != 3 || s.Loaded != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestParseFileName(t *testing.T) {
	cases := []struct {
		base, name, ver string
		ok              bool
	}{
		{"vgg@v2.patdnn", "vgg", "v2", true},
		{"vgg.patdnn", "vgg", "v1", true},
		{"a@b@v3.patdnn", "a@b", "v3", false}, // name must not contain @
		{"sub/vgg@v1.patdnn", "", "", false},  // path separators never scan
		{`sub\vgg.patdnn`, "", "", false},
		{"@v1.patdnn", "", "", false},
		{"vgg@.patdnn", "", "", false},
		{"vgg.bin", "", "", false},
	}
	for _, c := range cases {
		name, ver, err := ParseFileName(c.base)
		if (err == nil) != c.ok {
			t.Fatalf("ParseFileName(%q) err=%v, want ok=%v", c.base, err, c.ok)
		}
		if c.ok && (name != c.name || ver != c.ver) {
			t.Fatalf("ParseFileName(%q) = %q@%q, want %q@%q", c.base, name, ver, c.name, c.ver)
		}
	}
}

func TestCompareVersions(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"v1", "v2", -1}, {"v2", "v10", -1}, {"v10", "v9", 1},
		{"v3", "v3", 0}, {"3", "v4", -1}, {"beta", "v1", -1},
		{"alpha", "beta", -1},
	}
	for _, c := range cases {
		if got := CompareVersions(c.a, c.b); got != c.want {
			t.Fatalf("CompareVersions(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestWeightedRouteDeterministicSplit(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "a", "v1", 1)
	writeArtifact(t, dir, "a", "v2", 2)
	sequence := func(seed int64, n int) []string {
		r, err := Open(Config{Dir: dir, Poll: -1, Seed: seed}, fakeLoader(1, nil))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if err := r.SetRoute("a", map[string]int{"v1": 3, "v2": 1}); err != nil {
			t.Fatal(err)
		}
		out := make([]string, n)
		for i := range out {
			res, err := r.Resolve("a")
			if err != nil {
				t.Fatal(err)
			}
			out[i] = res.Version
		}
		return out
	}

	seq := sequence(7, 400)
	counts := map[string]int{}
	for _, v := range seq {
		counts[v]++
	}
	// 3:1 split over 400 picks: v2 expects 100. The picker is deterministic,
	// so these bounds never flake — they assert the hash spreads sanely.
	if counts["v2"] < 50 || counts["v2"] > 150 {
		t.Fatalf("v2 served %d/400, want ~100 under a 3:1 route", counts["v2"])
	}
	if counts["v1"]+counts["v2"] != 400 {
		t.Fatalf("route served unexpected versions: %v", counts)
	}
	// Same seed reproduces the same sequence; a different seed changes it.
	again := sequence(7, 400)
	for i := range seq {
		if seq[i] != again[i] {
			t.Fatalf("pick %d differs across runs with equal seed: %s vs %s", i, seq[i], again[i])
		}
	}
	other := sequence(8, 400)
	same := true
	for i := range seq {
		if seq[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed does not influence the route picker")
	}
}

func TestRouteValidationAndClear(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "a", "v1", 1)
	writeArtifact(t, dir, "a", "v2", 2)
	r := openTest(t, dir, 0, fakeLoader(1, nil))

	if err := r.SetRoute("missing", map[string]int{"v1": 1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("route to missing model: %v", err)
	}
	if err := r.SetRoute("a", map[string]int{"v9": 1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("route to missing version: %v", err)
	}
	if err := r.SetRoute("a", map[string]int{"v1": 0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := r.SetRoute("a", nil); err == nil {
		t.Fatal("empty route accepted")
	}
	// Single-leg route pins the bare name: the mutable alias.
	if err := r.SetRoute("a", map[string]int{"v1": 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if res, _ := r.Resolve("a"); res.Version != "v1" {
			t.Fatalf("pinned alias resolved to %s", res.Version)
		}
	}
	if rt := r.Routes(); len(rt["a"]) != 1 || rt["a"][0] != (RouteWeight{Version: "v1", Weight: 1}) {
		t.Fatalf("Routes() = %+v", rt)
	}
	r.ClearRoute("a")
	if res, _ := r.Resolve("a"); res.Version != "v2" {
		t.Fatalf("after ClearRoute resolved to %s, want latest v2", res.Version)
	}
}

func TestMemoryBudgetLRUEvictionAndLazyReload(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "a", "v1", 1)
	writeArtifact(t, dir, "a", "v2", 2)
	writeArtifact(t, dir, "b", "v1", 3)
	var loads atomic.Int64
	r := openTest(t, dir, 250, fakeLoader(100, &loads))

	a1, _ := r.Resolve("a@v1")
	time.Sleep(2 * time.Millisecond) // order lastUsed unambiguously
	if _, err := r.Resolve("a@v2"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, err := r.Resolve("b@v1"); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Evictions != 1 || s.BytesInUse != 200 || s.Loaded != 2 {
		t.Fatalf("after third load: %+v, want 1 eviction, 200 bytes, 2 loaded", s)
	}
	if !a1.Artifact.(*fakeArt).released.Load() {
		t.Fatal("evicted artifact was not released")
	}
	// The evicted LRU victim must be a@v1 (oldest lastUsed); resolving it
	// again is a lazy reload that evicts the next LRU (a@v2).
	if _, err := r.Resolve("a@v1"); err != nil {
		t.Fatal(err)
	}
	s = r.Stats()
	if s.LazyReloads != 1 || s.Evictions != 2 || s.BytesInUse != 200 {
		t.Fatalf("after lazy reload: %+v", s)
	}
	if loads.Load() != 4 {
		t.Fatalf("loader ran %d times, want 4 (3 cold + 1 lazy reload)", loads.Load())
	}
	ms := r.Models()
	var av1 ModelInfo
	for _, m := range ms {
		if m.Name == "a" && m.Version == "v1" {
			av1 = m
		}
	}
	if av1.Loads != 2 || av1.Evictions != 1 || !av1.Loaded {
		t.Fatalf("a@v1 info = %+v", av1)
	}

	// Shrinking the budget at runtime evicts immediately.
	r.SetMemoryBudget(50)
	if s = r.Stats(); s.Loaded != 0 || s.BytesInUse != 0 {
		t.Fatalf("after budget shrink: %+v, want everything evicted", s)
	}
}

func TestCorruptArtifactQuarantinedKeepsLastGood(t *testing.T) {
	dir := t.TempDir()
	path := writeArtifact(t, dir, "a", "v1", 1)
	var loads atomic.Int64
	r := openTest(t, dir, 0, fakeLoader(10, &loads))
	first, err := r.Resolve("a")
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the file in place: the scanner must quarantine it and keep the
	// resident artifact serving.
	if err := os.WriteFile(path, []byte("PATDNN garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	bumpModTime(t, path, 50)
	if err := r.Scan(); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.BadFiles != 1 || len(s.Quarantined) != 1 || !strings.Contains(s.Quarantined[0].Error, "modelfile") {
		t.Fatalf("quarantine state: %+v", s)
	}
	res, err := r.Resolve("a")
	if err != nil || res.Artifact != first.Artifact {
		t.Fatalf("corrupt rewrite displaced the good artifact: %v, %v", res, err)
	}
	// An unchanged corrupt file is not re-parsed every scan.
	if err := r.Scan(); err != nil {
		t.Fatal(err)
	}
	if s = r.Stats(); s.BadFiles != 1 {
		t.Fatalf("unchanged corrupt file re-quarantined: %+v", s)
	}

	// A corrupt NEW version must not become the alias target.
	if err := os.WriteFile(filepath.Join(dir, FileName("a", "v2")), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Scan(); err != nil {
		t.Fatal(err)
	}
	if res, _ = r.Resolve("a"); res.Version != "v1" {
		t.Fatalf("corrupt v2 became alias target (%s)", res.Version)
	}

	// Fixing the file hot-swaps it in: old artifact released, loader reruns.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := modelfile.Write(f, tinyFile(9)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	bumpModTime(t, path, 60)
	if err := r.Scan(); err != nil {
		t.Fatal(err)
	}
	if s = r.Stats(); len(s.Quarantined) != 1 || s.Reloads != 1 {
		t.Fatalf("after fix: %+v, want v2 still quarantined and one reload", s)
	}
	if _, err := r.Resolve("a"); err != nil {
		t.Fatal(err)
	}
	if !first.Artifact.(*fakeArt).released.Load() {
		t.Fatal("replaced artifact was not released")
	}
	if loads.Load() != 2 {
		t.Fatalf("loader ran %d times, want 2 (original + hot-swapped)", loads.Load())
	}
}

// TestBareAndExplicitTwinFilesAreStable: `a.patdnn` and `a@v1.patdnn` both
// mean a@v1; the explicit file must win deterministically and steady-state
// rescans must not thrash the entry between the two paths (each swap would
// release the compiled artifact and force a recompile).
func TestBareAndExplicitTwinFilesAreStable(t *testing.T) {
	dir := t.TempDir()
	explicit := writeArtifact(t, dir, "a", "v1", 1)
	src, _ := os.ReadFile(explicit)
	if err := os.WriteFile(filepath.Join(dir, "a"+Ext), src, 0o644); err != nil {
		t.Fatal(err)
	}
	var loads atomic.Int64
	r := openTest(t, dir, 0, fakeLoader(10, &loads))
	first, err := r.Resolve("a")
	if err != nil || first.Version != "v1" {
		t.Fatalf("resolve: %v/%v", first, err)
	}
	for i := 0; i < 3; i++ {
		if err := r.Scan(); err != nil {
			t.Fatal(err)
		}
	}
	s := r.Stats()
	if s.Reloads != 0 || s.Versions != 1 {
		t.Fatalf("steady-state scans thrashed the twin files: %+v", s)
	}
	if len(s.Quarantined) != 1 || !strings.Contains(s.Quarantined[0].Error, "duplicates") {
		t.Fatalf("shorthand twin not quarantined: %+v", s.Quarantined)
	}
	if ms := r.Models(); ms[0].Path != explicit {
		t.Fatalf("explicit file did not win: %+v", ms[0])
	}
	// No swap happened, so the resident artifact was never released.
	if res, _ := r.Resolve("a"); res.Artifact != first.Artifact || loads.Load() != 1 {
		t.Fatalf("artifact churned across scans (loads=%d)", loads.Load())
	}
}

func TestRemovedFileDropsVersion(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "a", "v1", 1)
	path2 := writeArtifact(t, dir, "a", "v2", 2)
	r := openTest(t, dir, 0, fakeLoader(10, nil))
	v2, err := r.Resolve("a") // loads v2 (latest)
	if err != nil || v2.Version != "v2" {
		t.Fatal(err)
	}
	if err := os.Remove(path2); err != nil {
		t.Fatal(err)
	}
	if err := r.Scan(); err != nil {
		t.Fatal(err)
	}
	if res, err := r.Resolve("a"); err != nil || res.Version != "v1" {
		t.Fatalf("after removal resolve = %v/%v, want v1", res, err)
	}
	if !v2.Artifact.(*fakeArt).released.Load() {
		t.Fatal("removed version's artifact was not released")
	}
	if s := r.Stats(); s.Removed != 1 || s.BytesInUse != 10 {
		t.Fatalf("stats after removal: %+v", s)
	}
}

func TestLoadErrorSurfacedPerRequest(t *testing.T) {
	dir := t.TempDir()
	path := writeArtifact(t, dir, "a", "v1", 1)
	r := openTest(t, dir, 0, fakeLoader(10, nil))
	// Delete the file without rescanning: the lazy load must error, not
	// panic, and the failure shows up in Models().
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve("a"); err == nil {
		t.Fatal("resolve of vanished file succeeded")
	}
	if ms := r.Models(); len(ms) != 1 || ms[0].Error == "" {
		t.Fatalf("load error not surfaced: %+v", ms)
	}
}

func TestPollerHotReload(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "a", "v1", 1)
	r, err := Open(Config{Dir: dir, Poll: 10 * time.Millisecond}, fakeLoader(10, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	writeArtifact(t, dir, "a", "v2", 2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if res, err := r.Resolve("a"); err == nil && res.Version == "v2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("poller never picked up a@v2")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s := r.Stats(); s.Reloads != 1 {
		t.Fatalf("stats after poll reload: %+v", s)
	}
}

func TestLocate(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "a", "v1", 1)
	writeArtifact(t, dir, "a", "v10", 2)
	writeArtifact(t, dir, "a", "v9", 3)
	loc, err := Locate(dir, "a")
	if err != nil || loc.Version != "v10" {
		t.Fatalf("Locate latest = %+v/%v, want v10", loc, err)
	}
	// A bare twin of v1 must lose to the explicit file, matching the
	// serving registry's resolution.
	src, _ := os.ReadFile(filepath.Join(dir, FileName("a", "v1")))
	if err := os.WriteFile(filepath.Join(dir, "a"+Ext), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if loc, err = Locate(dir, "a@v1"); err != nil || loc.Path != filepath.Join(dir, "a@v1.patdnn") {
		t.Fatalf("Locate twin v1 = %+v/%v, want the explicit file", loc, err)
	}
	os.Remove(filepath.Join(dir, "a"+Ext))
	if loc, err = Locate(dir, "a@v9"); err != nil || loc.Path != filepath.Join(dir, "a@v9.patdnn") {
		t.Fatalf("Locate exact = %+v/%v", loc, err)
	}
	if _, err = Locate(dir, "a@v2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Locate missing version: %v", err)
	}
	if _, err = Locate(dir, "zzz"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Locate missing name: %v", err)
	}
}

func TestConcurrencyHammer(t *testing.T) {
	// Resolve + Scan + SetRoute + SetMemoryBudget under the race detector:
	// versions are rewritten, corrupted, and evicted while traffic flows.
	dir := t.TempDir()
	writeArtifact(t, dir, "a", "v1", 1)
	writeArtifact(t, dir, "a", "v2", 2)
	writeArtifact(t, dir, "b", "v1", 3)
	var loads atomic.Int64
	r := openTest(t, dir, 25, fakeLoader(10, &loads))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			specs := []string{"a", "a@v1", "a@v2", "b"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := r.Resolve(specs[(i+g)%len(specs)])
				if err != nil && !errors.Is(err, ErrNotFound) && !strings.Contains(err.Error(), "load") {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			// Alternate rewriting a good v2 and corrupting it.
			if i%2 == 0 {
				writeArtifact(t, dir, "a", "v2", int64(100+i))
			} else {
				p := filepath.Join(dir, FileName("a", "v2"))
				os.WriteFile(p, []byte("garbage"), 0o644)
				bumpModTime(t, p, int64(200+i))
			}
			if err := r.Scan(); err != nil {
				t.Error(err)
				return
			}
			if i%5 == 0 {
				_ = r.SetRoute("a", map[string]int{"v1": 9, "v2": 1})
				r.SetMemoryBudget(int64(15 + i))
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Whatever interleaving happened, the books must balance: resident bytes
	// equal 10× loaded versions and the last good v1 still serves.
	s := r.Stats()
	if int64(s.Loaded)*10 != s.BytesInUse {
		t.Fatalf("byte accounting drifted: %+v", s)
	}
	if _, err := r.Resolve("a@v1"); err != nil {
		t.Fatal(err)
	}
}

func TestReadinessAndClose(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "a", "v1", 1)
	r := openTest(t, dir, 0, fakeLoader(10, nil))
	if rd := r.Readiness(); !rd.Ready || !rd.InitialScan || rd.Loading != 0 {
		t.Fatalf("readiness after Open = %+v", rd)
	}
	res, err := r.Resolve("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !res.Artifact.(*fakeArt).released.Load() {
		t.Fatal("Close did not release resident artifacts")
	}
	if _, err := r.Resolve("a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Resolve after Close = %v", err)
	}
	if err := r.Scan(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Scan after Close = %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal("Close must be idempotent:", err)
	}
	_ = fmt.Sprintf("%v", res) // keep res alive past the release assertions
}
