package registry

// Directory scanning: the on-disk contract is one `.patdnn` artifact per
// model version, named `<name>@<version>.patdnn` (a bare `<name>.patdnn` is
// shorthand for version v1). Scan diffs the directory against the known
// state by (size, modtime), validates new or changed files with modelfile's
// checked reader, and applies the changes as atomic swaps under the registry
// lock: a corrupt replacement is quarantined and never displaces the last
// good version.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"patdnn/internal/modelfile"
)

// Ext is the artifact file extension the registry scans for.
const Ext = ".patdnn"

// SplitSpec splits a model spec into name and version: "vgg@v2" → ("vgg",
// "v2", true); bare "vgg" → ("vgg", "", false).
func SplitSpec(spec string) (name, version string, exact bool) {
	if i := strings.LastIndex(spec, "@"); i >= 0 {
		return spec[:i], spec[i+1:], true
	}
	return spec, "", false
}

// ParseFileName maps an artifact filename to its (name, version): an `@`
// separates them, a missing version means "v1", and anything not ending in
// .patdnn is rejected.
func ParseFileName(base string) (name, version string, err error) {
	if !strings.HasSuffix(base, Ext) {
		return "", "", fmt.Errorf("registry: %q is not a %s artifact", base, Ext)
	}
	stem := strings.TrimSuffix(base, Ext)
	name, version, exact := SplitSpec(stem)
	if !exact {
		version = "v1"
	}
	// Path separators never appear in the base names the scanner reads, but
	// ParseFileName also validates names/versions about to be published
	// (patdnn-compile): a separator would land the artifact outside the flat
	// directory the non-recursive scanner lists.
	if name == "" || version == "" || strings.Contains(name, "@") ||
		strings.ContainsAny(stem, `/\`) {
		return "", "", fmt.Errorf("registry: artifact name %q is not <name>[@<version>]%s", base, Ext)
	}
	return name, version, nil
}

// FileName renders the canonical artifact filename for a model version.
func FileName(name, version string) string {
	return name + "@" + version + Ext
}

// CompareVersions orders version strings: "v<N>" (or bare "<N>") tags compare
// numerically — v2 < v10 — numeric tags sort above non-numeric ones, and
// everything else falls back to lexicographic order. Returns -1, 0, or 1.
func CompareVersions(a, b string) int {
	an, aok := versionNumber(a)
	bn, bok := versionNumber(b)
	switch {
	case aok && bok:
		if an != bn {
			if an < bn {
				return -1
			}
			return 1
		}
	case aok:
		return 1
	case bok:
		return -1
	}
	return strings.Compare(a, b)
}

func versionNumber(v string) (int64, bool) {
	s := strings.TrimPrefix(strings.ToLower(v), "v")
	if s == "" {
		return 0, false
	}
	n, err := strconv.ParseInt(s, 10, 64)
	return n, err == nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// readArtifact opens and fully validates one .patdnn file through the
// checked reader (magic, CRC32 footer, bounds-checked decode, structural
// validation of every layer).
func readArtifact(path string) (*modelfile.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return modelfile.Read(f)
}

// Scan rescans the models directory and applies the diff: new versions
// appear, changed files are re-validated and atomically swapped in, corrupt
// files are quarantined (keeping any previously good entry for the same
// version), and deleted files drop their versions. Artifacts displaced by a
// swap or removal are Released after the lock is dropped; in-flight users
// are unaffected.
func (r *Registry) Scan() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.scansBusy++
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.scansBusy--
		r.scans++
		r.scanned = true
		r.mu.Unlock()
	}()

	ents, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return fmt.Errorf("registry: scan: %w", err)
	}

	present := make(map[string]bool) // path -> exists this scan
	var released []Artifact

	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		name, version, err := ParseFileName(de.Name())
		if err != nil {
			continue // not an artifact (README, tmp files, ...)
		}
		path := filepath.Join(r.cfg.Dir, de.Name())
		fi, err := de.Info()
		if err != nil {
			continue // raced with a delete; next scan settles it
		}
		present[path] = true

		r.mu.Lock()
		cur := r.models[name][version]
		// A bare `<name>.patdnn` and an explicit `<name>@v1.patdnn` both map
		// to (name, v1). Without a deterministic winner every scan would see
		// one of the two paths as "changed" and perpetually swap the entry,
		// releasing its compiled artifact each time. The explicit form wins;
		// the shorthand twin is quarantined (visible in Stats) until its
		// rival disappears and the file is touched.
		if cur != nil && cur.path != path && !strings.Contains(de.Name(), "@") {
			if _, seen := r.quarantine[path]; !seen {
				r.quarantine[path] = badFile{fileSize: fi.Size(), modTime: fi.ModTime(),
					err: fmt.Errorf("registry: %s duplicates %s for %s@%s (the explicit @%s file wins)",
						de.Name(), filepath.Base(cur.path), name, version, version)}
				r.badFiles++
				r.logf("registry: quarantined %s: duplicates %s", path, cur.path)
			}
			r.mu.Unlock()
			continue
		}
		unchanged := cur != nil && cur.path == path &&
			cur.fileSize == fi.Size() && cur.modTime.Equal(fi.ModTime())
		bad, wasBad := r.quarantine[path]
		badUnchanged := wasBad && bad.fileSize == fi.Size() && bad.modTime.Equal(fi.ModTime())
		initial := !r.scanned
		r.mu.Unlock()
		if unchanged || badUnchanged {
			continue
		}

		// New or changed: validate the whole file before touching the
		// registry state, outside the lock.
		mf, verr := readArtifact(path)
		r.mu.Lock()
		if verr != nil {
			// Quarantine: log-and-skip, and critically keep any existing good
			// entry for this version serving (a corrupt replacement must not
			// evict the last good artifact — its compiled form, if resident,
			// stays; if it was evicted, lazy reload will surface the error
			// per request until the file is fixed).
			r.quarantine[path] = badFile{fileSize: fi.Size(), modTime: fi.ModTime(), err: verr}
			r.badFiles++
			r.mu.Unlock()
			r.logf("registry: quarantined %s: %v", path, verr)
			continue
		}
		delete(r.quarantine, path)
		e := &entry{
			name: name, version: version, path: path,
			fileSize: fi.Size(), modTime: fi.ModTime(),
			modelName: mf.LR.Model, convLayers: len(mf.Layers),
		}
		if r.models[name] == nil {
			r.models[name] = make(map[string]*entry)
		}
		// Re-fetch under this lock hold: a concurrent Scan may have swapped
		// the entry while we were validating the file.
		cur = r.models[name][version]
		if cur != nil {
			// Atomic swap: the new entry replaces the old under the lock; new
			// resolves load the new file, in-flight requests keep the old
			// compiled plans they already hold.
			if cur.artifact != nil {
				released = append(released, cur.artifact)
				r.bytesInUse -= cur.bytes
			}
			e.lastUsed = cur.lastUsed
		}
		r.models[name][version] = e
		if !initial {
			r.reloads++
		}
		r.mu.Unlock()
		if !initial {
			verb := "added"
			if cur != nil {
				verb = "replaced"
			}
			r.logf("registry: %s %s@%s (%d layers, %d bytes on disk)",
				verb, name, version, e.convLayers, e.fileSize)
		}
	}

	// Drop versions whose file disappeared, and forget quarantine records for
	// vanished paths. `present` is this scan's ReadDir snapshot, which a
	// concurrent Scan may have outrun (its file landed after our listing) —
	// re-stat before removing so a stale snapshot never deletes a version a
	// newer scan just registered.
	r.mu.Lock()
	for name, vs := range r.models {
		for version, e := range vs {
			if present[e.path] || fileExists(e.path) {
				continue
			}
			if e.artifact != nil {
				released = append(released, e.artifact)
				r.bytesInUse -= e.bytes
			}
			delete(vs, version)
			r.removed++
			r.logf("registry: removed %s@%s (file gone)", name, version)
		}
		if len(vs) == 0 {
			delete(r.models, name)
		}
	}
	for path := range r.quarantine {
		if !present[path] && !fileExists(path) {
			delete(r.quarantine, path)
		}
	}
	r.mu.Unlock()

	release(released)
	return nil
}

// Located is the result of a path-only registry lookup.
type Located struct {
	Name    string
	Version string
	Path    string
}

// Locate resolves a model spec ("name" or "name@version") against a models
// directory by filename only — no artifact is read. Bare names resolve to
// the latest version. Used by cmd/patdnn-run to address artifacts the same
// way the serving registry does, without standing up a full Registry.
func Locate(dir, spec string) (Located, error) {
	wantName, wantVer, exact := SplitSpec(spec)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return Located{}, fmt.Errorf("registry: %w", err)
	}
	var best Located
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		name, version, err := ParseFileName(de.Name())
		if err != nil || name != wantName {
			continue
		}
		// A bare <name>.patdnn and an explicit <name>@v1.patdnn both mean
		// v1; the explicit file wins, matching the serving Registry's twin
		// handling so offline and online resolution pick the same artifact.
		explicit := strings.Contains(de.Name(), "@")
		loc := Located{Name: name, Version: version, Path: filepath.Join(dir, de.Name())}
		if exact {
			if version == wantVer && (best.Path == "" || explicit) {
				best = loc
			}
			continue
		}
		if best.Path == "" || CompareVersions(version, best.Version) > 0 ||
			(CompareVersions(version, best.Version) == 0 && explicit) {
			best = loc
		}
	}
	if best.Path == "" {
		return Located{}, fmt.Errorf("%w: %q in %s", ErrNotFound, spec, dir)
	}
	return best, nil
}
