// Package registry is the model-lifecycle layer between .patdnn artifacts on
// disk and the serving engine's hot plan cache: PatDNN's offline compiler
// (paper Fig. 7) emits a deployable compact model that is executed many times
// online, and GRIM frames the same stack as a general inference framework
// serving many models — so models need to be deployed, versioned, swapped,
// and retired without restarting the server.
//
// A Registry watches a models directory of `<name>@<version>.patdnn`
// artifacts (validated with modelfile's checked reader, so a corrupt or
// truncated file is quarantined instead of crashing the server), exposes
// `name@version` resolution plus a `name` → latest-version alias, and routes
// bare-name traffic through optional weighted version splits (canary
// rollouts). Loaded artifacts are compiled lazily by a caller-supplied Loader
// and accounted against a byte budget with LRU eviction; evicted versions
// recompile transparently on their next hit. Hot reload is an atomic swap:
// in-flight requests keep the compiled plans they already hold (artifacts are
// immutable), new requests resolve to the new version, and a bad replacement
// never evicts the last good one.
//
// The registry is deliberately generic over the compiled representation (the
// Loader/Artifact pair): internal/serve supplies a loader that lowers a
// modelfile.File into its executable plan stack, but the registry itself only
// manages names, versions, bytes, and routes.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"patdnn/internal/modelfile"
)

// ErrNotFound is returned by Resolve for names/versions the registry does not
// hold (wrapped with detail).
var ErrNotFound = errors.New("registry: model not found")

// ErrClosed is returned by Resolve and Scan after Close.
var ErrClosed = errors.New("registry: closed")

// Loader compiles a parsed .patdnn artifact into the consumer's serving
// representation. Load runs outside the registry lock and may be slow
// (concurrent Resolves of the same version share one Load call).
type Loader interface {
	Load(name, version string, f *modelfile.File) (Artifact, error)
}

// LoaderFunc adapts a function to the Loader interface.
type LoaderFunc func(name, version string, f *modelfile.File) (Artifact, error)

// Load implements Loader.
func (fn LoaderFunc) Load(name, version string, f *modelfile.File) (Artifact, error) {
	return fn(name, version, f)
}

// Artifact is a loaded (compiled) model version. MemoryBytes is charged
// against the registry's memory budget for as long as the artifact stays
// resident. An Artifact that also implements Releaser is notified when the
// registry drops its reference (eviction, hot-reload replacement, removal,
// Close) — in-flight users of the artifact are unaffected; Release only means
// the registry will never hand it out again.
type Artifact interface {
	MemoryBytes() int64
}

// Releaser is the optional retirement hook on an Artifact.
type Releaser interface {
	Release()
}

// Config parameterizes a Registry.
type Config struct {
	// Dir is the models directory to scan for .patdnn artifacts.
	Dir string
	// MemoryBudget bounds the summed MemoryBytes of resident artifacts;
	// exceeding it evicts least-recently-used versions (they reload lazily on
	// the next hit). <= 0 means unlimited. Adjustable later with
	// SetMemoryBudget.
	MemoryBudget int64
	// Poll is the directory polling period for hot reload. 0 selects the
	// 2-second default; negative disables background polling (Scan must be
	// called explicitly).
	Poll time.Duration
	// Seed makes the weighted route picker deterministic: the same seed and
	// request order reproduce the same version sequence.
	Seed int64
	// Logf receives lifecycle events (versions added/replaced/removed,
	// corrupt files quarantined, evictions). Nil disables logging. It must
	// be safe for concurrent use and must not call back into the Registry
	// (it may run under internal locks).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Poll == 0 {
		c.Poll = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RouteWeight is one leg of a traffic split.
type RouteWeight struct {
	Version string `json:"version"`
	Weight  int    `json:"weight"`
}

// entry is one on-disk model version and (when resident) its loaded artifact.
type entry struct {
	name, version string
	path          string
	fileSize      int64
	modTime       time.Time
	modelName     string // LR model name from the artifact header
	convLayers    int

	artifact Artifact // nil when not loaded (cold or evicted)
	bytes    int64    // MemoryBytes charged while resident
	lastUsed time.Time
	loads    uint64
	evicts   uint64
	evicted  bool  // evicted at least once: the next load is a lazy reload
	loadErr  error // last failed load (e.g. file corrupted after scan)
	loading  *loadOp
}

// loadOp deduplicates concurrent first loads of one version.
type loadOp struct {
	done chan struct{}
	art  Artifact
	err  error
}

// badFile remembers a quarantined path so unchanged corrupt files are not
// re-parsed every scan.
type badFile struct {
	fileSize int64
	modTime  time.Time
	err      error
}

// Registry is the disk-backed versioned model registry. Safe for concurrent
// use.
type Registry struct {
	cfg    Config
	loader Loader

	mu         sync.Mutex
	budget     int64
	models     map[string]map[string]*entry // name -> version -> entry
	routes     map[string][]RouteWeight
	quarantine map[string]badFile
	bytesInUse int64
	scanned    bool // initial scan completed
	scansBusy  int  // scans in flight
	loadsBusy  int  // loads in flight
	closed     bool

	pick uint64 // route-picker request counter

	scans       uint64
	reloads     uint64 // versions added/replaced after the initial scan
	removed     uint64
	evictions   uint64
	loads       uint64
	lazyReloads uint64
	badFiles    uint64 // quarantine events

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open creates a registry over cfg.Dir, runs the initial scan, and (unless
// polling is disabled) starts the background poller. The directory must
// exist; corrupt artifacts in it are quarantined, not fatal.
func Open(cfg Config, loader Loader) (*Registry, error) {
	cfg = cfg.withDefaults()
	if loader == nil {
		return nil, fmt.Errorf("registry: nil loader")
	}
	r := &Registry{
		cfg:        cfg,
		budget:     cfg.MemoryBudget,
		loader:     loader,
		models:     make(map[string]map[string]*entry),
		routes:     make(map[string][]RouteWeight),
		quarantine: make(map[string]badFile),
		stop:       make(chan struct{}),
	}
	if err := r.Scan(); err != nil {
		return nil, err
	}
	if cfg.Poll > 0 {
		r.wg.Add(1)
		go r.poll()
	}
	return r, nil
}

func (r *Registry) poll() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			_ = r.Scan() // a transient readdir failure resolves on the next tick
		}
	}
}

// Close stops the poller and releases every resident artifact. In-flight
// users of already-resolved artifacts are unaffected.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.stop)
	var released []Artifact
	for _, vs := range r.models {
		for _, e := range vs {
			if e.artifact != nil {
				released = append(released, e.artifact)
				r.bytesInUse -= e.bytes
				e.artifact, e.bytes = nil, 0
			}
		}
	}
	r.mu.Unlock()
	r.wg.Wait()
	release(released)
	return nil
}

func release(arts []Artifact) {
	for _, a := range arts {
		if rel, ok := a.(Releaser); ok {
			rel.Release()
		}
	}
}

func (r *Registry) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// SetMemoryBudget adjusts the byte budget at runtime (<= 0 = unlimited);
// shrinking it evicts immediately.
func (r *Registry) SetMemoryBudget(budget int64) {
	r.mu.Lock()
	r.budget = budget
	released := r.evictOverBudgetLocked(nil)
	r.mu.Unlock()
	release(released)
}

// evictOverBudgetLocked drops least-recently-used resident artifacts until
// bytesInUse fits the budget, never evicting keep (the version being handed
// out right now). Callers hold r.mu and must Release the returned artifacts
// after unlocking.
func (r *Registry) evictOverBudgetLocked(keep *entry) []Artifact {
	if r.budget <= 0 {
		return nil
	}
	var released []Artifact
	for r.bytesInUse > r.budget {
		var victim *entry
		for _, vs := range r.models {
			for _, e := range vs {
				if e.artifact == nil || e == keep {
					continue
				}
				if victim == nil || e.lastUsed.Before(victim.lastUsed) {
					victim = e
				}
			}
		}
		if victim == nil {
			return released // only keep itself is resident: nothing left to evict
		}
		r.logf("registry: evicting %s@%s (%d bytes; %d in use > %d budget)",
			victim.name, victim.version, victim.bytes, r.bytesInUse, r.budget)
		released = append(released, victim.artifact)
		r.bytesInUse -= victim.bytes
		victim.artifact, victim.bytes = nil, 0
		victim.evicted = true
		victim.evicts++
		r.evictions++
	}
	return released
}

// Has reports whether the registry holds any version of name.
func (r *Registry) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.models[name]) > 0
}

// Resolved is the result of a Resolve: the chosen version and its loaded
// artifact.
type Resolved struct {
	Name     string
	Version  string
	Artifact Artifact
}

// Resolve resolves a model spec — "name@version" for an exact version, or
// bare "name" for the routed/latest version — loading (compiling) the
// artifact if it is cold or was evicted. Concurrent resolves of the same
// version share one load.
func (r *Registry) Resolve(spec string) (*Resolved, error) {
	name, ver, exact := SplitSpec(spec)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	vs := r.models[name]
	if len(vs) == 0 {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	var e *entry
	if exact {
		if e = vs[ver]; e == nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: %s@%s", ErrNotFound, name, ver)
		}
	} else {
		e = r.pickLocked(name, vs)
	}

	now := time.Now()
	e.lastUsed = now
	if e.artifact != nil {
		res := &Resolved{Name: e.name, Version: e.version, Artifact: e.artifact}
		r.mu.Unlock()
		return res, nil
	}
	if op := e.loading; op != nil {
		// Another goroutine is compiling this version: wait it out.
		r.mu.Unlock()
		<-op.done
		if op.err != nil {
			return nil, op.err
		}
		return &Resolved{Name: e.name, Version: e.version, Artifact: op.art}, nil
	}
	op := &loadOp{done: make(chan struct{})}
	e.loading = op
	r.loadsBusy++
	wasEvicted := e.evicted
	path := e.path
	r.mu.Unlock()

	// Slow path, outside the lock: read the artifact from disk through the
	// checked reader and hand it to the loader.
	op.art, op.err = r.load(name, e.version, path)

	r.mu.Lock()
	r.loadsBusy--
	e.loading = nil
	if op.err != nil {
		e.loadErr = op.err
		r.mu.Unlock()
		close(op.done)
		return nil, op.err
	}
	// A concurrent Scan may have swapped or removed this entry while the
	// load ran: the loaded artifact still serves this request (it is the
	// version the caller resolved), but the registry must not account or
	// retain a detached entry's bytes.
	detached := r.models[e.name][e.version] != e || r.closed
	var released []Artifact
	if detached {
		released = append(released, op.art)
	} else {
		e.loadErr = nil
		e.artifact = op.art
		e.bytes = op.art.MemoryBytes()
		e.lastUsed = time.Now()
		r.bytesInUse += e.bytes
		r.loads++
		e.loads++
		if wasEvicted {
			r.lazyReloads++
		}
		released = r.evictOverBudgetLocked(e)
	}
	r.mu.Unlock()
	close(op.done)
	release(released)
	return &Resolved{Name: name, Version: e.version, Artifact: op.art}, nil
}

func (r *Registry) load(name, version, path string) (Artifact, error) {
	f, err := readArtifact(path)
	if err != nil {
		return nil, fmt.Errorf("registry: load %s@%s: %w", name, version, err)
	}
	art, err := r.loader.Load(name, version, f)
	if err != nil {
		return nil, fmt.Errorf("registry: load %s@%s: %w", name, version, err)
	}
	if art == nil {
		return nil, fmt.Errorf("registry: load %s@%s: loader returned nil artifact", name, version)
	}
	return art, nil
}

// pickLocked chooses the version a bare name resolves to: the configured
// weighted route when one is set (skipping legs whose version has been
// removed from disk), the latest version otherwise.
func (r *Registry) pickLocked(name string, vs map[string]*entry) *entry {
	if route := r.routes[name]; len(route) > 0 {
		total := 0
		live := make([]RouteWeight, 0, len(route))
		for _, rw := range route {
			if vs[rw.Version] != nil {
				live = append(live, rw)
				total += rw.Weight
			}
		}
		if total > 0 {
			n := splitmix64(uint64(r.cfg.Seed) + r.pick)
			r.pick++
			x := int(n % uint64(total))
			for _, rw := range live {
				x -= rw.Weight
				if x < 0 {
					return vs[rw.Version]
				}
			}
		}
	}
	return vs[latestVersion(vs)]
}

// splitmix64 is the SplitMix64 mixer: a tiny, seedable, uniform hash that
// makes the route picker deterministic without a lock-held math/rand.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// latestVersion picks the default alias target: the highest version by
// numeric "v<N>" ordering, falling back to lexicographic.
func latestVersion(vs map[string]*entry) string {
	best := ""
	for v := range vs {
		if best == "" || CompareVersions(v, best) > 0 {
			best = v
		}
	}
	return best
}

// SetRoute configures a weighted traffic split for bare-name requests of
// name, e.g. {"v3": 90, "v4": 10}. Every referenced version must exist and
// weights must be positive. A single-leg route pins the name to one version
// (the mutable alias). Routes survive rescans; legs whose version disappears
// from disk are skipped at pick time.
func (r *Registry) SetRoute(name string, weights map[string]int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(weights) == 0 {
		return fmt.Errorf("registry: empty route for %q (use ClearRoute to remove)", name)
	}
	vs := r.models[name]
	if len(vs) == 0 {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	route := make([]RouteWeight, 0, len(weights))
	for v, w := range weights {
		if w <= 0 {
			return fmt.Errorf("registry: route %s@%s has non-positive weight %d", name, v, w)
		}
		if vs[v] == nil {
			return fmt.Errorf("%w: %s@%s (cannot route to it)", ErrNotFound, name, v)
		}
		route = append(route, RouteWeight{Version: v, Weight: w})
	}
	// Deterministic leg order so the picker's cumulative walk is stable.
	sort.Slice(route, func(i, j int) bool {
		return CompareVersions(route[i].Version, route[j].Version) < 0
	})
	r.routes[name] = route
	return nil
}

// ClearRoute removes name's traffic split; bare-name requests fall back to
// the latest version.
func (r *Registry) ClearRoute(name string) {
	r.mu.Lock()
	delete(r.routes, name)
	r.mu.Unlock()
}

// Routes snapshots the configured traffic splits.
func (r *Registry) Routes() map[string][]RouteWeight {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]RouteWeight, len(r.routes))
	for name, route := range r.routes {
		out[name] = append([]RouteWeight(nil), route...)
	}
	return out
}

// ModelInfo describes one registered model version.
type ModelInfo struct {
	Name       string    `json:"name"`
	Version    string    `json:"version"`
	Default    bool      `json:"default"` // bare-name alias target (ignoring routes)
	Path       string    `json:"path"`
	FileBytes  int64     `json:"file_bytes"`
	Model      string    `json:"model"` // LR model name inside the artifact
	ConvLayers int       `json:"conv_layers"`
	Loaded     bool      `json:"loaded"`
	Bytes      int64     `json:"bytes,omitempty"` // resident compiled footprint
	LastUsed   time.Time `json:"last_used,omitempty"`
	Loads      uint64    `json:"loads"`
	Evictions  uint64    `json:"evictions"`
	Error      string    `json:"error,omitempty"` // last load failure
	// Detail is whatever a resident artifact's Describe() returned (see
	// Describer) — compiled-plan facts the loader wants surfaced per version,
	// e.g. fused-op counts. Nil for cold versions or plain artifacts.
	Detail any `json:"detail,omitempty"`
}

// Describer is an optional Artifact extension: artifacts that implement it
// have their Describe() value attached to ModelInfo.Detail while resident.
type Describer interface {
	Describe() any
}

// Models lists every version, sorted by name then version.
func (r *Registry) Models() []ModelInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []ModelInfo
	for name, vs := range r.models {
		latest := latestVersion(vs)
		for v, e := range vs {
			mi := ModelInfo{
				Name: name, Version: v, Default: v == latest,
				Path: e.path, FileBytes: e.fileSize,
				Model: e.modelName, ConvLayers: e.convLayers,
				Loaded: e.artifact != nil, Bytes: e.bytes,
				LastUsed: e.lastUsed, Loads: e.loads, Evictions: e.evicts,
			}
			if e.loadErr != nil {
				mi.Error = e.loadErr.Error()
			}
			if d, ok := e.artifact.(Describer); ok {
				mi.Detail = d.Describe()
			}
			out = append(out, mi)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return CompareVersions(out[i].Version, out[j].Version) < 0
	})
	return out
}

// QuarantinedFile reports one corrupt/unparseable artifact the scanner is
// skipping.
type QuarantinedFile struct {
	Path  string `json:"path"`
	Error string `json:"error"`
}

// Stats is a snapshot of the registry counters.
type Stats struct {
	Scans        uint64            `json:"scans"`
	Models       int               `json:"models"`
	Versions     int               `json:"versions"`
	Loaded       int               `json:"loaded"`
	Loads        uint64            `json:"loads"`
	LazyReloads  uint64            `json:"lazy_reloads"` // recompiles after eviction
	Reloads      uint64            `json:"reloads"`      // hot adds/replacements after the initial scan
	Removed      uint64            `json:"removed"`
	Evictions    uint64            `json:"evictions"`
	BadFiles     uint64            `json:"bad_files"` // quarantine events
	BytesInUse   int64             `json:"bytes_in_use"`
	MemoryBudget int64             `json:"memory_budget"` // 0 = unlimited
	Quarantined  []QuarantinedFile `json:"quarantined,omitempty"`
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		Scans: r.scans, Models: len(r.models),
		Loads: r.loads, LazyReloads: r.lazyReloads, Reloads: r.reloads,
		Removed: r.removed, Evictions: r.evictions, BadFiles: r.badFiles,
		BytesInUse: r.bytesInUse, MemoryBudget: r.budget,
	}
	if s.MemoryBudget < 0 {
		s.MemoryBudget = 0
	}
	for _, vs := range r.models {
		s.Versions += len(vs)
		for _, e := range vs {
			if e.artifact != nil {
				s.Loaded++
			}
		}
	}
	for path, bf := range r.quarantine {
		s.Quarantined = append(s.Quarantined, QuarantinedFile{Path: path, Error: bf.err.Error()})
	}
	sort.Slice(s.Quarantined, func(i, j int) bool { return s.Quarantined[i].Path < s.Quarantined[j].Path })
	return s
}

// Readiness reports whether the registry is safe to route traffic to: the
// initial scan has completed, so the registry knows which models exist.
// Everything after that is steady-state operation and must not flap a
// serving instance unready: cold and quarantined versions, the lazy
// compiles they trigger (post-eviction recompiles are routine on a
// budget-bounded server), and routine hot-reload rescans all leave the last
// good versions serving. Scanning and Loading are reported for
// observability only.
type Readiness struct {
	Ready       bool `json:"ready"`
	InitialScan bool `json:"initial_scan"`
	Scanning    bool `json:"scanning"` // a rescan in flight (informational)
	Loading     int  `json:"loading"`  // artifact compiles in flight (informational)
}

// Readiness snapshots the registry's readiness state.
func (r *Registry) Readiness() Readiness {
	r.mu.Lock()
	defer r.mu.Unlock()
	rd := Readiness{
		InitialScan: r.scanned,
		Scanning:    r.scansBusy > 0,
		Loading:     r.loadsBusy,
	}
	rd.Ready = rd.InitialScan
	return rd
}
