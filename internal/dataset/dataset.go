// Package dataset generates the deterministic synthetic image-classification
// workload used in place of ImageNet/CIFAR-10 (see DESIGN.md, substitution
// table). Each class is a distinct procedural texture — an oriented grating
// with class-specific frequency and phase plus a class-positioned blob —
// corrupted with Gaussian noise, so a small CNN can reach high accuracy while
// pruning damage remains measurable.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"patdnn/internal/tensor"
)

// Dataset is an in-memory labeled image set.
type Dataset struct {
	Images  []*tensor.Tensor // each [C,H,W]
	Labels  []int
	Classes int
	C, H, W int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Images) }

// Config controls synthetic generation.
type Config struct {
	N       int // number of examples
	Classes int // number of classes
	C, H, W int // image shape
	Noise   float64
	Seed    int64
}

// DefaultConfig is the standard small workload: enough signal for a tiny CNN
// to exceed 90% accuracy in a few epochs.
func DefaultConfig() Config {
	return Config{N: 600, Classes: 10, C: 3, H: 16, W: 16, Noise: 0.25, Seed: 42}
}

// Synthetic generates a deterministic dataset from cfg.
func Synthetic(cfg Config) *Dataset {
	if cfg.Classes < 2 || cfg.N < cfg.Classes {
		panic(fmt.Sprintf("dataset: bad config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{Classes: cfg.Classes, C: cfg.C, H: cfg.H, W: cfg.W}
	for i := 0; i < cfg.N; i++ {
		label := i % cfg.Classes
		d.Images = append(d.Images, render(label, cfg, rng))
		d.Labels = append(d.Labels, label)
	}
	return d
}

// render draws one class-conditional image.
func render(label int, cfg Config, rng *rand.Rand) *tensor.Tensor {
	img := tensor.New(cfg.C, cfg.H, cfg.W)
	theta := float64(label) * math.Pi / float64(cfg.Classes)
	freq := 2 * math.Pi * (1.0 + float64(label%5)) / float64(cfg.H)
	// Class-dependent blob center.
	bx := float64(cfg.W) * (0.25 + 0.5*float64(label%3)/2)
	by := float64(cfg.H) * (0.25 + 0.5*float64(label/3%3)/2)
	sin, cos := math.Sin(theta), math.Cos(theta)
	for c := 0; c < cfg.C; c++ {
		phase := float64(c) * math.Pi / 3
		for y := 0; y < cfg.H; y++ {
			for x := 0; x < cfg.W; x++ {
				u := float64(x)*cos + float64(y)*sin
				grating := math.Sin(u*freq + phase)
				dx, dy := float64(x)-bx, float64(y)-by
				blob := math.Exp(-(dx*dx + dy*dy) / 8)
				v := 0.6*grating + 0.8*blob + cfg.Noise*rng.NormFloat64()
				img.Set(float32(v), c, y, x)
			}
		}
	}
	return img
}

// Split partitions the dataset into stratified train/test sets: within each
// class, every period-th occurrence goes to test, so both splits keep the
// class balance regardless of how labels are ordered. frac is the train
// fraction.
func (d *Dataset) Split(frac float64) (train, test *Dataset) {
	if frac <= 0 || frac >= 1 {
		panic("dataset: Split fraction must be in (0,1)")
	}
	train = &Dataset{Classes: d.Classes, C: d.C, H: d.H, W: d.W}
	test = &Dataset{Classes: d.Classes, C: d.C, H: d.H, W: d.W}
	period := int(math.Round(1 / (1 - frac)))
	if period < 2 {
		period = 2
	}
	seen := make(map[int]int)
	for i := range d.Images {
		label := d.Labels[i]
		seen[label]++
		if seen[label]%period == 0 {
			test.Images = append(test.Images, d.Images[i])
			test.Labels = append(test.Labels, d.Labels[i])
		} else {
			train.Images = append(train.Images, d.Images[i])
			train.Labels = append(train.Labels, d.Labels[i])
		}
	}
	return train, test
}

// Shuffle permutes examples in place with the given seed.
func (d *Dataset) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(d.Images), func(i, j int) {
		d.Images[i], d.Images[j] = d.Images[j], d.Images[i]
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	})
}
