package dataset

import (
	"testing"
)

func TestSyntheticDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 40
	a := Synthetic(cfg)
	b := Synthetic(cfg)
	if a.Len() != 40 || b.Len() != 40 {
		t.Fatalf("len = %d/%d", a.Len(), b.Len())
	}
	for i := range a.Images {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ across identical seeds")
		}
		if !a.Images[i].AllClose(b.Images[i], 0) {
			t.Fatal("images differ across identical seeds")
		}
	}
}

func TestSyntheticSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 10
	a := Synthetic(cfg)
	cfg.Seed = 43
	b := Synthetic(cfg)
	same := true
	for i := range a.Images {
		if !a.Images[i].AllClose(b.Images[i], 0) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestClassBalance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 100
	d := Synthetic(cfg)
	counts := make([]int, cfg.Classes)
	for _, l := range d.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d examples, want 10", c, n)
		}
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Mean images of different classes must differ far more than noise:
	// a sanity check that the generator carries class signal.
	cfg := DefaultConfig()
	cfg.N = 200
	d := Synthetic(cfg)
	mean := func(label int) []float64 {
		m := make([]float64, d.C*d.H*d.W)
		n := 0
		for i, img := range d.Images {
			if d.Labels[i] != label {
				continue
			}
			n++
			for j, v := range img.Data {
				m[j] += float64(v)
			}
		}
		for j := range m {
			m[j] /= float64(n)
		}
		return m
	}
	m0, m1 := mean(0), mean(5)
	var dist float64
	for j := range m0 {
		dd := m0[j] - m1[j]
		dist += dd * dd
	}
	if dist < 1.0 {
		t.Fatalf("class means too close: %v", dist)
	}
}

func TestSplitPreservesAllExamples(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 100
	d := Synthetic(cfg)
	train, test := d.Split(0.8)
	if train.Len()+test.Len() != 100 {
		t.Fatalf("split lost examples: %d + %d", train.Len(), test.Len())
	}
	if test.Len() < 15 || test.Len() > 25 {
		t.Fatalf("test size = %d, want ~20", test.Len())
	}
}

func TestSplitPanicsOnBadFraction(t *testing.T) {
	d := Synthetic(Config{N: 10, Classes: 2, C: 1, H: 4, W: 4, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Split(1.5)
}

func TestShuffleDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 50
	a := Synthetic(cfg)
	b := Synthetic(cfg)
	a.Shuffle(7)
	b.Shuffle(7)
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("shuffle not deterministic")
		}
	}
}
