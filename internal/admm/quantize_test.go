package admm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"patdnn/internal/dataset"
	"patdnn/internal/nn"
	"patdnn/internal/pattern"
	"patdnn/internal/tensor"
)

// mustStep is a test helper for call sites that pass known-valid bits.
func mustStep(t *testing.T, w *tensor.Tensor, bits int) float32 {
	t.Helper()
	step, err := quantStep(w, bits)
	if err != nil {
		t.Fatal(err)
	}
	return step
}

func TestQuantStepAndProjection(t *testing.T) {
	w := tensor.FromSlice([]float32{-3, -1.4, 0, 0.6, 3}, 5)
	step := mustStep(t, w, 3) // levels 0..±3, step = 3/3 = 1
	if math.Abs(float64(step)-1) > 1e-6 {
		t.Fatalf("step = %v, want 1", step)
	}
	if err := projectQuantize(w, step, 3); err != nil {
		t.Fatal(err)
	}
	want := []float32{-3, -1, 0, 1, 3}
	for i, v := range want {
		if w.Data[i] != v {
			t.Fatalf("quantized = %v, want %v", w.Data, want)
		}
	}
}

func TestQuantStepRejectsBadBits(t *testing.T) {
	w := tensor.FromSlice([]float32{1, -1}, 2)
	for _, bits := range []int{-4, 0, 1, 9, 32} {
		if _, err := quantStep(w, bits); err == nil {
			t.Errorf("quantStep accepted bits=%d", bits)
		}
		if err := projectQuantize(w, 0.5, bits); err == nil {
			t.Errorf("projectQuantize accepted bits=%d", bits)
		}
	}
}

func TestProjectQuantizeRejectsBadStep(t *testing.T) {
	cases := []struct {
		name string
		step float32
	}{
		{"zero", 0},
		{"negative", -0.25},
		{"nan", float32(math.NaN())},
		{"inf", float32(math.Inf(1))},
	}
	for _, tc := range cases {
		w := tensor.FromSlice([]float32{1, -2, 0.5}, 3)
		before := append([]float32(nil), w.Data...)
		if err := projectQuantize(w, tc.step, 4); err == nil {
			t.Errorf("%s: projectQuantize accepted step %g", tc.name, tc.step)
		}
		for i := range before {
			if w.Data[i] != before[i] {
				t.Errorf("%s: rejected projection still mutated weights", tc.name)
				break
			}
		}
	}
}

func TestValidateQuantBits(t *testing.T) {
	cases := []struct {
		bits int
		ok   bool
	}{
		{0, true}, // disabled
		{2, true},
		{8, true},
		{1, false},
		{-1, false},
		{9, false},
		{16, false},
	}
	for _, tc := range cases {
		err := ValidateQuantBits(tc.bits)
		if tc.ok && err != nil {
			t.Errorf("ValidateQuantBits(%d) = %v, want nil", tc.bits, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("ValidateQuantBits(%d) accepted", tc.bits)
		}
	}
}

func TestRunRejectsBadQuantBits(t *testing.T) {
	cfg := dataset.DefaultConfig()
	cfg.N = 20
	data := dataset.Synthetic(cfg)
	train, test := data.Split(0.8)
	net := nn.SmallCNN(cfg.C, cfg.H, cfg.W, 4, 6, cfg.Classes, 3)

	acfg := DefaultConfig(pattern.Canonical(8))
	acfg.QuantBits = 1
	if _, err := Run(net, train, test, acfg); err == nil {
		t.Fatal("Run accepted QuantBits=1")
	}
	acfg.QuantBits = 9
	if _, err := Run(net, train, test, acfg); err == nil {
		t.Fatal("Run accepted QuantBits=9")
	}
	acfg.QuantBits = 0
	acfg.Set = nil
	if _, err := Run(net, train, test, acfg); err == nil {
		t.Fatal("Run accepted an empty pattern set")
	}
}

func TestProjectQuantizePreservesZeros(t *testing.T) {
	w := tensor.FromSlice([]float32{0, 0.49, 0, -2}, 4)
	if err := projectQuantize(w, mustStep(t, w, 4), 4); err != nil {
		t.Fatal(err)
	}
	if w.Data[0] != 0 || w.Data[2] != 0 {
		t.Fatal("quantization disturbed pruned zeros")
	}
}

func TestDistinctLevelsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := tensor.New(64, 8, 3, 3)
	w.Randn(rng, 1)
	bits := 4
	if err := projectQuantize(w, mustStep(t, w, bits), bits); err != nil {
		t.Fatal(err)
	}
	if got, max := DistinctLevels(w), (1<<bits)-2; got > max {
		t.Fatalf("distinct levels = %d, want <= %d", got, max)
	}
}

// Property: projection is idempotent and never increases max|w|.
func TestProjectQuantizeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := tensor.New(32)
		w.Randn(rng, 2)
		var maxBefore float64
		for _, v := range w.Data {
			if a := math.Abs(float64(v)); a > maxBefore {
				maxBefore = a
			}
		}
		step, err := quantStep(w, 4)
		if err != nil {
			return false
		}
		if err := projectQuantize(w, step, 4); err != nil {
			return false
		}
		once := w.Clone()
		if err := projectQuantize(w, step, 4); err != nil {
			return false
		}
		if !w.AllClose(once, 0) {
			return false
		}
		for _, v := range w.Data {
			if math.Abs(float64(v)) > maxBefore+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJointPruneQuantizeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a CNN")
	}
	cfg := dataset.DefaultConfig()
	cfg.N = 250
	data := dataset.Synthetic(cfg)
	train, test := data.Split(0.8)
	net := nn.SmallCNN(cfg.C, cfg.H, cfg.W, 8, 12, cfg.Classes, 3)
	nn.Train(net, train, nn.NewAdam(0.004), nn.TrainConfig{Epochs: 5, BatchSize: 16, Seed: 1})
	dense := net.Accuracy(test)

	acfg := DefaultConfig(pattern.Canonical(8))
	acfg.SkipFirstConv = true
	acfg.QuantBits = 6
	rep, err := Run(net, train, test, acfg)
	if err != nil {
		t.Fatal(err)
	}

	if rep.QuantBits != 6 || rep.AccQuantized == 0 {
		t.Fatalf("quantization not reported: %+v", rep)
	}
	// Weights actually live on the grid with few distinct levels.
	for _, conv := range net.ConvLayers() {
		if got, max := DistinctLevels(conv.Weight.W), (1<<6)-2; got > max {
			t.Fatalf("%s: %d distinct levels, want <= %d", conv.Name, got, max)
		}
	}
	// Sparsity preserved through quantization.
	for _, pc := range rep.Pruned {
		if err := pc.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Joint prune+quantize keeps accuracy near the dense baseline (the
	// ADMM-NN claim); allow small-sample noise.
	if rep.AccQuantized < dense-0.15 {
		t.Fatalf("quantized accuracy %.3f too far below dense %.3f",
			rep.AccQuantized, dense)
	}
	// ADMM regularization keeps the final snap error well below the step.
	if rep.QuantRMSError <= 0 {
		t.Fatal("no quantization error recorded")
	}
}
