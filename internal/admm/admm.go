// Package admm implements the paper's extended ADMM solution framework for
// joint kernel-pattern and connectivity pruning (Section 4.2).
//
// The constrained problem
//
//	minimize f({W_k},{b_k})  subject to  W_k ∈ S_k (pattern), W_k ∈ S'_k (connectivity)
//
// is decomposed with auxiliary variables Z_k, Y_k and duals U_k, V_k into:
//
//	subproblem 1: SGD/Adam on f + Σ ρ/2·‖W−Z+U‖² + Σ ρ/2·‖W−Y+V‖²
//	subproblem 2: Z ← Π_pattern(W+U)        (Euclidean projection)
//	subproblem 3: Y ← Π_connectivity(W+V)   (Euclidean projection)
//	duals:        U += W−Z;  V += W−Y
//
// Both projections are exact and polynomial-time: per-kernel best-pattern
// selection by retained L2 norm, and top-α kernel selection by L2 norm.
// After the ADMM iterations, weights are hard-projected (masked mapping) and
// the non-zero weights are fine-tuned with gradients masked to the retained
// positions — exactly the paper's "masked mapping & retraining" stage.
package admm

import (
	"fmt"
	"math"
	"sort"

	"patdnn/internal/dataset"
	"patdnn/internal/nn"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/tensor"
)

// Config controls the ADMM pruning run.
type Config struct {
	Set           []pattern.Pattern // pattern candidate set
	ConnRate      float64           // connectivity pruning rate (e.g. 3.6); <=1 disables
	Rho           float64           // ADMM penalty parameter
	Iterations    int               // ADMM iterations (outer loop)
	EpochsPerIt   int               // subproblem-1 epochs per ADMM iteration
	FinetuneEps   int               // masked retraining epochs
	LR            float64           // Adam learning rate
	BatchSize     int
	Seed          int64
	SkipFirstConv bool // the paper prunes the first layer less aggressively;
	// here the first conv can be skipped entirely for connectivity pruning.

	// QuantBits, when >= 2, adds joint weight quantization as a third ADMM
	// constraint (the ADMM-NN extension the paper's framework descends
	// from): weights are regularized toward, then snapped to, a uniform
	// symmetric 2^bits-level grid per layer.
	QuantBits int
}

// DefaultConfig returns settings that converge on the small CNN in seconds.
func DefaultConfig(set []pattern.Pattern) Config {
	return Config{
		Set: set, ConnRate: 3.6, Rho: 0.01,
		Iterations: 4, EpochsPerIt: 2, FinetuneEps: 3,
		LR: 0.003, BatchSize: 16, Seed: 1,
	}
}

// LayerReport summarizes the pruning outcome for one conv layer.
type LayerReport struct {
	Name            string
	TotalKernels    int
	KeptKernels     int
	TotalWeights    int
	KeptWeights     int
	CompressionRate float64
	PatternHist     map[int]int // pattern ID -> kernel count
}

// Report is the result of a full ADMM pruning run.
type Report struct {
	Layers          []LayerReport
	Residuals       []float64 // max ‖W−Z‖_F per iteration (convergence track)
	ConnResiduals   []float64 // max ‖W−Y‖_F per iteration
	CompressionRate float64   // overall CONV compression
	AccBefore       float64
	AccAfterADMM    float64 // after hard projection, before fine-tune
	AccAfterTune    float64
	Pruned          []*pruned.Conv

	// Quantization outcome (QuantBits >= 2 only).
	QuantBits     int
	QuantRMSError float64 // worst per-layer RMS snap error at final mapping
	AccQuantized  float64 // accuracy after the final quantization snap
}

// state holds ADMM variables for one constrained layer.
type state struct {
	conv  *nn.Conv2D
	z, u  *tensor.Tensor // pattern constraint pair
	y, v  *tensor.Tensor // connectivity constraint pair
	q, r  *tensor.Tensor // quantization constraint pair (optional)
	alpha int            // kernels to keep (connectivity)
	conn  bool
}

// Run executes the full pipeline: ADMM regularization → masked mapping →
// retraining, evaluating accuracy on test before/after. It validates the
// config up front — an empty pattern set, a network without 3×3 convs, or an
// out-of-range QuantBits return an error before any training work.
func Run(net *nn.Network, train, test *dataset.Dataset, cfg Config) (*Report, error) {
	if len(cfg.Set) == 0 {
		return nil, fmt.Errorf("admm: empty pattern set")
	}
	if err := ValidateQuantBits(cfg.QuantBits); err != nil {
		return nil, err
	}
	rep := &Report{AccBefore: net.Accuracy(test)}

	var states []*state
	for i, conv := range net.ConvLayers() {
		if conv.K != 3 {
			continue // pattern pruning applies to 3×3 kernels only
		}
		w := conv.Weight.W
		st := &state{
			conv: conv,
			z:    w.Clone(), u: tensor.New(w.Shape()...),
			y: w.Clone(), v: tensor.New(w.Shape()...),
		}
		st.conn = cfg.ConnRate > 1 && !(cfg.SkipFirstConv && i == 0)
		if st.conn {
			st.alpha = int(float64(conv.OutC*conv.InC)/cfg.ConnRate + 0.5)
			if st.alpha < 1 {
				st.alpha = 1
			}
		} else {
			st.alpha = conv.OutC * conv.InC
		}
		if cfg.QuantBits >= 2 {
			st.q = w.Clone()
			st.r = tensor.New(w.Shape()...)
		}
		states = append(states, st)
	}
	if len(states) == 0 {
		return nil, fmt.Errorf("admm: no 3x3 conv layers to prune")
	}

	// Initial projections so the proximal terms pull toward feasibility
	// from the first epoch.
	for _, st := range states {
		projectPattern(st.z, cfg.Set)
		projectConnectivity(st.y, st.conv.InC, st.alpha)
		if st.q != nil {
			if err := snapToGrid(st.q, cfg.QuantBits); err != nil {
				return nil, fmt.Errorf("admm: layer %s: %w", st.conv.Name, err)
			}
		}
	}

	rho := float32(cfg.Rho)
	extra := func(n *nn.Network) {
		for _, st := range states {
			w := st.conv.Weight.W
			g := st.conv.Weight.Grad
			for i := range w.Data {
				g.Data[i] += rho * (w.Data[i] - st.z.Data[i] + st.u.Data[i])
				g.Data[i] += rho * (w.Data[i] - st.y.Data[i] + st.v.Data[i])
			}
			if st.q != nil {
				for i := range w.Data {
					g.Data[i] += rho * (w.Data[i] - st.q.Data[i] + st.r.Data[i])
				}
			}
		}
	}

	for it := 0; it < cfg.Iterations; it++ {
		// Subproblem 1: loss + quadratic proximal terms, solved by Adam.
		opt := nn.NewAdam(cfg.LR)
		nn.Train(net, train, opt, nn.TrainConfig{
			Epochs: cfg.EpochsPerIt, BatchSize: cfg.BatchSize,
			Seed: cfg.Seed + int64(it)*1000, ExtraGrad: extra,
		})
		var maxRes, maxConnRes float64
		for _, st := range states {
			w := st.conv.Weight.W
			// Subproblem 2: Z = Π_pattern(W + U).
			copyInto(st.z, w)
			st.z.AddScaled(st.u, 1)
			projectPattern(st.z, cfg.Set)
			// Subproblem 3: Y = Π_connectivity(W + V).
			copyInto(st.y, w)
			st.y.AddScaled(st.v, 1)
			projectConnectivity(st.y, st.conv.InC, st.alpha)
			// Optional quantization subproblem: Q = Π_levels(W + R).
			if st.q != nil {
				copyInto(st.q, w)
				st.q.AddScaled(st.r, 1)
				if err := snapToGrid(st.q, cfg.QuantBits); err != nil {
					return nil, fmt.Errorf("admm: layer %s: %w", st.conv.Name, err)
				}
				for i := range w.Data {
					st.r.Data[i] += w.Data[i] - st.q.Data[i]
				}
			}
			// Dual updates and residuals.
			var res, connRes float64
			for i := range w.Data {
				dz := w.Data[i] - st.z.Data[i]
				dy := w.Data[i] - st.y.Data[i]
				st.u.Data[i] += dz
				st.v.Data[i] += dy
				res += float64(dz) * float64(dz)
				connRes += float64(dy) * float64(dy)
			}
			maxRes = math.Max(maxRes, math.Sqrt(res))
			maxConnRes = math.Max(maxConnRes, math.Sqrt(connRes))
		}
		rep.Residuals = append(rep.Residuals, maxRes)
		rep.ConnResiduals = append(rep.ConnResiduals, maxConnRes)
	}

	// Masked mapping: hard-project W onto both constraint sets, build the
	// gradient mask, and record the pruned representation.
	totalW, keptW := 0, 0
	for _, st := range states {
		conv := st.conv
		inH, inW := conv.InputDims()
		geom := pruned.ConvGeom{
			Stride: conv.Spec.Stride, Pad: conv.Spec.Pad, InH: inH, InW: inW,
			OutH: tensor.ConvOutDim(inH, conv.K, conv.Spec.Stride, conv.Spec.Pad),
			OutW: tensor.ConvOutDim(inW, conv.K, conv.Spec.Stride, conv.Spec.Pad),
		}
		pc := pruned.FromWeights(conv.Name, conv.Weight.W, cfg.Set, st.alpha, geom)
		mask := tensor.New(conv.Weight.W.Shape()...)
		for i, v := range conv.Weight.W.Data {
			if v != 0 {
				mask.Data[i] = 1
			}
		}
		conv.Mask = mask
		rep.Pruned = append(rep.Pruned, pc)
		lr := LayerReport{
			Name:            conv.Name,
			TotalKernels:    conv.OutC * conv.InC,
			KeptKernels:     pc.NonEmptyKernels(),
			TotalWeights:    pc.TotalWeights(),
			KeptWeights:     pc.NNZ(),
			CompressionRate: pc.CompressionRate(),
			PatternHist:     map[int]int{},
		}
		for _, id := range pc.IDs {
			if id != 0 {
				lr.PatternHist[id]++
			}
		}
		rep.Layers = append(rep.Layers, lr)
		totalW += lr.TotalWeights
		keptW += lr.KeptWeights
	}
	if keptW > 0 {
		rep.CompressionRate = float64(totalW) / float64(keptW)
	}
	rep.AccAfterADMM = net.Accuracy(test)

	// Masked retraining: fine-tune the surviving weights.
	nn.Train(net, train, nn.NewAdam(cfg.LR/2), nn.TrainConfig{
		Epochs: cfg.FinetuneEps, BatchSize: cfg.BatchSize, Seed: cfg.Seed + 99,
	})
	rep.AccAfterTune = net.Accuracy(test)

	// Joint quantization: snap the fine-tuned surviving weights to the
	// level grid (the ADMM regularization has already pulled them close, so
	// the snap error is small).
	if cfg.QuantBits >= 2 {
		rep.QuantBits = cfg.QuantBits
		for _, st := range states {
			w := st.conv.Weight.W
			step, err := quantStep(w, cfg.QuantBits)
			if err != nil {
				return nil, fmt.Errorf("admm: layer %s: %w", st.conv.Name, err)
			}
			if e := quantError(w, step, cfg.QuantBits); e > rep.QuantRMSError {
				rep.QuantRMSError = e
			}
			if err := projectQuantize(w, step, cfg.QuantBits); err != nil {
				return nil, fmt.Errorf("admm: layer %s: %w", st.conv.Name, err)
			}
		}
		rep.AccQuantized = net.Accuracy(test)
	}
	return rep, nil
}

// snapToGrid derives the tensor's current step and projects it onto the
// level grid — the combined quantization subproblem update.
func snapToGrid(w *tensor.Tensor, bits int) error {
	step, err := quantStep(w, bits)
	if err != nil {
		return err
	}
	return projectQuantize(w, step, bits)
}

// copyInto copies src into dst (same shape).
func copyInto(dst, src *tensor.Tensor) { copy(dst.Data, src.Data) }

// projectPattern projects every 3×3 kernel of w onto its best pattern.
func projectPattern(w *tensor.Tensor, set []pattern.Pattern) {
	n := w.Len() / 9
	for k := 0; k < n; k++ {
		pattern.Project(w.Data[k*9:(k+1)*9], set)
	}
}

// projectConnectivity keeps the alpha kernels with the largest L2 norms and
// zeroes the rest. inC is unused for ranking but documents the kernel layout.
func projectConnectivity(w *tensor.Tensor, inC, alpha int) {
	n := w.Len() / 9
	if alpha >= n {
		return
	}
	type kn struct {
		idx  int
		norm float64
	}
	norms := make([]kn, n)
	for k := 0; k < n; k++ {
		var s float64
		for _, v := range w.Data[k*9 : (k+1)*9] {
			s += float64(v) * float64(v)
		}
		norms[k] = kn{k, s}
	}
	sort.Slice(norms, func(a, b int) bool {
		if norms[a].norm != norms[b].norm {
			return norms[a].norm > norms[b].norm
		}
		return norms[a].idx < norms[b].idx
	})
	for _, victim := range norms[alpha:] {
		for i := victim.idx * 9; i < (victim.idx+1)*9; i++ {
			w.Data[i] = 0
		}
	}
}

// String renders a compact report.
func (r *Report) String() string {
	s := fmt.Sprintf("ADMM pruning: acc %.3f -> %.3f (projected) -> %.3f (fine-tuned), compression %.2fx\n",
		r.AccBefore, r.AccAfterADMM, r.AccAfterTune, r.CompressionRate)
	for _, l := range r.Layers {
		s += fmt.Sprintf("  %-8s kernels %4d/%4d  weights %5d/%5d  (%.2fx)\n",
			l.Name, l.KeptKernels, l.TotalKernels, l.KeptWeights, l.TotalWeights, l.CompressionRate)
	}
	return s
}
