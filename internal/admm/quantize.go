package admm

import (
	"fmt"
	"math"

	"patdnn/internal/tensor"
)

// Weight quantization as an additional ADMM constraint. The paper's training
// framework descends from ADMM-NN, which performs *joint* weight pruning and
// quantization under the same solution framework: quantization levels are
// another combinatorial constraint whose Euclidean projection is exact
// (snap every weight to the nearest level). This file adds that optional
// extension: with Config.QuantBits > 0, a third auxiliary/dual pair (Q, R)
// joins the pattern and connectivity pairs, and the final masked-mapped
// weights are snapped to the level grid.

// MinQuantBits and MaxQuantBits bound Config.QuantBits: below 2 bits a
// symmetric grid holds no information; above 8 the serving-side int8
// encoding (internal/quant, modelfile v3) cannot store the levels.
const (
	MinQuantBits = 2
	MaxQuantBits = 8
)

// ValidateQuantBits accepts 0 (quantization disabled) or a width within
// [MinQuantBits, MaxQuantBits].
func ValidateQuantBits(bits int) error {
	if bits != 0 && (bits < MinQuantBits || bits > MaxQuantBits) {
		return fmt.Errorf("admm: QuantBits %d out of range (0 to disable, or %d..%d)",
			bits, MinQuantBits, MaxQuantBits)
	}
	return nil
}

// quantStep returns the uniform symmetric step size for b-bit quantization
// of w: Δ = max|w| / (2^(b-1) − 1), so the grid {0, ±Δ, …, ±(2^(b-1)−1)Δ}
// covers the full range.
func quantStep(w *tensor.Tensor, bits int) (float32, error) {
	if bits < MinQuantBits || bits > MaxQuantBits {
		return 0, fmt.Errorf("admm: quantization bits %d out of range %d..%d",
			bits, MinQuantBits, MaxQuantBits)
	}
	var maxAbs float64
	for _, v := range w.Data {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	levels := float64(int(1)<<(bits-1)) - 1
	if maxAbs == 0 {
		return 1, nil
	}
	step := maxAbs / levels
	if math.IsInf(step, 0) || math.IsNaN(step) {
		return 0, fmt.Errorf("admm: non-finite quantization step (max|w| = %g)", maxAbs)
	}
	return float32(step), nil
}

// projectQuantize snaps every element of w to the nearest quantization level
// for the given step — the exact Euclidean projection onto the level grid.
// Zeros stay exactly zero (so the pruning constraints are respected).
func projectQuantize(w *tensor.Tensor, step float32, bits int) error {
	if bits < MinQuantBits || bits > MaxQuantBits {
		return fmt.Errorf("admm: quantization bits %d out of range %d..%d",
			bits, MinQuantBits, MaxQuantBits)
	}
	if !(step > 0) || math.IsInf(float64(step), 0) {
		return fmt.Errorf("admm: invalid quantization step %g", step)
	}
	limit := float32(int(1)<<(bits-1)) - 1
	for i, v := range w.Data {
		if v == 0 {
			continue
		}
		q := float32(math.Round(float64(v / step)))
		if q > limit {
			q = limit
		}
		if q < -limit {
			q = -limit
		}
		w.Data[i] = q * step
	}
	return nil
}

// quantError returns the RMS quantization error of snapping w to the grid,
// without modifying w.
func quantError(w *tensor.Tensor, step float32, bits int) float64 {
	limit := float64(int(1)<<(bits-1)) - 1
	var sum float64
	n := 0
	for _, v := range w.Data {
		if v == 0 {
			continue
		}
		q := math.Round(float64(v) / float64(step))
		if q > limit {
			q = limit
		}
		if q < -limit {
			q = -limit
		}
		d := float64(v) - q*float64(step)
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// DistinctLevels counts the distinct non-zero weight values in w — after
// quantization this is at most 2^bits − 2.
func DistinctLevels(w *tensor.Tensor) int {
	seen := make(map[float32]bool)
	for _, v := range w.Data {
		if v != 0 {
			seen[v] = true
		}
	}
	return len(seen)
}
