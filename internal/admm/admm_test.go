package admm

import (
	"math/rand"
	"testing"

	"patdnn/internal/dataset"
	"patdnn/internal/nn"
	"patdnn/internal/pattern"
	"patdnn/internal/tensor"
)

func TestProjectPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := tensor.New(2, 2, 3, 3)
	w.Randn(rng, 1)
	set := pattern.Canonical(8)
	projectPattern(w, set)
	for k := 0; k < 4; k++ {
		nz := 0
		for _, v := range w.Data[k*9 : (k+1)*9] {
			if v != 0 {
				nz++
			}
		}
		if nz > 4 {
			t.Fatalf("kernel %d has %d nonzeros after projection", k, nz)
		}
	}
}

func TestProjectConnectivity(t *testing.T) {
	w := tensor.New(4, 1, 3, 3)
	for k := 0; k < 4; k++ {
		for i := 0; i < 9; i++ {
			w.Data[k*9+i] = float32(k + 1) // kernel 3 has largest norm
		}
	}
	projectConnectivity(w, 1, 2)
	if w.Data[0] != 0 || w.Data[9] != 0 {
		t.Fatal("small kernels survived")
	}
	if w.Data[2*9] == 0 || w.Data[3*9] == 0 {
		t.Fatal("large kernels pruned")
	}
}

func TestProjectConnectivityKeepAll(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := tensor.New(2, 1, 3, 3)
	w.Randn(rng, 1)
	before := w.Clone()
	projectConnectivity(w, 1, 10)
	if !w.AllClose(before, 0) {
		t.Fatal("alpha >= n must be a no-op")
	}
}

// TestADMMEndToEnd is the core algorithmic reproduction check: ADMM pattern +
// connectivity pruning on a real CNN must (1) satisfy the constraints
// exactly, (2) reach the expected ~8x CONV compression, and (3) retain
// accuracy close to the dense baseline after fine-tuning — the Table 4 shape
// at small scale.
func TestADMMEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("ADMM end-to-end skipped in -short mode")
	}
	cfg := dataset.DefaultConfig()
	cfg.N = 300
	data := dataset.Synthetic(cfg)
	train, test := data.Split(0.8)

	net := nn.SmallCNN(cfg.C, cfg.H, cfg.W, 8, 12, cfg.Classes, 3)
	nn.Train(net, train, nn.NewAdam(0.004), nn.TrainConfig{Epochs: 6, BatchSize: 16, Seed: 1})
	dense := net.Accuracy(test)
	if dense < 0.8 {
		t.Fatalf("dense baseline too weak: %.3f", dense)
	}

	acfg := DefaultConfig(pattern.Canonical(8))
	acfg.SkipFirstConv = true
	rep, err := Run(net, train, test, acfg)
	if err != nil {
		t.Fatal(err)
	}

	// Constraint satisfaction.
	for _, pc := range rep.Pruned {
		if err := pc.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Compression: conv2 gets 4/9 * 1/3.6 ≈ 8.1x; conv1 pattern-only 2.25x.
	if rep.CompressionRate < 3.0 {
		t.Fatalf("overall compression = %.2fx, want > 3x", rep.CompressionRate)
	}
	// Accuracy must recover to near (or above) the dense baseline: the
	// paper reports no accuracy loss at this operating point. Allow a
	// small-sample tolerance.
	if rep.AccAfterTune < dense-0.10 {
		t.Fatalf("accuracy dropped too far: dense %.3f -> pruned %.3f", dense, rep.AccAfterTune)
	}
	// Fine-tuning must help relative to raw projection.
	if rep.AccAfterTune < rep.AccAfterADMM-0.02 {
		t.Fatalf("fine-tune regressed: %.3f -> %.3f", rep.AccAfterADMM, rep.AccAfterTune)
	}
	// ADMM residuals should shrink toward feasibility.
	first, last := rep.Residuals[0], rep.Residuals[len(rep.Residuals)-1]
	if last > first*1.5 {
		t.Fatalf("residuals diverging: %v", rep.Residuals)
	}
}

func TestRunErrorsWithoutPatternSet(t *testing.T) {
	if _, err := Run(nil, nil, nil, Config{}); err == nil {
		t.Fatal("expected error for empty pattern set")
	}
}

func TestMaskedRetrainingPreservesSparsity(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	cfg := dataset.DefaultConfig()
	cfg.N = 120
	data := dataset.Synthetic(cfg)
	train, test := data.Split(0.8)
	net := nn.SmallCNN(cfg.C, cfg.H, cfg.W, 4, 6, cfg.Classes, 3)
	nn.Train(net, train, nn.NewAdam(0.004), nn.TrainConfig{Epochs: 2, BatchSize: 16, Seed: 1})

	acfg := DefaultConfig(pattern.Canonical(6))
	acfg.Iterations, acfg.EpochsPerIt, acfg.FinetuneEps = 2, 1, 2
	rep, err := Run(net, train, test, acfg)
	if err != nil {
		t.Fatal(err)
	}

	// After fine-tuning, weights must still satisfy the masks: zeros stay zero.
	for i, conv := range net.ConvLayers() {
		pc := rep.Pruned[i]
		for f := 0; f < conv.OutC; f++ {
			for k := 0; k < conv.InC; k++ {
				p := pc.PatternOf(f, k)
				off := (f*conv.InC + k) * 9
				for pos := 0; pos < 9; pos++ {
					if !p.Has(pos) && conv.Weight.W.Data[off+pos] != 0 {
						t.Fatalf("layer %s kernel (%d,%d) pos %d became nonzero after fine-tune",
							conv.Name, f, k, pos)
					}
				}
			}
		}
	}
}
