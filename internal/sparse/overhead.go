package sparse

import (
	"patdnn/internal/compiler/reorder"
	"patdnn/internal/pruned"
)

// OverheadStats compares the extra-structure cost of FKW against CSR for one
// pruned layer, the quantity Figure 16 plots.
type OverheadStats struct {
	Layer       string
	NNZ         int
	CSROverhead int
	FKWOverhead int
	CSRTotal    int // structure + float32 weights
	FKWTotal    int
	// Ratio = FKW/CSR extra-structure overhead (Figure 16's y-axis).
	Ratio float64
	// StorageSaving = 1 - FKWTotal/CSRTotal (the "overall storage space
	// saving" the paper quotes).
	StorageSaving float64
}

// AnalyzeOverhead computes the FKW-vs-CSR comparison for a pruned layer with
// weights. The FKR plan is computed internally so the FKW encoding matches
// real deployment.
func AnalyzeOverhead(c *pruned.Conv) (OverheadStats, error) {
	plan := reorder.Build(c)
	fkw, err := Encode(c, plan.FilterPerm)
	if err != nil {
		return OverheadStats{}, err
	}
	csr := FromConvWeights(c.Weights)
	st := OverheadStats{
		Layer:       c.Name,
		NNZ:         csr.NNZ(),
		CSROverhead: csr.OverheadBytes(),
		FKWOverhead: fkw.OverheadBytes(),
		CSRTotal:    csr.TotalBytes(4),
		FKWTotal:    fkw.TotalBytes(4),
	}
	if st.CSROverhead > 0 {
		st.Ratio = float64(st.FKWOverhead) / float64(st.CSROverhead)
	}
	if st.CSRTotal > 0 {
		st.StorageSaving = 1 - float64(st.FKWTotal)/float64(st.CSRTotal)
	}
	return st, nil
}
