package sparse

import (
	"fmt"
	"sort"

	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/tensor"
)

// FKW is PatDNN's Filter-Kernel-Weight compact storage (paper Section 5.3,
// Figure 10). It stores pattern-pruned conv weights after Filter Kernel
// Reorder with five arrays at three hierarchy levels:
//
//	filter level:  Offset  — per filter, cumulative non-empty kernel count
//	               Reorder — per filter, the original filter (output channel)
//	kernel level:  Index   — per kernel, the input channel it convolves
//	               Stride  — per filter, cumulative kernel counts per pattern
//	weight level:  Weights — the retained weights, Entries() per kernel
//
// Because every kernel of a pattern has the same shape, no per-weight index
// is needed — that is where the overhead win over CSR comes from.
type FKW struct {
	OutC, InC, KH, KW int
	Patterns          []pattern.Pattern // distinct patterns present, by layer ID order

	Offset  []int32  // len OutC+1
	Reorder []uint16 // len OutC
	Index   []uint16 // len = non-empty kernels
	Stride  []uint16 // len = OutC * (len(Patterns)+1)
	Weights []float32
}

// Encode builds the FKW representation of a pruned layer. filterPerm is the
// FKR filter permutation (newPos -> original filter); pass nil for identity.
// Kernels inside each filter are stored grouped by pattern ID ascending (the
// kernel-reorder step), as the format requires.
func Encode(c *pruned.Conv, filterPerm []int) (*FKW, error) {
	if c.Weights == nil {
		return nil, fmt.Errorf("sparse: Encode requires weights on layer %s", c.Name)
	}
	if c.OutC > 65535 || c.InC > 65535 {
		return nil, fmt.Errorf("sparse: layer %s exceeds uint16 index range", c.Name)
	}
	if filterPerm == nil {
		filterPerm = make([]int, c.OutC)
		for i := range filterPerm {
			filterPerm[i] = i
		}
	}
	// Distinct pattern IDs present in the layer, ascending.
	present := map[int]bool{}
	for _, id := range c.IDs {
		if id != 0 {
			present[id] = true
		}
	}
	ids := make([]int, 0, len(present))
	for id := range present {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	idToSlot := make(map[int]int, len(ids))
	f := &FKW{
		OutC: c.OutC, InC: c.InC, KH: c.KH, KW: c.KW,
		Offset: make([]int32, 1, c.OutC+1),
	}
	for slot, id := range ids {
		idToSlot[id] = slot
		f.Patterns = append(f.Patterns, c.Set[id-1])
	}

	for newPos := 0; newPos < c.OutC; newPos++ {
		orig := filterPerm[newPos]
		f.Reorder = append(f.Reorder, uint16(orig))
		// Collect non-empty kernels sorted by (pattern ID, channel).
		type kk struct{ id, ch int }
		var ks []kk
		for ch := 0; ch < c.InC; ch++ {
			if id := c.ID(orig, ch); id != 0 {
				ks = append(ks, kk{id, ch})
			}
		}
		sort.Slice(ks, func(a, b int) bool {
			if ks[a].id != ks[b].id {
				return ks[a].id < ks[b].id
			}
			return ks[a].ch < ks[b].ch
		})
		// Stride: cumulative counts across the layer's pattern list.
		counts := make([]int, len(ids))
		for _, k := range ks {
			counts[idToSlot[k.id]]++
		}
		cum := 0
		f.Stride = append(f.Stride, uint16(0))
		for _, n := range counts {
			cum += n
			f.Stride = append(f.Stride, uint16(cum))
		}
		// Index + weights.
		for _, k := range ks {
			f.Index = append(f.Index, uint16(k.ch))
			p := c.Set[k.id-1]
			off := (orig*c.InC + k.ch) * c.KH * c.KW
			for _, pos := range p.Indices() {
				f.Weights = append(f.Weights, c.Weights.Data[off+pos])
			}
		}
		f.Offset = append(f.Offset, int32(len(f.Index)))
	}
	return f, nil
}

// KernelsOf returns, for reordered filter position pos and pattern slot s,
// the [start, end) kernel range in Index/weight order, and the pattern.
func (f *FKW) KernelsOf(pos, slot int) (start, end int, p pattern.Pattern) {
	base := pos * (len(f.Patterns) + 1)
	s := int(f.Stride[base+slot])
	e := int(f.Stride[base+slot+1])
	off := int(f.Offset[pos])
	return off + s, off + e, f.Patterns[slot]
}

// Decode reconstructs the dense [OutC, InC, KH, KW] weight tensor (in the
// original, un-reordered filter order).
func (f *FKW) Decode() *tensor.Tensor {
	out := tensor.New(f.OutC, f.InC, f.KH, f.KW)
	wOff := 0
	for pos := 0; pos < f.OutC; pos++ {
		orig := int(f.Reorder[pos])
		for slot := range f.Patterns {
			start, end, p := f.KernelsOf(pos, slot)
			idx := p.Indices()
			for k := start; k < end; k++ {
				ch := int(f.Index[k])
				base := (orig*f.InC + ch) * f.KH * f.KW
				for _, pp := range idx {
					out.Data[base+pp] = f.Weights[wOff]
					wOff++
				}
			}
		}
	}
	return out
}

// NNZ returns the stored weight count.
func (f *FKW) NNZ() int { return len(f.Weights) }

// KernelCount returns the stored (non-empty) kernel count.
func (f *FKW) KernelCount() int { return len(f.Index) }

// OverheadBytes returns the extra-structure bytes: offset (int32), reorder,
// index and stride (uint16), plus the pattern masks (2 bytes each).
func (f *FKW) OverheadBytes() int {
	return 4*len(f.Offset) + 2*len(f.Reorder) + 2*len(f.Index) +
		2*len(f.Stride) + 2*len(f.Patterns)
}

// WeightBytes returns weight-value storage at the given precision.
func (f *FKW) WeightBytes(bytesPerWeight int) int {
	return bytesPerWeight * len(f.Weights)
}

// TotalBytes returns structure + weights.
func (f *FKW) TotalBytes(bytesPerWeight int) int {
	return f.OverheadBytes() + f.WeightBytes(bytesPerWeight)
}
