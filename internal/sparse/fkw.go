package sparse

import (
	"fmt"
	"sort"

	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/tensor"
)

// FKW is PatDNN's Filter-Kernel-Weight compact storage (paper Section 5.3,
// Figure 10). It stores pattern-pruned conv weights after Filter Kernel
// Reorder with five arrays at three hierarchy levels:
//
//	filter level:  Offset  — per filter, cumulative non-empty kernel count
//	               Reorder — per filter, the original filter (output channel)
//	kernel level:  Index   — per kernel, the input channel it convolves
//	               Stride  — per filter, cumulative kernel counts per pattern
//	weight level:  Weights — the retained weights, Entries() per kernel
//
// Because every kernel of a pattern has the same shape, no per-weight index
// is needed — that is where the overhead win over CSR comes from.
type FKW struct {
	OutC, InC, KH, KW int
	Patterns          []pattern.Pattern // distinct patterns present, by layer ID order

	Offset  []int32  // len OutC+1
	Reorder []uint16 // len OutC
	Index   []uint16 // len = non-empty kernels
	Stride  []uint16 // len = OutC * (len(Patterns)+1)
	Weights []float32
}

// Encode builds the FKW representation of a pruned layer. filterPerm is the
// FKR filter permutation (newPos -> original filter); pass nil for identity.
// Kernels inside each filter are stored grouped by pattern ID ascending (the
// kernel-reorder step), as the format requires.
func Encode(c *pruned.Conv, filterPerm []int) (*FKW, error) {
	if c.Weights == nil {
		return nil, fmt.Errorf("sparse: Encode requires weights on layer %s", c.Name)
	}
	if c.OutC > 65535 || c.InC > 65535 {
		return nil, fmt.Errorf("sparse: layer %s exceeds uint16 index range", c.Name)
	}
	if filterPerm == nil {
		filterPerm = make([]int, c.OutC)
		for i := range filterPerm {
			filterPerm[i] = i
		}
	}
	// Distinct pattern IDs present in the layer, ascending.
	present := map[int]bool{}
	for _, id := range c.IDs {
		if id != 0 {
			present[id] = true
		}
	}
	ids := make([]int, 0, len(present))
	for id := range present {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	idToSlot := make(map[int]int, len(ids))
	f := &FKW{
		OutC: c.OutC, InC: c.InC, KH: c.KH, KW: c.KW,
		Offset: make([]int32, 1, c.OutC+1),
	}
	for slot, id := range ids {
		idToSlot[id] = slot
		f.Patterns = append(f.Patterns, c.Set[id-1])
	}

	for newPos := 0; newPos < c.OutC; newPos++ {
		orig := filterPerm[newPos]
		f.Reorder = append(f.Reorder, uint16(orig))
		// Collect non-empty kernels sorted by (pattern ID, channel).
		type kk struct{ id, ch int }
		var ks []kk
		for ch := 0; ch < c.InC; ch++ {
			if id := c.ID(orig, ch); id != 0 {
				ks = append(ks, kk{id, ch})
			}
		}
		sort.Slice(ks, func(a, b int) bool {
			if ks[a].id != ks[b].id {
				return ks[a].id < ks[b].id
			}
			return ks[a].ch < ks[b].ch
		})
		// Stride: cumulative counts across the layer's pattern list.
		counts := make([]int, len(ids))
		for _, k := range ks {
			counts[idToSlot[k.id]]++
		}
		cum := 0
		f.Stride = append(f.Stride, uint16(0))
		for _, n := range counts {
			cum += n
			f.Stride = append(f.Stride, uint16(cum))
		}
		// Index + weights.
		for _, k := range ks {
			f.Index = append(f.Index, uint16(k.ch))
			p := c.Set[k.id-1]
			off := (orig*c.InC + k.ch) * c.KH * c.KW
			for _, pos := range p.Indices() {
				f.Weights = append(f.Weights, c.Weights.Data[off+pos])
			}
		}
		f.Offset = append(f.Offset, int32(len(f.Index)))
	}
	return f, nil
}

// KernelsOf returns, for reordered filter position pos and pattern slot s,
// the [start, end) kernel range in Index/weight order, and the pattern.
func (f *FKW) KernelsOf(pos, slot int) (start, end int, p pattern.Pattern) {
	base := pos * (len(f.Patterns) + 1)
	s := int(f.Stride[base+slot])
	e := int(f.Stride[base+slot+1])
	off := int(f.Offset[pos])
	return off + s, off + e, f.Patterns[slot]
}

// Run is one pattern run of a reordered filter: a contiguous span of kernels
// sharing the same pattern, viewed directly over the packed arrays. Channels
// and Weights alias the FKW storage — a run iteration is exactly the linear
// array walk the format was designed for (one sequential sweep of Weights per
// filter, zero per-weight index arithmetic).
type Run struct {
	Pattern  pattern.Pattern
	Channels []uint16  // input channel per kernel (slice of Index)
	Weights  []float32 // Entries() weights per kernel (slice of Weights)
}

// Runs appends the pattern runs of reordered filter position pos to dst and
// returns it, reusing dst's backing array across filters so a caller
// iterating a whole layer allocates nothing after the first filter. wOff is
// the running weight offset and must start at 0 for pos 0; the returned
// offset feeds the next position's call.
func (f *FKW) Runs(dst []Run, pos int, wOff int) ([]Run, int) {
	dst = dst[:0]
	for slot, p := range f.Patterns {
		start, end, _ := f.KernelsOf(pos, slot)
		if start == end {
			continue
		}
		n := (end - start) * p.Entries()
		dst = append(dst, Run{
			Pattern:  p,
			Channels: f.Index[start:end],
			Weights:  f.Weights[wOff : wOff+n],
		})
		wOff += n
	}
	return dst, wOff
}

// TapOffsets decodes pattern p's retained positions into (dr, dc) offsets
// within a KH×KW kernel. Pattern indices are row-major over the pattern's own
// K×K grid, so decoding them against a kernel of a different width would
// silently alias distinct taps onto the same input rows; the grid is checked
// here once instead of trusting every executor's divide/modulo arithmetic.
func TapOffsets(p pattern.Pattern, kh, kw int) ([][2]int, error) {
	if p.K != kh || p.K != kw {
		return nil, fmt.Errorf("sparse: pattern grid %dx%d does not match %dx%d kernel", p.K, p.K, kh, kw)
	}
	idx := p.Indices()
	taps := make([][2]int, len(idx))
	for i, pos := range idx {
		taps[i] = [2]int{pos / kw, pos % kw}
	}
	return taps, nil
}

// Validate checks the structural invariants of an FKW instance — array
// lengths, offset/stride monotonicity, index ranges, and the weight count
// implied by the stride table. Decoding a malformed instance (e.g. one read
// from a corrupted model file) would index out of range; Validate turns that
// panic into an error.
func (f *FKW) Validate() error {
	if f.OutC <= 0 || f.InC <= 0 || f.KH <= 0 || f.KW <= 0 {
		return fmt.Errorf("sparse: FKW has non-positive dims [%d,%d,%d,%d]", f.OutC, f.InC, f.KH, f.KW)
	}
	if len(f.Offset) != f.OutC+1 {
		return fmt.Errorf("sparse: FKW Offset len %d, want %d", len(f.Offset), f.OutC+1)
	}
	if len(f.Reorder) != f.OutC {
		return fmt.Errorf("sparse: FKW Reorder len %d, want %d", len(f.Reorder), f.OutC)
	}
	if len(f.Stride) != f.OutC*(len(f.Patterns)+1) {
		return fmt.Errorf("sparse: FKW Stride len %d, want %d", len(f.Stride), f.OutC*(len(f.Patterns)+1))
	}
	if f.Offset[0] != 0 {
		return fmt.Errorf("sparse: FKW Offset[0] = %d, want 0", f.Offset[0])
	}
	for i := 1; i < len(f.Offset); i++ {
		if f.Offset[i] < f.Offset[i-1] {
			return fmt.Errorf("sparse: FKW Offset not monotone at %d: %d < %d", i, f.Offset[i], f.Offset[i-1])
		}
	}
	if int(f.Offset[f.OutC]) != len(f.Index) {
		return fmt.Errorf("sparse: FKW Offset[last] = %d, but Index holds %d kernels", f.Offset[f.OutC], len(f.Index))
	}
	seen := make(map[uint16]bool, f.OutC)
	for _, r := range f.Reorder {
		if int(r) >= f.OutC {
			return fmt.Errorf("sparse: FKW Reorder entry %d out of range [0,%d)", r, f.OutC)
		}
		if seen[r] {
			return fmt.Errorf("sparse: FKW Reorder entry %d duplicated (not a permutation)", r)
		}
		seen[r] = true
	}
	for i, p := range f.Patterns {
		if p.IsEmpty() {
			return fmt.Errorf("sparse: FKW pattern slot %d is empty", i)
		}
		if p.K != f.KH || p.K != f.KW {
			return fmt.Errorf("sparse: FKW pattern slot %d is a %dx%d grid on a %dx%d kernel", i, p.K, p.K, f.KH, f.KW)
		}
		for _, posIdx := range p.Indices() {
			if posIdx >= f.KH*f.KW {
				return fmt.Errorf("sparse: FKW pattern slot %d tap %d outside %dx%d kernel", i, posIdx, f.KH, f.KW)
			}
		}
	}
	nWeights := 0
	for pos := 0; pos < f.OutC; pos++ {
		base := pos * (len(f.Patterns) + 1)
		if f.Stride[base] != 0 {
			return fmt.Errorf("sparse: FKW Stride row %d does not start at 0", pos)
		}
		for s := 1; s <= len(f.Patterns); s++ {
			if f.Stride[base+s] < f.Stride[base+s-1] {
				return fmt.Errorf("sparse: FKW Stride row %d not monotone at slot %d", pos, s)
			}
		}
		kernels := int(f.Offset[pos+1]) - int(f.Offset[pos])
		if int(f.Stride[base+len(f.Patterns)]) != kernels {
			return fmt.Errorf("sparse: FKW Stride row %d covers %d kernels, Offset says %d",
				pos, f.Stride[base+len(f.Patterns)], kernels)
		}
		for slot := range f.Patterns {
			start, end, p := f.KernelsOf(pos, slot)
			for k := start; k < end; k++ {
				if int(f.Index[k]) >= f.InC {
					return fmt.Errorf("sparse: FKW Index[%d] = %d out of range [0,%d)", k, f.Index[k], f.InC)
				}
			}
			nWeights += (end - start) * p.Entries()
		}
	}
	if nWeights != len(f.Weights) {
		return fmt.Errorf("sparse: FKW stride table implies %d weights, Weights holds %d", nWeights, len(f.Weights))
	}
	return nil
}

// DecodeChecked validates the instance and then reconstructs the dense weight
// tensor; malformed instances (e.g. from a corrupted model file) error rather
// than panic.
func (f *FKW) DecodeChecked() (*tensor.Tensor, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f.Decode(), nil
}

// Decode reconstructs the dense [OutC, InC, KH, KW] weight tensor (in the
// original, un-reordered filter order).
func (f *FKW) Decode() *tensor.Tensor {
	out := tensor.New(f.OutC, f.InC, f.KH, f.KW)
	wOff := 0
	for pos := 0; pos < f.OutC; pos++ {
		orig := int(f.Reorder[pos])
		for slot := range f.Patterns {
			start, end, p := f.KernelsOf(pos, slot)
			idx := p.Indices()
			for k := start; k < end; k++ {
				ch := int(f.Index[k])
				base := (orig*f.InC + ch) * f.KH * f.KW
				for _, pp := range idx {
					out.Data[base+pp] = f.Weights[wOff]
					wOff++
				}
			}
		}
	}
	return out
}

// NNZ returns the stored weight count.
func (f *FKW) NNZ() int { return len(f.Weights) }

// KernelCount returns the stored (non-empty) kernel count.
func (f *FKW) KernelCount() int { return len(f.Index) }

// OverheadBytes returns the extra-structure bytes: offset (int32), reorder,
// index and stride (uint16), plus the pattern masks (2 bytes each).
func (f *FKW) OverheadBytes() int {
	return 4*len(f.Offset) + 2*len(f.Reorder) + 2*len(f.Index) +
		2*len(f.Stride) + 2*len(f.Patterns)
}

// WeightBytes returns weight-value storage at the given precision.
func (f *FKW) WeightBytes(bytesPerWeight int) int {
	return bytesPerWeight * len(f.Weights)
}

// TotalBytes returns structure + weights.
func (f *FKW) TotalBytes(bytesPerWeight int) int {
	return f.OverheadBytes() + f.WeightBytes(bytesPerWeight)
}
