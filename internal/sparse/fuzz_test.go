package sparse

// Go-native fuzzing for the FKW encode/decode pair. Two properties:
//
//  1. Round trip: for any pruned layer the fuzzer can derive, the packed form
//     must reproduce the layer's weights exactly (bit-for-bit — packing is
//     lossless by construction).
//  2. Malformed inputs error, never panic: a corrupted FKW instance (as a
//     hostile or truncated model file would produce) must be rejected by
//     Validate/DecodeChecked with an error, not an index-out-of-range panic.
//
// Run as a smoke test with: go test -fuzz=FuzzFKWRoundTrip -fuzztime=20s ./internal/sparse

import (
	"math/rand"
	"testing"

	"patdnn/internal/compiler/reorder"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/tensor"
)

// fuzzLayer derives a small pruned layer from the fuzzer's raw inputs.
func fuzzLayer(seed int64, patSize, connPct uint8) *pruned.Conv {
	rng := rand.New(rand.NewSource(seed))
	outC := 1 + rng.Intn(10)
	inC := 1 + rng.Intn(8)
	sizes := []int{6, 8, 12}
	set := pattern.Canonical(sizes[int(patSize)%len(sizes)])
	w := tensor.New(outC, inC, 3, 3)
	w.Randn(rng, 1)
	keep := 1 + int(connPct)%(outC*inC)
	geom := pruned.ConvGeom{Stride: 1, Pad: 1, InH: 6, InW: 6, OutH: 6, OutW: 6}
	return pruned.FromWeights("fuzz", w, set, keep, geom)
}

func FuzzFKWRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(50), uint8(0), uint16(3))
	f.Add(int64(42), uint8(1), uint8(10), uint8(1), uint16(0))
	f.Add(int64(7), uint8(2), uint8(90), uint8(2), uint16(65535))
	f.Add(int64(-3), uint8(0), uint8(1), uint8(3), uint16(7))
	f.Add(int64(99), uint8(1), uint8(255), uint8(4), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, patSize, connPct, mutSel uint8, mutVal uint16) {
		c := fuzzLayer(seed, patSize, connPct)
		fkr := reorder.Build(c)
		fkw, err := Encode(c, fkr.FilterPerm)
		if err != nil {
			t.Fatalf("Encode of a valid layer failed: %v", err)
		}
		if err := fkw.Validate(); err != nil {
			t.Fatalf("Encode produced an invalid FKW: %v", err)
		}
		dec, err := fkw.DecodeChecked()
		if err != nil {
			t.Fatalf("DecodeChecked of a fresh encode failed: %v", err)
		}
		if !dec.AllClose(c.Weights, 0) {
			t.Fatalf("round trip lost weights: max diff %g", dec.MaxAbsDiff(c.Weights))
		}

		// Corrupt one structural field; every mutation below violates an FKW
		// invariant, so DecodeChecked must error (and must not panic).
		m := *fkw
		m.Offset = append([]int32(nil), fkw.Offset...)
		m.Reorder = append([]uint16(nil), fkw.Reorder...)
		m.Index = append([]uint16(nil), fkw.Index...)
		m.Stride = append([]uint16(nil), fkw.Stride...)
		m.Weights = append([]float32(nil), fkw.Weights...)
		switch mutSel % 6 {
		case 0: // weight array truncated (a cut-short file)
			if len(m.Weights) == 0 {
				return
			}
			m.Weights = m.Weights[:len(m.Weights)-1]
		case 1: // kernel index beyond the layer's channels
			if len(m.Index) == 0 {
				return
			}
			m.Index[int(mutVal)%len(m.Index)] = uint16(m.InC) + mutVal%7
		case 2: // offset table no longer matches the kernel count
			m.Offset[len(m.Offset)-1]++
		case 3: // reorder array stops being a permutation
			if m.OutC < 2 {
				return
			}
			m.Reorder[0] = m.Reorder[m.OutC-1]
		case 4: // stride row inconsistent with the offset table
			m.Stride[len(m.Stride)-1]++
		case 5: // negative dimension (corrupted header)
			m.InC = -1
		}
		if _, err := m.DecodeChecked(); err == nil {
			t.Fatalf("DecodeChecked accepted a corrupted FKW (mutation %d)", mutSel%6)
		}
	})
}
