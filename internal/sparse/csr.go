// Package sparse implements the compressed weight storage formats compared in
// the paper: the standard CSR format (the clSPARSE-style baseline the paper's
// Figure 16 compares against) and PatDNN's FKW (Filter-Kernel-Weight) format,
// whose five arrays — offset, reorder, index, stride, weight — exploit
// pattern regularity to cut the extra-structure overhead by roughly an order
// of magnitude.
package sparse

import (
	"fmt"

	"patdnn/internal/tensor"
)

// CSR stores a sparse matrix in compressed-sparse-row form with 32-bit
// indices (the standard layout of clSPARSE and similar libraries).
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Values     []float32
}

// NewCSR compresses a dense [rows, cols] matrix.
func NewCSR(m *tensor.Tensor) *CSR {
	rows, cols := m.Dim(0), m.Dim(1)
	c := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for r := 0; r < rows; r++ {
		for j := 0; j < cols; j++ {
			v := m.Data[r*cols+j]
			if v != 0 {
				c.ColIdx = append(c.ColIdx, int32(j))
				c.Values = append(c.Values, v)
			}
		}
		c.RowPtr[r+1] = int32(len(c.Values))
	}
	return c
}

// FromConvWeights compresses a [Co, Ci, Kh, Kw] conv weight tensor as the
// flattened [Co, Ci*Kh*Kw] matrix — the representation a sparse-GEMM conv
// uses.
func FromConvWeights(w *tensor.Tensor) *CSR {
	co := w.Dim(0)
	cols := w.Dim(1) * w.Dim(2) * w.Dim(3)
	return NewCSR(w.Reshape(co, cols))
}

// NNZ returns the stored non-zero count.
func (c *CSR) NNZ() int { return len(c.Values) }

// Dense reconstructs the dense matrix.
func (c *CSR) Dense() *tensor.Tensor {
	out := tensor.New(c.Rows, c.Cols)
	for r := 0; r < c.Rows; r++ {
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			out.Data[r*c.Cols+int(c.ColIdx[p])] = c.Values[p]
		}
	}
	return out
}

// OverheadBytes returns the extra-structure bytes (index arrays only, not
// weight values): 4 bytes per row-pointer entry plus 4 per column index.
func (c *CSR) OverheadBytes() int {
	return 4*len(c.RowPtr) + 4*len(c.ColIdx)
}

// WeightBytes returns the weight-value storage at the given precision
// (4 = float32, 2 = FP16 as used on mobile GPUs).
func (c *CSR) WeightBytes(bytesPerWeight int) int {
	return bytesPerWeight * len(c.Values)
}

// TotalBytes returns structure + weights.
func (c *CSR) TotalBytes(bytesPerWeight int) int {
	return c.OverheadBytes() + c.WeightBytes(bytesPerWeight)
}

// MatVec computes y = A·x; the kernel of the CSR sparse-conv baseline.
func (c *CSR) MatVec(x, y []float32) error {
	if len(x) != c.Cols || len(y) != c.Rows {
		return fmt.Errorf("sparse: MatVec dims: x %d (want %d), y %d (want %d)",
			len(x), c.Cols, len(y), c.Rows)
	}
	for r := 0; r < c.Rows; r++ {
		var s float32
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			s += c.Values[p] * x[c.ColIdx[p]]
		}
		y[r] = s
	}
	return nil
}
