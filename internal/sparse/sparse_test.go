package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"patdnn/internal/compiler/reorder"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/tensor"
)

func genLayer(seed int64, setSize int, connRate float64) *pruned.Conv {
	m := model.VGG16("cifar10")
	return pruned.Generate(m.ConvLayers()[2], pattern.Canonical(setSize), connRate, seed, true)
}

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.New(6, 10)
	for i := range m.Data {
		if rng.Float64() < 0.3 {
			m.Data[i] = float32(rng.NormFloat64())
		}
	}
	c := NewCSR(m)
	if !c.Dense().AllClose(m, 0) {
		t.Fatal("CSR round trip failed")
	}
	if c.NNZ() != m.NNZ() {
		t.Fatalf("NNZ mismatch: %d vs %d", c.NNZ(), m.NNZ())
	}
}

func TestCSRMatVec(t *testing.T) {
	m := tensor.FromSlice([]float32{
		1, 0, 2,
		0, 3, 0,
	}, 2, 3)
	c := NewCSR(m)
	x := []float32{1, 2, 3}
	y := make([]float32, 2)
	if err := c.MatVec(x, y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 7 || y[1] != 6 {
		t.Fatalf("MatVec = %v", y)
	}
	if err := c.MatVec(x[:2], y); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestCSROverheadBytes(t *testing.T) {
	m := tensor.New(4, 8)
	m.Data[0], m.Data[9], m.Data[31] = 1, 2, 3
	c := NewCSR(m)
	// rowptr: 5*4 bytes; colidx: 3*4 bytes.
	if got := c.OverheadBytes(); got != 5*4+3*4 {
		t.Fatalf("overhead = %d", got)
	}
	if got := c.WeightBytes(2); got != 6 {
		t.Fatalf("fp16 weight bytes = %d", got)
	}
}

func TestFKWRoundTripIdentityPerm(t *testing.T) {
	c := genLayer(2, 8, 3.6)
	f, err := Encode(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Decode().AllClose(c.Weights, 0) {
		t.Fatal("FKW round trip (identity perm) failed")
	}
}

func TestFKWRoundTripWithFKR(t *testing.T) {
	c := genLayer(3, 8, 3.6)
	plan := reorder.Build(c)
	f, err := Encode(c, plan.FilterPerm)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Decode().AllClose(c.Weights, 0) {
		t.Fatal("FKW round trip (FKR perm) failed")
	}
	if f.KernelCount() != c.NonEmptyKernels() {
		t.Fatalf("kernel count %d, want %d", f.KernelCount(), c.NonEmptyKernels())
	}
	if f.NNZ() != c.NNZ() {
		t.Fatalf("NNZ %d, want %d", f.NNZ(), c.NNZ())
	}
}

func TestFKWStrideStructure(t *testing.T) {
	c := genLayer(4, 6, 3.0)
	f, err := Encode(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	per := len(f.Patterns) + 1
	if len(f.Stride) != c.OutC*per {
		t.Fatalf("stride len = %d, want %d", len(f.Stride), c.OutC*per)
	}
	for pos := 0; pos < c.OutC; pos++ {
		row := f.Stride[pos*per : (pos+1)*per]
		if row[0] != 0 {
			t.Fatalf("stride row %d does not start at 0: %v", pos, row)
		}
		for i := 1; i < per; i++ {
			if row[i] < row[i-1] {
				t.Fatalf("stride row %d not monotone: %v", pos, row)
			}
		}
		// Last stride equals the filter's kernel count.
		want := int(f.Offset[pos+1] - f.Offset[pos])
		if int(row[per-1]) != want {
			t.Fatalf("stride row %d total %d, want %d", pos, row[per-1], want)
		}
	}
}

func TestFKWRequiresWeights(t *testing.T) {
	c := genLayer(5, 8, 3.6)
	c.Weights = nil
	if _, err := Encode(c, nil); err == nil {
		t.Fatal("expected error without weights")
	}
}

func TestFKWOverheadFarBelowCSR(t *testing.T) {
	// Figure 16's claim: FKW saves ~88-93% of CSR extra-structure overhead
	// and >40% total storage at the paper's pruning rates.
	c := genLayer(6, 8, 3.6) // ~8x overall
	st, err := AnalyzeOverhead(c)
	if err != nil {
		t.Fatal(err)
	}
	// Small layers amortize the per-filter arrays worse; <=25% here, ~13%
	// at L8/L9 scale (see TestOverheadBigLayer).
	if st.Ratio > 0.25 {
		t.Fatalf("FKW/CSR overhead ratio = %.3f, want <= 0.25", st.Ratio)
	}
	if st.StorageSaving < 0.35 {
		t.Fatalf("total storage saving = %.3f, want >= 0.35", st.StorageSaving)
	}
}

func TestOverheadBigLayer(t *testing.T) {
	// VGG L8 [512,512,3,3] at the paper's 8x overall rate: FKW overhead
	// must be close to the paper's ~12% of CSR, and total storage saving
	// >= 40% (paper: 43.9% at 8x).
	m := model.VGG16("imagenet")
	var l8 *model.Layer
	for _, l := range m.ConvLayers() {
		if l.OutC == 512 && l.InC == 512 {
			l8 = l
			break
		}
	}
	c := pruned.Generate(l8, pattern.Canonical(8), 3.56, 9, true)
	st, err := AnalyzeOverhead(c)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ratio > 0.16 {
		t.Fatalf("L8 FKW/CSR ratio = %.3f, want <= 0.16", st.Ratio)
	}
	if st.StorageSaving < 0.40 {
		t.Fatalf("L8 storage saving = %.3f, want >= 0.40", st.StorageSaving)
	}
}

func TestOverheadAcrossPruningRates(t *testing.T) {
	// Overhead ratio stays far below CSR at every rate Figure 16 uses
	// (overall 8x, 12x, 18x = connectivity 3.56x, 5.33x, 8x on top of the
	// 2.25x pattern rate). Measured on a large layer (VGG L6-like), where
	// the per-filter arrays amortize as in the paper.
	m := model.VGG16("imagenet")
	var l6 *model.Layer
	for _, l := range m.ConvLayers() {
		if l.OutC == 256 && l.InC == 256 {
			l6 = l
			break
		}
	}
	for _, conn := range []float64{3.56, 5.33, 8.0} {
		c := pruned.Generate(l6, pattern.Canonical(8), conn, 7, true)
		st, err := AnalyzeOverhead(c)
		if err != nil {
			t.Fatal(err)
		}
		if st.Ratio > 0.25 {
			t.Fatalf("conn %.2f: ratio %.3f too high", conn, st.Ratio)
		}
	}
}

// Property: FKW round-trips for random layers across set sizes and rates.
func TestFKWRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := genLayer(seed, 6, 3.0)
		plan := reorder.Build(c)
		fkw, err := Encode(c, plan.FilterPerm)
		if err != nil {
			return false
		}
		return fkw.Decode().AllClose(c.Weights, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelsOfRanges(t *testing.T) {
	c := genLayer(8, 6, 3.0)
	f, err := Encode(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Walking all (pos, slot) ranges must cover Index exactly once.
	covered := 0
	for pos := 0; pos < f.OutC; pos++ {
		for slot := range f.Patterns {
			start, end, p := f.KernelsOf(pos, slot)
			if start > end {
				t.Fatalf("negative range at pos %d slot %d", pos, slot)
			}
			if p.Entries() != 4 {
				t.Fatal("bad pattern from KernelsOf")
			}
			covered += end - start
		}
	}
	if covered != f.KernelCount() {
		t.Fatalf("ranges cover %d kernels, want %d", covered, f.KernelCount())
	}
}
