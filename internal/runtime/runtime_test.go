package runtime

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/tensor"
)

func testPlan(t testing.TB, level codegen.Level) (*codegen.Plan, *tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	w := tensor.New(12, 8, 3, 3)
	w.Randn(rng, 1)
	geom := pruned.ConvGeom{Stride: 1, Pad: 1, InH: 14, InW: 10, OutH: 14, OutW: 10}
	c := pruned.FromWeights("rt", w, pattern.Canonical(8), 40, geom)
	plan, err := codegen.Compile(c, level, lr.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(8, 14, 10)
	in.Randn(rng, 1)
	return plan, in
}

func TestParallelForCoversRange(t *testing.T) {
	p := NewPool(4)
	var covered [100]int32
	p.ParallelFor(100, func(start, end int) {
		for i := start; i < end; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestParallelForEdgeCases(t *testing.T) {
	p := NewPool(8)
	ran := false
	p.ParallelFor(0, func(s, e int) { ran = true })
	if ran {
		t.Fatal("ParallelFor(0) must not call fn")
	}
	var n int32
	p.ParallelFor(1, func(s, e int) { atomic.AddInt32(&n, int32(e-s)) })
	if n != 1 {
		t.Fatalf("ParallelFor(1) covered %d", n)
	}
	if NewPool(0).Workers() < 1 {
		t.Fatal("pool must default to >= 1 worker")
	}
}

func TestParallelForFewerItemsThanWorkers(t *testing.T) {
	p := NewPool(8)
	var covered [3]int32
	p.ParallelFor(len(covered), func(start, end int) {
		for i := start; i < end; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestParallelForNegativeN(t *testing.T) {
	p := NewPool(4)
	p.ParallelFor(-5, func(s, e int) { t.Error("fn called for negative n") })
}

func TestParallelForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if r != "boom" {
					t.Fatalf("workers=%d: panic value %v, want boom", workers, r)
				}
			}()
			p.ParallelFor(64, func(s, e int) {
				if s == 0 {
					panic("boom")
				}
			})
		}()
	}
}

func TestParallelForPanicStillCoversOtherChunks(t *testing.T) {
	// A panicking chunk must not prevent the other workers from finishing
	// (the pool waits for all goroutines before re-raising).
	p := NewPool(4)
	var n int32
	func() {
		defer func() { recover() }()
		p.ParallelFor(100, func(s, e int) {
			if s == 0 {
				panic("boom")
			}
			atomic.AddInt32(&n, int32(e-s))
		})
	}()
	if n == 0 {
		t.Fatal("no other chunk ran to completion")
	}
}

func TestRunLayerMatchesSequential(t *testing.T) {
	for _, level := range []codegen.Level{codegen.Reorder, codegen.Tuned} {
		plan, in := testPlan(t, level)
		bias := make([]float32, plan.Conv.OutC)
		for i := range bias {
			bias[i] = float32(i) * 0.1
		}
		want := plan.Execute(in, bias)
		for _, workers := range []int{1, 2, 4, 8} {
			pool := NewPool(workers)
			got := pool.RunLayer(plan, in, bias)
			if !got.AllClose(want, 1e-4) {
				t.Fatalf("level %v workers %d: parallel diff %g",
					level, workers, got.MaxAbsDiff(want))
			}
		}
	}
}

func TestPipelineRuns(t *testing.T) {
	plan1, in := testPlan(t, codegen.Tuned)
	// Second layer consumes the first layer's 12-channel output.
	rng := rand.New(rand.NewSource(2))
	w2 := tensor.New(6, 12, 3, 3)
	w2.Randn(rng, 1)
	geom := pruned.ConvGeom{Stride: 1, Pad: 1, InH: 14, InW: 10, OutH: 14, OutW: 10}
	c2 := pruned.FromWeights("rt2", w2, pattern.Canonical(8), 30, geom)
	plan2, err := codegen.Compile(c2, codegen.Tuned, lr.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline(NewPool(4), []*codegen.Plan{plan1, plan2}, nil)
	out := pl.Run(in)
	if out.Dim(0) != 6 || out.Dim(1) != 14 || out.Dim(2) != 10 {
		t.Fatalf("pipeline output shape %v", out.Shape())
	}
	// ReLU applied: no negatives.
	for _, v := range out.Data {
		if v < 0 {
			t.Fatal("pipeline output not rectified")
		}
	}
}

func TestMeasureReturnsNonNegative(t *testing.T) {
	ms := Measure(3, func() {})
	if ms < 0 {
		t.Fatalf("negative time %f", ms)
	}
}

func TestPoolLimit(t *testing.T) {
	p := NewPool(8)
	cases := []struct{ n, want int }{
		{4, 4}, {8, 8}, {12, 8}, {0, 1}, {-3, 1}, {1, 1},
	}
	for _, c := range cases {
		if got := p.Limit(c.n).Workers(); got != c.want {
			t.Fatalf("NewPool(8).Limit(%d).Workers() = %d, want %d", c.n, got, c.want)
		}
	}
	// Full-width limit returns the pool itself (no pointless copy).
	if p.Limit(8) != p {
		t.Fatal("Limit(width) should return the same pool")
	}
	// A limited pool still covers the whole range, with at most n chunks
	// in flight: ParallelFor correctness is width-independent.
	lp := p.Limit(2)
	var covered [64]int32
	lp.ParallelFor(64, func(start, end int) {
		for i := start; i < end; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("limited pool: index %d covered %d times", i, c)
		}
	}
}
