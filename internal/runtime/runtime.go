// Package runtime executes compiled PatDNN plans on the host: a worker-pool
// parallel-for that splits a layer's output channels across threads along the
// filter-group boundaries FKR produces (the same mapping the paper uses for
// GPU thread blocks and CPU threads), plus a simple layer pipeline and wall-
// clock measurement helpers used by the host microbenchmarks.
package runtime

import (
	"runtime"
	"sync"
	"time"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/tensor"
)

// Pool is a fixed-size worker pool for data-parallel layer execution.
type Pool struct {
	workers int
}

// NewPool creates a pool with n workers (n<=0 selects GOMAXPROCS).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Limit returns a width-limited view of the pool: ParallelFor on the returned
// pool splits work across at most n workers (floored at 1, capped at the
// parent's width). The serving engine uses it to run batch-class sweeps on a
// slice of the machine while interactive sweeps keep the full width — sizing
// compute per scheduling class without a second pool's worth of bookkeeping.
func (p *Pool) Limit(n int) *Pool {
	if n > p.workers {
		n = p.workers
	}
	if n < 1 {
		n = 1
	}
	if n == p.workers {
		return p
	}
	return &Pool{workers: n}
}

// ParallelFor runs fn(chunk) for chunks [start,end) covering [0,n) split as
// evenly as possible across the workers. A panic inside fn is captured on the
// worker goroutine and re-raised on the calling goroutine after every worker
// has finished, so callers (and deferred recovers above them) observe it the
// same way they would a panic from a plain loop; if several chunks panic, the
// first one captured wins.
func (p *Pool) ParallelFor(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		fn(0, n)
		return
	}
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
	)
	chunk := (n + w - 1) / w
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// slicePool recycles float32 scratch slices (padded inputs, intermediate
// feature maps) across layer executions and requests, so steady-state batched
// serving stops allocating — and stops re-zeroing — per request. Entries are
// *[]float32 to keep Put itself allocation-free.
var slicePool sync.Pool

// GetSlice returns a scratch slice of length n. Contents are UNDEFINED — the
// caller must fully overwrite it (the fused kernels and PadInputInto do).
func GetSlice(n int) []float32 {
	if v, ok := slicePool.Get().(*[]float32); ok && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]float32, n)
}

// PutSlice returns a scratch slice to the pool. The caller must not touch it
// afterwards.
func PutSlice(s []float32) {
	if cap(s) == 0 {
		return
	}
	slicePool.Put(&s)
}

// GetTensor returns a [dims...] tensor over pooled storage; contents are
// UNDEFINED. Pair with PutTensor when the tensor's data is no longer
// referenced anywhere.
func GetTensor(dims ...int) *tensor.Tensor {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return tensor.FromSlice(GetSlice(n), dims...)
}

// PutTensor recycles a tensor previously obtained from GetTensor.
func PutTensor(t *tensor.Tensor) { PutSlice(t.Data) }

// RunLayer executes a compiled conv plan with the pool, splitting output
// channels across workers.
func (p *Pool) RunLayer(plan *codegen.Plan, input *tensor.Tensor, bias []float32) *tensor.Tensor {
	c := plan.Conv
	out := tensor.New(c.OutC, c.OutH, c.OutW)
	if bias != nil {
		for oc := 0; oc < c.OutC; oc++ {
			plane := out.Data[oc*c.OutH*c.OutW : (oc+1)*c.OutH*c.OutW]
			for i := range plane {
				plane[i] = bias[oc]
			}
		}
	}
	padded := plan.PadInput(input)
	p.ParallelFor(c.OutC, func(start, end int) {
		plan.ExecuteRange(padded, out, start, end)
	})
	return out
}

// RunLayerFused executes a compiled conv plan with the fused bias(+ReLU)
// epilogue, padding through the pooled scratch buffers so steady-state
// execution performs one allocation (the returned output tensor). The packed
// FKW-direct level fuses natively; other levels fall back to equivalent
// separate passes.
func (p *Pool) RunLayerFused(plan *codegen.Plan, input *tensor.Tensor, bias []float32, relu bool) *tensor.Tensor {
	c := plan.Conv
	out := tensor.New(c.OutC, c.OutH, c.OutW)
	var buf []float32
	padded := input
	if c.Pad > 0 {
		buf = GetSlice(plan.PaddedLen())
		padded = plan.PadInputInto(input, buf)
	}
	p.ParallelFor(c.OutC, func(start, end int) {
		plan.ExecuteRangeFused(padded, out, start, end, bias, relu)
	})
	if buf != nil {
		PutSlice(buf)
	}
	return out
}

// RunLayerBatchFused executes one conv plan over a whole batch as a single
// ParallelFor across batch × output-channels — the serving engine's batched
// layer sweep, also used by the benchmark harnesses so they measure exactly
// the serving path. Padded inputs ride pooled scratch returned before this
// function exits; the outputs come from the tensor pool with the fused
// bias(+ReLU) epilogue initializing every plane, so callers must recycle
// them with PutTensor once consumed (or hand them off, e.g. to a response).
func (p *Pool) RunLayerBatchFused(plan *codegen.Plan, xs []*tensor.Tensor, bias []float32, relu bool) []*tensor.Tensor {
	conv := plan.Conv
	padded := make([]*tensor.Tensor, len(xs))
	pbufs := make([][]float32, len(xs))
	outs := make([]*tensor.Tensor, len(xs))
	p.ParallelFor(len(xs), func(s, e int) {
		for i := s; i < e; i++ {
			if conv.Pad > 0 {
				pbufs[i] = GetSlice(plan.PaddedLen())
				padded[i] = plan.PadInputInto(xs[i], pbufs[i])
			} else {
				padded[i] = xs[i]
			}
			outs[i] = GetTensor(conv.OutC, conv.OutH, conv.OutW)
		}
	})
	p.ParallelFor(len(xs)*conv.OutC, func(s, e int) {
		for i := s; i < e; {
			item, from := i/conv.OutC, i%conv.OutC
			to := from + (e - i)
			if to > conv.OutC {
				to = conv.OutC
			}
			plan.ExecuteRangeFused(padded[item], outs[item], from, to, bias, relu)
			i += to - from
		}
	})
	for _, b := range pbufs {
		if b != nil {
			PutSlice(b)
		}
	}
	return outs
}

// Measure runs fn repeatedly and returns the average wall-clock milliseconds
// over runs (after one warmup).
func Measure(runs int, fn func()) float64 {
	if runs < 1 {
		runs = 1
	}
	fn() // warmup
	start := time.Now()
	for i := 0; i < runs; i++ {
		fn()
	}
	return float64(time.Since(start).Milliseconds()) / float64(runs)
}

// Pipeline executes a sequence of compiled conv plans, feeding each output
// into the next layer with a ReLU between stages (the fused conv+relu
// execution of the graph optimizer).
type Pipeline struct {
	Plans  []*codegen.Plan
	Biases [][]float32
	pool   *Pool
}

// NewPipeline builds a pipeline over the pool.
func NewPipeline(pool *Pool, plans []*codegen.Plan, biases [][]float32) *Pipeline {
	return &Pipeline{Plans: plans, Biases: biases, pool: pool}
}

// Run executes the pipeline on one input. Conv+bias+ReLU run as one fused
// sweep per layer (natively fused for packed plans), with padding through the
// pooled scratch buffers.
func (pl *Pipeline) Run(input *tensor.Tensor) *tensor.Tensor {
	x := input
	for i, plan := range pl.Plans {
		var bias []float32
		if pl.Biases != nil && i < len(pl.Biases) {
			bias = pl.Biases[i]
		}
		x = pl.pool.RunLayerFused(plan, x, bias, true)
	}
	return x
}
