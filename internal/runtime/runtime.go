// Package runtime executes compiled PatDNN plans on the host: a worker-pool
// parallel-for that splits a layer's output channels across threads along the
// filter-group boundaries FKR produces (the same mapping the paper uses for
// GPU thread blocks and CPU threads), plus a simple layer pipeline and wall-
// clock measurement helpers used by the host microbenchmarks.
package runtime

import (
	"runtime"
	"sync"
	"time"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/tensor"
)

// Pool is a fixed-size worker pool for data-parallel layer execution.
type Pool struct {
	workers int
}

// NewPool creates a pool with n workers (n<=0 selects GOMAXPROCS).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// ParallelFor runs fn(chunk) for chunks [start,end) covering [0,n) split as
// evenly as possible across the workers. A panic inside fn is captured on the
// worker goroutine and re-raised on the calling goroutine after every worker
// has finished, so callers (and deferred recovers above them) observe it the
// same way they would a panic from a plain loop; if several chunks panic, the
// first one captured wins.
func (p *Pool) ParallelFor(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		fn(0, n)
		return
	}
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
	)
	chunk := (n + w - 1) / w
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// RunLayer executes a compiled conv plan with the pool, splitting output
// channels across workers.
func (p *Pool) RunLayer(plan *codegen.Plan, input *tensor.Tensor, bias []float32) *tensor.Tensor {
	c := plan.Conv
	out := tensor.New(c.OutC, c.OutH, c.OutW)
	if bias != nil {
		for oc := 0; oc < c.OutC; oc++ {
			plane := out.Data[oc*c.OutH*c.OutW : (oc+1)*c.OutH*c.OutW]
			for i := range plane {
				plane[i] = bias[oc]
			}
		}
	}
	padded := plan.PadInput(input)
	p.ParallelFor(c.OutC, func(start, end int) {
		plan.ExecuteRange(padded, out, start, end)
	})
	return out
}

// Measure runs fn repeatedly and returns the average wall-clock milliseconds
// over runs (after one warmup).
func Measure(runs int, fn func()) float64 {
	if runs < 1 {
		runs = 1
	}
	fn() // warmup
	start := time.Now()
	for i := 0; i < runs; i++ {
		fn()
	}
	return float64(time.Since(start).Milliseconds()) / float64(runs)
}

// Pipeline executes a sequence of compiled conv plans, feeding each output
// into the next layer with a ReLU between stages (the fused conv+relu
// execution of the graph optimizer).
type Pipeline struct {
	Plans  []*codegen.Plan
	Biases [][]float32
	pool   *Pool
}

// NewPipeline builds a pipeline over the pool.
func NewPipeline(pool *Pool, plans []*codegen.Plan, biases [][]float32) *Pipeline {
	return &Pipeline{Plans: plans, Biases: biases, pool: pool}
}

// Run executes the pipeline on one input.
func (pl *Pipeline) Run(input *tensor.Tensor) *tensor.Tensor {
	x := input
	for i, plan := range pl.Plans {
		var bias []float32
		if pl.Biases != nil && i < len(pl.Biases) {
			bias = pl.Biases[i]
		}
		x = pl.pool.RunLayer(plan, x, bias)
		tensor.ReLU(x)
	}
	return x
}
