package fp16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits Bits
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},         // largest normal half
		{5.9604645e-08, 0x0001}, // smallest subnormal half
		{6.097555e-05, 0x03ff},  // largest subnormal half
		{6.1035156e-05, 0x0400}, // smallest normal half
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if back := c.bits.ToFloat32(); back != c.f {
			t.Errorf("ToFloat32(%#04x) = %g, want %g", c.bits, back, c.f)
		}
	}
}

func TestNegativeZero(t *testing.T) {
	nz := FromFloat32(float32(math.Copysign(0, -1)))
	if nz != 0x8000 {
		t.Fatalf("-0 encodes to %#04x", nz)
	}
	if !math.Signbit(float64(nz.ToFloat32())) {
		t.Fatal("-0 lost its sign")
	}
}

func TestNaN(t *testing.T) {
	n := FromFloat32(float32(math.NaN()))
	f := n.ToFloat32()
	if !math.IsNaN(float64(f)) {
		t.Fatalf("NaN round trip produced %g", f)
	}
}

func TestOverflowToInf(t *testing.T) {
	h := FromFloat32(1e6)
	if h.ToFloat32() != float32(math.Inf(1)) {
		t.Fatalf("1e6 should overflow to +Inf, got %g", h.ToFloat32())
	}
	h = FromFloat32(-1e6)
	if h.ToFloat32() != float32(math.Inf(-1)) {
		t.Fatalf("-1e6 should overflow to -Inf, got %g", h.ToFloat32())
	}
}

func TestUnderflowToZero(t *testing.T) {
	h := FromFloat32(1e-10)
	if h.ToFloat32() != 0 {
		t.Fatalf("1e-10 should underflow to 0, got %g", h.ToFloat32())
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between two halves; must round to even
	// (i.e. stay at 1.0).
	f := float32(1) + float32(math.Pow(2, -11))
	if got := FromFloat32(f).ToFloat32(); got != 1.0 {
		t.Fatalf("halfway rounding: got %g, want 1", got)
	}
	// 1 + 3*2^-11 is halfway and must round up to the even neighbour
	// 1 + 2^-9... i.e. 1 + 2*2^-10 has an even mantissa.
	f = float32(1) + 3*float32(math.Pow(2, -11))
	want := float32(1) + 2*float32(math.Pow(2, -10))
	if got := FromFloat32(f).ToFloat32(); got != want {
		t.Fatalf("halfway rounding up: got %g, want %g", got, want)
	}
}

// Property: round-tripping any half-representable value is exact.
func TestRoundTripExactOnHalves(t *testing.T) {
	f := func(raw uint16) bool {
		h := Bits(raw)
		f32 := h.ToFloat32()
		if math.IsNaN(float64(f32)) {
			return math.IsNaN(float64(FromFloat32(f32).ToFloat32()))
		}
		return FromFloat32(f32) == h || f32 == 0 // ±0 may canonicalize sign
	}
	cfg := &quick.Config{MaxCount: 4000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: conversion error is bounded by half-precision ULP (2^-11
// relative) for all normal-range inputs.
func TestRelativeErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			v := float32(rng.NormFloat64())
			r := FromFloat32(v).ToFloat32()
			if math.Abs(float64(v)) < math.Pow(2, -14) {
				// Below binary16's minimum normal the format is subnormal
				// and the ULP bound legitimately does not hold; the property
				// is stated for normal-range inputs only.
				continue
			}
			rel := math.Abs(float64(r-v)) / math.Abs(float64(v))
			if rel > math.Pow(2, -11) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceCodecAndMaxRelError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 512)
	for i := range src {
		src[i] = float32(rng.NormFloat64())
	}
	enc := EncodeSlice(src)
	dec := DecodeSlice(enc)
	if len(dec) != len(src) {
		t.Fatal("length mismatch")
	}
	if err := MaxRelError(src); err > math.Pow(2, -11) {
		t.Fatalf("max rel error %g exceeds half ULP", err)
	}
	for i := range src {
		if math.Abs(float64(dec[i]-src[i])) > 1e-3*math.Abs(float64(src[i]))+1e-4 {
			t.Fatalf("element %d: %g -> %g", i, src[i], dec[i])
		}
	}
}
