// Package fp16 implements IEEE 754 binary16 (half-precision) conversion.
// PatDNN stores weights and intermediate results in 16-bit floating point on
// mobile GPUs (paper Section 2.2: "We utilize 16-bit floating point
// representation on GPU for both weights and intermediate results which ...
// incurs no accuracy loss"); this package provides the storage codec the
// model-file writer uses, since the Go standard library has no float16.
package fp16

import "math"

// Bits is a raw binary16 value: 1 sign bit, 5 exponent bits, 10 mantissa
// bits.
type Bits uint16

// FromFloat32 converts a float32 to binary16 with round-to-nearest-even,
// handling subnormals, overflow to ±Inf, and NaN propagation.
func FromFloat32(f float32) Bits {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	mant := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if mant != 0 {
			// Preserve a quiet NaN; keep the top mantissa bit set so it
			// does not collapse to Inf.
			return Bits(sign | 0x7e00)
		}
		return Bits(sign | 0x7c00)
	case exp == 0 && mant == 0: // signed zero
		return Bits(sign)
	}

	// Re-bias from float32 (127) to float16 (15).
	e := exp - 127 + 15
	switch {
	case e >= 0x1f:
		// Overflow: round to infinity.
		return Bits(sign | 0x7c00)
	case e <= 0:
		// Subnormal half (or underflow to zero). The implicit leading 1
		// becomes explicit; shift the 24-bit significand right.
		if e < -10 {
			return Bits(sign) // underflows to zero even after rounding
		}
		significand := mant | 0x800000 // add implicit bit
		shift := uint32(14 - e)        // 14..24
		half := significand >> shift
		// Round to nearest even on the dropped bits.
		rem := significand & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && half&1 == 1) {
			half++
		}
		return Bits(sign | uint16(half))
	default:
		// Normal half: keep top 10 mantissa bits, round to nearest even.
		half := uint16(e)<<10 | uint16(mant>>13)
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++ // may carry into the exponent; that is correct rounding
		}
		return Bits(sign | half)
	}
}

// ToFloat32 converts binary16 back to float32 exactly (every half value is
// representable in single precision).
func (h Bits) ToFloat32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h) & 0x3ff

	switch {
	case exp == 0x1f: // Inf or NaN
		if mant != 0 {
			return math.Float32frombits(sign | 0x7fc00000) // quiet NaN
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// EncodeSlice converts a float32 slice to packed binary16 values.
func EncodeSlice(src []float32) []Bits {
	out := make([]Bits, len(src))
	for i, v := range src {
		out[i] = FromFloat32(v)
	}
	return out
}

// DecodeSlice converts packed binary16 values back to float32.
func DecodeSlice(src []Bits) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = v.ToFloat32()
	}
	return out
}

// MaxRelError returns the largest relative error introduced by a
// round-trip over the slice (elements with |x| below tiny are compared
// absolutely). Used to verify the paper's "no accuracy loss" premise for
// weight storage.
func MaxRelError(src []float32) float64 {
	const tiny = 1e-4
	var worst float64
	for _, v := range src {
		r := float64(FromFloat32(v).ToFloat32())
		d := math.Abs(r - float64(v))
		if math.Abs(float64(v)) > tiny {
			d /= math.Abs(float64(v))
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
