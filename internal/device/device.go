// Package device models the mobile platforms of the paper's evaluation —
// Snapdragon 855 (Kryo 485 CPU + Adreno 640 GPU), Snapdragon 845 (Kryo 385 +
// Adreno 630), and Kirin 980 (ARM big.LITTLE + Mali-G76) — as analytic cost
// models. This is the documented hardware substitution (DESIGN.md): the real
// phones are unavailable, so execution time is predicted from the instruction
// statistics (MACs, register loads, branches, memory traffic, load imbalance)
// that the *real* generated kernels report. The compiler optimizations change
// those statistics; the device model only converts them to milliseconds, so
// relative orderings are driven by the measured structure of the code, not by
// per-experiment fudge factors.
package device

import "patdnn/internal/compiler/codegen"

// Target selects the execution unit.
type Target int

// Execution targets.
const (
	CPU Target = iota
	GPU
)

func (t Target) String() string {
	if t == GPU {
		return "GPU"
	}
	return "CPU"
}

// CPUSpec describes a mobile big.LITTLE CPU cluster.
type CPUSpec struct {
	Name        string
	BigCores    int
	LittleCores int
	BigGHz      float64
	LittleGHz   float64
	SIMDLanes   int     // float32 lanes per NEON vector op
	MemBWGBs    float64 // sustained DRAM bandwidth available to the CPU
	BranchCycle float64 // pipeline-stall cycles per mispredicted dispatch
	Util        float64 // achievable fraction of peak in tuned kernels
}

// GPUSpec describes a mobile GPU.
type GPUSpec struct {
	Name        string
	ALUs        int // scalar fp32 ALUs
	GHz         float64
	FP16Rate    float64 // throughput multiplier with 16-bit floats (usually 2)
	MemBWGBs    float64
	DivergeCost float64 // relative slowdown per unit branch density
	Util        float64 // achievable fraction of peak in tuned kernels
}

// Device bundles both targets of one platform.
type Device struct {
	Name string
	CPU  CPUSpec
	GPU  GPUSpec
}

// SD855 returns the primary evaluation platform: Qualcomm Snapdragon 855 in
// the Samsung Galaxy S10 (Section 6.1).
func SD855() Device {
	return Device{
		Name: "Snapdragon 855",
		CPU: CPUSpec{
			Name: "Kryo 485", BigCores: 4, LittleCores: 4,
			BigGHz: 2.84, LittleGHz: 1.78, SIMDLanes: 4,
			MemBWGBs: 14, BranchCycle: 2.5, Util: 0.55,
		},
		GPU: GPUSpec{
			Name: "Adreno 640", ALUs: 384, GHz: 0.585, FP16Rate: 2,
			MemBWGBs: 28, DivergeCost: 1.2, Util: 0.42,
		},
	}
}

// SD845 returns the Xiaomi POCOPHONE F1 platform of the portability study.
func SD845() Device {
	return Device{
		Name: "Snapdragon 845",
		CPU: CPUSpec{
			Name: "Kryo 385", BigCores: 4, LittleCores: 4,
			BigGHz: 2.8, LittleGHz: 1.77, SIMDLanes: 4,
			MemBWGBs: 12, BranchCycle: 2.8, Util: 0.50,
		},
		GPU: GPUSpec{
			Name: "Adreno 630", ALUs: 256, GHz: 0.71, FP16Rate: 2,
			MemBWGBs: 24, DivergeCost: 1.3, Util: 0.40,
		},
	}
}

// Kirin980 returns the Honor Magic 2 platform of the portability study. Its
// Mali-G76 is more sensitive to memory bandwidth pressure, which is why the
// dense frameworks slow down more on it while PatDNN stays stable
// (Section 6.5).
func Kirin980() Device {
	return Device{
		Name: "Kirin 980",
		CPU: CPUSpec{
			Name: "Cortex-A76/A55", BigCores: 4, LittleCores: 4,
			BigGHz: 2.6, LittleGHz: 1.8, SIMDLanes: 4,
			MemBWGBs: 10, BranchCycle: 2.8, Util: 0.48,
		},
		GPU: GPUSpec{
			Name: "Mali-G76", ALUs: 240, GHz: 0.72, FP16Rate: 2,
			MemBWGBs: 14, DivergeCost: 1.6, Util: 0.33,
		},
	}
}

// All returns the three platforms in paper order.
func All() []Device { return []Device{SD855(), SD845(), Kirin980()} }

// effectiveCores returns the CPU's parallel capacity in big-core
// equivalents for the given thread count.
func (c CPUSpec) effectiveCores(threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	cores := 0.0
	for i := 0; i < threads && i < c.BigCores; i++ {
		cores += 1.0
	}
	for i := c.BigCores; i < threads && i < c.BigCores+c.LittleCores; i++ {
		cores += c.LittleGHz / c.BigGHz * 0.9 // little cores help less
	}
	if cores == 0 {
		cores = 1
	}
	return cores
}

// TimeMs converts one layer's instruction statistics to predicted execution
// time on the target, for the given thread count and weight precision
// (bytesPerWeight: 4 on CPU, 2 with FP16 on GPU).
func (d Device) TimeMs(st codegen.InstrStats, target Target, threads, bytesPerWeight int) float64 {
	vecEff, cacheEff := st.VecEff, st.CacheEff
	if vecEff <= 0 {
		vecEff = 1
	}
	if cacheEff <= 0 {
		cacheEff = 0.6
	}
	switch target {
	case CPU:
		c := d.CPU
		lanes := float64(c.SIMDLanes) * vecEff
		// Compute: FMA issue + register loads (with their address
		// arithmetic) over the effective SIMD lanes, plus dispatch stalls.
		cycles := float64(st.MACs)/lanes +
			1.2*float64(st.RegLoads)/lanes +
			float64(st.Branches)*c.BranchCycle
		par := c.effectiveCores(threads)
		// Load imbalance wastes the tail of the parallel section.
		par *= 1 - 0.5*st.Imbalance
		if par < 1 {
			par = 1
		}
		computeMs := cycles / (c.BigGHz * 1e9 * c.Util * cacheEff * par) * 1e3
		// Poor locality refetches activations from DRAM; cache-efficient
		// blocking keeps them resident.
		memBytes := float64(st.WeightBytes)/4*float64(bytesPerWeight) +
			float64(st.ActBytes)/cacheEff
		memMs := memBytes / (c.MemBWGBs * 1e9) * 1e3
		if memMs > computeMs {
			return memMs
		}
		return computeMs
	case GPU:
		g := d.GPU
		peak := float64(g.ALUs) * g.GHz * 1e9 * g.FP16Rate * g.Util * cacheEff
		// Divergence: branch-dense kernels serialize wavefront lanes;
		// imbalance leaves compute units idle at block boundaries.
		branchDensity := 0.0
		if st.MACs > 0 {
			branchDensity = float64(st.Branches) / float64(st.MACs) * 10
		}
		if branchDensity > 1.5 {
			branchDensity = 1.5
		}
		slowdown := (1 + g.DivergeCost*branchDensity) * (1 + 1.5*st.Imbalance) / vecEff
		computeMs := (float64(st.MACs) + float64(st.RegLoads)) / peak * slowdown * 1e3
		memBytes := (float64(st.WeightBytes)/4*float64(bytesPerWeight) +
			float64(st.ActBytes)/4*float64(bytesPerWeight)/cacheEff)
		memMs := memBytes / (g.MemBWGBs * 1e9) * 1e3
		if memMs > computeMs {
			return memMs
		}
		return computeMs
	}
	return 0
}

// ModelTimeMs sums per-layer times.
func (d Device) ModelTimeMs(stats []codegen.InstrStats, target Target, threads, bytesPerWeight int) float64 {
	var total float64
	for _, st := range stats {
		total += d.TimeMs(st, target, threads, bytesPerWeight)
	}
	return total
}
