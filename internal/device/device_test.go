package device

import (
	"testing"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
)

// layerStats compiles a VGG L4-scale pruned layer at the given level and
// returns its stats.
func layerStats(t testing.TB, level codegen.Level) codegen.InstrStats {
	t.Helper()
	m := model.VGG16("imagenet")
	c := pruned.Generate(m.ConvLayers()[3], pattern.Canonical(8), 3.6, 1, true)
	p, err := codegen.Compile(c, level, lr.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	return p.Stats()
}

func TestTimePositiveAndFinite(t *testing.T) {
	st := layerStats(t, codegen.Tuned)
	for _, d := range All() {
		for _, tgt := range []Target{CPU, GPU} {
			ms := d.TimeMs(st, tgt, 8, 4)
			if ms <= 0 || ms > 1e5 {
				t.Fatalf("%s/%s: time %.3f ms out of range", d.Name, tgt, ms)
			}
		}
	}
}

func TestOptimizationLevelsSpeedUp(t *testing.T) {
	// The whole point of the compiler: each optimization level must be
	// faster than the previous on the device model (Figure 13's shape).
	d := SD855()
	var prevCPU, prevGPU float64
	for i, level := range []codegen.Level{codegen.NoOpt, codegen.Reorder,
		codegen.ReorderLRE, codegen.Tuned} {
		st := layerStats(t, level)
		cpu := d.TimeMs(st, CPU, 8, 4)
		gpu := d.TimeMs(st, GPU, 8, 2)
		if i > 0 {
			if cpu > prevCPU*1.001 {
				t.Fatalf("level %v slower on CPU: %.3f > %.3f", level, cpu, prevCPU)
			}
			if gpu > prevGPU*1.001 {
				t.Fatalf("level %v slower on GPU: %.3f > %.3f", level, gpu, prevGPU)
			}
		}
		prevCPU, prevGPU = cpu, gpu
	}
}

func TestFullOptimizationSpeedupRange(t *testing.T) {
	// Figure 13 reports roughly 2.5x–9x total speedup over No-Opt on CPU
	// and up to ~15x on GPU for VGG layers.
	d := SD855()
	no := layerStats(t, codegen.NoOpt)
	tu := layerStats(t, codegen.Tuned)
	cpuSpeedup := d.TimeMs(no, CPU, 8, 4) / d.TimeMs(tu, CPU, 8, 4)
	gpuSpeedup := d.TimeMs(no, GPU, 8, 2) / d.TimeMs(tu, GPU, 8, 2)
	if cpuSpeedup < 2 || cpuSpeedup > 20 {
		t.Fatalf("CPU total speedup %.2fx outside the paper's range", cpuSpeedup)
	}
	if gpuSpeedup < 2 || gpuSpeedup > 30 {
		t.Fatalf("GPU total speedup %.2fx outside the paper's range", gpuSpeedup)
	}
	if gpuSpeedup < cpuSpeedup {
		t.Fatalf("GPU should benefit more from FKR (divergence): cpu %.2f gpu %.2f",
			cpuSpeedup, gpuSpeedup)
	}
}

func TestMoreThreadsFaster(t *testing.T) {
	d := SD855()
	st := layerStats(t, codegen.Tuned)
	t1 := d.TimeMs(st, CPU, 1, 4)
	t8 := d.TimeMs(st, CPU, 8, 4)
	if t8 >= t1 {
		t.Fatalf("8 threads (%.3f) not faster than 1 (%.3f)", t8, t1)
	}
}

func TestFP16HalvesGPUMemoryPressure(t *testing.T) {
	d := SD855()
	st := layerStats(t, codegen.Tuned)
	// Make the layer memory bound by inflating byte counts.
	st.WeightBytes *= 64
	st.ActBytes *= 64
	fp32 := d.TimeMs(st, GPU, 8, 4)
	fp16 := d.TimeMs(st, GPU, 8, 2)
	if fp16 >= fp32 {
		t.Fatalf("fp16 (%.3f) not faster than fp32 (%.3f) when memory bound", fp16, fp32)
	}
}

func TestPlatformOrdering(t *testing.T) {
	// SD855 is the fastest platform; Kirin 980's GPU is the most
	// bandwidth-starved (Section 6.5).
	st := layerStats(t, codegen.Tuned)
	t855 := SD855().TimeMs(st, GPU, 8, 2)
	t845 := SD845().TimeMs(st, GPU, 8, 2)
	t980 := Kirin980().TimeMs(st, GPU, 8, 2)
	if !(t855 < t845 && t845 < t980) {
		t.Fatalf("GPU platform ordering wrong: 855=%.3f 845=%.3f 980=%.3f", t855, t845, t980)
	}
}

func TestCPUPlatformOrdering(t *testing.T) {
	// SD855's CPU is the fastest of the three platforms on compute-bound
	// layers; Kirin 980 trails (lower clock, utilization, bandwidth).
	st := layerStats(t, codegen.Tuned)
	t855 := SD855().TimeMs(st, CPU, 8, 4)
	t845 := SD845().TimeMs(st, CPU, 8, 4)
	t980 := Kirin980().TimeMs(st, CPU, 8, 4)
	if !(t855 < t845 && t845 < t980) {
		t.Fatalf("CPU ordering wrong: 855=%.3f 845=%.3f 980=%.3f", t855, t845, t980)
	}
}

func TestImbalanceCostsTime(t *testing.T) {
	d := SD855()
	st := layerStats(t, codegen.Tuned)
	skewed := st
	skewed.Imbalance = 0.5
	if d.TimeMs(skewed, CPU, 8, 4) <= d.TimeMs(st, CPU, 8, 4) {
		t.Fatal("load imbalance is free on CPU")
	}
	if d.TimeMs(skewed, GPU, 8, 2) <= d.TimeMs(st, GPU, 8, 2) {
		t.Fatal("load imbalance is free on GPU")
	}
}

func TestZeroedEfficiencyFieldsDefaulted(t *testing.T) {
	// Stats from external builders may omit VecEff/CacheEff; the model must
	// not divide by zero.
	d := SD855()
	st := layerStats(t, codegen.Tuned)
	st.VecEff, st.CacheEff = 0, 0
	ms := d.TimeMs(st, CPU, 8, 4)
	if ms <= 0 || ms > 1e6 {
		t.Fatalf("defaulted-efficiency time %v", ms)
	}
}

func TestEffectiveCores(t *testing.T) {
	c := SD855().CPU
	if c.effectiveCores(1) != 1 {
		t.Fatalf("1 thread = %.2f cores", c.effectiveCores(1))
	}
	if c.effectiveCores(4) != 4 {
		t.Fatalf("4 threads = %.2f cores", c.effectiveCores(4))
	}
	e8 := c.effectiveCores(8)
	if e8 <= 4 || e8 >= 8 {
		t.Fatalf("8 threads = %.2f cores, want in (4,8)", e8)
	}
	if c.effectiveCores(0) < 1 {
		t.Fatal("0 threads must clamp to 1 core")
	}
}

func TestBranchesCostTime(t *testing.T) {
	d := SD855()
	st := layerStats(t, codegen.Tuned)
	branchy := st
	branchy.Branches = st.MACs / 10 // pathological dispatch density
	if d.TimeMs(branchy, CPU, 8, 4) <= d.TimeMs(st, CPU, 8, 4) {
		t.Fatal("branches are free on CPU model")
	}
	if d.TimeMs(branchy, GPU, 8, 2) <= d.TimeMs(st, GPU, 8, 2) {
		t.Fatal("divergence is free on GPU model")
	}
}
