package modelfile

// Format-v2 coverage: round trips for both versions (v1 stays byte-stable),
// corrupt-v2 records must error — never panic — and a fuzz target hammers the
// reader with mutated bytes the way FuzzFKWRoundTrip hammers the FKW decoder.

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
)

// sampleV2File builds a small full-graph artifact: one 3×3 conv record, one
// depthwise conv record, a 1×1 conv and an FC dense record, a BN record, and
// the topology tying them together.
func sampleV2File(seed int64) *File {
	m := &model.Model{Name: "Tiny-Graph", Short: "TG", Dataset: "synthetic",
		Classes: 4, InC: 4, InH: 8, InW: 8}
	m.Layers = []*model.Layer{
		{Name: "input", Kind: model.Input, OutC: 4, OutH: 8, OutW: 8},
		{Name: "c3", Kind: model.Conv, InC: 4, OutC: 8, KH: 3, KW: 3, Stride: 1,
			Pad: 1, Groups: 1, InH: 8, InW: 8, OutH: 8, OutW: 8},
		{Name: "bn1", Kind: model.BatchNorm, InC: 8, OutC: 8, InH: 8, InW: 8, OutH: 8, OutW: 8},
		{Name: "relu1", Kind: model.ReLU, InC: 8, OutC: 8, InH: 8, InW: 8, OutH: 8, OutW: 8},
		{Name: "dw", Kind: model.DWConv, InC: 8, OutC: 8, KH: 3, KW: 3, Stride: 1,
			Pad: 1, Groups: 8, InH: 8, InW: 8, OutH: 8, OutW: 8},
		{Name: "p1", Kind: model.Conv, InC: 8, OutC: 8, KH: 1, KW: 1, Stride: 1,
			Groups: 1, InH: 8, InW: 8, OutH: 8, OutW: 8},
		{Name: "gap", Kind: model.AvgPoolGlobal, InC: 8, OutC: 8, InH: 8, InW: 8, OutH: 1, OutW: 1},
		{Name: "flat", Kind: model.Flatten, InC: 8, InH: 1, InW: 1, OutC: 8, OutH: 1, OutW: 1},
		{Name: "fc", Kind: model.FC, InC: 8, OutC: 4, HasBias: true, InH: 1, InW: 1, OutH: 1, OutW: 1},
		{Name: "softmax", Kind: model.SoftmaxOp, InC: 4, OutC: 4, OutH: 1, OutW: 1},
	}
	set := pattern.Canonical(8)
	rng := rand.New(rand.NewSource(seed))
	f := &File{LR: &lr.Representation{Model: m.Name, Device: "CPU"}, Net: m}
	for _, name := range []string{"c3", "dw"} {
		c := pruned.Generate(m.Layer(name), set, 2, seed, true)
		bias := make([]float32, c.OutC)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64()) * 0.1
		}
		f.Layers = append(f.Layers, Layer{Conv: c, Bias: bias})
	}
	w1 := make([]float32, 8*8)
	for i := range w1 {
		if i%3 != 0 { // sparse: pruned 1x1
			w1[i] = float32(rng.NormFloat64()) * 0.2
		}
	}
	f.Dense = append(f.Dense, DenseLayer{
		Name: "p1", Kind: DenseConv1x1, OutC: 8, InC: 8, Stride: 1,
		InH: 8, InW: 8, OutH: 8, OutW: 8, Weights: w1,
	})
	wf := make([]float32, 4*8)
	bf := make([]float32, 4)
	for i := range wf {
		wf[i] = float32(rng.NormFloat64()) * 0.2
	}
	for i := range bf {
		bf[i] = float32(rng.NormFloat64()) * 0.1
	}
	f.Dense = append(f.Dense, DenseLayer{
		Name: "fc", Kind: DenseFC, OutC: 4, InC: 8, Weights: wf, Bias: bf,
	})
	bn := BNLayer{Name: "bn1", Eps: 1e-5}
	for i := 0; i < 8; i++ {
		bn.Gamma = append(bn.Gamma, 1+0.1*float32(i))
		bn.Beta = append(bn.Beta, 0.01*float32(i))
		bn.Mean = append(bn.Mean, -0.02*float32(i))
		bn.Var = append(bn.Var, 0.5+0.05*float32(i))
	}
	f.BNs = append(f.BNs, bn)
	return f
}

// sampleImg2ImgFile builds a small image-to-image artifact: a transposed-conv
// record (out_pad carried in the topology), an upsample skip branch, and the
// residual add tying them together — the node kinds the SR generator serves.
func sampleImg2ImgFile(seed int64) *File {
	m := &model.Model{Name: "Tiny-I2I", Short: "TI", Dataset: "synthetic",
		InC: 2, InH: 6, InW: 6}
	m.Layers = []*model.Layer{
		{Name: "input", Kind: model.Input, OutC: 2, OutH: 6, OutW: 6},
		{Name: "up", Kind: model.ConvTranspose, InC: 2, OutC: 2, KH: 3, KW: 3,
			Stride: 2, Pad: 1, OutPad: 1, Groups: 1,
			InH: 6, InW: 6, OutH: 12, OutW: 12, HasBias: true},
		{Name: "relu1", Kind: model.ReLU, InC: 2, OutC: 2, InH: 12, InW: 12, OutH: 12, OutW: 12},
		{Name: "us", Kind: model.Upsample, InC: 2, OutC: 2, Stride: 2,
			InH: 6, InW: 6, OutH: 12, OutW: 12, ShortcutOf: "input"},
		{Name: "add1", Kind: model.Add, InC: 2, OutC: 2, InH: 12, InW: 12,
			OutH: 12, OutW: 12, ShortcutOf: "input"},
	}
	set := pattern.Canonical(8)
	rng := rand.New(rand.NewSource(seed))
	f := &File{LR: &lr.Representation{Model: m.Name, Device: "CPU"}, Net: m}
	c := pruned.Generate(m.Layer("up"), set, 2, seed, true)
	bias := make([]float32, c.OutC)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64()) * 0.1
	}
	f.Layers = append(f.Layers, Layer{Conv: c, Bias: bias})
	return f
}

func TestImg2ImgTopologyRoundTrip(t *testing.T) {
	f := sampleImg2ImgFile(71)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	up := got.Net.Layer("up")
	if up == nil || up.Kind != model.ConvTranspose || up.OutPad != 1 || up.Stride != 2 {
		t.Fatalf("transposed conv did not round-trip: %+v", up)
	}
	us := got.Net.Layer("us")
	if us == nil || us.Kind != model.Upsample || us.Stride != 2 || us.ShortcutOf != "input" {
		t.Fatalf("upsample branch did not round-trip: %+v", us)
	}
	// The conv record must not pick up the depthwise flag (the restoration
	// keys on the dwconv topology kind only).
	if got.Layers[0].Conv.Depthwise {
		t.Fatal("transposed-conv record mis-marked depthwise on read")
	}
}

func TestV1WritesV1Magic(t *testing.T) {
	// A file with no v2 content must keep emitting v1 bytes, so artifacts
	// written by earlier releases and by this one stay interchangeable.
	f := sampleFile(t, 21)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes()[:8], magic[:]) {
		t.Fatalf("v1 content wrote magic %v", buf.Bytes()[:8])
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func TestV2RoundTrip(t *testing.T) {
	f := sampleV2File(31)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes()[:8], magicV2[:]) {
		t.Fatalf("v2 content wrote magic %v", buf.Bytes()[:8])
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Net == nil || len(got.Net.Layers) != len(f.Net.Layers) {
		t.Fatalf("topology did not round-trip: %+v", got.Net)
	}
	for i, l := range f.Net.Layers {
		g := got.Net.Layers[i]
		if g.Name != l.Name || g.Kind != l.Kind || g.OutC != l.OutC ||
			g.Stride != l.Stride || g.ShortcutOf != l.ShortcutOf {
			t.Fatalf("topology layer %d mismatch: %+v vs %+v", i, g, l)
		}
	}
	// The depthwise flag is restored from the topology.
	var dw *pruned.Conv
	for _, layer := range got.Layers {
		if layer.Conv.Name == "dw" {
			dw = layer.Conv
		}
	}
	if dw == nil || !dw.Depthwise {
		t.Fatalf("depthwise conv lost its flag: %+v", dw)
	}
	if len(got.Dense) != 2 || len(got.BNs) != 1 {
		t.Fatalf("records: %d dense / %d bn, want 2/1", len(got.Dense), len(got.BNs))
	}
	d := got.Dense[0]
	if d.Kind != DenseConv1x1 || d.OutC != 8 || d.InC != 8 || d.Bias != nil {
		t.Fatalf("dense[0] = %+v", d)
	}
	for i, w := range f.Dense[0].Weights {
		if diff := float64(d.Weights[i] - w); diff > 2e-3 || diff < -2e-3 {
			t.Fatalf("1x1 weight %d diff %g beyond FP16 tolerance", i, diff)
		}
		if w == 0 && d.Weights[i] != 0 {
			t.Fatalf("pruned zero at %d decoded nonzero", i)
		}
	}
	if got.Dense[1].Kind != DenseFC || len(got.Dense[1].Bias) != 4 {
		t.Fatalf("dense[1] = %+v", got.Dense[1])
	}
	bn := got.BNs[0]
	for i := range bn.Gamma { // BN params are FP32: exact round trip
		if bn.Gamma[i] != f.BNs[0].Gamma[i] || bn.Var[i] != f.BNs[0].Var[i] {
			t.Fatalf("bn params drifted at %d", i)
		}
	}
}

// TestV2CorruptRecordsErrorNotPanic flips/truncates v2 section bytes (with a
// recomputed CRC, so the corruption reaches the record parsers) and demands a
// clean error every time.
func TestV2CorruptRecordsErrorNotPanic(t *testing.T) {
	f := sampleV2File(41)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	mutations := []struct {
		name    string
		mustErr bool
		mutate  func([]byte) []byte
	}{
		// The topology JSON is the last section before the CRC: zeroing its
		// closing byte breaks the record deterministically.
		{"corrupt-topo-json", true, func(b []byte) []byte { b[len(b)-5] = 0; return b }},
		{"truncate-1", true, func(b []byte) []byte { return b[:len(b)-1] }},
		{"truncate-inside-topo", true, func(b []byte) []byte { return b[:len(b)-12] }},
		{"truncate-half", true, func(b []byte) []byte { return b[:len(b)/2] }},
		{"trailing-garbage", true, func(b []byte) []byte { return append(b, 0, 1, 2, 3) }},
		// A flipped byte mid-file may land in weight payload (legal content):
		// reading it must never panic, whatever it decodes to.
		{"flip-middle-byte", false, func(b []byte) []byte { b[len(b)/2] ^= 0xff; return b }},
	}
	for _, mu := range mutations {
		b := mu.mutate(append([]byte(nil), good...))
		// Recompute the CRC so corruption reaches the structural validators
		// (a checksum mismatch alone would not exercise them).
		if len(b) >= 12 {
			sum := crcOf(b[:len(b)-4])
			b[len(b)-4] = byte(sum)
			b[len(b)-3] = byte(sum >> 8)
			b[len(b)-2] = byte(sum >> 16)
			b[len(b)-1] = byte(sum >> 24)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: Read panicked: %v", mu.name, r)
				}
			}()
			if _, err := Read(bytes.NewReader(b)); err == nil && mu.mustErr {
				t.Fatalf("%s: corrupt v2 file accepted", mu.name)
			}
		}()
	}
}

func crcOf(b []byte) uint32 {
	return crc32.ChecksumIEEE(b)
}

// FuzzModelFileRead hammers the reader with mutated artifacts: any input may
// be rejected, none may panic or hang, and a file that reads successfully
// must re-serialize.
func FuzzModelFileRead(f *testing.F) {
	var v2 bytes.Buffer
	if err := Write(&v2, sampleV2File(52)); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add([]byte("PATDNN\x00\x02garbage"))
	var v3 bytes.Buffer
	if err := Write(&v3, sampleV3File(52, 8)); err != nil {
		f.Fatal(err)
	}
	f.Add(v3.Bytes())
	f.Add([]byte("PATDNN\x00\x03garbage"))
	// v3 corruption-class seeds: bad scale, truncated int8 section, trailing
	// bytes (each with a recomputed CRC so the damage reaches the parsers).
	scaleOff, weightOff, nWeights := 0, 0, 0
	func() {
		var t testing.T
		scaleOff, weightOff, nWeights = v3WeightSection(&t, v3.Bytes())
	}()
	reseal := func(b []byte) []byte {
		sum := crcOf(b[:len(b)-4])
		binary.LittleEndian.PutUint32(b[len(b)-4:], sum)
		return b
	}
	badScale := append([]byte(nil), v3.Bytes()...)
	binary.LittleEndian.PutUint32(badScale[scaleOff:], 0x7fc00000)
	f.Add(reseal(badScale))
	truncated := append([]byte(nil), v3.Bytes()[:weightOff+nWeights/2]...)
	truncated = append(truncated, v3.Bytes()[weightOff+nWeights/2+5:]...)
	f.Add(reseal(truncated))
	trailing := append(append([]byte(nil), v3.Bytes()...), 0xca, 0xfe)
	f.Add(reseal(trailing))
	// Image-to-image seeds: an artifact whose topology carries transposed-conv
	// and upsample node kinds (with out_pad), plus crafted corrupt-shape
	// variants. Same-length replacements keep the length-prefixed topology
	// section parseable, so the damage reaches the JSON decoder and the shape
	// fields rather than dying at the framing layer.
	var i2i bytes.Buffer
	if err := Write(&i2i, sampleImg2ImgFile(63)); err != nil {
		f.Fatal(err)
	}
	f.Add(i2i.Bytes())
	badKind := bytes.Replace(append([]byte(nil), i2i.Bytes()...),
		[]byte(`"convtranspose"`), []byte(`"convtransposX"`), 1)
	f.Add(reseal(badKind))
	badUp := bytes.Replace(append([]byte(nil), i2i.Bytes()...),
		[]byte(`"upsample"`), []byte(`"upsampl!"`), 1)
	f.Add(reseal(badUp))
	badPad := bytes.Replace(append([]byte(nil), i2i.Bytes()...),
		[]byte(`"out_pad":1`), []byte(`"out_pad":9`), 1)
	f.Add(reseal(badPad))
	badShape := bytes.Replace(append([]byte(nil), i2i.Bytes()...),
		[]byte(`"out_h":12`), []byte(`"out_h":-2`), 1)
	f.Add(reseal(badShape))
	f.Fuzz(func(t *testing.T, data []byte) {
		mf, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, mf); err != nil {
			t.Fatalf("decoded file failed to re-serialize: %v", err)
		}
	})
}

// TestV2CraftedOverflowingDenseShape pins the integer-overflow guard: a
// CRC-valid v2 file whose dense record declares outC=inC=0xffffffff must be
// rejected — the product wraps negative on 64-bit int, and before the
// per-factor bound this slipped past the shape check into a panicking make().
func TestV2CraftedOverflowingDenseShape(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magicV2[:])
	lrJSON, err := (&lr.Representation{Model: "crafted", Device: "CPU"}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	put32(&buf, uint32(len(lrJSON)))
	buf.Write(lrJSON)
	put32(&buf, 0) // no conv layers
	put32(&buf, 1) // one dense record
	put16(&buf, 1)
	buf.WriteString("x")
	buf.WriteByte(DenseFC)
	put32(&buf, 0xffffffff) // outC
	put32(&buf, 0xffffffff) // inC
	for i := 0; i < 5; i++ {
		put16(&buf, 1) // stride, inH, inW, outH, outW
	}
	put32(&buf, crcOf(buf.Bytes()))
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("crafted overflowing dense shape accepted")
	}
}
