package modelfile

// Format-v3 coverage: quantized round trips are byte-stable, v3 artifacts are
// ~4× smaller than their FP16 siblings, and every corruption class (bad scale,
// overflowing level, truncated int8 section, trailing bytes, bad bits byte)
// errors — never panics.

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// sampleV3File is the v2 sample graph with quantized weight storage requested.
func sampleV3File(seed int64, bits int) *File {
	f := sampleV2File(seed)
	f.QuantBits = bits
	return f
}

// v3WeightSection walks a well-formed v3 artifact to the first conv record's
// weight subsection and returns the offsets of its scale table and int8
// stream (mirroring the decoder's layout so corruption tests can hit exact
// fields).
func v3WeightSection(t *testing.T, b []byte) (scaleOff, weightOff, nWeights int) {
	t.Helper()
	u16 := func(off int) int { return int(binary.LittleEndian.Uint16(b[off:])) }
	u32 := func(off int) int { return int(binary.LittleEndian.Uint32(b[off:])) }
	off := 8
	off += 4 + u32(off) // LR section
	off++               // quantBits
	off += 4            // nLayers
	off += 2 + u16(off) // name
	outC := u16(off)
	off += 20 // geometry
	nPat := u16(off)
	off += 2 + 2*nPat     // patterns
	off += 4 * (outC + 1) // offsets
	off += 2 * outC       // reorder
	off += 4 + 2*u32(off) // index
	off += 2 * outC * (nPat + 1)
	nWeights = u32(off)
	off += 4
	return off, off + 4*outC, nWeights
}

func TestV3RoundTrip(t *testing.T) {
	f := sampleV3File(61, 8)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes()[:8], magicV3[:]) {
		t.Fatalf("v3 content wrote magic %v", buf.Bytes()[:8])
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.QuantBits != 8 {
		t.Fatalf("QuantBits = %d, want 8", got.QuantBits)
	}
	if got.Net == nil || len(got.Dense) != 2 || len(got.BNs) != 1 {
		t.Fatalf("v2 sections lost: net=%v dense=%d bn=%d", got.Net != nil, len(got.Dense), len(got.BNs))
	}
	if len(got.Layers) != len(f.Layers) {
		t.Fatalf("decoded %d conv layers, want %d", len(got.Layers), len(f.Layers))
	}
	// Quantized weights stay close to the originals (per-filter 8-bit grid:
	// error < maxAbs/255 per weight) and pruned zeros stay exactly zero.
	for li, layer := range got.Layers {
		ref := f.Layers[li].Conv
		var maxAbs float32
		for _, w := range ref.Weights.Data {
			a := w
			if a < 0 {
				a = -a
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
		// Per-filter half-step is at most maxAbs/254 across the layer; allow
		// a little slack on top.
		tol := maxAbs/200 + 1e-6
		for i, w := range layer.Conv.Weights.Data {
			d := w - ref.Weights.Data[i]
			if d < 0 {
				d = -d
			}
			if d > tol {
				t.Fatalf("layer %s weight %d: %g vs %g beyond 8-bit tolerance %g",
					ref.Name, i, w, ref.Weights.Data[i], tol)
			}
			if ref.Weights.Data[i] == 0 && w != 0 {
				t.Fatalf("layer %s: pruned zero at %d decoded nonzero", ref.Name, i)
			}
		}
	}
	// The depthwise flag still restores from the topology.
	for _, layer := range got.Layers {
		if layer.Conv.Name == "dw" && !layer.Conv.Depthwise {
			t.Fatal("depthwise conv lost its flag in v3")
		}
	}
}

// TestV3ByteStableRoundTrip pins the self-reproducing grid property: reading
// a v3 artifact and writing it again yields identical bytes, because the
// per-filter max-abs weight decodes to exactly ±limit and re-derives the same
// scale.
func TestV3ByteStableRoundTrip(t *testing.T) {
	for _, bits := range []int{4, 8} {
		var first bytes.Buffer
		if err := Write(&first, sampleV3File(67, bits)); err != nil {
			t.Fatal(err)
		}
		got, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := Write(&second, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("bits=%d: v3 round trip is not byte-stable (%d vs %d bytes)",
				bits, first.Len(), second.Len())
		}
	}
}

// TestV3SmallerThanV2 asserts the artifact-size payoff: the same graph
// serialized quantized must shrink (the conv weight stream drops from 2 bytes
// to 1 byte per weight plus a small scale table).
func TestV3SmallerThanV2(t *testing.T) {
	var v2, v3 bytes.Buffer
	if err := Write(&v2, sampleV2File(71)); err != nil {
		t.Fatal(err)
	}
	if err := Write(&v3, sampleV3File(71, 8)); err != nil {
		t.Fatal(err)
	}
	if v3.Len() >= v2.Len() {
		t.Fatalf("v3 artifact (%d B) not smaller than v2 (%d B)", v3.Len(), v2.Len())
	}
}

func TestV3RejectsBadQuantBits(t *testing.T) {
	for _, bits := range []int{1, 9, -3, 100} {
		var buf bytes.Buffer
		err := Write(&buf, sampleV3File(73, bits))
		// bits < 2 means isV3() is false; Write must reject the config
		// rather than silently emitting an unquantized file.
		if err == nil {
			t.Fatalf("Write accepted QuantBits=%d", bits)
		}
	}
}

// TestV3CorruptRecordsErrorNotPanic hits every v3-specific corruption class
// with a recomputed CRC so the damage reaches the validators.
func TestV3CorruptRecordsErrorNotPanic(t *testing.T) {
	// 4-bit grid leaves int8 headroom, so the level-overflow class is
	// reachable by flipping a weight byte to 0x7f.
	f := sampleV3File(79, 4)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	scaleOff, weightOff, nWeights := v3WeightSection(t, good)
	if nWeights == 0 {
		t.Fatal("sample file has no quantized weights")
	}
	mutations := []struct {
		name    string
		mustErr bool
		mutate  func([]byte) []byte
	}{
		{"zero-scale", true, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[scaleOff:], 0)
			return b
		}},
		{"negative-scale", true, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[scaleOff:], 0xbf000000) // -0.5
			return b
		}},
		{"nan-scale", true, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[scaleOff:], 0x7fc00000)
			return b
		}},
		{"inf-scale", true, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[scaleOff:], 0x7f800000)
			return b
		}},
		{"level-overflow", true, func(b []byte) []byte {
			b[weightOff] = 0x7f // level 127 on a 4-bit (±7) grid
			return b
		}},
		{"bits-byte-low", true, func(b []byte) []byte {
			b[12+binary.LittleEndian.Uint32(b[8:])] = 1
			return b
		}},
		{"bits-byte-high", true, func(b []byte) []byte {
			b[12+binary.LittleEndian.Uint32(b[8:])] = 9
			return b
		}},
		{"truncate-int8-section", true, func(b []byte) []byte {
			// Drop bytes from inside the int8 stream; every later section
			// misparses or the stream length stops matching the structure.
			return append(b[:weightOff+nWeights/2], b[weightOff+nWeights/2+3:]...)
		}},
		{"truncate-1", true, func(b []byte) []byte { return b[:len(b)-1] }},
		{"trailing-bytes", true, func(b []byte) []byte { return append(b, 0xde, 0xad) }},
		// Arbitrary damage in the quantized payload may decode to legal
		// content; it must never panic, whatever it yields.
		{"flip-weight-byte", false, func(b []byte) []byte {
			b[weightOff+nWeights/3] ^= 0x55
			return b
		}},
	}
	for _, mu := range mutations {
		b := mu.mutate(append([]byte(nil), good...))
		if len(b) >= 12 {
			sum := crcOf(b[:len(b)-4])
			binary.LittleEndian.PutUint32(b[len(b)-4:], sum)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: Read panicked: %v", mu.name, r)
				}
			}()
			if _, err := Read(bytes.NewReader(b)); err == nil && mu.mustErr {
				t.Fatalf("%s: corrupt v3 file accepted", mu.name)
			}
		}()
	}
}
