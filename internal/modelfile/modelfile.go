// Package modelfile implements the deployable compact-model artifact of the
// paper's Figure 7 ("compact model" + "opt-code for CPU/GPU" are what PatDNN
// ships to the phone): a single binary file holding the layerwise
// representation, the FKW-compressed weights of every pruned conv layer
// (stored in FP16, the mobile weight precision), and per-layer biases, with a
// CRC32 integrity footer.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "PATDNN\x00\x01"       (includes format version)
//	lrLen   uint32   length of the LR JSON section
//	lr      []byte   lr.Representation JSON
//	nLayers uint32
//	per layer:
//	  nameLen uint16, name []byte
//	  outC, inC, kh, kw uint16
//	  stride, pad uint16
//	  inH, inW, outH, outW uint16
//	  nPatterns uint16, patterns []uint16 (masks)
//	  offsets  [outC+1]int32
//	  reorder  [outC]uint16
//	  nKernels uint32, index [nKernels]uint16
//	  stride array [outC*(nPatterns+1)]uint16
//	  nWeights uint32, weights [nWeights]uint16 (binary16)
//	  bias [outC]uint16 (binary16)
//	crc32   uint32 (IEEE, over everything before it)
package modelfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/fp16"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/sparse"
)

var magic = [8]byte{'P', 'A', 'T', 'D', 'N', 'N', 0, 1}

// Layer couples a pruned conv with its bias for serialization.
type Layer struct {
	Conv *pruned.Conv
	Bias []float32 // len OutC; nil means all-zero
}

// File is an in-memory deployable model.
type File struct {
	LR     *lr.Representation
	Layers []Layer
}

// Write serializes the model to w.
func Write(w io.Writer, f *File) error {
	var buf bytes.Buffer
	buf.Write(magic[:])

	lrJSON, err := f.LR.Marshal()
	if err != nil {
		return fmt.Errorf("modelfile: %w", err)
	}
	put32(&buf, uint32(len(lrJSON)))
	buf.Write(lrJSON)

	put32(&buf, uint32(len(f.Layers)))
	for _, layer := range f.Layers {
		c := layer.Conv
		if c.Weights == nil {
			return fmt.Errorf("modelfile: layer %s has no weights", c.Name)
		}
		fkw, err := sparse.Encode(c, nil)
		if err != nil {
			return fmt.Errorf("modelfile: %w", err)
		}
		if len(c.Name) > 0xffff {
			return fmt.Errorf("modelfile: layer name too long")
		}
		put16(&buf, uint16(len(c.Name)))
		buf.WriteString(c.Name)
		for _, v := range []int{c.OutC, c.InC, c.KH, c.KW, c.Stride, c.Pad,
			c.InH, c.InW, c.OutH, c.OutW} {
			if v < 0 || v > 0xffff {
				return fmt.Errorf("modelfile: layer %s: field %d out of uint16 range", c.Name, v)
			}
			put16(&buf, uint16(v))
		}
		put16(&buf, uint16(len(fkw.Patterns)))
		for _, p := range fkw.Patterns {
			put16(&buf, p.Mask)
		}
		for _, o := range fkw.Offset {
			putI32(&buf, o)
		}
		for _, r := range fkw.Reorder {
			put16(&buf, r)
		}
		put32(&buf, uint32(len(fkw.Index)))
		for _, ix := range fkw.Index {
			put16(&buf, ix)
		}
		for _, s := range fkw.Stride {
			put16(&buf, s)
		}
		put32(&buf, uint32(len(fkw.Weights)))
		for _, wv := range fkw.Weights {
			put16(&buf, uint16(fp16.FromFloat32(wv)))
		}
		bias := layer.Bias
		for i := 0; i < c.OutC; i++ {
			var b float32
			if bias != nil {
				b = bias[i]
			}
			put16(&buf, uint16(fp16.FromFloat32(b)))
		}
	}

	sum := crc32.ChecksumIEEE(buf.Bytes())
	put32(&buf, sum)
	_, err = w.Write(buf.Bytes())
	return err
}

// Read deserializes and validates a model file, reconstructing each layer's
// pruned representation (weights decoded from FP16) and bias.
func Read(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("modelfile: %w", err)
	}
	if len(data) < len(magic)+8 {
		return nil, fmt.Errorf("modelfile: truncated file (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return nil, fmt.Errorf("modelfile: bad magic or unsupported version")
	}
	body, footer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(footer) {
		return nil, fmt.Errorf("modelfile: checksum mismatch (corrupt file)")
	}

	d := &decoder{data: body, off: 8}
	lrLen := d.u32()
	lrJSON := d.bytes(int(lrLen))
	if d.err != nil {
		return nil, d.err
	}
	rep, err := lr.Unmarshal(lrJSON)
	if err != nil {
		return nil, fmt.Errorf("modelfile: %w", err)
	}
	out := &File{LR: rep}

	nLayers := int(d.u32())
	for li := 0; li < nLayers && d.err == nil; li++ {
		name := string(d.bytes(int(d.u16())))
		geom := make([]int, 10)
		for i := range geom {
			geom[i] = int(d.u16())
		}
		nPat := int(d.u16())
		pats := make([]pattern.Pattern, nPat)
		for i := range pats {
			pats[i] = pattern.Pattern{Mask: d.u16(), K: geom[2]}
			// The executable kernels (and SavePruned's canonical sets) are
			// 4-entry only; a file carrying any other width is corrupt or
			// hostile, and letting it through would trip the executors'
			// unrolled-by-4 assumption much later.
			if d.err == nil && pats[i].Entries() != 4 {
				return nil, fmt.Errorf("modelfile: layer %s pattern %d has %d entries, want 4",
					name, i, pats[i].Entries())
			}
		}
		outC := geom[0]
		fkw := &sparse.FKW{
			OutC: outC, InC: geom[1], KH: geom[2], KW: geom[3],
			Patterns: pats,
		}
		fkw.Offset = make([]int32, outC+1)
		for i := range fkw.Offset {
			fkw.Offset[i] = d.i32()
		}
		fkw.Reorder = make([]uint16, outC)
		for i := range fkw.Reorder {
			fkw.Reorder[i] = d.u16()
		}
		nKernels := int(d.u32())
		fkw.Index = make([]uint16, nKernels)
		for i := range fkw.Index {
			fkw.Index[i] = d.u16()
		}
		fkw.Stride = make([]uint16, outC*(nPat+1))
		for i := range fkw.Stride {
			fkw.Stride[i] = d.u16()
		}
		nWeights := int(d.u32())
		fkw.Weights = make([]float32, nWeights)
		for i := range fkw.Weights {
			fkw.Weights[i] = fp16.Bits(d.u16()).ToFloat32()
		}
		bias := make([]float32, outC)
		for i := range bias {
			bias[i] = fp16.Bits(d.u16()).ToFloat32()
		}
		if d.err != nil {
			break
		}

		// Rebuild the pruned representation from the FKW arrays. The file
		// bytes are untrusted: DecodeChecked validates the structure so a
		// corrupted stride/index table errors instead of panicking.
		dense, err := fkw.DecodeChecked()
		if err != nil {
			return nil, fmt.Errorf("modelfile: layer %s: %w", name, err)
		}
		conv := &pruned.Conv{
			Name: name, OutC: outC, InC: geom[1], KH: geom[2], KW: geom[3],
			Stride: geom[4], Pad: geom[5],
			InH: geom[6], InW: geom[7], OutH: geom[8], OutW: geom[9],
			Set: pats, IDs: make([]int, outC*geom[1]), Weights: dense,
		}
		// Recover kernel pattern IDs by walking the stride table.
		for pos := 0; pos < outC; pos++ {
			orig := int(fkw.Reorder[pos])
			for slot := range pats {
				start, end, _ := fkw.KernelsOf(pos, slot)
				for k := start; k < end; k++ {
					conv.IDs[orig*conv.InC+int(fkw.Index[k])] = slot + 1
				}
			}
		}
		if err := conv.Validate(); err != nil {
			return nil, fmt.Errorf("modelfile: layer %s invalid after decode: %w", name, err)
		}
		out.Layers = append(out.Layers, Layer{Conv: conv, Bias: bias})
	}
	if d.err != nil {
		return nil, d.err
	}
	return out, nil
}

// decoder is a bounds-checked little-endian reader.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.data) {
		d.err = fmt.Errorf("modelfile: truncated at offset %d", d.off)
		return false
	}
	return true
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.data[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v
}

func (d *decoder) i32() int32 { return int32(d.u32()) }

func (d *decoder) bytes(n int) []byte {
	if n < 0 || !d.need(n) {
		if d.err == nil {
			d.err = fmt.Errorf("modelfile: negative length")
		}
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func put16(b *bytes.Buffer, v uint16) {
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], v)
	b.Write(tmp[:])
}

func put32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func putI32(b *bytes.Buffer, v int32) { put32(b, uint32(v)) }
