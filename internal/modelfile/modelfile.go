// Package modelfile implements the deployable compact-model artifact of the
// paper's Figure 7 ("compact model" + "opt-code for CPU/GPU" are what PatDNN
// ships to the phone): a single binary file holding the layerwise
// representation, the FKW-compressed weights of every pruned conv layer
// (stored in FP16, the mobile weight precision), and per-layer biases, with a
// CRC32 integrity footer.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "PATDNN\x00\x01"       (includes format version)
//	lrLen   uint32   length of the LR JSON section
//	lr      []byte   lr.Representation JSON
//	nLayers uint32
//	per layer:
//	  nameLen uint16, name []byte
//	  outC, inC, kh, kw uint16
//	  stride, pad uint16
//	  inH, inW, outH, outW uint16
//	  nPatterns uint16, patterns []uint16 (masks)
//	  offsets  [outC+1]int32
//	  reorder  [outC]uint16
//	  nKernels uint32, index [nKernels]uint16
//	  stride array [outC*(nPatterns+1)]uint16
//	  nWeights uint32, weights [nWeights]uint16 (binary16)
//	  bias [outC]uint16 (binary16)
//	crc32   uint32 (IEEE, over everything before it)
//
// Format v2 (magic "PATDNN\x00\x02") extends v1 with the records a full
// network graph needs — it is what lets one .patdnn artifact carry ResNet-50
// or MobileNet-V2 end to end instead of a bare 3×3-conv trunk. After the v1
// conv-layer section:
//
//	nDense  uint32                       connectivity-pruned 1×1 convs + FC layers
//	per dense layer:
//	  nameLen uint16, name []byte
//	  kind    uint8   (0 = conv1x1, 1 = fc)
//	  outC    uint32, inC uint32
//	  stride, inH, inW, outH, outW uint16
//	  weights [outC*inC]uint16 (binary16; zeros outside kept kernels)
//	  hasBias uint8, bias [outC]uint16 (binary16, if hasBias)
//	nBN     uint32                       BatchNorm inference parameters (FP32)
//	per bn:
//	  nameLen uint16, name []byte
//	  c       uint32, eps float32
//	  gamma, beta, mean, var [c]float32 each
//	topoLen uint32, topo []byte          network topology JSON (layer list with
//	                                     kinds, shapes, shortcut edges)
//	crc32   uint32
//
// Format v3 (magic "PATDNN\x00\x03") stores conv weights quantized: one int8
// level per FKW weight plus one float32 scale per original output channel
// (internal/quant's symmetric per-filter encoding), ~4× smaller than the FP16
// v1/v2 stream. After the LR section a single quantBits byte (2..8) declares
// the grid width; each conv record's weight subsection becomes
//
//	nWeights uint32
//	scales   [outC]float32   (indexed by original output channel)
//	qweights [nWeights]int8
//
// with biases staying FP16. v3 files always carry the v2 sections (possibly
// empty). The quantized grid is self-reproducing — the per-filter max-abs
// weight decodes to exactly ±limit — so read → write round trips are
// byte-exact, like v1/v2.
//
// Write emits v1 when the File carries no v2 content, so existing artifacts
// and their byte-exact round trips are untouched; Read accepts all three.
package modelfile

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/fp16"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/quant"
	"patdnn/internal/sparse"
)

var (
	magic   = [8]byte{'P', 'A', 'T', 'D', 'N', 'N', 0, 1}
	magicV2 = [8]byte{'P', 'A', 'T', 'D', 'N', 'N', 0, 2}
	magicV3 = [8]byte{'P', 'A', 'T', 'D', 'N', 'N', 0, 3}
)

// Layer couples a pruned conv with its bias for serialization.
type Layer struct {
	Conv *pruned.Conv
	Bias []float32 // len OutC; nil means all-zero
}

// Dense layer kinds in v2 records.
const (
	DenseConv1x1 = 0
	DenseFC      = 1
)

// DenseLayer is a v2 record: a connectivity-pruned 1×1 conv (weights
// [Co,Ci,1,1], zeros outside kept kernels) or a dense FC matrix ([Out,In]).
type DenseLayer struct {
	Name                 string
	Kind                 int // DenseConv1x1 or DenseFC
	OutC, InC            int
	Stride               int
	InH, InW, OutH, OutW int
	Weights              []float32 // len OutC*InC
	Bias                 []float32 // len OutC; nil means all-zero
}

// BNLayer is a v2 record holding BatchNorm inference parameters (FP32 — they
// are tiny and they fold into conv weights, where FP16 rounding would
// compound).
type BNLayer struct {
	Name                   string
	Gamma, Beta, Mean, Var []float32
	Eps                    float32
}

// File is an in-memory deployable model. V1 files carry only LR + Layers; v2
// files additionally carry the dense/BN records and the full network
// topology, which is what the graph executor lowers end to end.
type File struct {
	LR     *lr.Representation
	Layers []Layer
	Dense  []DenseLayer
	BNs    []BNLayer
	// Net is the network topology (layer kinds, shapes, shortcut edges).
	// Non-nil marks a v2 graph artifact.
	Net *model.Model
	// QuantBits, when >= 2, marks a v3 quantized artifact: conv weights are
	// stored as int8 levels with one float32 scale per output channel.
	QuantBits int
}

// isV2 reports whether the file needs the v2 format.
func (f *File) isV2() bool {
	return f.Net != nil || len(f.Dense) > 0 || len(f.BNs) > 0
}

// isV3 reports whether the file needs the v3 quantized format.
func (f *File) isV3() bool { return f.QuantBits >= 2 }

// Write serializes the model to w: format v1 when the file holds only
// pruned-conv records (byte-identical to what previous releases wrote), v2
// when dense/BN/topology records are present, v3 when QuantBits requests
// quantized weight storage.
func Write(w io.Writer, f *File) error {
	if f.QuantBits != 0 && !f.isV3() {
		return fmt.Errorf("modelfile: QuantBits %d out of range %d..%d (0 disables)",
			f.QuantBits, quant.MinBits, quant.MaxBits)
	}
	var buf bytes.Buffer
	switch {
	case f.isV3():
		buf.Write(magicV3[:])
	case f.isV2():
		buf.Write(magicV2[:])
	default:
		buf.Write(magic[:])
	}

	lrJSON, err := f.LR.Marshal()
	if err != nil {
		return fmt.Errorf("modelfile: %w", err)
	}
	put32(&buf, uint32(len(lrJSON)))
	buf.Write(lrJSON)

	if f.isV3() {
		if _, err := quant.Limit(f.QuantBits); err != nil {
			return fmt.Errorf("modelfile: %w", err)
		}
		buf.WriteByte(byte(f.QuantBits))
	}

	put32(&buf, uint32(len(f.Layers)))
	for _, layer := range f.Layers {
		c := layer.Conv
		if c.Weights == nil {
			return fmt.Errorf("modelfile: layer %s has no weights", c.Name)
		}
		fkw, err := sparse.Encode(c, nil)
		if err != nil {
			return fmt.Errorf("modelfile: %w", err)
		}
		if len(c.Name) > 0xffff {
			return fmt.Errorf("modelfile: layer name too long")
		}
		put16(&buf, uint16(len(c.Name)))
		buf.WriteString(c.Name)
		for _, v := range []int{c.OutC, c.InC, c.KH, c.KW, c.Stride, c.Pad,
			c.InH, c.InW, c.OutH, c.OutW} {
			if v < 0 || v > 0xffff {
				return fmt.Errorf("modelfile: layer %s: field %d out of uint16 range", c.Name, v)
			}
			put16(&buf, uint16(v))
		}
		put16(&buf, uint16(len(fkw.Patterns)))
		for _, p := range fkw.Patterns {
			put16(&buf, p.Mask)
		}
		for _, o := range fkw.Offset {
			putI32(&buf, o)
		}
		for _, r := range fkw.Reorder {
			put16(&buf, r)
		}
		put32(&buf, uint32(len(fkw.Index)))
		for _, ix := range fkw.Index {
			put16(&buf, ix)
		}
		for _, s := range fkw.Stride {
			put16(&buf, s)
		}
		if f.isV3() {
			q, err := quant.Quantize(fkw, f.QuantBits)
			if err != nil {
				return fmt.Errorf("modelfile: layer %s: %w", c.Name, err)
			}
			put32(&buf, uint32(len(q.Weights)))
			for _, s := range q.Scales {
				put32(&buf, math.Float32bits(s))
			}
			for _, lv := range q.Weights {
				buf.WriteByte(byte(lv))
			}
		} else {
			put32(&buf, uint32(len(fkw.Weights)))
			for _, wv := range fkw.Weights {
				put16(&buf, uint16(fp16.FromFloat32(wv)))
			}
		}
		bias := layer.Bias
		for i := 0; i < c.OutC; i++ {
			var b float32
			if bias != nil {
				b = bias[i]
			}
			put16(&buf, uint16(fp16.FromFloat32(b)))
		}
	}

	if f.isV2() || f.isV3() {
		if err := writeV2(&buf, f); err != nil {
			return err
		}
	}

	sum := crc32.ChecksumIEEE(buf.Bytes())
	put32(&buf, sum)
	_, err = w.Write(buf.Bytes())
	return err
}

// writeV2 appends the v2 sections: dense layers, BN parameters, topology.
func writeV2(buf *bytes.Buffer, f *File) error {
	put32(buf, uint32(len(f.Dense)))
	for _, d := range f.Dense {
		if len(d.Name) > 0xffff {
			return fmt.Errorf("modelfile: dense layer name too long")
		}
		if d.Kind != DenseConv1x1 && d.Kind != DenseFC {
			return fmt.Errorf("modelfile: dense layer %s has unknown kind %d", d.Name, d.Kind)
		}
		if len(d.Weights) != d.OutC*d.InC {
			return fmt.Errorf("modelfile: dense layer %s has %d weights, want %d",
				d.Name, len(d.Weights), d.OutC*d.InC)
		}
		if d.Bias != nil && len(d.Bias) != d.OutC {
			return fmt.Errorf("modelfile: dense layer %s has %d bias values, want %d",
				d.Name, len(d.Bias), d.OutC)
		}
		put16(buf, uint16(len(d.Name)))
		buf.WriteString(d.Name)
		buf.WriteByte(byte(d.Kind))
		put32(buf, uint32(d.OutC))
		put32(buf, uint32(d.InC))
		for _, v := range []int{d.Stride, d.InH, d.InW, d.OutH, d.OutW} {
			if v < 0 || v > 0xffff {
				return fmt.Errorf("modelfile: dense layer %s: field %d out of uint16 range", d.Name, v)
			}
			put16(buf, uint16(v))
		}
		for _, wv := range d.Weights {
			put16(buf, uint16(fp16.FromFloat32(wv)))
		}
		if d.Bias != nil {
			buf.WriteByte(1)
			for _, b := range d.Bias {
				put16(buf, uint16(fp16.FromFloat32(b)))
			}
		} else {
			buf.WriteByte(0)
		}
	}

	put32(buf, uint32(len(f.BNs)))
	for _, bn := range f.BNs {
		c := len(bn.Gamma)
		if len(bn.Beta) != c || len(bn.Mean) != c || len(bn.Var) != c {
			return fmt.Errorf("modelfile: bn %s has mismatched parameter lengths", bn.Name)
		}
		if len(bn.Name) > 0xffff {
			return fmt.Errorf("modelfile: bn name too long")
		}
		put16(buf, uint16(len(bn.Name)))
		buf.WriteString(bn.Name)
		put32(buf, uint32(c))
		put32(buf, math.Float32bits(bn.Eps))
		for _, arr := range [][]float32{bn.Gamma, bn.Beta, bn.Mean, bn.Var} {
			for _, v := range arr {
				put32(buf, math.Float32bits(v))
			}
		}
	}

	topo, err := marshalNet(f.Net)
	if err != nil {
		return err
	}
	put32(buf, uint32(len(topo)))
	buf.Write(topo)
	return nil
}

// Read deserializes and validates a model file, reconstructing each layer's
// pruned representation (weights decoded from FP16) and bias.
func Read(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("modelfile: %w", err)
	}
	if len(data) < len(magic)+8 {
		return nil, fmt.Errorf("modelfile: truncated file (%d bytes)", len(data))
	}
	v2 := bytes.Equal(data[:8], magicV2[:])
	v3 := bytes.Equal(data[:8], magicV3[:])
	if !v2 && !v3 && !bytes.Equal(data[:8], magic[:]) {
		return nil, fmt.Errorf("modelfile: bad magic or unsupported version")
	}
	body, footer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(footer) {
		return nil, fmt.Errorf("modelfile: checksum mismatch (corrupt file)")
	}

	d := &decoder{data: body, off: 8}
	lrLen := d.u32()
	lrJSON := d.bytes(int(lrLen))
	if d.err != nil {
		return nil, d.err
	}
	rep, err := lr.Unmarshal(lrJSON)
	if err != nil {
		return nil, fmt.Errorf("modelfile: %w", err)
	}
	out := &File{LR: rep}

	if v3 {
		out.QuantBits = int(d.u8())
		if d.err == nil {
			if _, err := quant.Limit(out.QuantBits); err != nil {
				return nil, fmt.Errorf("modelfile: %w", err)
			}
		}
	}

	nLayers := int(d.u32())
	for li := 0; li < nLayers && d.err == nil; li++ {
		name := string(d.bytes(int(d.u16())))
		geom := make([]int, 10)
		for i := range geom {
			geom[i] = int(d.u16())
		}
		nPat := int(d.u16())
		pats := make([]pattern.Pattern, nPat)
		for i := range pats {
			pats[i] = pattern.Pattern{Mask: d.u16(), K: geom[2]}
			// The executable kernels (and SavePruned's canonical sets) are
			// 4-entry only; a file carrying any other width is corrupt or
			// hostile, and letting it through would trip the executors'
			// unrolled-by-4 assumption much later.
			if d.err == nil && pats[i].Entries() != 4 {
				return nil, fmt.Errorf("modelfile: layer %s pattern %d has %d entries, want 4",
					name, i, pats[i].Entries())
			}
		}
		outC := geom[0]
		fkw := &sparse.FKW{
			OutC: outC, InC: geom[1], KH: geom[2], KW: geom[3],
			Patterns: pats,
		}
		fkw.Offset = make([]int32, outC+1)
		for i := range fkw.Offset {
			fkw.Offset[i] = d.i32()
		}
		fkw.Reorder = make([]uint16, outC)
		for i := range fkw.Reorder {
			fkw.Reorder[i] = d.u16()
		}
		nKernels := int(d.u32())
		fkw.Index = make([]uint16, nKernels)
		for i := range fkw.Index {
			fkw.Index[i] = d.u16()
		}
		fkw.Stride = make([]uint16, outC*(nPat+1))
		for i := range fkw.Stride {
			fkw.Stride[i] = d.u16()
		}
		nWeights := int(d.u32())
		var q8 *quant.FKW8
		if v3 {
			// Quantized weight subsection: per-filter scales then int8 levels.
			// The float32 stream is reconstructed below AFTER fkw.Validate()
			// has vetted the structural arrays the scale walk indexes.
			scales := make([]float32, outC)
			for i := range scales {
				scales[i] = math.Float32frombits(d.u32())
			}
			raw := d.bytes(nWeights)
			q8 = &quant.FKW8{Bits: out.QuantBits, Scales: scales, Weights: make([]int8, len(raw))}
			for i, b := range raw {
				q8.Weights[i] = int8(b)
			}
		} else {
			fkw.Weights = make([]float32, nWeights)
			for i := range fkw.Weights {
				fkw.Weights[i] = fp16.Bits(d.u16()).ToFloat32()
			}
		}
		bias := make([]float32, outC)
		for i := range bias {
			bias[i] = fp16.Bits(d.u16()).ToFloat32()
		}
		if d.err != nil {
			break
		}
		if q8 != nil {
			// Dequantize validates the FKW structure (reorder bounds, offset
			// monotonicity, stride-implied weight count) and the quantized
			// payload (finite positive scales, levels within the bit limit)
			// before touching either, so corrupt v3 bytes error here.
			w, err := q8.Dequantize(fkw)
			if err != nil {
				return nil, fmt.Errorf("modelfile: layer %s: %w", name, err)
			}
			fkw.Weights = w
		}

		// Rebuild the pruned representation from the FKW arrays. The file
		// bytes are untrusted: DecodeChecked validates the structure so a
		// corrupted stride/index table errors instead of panicking.
		dense, err := fkw.DecodeChecked()
		if err != nil {
			return nil, fmt.Errorf("modelfile: layer %s: %w", name, err)
		}
		conv := &pruned.Conv{
			Name: name, OutC: outC, InC: geom[1], KH: geom[2], KW: geom[3],
			Stride: geom[4], Pad: geom[5],
			InH: geom[6], InW: geom[7], OutH: geom[8], OutW: geom[9],
			Set: pats, IDs: make([]int, outC*geom[1]), Weights: dense,
		}
		// Recover kernel pattern IDs by walking the stride table.
		for pos := 0; pos < outC; pos++ {
			orig := int(fkw.Reorder[pos])
			for slot := range pats {
				start, end, _ := fkw.KernelsOf(pos, slot)
				for k := start; k < end; k++ {
					conv.IDs[orig*conv.InC+int(fkw.Index[k])] = slot + 1
				}
			}
		}
		if err := conv.Validate(); err != nil {
			return nil, fmt.Errorf("modelfile: layer %s invalid after decode: %w", name, err)
		}
		out.Layers = append(out.Layers, Layer{Conv: conv, Bias: bias})
	}
	if d.err != nil {
		return nil, d.err
	}
	if v2 || v3 {
		if err := readV2(d, out); err != nil {
			return nil, err
		}
		if d.off != len(d.data) {
			return nil, fmt.Errorf("modelfile: %d trailing bytes after v2 sections", len(d.data)-d.off)
		}
	}
	return out, nil
}

// readV2 parses the dense, BN, and topology sections of a v2 file. Every
// length and geometry field is validated so a corrupt or crafted record
// errors instead of panicking (or allocating absurd buffers) later.
func readV2(d *decoder, out *File) error {
	const maxDense = 1 << 28 // 256M weights ≈ 512 MB encoded; beyond is corrupt
	nDense := int(d.u32())
	for i := 0; i < nDense && d.err == nil; i++ {
		name := string(d.bytes(int(d.u16())))
		kind := int(d.u8())
		outC := int(d.u32())
		inC := int(d.u32())
		dl := DenseLayer{Name: name, Kind: kind, OutC: outC, InC: inC}
		dl.Stride = int(d.u16())
		dl.InH, dl.InW = int(d.u16()), int(d.u16())
		dl.OutH, dl.OutW = int(d.u16()), int(d.u16())
		if d.err != nil {
			break
		}
		if kind != DenseConv1x1 && kind != DenseFC {
			return fmt.Errorf("modelfile: dense layer %s has unknown kind %d", name, kind)
		}
		// Bound each factor before multiplying: outC and inC each come from a
		// uint32, so a crafted pair can overflow int in the product and slip
		// past a product-only bound into make().
		if outC < 1 || inC < 1 || outC > maxDense || inC > maxDense || outC*inC > maxDense {
			return fmt.Errorf("modelfile: dense layer %s has implausible shape %dx%d", name, outC, inC)
		}
		if kind == DenseConv1x1 && (dl.Stride < 1 || dl.InH < 1 || dl.InW < 1 ||
			dl.OutH != (dl.InH-1)/dl.Stride+1 || dl.OutW != (dl.InW-1)/dl.Stride+1) {
			return fmt.Errorf("modelfile: dense layer %s geometry is inconsistent", name)
		}
		if !d.need(2*outC*inC + 1) {
			break
		}
		dl.Weights = make([]float32, outC*inC)
		for j := range dl.Weights {
			dl.Weights[j] = fp16.Bits(d.u16()).ToFloat32()
		}
		if d.u8() == 1 {
			dl.Bias = make([]float32, outC)
			for j := range dl.Bias {
				dl.Bias[j] = fp16.Bits(d.u16()).ToFloat32()
			}
		}
		if d.err != nil {
			break
		}
		out.Dense = append(out.Dense, dl)
	}

	const maxChannels = 1 << 20
	nBN := int(d.u32())
	for i := 0; i < nBN && d.err == nil; i++ {
		name := string(d.bytes(int(d.u16())))
		c := int(d.u32())
		eps := math.Float32frombits(d.u32())
		if d.err != nil {
			break
		}
		if c < 1 || c > maxChannels {
			return fmt.Errorf("modelfile: bn %s has implausible channel count %d", name, c)
		}
		if !(eps > 0) || eps > 1 {
			return fmt.Errorf("modelfile: bn %s has implausible epsilon %g", name, eps)
		}
		bn := BNLayer{Name: name, Eps: eps}
		arrs := []*[]float32{&bn.Gamma, &bn.Beta, &bn.Mean, &bn.Var}
		if !d.need(16 * c) {
			break
		}
		for _, arr := range arrs {
			*arr = make([]float32, c)
			for j := range *arr {
				(*arr)[j] = math.Float32frombits(d.u32())
			}
		}
		out.BNs = append(out.BNs, bn)
	}

	topo := d.bytes(int(d.u32()))
	if d.err != nil {
		return d.err
	}
	if len(topo) > 0 {
		net, err := unmarshalNet(topo)
		if err != nil {
			return err
		}
		out.Net = net
		// A v1 conv record has no depthwise flag; the topology carries the
		// layer kind, so restore it (the executor's channel mapping needs it).
		kinds := make(map[string]model.OpKind, len(net.Layers))
		for _, l := range net.Layers {
			kinds[l.Name] = l.Kind
		}
		for _, layer := range out.Layers {
			if kinds[layer.Conv.Name] == model.DWConv {
				layer.Conv.Depthwise = true
			}
		}
	}
	return nil
}

// decoder is a bounds-checked little-endian reader.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	// n < 0 guards callers whose length arithmetic overflowed on crafted
	// inputs: a negative need would otherwise pass the bounds check.
	if n < 0 || d.off+n > len(d.data) {
		d.err = fmt.Errorf("modelfile: truncated at offset %d", d.off)
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.data[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.data[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v
}

func (d *decoder) i32() int32 { return int32(d.u32()) }

func (d *decoder) bytes(n int) []byte {
	if n < 0 || !d.need(n) {
		if d.err == nil {
			d.err = fmt.Errorf("modelfile: negative length")
		}
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

// netJSON is the topology wire form: model.Model with layer kinds spelled as
// strings, so the record stays readable and stable if OpKind values ever
// renumber.
type netJSON struct {
	Name    string      `json:"name"`
	Short   string      `json:"short"`
	Dataset string      `json:"dataset"`
	Classes int         `json:"classes"`
	InC     int         `json:"in_c"`
	InH     int         `json:"in_h"`
	InW     int         `json:"in_w"`
	Layers  []layerJSON `json:"layers"`
}

type layerJSON struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	InC        int    `json:"in_c,omitempty"`
	OutC       int    `json:"out_c,omitempty"`
	KH         int    `json:"kh,omitempty"`
	KW         int    `json:"kw,omitempty"`
	Stride     int    `json:"stride,omitempty"`
	Pad        int    `json:"pad,omitempty"`
	OutPad     int    `json:"out_pad,omitempty"`
	Groups     int    `json:"groups,omitempty"`
	InH        int    `json:"in_h,omitempty"`
	InW        int    `json:"in_w,omitempty"`
	OutH       int    `json:"out_h,omitempty"`
	OutW       int    `json:"out_w,omitempty"`
	HasBias    bool   `json:"has_bias,omitempty"`
	Projection bool   `json:"projection,omitempty"`
	ShortcutOf string `json:"shortcut_of,omitempty"`
}

var kindByName = map[string]model.OpKind{
	"input": model.Input, "conv": model.Conv, "dwconv": model.DWConv,
	"fc": model.FC, "maxpool": model.MaxPool, "avgpool": model.AvgPoolGlobal,
	"relu": model.ReLU, "batchnorm": model.BatchNorm, "add": model.Add,
	"flatten": model.Flatten, "softmax": model.SoftmaxOp,
	"convtranspose": model.ConvTranspose, "upsample": model.Upsample,
}

func marshalNet(m *model.Model) ([]byte, error) {
	if m == nil {
		return nil, nil
	}
	nj := netJSON{
		Name: m.Name, Short: m.Short, Dataset: m.Dataset, Classes: m.Classes,
		InC: m.InC, InH: m.InH, InW: m.InW,
	}
	for _, l := range m.Layers {
		nj.Layers = append(nj.Layers, layerJSON{
			Name: l.Name, Kind: l.Kind.String(),
			InC: l.InC, OutC: l.OutC, KH: l.KH, KW: l.KW,
			Stride: l.Stride, Pad: l.Pad, OutPad: l.OutPad, Groups: l.Groups,
			InH: l.InH, InW: l.InW, OutH: l.OutH, OutW: l.OutW,
			HasBias: l.HasBias, Projection: l.Projection, ShortcutOf: l.ShortcutOf,
		})
	}
	return json.Marshal(nj)
}

func unmarshalNet(data []byte) (*model.Model, error) {
	var nj netJSON
	if err := json.Unmarshal(data, &nj); err != nil {
		return nil, fmt.Errorf("modelfile: topology record: %w", err)
	}
	if len(nj.Layers) == 0 {
		return nil, fmt.Errorf("modelfile: topology record holds no layers")
	}
	m := &model.Model{
		Name: nj.Name, Short: nj.Short, Dataset: nj.Dataset, Classes: nj.Classes,
		InC: nj.InC, InH: nj.InH, InW: nj.InW,
	}
	for _, lj := range nj.Layers {
		kind, ok := kindByName[lj.Kind]
		if !ok {
			return nil, fmt.Errorf("modelfile: topology layer %s has unknown kind %q", lj.Name, lj.Kind)
		}
		m.Layers = append(m.Layers, &model.Layer{
			Name: lj.Name, Kind: kind,
			InC: lj.InC, OutC: lj.OutC, KH: lj.KH, KW: lj.KW,
			Stride: lj.Stride, Pad: lj.Pad, OutPad: lj.OutPad, Groups: lj.Groups,
			InH: lj.InH, InW: lj.InW, OutH: lj.OutH, OutW: lj.OutW,
			HasBias: lj.HasBias, Projection: lj.Projection, ShortcutOf: lj.ShortcutOf,
		})
	}
	return m, nil
}

func put16(b *bytes.Buffer, v uint16) {
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], v)
	b.Write(tmp[:])
}

func put32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func putI32(b *bytes.Buffer, v int32) { put32(b, uint32(v)) }
