package modelfile

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/compiler/reorder"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/tensor"
)

func sampleFile(t *testing.T, seed int64) *File {
	t.Helper()
	m := model.VGG16("cifar10")
	rng := rand.New(rand.NewSource(seed))
	var f File
	rep := &lr.Representation{Model: m.Name, Device: "CPU"}
	for _, l := range m.ConvLayers()[:3] {
		c := pruned.Generate(l, pattern.Canonical(8), 3.6, seed, true)
		bias := make([]float32, c.OutC)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		f.Layers = append(f.Layers, Layer{Conv: c, Bias: bias})
		rep.Layers = append(rep.Layers, lr.FromPruned(c, reorder.Build(c), lr.DefaultTuning()))
	}
	f.LR = rep
	return &f
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile(t, 1)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.LR.Model != f.LR.Model || len(got.Layers) != len(f.Layers) {
		t.Fatalf("header mismatch: %s, %d layers", got.LR.Model, len(got.Layers))
	}
	for i, want := range f.Layers {
		g := got.Layers[i]
		if g.Conv.Name != want.Conv.Name || g.Conv.OutC != want.Conv.OutC ||
			g.Conv.Stride != want.Conv.Stride || g.Conv.OutH != want.Conv.OutH {
			t.Fatalf("layer %d geometry mismatch: %+v", i, g.Conv)
		}
		// Pattern IDs round-trip exactly (IDs are re-derived from FKW, so
		// equal pattern *assignment*, possibly with renumbered IDs).
		for k := range want.Conv.IDs {
			wp := want.Conv.PatternOf(k/want.Conv.InC, k%want.Conv.InC)
			gp := g.Conv.PatternOf(k/g.Conv.InC, k%g.Conv.InC)
			if wp.Mask != gp.Mask {
				t.Fatalf("layer %d kernel %d pattern changed", i, k)
			}
		}
		// Weights round-trip within FP16 precision.
		if d := g.Conv.Weights.MaxAbsDiff(want.Conv.Weights); d > 2e-3 {
			t.Fatalf("layer %d weight diff %g beyond FP16 tolerance", i, d)
		}
		for j := range want.Bias {
			if math.Abs(float64(g.Bias[j]-want.Bias[j])) > 2e-3 {
				t.Fatalf("layer %d bias %d diff too large", i, j)
			}
		}
	}
}

func TestDecodedModelStillValid(t *testing.T) {
	f := sampleFile(t, 2)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range got.Layers {
		if err := l.Conv.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := got.LR.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	f := sampleFile(t, 3)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one byte in the middle.
	data[len(data)/2] ^= 0x40
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestNon4EntryPatternRejected(t *testing.T) {
	// A file whose pattern table carries a 3-entry mask (with a valid CRC —
	// checksums are not a defense against crafted files, anyone can compute
	// one) must be rejected at read time: the executable kernels unroll
	// 4-entry runs and would otherwise fail much later, inside inference.
	set := []pattern.Pattern{pattern.New(3, 0, 1, 2)} // 3 entries
	w := tensor.New(2, 2, 3, 3)
	for k := 0; k < 4; k++ {
		for _, pos := range set[0].Indices() {
			w.Data[k*9+pos] = 1
		}
	}
	c := &pruned.Conv{
		Name: "bad", OutC: 2, InC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1,
		InH: 4, InW: 4, OutH: 4, OutW: 4,
		Set: set, IDs: []int{1, 1, 1, 1}, Weights: w,
	}
	f := &File{
		LR:     &lr.Representation{Model: "bad", Device: "CPU"},
		Layers: []Layer{{Conv: c, Bias: []float32{0, 0}}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "entries") {
		t.Fatalf("Read = %v, want non-4-entry pattern rejection", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	f := sampleFile(t, 4)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{4, 12, len(data) / 2, len(data) - 1} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTAMODEL_______________"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestWriteRequiresWeights(t *testing.T) {
	f := sampleFile(t, 5)
	f.Layers[0].Conv.Weights = nil
	var buf bytes.Buffer
	if err := Write(&buf, f); err == nil {
		t.Fatal("expected error for weightless layer")
	}
}

func TestNilBiasWritesZeros(t *testing.T) {
	f := sampleFile(t, 6)
	f.Layers[0].Bias = nil
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got.Layers[0].Bias {
		if b != 0 {
			t.Fatal("nil bias should decode as zeros")
		}
	}
}

func TestCompressionVsDense(t *testing.T) {
	// The serialized file must be far smaller than the dense float32 model.
	f := sampleFile(t, 7)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	var denseBytes int
	for _, l := range f.Layers {
		denseBytes += l.Conv.TotalWeights() * 4
	}
	ratio := float64(buf.Len()) / float64(denseBytes)
	// FP16 + 8.1x pruning: weights alone are 1/16.2 of dense; structure
	// overhead brings it to roughly 1/10.
	if ratio > 0.20 {
		t.Fatalf("file is %.1f%% of dense size, want < 20%%", 100*ratio)
	}
}

func TestRoundTripPreservesInference(t *testing.T) {
	// The decoded weights must convolve to (FP16-close) identical outputs.
	f := sampleFile(t, 8)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := f.Layers[0].Conv, got.Layers[0].Conv
	rng := rand.New(rand.NewSource(9))
	in := tensor.New(c0.InC, 8, 8)
	in.Randn(rng, 1)
	spec := tensor.ConvSpec{Stride: c0.Stride, Pad: c0.Pad}
	a := tensor.Conv2D(in, c0.Weights, nil, spec)
	b := tensor.Conv2D(in, c1.Weights, nil, spec)
	if !a.AllClose(b, 5e-2) {
		t.Fatalf("inference diverged after round trip: %g", a.MaxAbsDiff(b))
	}
}
