package serve

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCancelledCallShedNotCompleted is the regression test for the
// cancelled-call leak: a request whose context is done while it sits in the
// queue must be dropped from the batch sweep (a deadline shed), not executed.
// MaxBatch==2 makes the sequencing deterministic: the first call is gathered
// and the batcher waits for a second; we cancel the first, then send the
// second, which completes the gather and fires the sweep immediately.
func TestCancelledCallShedNotCompleted(t *testing.T) {
	eng := tinyEngine(t, Config{Workers: 1, MaxBatch: 2, BatchWindow: time.Minute})

	ctx, cancel := context.WithCancel(context.Background())
	firstErr := make(chan error, 1)
	go func() {
		_, err := eng.Infer(ctx, Request{Network: "tiny", Dataset: "synthetic"})
		firstErr <- err
	}()
	// Wait until the batcher holds the first call (queue drained, gather in
	// progress), then cancel it while it waits for company.
	waitForGather(t, eng)
	cancel()
	if err := <-firstErr; err != context.Canceled {
		t.Fatalf("cancelled call returned %v, want context.Canceled", err)
	}

	// The second call completes the gather; the sweep must run without the
	// cancelled call: batch size 1, one deadline shed, zero executed-expired.
	r, err := eng.Infer(context.Background(),
		Request{Network: "tiny", Dataset: "synthetic", Input: tinyInput(1)})
	if err != nil {
		t.Fatal(err)
	}
	if r.BatchSize != 1 {
		t.Fatalf("surviving call rode batch of %d, want 1 (cancelled call must not be swept)", r.BatchSize)
	}
	s := eng.Stats()
	if s.DeadlineSheds != 1 {
		t.Fatalf("DeadlineSheds = %d, want 1 (a shed, not a completion)", s.DeadlineSheds)
	}
	if s.Batches != 1 || s.AvgBatch != 1 {
		t.Fatalf("Batches=%d AvgBatch=%g, want 1/1 (cancelled call never ran)", s.Batches, s.AvgBatch)
	}
	if s.ExpiredExecuted != 0 {
		t.Fatalf("ExpiredExecuted = %d, want 0", s.ExpiredExecuted)
	}
}

// TestQueuedDeadlineExpiryShedsBeforeSweep: same shape as the cancel test but
// the context dies through Request.TimeoutMs — the server-side deadline — so
// the whole deadline plumbing (TimeoutMs → ctx → sweep filter) is covered.
func TestQueuedDeadlineExpiryShedsBeforeSweep(t *testing.T) {
	eng := tinyEngine(t, Config{Workers: 1, MaxBatch: 2, BatchWindow: time.Minute})

	firstErr := make(chan error, 1)
	go func() {
		_, err := eng.Infer(context.Background(),
			Request{Network: "tiny", Dataset: "synthetic", TimeoutMs: 25})
		firstErr <- err
	}()
	waitForGather(t, eng)
	if err := <-firstErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired call returned %v, want DeadlineExceeded", err)
	}

	r, err := eng.Infer(context.Background(),
		Request{Network: "tiny", Dataset: "synthetic", Input: tinyInput(2)})
	if err != nil {
		t.Fatal(err)
	}
	if r.BatchSize != 1 {
		t.Fatalf("batch size %d, want 1", r.BatchSize)
	}
	s := eng.Stats()
	if s.DeadlineSheds != 1 || s.ExpiredExecuted != 0 {
		t.Fatalf("DeadlineSheds=%d ExpiredExecuted=%d, want 1/0", s.DeadlineSheds, s.ExpiredExecuted)
	}
}

// waitForGather polls until the engine's single batcher has dequeued
// everything and sits in a gather (both lane queues empty, one batch pending).
func waitForGather(t *testing.T, eng *Engine) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		eng.mu.Lock()
		drained := len(eng.batchers) == 1
		for _, bt := range eng.batchers {
			for _, ln := range bt.lanes {
				if len(ln.ch) != 0 {
					drained = false
				}
			}
		}
		eng.mu.Unlock()
		if drained {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("batcher never dequeued the first call")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeadRequestNeverEnqueued: a request that is already cancelled at
// admission is shed without touching a queue.
func TestDeadRequestNeverEnqueued(t *testing.T) {
	eng := tinyEngine(t, Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Infer(ctx, Request{Network: "tiny", Dataset: "synthetic"}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	s := eng.Stats()
	if s.DeadlineSheds != 1 || s.Batches != 0 {
		t.Fatalf("DeadlineSheds=%d Batches=%d, want 1/0", s.DeadlineSheds, s.Batches)
	}
}

// stallLane parks a lane inside a sweep: the planted call's unbuffered resp
// channel blocks result delivery until the returned release func runs, giving
// tests a deterministic window in which the lane consumes nothing.
func stallLane(t *testing.T, eng *Engine, class Class) (release func()) {
	t.Helper()
	_, cm, err := eng.compiled("tiny", "synthetic", "", false)
	if err != nil {
		t.Fatal(err)
	}
	bt := eng.batcherFor(cm)
	in, err := cm.inputTensor(nil)
	if err != nil {
		t.Fatal(err)
	}
	stall := &call{ctx: context.Background(), input: in,
		resp: make(chan batchResult), enqueued: time.Now()}
	bt.lanes[class].ch <- stall
	// Wait until the lane has dequeued the stall call and is blocked
	// delivering its result (queue observably empty, nothing else queued).
	deadline := time.Now().Add(5 * time.Second)
	for len(bt.lanes[class].ch) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("lane never dequeued the stall call")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // let the sweep reach the resp send
	return func() { <-stall.resp }
}

// TestOverloadShedsFastWithBoundedQueue pins the load-shedding contract:
// with the batch lane stalled and its bounded queue full, the next request is
// rejected immediately with ErrOverloaded — no blocking, no unbounded growth
// — and the shed shows up in Stats with its class, while the queue snapshot
// proves the depth never exceeded the configured bound.
func TestOverloadShedsFastWithBoundedQueue(t *testing.T) {
	const depth = 2
	eng := tinyEngine(t, Config{Workers: 1, MaxBatch: 1, QueueDepth: depth,
		BatchWindow: time.Millisecond})
	release := stallLane(t, eng, ClassBatch)

	// Fill the bounded queue to capacity behind the stalled sweep.
	results := make(chan error, depth)
	for i := 0; i < depth; i++ {
		go func(i int) {
			_, err := eng.Infer(context.Background(), Request{
				Network: "tiny", Dataset: "synthetic", Class: "batch", Input: tinyInput(i)})
			results <- err
		}(i)
	}
	waitForQueueDepth(t, eng, "batch", depth)

	// The queue is full: the next batch-class request must shed fast.
	start := time.Now()
	_, err := eng.Infer(context.Background(),
		Request{Network: "tiny", Dataset: "synthetic", Class: "batch"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shed took %v, want fast-fail", d)
	}
	s := eng.Stats()
	if s.Shed != 1 || s.ShedByClass["batch"] != 1 {
		t.Fatalf("Shed=%d ShedByClass=%v, want 1/batch:1", s.Shed, s.ShedByClass)
	}
	var found bool
	for _, q := range s.Queues {
		if q.Class != "batch" {
			continue
		}
		found = true
		if q.Capacity != depth || q.Depth > q.Capacity || q.Peak > q.Capacity {
			t.Fatalf("queue stat out of bounds: %+v", q)
		}
		if q.Depth != depth {
			t.Fatalf("queue depth %d, want %d (full behind the stalled sweep)", q.Depth, depth)
		}
	}
	if !found {
		t.Fatalf("no batch-class queue stat: %+v", s.Queues)
	}

	// Interactive traffic is unaffected by the saturated batch lane: the
	// classes are separate lanes, so batch backlog cannot starve it.
	if _, err := eng.Infer(context.Background(),
		Request{Network: "tiny", Dataset: "synthetic"}); err != nil {
		t.Fatalf("interactive request behind saturated batch lane: %v", err)
	}

	release()
	for i := 0; i < depth; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued request after release: %v", err)
		}
	}
}

func waitForQueueDepth(t *testing.T, eng *Engine, class string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, q := range eng.Stats().Queues {
			if q.Class == class && q.Depth == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s queue never reached depth %d: %+v", class, want, eng.Stats().Queues)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParseClass(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Class
		ok   bool
	}{{"", ClassInteractive, true}, {"interactive", ClassInteractive, true},
		{"batch", ClassBatch, true}, {"bulk", 0, false}} {
		got, err := ParseClass(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Fatalf("ParseClass(%q) = %v, %v", c.in, got, err)
		}
	}
	eng := tinyEngine(t, Config{Workers: 1})
	if _, err := eng.Infer(context.Background(),
		Request{Network: "tiny", Dataset: "synthetic", Class: "bulk"}); err == nil ||
		!strings.Contains(err.Error(), "unknown class") {
		t.Fatalf("err = %v, want unknown-class error", err)
	}
}

// TestClassLanesShareThePlanCache: both classes serve the same compiled
// artifact (one compile), and per-class batching works concurrently.
func TestClassLanesShareThePlanCache(t *testing.T) {
	eng := tinyEngine(t, Config{Workers: 2, MaxBatch: 4, BatchWindow: time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class := "interactive"
			if i%2 == 1 {
				class = "batch"
			}
			if _, err := eng.Infer(context.Background(), Request{
				Network: "tiny", Dataset: "synthetic", Class: class, Input: tinyInput(i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	s := eng.Stats()
	if s.PlanCompiles != 1 {
		t.Fatalf("PlanCompiles = %d, want 1 (classes share the artifact)", s.PlanCompiles)
	}
	if s.Errors != 0 || s.Requests != 16 {
		t.Fatalf("stats %+v", s)
	}
	if len(s.Queues) != 2 {
		t.Fatalf("queue stats %+v, want one per class", s.Queues)
	}
}

// TestShedsAndDeadlinesAreNotErrors: intentional scheduler outcomes — load
// sheds, deadline expiry, cancellation — must not pollute Stats.Errors,
// which pages operators on hard failures only.
func TestShedsAndDeadlinesAreNotErrors(t *testing.T) {
	const depth = 2
	eng := tinyEngine(t, Config{Workers: 1, MaxBatch: 1, QueueDepth: depth,
		BatchWindow: time.Millisecond})
	release := stallLane(t, eng, ClassBatch)

	results := make(chan error, depth)
	for i := 0; i < depth; i++ {
		go func(i int) {
			_, err := eng.Infer(context.Background(), Request{
				Network: "tiny", Dataset: "synthetic", Class: "batch", Input: tinyInput(i)})
			results <- err
		}(i)
	}
	waitForQueueDepth(t, eng, "batch", depth)
	// One shed (full queue), one cancellation, then a hard failure.
	if _, err := eng.Infer(context.Background(),
		Request{Network: "tiny", Dataset: "synthetic", Class: "batch"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Infer(ctx, Request{Network: "tiny", Dataset: "synthetic"}); err != context.Canceled {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if _, err := eng.Infer(context.Background(), Request{Network: "nope", Dataset: "cifar10"}); err == nil {
		t.Fatal("want unknown-network error")
	}
	s := eng.Stats()
	if s.Errors != 1 {
		t.Fatalf("Errors = %d, want 1 (only the unknown network; shed=%d deadline_sheds=%d are not errors)",
			s.Errors, s.Shed, s.DeadlineSheds)
	}
	release()
	for i := 0; i < depth; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
}

// TestTimeoutMsValidation: client-supplied garbage deadlines are rejected as
// errors at admission, not converted into already-expired contexts that
// masquerade as deadline sheds.
func TestTimeoutMsValidation(t *testing.T) {
	eng := tinyEngine(t, Config{Workers: 1})
	for _, ms := range []float64{-1, 1e308, math.Inf(1), math.NaN(), maxTimeoutMs + 1} {
		_, err := eng.Infer(context.Background(),
			Request{Network: "tiny", Dataset: "synthetic", TimeoutMs: ms})
		if err == nil || !strings.Contains(err.Error(), "timeout_ms") {
			t.Fatalf("TimeoutMs=%g: err = %v, want timeout_ms validation error", ms, err)
		}
	}
	if s := eng.Stats(); s.DeadlineSheds != 0 {
		t.Fatalf("validation rejections counted as deadline sheds: %d", s.DeadlineSheds)
	}
	// A sane value still works.
	if _, err := eng.Infer(context.Background(),
		Request{Network: "tiny", Dataset: "synthetic", TimeoutMs: 5000}); err != nil {
		t.Fatal(err)
	}
}
