package serve

// Background tuning worker: the serving half of the persistent autotuning
// subsystem. Off the hot path it re-searches packed-layer execution
// configurations with *measured* (wall-clock) evaluation — the compile path
// only ever affords the analytic cost model — records the winners in the
// tuning DB as SourceMeasured (which outranks analytic decisions and is never
// downgraded), and hot-swaps any plan whose compiled configuration the
// measurements beat. The swap rides the exact machinery registry hot reloads
// use: the plan-cache entry is replaced under the engine mutex and the old
// artifact's batcher is retired — queued requests drain on the old plans,
// stragglers run unbatched, new requests batch on the replacement — so no
// in-flight request ever fails because tuning improved its model.

import (
	"math"
	"math/rand"
	"time"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/execgraph"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/compiler/tuner"
	"patdnn/internal/compiler/tuner/tunedb"
	"patdnn/internal/tensor"
)

// readyEntry wraps an already-compiled artifact as a plan-cache entry (the
// shape a hot swap installs: the replacement must be immediately ready, never
// "compiling").
func readyEntry(cm *compiledModel) *modelEntry {
	en := &modelEntry{compile: func() (*compiledModel, error) { return cm, nil }}
	en.get()
	return en
}

// tuneLoop is the worker goroutine: one tuning round per Config.TuneInterval
// until Close.
func (e *Engine) tuneLoop() {
	defer e.tuneWG.Done()
	tick := time.NewTicker(e.cfg.TuneInterval)
	defer tick.Stop()
	for {
		select {
		case <-e.tuneStop:
			return
		case <-tick.C:
			e.tuneRound()
		}
	}
}

// tuneRound walks every ready generator-path plan, measures better packed
// configurations where the DB has no measured verdict yet, and hot-swaps the
// plans the verdicts improve. Registry-backed artifacts are not swapped
// directly — their next lazy recompile (eviction, hot reload) picks the
// measured winners out of the DB — because the registry owns their lifecycle
// and memory accounting.
func (e *Engine) tuneRound() {
	if e.tdb == nil {
		return
	}
	type item struct {
		key   modelKey
		entry *modelEntry
		cm    *compiledModel
	}
	e.lifecycle.RLock()
	closed := e.closed
	e.lifecycle.RUnlock()
	if closed {
		return
	}
	e.mu.Lock()
	items := make([]item, 0, len(e.models))
	for k, en := range e.models {
		if cm, err, ok := en.snapshot(); ok && err == nil && cm != nil {
			items = append(items, item{k, en, cm})
		}
	}
	e.mu.Unlock()
	for _, it := range items {
		e.tuneModel(it.key, it.entry, it.cm)
	}
	// Persist this round's verdicts; a failed save just retries next round.
	_ = e.tdb.Save()
}

// tuneModel measures one compiled model's packed convs and swaps in a
// recompile if any conv's best-known configuration differs from the compiled
// one.
func (e *Engine) tuneModel(key modelKey, entry *modelEntry, cm *compiledModel) {
	improved := false
	for _, n := range cm.plan.Nodes {
		if e.stopping() {
			return
		}
		if n.Kind != execgraph.KindConv || n.Plan.Level != codegen.Packed {
			continue
		}
		if e.tuneConv(n) {
			improved = true
		}
	}
	if !improved {
		return
	}
	// Recompile: every layer now hits the DB (measured entries included), so
	// this does zero search work and embodies the improved configurations.
	newCM, err := e.compileModel(cm.model, cm.level)
	if err != nil {
		return
	}
	// Install under the same discipline registry hot reloads use. The entry
	// identity check makes the swap idempotent against racing swaps or an
	// eviction that already replaced the key.
	e.lifecycle.RLock()
	if e.closed {
		e.lifecycle.RUnlock()
		return
	}
	swapped := false
	e.mu.Lock()
	if e.models[key] == entry {
		e.models[key] = readyEntry(newCM)
		swapped = true
	}
	e.mu.Unlock()
	e.lifecycle.RUnlock()
	if swapped {
		e.retireBatcher(cm)
		e.bgSwaps.Add(1)
	}
}

// packedConfigDiffers reports whether two tunings differ in any knob the
// packed register-tiled driver reads: the output-row tile (Tile[1]), the
// filter-group size (Unroll[0]), and the pixel-block width (Unroll[2]).
// Comparing only the tile would miss verdicts that reblocked the group or
// the column chunk and skip the recompile that applies them.
func packedConfigDiffers(a, b lr.Tuning) bool {
	return a.Tile[1] != b.Tile[1] || a.Unroll[0] != b.Unroll[0] || a.Unroll[2] != b.Unroll[2]
}

// tuneConv ensures the DB holds a measured verdict for one packed conv and
// reports whether that verdict differs from the configuration the conv is
// currently compiled with (i.e. whether a recompile would change the plan).
func (e *Engine) tuneConv(n *execgraph.Node) bool {
	pc := n.Plan.Conv
	key := tunedb.ConvKey(pc, codegen.LevelTag(codegen.Packed))
	if ent, ok := e.tdb.Lookup(key); ok && ent.Source == tunedb.SourceMeasured {
		return packedConfigDiffers(ent.Config, n.Plan.Tune)
	}

	// Measured evaluation: compile the candidate and time the fused layer on
	// the batch pool (the width background work is allowed), min-of-3 with
	// nanosecond resolution so sub-millisecond layers still rank.
	in := tensor.New(pc.InChannels(), pc.InH, pc.InW)
	in.Randn(rand.New(rand.NewSource(1)), 1)
	eval := func(t lr.Tuning) float64 {
		plan, err := codegen.Compile(pc, codegen.Packed, t)
		if err != nil {
			return math.MaxFloat64
		}
		best := math.MaxFloat64
		for i := 0; i < 3; i++ {
			start := time.Now()
			e.batchPool.RunLayerFused(plan, in, n.Bias, n.ReLU)
			if ms := float64(time.Since(start).Nanoseconds()) / 1e6; ms < best {
				best = ms
			}
		}
		return best
	}
	opt := tuner.Options{Population: 6, Generations: 2, MutationP: 0.25, Elite: 2, Seed: 1,
		WarmStart: []lr.Tuning{n.Plan.Tune}}
	best, _, err := tuner.Search(tuner.PackedSpace(), eval, opt)
	if err != nil {
		return false
	}
	e.bgSearches.Add(1)
	e.tdb.Record(key, tunedb.Entry{Config: best.Config, CostMs: best.CostMs, Source: tunedb.SourceMeasured})
	return packedConfigDiffers(best.Config, n.Plan.Tune)
}

// stopping reports whether Close has started (checked between layer
// measurements so a round in progress does not delay shutdown by seconds).
func (e *Engine) stopping() bool {
	if e.tuneStop == nil {
		return false
	}
	select {
	case <-e.tuneStop:
		return true
	default:
		return false
	}
}
