package serve

// Registry wiring: the engine can attach a disk-backed model registry
// (internal/registry) and resolve Request.Network through it — "name@version"
// for an exact version, bare "name" for the routed/latest one — next to the
// existing generator path. The engine is the registry's Loader: it lowers a
// validated .patdnn artifact into the same compiledModel representation the
// plan cache holds, so registry models ride the identical batched layer
// sweep. Hot reload and eviction are safe because artifacts are immutable:
// when the registry drops one, the engine retires its batcher — queued
// requests drain on the old compiled plans while new requests already
// resolve to (and batch on) the replacement.

import (
	"fmt"
	"sort"
	"strings"

	"patdnn/internal/compiler/execgraph"
	"patdnn/internal/modelfile"
	"patdnn/internal/registry"
)

// diskArtifact is the engine's registry.Artifact: one .patdnn version
// compiled to an executable op stack.
type diskArtifact struct {
	eng *Engine
	cm  *compiledModel
}

// MemoryBytes reports the resident footprint charged against the registry's
// memory budget.
func (a *diskArtifact) MemoryBytes() int64 { return a.cm.memoryBytes() }

// artifactDetail is what a resident registry artifact publishes through the
// registry's ModelInfo.Detail channel: the compiled plan's fused-op counts
// and arena size, so /models can report them per version.
type artifactDetail struct {
	Fused      execgraph.FusedOps `json:"fused_ops"`
	ArenaBytes int64              `json:"arena_bytes"`
	// Level is the optimization level the artifact compiled at —
	// "packedq8" for quantized v3 artifacts serving their int8 stream.
	Level string `json:"level"`
}

// Describe implements registry.Describer.
func (a *diskArtifact) Describe() any {
	arena, _ := a.cm.plan.ArenaBytes()
	return artifactDetail{Fused: a.cm.plan.Fused, ArenaBytes: arena, Level: a.cm.level}
}

// Release retires the artifact's batcher when the registry drops the
// artifact (eviction, hot-reload replacement, removal).
func (a *diskArtifact) Release() { a.eng.retireBatcher(a.cm) }

// WithRegistry attaches a disk-backed model registry to the engine: cfg.Dir
// is scanned for versioned .patdnn artifacts, which become resolvable as
// Request.Network = "name" or "name@version". The returned registry exposes
// scanning, routing, and budget control; the engine closes it on Close.
// Registry artifacts compile at the engine's configured optimization level.
func (e *Engine) WithRegistry(cfg registry.Config) (*registry.Registry, error) {
	e.lifecycle.RLock()
	closed := e.closed
	e.lifecycle.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	e.mu.Lock()
	if e.reg != nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("serve: a registry is already attached")
	}
	e.mu.Unlock()
	loader := registry.LoaderFunc(func(name, version string, f *modelfile.File) (registry.Artifact, error) {
		tag, err := e.resolveLevelTag("")
		if err != nil {
			return nil, err
		}
		cm, err := e.compileFromFile(name, version, f, tag)
		if err != nil {
			return nil, err
		}
		return &diskArtifact{eng: e, cm: cm}, nil
	})
	reg, err := registry.Open(cfg, loader)
	if err != nil {
		return nil, err
	}
	// Store under the lifecycle read lock: Close holds the write side, so
	// either Close already ran (we must close the fresh registry ourselves —
	// nobody else ever would) or our store completes first and Close will
	// see and close it.
	e.lifecycle.RLock()
	if e.closed {
		e.lifecycle.RUnlock()
		reg.Close()
		return nil, ErrClosed
	}
	e.mu.Lock()
	if e.reg != nil { // raced with another WithRegistry
		e.mu.Unlock()
		e.lifecycle.RUnlock()
		reg.Close()
		return nil, fmt.Errorf("serve: a registry is already attached")
	}
	e.reg = reg
	e.mu.Unlock()
	e.lifecycle.RUnlock()
	return reg, nil
}

// Registry returns the attached registry, or nil.
func (e *Engine) Registry() *registry.Registry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reg
}

// resolveModel maps a request to its compiled artifact. Registry-backed
// resolution applies when the network spec names an explicit version
// ("name@version"), or when the registry holds the bare name and the
// request leaves Dataset empty — a non-empty Dataset is the generator
// protocol (registry artifacts carry no dataset), so such requests fall
// through to the generator path instead of letting a same-named artifact
// silently shadow every dataset's model. Registry artifacts are pinned to
// the level they compiled at (the engine's configured level, or "packedq8"
// for quantized v3 artifacts under auto), so a per-request level override
// is accepted when it names that compiled level — "packedq8" against a
// quantized artifact, say — and rejected rather than silently ignored when
// it conflicts.
func (e *Engine) resolveModel(req Request) (*compiledModel, error) {
	reg := e.Registry()
	versioned := strings.Contains(req.Network, "@")
	if reg == nil || (!versioned && (req.Dataset != "" || !reg.Has(req.Network))) {
		if versioned {
			return nil, fmt.Errorf("serve: %q names a registry version but no models directory is attached", req.Network)
		}
		_, cm, err := e.compiled(req.Network, req.Dataset, req.Level, false)
		return cm, err
	}
	res, err := reg.Resolve(req.Network)
	if err != nil {
		return nil, err
	}
	cm := res.Artifact.(*diskArtifact).cm
	if req.Level != "" {
		tag, err := e.resolveLevelTag(req.Level)
		if err != nil {
			return nil, err
		}
		if tag != LevelAuto && tag != cm.level {
			return nil, fmt.Errorf("serve: registry model %s is compiled at level %q; per-request level %q would serve different kernels",
				req.Network, cm.level, tag)
		}
	}
	return cm, nil
}

// retireBatcher marks cm retired and closes/removes its batcher after the
// registry dropped the artifact. Taking the lifecycle write lock excludes
// every in-flight enqueue (they hold the read side across the retirement
// check, lookup, and send), so once the flag is set and the batcher leaves
// the map no goroutine can still send on its channel — stragglers that
// resolved cm earlier observe the flag and run unbatched instead. Closing
// the channel afterwards lets the batcher drain queued calls on the old
// plans and exit. After Close this is a no-op (Close already closed every
// channel).
func (e *Engine) retireBatcher(cm *compiledModel) {
	e.lifecycle.Lock()
	cm.retired.Store(true)
	if e.closed {
		e.lifecycle.Unlock()
		return
	}
	e.mu.Lock()
	bt := e.batchers[cm]
	delete(e.batchers, cm)
	if bt != nil {
		// Fold the retired lanes' cumulative counters into the per-model
		// carry: Stats.Admitted must not dip when a hot-reload swap or
		// eviction replaces the artifact (fleet aggregation sums these
		// snapshots and expects monotonic counters).
		for _, ln := range bt.lanes {
			k := laneKey{cm.model.Short, cm.model.Dataset, ln.class}
			c := e.laneCarry[k]
			c.admitted += ln.admitted.Load()
			if p := ln.peak.Load(); p > c.peak {
				c.peak = p
			}
			e.laneCarry[k] = c
		}
	}
	e.mu.Unlock()
	e.lifecycle.Unlock()
	if bt != nil {
		bt.closeLanes()
	}
}

// ModelState is one model's compile/load state in a readiness report.
type ModelState struct {
	Network string `json:"network"`
	Dataset string `json:"dataset,omitempty"`
	Version string `json:"version,omitempty"`
	Level   string `json:"level,omitempty"`
	// State is "ready" (compiled and resident), "compiling" (first compile
	// in flight — blocks readiness), "cold" (registry version awaiting its
	// lazy compile — does not block), or "failed" (compile/load error —
	// does not block; the error is permanent until the artifact changes).
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// Readiness reports whether the engine should receive traffic, with
// per-model detail: it is not ready while preload compiles or registry
// scans are still in flight (a load balancer routing to a cold server
// would eat compile latency on live requests).
type Readiness struct {
	Ready    bool                `json:"ready"`
	Models   []ModelState        `json:"models"`
	Registry *registry.Readiness `json:"registry,omitempty"`
}

// Readiness snapshots the engine's readiness: plan-cache entries still
// compiling or registry scans in flight make it unready; steady states do
// not (cold or failed models, and the routine lazy recompiles a memory
// budget causes).
func (e *Engine) Readiness() Readiness {
	e.lifecycle.RLock()
	closed := e.closed
	e.lifecycle.RUnlock()

	e.mu.Lock()
	keys := make([]modelKey, 0, len(e.models))
	entries := make([]*modelEntry, 0, len(e.models))
	for k, entry := range e.models {
		keys = append(keys, k)
		entries = append(entries, entry)
	}
	reg := e.reg
	e.mu.Unlock()

	rd := Readiness{Ready: !closed}
	for i, entry := range entries {
		st := ModelState{Network: keys[i].short, Dataset: keys[i].dataset, Level: keys[i].level}
		cm, err, ok := entry.snapshot()
		switch {
		case !ok:
			st.State = "compiling"
			// Only explicitly requested warm-up work (Preload,
			// RegisterModel) gates readiness. A lazy compile some client
			// request triggered on an otherwise-warm engine must not 503 a
			// healthy instance out of rotation.
			if entry.gate.Load() {
				rd.Ready = false
			}
		case err != nil:
			st.State, st.Error = "failed", err.Error()
		case cm != nil:
			st.State = "ready"
		}
		rd.Models = append(rd.Models, st)
	}
	if reg != nil {
		rr := reg.Readiness()
		rd.Registry = &rr
		if !rr.Ready {
			rd.Ready = false
		}
		for _, m := range reg.Models() {
			st := ModelState{Network: m.Name, Version: m.Version}
			switch {
			case m.Loaded:
				st.State = "ready"
			case m.Error != "":
				st.State, st.Error = "failed", m.Error
			default:
				st.State = "cold"
			}
			rd.Models = append(rd.Models, st)
		}
	}
	sort.Slice(rd.Models, func(i, j int) bool {
		a, b := rd.Models[i], rd.Models[j]
		if a.Network != b.Network {
			return a.Network < b.Network
		}
		if a.Dataset != b.Dataset {
			return a.Dataset < b.Dataset
		}
		if a.Version != b.Version {
			return registry.CompareVersions(a.Version, b.Version) < 0
		}
		return a.Level < b.Level
	})
	return rd
}
