package serve

// HTTP front-end: the routing table cmd/patdnn-serve mounts, factored into
// the package so other processes can stand up a real serving replica — the
// router's in-process fleet harness (internal/router/routertest) spawns K of
// these on ephemeral ports and fault-injects around them. The handler is the
// single source of truth for the serve wire protocol: every status mapping
// (429 shed, 504 deadline, 499 cancel) and every endpoint the router's health
// checker and aggregators depend on (/readyz, /stats, /models) lives here.
//
// ReplicaHeader identifies which replica served a response; the front door
// (cmd/patdnn-router) preserves it across the proxy hop so clients — and the
// loadgen harness's per-replica outcome classification — can attribute every
// response to the process that produced it.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"

	"patdnn/internal/registry"
)

// ReplicaHeader is the response header naming the serving replica. The serve
// handler stamps it with the instance's self-reported name (Handler's
// replica argument, typically its listen address); the router passes it
// through, so a client behind the front door still sees which replica ran
// its inference.
const ReplicaHeader = "X-Patdnn-Replica"

// NewHandler builds the serve HTTP API over an engine (and its optional
// registry; reg may be nil). replica, when non-empty, is stamped on every
// response as the ReplicaHeader value.
//
// Endpoints: POST /infer, GET /models, GET /stats, GET /healthz, GET /readyz,
// and — when reg is non-nil — GET /registry and POST /registry/route.
func NewHandler(eng *Engine, reg *registry.Registry, replica string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /infer", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		resp, err := eng.Infer(r.Context(), req)
		if err != nil {
			httpError(w, InferStatus(err), err)
			return
		}
		// Compact encoding: an image-to-image response carries the whole
		// output feature map (12288 floats for the ×2 SR head on CIFAR-sized
		// input), and the indent writer would more than double that payload
		// by putting every element on its own line.
		writeJSONCompact(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /models", func(w http.ResponseWriter, r *http.Request) {
		models := eng.Models()
		if models == nil {
			models = []ModelInfo{}
		}
		writeJSON(w, http.StatusOK, models)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, eng.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Pure liveness: the process is up and the mux is serving. Routability
		// (compiles done, registry warm) is /readyz's job.
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		rd := eng.Readiness()
		status := http.StatusOK
		if !rd.Ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, rd)
	})
	if reg != nil {
		mux.HandleFunc("GET /registry", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, registryView{
				Models: reg.Models(), Routes: reg.Routes(), Stats: reg.Stats(),
			})
		})
		mux.HandleFunc("POST /registry/route", func(w http.ResponseWriter, r *http.Request) {
			var req routeRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
				return
			}
			if req.Model == "" {
				httpError(w, http.StatusBadRequest, errors.New("missing \"model\""))
				return
			}
			if len(req.Weights) == 0 {
				reg.ClearRoute(req.Model)
			} else if err := reg.SetRoute(req.Model, req.Weights); err != nil {
				status := http.StatusBadRequest
				if errors.Is(err, registry.ErrNotFound) {
					status = http.StatusNotFound
				}
				httpError(w, status, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"routes": reg.Routes()})
		})
	}
	if replica == "" {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(ReplicaHeader, replica)
		mux.ServeHTTP(w, r)
	})
}

// InferStatus maps an Engine.Infer error to its HTTP status. The mapping is
// part of the wire protocol the router's spill logic keys on: 429 means "shed
// at admission, a sibling replica may have room", 504/499 mean the deadline
// or caller died (retrying cannot help), 503 means the engine is closed.
func InferStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		// Load shed: the class queue is full. 429 tells well-behaved clients
		// (and the router) to go elsewhere; nothing was computed.
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, registry.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		// The request's deadline (ctx or timeout_ms) passed before a sweep
		// could serve it; the batcher shed it without compute.
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return http.StatusBadRequest
	}
}

// registryView is the GET /registry response body.
type registryView struct {
	Models []registry.ModelInfo              `json:"models"`
	Routes map[string][]registry.RouteWeight `json:"routes"`
	Stats  registry.Stats                    `json:"stats"`
}

// routeRequest is the POST /registry/route body: weights map version →
// weight; empty weights clear the route.
type routeRequest struct {
	Model   string         `json:"model"`
	Weights map[string]int `json:"weights"`
}

// writeJSON pretty-prints the small operator-facing endpoints (/stats,
// /models, ...); /infer responses go through writeJSONCompact because their
// payload scales with the model's output tensor.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("serve: encode response: %v", err)
	}
}

func writeJSONCompact(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
