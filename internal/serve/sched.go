package serve

// The scheduling layer: every compiled artifact gets one batcher with two
// class lanes — interactive (the default, latency-sensitive) and batch
// (canary/bench/backfill traffic that must never starve interactive work).
// Each lane is a bounded queue: admission is a non-blocking send, so when a
// lane is full the engine sheds the request immediately with ErrOverloaded
// (the 429 fast-fail) instead of growing an unbounded backlog whose tail
// latency nobody can meet anyway.
//
// Batching is deadline-aware. Requests carry their deadline through ctx
// (Request.TimeoutMs attaches one server-side); at the moment a gathered
// batch is swept, calls whose context is already done — cancelled client,
// expired deadline — are dropped from the sweep and answered with the
// context error, counted as deadline sheds rather than completions. A
// tripwire counter (Stats.ExpiredExecuted) audits the invariant from the
// other side: any call that executes even though its deadline had passed
// before the sweep started is counted, and the E2E harness asserts the
// counter stays zero.
//
// Priority is by resource partitioning rather than preemption: the two lanes
// run concurrently (so a full batch queue never blocks interactive dequeue),
// but batch-class sweeps execute on a width-limited view of the worker pool
// (Config.BatchWorkers, default a quarter of the pool) while interactive
// sweeps keep the full width. Saturating batch traffic therefore costs
// interactive requests at most the narrow slice of compute the operator
// granted the batch class, and the batch class still makes progress — capped,
// not starved, in either direction.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

// ErrOverloaded is returned by Infer when the target model's queue for the
// request's class is full: the request was shed at admission without doing
// any work. HTTP front-ends should map it to 429 Too Many Requests.
var ErrOverloaded = errors.New("serve: overloaded, request shed")

// Class is the scheduling class of a request.
type Class uint8

const (
	// ClassInteractive is the default class: user-facing, latency-sensitive
	// traffic. Interactive sweeps run at the worker pool's full width.
	ClassInteractive Class = iota
	// ClassBatch is background traffic — canary comparisons, benchmarking,
	// backfill — executed on a width-limited pool slice so it can never
	// starve interactive work.
	ClassBatch
	numClasses
)

// String returns the wire spelling of the class.
func (c Class) String() string {
	if c == ClassBatch {
		return "batch"
	}
	return "interactive"
}

// ParseClass parses a Request.Class value; empty selects interactive.
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "interactive":
		return ClassInteractive, nil
	case "batch":
		return ClassBatch, nil
	default:
		return 0, fmt.Errorf("serve: unknown class %q (want interactive or batch)", s)
	}
}

// QueueStat is one lane's queue depth snapshot in Stats: the current depth,
// the configured bound, and the admission-time high-water mark. Depth can
// never exceed Capacity — the bound is the lane channel's capacity.
type QueueStat struct {
	Network  string `json:"network"`
	Dataset  string `json:"dataset,omitempty"`
	Version  string `json:"version,omitempty"`
	Class    string `json:"class"`
	Depth    int    `json:"depth"`
	Capacity int    `json:"capacity"`
	Peak     int    `json:"peak"`
	// QueuedBytes is the output-tensor commitment of the requests currently
	// between admission and sweep completion (4 bytes × plan output elements
	// each); ByteCapacity is the configured Config.QueueBytes bound.
	QueuedBytes  int64 `json:"queued_bytes"`
	ByteCapacity int64 `json:"byte_capacity"`
	// Admitted counts requests ever admitted to this lane. It is scoped to
	// the lane's artifact (a hot-reload swap starts the replacement's lane at
	// zero); Stats.Admitted carries the cumulative per-model total across
	// swaps — that is the counter fleet aggregation should sum.
	Admitted uint64 `json:"admitted"`
}

// call is one enqueued request inside a lane.
type call struct {
	ctx      ctxDone // request context: deadline + cancellation
	input    *tensor.Tensor
	resp     chan batchResult // buffered(1): abandoned callers never block the lane
	enqueued time.Time
}

// ctxDone is the slice of context.Context the scheduler needs; a named
// interface keeps the call struct honest about what it consults (Err for the
// sweep filter, Deadline for the executed-expired tripwire).
type ctxDone interface {
	Err() error
	Deadline() (time.Time, bool)
}

type batchResult struct {
	out     *tensor.Tensor
	err     error // non-nil when the call was shed from the sweep (ctx done)
	size    int
	queueMs float64
	runMs   float64
}

// batcher owns one compiled model's request stream: two class lanes, each a
// bounded queue drained by its own gather loop.
type batcher struct {
	eng   *Engine
	cm    *compiledModel
	lanes [numClasses]*lane
}

// lane is one class's bounded queue and gather/sweep loop for one artifact.
type lane struct {
	eng      *Engine
	cm       *compiledModel
	class    Class
	ch       chan *call
	peak     atomic.Int64  // admission-time high-water mark of len(ch)
	admitted atomic.Uint64 // requests ever admitted to this lane
	// callBytes is the output commitment of one request against this
	// artifact (4 bytes per output element — what runBatch will allocate per
	// call); bytes tracks the lane's outstanding total from admission until
	// the sweep delivers or sheds the call, bounded by Config.QueueBytes.
	callBytes int64
	bytes     atomic.Int64
}

// newBatcher creates the batcher and starts both lane goroutines. Callers
// hold e.mu and have already accounted e.wg.Add(numClasses).
func newBatcher(e *Engine, cm *compiledModel) *batcher {
	outBytes := 4 * int64(cm.plan.OutC) * int64(cm.plan.OutH) * int64(cm.plan.OutW)
	bt := &batcher{eng: e, cm: cm}
	for cl := Class(0); cl < numClasses; cl++ {
		ln := &lane{eng: e, cm: cm, class: cl, callBytes: outBytes,
			ch: make(chan *call, e.cfg.QueueDepth)}
		bt.lanes[cl] = ln
		go ln.loop()
	}
	return bt
}

// closeLanes closes both lane channels; each loop drains its queue (shedding
// dead calls, completing live ones) and exits.
func (bt *batcher) closeLanes() {
	for _, ln := range bt.lanes {
		close(ln.ch)
	}
}

// enqueue admits c into the class lane, or sheds it: non-blocking, so a full
// queue fails fast with ErrOverloaded instead of building an unbounded
// backlog. Callers hold the engine lifecycle read lock across the send.
func (bt *batcher) enqueue(c *call, class Class) error {
	ln := bt.lanes[class]
	// Byte admission first: reserve this call's output commitment, and shed
	// if the reservation overshoots the lane budget. The add-then-check keeps
	// the bound exact under concurrent admission (two racing reservations
	// cannot both read a pre-reservation total and slip past the budget).
	if ln.bytes.Add(ln.callBytes) > bt.eng.cfg.QueueBytes {
		ln.bytes.Add(-ln.callBytes)
		bt.eng.sheds.Add(1)
		bt.eng.shedByClass[class].Add(1)
		return ErrOverloaded
	}
	select {
	case ln.ch <- c:
		ln.admitted.Add(1)
		// High-water mark: approximate under concurrency (len can lag), but
		// the hard bound is the channel capacity itself.
		if d := int64(len(ln.ch)); d > ln.peak.Load() {
			ln.peak.Store(d)
		}
		return nil
	default:
		ln.bytes.Add(-ln.callBytes)
		bt.eng.sheds.Add(1)
		bt.eng.shedByClass[class].Add(1)
		return ErrOverloaded
	}
}

// pool returns the worker pool this lane sweeps on: full width for
// interactive, the width-limited slice for batch.
func (ln *lane) pool() *runtime.Pool {
	if ln.class == ClassBatch {
		return ln.eng.batchPool
	}
	return ln.eng.pool
}

func (ln *lane) loop() {
	defer ln.eng.wg.Done()
	for {
		first, ok := <-ln.ch
		if !ok {
			return
		}
		calls := []*call{first}
		timer := time.NewTimer(ln.eng.cfg.BatchWindow)
	gather:
		for len(calls) < ln.eng.cfg.MaxBatch {
			select {
			case c, ok := <-ln.ch:
				if !ok {
					break gather // closed: run what we have; next recv exits
				}
				calls = append(calls, c)
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		ln.run(calls)
	}
}

// run sweeps one gathered batch. The deadline filter runs first: calls whose
// context is already done are answered with the context error and counted as
// deadline sheds — their inputs never reach the compute sweep. The deadline
// is additionally checked against the clock directly: a context's Err() only
// flips when its timer fires, and on a loaded machine the timer can lag the
// wall-clock deadline — the contract is "expired at sweep start", not
// "expired and the runtime noticed". start is taken before the filter, so
// the executed-expired tripwire below can never fire unless the filter
// itself is broken.
func (ln *lane) run(calls []*call) {
	// Every gathered call releases its byte reservation here — completed,
	// deadline-shed, and drain-on-close alike all pass through run.
	defer ln.bytes.Add(-int64(len(calls)) * ln.callBytes)
	start := time.Now()
	alive := calls[:0]
	for _, c := range calls {
		err := c.ctx.Err()
		if err == nil {
			if dl, ok := c.ctx.Deadline(); ok && !dl.After(start) {
				err = context.DeadlineExceeded
			}
		}
		if err != nil {
			ln.eng.deadlineSheds.Add(1)
			c.resp <- batchResult{err: err}
			continue
		}
		alive = append(alive, c)
	}
	if len(alive) == 0 {
		return // the whole batch died in the queue: skip the sweep entirely
	}
	inputs := make([]*tensor.Tensor, len(alive))
	for i, c := range alive {
		inputs[i] = c.input
	}
	outs := ln.cm.runBatch(ln.pool(), inputs)
	runMs := float64(time.Since(start).Nanoseconds()) / 1e6
	ln.eng.batches.Add(1)
	ln.eng.ranRequests.Add(uint64(len(alive)))
	if len(alive) > 1 {
		ln.eng.batchedRequests.Add(uint64(len(alive)))
	}
	for i, c := range alive {
		// Tripwire for the deadline contract: a delivered result whose
		// deadline predates the sweep start means an expired request burned
		// compute — the filter above exists to keep this at zero.
		if dl, ok := c.ctx.Deadline(); ok && dl.Before(start) {
			ln.eng.expiredExecuted.Add(1)
		}
		c.resp <- batchResult{
			out:     outs[i],
			size:    len(alive),
			queueMs: float64(start.Sub(c.enqueued).Nanoseconds()) / 1e6,
			runMs:   runMs,
		}
	}
}
