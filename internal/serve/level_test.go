package serve

// Plan-cache keying and lifecycle tests for the level-aware cache: the
// optimization level is part of the plan key, so two requests differing only
// in level must compile (and batch) independently — and the engine must stay
// correct when /infer traffic hammers it while Close drains.

import (
	"context"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPlanCacheKeyedByLevel(t *testing.T) {
	eng := tinyEngine(t, Config{Workers: 2})
	ctx := context.Background()
	req := func(level string) Request {
		return Request{Network: "tiny", Dataset: "synthetic", Input: tinyInput(3), Level: level}
	}

	// Same model, three levels: the default (auto, compiled by RegisterModel)
	// plus two explicit ones. Each explicit level is a fresh compile — two
	// models differing only in optimization level must not share a plan.
	base, err := eng.Infer(ctx, req(""))
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := eng.Infer(ctx, req("tuned"))
	if err != nil {
		t.Fatal(err)
	}
	packed, err := eng.Infer(ctx, req("packed"))
	if err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.PlanCompiles != 3 {
		t.Fatalf("PlanCompiles = %d, want 3 (auto + tuned + packed are distinct cache entries)", s.PlanCompiles)
	}
	// Re-request each level: all hits, no new compiles.
	for _, lv := range []string{"", "tuned", "packed", "auto"} {
		if _, err := eng.Infer(ctx, req(lv)); err != nil {
			t.Fatal(err)
		}
	}
	s = eng.Stats()
	if s.PlanCompiles != 3 {
		t.Fatalf("PlanCompiles grew to %d on re-request, want 3", s.PlanCompiles)
	}
	if s.LevelHits["auto"] < 2 || s.LevelHits["tuned"] != 1 || s.LevelHits["packed"] != 1 {
		t.Fatalf("LevelHits = %v, want auto>=2 tuned=1 packed=1", s.LevelHits)
	}

	// All levels must agree on the answer (they share one reference
	// semantics; accumulation order may differ in float32).
	for i := range base.Output {
		if d := float64(base.Output[i] - tuned.Output[i]); math.Abs(d) > 1e-4 {
			t.Fatalf("auto vs tuned differ at %d by %g", i, d)
		}
		if d := float64(base.Output[i] - packed.Output[i]); math.Abs(d) > 1e-4 {
			t.Fatalf("auto vs packed differ at %d by %g", i, d)
		}
	}

	// The cache listing shows each level as its own artifact.
	ms := eng.Models()
	if len(ms) != 3 {
		t.Fatalf("Models() = %d entries, want 3 (one per level)", len(ms))
	}
	levels := map[string]bool{}
	for _, m := range ms {
		levels[m.Level] = true
	}
	if !levels["auto"] || !levels["tuned"] || !levels["packed"] {
		t.Fatalf("Models() levels = %v, want auto/tuned/packed", levels)
	}
}

func TestInferRejectsUnknownLevel(t *testing.T) {
	eng := tinyEngine(t, Config{Workers: 1})
	_, err := eng.Infer(context.Background(),
		Request{Network: "tiny", Dataset: "synthetic", Level: "warp-speed"})
	if err == nil || !strings.Contains(err.Error(), "unknown level") {
		t.Fatalf("err = %v, want unknown-level error", err)
	}
}

func TestRegisterModelCanonicalizesLevel(t *testing.T) {
	// A non-canonical (but valid) Config.Level spelling must land the eager
	// RegisterModel compile on the same cache key Infer resolves to.
	eng := New(Config{Workers: 1, Level: "Tuned"})
	defer eng.Close()
	if err := eng.RegisterModel(tinyModel("tiny", "synthetic")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Infer(context.Background(),
		Request{Network: "tiny", Dataset: "synthetic"}); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.PlanCompiles != 1 || s.PlanHits != 1 {
		t.Fatalf("PlanCompiles=%d PlanHits=%d, want 1/1 (no recompile under canonical tag)", s.PlanCompiles, s.PlanHits)
	}
	if ms := eng.Models(); len(ms) != 1 || ms[0].Level != "tuned" {
		t.Fatalf("Models() = %+v, want one entry at canonical tag \"tuned\"", ms)
	}
}

func TestEngineExplicitLevelConfig(t *testing.T) {
	// A pinned-level engine compiles at exactly that level.
	eng := New(Config{Workers: 1, Level: "packed"})
	defer eng.Close()
	if err := eng.RegisterModel(tinyModel("tiny", "synthetic")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Infer(context.Background(),
		Request{Network: "tiny", Dataset: "synthetic"}); err != nil {
		t.Fatal(err)
	}
	ms := eng.Models()
	if len(ms) != 1 || ms[0].Level != "packed" {
		t.Fatalf("Models() = %+v, want one packed entry", ms)
	}
}

// TestInferHammerWhileCloseDrains drives concurrent /infer traffic into the
// engine and closes it mid-stream: every call must either complete or return
// ErrClosed — no hangs, no panics, no sends on closed channels. Run under
// -race this also exercises the batcher drain against the pooled buffers.
func TestInferHammerWhileCloseDrains(t *testing.T) {
	eng := New(Config{Workers: 2, MaxBatch: 4, BatchWindow: 200 * time.Microsecond})
	if err := eng.RegisterModel(tinyModel("tiny", "synthetic")); err != nil {
		t.Fatal(err)
	}
	const clients = 12
	var (
		wg        sync.WaitGroup
		completed atomic.Uint64
		rejected  atomic.Uint64
	)
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for j := 0; ; j++ {
				r, err := eng.Infer(context.Background(),
					Request{Network: "tiny", Dataset: "synthetic", Input: tinyInput(i + j)})
				if err != nil {
					if err != ErrClosed {
						t.Errorf("client %d: %v", i, err)
					}
					rejected.Add(1)
					return
				}
				if r.Shape != [3]int{4, 1, 1} {
					t.Errorf("client %d: shape %v", i, r.Shape)
					return
				}
				completed.Add(1)
			}
		}(i)
	}
	close(start)
	time.Sleep(10 * time.Millisecond) // let traffic build up
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if completed.Load() == 0 {
		t.Fatal("no request completed before Close — the hammer never hit")
	}
	if rejected.Load() != clients {
		t.Fatalf("%d clients saw ErrClosed, want all %d", rejected.Load(), clients)
	}
	// The engine is fully drained: a straggler still gets a clean rejection.
	if _, err := eng.Infer(context.Background(),
		Request{Network: "tiny", Dataset: "synthetic"}); err != ErrClosed {
		t.Fatalf("post-drain Infer = %v, want ErrClosed", err)
	}
}
