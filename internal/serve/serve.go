// Package serve is the concurrent inference engine: the compile-once /
// execute-many layer PatDNN's offline compilation story implies (paper §4,
// Figure 7 — the "compact model" plus generated code is produced once, then
// executed for every inference on the phone).
//
// The Engine compiles a network exactly once per (network, dataset,
// pattern-set, connectivity-rate, optimization-level) key — running the whole
// pattern-pruning + FKR + FKW + codegen path — and caches the resulting plan
// stack. Inference requests against a cached model are gathered into batches
// (up to Config.MaxBatch requests within Config.BatchWindow) and executed as
// one batched layer sweep over the shared worker pool: each conv layer runs a
// single ParallelFor across batch×output-channels, so kernel plans, packed
// FKW weights, and the pool's threads stay hot across the whole request
// stream, amortizing compilation and scheduling the way GRIM and PCONV argue
// a reusable sparse-inference framework should.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/execgraph"
	"patdnn/internal/compiler/tuner/tunedb"
	"patdnn/internal/model"
	"patdnn/internal/registry"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

// ErrClosed is returned by Infer after Close.
var ErrClosed = errors.New("serve: engine closed")

// LevelAuto is the Config.Level / Request.Level spelling for "let the tuner's
// estimator pick per layer" — the engine default.
const LevelAuto = "auto"

// maxTimeoutMs bounds Request.TimeoutMs (~1 day in ms): far beyond any sane
// inference deadline, far inside the range where the float→Duration
// conversion stays exact and positive.
const maxTimeoutMs = 86_400_000

// Config parameterizes an Engine. The zero value selects sensible defaults.
type Config struct {
	Workers     int           // worker-pool size (<=0 selects GOMAXPROCS)
	MaxBatch    int           // max requests fused into one layer sweep (default 8)
	BatchWindow time.Duration // how long the first request waits for company (default 2ms)
	Patterns    int           // pattern-set size (default 8)
	ConnRate    float64       // connectivity pruning rate (default 3.6)
	// Level is the kernel optimization level ("noopt", "reorder", "lre",
	// "tuned", "packed", "packedq8"). Empty / LevelAuto lets the tuner's estimator pick
	// per layer between the tuned dense-layout kernels and the packed
	// FKW-direct backend.
	Level string
	Seed  int64 // deterministic weight-generation seed (default 42)
	// QueueDepth bounds each per-model, per-class request queue. A request
	// arriving at a full queue is shed immediately with ErrOverloaded rather
	// than queued behind work it can't wait out. Default max(64, 8*MaxBatch).
	QueueDepth int
	// QueueBytes bounds the output bytes each lane may have committed to
	// queued requests (4 bytes × the plan's output elements per call). A
	// classifier's 10-float output never approaches it, but an image-to-image
	// model emits whole feature maps — e.g. 3×64×64 ≈ 48 KiB per request — so
	// a slot-count bound alone would let one lane commit to hundreds of
	// megabytes of response tensors. A request whose output would push the
	// lane past the budget is shed with ErrOverloaded, exactly like a full
	// queue. Default 64 MiB per lane.
	QueueBytes int64
	// BatchWorkers caps the worker-pool width batch-class sweeps may use, so
	// canary/bench traffic cannot monopolize the compute interactive traffic
	// needs. Default max(1, Workers/4); values above Workers are clamped.
	BatchWorkers int
	// TuningDB is the path of the persistent auto-tuning sidecar (e.g.
	// <models-dir>/tuning.json). When set — or when BackgroundTune is on —
	// every plan compile consults the DB before running tuning heuristics and
	// records its decisions, so recompiles of known layers (lazy reloads
	// after LRU eviction, warm restarts) do zero search work. Empty with
	// BackgroundTune off disables the tuning subsystem entirely.
	TuningDB string
	// BackgroundTune starts the background tuning worker: off the hot path it
	// re-searches packed-layer configurations with measured (wall-clock)
	// evaluation, records winners in the tuning DB, and hot-swaps improved
	// plans through the same atomic-swap machinery registry hot reloads use.
	BackgroundTune bool
	// TuneInterval is the background worker's round period (default 15s).
	TuneInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch < 1 {
		c.MaxBatch = 8
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.Patterns <= 0 {
		c.Patterns = 8
	}
	if c.ConnRate <= 0 {
		c.ConnRate = 3.6
	}
	if c.Level == "" {
		c.Level = LevelAuto
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 8 * c.MaxBatch
		if c.QueueDepth < 64 {
			c.QueueDepth = 64
		}
	}
	if c.QueueBytes < 1 {
		c.QueueBytes = 64 << 20
	}
	if c.TuneInterval <= 0 {
		c.TuneInterval = 15 * time.Second
	}
	return c
}

// resolveLevelTag canonicalizes a level name into the tag plan-cache keys and
// stats counters use; "" means "engine default".
func (e *Engine) resolveLevelTag(s string) (string, error) {
	if s == "" {
		s = e.cfg.Level
	}
	// Accept the same spelling freedom ParseLevel gives the named levels.
	if strings.EqualFold(strings.TrimSpace(s), LevelAuto) {
		return LevelAuto, nil
	}
	lv, err := codegen.ParseLevel(s)
	if err != nil {
		return "", fmt.Errorf("serve: unknown level %q (want noopt, reorder, lre, tuned, packed, or auto)", s)
	}
	return codegen.LevelTag(lv), nil
}

// Request is one inference call.
type Request struct {
	// Network names a paper model ("VGG", "RNT", "MBNT" or the full names
	// model.ByName accepts) or a RegisterModel key.
	Network string `json:"network"`
	// Dataset is "imagenet" or "cifar10" (or the registered model's dataset).
	Dataset string `json:"dataset"`
	// Input is the flattened [InC,InH,InW] image; nil selects a
	// deterministic synthetic input.
	Input []float32 `json:"input,omitempty"`
	// Level optionally overrides the engine's optimization level for this
	// request ("noopt", "reorder", "lre", "tuned", "packed", "packedq8", "auto"). Each
	// level compiles and caches its own plan stack — the level is part of the
	// plan-cache key.
	Level string `json:"level,omitempty"`
	// Class is the scheduling class: "interactive" (default) for
	// latency-sensitive traffic, "batch" for background traffic that rides
	// the width-limited batch lane and can never starve interactive work.
	Class string `json:"class,omitempty"`
	// TimeoutMs attaches a server-side deadline to this request (in
	// milliseconds): if the deadline passes while the request is queued, the
	// batcher sheds it before the sweep instead of burning compute on an
	// answer nobody is waiting for. 0 means no server-side deadline beyond
	// whatever the caller's ctx carries.
	TimeoutMs float64 `json:"timeout_ms,omitempty"`
}

// Response reports one completed inference.
type Response struct {
	Network string `json:"network"`
	Dataset string `json:"dataset,omitempty"`
	// Version is the registry version that served the request ("" for
	// generator models). Under a weighted route this reveals which canary
	// leg the request rode.
	Version string `json:"version,omitempty"`
	// Level is the optimization-level tag of the plan stack that served the
	// request ("packedq8" for quantized artifacts) — the ground truth for
	// what kernels actually ran, whatever the request asked for.
	Level     string    `json:"level,omitempty"`
	Shape     [3]int    `json:"shape"`      // output [C,H,W]
	Output    []float32 `json:"output"`     // flattened feature map
	ArgMax    int       `json:"argmax"`     // index of the max output element
	BatchSize int       `json:"batch_size"` // size of the batch this request rode in
	QueueMs   float64   `json:"queue_ms"`   // enqueue → batch start
	RunMs     float64   `json:"run_ms"`     // batched sweep wall-clock
}

// Stats is a snapshot of the engine counters.
type Stats struct {
	Requests uint64 `json:"requests"`
	// Errors counts hard failures only — unknown models, bad inputs, compile
	// errors, requests rejected by a closed engine. Intentional scheduler
	// outcomes (load sheds, deadline expiry, caller cancellation) are by
	// design, normal under overload, and counted in their own fields below;
	// folding them in here would page operators on healthy admission control.
	Errors          uint64  `json:"errors"`
	Batches         uint64  `json:"batches"`
	BatchedRequests uint64  `json:"batched_requests"` // requests that shared a batch with >=1 other
	PlanCompiles    uint64  `json:"plan_compiles"`    // plan-cache misses (models compiled)
	PlanHits        uint64  `json:"plan_hits"`        // plan-cache hits
	Workers         int     `json:"workers"`
	BatchWorkers    int     `json:"batch_workers"` // pool width granted to batch-class sweeps
	AvgBatch        float64 `json:"avg_batch"`     // Requests-that-ran / Batches
	// Shed counts requests rejected at admission because their class lane was
	// full (ErrOverloaded — the 429 fast-fail), split by class below.
	Shed        uint64            `json:"shed"`
	ShedByClass map[string]uint64 `json:"shed_by_class,omitempty"`
	// DeadlineSheds counts queued calls dropped at sweep time because their
	// context was already done (deadline expired or caller cancelled): they
	// are answered with the context error and never reach compute.
	DeadlineSheds uint64 `json:"deadline_sheds"`
	// ExpiredExecuted is the deadline contract's tripwire: requests that
	// executed even though their deadline had passed before the sweep
	// started. It must stay zero; the loadgen E2E harness asserts it.
	ExpiredExecuted uint64 `json:"expired_executed"`
	// Queues snapshots every live lane's bounded queue: current depth (never
	// above capacity), the configured capacity, and the high-water mark.
	Queues []QueueStat `json:"queues,omitempty"`
	// Admitted is the cumulative per-model, per-class admission count, keyed
	// "network[/dataset]/class". Unlike Queues (whose rows are scoped to one
	// artifact's lanes and vanish when a registry hot-reload swap or eviction
	// retires the batcher), these totals fold in every retired lane's count:
	// they are monotonic across swaps, which is what makes a fleet-wide sum
	// of replica /stats snapshots monotonic too.
	Admitted map[string]uint64 `json:"admitted,omitempty"`
	// LevelHits counts plan-cache hits per optimization-level tag ("auto",
	// "tuned", "packed", ...): the level is part of the cache key, so this
	// shows which kernel generations the request stream is actually riding.
	LevelHits map[string]uint64 `json:"level_hits,omitempty"`
	// Registry snapshots the attached model registry's counters (scans,
	// hot reloads, evictions, resident bytes); nil when no registry is
	// attached.
	Registry *registry.Stats `json:"registry,omitempty"`
	// Tuning snapshots the persistent auto-tuning subsystem (nil when
	// disabled): tuning-DB traffic plus the background worker's counters.
	// All counters are monotonic for the engine's lifetime.
	Tuning *TuningStats `json:"tuning,omitempty"`
}

// TuningStats reports the tuning DB's counters and the background tuning
// worker's activity.
type TuningStats struct {
	// DB is the tuning store snapshot: entry count, lookup hits/misses,
	// records written, entries quarantined by the checked reader, and any
	// whole-file load error.
	DB tunedb.Stats `json:"db"`
	// BackgroundSearches counts measured GA searches the background worker
	// completed; Swaps counts the plan hot-swaps those searches earned.
	BackgroundSearches uint64 `json:"background_searches"`
	Swaps              uint64 `json:"swaps"`
}

// ModelInfo describes one compiled (cached) model — a generator-path plan
// cache entry, or a registry-backed .patdnn version.
type ModelInfo struct {
	Network string `json:"network"`
	Dataset string `json:"dataset,omitempty"`
	// Version and the fields after it describe registry-backed models:
	// version tag, whether its compiled plan stack is currently resident,
	// its byte footprint, and when it last served a request.
	Version     string  `json:"version,omitempty"`
	Source      string  `json:"source"` // "generator" or "registry"
	Level       string  `json:"level"`  // optimization-level tag of this plan stack
	ConvLayers  int     `json:"conv_layers"`
	InputShape  [3]int  `json:"input_shape,omitzero"`
	OutputShape [3]int  `json:"output_shape,omitzero"`
	Compression float64 `json:"compression,omitzero"` // total weights / surviving weights
	// FusedOps counts what the graph compiler fused away in this plan: BNs
	// folded into conv weights, ReLUs riding conv/fc epilogues, residual
	// adds absorbed into bottleneck-tail convs.
	FusedOps execgraph.FusedOps `json:"fused_ops,omitzero"`
	// ArenaBytes is the liveness-planned per-inference activation arena.
	ArenaBytes  int64     `json:"arena_bytes,omitzero"`
	Loaded      bool      `json:"loaded"`
	MemoryBytes int64     `json:"memory_bytes,omitzero"`
	LastUsed    time.Time `json:"last_used,omitzero"`
}

type modelKey struct {
	short, dataset string
	// level is the canonical optimization-level tag ("auto", "tuned",
	// "packed", ...). Two cache entries differing only in level are distinct
	// compiled artifacts — their plans hold different kernels.
	level string
}

// laneKey identifies a model's scheduling lane independent of artifact
// version: the granularity at which cumulative admission counts survive
// registry hot-reload swaps.
type laneKey struct {
	network, dataset string
	class            Class
}

// laneCarry is the folded residue of retired lanes under one laneKey.
type laneCarry struct {
	admitted uint64
	peak     int64
}

// admittedKey is the Stats.Admitted map spelling of a laneKey.
func (k laneKey) admittedKey() string {
	s := k.network
	if k.dataset != "" {
		s += "/" + k.dataset
	}
	return s + "/" + k.class.String()
}

type modelEntry struct {
	once    sync.Once
	ready   atomic.Bool                    // set inside once: cm/err safe to read when true
	gate    atomic.Bool                    // a Preload/RegisterModel compile: blocks /readyz until done
	compile func() (*compiledModel, error) // fixed at creation; run by the first get
	cm      *compiledModel
	err     error
}

// get runs the entry's compile exactly once and returns the cached result;
// concurrent callers block until the first compile finishes.
func (en *modelEntry) get() (*compiledModel, error) {
	en.once.Do(func() {
		en.cm, en.err = en.compile()
		en.ready.Store(true)
	})
	return en.cm, en.err
}

// snapshot returns the compiled result without blocking: ok is false while
// the first compile is still in flight (the ready flag's store inside the
// once body orders the cm/err writes before any reader that observes true).
func (en *modelEntry) snapshot() (cm *compiledModel, err error, ok bool) {
	if !en.ready.Load() {
		return nil, nil, false
	}
	return en.cm, en.err, true
}

// Engine is the concurrent inference engine. Create with New; it is safe for
// use by any number of goroutines.
type Engine struct {
	cfg  Config
	pool *runtime.Pool
	// batchPool is the width-limited view of pool that batch-class sweeps
	// run on (Config.BatchWorkers), so background traffic is capped rather
	// than competing at full width with interactive sweeps.
	batchPool *runtime.Pool

	mu     sync.Mutex // guards models/registered/batchers maps + levelHits + reg + aliases
	models map[modelKey]*modelEntry
	// registered keeps custom descriptors by (short, dataset) so a request
	// with an explicit level override can compile a registered model at that
	// level too.
	registered map[[2]string]*model.Model
	// aliases memoizes (request network, dataset) → the canonical (Short,
	// Dataset) model.ByName resolved it to, so alias-named requests ("vgg16",
	// "VGG-16") hit the plan cache directly instead of re-running descriptor
	// construction on the hot path.
	aliases map[[2]string][2]string
	// batchers is keyed by the compiled artifact itself: generator-path
	// entries hold one stable compiledModel per cache key, while registry
	// models swap artifacts on hot reload — the new version gets its own
	// batcher and the retired one drains and exits (see retireBatcher).
	batchers  map[*compiledModel]*batcher
	levelHits map[string]uint64 // plan-cache hits per level tag
	// laneCarry accumulates the admission counts (and queue peaks) of lanes
	// whose batcher has been retired — hot-reload swaps, evictions, removals —
	// keyed by (network, dataset, class) so the per-model cumulative totals in
	// Stats.Admitted survive any number of version swaps.
	laneCarry map[laneKey]laneCarry
	// reg is the attached model registry (nil unless WithRegistry was
	// called): disk-backed versioned .patdnn artifacts the engine resolves
	// Request.Network against before falling back to the generator path.
	reg *registry.Registry

	// tdb is the persistent tuning DB every plan compile consults (nil when
	// the tuning subsystem is disabled); tuneStop/tuneWG manage the
	// background tuning worker when Config.BackgroundTune is set.
	tdb        *tunedb.DB
	tuneStop   chan struct{}
	tuneWG     sync.WaitGroup
	bgSearches atomic.Uint64
	bgSwaps    atomic.Uint64

	// lifecycle serializes Close against in-flight enqueues: enqueuers hold
	// the read side across the channel send, Close takes the write side
	// before closing batcher channels, so a send never hits a closed channel
	// and every accepted request gets a response.
	lifecycle sync.RWMutex
	closed    bool
	wg        sync.WaitGroup

	requests        atomic.Uint64
	errs            atomic.Uint64
	batches         atomic.Uint64
	ranRequests     atomic.Uint64
	batchedRequests atomic.Uint64
	planCompiles    atomic.Uint64
	planHits        atomic.Uint64
	sheds           atomic.Uint64
	shedByClass     [numClasses]atomic.Uint64
	deadlineSheds   atomic.Uint64
	expiredExecuted atomic.Uint64
}

// New creates an Engine and its worker pool. Models compile lazily on first
// use (or eagerly via Preload) and stay cached until Close.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	pool := runtime.NewPool(cfg.Workers)
	bw := cfg.BatchWorkers
	if bw < 1 {
		bw = pool.Workers() / 4
		if bw < 1 {
			bw = 1
		}
	}
	e := &Engine{
		cfg:        cfg,
		pool:       pool,
		batchPool:  pool.Limit(bw),
		models:     make(map[modelKey]*modelEntry),
		registered: make(map[[2]string]*model.Model),
		aliases:    make(map[[2]string][2]string),
		batchers:   make(map[*compiledModel]*batcher),
		levelHits:  make(map[string]uint64),
		laneCarry:  make(map[laneKey]laneCarry),
	}
	if cfg.TuningDB != "" || cfg.BackgroundTune {
		// An empty path with background tuning on gives an in-memory DB: the
		// worker's measured winners still steer recompiles, just not across
		// restarts.
		e.tdb = tunedb.Open(cfg.TuningDB)
	}
	if cfg.BackgroundTune {
		e.tuneStop = make(chan struct{})
		e.tuneWG.Add(1)
		go e.tuneLoop()
	}
	return e
}

// Preload compiles a model into the plan cache (at the engine's default
// level) without running inference, so the first request doesn't pay
// compilation latency. A preload in flight gates Readiness (lazy
// request-triggered compiles do not).
func (e *Engine) Preload(network, dataset string) error {
	_, _, err := e.compiled(network, dataset, "", true)
	return err
}

// newEntry creates a cache entry that compiles m at the level the tag names
// ("auto" defers the per-layer choice to the tuner's estimator). Callers hold
// e.mu.
func (e *Engine) newEntry(m *model.Model, tag string) *modelEntry {
	return &modelEntry{compile: func() (*compiledModel, error) { return e.compileModel(m, tag) }}
}

// RegisterModel compiles a custom network descriptor into the plan cache
// under its (Short, Dataset, default level) key, so Infer can address
// networks beyond the three paper models (and tests can use small fixtures).
// Registering a key that is already cached is an error. The descriptor is
// retained so requests with an explicit level override can compile the model
// at other levels on demand.
func (e *Engine) RegisterModel(m *model.Model) error {
	// Canonicalize the configured level so the eager compile lands on the
	// same key Infer's lookups resolve to (Config.Level accepts the same
	// spellings ParseLevel does, e.g. "Tuned" or "fkw").
	tag, err := e.resolveLevelTag("")
	if err != nil {
		return err
	}
	key := modelKey{m.Short, m.Dataset, tag}
	nameKey := [2]string{m.Short, m.Dataset}
	e.mu.Lock()
	if _, ok := e.models[key]; ok {
		e.mu.Unlock()
		return fmt.Errorf("serve: model %s/%s already registered", m.Short, m.Dataset)
	}
	entry := e.newEntry(m, key.level)
	entry.gate.Store(true) // an explicit registration gates readiness like a preload
	e.models[key] = entry
	e.registered[nameKey] = m
	e.planCompiles.Add(1)
	e.mu.Unlock()
	_, err = entry.get()
	if err != nil {
		// Evict the failed entry so a corrected descriptor can re-register
		// under the same key.
		e.mu.Lock()
		if e.models[key] == entry {
			delete(e.models, key)
			delete(e.registered, nameKey)
		}
		e.mu.Unlock()
	}
	return err
}

// compiled resolves the network name and level tag and returns the cached
// compiled model, compiling it exactly once per (network, dataset, level)
// key. Registered custom models match by exact (network, dataset); the paper
// networks additionally match every alias model.ByName accepts. gate marks
// the compile as readiness-gating (Preload): a pending gated compile keeps
// /readyz at 503, while a lazy request-triggered compile on a serving engine
// does not.
func (e *Engine) compiled(network, dataset, level string, gate bool) (modelKey, *compiledModel, error) {
	tag, err := e.resolveLevelTag(level)
	if err != nil {
		return modelKey{}, nil, err
	}
	key := modelKey{network, dataset, tag}
	e.mu.Lock()
	entry, ok := e.models[key]
	if !ok {
		// An alias-named request ("vgg16", "VGG-16") whose canonical key was
		// resolved before: rewrite the key instead of re-running model.ByName
		// descriptor construction per request on the hot path.
		if canon, hit := e.aliases[[2]string{network, dataset}]; hit {
			key = modelKey{canon[0], canon[1], tag}
			entry, ok = e.models[key]
		}
	}
	if !ok {
		// A registered custom model requested at a not-yet-compiled level:
		// compile its retained descriptor at that level.
		if m, reg := e.registered[[2]string{key.short, key.dataset}]; reg {
			entry = e.newEntry(m, tag)
			entry.gate.Store(gate)
			e.models[key] = entry
			e.planCompiles.Add(1)
			e.mu.Unlock()
			cm, cerr := entry.get()
			return key, cm, cerr
		}
	}
	if ok {
		if gate {
			entry.gate.Store(true)
		}
		e.planHits.Add(1)
		e.levelHits[tag]++
		e.mu.Unlock()
		cm, err := entry.get() // waits out a concurrent first compile
		return key, cm, err
	}
	e.mu.Unlock()

	// The model builders panic on datasets they don't know; reject
	// client-supplied garbage with an error instead.
	if dataset != "imagenet" && dataset != "cifar10" {
		return modelKey{}, nil, fmt.Errorf("serve: unknown dataset %q (want imagenet or cifar10, or a registered model's dataset)", dataset)
	}
	m, err := model.ByName(network, dataset)
	if err != nil {
		return modelKey{}, nil, err
	}
	key = modelKey{m.Short, m.Dataset, tag}
	e.mu.Lock()
	// Remember the alias so the next request under this spelling short-
	// circuits to the canonical key (and counts as a plan hit).
	if network != m.Short || dataset != m.Dataset {
		e.aliases[[2]string{network, dataset}] = [2]string{m.Short, m.Dataset}
	}
	entry, ok = e.models[key]
	if ok {
		if gate {
			entry.gate.Store(true)
		}
		e.planHits.Add(1)
		e.levelHits[tag]++
	} else {
		entry = e.newEntry(m, tag)
		entry.gate.Store(gate)
		e.models[key] = entry
		e.planCompiles.Add(1)
	}
	e.mu.Unlock()
	cm, cerr := entry.get()
	return key, cm, cerr
}

// batcherFor returns (creating if needed) the per-artifact batcher and its
// two lane goroutines.
func (e *Engine) batcherFor(cm *compiledModel) *batcher {
	e.mu.Lock()
	defer e.mu.Unlock()
	if bt, ok := e.batchers[cm]; ok {
		return bt
	}
	e.wg.Add(int(numClasses))
	bt := newBatcher(e, cm)
	e.batchers[cm] = bt
	return bt
}

// Infer runs one inference. Requests for the same model and class arriving
// within the batch window execute together as a single batched layer sweep;
// ctx cancellation abandons the wait, and a deadline that expires while the
// request is queued sheds it before it reaches compute. A full class queue
// sheds immediately with ErrOverloaded.
func (e *Engine) Infer(ctx context.Context, req Request) (*Response, error) {
	e.requests.Add(1)
	resp, err := e.infer(ctx, req)
	if err != nil && !errors.Is(err, ErrOverloaded) &&
		!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		e.errs.Add(1)
	}
	return resp, err
}

func (e *Engine) infer(ctx context.Context, req Request) (*Response, error) {
	// Fast-fail before compiling anything: a straggler request after Close
	// must not burn seconds populating a plan cache that can never serve.
	e.lifecycle.RLock()
	closed := e.closed
	e.lifecycle.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	class, err := ParseClass(req.Class)
	if err != nil {
		return nil, err
	}
	// Reject malformed deadlines up front (negative, NaN, or beyond the
	// duration range): converting them would yield an already-expired or
	// wrapped context and misreport client garbage as a deadline shed. The
	// negated comparison catches NaN too.
	if !(req.TimeoutMs >= 0 && req.TimeoutMs <= maxTimeoutMs) {
		return nil, fmt.Errorf("serve: timeout_ms %g outside [0, %g]", req.TimeoutMs, float64(maxTimeoutMs))
	}
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs*float64(time.Millisecond)))
		defer cancel()
	}
	cm, err := e.resolveModel(req)
	if err != nil {
		return nil, err
	}
	in, err := cm.inputTensor(req.Input)
	if err != nil {
		return nil, err
	}
	return e.dispatch(ctx, cm, in, class)
}

// dispatch executes one prepared input against a compiled artifact: through
// the artifact's class lane normally, or as a direct unbatched sweep when the
// artifact was retired between resolution and enqueue (a straggler racing a
// hot swap or eviction — creating a batcher for it would leak, since its
// Release has already fired).
func (e *Engine) dispatch(ctx context.Context, cm *compiledModel, in *tensor.Tensor, class Class) (*Response, error) {
	// A request that is already dead never enters a queue.
	if err := ctx.Err(); err != nil {
		e.deadlineSheds.Add(1)
		return nil, err
	}
	c := &call{ctx: ctx, input: in, resp: make(chan batchResult, 1), enqueued: time.Now()}

	// The closed check, retirement check, batcher creation, and lane send all
	// happen under the lifecycle read lock: neither Close nor retireBatcher
	// (both take the write side) can slip between them, so no lane goroutine
	// is ever spawned after Close started, no send hits a closed channel, and
	// a batcher created here cannot have missed its retirement.
	e.lifecycle.RLock()
	if e.closed {
		e.lifecycle.RUnlock()
		return nil, ErrClosed
	}
	if cm.retired.Load() {
		e.lifecycle.RUnlock()
		// The straggler's lane is already gone; fold its admission straight
		// into the carry so the model's cumulative count stays exact.
		e.mu.Lock()
		k := laneKey{cm.model.Short, cm.model.Dataset, class}
		lc := e.laneCarry[k]
		lc.admitted++
		e.laneCarry[k] = lc
		e.mu.Unlock()
		start := time.Now()
		pool := e.pool
		if class == ClassBatch {
			pool = e.batchPool
		}
		outs := cm.runBatch(pool, []*tensor.Tensor{in})
		e.batches.Add(1)
		e.ranRequests.Add(1)
		return cm.response(outs[0], batchResult{
			size:    1,
			queueMs: float64(start.Sub(c.enqueued).Nanoseconds()) / 1e6,
			runMs:   float64(time.Since(start).Nanoseconds()) / 1e6,
		}), nil
	}
	bt := e.batcherFor(cm)
	err := bt.enqueue(c, class)
	e.lifecycle.RUnlock()
	if err != nil {
		return nil, err
	}

	select {
	case r := <-c.resp:
		if r.err != nil {
			return nil, r.err
		}
		return cm.response(r.out, r), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// response assembles the Response for one completed inference.
func (cm *compiledModel) response(out *tensor.Tensor, r batchResult) *Response {
	return &Response{
		Network:   cm.model.Short,
		Dataset:   cm.model.Dataset,
		Version:   cm.version,
		Level:     cm.level,
		Shape:     [3]int{out.Dim(0), out.Dim(1), out.Dim(2)},
		Output:    out.Data,
		ArgMax:    out.ArgMax(),
		BatchSize: r.size,
		QueueMs:   r.queueMs,
		RunMs:     r.runMs,
	}
}

// Close stops the background tuner, drains every batcher, closes the attached
// registry (if any), persists the tuning DB, and stops the engine. In-flight
// requests complete; later Infer calls return ErrClosed. Close is idempotent.
func (e *Engine) Close() error {
	e.lifecycle.Lock()
	if e.closed {
		e.lifecycle.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Lock()
	for _, bt := range e.batchers {
		bt.closeLanes()
	}
	reg := e.reg
	e.mu.Unlock()
	e.lifecycle.Unlock()
	if e.tuneStop != nil {
		// The worker checks e.closed at its next step; closing the stop
		// channel also wakes it out of its ticker wait. A worker mid-swap is
		// safe: retireBatcher after Close is a no-op.
		close(e.tuneStop)
		e.tuneWG.Wait()
	}
	e.wg.Wait()
	if reg != nil {
		// After e.closed is set the registry's Release callbacks are no-ops,
		// so closing it here cannot race the batcher shutdown above.
		reg.Close()
	}
	if e.tdb != nil {
		// Best-effort persistence of decisions made since the last round;
		// the DB is an accelerator, so a failed save never fails Close.
		_ = e.tdb.Save()
	}
	return nil
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Requests:        e.requests.Load(),
		Errors:          e.errs.Load(),
		Batches:         e.batches.Load(),
		BatchedRequests: e.batchedRequests.Load(),
		PlanCompiles:    e.planCompiles.Load(),
		PlanHits:        e.planHits.Load(),
		Workers:         e.pool.Workers(),
		BatchWorkers:    e.batchPool.Workers(),
		Shed:            e.sheds.Load(),
		DeadlineSheds:   e.deadlineSheds.Load(),
		ExpiredExecuted: e.expiredExecuted.Load(),
	}
	if s.Shed > 0 {
		s.ShedByClass = make(map[string]uint64, int(numClasses))
		for cl := Class(0); cl < numClasses; cl++ {
			if n := e.shedByClass[cl].Load(); n > 0 {
				s.ShedByClass[cl.String()] = n
			}
		}
	}
	if s.Batches > 0 {
		s.AvgBatch = float64(e.ranRequests.Load()) / float64(s.Batches)
	}
	e.mu.Lock()
	if len(e.levelHits) > 0 {
		s.LevelHits = make(map[string]uint64, len(e.levelHits))
		for tag, n := range e.levelHits {
			s.LevelHits[tag] = n
		}
	}
	admitted := make(map[string]uint64, len(e.laneCarry)+len(e.batchers)*int(numClasses))
	for k, c := range e.laneCarry {
		if c.admitted > 0 {
			admitted[k.admittedKey()] += c.admitted
		}
	}
	for cm, bt := range e.batchers {
		for _, ln := range bt.lanes {
			s.Queues = append(s.Queues, QueueStat{
				Network: cm.model.Short, Dataset: cm.model.Dataset,
				Version: cm.version, Class: ln.class.String(),
				Depth: len(ln.ch), Capacity: cap(ln.ch), Peak: int(ln.peak.Load()),
				Admitted:    ln.admitted.Load(),
				QueuedBytes: ln.bytes.Load(), ByteCapacity: e.cfg.QueueBytes,
			})
			if n := ln.admitted.Load(); n > 0 {
				k := laneKey{cm.model.Short, cm.model.Dataset, ln.class}
				admitted[k.admittedKey()] += n
			}
		}
	}
	if len(admitted) > 0 {
		s.Admitted = admitted
	}
	sort.Slice(s.Queues, func(i, j int) bool {
		a, b := s.Queues[i], s.Queues[j]
		if a.Network != b.Network {
			return a.Network < b.Network
		}
		if a.Version != b.Version {
			return a.Version < b.Version
		}
		return a.Class < b.Class
	})
	reg := e.reg
	e.mu.Unlock()
	if reg != nil {
		rs := reg.Stats()
		s.Registry = &rs
	}
	if e.tdb != nil {
		s.Tuning = &TuningStats{
			DB:                 e.tdb.Stats(),
			BackgroundSearches: e.bgSearches.Load(),
			Swaps:              e.bgSwaps.Load(),
		}
	}
	return s
}

// Models lists the compiled models currently in the plan cache plus every
// registered disk version (with version, resident bytes, and last-used time),
// sorted by name for stable output.
func (e *Engine) Models() []ModelInfo {
	e.mu.Lock()
	entries := make([]*modelEntry, 0, len(e.models))
	for _, entry := range e.models {
		entries = append(entries, entry)
	}
	reg := e.reg
	e.mu.Unlock()
	var out []ModelInfo
	for _, entry := range entries {
		cm, err, ok := entry.snapshot()
		if !ok || err != nil || cm == nil { // still compiling, or failed
			continue
		}
		out = append(out, cm.info())
	}
	if reg != nil {
		tag, _ := e.resolveLevelTag("")
		for _, m := range reg.Models() {
			mi := ModelInfo{
				Network: m.Name, Version: m.Version, Source: "registry",
				Level: tag, ConvLayers: m.ConvLayers,
				Loaded: m.Loaded, MemoryBytes: m.Bytes, LastUsed: m.LastUsed,
			}
			// Resident artifacts describe their compiled plan (fused-op
			// counts, arena size, actual level) through the registry's detail
			// channel. The detail level wins over the engine default: a v3
			// quantized artifact compiles at packedq8 even under "auto".
			if d, ok := m.Detail.(artifactDetail); ok {
				mi.FusedOps, mi.ArenaBytes = d.Fused, d.ArenaBytes
				if d.Level != "" {
					mi.Level = d.Level
				}
			}
			out = append(out, mi)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Network != out[j].Network {
			return out[i].Network < out[j].Network
		}
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		if out[i].Version != out[j].Version {
			return registry.CompareVersions(out[i].Version, out[j].Version) < 0
		}
		return out[i].Level < out[j].Level
	})
	return out
}
