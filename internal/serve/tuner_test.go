package serve

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/execgraph"
	"patdnn/internal/compiler/tuner/tunedb"
)

// TestAliasRequestsHitPlanCache: every spelling model.ByName accepts for a
// paper network must resolve to the one cached plan — one compile, and every
// subsequent request (canonical or alias) counts as a plan hit. The first
// alias request memoizes the canonical key, so later alias requests skip
// descriptor construction entirely.
func TestAliasRequestsHitPlanCache(t *testing.T) {
	eng := New(Config{Workers: 2, Level: "noopt"})
	defer eng.Close()
	ctx := context.Background()

	if _, err := eng.Infer(ctx, Request{Network: "vgg16", Dataset: "cifar10"}); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.PlanCompiles != 1 || s.PlanHits != 0 {
		t.Fatalf("after first alias request: %d compiles / %d hits, want 1 / 0",
			s.PlanCompiles, s.PlanHits)
	}
	// The alias was memoized against the canonical (Short, Dataset) key.
	eng.mu.Lock()
	canon, ok := eng.aliases[[2]string{"vgg16", "cifar10"}]
	eng.mu.Unlock()
	if !ok || canon != [2]string{"VGG", "cifar10"} {
		t.Fatalf("alias not memoized: %v (ok=%v)", canon, ok)
	}

	// Every other spelling — the memoized alias, new aliases, the canonical
	// name — rides the cached plan and counts as a hit.
	for _, name := range []string{"vgg16", "VGG-16", "vgg", "VGG"} {
		if _, err := eng.Infer(ctx, Request{Network: name, Dataset: "cifar10"}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	s = eng.Stats()
	if s.PlanCompiles != 1 {
		t.Fatalf("alias requests recompiled the model: %d compiles", s.PlanCompiles)
	}
	if s.PlanHits != 4 {
		t.Fatalf("alias requests missed the plan cache: %d hits, want 4", s.PlanHits)
	}
}

// TestRegistryLazyRecompileHitsTuningDB: a registry model evicted by the
// memory budget recompiles lazily on its next hit — and with a tuning DB
// attached, that recompile replays the recorded per-layer decisions instead
// of re-searching (zero new DB misses).
func TestRegistryLazyRecompileHitsTuningDB(t *testing.T) {
	dir := t.TempDir()
	writeTinyArtifact(t, dir, "tiny", "v1", 100)
	writeTinyArtifact(t, dir, "tiny", "v2", 200)
	eng, reg := registryEngine(t, dir, 0, Config{
		Workers: 2, Level: "packed",
		TuningDB: filepath.Join(t.TempDir(), "tuning.json"),
	})
	ctx := context.Background()

	if _, err := eng.Infer(ctx, Request{Network: "tiny@v1"}); err != nil {
		t.Fatal(err)
	}
	cold := eng.Stats().Tuning
	if cold == nil {
		t.Fatal("tuning stats nil with a tuning DB configured")
	}
	if cold.DB.Misses == 0 || cold.DB.Records == 0 {
		t.Fatalf("first compile recorded nothing: %+v", cold.DB)
	}

	// Shrink the budget so loading v2 evicts v1's compiled plan.
	one := eng.Stats().Registry.BytesInUse
	reg.SetMemoryBudget(one + one/2)
	if _, err := eng.Infer(ctx, Request{Network: "tiny@v2"}); err != nil {
		t.Fatal(err)
	}
	if s := eng.Stats().Registry; s.Evictions != 1 {
		t.Fatalf("v2 load did not evict v1: %+v", s)
	}
	snap := eng.Stats().Tuning

	// v1's lazy recompile must hit the DB on every layer: hits grow, misses
	// do not — the whole point of persisting tuning decisions.
	if _, err := eng.Infer(ctx, Request{Network: "tiny@v1"}); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Registry.LazyReloads != 1 {
		t.Fatalf("v1 did not lazily recompile: %+v", s.Registry)
	}
	if s.Tuning.DB.Misses != snap.DB.Misses {
		t.Fatalf("lazy recompile missed the tuning DB: %d misses, had %d",
			s.Tuning.DB.Misses, snap.DB.Misses)
	}
	if s.Tuning.DB.Hits <= snap.DB.Hits {
		t.Fatalf("lazy recompile hit nothing: %d hits, had %d",
			s.Tuning.DB.Hits, snap.DB.Hits)
	}
}

// TestBackgroundTunerHotSwap: when the DB's measured verdict for a compiled
// packed conv diverges from the plan, a tuning round recompiles the model
// (picking the measured configuration out of the DB) and hot-swaps it while
// concurrent requests stream — zero failures, the swapped plan embodies the
// measured configs, and a second round finds nothing left to improve
// (convergence: counters are monotonic and Swaps stops moving).
func TestBackgroundTunerHotSwap(t *testing.T) {
	eng := New(Config{
		Workers: 2, Level: "packed",
		// The ticker must never fire on its own: the test drives rounds.
		BackgroundTune: true, TuneInterval: time.Hour,
	})
	defer eng.Close()
	if err := eng.RegisterModel(tinyModel("tiny", "synthetic")); err != nil {
		t.Fatal(err)
	}

	key := modelKey{"tiny", "synthetic", "packed"}
	eng.mu.Lock()
	entry := eng.models[key]
	eng.mu.Unlock()
	cm, err := entry.get()
	if err != nil {
		t.Fatal(err)
	}

	// Pre-seed the DB with measured verdicts that diverge from every packed
	// conv's compiled tile, forcing the first round into a deterministic swap
	// (no wall-clock measurement, so the test is stable under -race).
	want := map[*execgraph.Node]int{}
	for _, n := range cm.plan.Nodes {
		if n.Kind != execgraph.KindConv || n.Plan.Level != codegen.Packed {
			continue
		}
		alt := n.Plan.Tune
		alt.Tile[1] = alt.Tile[1] / 2
		if alt.Tile[1] < 1 {
			alt.Tile[1] = n.Plan.Tune.Tile[1] + 1
		}
		k := tunedb.ConvKey(n.Plan.Conv, codegen.LevelTag(codegen.Packed))
		eng.tdb.Record(k, tunedb.Entry{Config: alt, CostMs: 0.01, Source: tunedb.SourceMeasured})
		want[n] = alt.Tile[1]
	}
	if len(want) == 0 {
		t.Fatal("fixture compiled no packed convs")
	}

	// Hammer the model from several goroutines across both rounds: the swap
	// must never fail an in-flight request.
	stop := make(chan struct{})
	errCh := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.Infer(context.Background(),
					Request{Network: "tiny", Dataset: "synthetic", Input: tinyInput(seed)}); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(g)
	}

	eng.tuneRound()
	s1 := eng.Stats()
	if s1.Tuning == nil || s1.Tuning.Swaps != 1 {
		t.Fatalf("first round: %+v, want exactly 1 swap", s1.Tuning)
	}

	// The swapped-in plan embodies the measured configurations.
	eng.mu.Lock()
	swapped := eng.models[key]
	eng.mu.Unlock()
	if swapped == entry {
		t.Fatal("plan-cache entry not replaced")
	}
	cm2, err2, ok := swapped.snapshot()
	if !ok || err2 != nil {
		t.Fatalf("swapped entry not ready: ok=%v err=%v", ok, err2)
	}
	i := 0
	for _, n := range cm2.plan.Nodes {
		if n.Kind != execgraph.KindConv || n.Plan.Level != codegen.Packed {
			continue
		}
		k := tunedb.ConvKey(n.Plan.Conv, codegen.LevelTag(codegen.Packed))
		ent, hit := eng.tdb.Lookup(k)
		if !hit || n.Plan.Tune.Tile[1] != ent.Config.Tile[1] {
			t.Fatalf("packed conv %d: swapped plan tile %d, measured verdict %d (hit=%v)",
				i, n.Plan.Tune.Tile[1], ent.Config.Tile[1], hit)
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("swapped plan has %d packed convs, want %d", i, len(want))
	}

	// Second round: the compiled plan now matches every measured verdict, so
	// nothing swaps — the worker converges instead of flapping.
	eng.tuneRound()
	s2 := eng.Stats()
	if s2.Tuning.Swaps != s1.Tuning.Swaps {
		t.Fatalf("worker did not converge: swaps %d -> %d", s1.Tuning.Swaps, s2.Tuning.Swaps)
	}
	// /stats counters are monotonic across rounds.
	if s2.Tuning.DB.Hits < s1.Tuning.DB.Hits || s2.Tuning.DB.Records < s1.Tuning.DB.Records ||
		s2.Tuning.BackgroundSearches < s1.Tuning.BackgroundSearches {
		t.Fatalf("tuning counters went backwards: %+v -> %+v", s1.Tuning, s2.Tuning)
	}

	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("in-flight request failed across the hot swap: %v", err)
	default:
	}
}
