package serve

// E2E coverage for image-to-image serving: /infer must carry a whole output
// feature map (12288 floats for the SR generator on CIFAR-sized input)
// through JSON without bloat or truncation, the response shape field must
// describe the tensor, and lane admission must account for output bytes —
// a slot-count bound alone would let a feature-map model commit unbounded
// response memory.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"patdnn/internal/compiler/execgraph"
	"patdnn/internal/model"
	"patdnn/internal/tensor"
)

func TestEngineServesSRTensorOutput(t *testing.T) {
	eng := New(Config{Workers: 2})
	defer eng.Close()
	r, err := eng.Infer(context.Background(), Request{Network: "SR", Dataset: "cifar10"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Shape != [3]int{3, 64, 64} {
		t.Fatalf("SR output shape %v, want [3,64,64]", r.Shape)
	}
	if len(r.Output) != 3*64*64 {
		t.Fatalf("SR output carries %d values, want %d", len(r.Output), 3*64*64)
	}

	// The served output must match the dense unfused reference on the same
	// deterministic parameters and synthetic input (engine defaults: 8
	// patterns, 3.6x, seed 42; nil input = Randn seed 1).
	m, err := model.ByName("SR", "cifar10")
	if err != nil {
		t.Fatal(err)
	}
	params, err := execgraph.Generate(m, 8, 3.6, 42)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(m.InC, m.InH, m.InW)
	x.Randn(rand.New(rand.NewSource(1)), 1)
	want, err := execgraph.Reference(m, params, x)
	if err != nil {
		t.Fatal(err)
	}
	got := tensor.FromSlice(r.Output, r.Shape[0], r.Shape[1], r.Shape[2])
	if d := got.MaxAbsDiff(want); d > 1e-4 {
		t.Fatalf("served SR output diverged from dense reference by %g", d)
	}
}

func TestInferHTTPLargeTensorResponse(t *testing.T) {
	eng := New(Config{Workers: 2})
	defer eng.Close()
	srv := httptest.NewServer(NewHandler(eng, nil, "test"))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/infer", "application/json",
		bytes.NewBufferString(`{"network":"SR","dataset":"cifar10"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	var r Response
	if err := json.NewDecoder(io.TeeReader(resp.Body, &buf)).Decode(&r); err != nil {
		t.Fatalf("multi-thousand-element response failed to decode: %v", err)
	}
	if r.Shape != [3]int{3, 64, 64} || len(r.Output) != 12288 {
		t.Fatalf("shape %v with %d values, want [3,64,64]/12288", r.Shape, len(r.Output))
	}
	// The /infer encoder must be compact: the indent writer put every tensor
	// element on its own line, bloating the payload past double.
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n > 1 {
		t.Fatalf("/infer response contains %d newlines; expected compact encoding", n)
	}
}

func TestQueueBytesAdmissionSheds(t *testing.T) {
	// A byte budget below one SR output (48 KiB) sheds every request at
	// admission — the lane can never commit to a response it has no budget
	// for — and the shed is the standard ErrOverloaded fast-fail.
	eng := New(Config{Workers: 2, QueueBytes: 1024})
	defer eng.Close()
	if err := eng.Preload("SR", "cifar10"); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Infer(context.Background(), Request{Network: "SR", Dataset: "cifar10"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	s := eng.Stats()
	if s.Shed != 1 || s.Errors != 0 {
		t.Fatalf("Shed=%d Errors=%d, want 1/0 (byte shed is admission control, not an error)", s.Shed, s.Errors)
	}
	for _, q := range s.Queues {
		if q.QueuedBytes != 0 {
			t.Fatalf("lane %s/%s holds %d queued bytes after shed, want 0", q.Network, q.Class, q.QueuedBytes)
		}
		if q.ByteCapacity != 1024 {
			t.Fatalf("lane byte capacity %d, want 1024", q.ByteCapacity)
		}
	}
}

func TestQueueBytesReleasedAfterSweep(t *testing.T) {
	// With a budget of exactly two outputs, serving sequential requests must
	// keep succeeding: each sweep releases its reservation.
	eng := New(Config{Workers: 2, MaxBatch: 1, QueueBytes: 2 * 4 * 12288,
		BatchWindow: time.Millisecond})
	defer eng.Close()
	for i := 0; i < 5; i++ {
		if _, err := eng.Infer(context.Background(), Request{Network: "SR", Dataset: "cifar10"}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if s := eng.Stats(); s.Shed != 0 {
		t.Fatalf("Shed=%d, want 0 (reservations must be released)", s.Shed)
	}
}
