package serve

// Offline half of the engine: lower a network into an executable graph plan
// (graph IR → BN folding + residual/ReLU fusion → pattern/connectivity kernel
// compilation → liveness-planned arena), and the batched sweep that executes
// a gathered request batch over the worker pool. Generator models synthesize
// deterministic parameters at the engine's operating point; registry models
// take theirs from the .patdnn artifact (v2 graph artifacts carry the full
// topology; v1 conv-trunk artifacts are reassembled by the same chain
// convention previous releases served).

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/execgraph"
	"patdnn/internal/model"
	"patdnn/internal/modelfile"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

// compiledModel is a network lowered to an executable graph plan: the cached
// artifact the plan cache holds per (model, dataset, level) key — or, for
// registry-backed models, the artifact one .patdnn version compiles to.
type compiledModel struct {
	model   *model.Model
	plan    *execgraph.Plan
	level   string // the level tag this artifact was compiled at
	version string // registry version ("" for generator models)
	// retired flips once the registry drops this artifact (eviction,
	// hot-reload replacement, removal). Requests that raced the drop —
	// resolved this cm but have not enqueued yet — run unbatched instead of
	// resurrecting a batcher nobody would ever retire (which would pin the
	// whole plan stack until Close and silently defeat the memory budget).
	retired atomic.Bool
}

// execCfg builds the graph compiler configuration for one compile at a level
// tag: when the tuning subsystem is on, every compile consults the tuning DB
// first and records its decisions, with a compile-time GA search (analytic
// cost model) standing in for the single-shot heuristics on misses.
func (e *Engine) execCfg(tag string) execgraph.Config {
	return execgraph.Config{Level: tag, TuneDB: e.tdb, TuneSearch: e.tdb != nil}
}

// compileModel lowers m at the given level tag through the graph executor:
// deterministic parameters are generated at the engine's operating point
// (pattern + connectivity pruning for 3×3 convs, magnitude pruning for 1×1s,
// dense FC, synthetic BN statistics), then the graph passes fold BN into conv
// weights, fuse residual adds and ReLUs into conv epilogues, and the liveness
// pass lays out the activation arena.
func (e *Engine) compileModel(m *model.Model, tag string) (*compiledModel, error) {
	cfg := e.cfg
	params, err := execgraph.Generate(m, cfg.Patterns, cfg.ConnRate, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	plan, err := execgraph.Compile(m, params, e.execCfg(tag))
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return &compiledModel{model: m, plan: plan, level: tag}, nil
}

// compileFromFile lowers a deployed .patdnn artifact (the registry's unit of
// serving) into an executable graph plan. V2 artifacts carry the full network
// topology plus conv/dense/BN records, so the whole graph — residual nets
// included — serves end to end. V1 artifacts carry only the pruned 3×3 conv
// trunk; it is reassembled by convention: every conv runs with its bias and a
// ReLU activation, and a uniform spatial shrink between consecutive convs is
// realized as the stride==kernel max-pool that produces exactly the next
// layer's input geometry. Non-chainable layer sequences are rejected at load
// time rather than served wrong.
func (e *Engine) compileFromFile(name, version string, mf *modelfile.File, tag string) (*compiledModel, error) {
	m, params, err := execgraph.FromFile(name, mf)
	if err != nil {
		return nil, fmt.Errorf("serve: artifact %s@%s: %w", name, version, err)
	}
	// A v3 quantized artifact serves quantized by default: under "auto" its
	// convs compile at packedq8, keeping the int8 stream (and the ~4× smaller
	// resident footprint) the artifact was built for. An explicit engine
	// level still wins — the dequantized weights serve at any FP32 level.
	if tag == LevelAuto && mf.QuantBits >= 2 {
		tag = codegen.LevelTag(codegen.PackedQ8)
	}
	plan, err := execgraph.Compile(m, params, e.execCfg(tag))
	if err != nil {
		return nil, fmt.Errorf("serve: artifact %s@%s: %w", name, version, err)
	}
	return &compiledModel{model: m, plan: plan, level: tag, version: version}, nil
}

// memoryBytes is the resident footprint the registry's memory budget
// accounts for: dense pruned weight tensors, packed FKW arrays, 1×1 keep
// lists, FC matrices, and biases.
func (cm *compiledModel) memoryBytes() int64 { return cm.plan.MemoryBytes() }

func (cm *compiledModel) info() ModelInfo {
	inf := ModelInfo{
		Network:     cm.model.Short,
		Dataset:     cm.model.Dataset,
		Version:     cm.version,
		Source:      "generator",
		Level:       cm.level,
		ConvLayers:  cm.plan.ConvLayers,
		InputShape:  [3]int{cm.plan.InC, cm.plan.InH, cm.plan.InW},
		OutputShape: [3]int{cm.plan.OutC, cm.plan.OutH, cm.plan.OutW},
		Compression: cm.plan.Compression(),
		FusedOps:    cm.plan.Fused,
		Loaded:      true,
	}
	inf.ArenaBytes, _ = cm.plan.ArenaBytes()
	return inf
}

// inputTensor validates and copies a request input (the engine owns the
// tensor it feeds the sweep — callers may reuse their slice immediately). A
// nil input synthesizes a deterministic pseudo-image, which keeps the curl
// quickstart to one line.
func (cm *compiledModel) inputTensor(data []float32) (*tensor.Tensor, error) {
	t := tensor.New(cm.plan.InC, cm.plan.InH, cm.plan.InW)
	if data == nil {
		t.Randn(rand.New(rand.NewSource(1)), 1)
		return t, nil
	}
	if len(data) != len(t.Data) {
		return nil, fmt.Errorf("serve: %s/%s input has %d values, want %d ([%d,%d,%d])",
			cm.model.Short, cm.model.Dataset, len(data), len(t.Data),
			cm.plan.InC, cm.plan.InH, cm.plan.InW)
	}
	copy(t.Data, data)
	return t, nil
}

// runBatch executes one gathered batch over the graph plan with a pooled
// executor: every node runs once for the whole batch, conv-like nodes
// parallelize over batch × output-channels in one ParallelFor, and all
// intermediates live in the executor's liveness-planned arenas — no
// steady-state allocation, no scratch-pool churn per layer. The returned
// output tensors are handed to callers and never recycled.
func (cm *compiledModel) runBatch(pool *runtime.Pool, xs []*tensor.Tensor) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(xs))
	for i := range outs {
		outs[i] = tensor.New(cm.plan.OutC, cm.plan.OutH, cm.plan.OutW)
	}
	cm.plan.Execute(pool, xs, outs)
	return outs
}
