package serve

// Offline half of the engine: lower a network descriptor into an executable
// stack of compiled conv plans (pattern pruning → FKR → FKW → codegen, the
// same path patdnn.Compile uses for latency estimation, but keeping the
// weights so the plans actually run), and the batched sweep that executes a
// gathered request batch over the worker pool.

import (
	"fmt"
	"math/rand"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

type opKind int

const (
	opConv opKind = iota
	opReLU
	opMaxPool
)

// op is one executable stage of a compiled model.
type op struct {
	kind  opKind
	plan  *codegen.Plan // opConv
	poolK int           // opMaxPool kernel/stride
}

// compiledModel is a network lowered to an executable op stack: the cached
// artifact the plan cache holds per (model, dataset, tuning) key.
type compiledModel struct {
	model            *model.Model
	ops              []op
	convLayers       int
	inC, inH, inW    int
	outC, outH, outW int
	totalW, keptW    int64 // dense vs surviving weight counts (compression)
}

// compileModel lowers m's convolutional trunk. It walks the layer graph in
// order, compiling every 3×3 conv through the full pattern path and chaining
// shapes; the walk stops at the classifier head (flatten/FC/global-pool),
// whose dense layers the pattern compiler does not cover. Networks whose
// trunk needs operators the sweep cannot execute (1×1 convs, residual adds)
// are rejected with a descriptive error rather than served wrong.
func compileModel(cfg Config, m *model.Model) (*compiledModel, error) {
	set := pattern.Canonical(cfg.Patterns)
	cm := &compiledModel{model: m, inC: m.InC, inH: m.InH, inW: m.InW}
	c, h, w := m.InC, m.InH, m.InW
	for i, l := range m.Layers {
		switch l.Kind {
		case model.Input, model.BatchNorm:
			// BatchNorm folds into conv weights at deploy time; identity here.
			continue
		case model.Conv, model.DWConv:
			if l.KH != 3 || l.KW != 3 {
				return nil, fmt.Errorf("serve: %s/%s: layer %s is a %dx%d conv; only 3x3 pattern kernels are servable yet",
					m.Short, m.Dataset, l.Name, l.KH, l.KW)
			}
			if l.InC != c || l.InH != h || l.InW != w {
				return nil, fmt.Errorf("serve: %s/%s: layer %s expects input [%d,%d,%d] but the trunk carries [%d,%d,%d]",
					m.Short, m.Dataset, l.Name, l.InC, l.InH, l.InW, c, h, w)
			}
			pc := pruned.Generate(l, set, cfg.ConnRate, cfg.Seed+int64(i), true)
			plan, err := codegen.Compile(pc, cfg.Level, lr.DefaultTuning())
			if err != nil {
				return nil, err
			}
			cm.ops = append(cm.ops, op{kind: opConv, plan: plan})
			cm.convLayers++
			cm.totalW += int64(pc.TotalWeights())
			cm.keptW += int64(pc.NNZ())
			c, h, w = l.OutC, l.OutH, l.OutW
		case model.ReLU:
			cm.ops = append(cm.ops, op{kind: opReLU})
		case model.MaxPool:
			// The sweep executes pools with tensor.MaxPool2D, which hard-codes
			// stride == kernel; reject descriptors it cannot honor, and chain
			// the shape from what MaxPool2D will actually produce rather than
			// trusting the declared output.
			if l.KW != l.KH || l.Stride != l.KH || l.KH < 1 {
				return nil, fmt.Errorf("serve: %s/%s: pool %s is %dx%d stride %d; only square stride==kernel pools are servable",
					m.Short, m.Dataset, l.Name, l.KH, l.KW, l.Stride)
			}
			if l.OutH != h/l.KH || l.OutW != w/l.KH {
				return nil, fmt.Errorf("serve: %s/%s: pool %s declares output %dx%d but %dx%d/%d pooling yields %dx%d",
					m.Short, m.Dataset, l.Name, l.OutH, l.OutW, h, w, l.KH, h/l.KH, w/l.KH)
			}
			cm.ops = append(cm.ops, op{kind: opMaxPool, poolK: l.KH})
			h, w = l.OutH, l.OutW
		case model.Flatten, model.FC, model.AvgPoolGlobal, model.SoftmaxOp:
			// Classifier head: the convolutional trunk ends here; the engine
			// returns the final feature map.
			cm.setOutput(c, h, w)
			return cm, nil
		case model.Add:
			return nil, fmt.Errorf("serve: %s/%s: residual add (%s) is not servable yet",
				m.Short, m.Dataset, l.Name)
		default:
			return nil, fmt.Errorf("serve: %s/%s: unsupported operator %s (%s)",
				m.Short, m.Dataset, l.Kind, l.Name)
		}
	}
	cm.setOutput(c, h, w)
	return cm, nil
}

func (cm *compiledModel) setOutput(c, h, w int) {
	cm.outC, cm.outH, cm.outW = c, h, w
}

func (cm *compiledModel) info() ModelInfo {
	inf := ModelInfo{
		Network:     cm.model.Short,
		Dataset:     cm.model.Dataset,
		ConvLayers:  cm.convLayers,
		InputShape:  [3]int{cm.inC, cm.inH, cm.inW},
		OutputShape: [3]int{cm.outC, cm.outH, cm.outW},
	}
	if cm.keptW > 0 {
		inf.Compression = float64(cm.totalW) / float64(cm.keptW)
	}
	return inf
}

// inputTensor validates and copies a request input (the engine owns the
// tensor it feeds the sweep — callers may reuse their slice immediately). A
// nil input synthesizes a deterministic pseudo-image, which keeps the curl
// quickstart to one line.
func (cm *compiledModel) inputTensor(data []float32) (*tensor.Tensor, error) {
	t := tensor.New(cm.inC, cm.inH, cm.inW)
	if data == nil {
		t.Randn(rand.New(rand.NewSource(1)), 1)
		return t, nil
	}
	if len(data) != len(t.Data) {
		return nil, fmt.Errorf("serve: %s/%s input has %d values, want %d ([%d,%d,%d])",
			cm.model.Short, cm.model.Dataset, len(data), len(t.Data), cm.inC, cm.inH, cm.inW)
	}
	copy(t.Data, data)
	return t, nil
}

// runBatch executes one gathered batch as a single layer sweep: every op runs
// once for the whole batch, and conv layers parallelize over batch ×
// output-channels in one ParallelFor, so small per-request layers still fill
// the pool.
func (cm *compiledModel) runBatch(pool *runtime.Pool, xs []*tensor.Tensor) []*tensor.Tensor {
	for _, o := range cm.ops {
		switch o.kind {
		case opConv:
			conv := o.plan.Conv
			padded := make([]*tensor.Tensor, len(xs))
			outs := make([]*tensor.Tensor, len(xs))
			pool.ParallelFor(len(xs), func(s, e int) {
				for i := s; i < e; i++ {
					padded[i] = o.plan.PadInput(xs[i])
					outs[i] = tensor.New(conv.OutC, conv.OutH, conv.OutW)
				}
			})
			pool.ParallelFor(len(xs)*conv.OutC, func(s, e int) {
				for i := s; i < e; {
					item, from := i/conv.OutC, i%conv.OutC
					to := from + (e - i)
					if to > conv.OutC {
						to = conv.OutC
					}
					o.plan.ExecuteRange(padded[item], outs[item], from, to)
					i += to - from
				}
			})
			xs = outs
		case opReLU:
			pool.ParallelFor(len(xs), func(s, e int) {
				for i := s; i < e; i++ {
					tensor.ReLU(xs[i])
				}
			})
		case opMaxPool:
			outs := make([]*tensor.Tensor, len(xs))
			pool.ParallelFor(len(xs), func(s, e int) {
				for i := s; i < e; i++ {
					outs[i], _ = tensor.MaxPool2D(xs[i], o.poolK)
				}
			})
			xs = outs
		}
	}
	return xs
}
