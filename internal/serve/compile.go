package serve

// Offline half of the engine: lower a network descriptor into an executable
// stack of compiled conv plans (pattern pruning → FKR → FKW → codegen, the
// same path patdnn.Compile uses for latency estimation, but keeping the
// weights so the plans actually run), and the batched sweep that executes a
// gathered request batch over the worker pool.

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/compiler/tuner"
	"patdnn/internal/model"
	"patdnn/internal/modelfile"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

type opKind int

const (
	opConv opKind = iota
	opReLU
	opMaxPool
)

// op is one executable stage of a compiled model.
type op struct {
	kind      opKind
	plan      *codegen.Plan // opConv
	bias      []float32     // opConv: per-channel bias (nil for generator models)
	fusedReLU bool          // opConv: the following ReLU is fused into the sweep
	poolK     int           // opMaxPool kernel/stride
}

// compiledModel is a network lowered to an executable op stack: the cached
// artifact the plan cache holds per (model, dataset, level) key — or, for
// registry-backed models, the artifact one .patdnn version compiles to.
type compiledModel struct {
	model            *model.Model
	level            string // the level tag this artifact was compiled at
	version          string // registry version ("" for generator models)
	ops              []op
	convLayers       int
	inC, inH, inW    int
	outC, outH, outW int
	totalW, keptW    int64 // dense vs surviving weight counts (compression)
	// retired flips once the registry drops this artifact (eviction,
	// hot-reload replacement, removal). Requests that raced the drop —
	// resolved this cm but have not enqueued yet — run unbatched instead of
	// resurrecting a batcher nobody would ever retire (which would pin the
	// whole plan stack until Close and silently defeat the memory budget).
	retired atomic.Bool
}

// layerLevel resolves the optimization level one conv layer compiles at. An
// explicit tag applies uniformly; "auto" asks the tuner's estimator whether
// the packed FKW-direct backend beats the tuned dense-layout kernels for this
// layer's geometry and sparsity.
func layerLevel(tag string, pc *pruned.Conv) (codegen.Level, error) {
	if tag == LevelAuto {
		if tuner.PreferPacked(pc.OutC, pc.InC, pc.NonEmptyKernels(), pc.OutH, pc.OutW) {
			return codegen.Packed, nil
		}
		return codegen.Tuned, nil
	}
	return codegen.ParseLevel(tag)
}

// layerTuning picks the tuning a layer compiles with: packed plans get the
// tuner-sized spatial tile; everything else keeps the default configuration.
func layerTuning(level codegen.Level, pc *pruned.Conv) lr.Tuning {
	if level != codegen.Packed {
		return lr.DefaultTuning()
	}
	perFilter := 0
	if pc.OutC > 0 {
		perFilter = pc.NNZ() / pc.OutC
	}
	return tuner.PackedTuning(pc.OutH, pc.OutW, pc.InW+2*pc.Pad, perFilter, pc.Stride)
}

// compileModel lowers m's convolutional trunk at the given level tag. It
// walks the layer graph in order, compiling every 3×3 conv through the full
// pattern path and chaining shapes; the walk stops at the classifier head
// (flatten/FC/global-pool), whose dense layers the pattern compiler does not
// cover. Networks whose trunk needs operators the sweep cannot execute (1×1
// convs, residual adds) are rejected with a descriptive error rather than
// served wrong. A ReLU directly following a conv whose plan supports the
// fused epilogue is folded into the conv sweep.
func compileModel(cfg Config, m *model.Model, tag string) (*compiledModel, error) {
	set := pattern.Canonical(cfg.Patterns)
	cm := &compiledModel{model: m, level: tag, inC: m.InC, inH: m.InH, inW: m.InW}
	c, h, w := m.InC, m.InH, m.InW
	for i, l := range m.Layers {
		switch l.Kind {
		case model.Input, model.BatchNorm:
			// BatchNorm folds into conv weights at deploy time; identity here.
			continue
		case model.Conv, model.DWConv:
			if l.KH != 3 || l.KW != 3 {
				return nil, fmt.Errorf("serve: %s/%s: layer %s is a %dx%d conv; only 3x3 pattern kernels are servable yet",
					m.Short, m.Dataset, l.Name, l.KH, l.KW)
			}
			if l.InC != c || l.InH != h || l.InW != w {
				return nil, fmt.Errorf("serve: %s/%s: layer %s expects input [%d,%d,%d] but the trunk carries [%d,%d,%d]",
					m.Short, m.Dataset, l.Name, l.InC, l.InH, l.InW, c, h, w)
			}
			pc := pruned.Generate(l, set, cfg.ConnRate, cfg.Seed+int64(i), true)
			level, err := layerLevel(tag, pc)
			if err != nil {
				return nil, err
			}
			plan, err := codegen.Compile(pc, level, layerTuning(level, pc))
			if err != nil {
				return nil, err
			}
			cm.ops = append(cm.ops, op{kind: opConv, plan: plan})
			cm.convLayers++
			cm.totalW += int64(pc.TotalWeights())
			cm.keptW += int64(pc.NNZ())
			c, h, w = l.OutC, l.OutH, l.OutW
		case model.ReLU:
			// Fuse into the preceding conv's epilogue when its kernels can;
			// the sweep then skips a whole pass over the feature map.
			if n := len(cm.ops); n > 0 && cm.ops[n-1].kind == opConv &&
				!cm.ops[n-1].fusedReLU && cm.ops[n-1].plan.SupportsFused() {
				cm.ops[n-1].fusedReLU = true
				continue
			}
			cm.ops = append(cm.ops, op{kind: opReLU})
		case model.MaxPool:
			// The sweep executes pools with tensor.MaxPool2D, which hard-codes
			// stride == kernel; reject descriptors it cannot honor, and chain
			// the shape from what MaxPool2D will actually produce rather than
			// trusting the declared output.
			if l.KW != l.KH || l.Stride != l.KH || l.KH < 1 {
				return nil, fmt.Errorf("serve: %s/%s: pool %s is %dx%d stride %d; only square stride==kernel pools are servable",
					m.Short, m.Dataset, l.Name, l.KH, l.KW, l.Stride)
			}
			if l.OutH != h/l.KH || l.OutW != w/l.KH {
				return nil, fmt.Errorf("serve: %s/%s: pool %s declares output %dx%d but %dx%d/%d pooling yields %dx%d",
					m.Short, m.Dataset, l.Name, l.OutH, l.OutW, h, w, l.KH, h/l.KH, w/l.KH)
			}
			cm.ops = append(cm.ops, op{kind: opMaxPool, poolK: l.KH})
			h, w = l.OutH, l.OutW
		case model.Flatten, model.FC, model.AvgPoolGlobal, model.SoftmaxOp:
			// Classifier head: the convolutional trunk ends here; the engine
			// returns the final feature map.
			cm.setOutput(c, h, w)
			return cm, nil
		case model.Add:
			return nil, fmt.Errorf("serve: %s/%s: residual add (%s) is not servable yet",
				m.Short, m.Dataset, l.Name)
		default:
			return nil, fmt.Errorf("serve: %s/%s: unsupported operator %s (%s)",
				m.Short, m.Dataset, l.Kind, l.Name)
		}
	}
	cm.setOutput(c, h, w)
	return cm, nil
}

// compileFromFile lowers a deployed .patdnn artifact (the registry's unit of
// serving) into an executable op stack. The file carries only the pruned conv
// layers with their real (FP16-stored) weights and biases; the trunk is
// reassembled by convention: every conv runs with its bias and a ReLU
// activation (fused into the sweep when the plan's kernels support it), and a
// uniform spatial shrink between consecutive convs is realized as the
// stride==kernel max-pool that produces exactly the next layer's input
// geometry. Non-chainable layer sequences are rejected at load time rather
// than served wrong.
func compileFromFile(cfg Config, name, version string, mf *modelfile.File, tag string) (*compiledModel, error) {
	if len(mf.Layers) == 0 {
		return nil, fmt.Errorf("serve: artifact %s@%s holds no conv layers", name, version)
	}
	cm := &compiledModel{
		model:   &model.Model{Name: mf.LR.Model, Short: name},
		level:   tag,
		version: version,
	}
	first := mf.Layers[0].Conv
	cm.inC, cm.inH, cm.inW = first.InChannels(), first.InH, first.InW
	c, h, w := cm.inC, cm.inH, cm.inW
	for i, layer := range mf.Layers {
		pc := layer.Conv
		if pc.InChannels() != c {
			return nil, fmt.Errorf("serve: artifact %s@%s: layer %s expects %d input channels but the trunk carries %d",
				name, version, pc.Name, pc.InChannels(), c)
		}
		if pc.InH != h || pc.InW != w {
			// A uniform integer shrink is servable as an inferred max-pool
			// (the classic conv/pool trunk the artifact's layer geometry
			// encodes implicitly); anything else cannot be chained.
			k := 0
			if pc.InH > 0 && pc.InW > 0 && h%pc.InH == 0 && w%pc.InW == 0 && h/pc.InH == w/pc.InW {
				k = h / pc.InH
			}
			if k < 2 {
				return nil, fmt.Errorf("serve: artifact %s@%s: layer %s expects %dx%d input but the trunk carries %dx%d (no stride==kernel pool bridges them)",
					name, version, pc.Name, pc.InH, pc.InW, h, w)
			}
			cm.ops = append(cm.ops, op{kind: opMaxPool, poolK: k})
			h, w = pc.InH, pc.InW
		}
		level, err := layerLevel(tag, pc)
		if err != nil {
			return nil, err
		}
		plan, err := codegen.Compile(pc, level, layerTuning(level, pc))
		if err != nil {
			return nil, fmt.Errorf("serve: artifact %s@%s: %w", name, version, err)
		}
		fused := plan.SupportsFused()
		cm.ops = append(cm.ops, op{kind: opConv, plan: plan, bias: mf.Layers[i].Bias, fusedReLU: fused})
		if !fused {
			cm.ops = append(cm.ops, op{kind: opReLU})
		}
		cm.convLayers++
		cm.totalW += int64(pc.TotalWeights())
		cm.keptW += int64(pc.NNZ())
		c, h, w = pc.OutC, pc.OutH, pc.OutW
	}
	cm.setOutput(c, h, w)
	return cm, nil
}

// memoryBytes is the resident footprint the registry's memory budget
// accounts for: the dense pruned weight tensors each plan retains, the
// packed FKW arrays, and the biases.
func (cm *compiledModel) memoryBytes() int64 {
	var b int64
	for _, o := range cm.ops {
		if o.kind != opConv {
			continue
		}
		b += 4 * int64(o.plan.Conv.TotalWeights())
		b += int64(o.plan.FKW.TotalBytes(4))
		b += 4 * int64(len(o.bias))
	}
	return b
}

func (cm *compiledModel) setOutput(c, h, w int) {
	cm.outC, cm.outH, cm.outW = c, h, w
}

func (cm *compiledModel) info() ModelInfo {
	inf := ModelInfo{
		Network:     cm.model.Short,
		Dataset:     cm.model.Dataset,
		Version:     cm.version,
		Source:      "generator",
		Level:       cm.level,
		ConvLayers:  cm.convLayers,
		InputShape:  [3]int{cm.inC, cm.inH, cm.inW},
		OutputShape: [3]int{cm.outC, cm.outH, cm.outW},
		Loaded:      true,
	}
	if cm.keptW > 0 {
		inf.Compression = float64(cm.totalW) / float64(cm.keptW)
	}
	return inf
}

// inputTensor validates and copies a request input (the engine owns the
// tensor it feeds the sweep — callers may reuse their slice immediately). A
// nil input synthesizes a deterministic pseudo-image, which keeps the curl
// quickstart to one line.
func (cm *compiledModel) inputTensor(data []float32) (*tensor.Tensor, error) {
	t := tensor.New(cm.inC, cm.inH, cm.inW)
	if data == nil {
		t.Randn(rand.New(rand.NewSource(1)), 1)
		return t, nil
	}
	if len(data) != len(t.Data) {
		return nil, fmt.Errorf("serve: %s/%s input has %d values, want %d ([%d,%d,%d])",
			cm.model.Short, cm.model.Dataset, len(data), len(t.Data), cm.inC, cm.inH, cm.inW)
	}
	copy(t.Data, data)
	return t, nil
}

// runBatch executes one gathered batch as a single layer sweep: every op runs
// once for the whole batch, and conv layers parallelize over batch ×
// output-channels in one ParallelFor, so small per-request layers still fill
// the pool.
//
// Scratch discipline: padded inputs come from the runtime slice pool and go
// back as soon as the conv consumes them; intermediate feature maps come from
// the pool too and are recycled once the next op has consumed them. The
// tensors handed back to callers (the final xs) are never recycled. The
// fused conv epilogue initializes every output plane itself, so the pooled —
// dirty — buffers need no zeroing pass.
func (cm *compiledModel) runBatch(pool *runtime.Pool, xs []*tensor.Tensor) []*tensor.Tensor {
	pooled := false // whether the current xs tensors came from the slice pool
	recycle := func(old []*tensor.Tensor, wasPooled bool) {
		if !wasPooled {
			return
		}
		for _, t := range old {
			runtime.PutTensor(t)
		}
	}
	for _, o := range cm.ops {
		switch o.kind {
		case opConv:
			outs := pool.RunLayerBatchFused(o.plan, xs, o.bias, o.fusedReLU)
			recycle(xs, pooled)
			xs, pooled = outs, true
		case opReLU:
			pool.ParallelFor(len(xs), func(s, e int) {
				for i := s; i < e; i++ {
					tensor.ReLU(xs[i])
				}
			})
		case opMaxPool:
			outs := make([]*tensor.Tensor, len(xs))
			pool.ParallelFor(len(xs), func(s, e int) {
				for i := s; i < e; i++ {
					in := xs[i]
					outs[i] = runtime.GetTensor(in.Dim(0), in.Dim(1)/o.poolK, in.Dim(2)/o.poolK)
					tensor.MaxPool2DInto(in, o.poolK, outs[i])
				}
			})
			recycle(xs, pooled)
			xs, pooled = outs, true
		}
	}
	return xs
}
