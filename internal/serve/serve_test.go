package serve

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"patdnn/internal/model"
)

// tinyModel builds a small network so engine tests stay fast even under the
// race detector: conv(4→8) → relu → pool2 → conv(8→8) → relu → flatten → fc,
// served end to end by the graph executor (output [4,1,1] class scores).
func tinyModel(short, dataset string) *model.Model {
	m := &model.Model{Name: "Tiny-CNN", Short: short, Dataset: dataset,
		Classes: 4, InC: 4, InH: 12, InW: 12}
	m.Layers = []*model.Layer{
		{Name: "input", Kind: model.Input, OutC: 4, OutH: 12, OutW: 12},
		{Name: "conv1", Kind: model.Conv, InC: 4, OutC: 8, KH: 3, KW: 3,
			Stride: 1, Pad: 1, Groups: 1, InH: 12, InW: 12, OutH: 12, OutW: 12},
		{Name: "relu1", Kind: model.ReLU, InC: 8, OutC: 8},
		{Name: "pool1", Kind: model.MaxPool, InC: 8, OutC: 8, KH: 2, KW: 2,
			Stride: 2, InH: 12, InW: 12, OutH: 6, OutW: 6},
		{Name: "conv2", Kind: model.Conv, InC: 8, OutC: 8, KH: 3, KW: 3,
			Stride: 1, Pad: 1, Groups: 1, InH: 6, InW: 6, OutH: 6, OutW: 6},
		{Name: "relu2", Kind: model.ReLU, InC: 8, OutC: 8},
		{Name: "flatten", Kind: model.Flatten, InC: 8, InH: 6, InW: 6,
			OutC: 288, OutH: 1, OutW: 1},
		{Name: "fc", Kind: model.FC, InC: 288, OutC: 4, HasBias: true},
	}
	return m
}

func tinyEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	eng := New(cfg)
	t.Cleanup(func() { eng.Close() })
	if err := eng.RegisterModel(tinyModel("tiny", "synthetic")); err != nil {
		t.Fatal(err)
	}
	return eng
}

func tinyInput(seed int) []float32 {
	in := make([]float32, 4*12*12)
	for i := range in {
		in[i] = float32((i*31+seed*17)%13) / 13
	}
	return in
}

func TestEngineCompilesExactlyOnce(t *testing.T) {
	eng := tinyEngine(t, Config{Workers: 2})
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := eng.Infer(context.Background(),
			Request{Network: "tiny", Dataset: "synthetic", Input: tinyInput(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s := eng.Stats()
	if s.PlanCompiles != 1 {
		t.Fatalf("PlanCompiles = %d, want 1 (RegisterModel compiles once, Infer only hits)", s.PlanCompiles)
	}
	if s.PlanHits != n {
		t.Fatalf("PlanHits = %d, want %d", s.PlanHits, n)
	}
	if s.Requests != n || s.Errors != 0 {
		t.Fatalf("Requests=%d Errors=%d, want %d/0", s.Requests, s.Errors, n)
	}
}

func TestEngineConcurrentRequestsDeterministic(t *testing.T) {
	// Reference outputs from an unbatched engine.
	ref := tinyEngine(t, Config{Workers: 1, MaxBatch: 1})
	const distinct = 4
	want := make([][]float32, distinct)
	for i := 0; i < distinct; i++ {
		r, err := ref.Infer(context.Background(),
			Request{Network: "tiny", Dataset: "synthetic", Input: tinyInput(i)})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.Output
	}

	// 64 concurrent requests over a batching engine must each get the output
	// of exactly their own input (no scatter/gather mix-ups, race-free).
	eng := tinyEngine(t, Config{Workers: 4, MaxBatch: 8, BatchWindow: time.Millisecond})
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := eng.Infer(context.Background(),
				Request{Network: "tiny", Dataset: "synthetic", Input: tinyInput(i % distinct)})
			if err != nil {
				errs <- err
				return
			}
			if r.Shape != [3]int{4, 1, 1} {
				t.Errorf("request %d: shape %v", i, r.Shape)
				return
			}
			for j, v := range r.Output {
				if v != want[i%distinct][j] {
					t.Errorf("request %d: output[%d] = %g, want %g", i, j, v, want[i%distinct][j])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := eng.Stats(); s.Requests != n || s.Errors != 0 || s.PlanCompiles != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestEngineGathersFullBatch(t *testing.T) {
	// With a window far longer than the test and MaxBatch == request count,
	// the batcher must gather all requests into one sweep: the batch fires on
	// the count trigger, not the timer.
	const n = 6
	eng := tinyEngine(t, Config{Workers: 2, MaxBatch: n, BatchWindow: time.Minute})
	var wg sync.WaitGroup
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := eng.Infer(context.Background(),
				Request{Network: "tiny", Dataset: "synthetic", Input: tinyInput(i)})
			if err != nil {
				t.Error(err)
				return
			}
			sizes[i] = r.BatchSize
		}(i)
	}
	wg.Wait()
	for i, sz := range sizes {
		if sz != n {
			t.Fatalf("request %d rode batch of %d, want %d", i, sz, n)
		}
	}
	s := eng.Stats()
	if s.Batches != 1 || s.BatchedRequests != n {
		t.Fatalf("Batches=%d BatchedRequests=%d, want 1/%d", s.Batches, s.BatchedRequests, n)
	}
	if s.AvgBatch != n {
		t.Fatalf("AvgBatch = %g, want %d", s.AvgBatch, n)
	}
}

func TestEngineErrors(t *testing.T) {
	eng := tinyEngine(t, Config{Workers: 1})
	ctx := context.Background()
	if _, err := eng.Infer(ctx, Request{Network: "AlexNet", Dataset: "imagenet"}); err == nil {
		t.Fatal("expected unknown-network error")
	}
	if _, err := eng.Infer(ctx, Request{Network: "tiny", Dataset: "synthetic",
		Input: make([]float32, 7)}); err == nil || !strings.Contains(err.Error(), "want 576") {
		t.Fatalf("expected input-length error, got %v", err)
	}
	// ResNet-50/ImageNet opens with a 7×7 stem the pattern compiler cannot
	// express: a descriptive rejection, not a wrong answer. (The CIFAR
	// variants of all three paper nets serve end to end now.)
	if _, err := eng.Infer(ctx, Request{Network: "RNT", Dataset: "imagenet"}); err == nil {
		t.Fatal("expected unsupported-topology error for the ImageNet ResNet stem")
	}
	if err := eng.RegisterModel(tinyModel("tiny", "synthetic")); err == nil {
		t.Fatal("expected duplicate-register error")
	}
	if s := eng.Stats(); s.Errors != 3 {
		t.Fatalf("Errors = %d, want 3", s.Errors)
	}
}

func TestEngineUnsupportedModelErrorIsCached(t *testing.T) {
	eng := New(Config{Workers: 1})
	defer eng.Close()
	for i := 0; i < 3; i++ {
		if _, err := eng.Infer(context.Background(),
			Request{Network: "RNT", Dataset: "imagenet"}); err == nil {
			t.Fatal("expected unsupported-topology error for the 7x7 stem")
		}
	}
	// The failed compile is cached too: one compile, two hits on the error.
	if s := eng.Stats(); s.PlanCompiles != 1 || s.PlanHits != 2 {
		t.Fatalf("PlanCompiles=%d PlanHits=%d, want 1/2", s.PlanCompiles, s.PlanHits)
	}
}

func TestEngineContextCancel(t *testing.T) {
	eng := tinyEngine(t, Config{Workers: 1, MaxBatch: 4, BatchWindow: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := eng.Infer(ctx, Request{Network: "tiny", Dataset: "synthetic"})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Infer did not honor cancellation")
	}
}

func TestEngineCloseDrainsAndRejects(t *testing.T) {
	eng := New(Config{Workers: 2, MaxBatch: 4, BatchWindow: time.Millisecond})
	if err := eng.RegisterModel(tinyModel("tiny", "synthetic")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// In-flight requests either complete or see ErrClosed; nothing hangs.
			_, err := eng.Infer(context.Background(),
				Request{Network: "tiny", Dataset: "synthetic", Input: tinyInput(i)})
			if err != nil && err != ErrClosed {
				t.Error(err)
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal("Close must be idempotent:", err)
	}
	if _, err := eng.Infer(context.Background(),
		Request{Network: "tiny", Dataset: "synthetic"}); err != ErrClosed {
		t.Fatalf("Infer after Close = %v, want ErrClosed", err)
	}
}

func TestEngineModelsListing(t *testing.T) {
	eng := tinyEngine(t, Config{Workers: 1, ConnRate: 4})
	if err := eng.RegisterModel(tinyModel("atiny", "synthetic")); err != nil {
		t.Fatal(err)
	}
	ms := eng.Models()
	if len(ms) != 2 {
		t.Fatalf("Models() = %d entries, want 2", len(ms))
	}
	if ms[0].Network != "atiny" || ms[1].Network != "tiny" {
		t.Fatalf("Models() not sorted: %v", ms)
	}
	m := ms[1]
	if m.ConvLayers != 2 || m.InputShape != [3]int{4, 12, 12} || m.OutputShape != [3]int{4, 1, 1} {
		t.Fatalf("ModelInfo = %+v", m)
	}
	if m.Compression < 2 {
		t.Fatalf("compression %.2f implausibly low for 4x connectivity pruning", m.Compression)
	}
}

func TestEngineUnknownDatasetIsErrorNotPanic(t *testing.T) {
	eng := New(Config{Workers: 1})
	defer eng.Close()
	_, err := eng.Infer(context.Background(), Request{Network: "VGG", Dataset: "imagenet2"})
	if err == nil || !strings.Contains(err.Error(), "unknown dataset") {
		t.Fatalf("err = %v, want unknown-dataset error", err)
	}
}

func TestEngineRejectsUnservablePool(t *testing.T) {
	m := tinyModel("badpool", "synthetic")
	m.Layers[3].Stride = 1 // 2x2 pool with stride 1: MaxPool2D cannot honor it
	eng := New(Config{Workers: 1})
	defer eng.Close()
	err := eng.RegisterModel(m)
	if err == nil || !strings.Contains(err.Error(), "stride==kernel") {
		t.Fatalf("err = %v, want unservable-pool error", err)
	}
	// The failed register must not poison the key: a corrected descriptor
	// registers cleanly.
	if err := eng.RegisterModel(tinyModel("badpool", "synthetic")); err != nil {
		t.Fatalf("re-register after failed compile: %v", err)
	}
	if _, err := eng.Infer(context.Background(),
		Request{Network: "badpool", Dataset: "synthetic"}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineInferAfterCloseDoesNotCompile(t *testing.T) {
	eng := New(Config{Workers: 1})
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Infer(context.Background(),
		Request{Network: "VGG", Dataset: "cifar10"}); err != ErrClosed {
		t.Fatalf("Infer after Close = %v, want ErrClosed", err)
	}
	if s := eng.Stats(); s.PlanCompiles != 0 {
		t.Fatalf("PlanCompiles = %d after post-Close Infer, want 0 (no wasted compile)", s.PlanCompiles)
	}
}

func TestEngineModelsDuringConcurrentCompile(t *testing.T) {
	// Models()/Stats() must be safe (and non-blocking) while other goroutines
	// are registering and lazily compiling models.
	eng := New(Config{Workers: 1})
	defer eng.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a'+i)) + "tiny"
			if err := eng.RegisterModel(tinyModel(name, "synthetic")); err != nil {
				t.Error(err)
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				eng.Models()
				eng.Stats()
			}
		}()
	}
	wg.Wait()
	if got := len(eng.Models()); got != 4 {
		t.Fatalf("Models() = %d entries after all registers, want 4", got)
	}
}

func TestEngineInferAfterCloseSpawnsNoBatcher(t *testing.T) {
	// A model compiled but never inferred has no batcher; an Infer arriving
	// after Close must not create one (its channel would never be closed and
	// its goroutine would leak).
	eng := New(Config{Workers: 1})
	if err := eng.RegisterModel(tinyModel("tiny", "synthetic")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Infer(context.Background(),
		Request{Network: "tiny", Dataset: "synthetic"}); err != ErrClosed {
		t.Fatalf("Infer after Close = %v, want ErrClosed", err)
	}
	eng.mu.Lock()
	n := len(eng.batchers)
	eng.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d batcher(s) created after Close", n)
	}
}

func TestEngineServesVGG(t *testing.T) {
	// One real paper model end-to-end (the heavyweight path the benchmarks
	// sweep): compile once, serve a few concurrent requests.
	if testing.Short() {
		t.Skip("compiles full VGG-16")
	}
	eng := New(Config{MaxBatch: 4, BatchWindow: 5 * time.Millisecond})
	defer eng.Close()
	if err := eng.Preload("VGG", "cifar10"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := eng.Infer(context.Background(), Request{Network: "vgg16", Dataset: "cifar10"})
			if err != nil {
				t.Error(err)
				return
			}
			if r.Shape != [3]int{10, 1, 1} {
				t.Errorf("VGG/cifar10 output shape %v, want [10,1,1] class probabilities", r.Shape)
			}
		}()
	}
	wg.Wait()
	if s := eng.Stats(); s.PlanCompiles != 1 || s.PlanHits != 4 {
		t.Fatalf("PlanCompiles=%d PlanHits=%d, want 1/4 (aliases share the cache entry)", s.PlanCompiles, s.PlanHits)
	}
}
