package serve

// Regression coverage for cumulative-counter preservation across registry
// hot-reload swaps: a fleet aggregator sums replica /stats snapshots, so a
// swap that silently zeroed per-model admission counts would make the fleet
// view non-monotonic (and page someone about traffic that never dropped).

import (
	"context"
	"strings"
	"testing"
)

// admittedFor sums the Stats.Admitted entries for one model/class pair.
func admittedFor(s Stats, network, class string) uint64 {
	var total uint64
	for k, n := range s.Admitted {
		if strings.HasPrefix(k, network+"/") && strings.HasSuffix(k, "/"+class) {
			total += n
		}
	}
	return total
}

func TestHotReloadSwapPreservesCumulativeAdmissions(t *testing.T) {
	dir := t.TempDir()
	writeTinyArtifact(t, dir, "tiny", "v1", 100)
	eng, reg := registryEngine(t, dir, 0, Config{Workers: 2})
	ctx := context.Background()

	const n1, n2 = 5, 3
	for i := 0; i < n1; i++ {
		if _, err := eng.Infer(ctx, Request{Network: "tiny", Input: tinyInput(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s1 := eng.Stats()
	if got := admittedFor(s1, "tiny", "interactive"); got != n1 {
		t.Fatalf("admitted before swap = %d, want %d (stats: %+v)", got, n1, s1.Admitted)
	}

	// Replace the artifact in place: the scan retires the old batcher (its
	// lanes, and their lane-scoped counters, are gone) and the next request
	// compiles fresh plans with a fresh lane.
	writeTinyArtifact(t, dir, "tiny", "v1", 999)
	if err := reg.Scan(); err != nil {
		t.Fatal(err)
	}
	sSwap := eng.Stats()
	if got := admittedFor(sSwap, "tiny", "interactive"); got != n1 {
		t.Fatalf("admitted dropped to %d right after swap, want still %d", got, n1)
	}

	for i := 0; i < n2; i++ {
		if _, err := eng.Infer(ctx, Request{Network: "tiny", Input: tinyInput(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s2 := eng.Stats()
	if got := admittedFor(s2, "tiny", "interactive"); got != n1+n2 {
		t.Fatalf("admitted after swap = %d, want %d", got, n1+n2)
	}

	// The live lane's own counter is version-scoped (fresh after the swap) —
	// the cumulative map is the monotonic view, not the queue rows.
	for _, q := range s2.Queues {
		if q.Network == "tiny" && q.Class == "interactive" && q.Admitted != n2 {
			t.Fatalf("post-swap lane admitted = %d, want %d (lane counters are per-artifact)", q.Admitted, n2)
		}
	}
}

func TestEvictionPreservesCumulativeAdmissions(t *testing.T) {
	dir := t.TempDir()
	writeTinyArtifact(t, dir, "tiny", "v1", 100)
	eng, reg := registryEngine(t, dir, 0, Config{Workers: 2})
	ctx := context.Background()

	if _, err := eng.Infer(ctx, Request{Network: "tiny", Input: tinyInput(1)}); err != nil {
		t.Fatal(err)
	}
	// Shrink the budget to force the resident artifact out; its batcher
	// retires, then the next request lazily recompiles into a fresh one.
	reg.SetMemoryBudget(1)
	if got := admittedFor(eng.Stats(), "tiny", "interactive"); got != 1 {
		t.Fatalf("admitted after eviction = %d, want 1", got)
	}
	reg.SetMemoryBudget(0)
	if _, err := eng.Infer(ctx, Request{Network: "tiny", Input: tinyInput(2)}); err != nil {
		t.Fatal(err)
	}
	if got := admittedFor(eng.Stats(), "tiny", "interactive"); got != 2 {
		t.Fatalf("admitted after recompile = %d, want 2", got)
	}
}
