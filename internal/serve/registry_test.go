package serve

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/model"
	"patdnn/internal/modelfile"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/registry"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

// tinyArtifactFile builds a deployable two-conv artifact matching the
// tinyModel trunk: conv(4→8 @12×12) → [inferred pool 2] → conv(8→8 @6×6),
// with real biases. Weights vary with seed so versions are distinguishable.
func tinyArtifactFile(seed int64) *modelfile.File {
	set := pattern.Canonical(8)
	layers := []*model.Layer{
		{Name: "c1", Kind: model.Conv, InC: 4, OutC: 8, KH: 3, KW: 3,
			Stride: 1, Pad: 1, Groups: 1, InH: 12, InW: 12, OutH: 12, OutW: 12},
		{Name: "c2", Kind: model.Conv, InC: 8, OutC: 8, KH: 3, KW: 3,
			Stride: 1, Pad: 1, Groups: 1, InH: 6, InW: 6, OutH: 6, OutW: 6},
	}
	rng := rand.New(rand.NewSource(seed))
	f := &modelfile.File{LR: &lr.Representation{Model: "tiny-cnn", Device: "CPU"}}
	for i, l := range layers {
		c := pruned.Generate(l, set, 2, seed+int64(i), true)
		bias := make([]float32, c.OutC)
		for j := range bias {
			bias[j] = float32(rng.NormFloat64()) * 0.1
		}
		f.Layers = append(f.Layers, modelfile.Layer{Conv: c, Bias: bias})
	}
	return f
}

func writeTinyArtifact(t *testing.T, dir, name, ver string, seed int64) string {
	t.Helper()
	return writeTinyArtifactQ(t, dir, name, ver, seed, 0)
}

// writeTinyArtifactQ writes the tiny trunk quantized to the given bit width
// (0 keeps FP16 v1/v2; 8 produces a modelfile v3 with int8 weight streams).
func writeTinyArtifactQ(t *testing.T, dir, name, ver string, seed int64, bits int) string {
	t.Helper()
	path := filepath.Join(dir, registry.FileName(name, ver))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mf := tinyArtifactFile(seed)
	mf.QuantBits = bits
	if err := modelfile.Write(f, mf); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	mt := time.Unix(1700000000+seed, seed)
	if err := os.Chtimes(path, mt, mt); err != nil {
		t.Fatal(err)
	}
	return path
}

// registryEngine stands up an engine over a models dir with background
// polling disabled (tests drive Scan explicitly).
func registryEngine(t *testing.T, dir string, budget int64, cfg Config) (*Engine, *registry.Registry) {
	t.Helper()
	eng := New(cfg)
	t.Cleanup(func() { eng.Close() })
	reg, err := eng.WithRegistry(registry.Config{Dir: dir, MemoryBudget: budget, Poll: -1})
	if err != nil {
		t.Fatal(err)
	}
	return eng, reg
}

func TestRegistryServeExactAndLatest(t *testing.T) {
	dir := t.TempDir()
	writeTinyArtifact(t, dir, "tiny", "v1", 100)
	writeTinyArtifact(t, dir, "tiny", "v2", 200)
	eng, _ := registryEngine(t, dir, 0, Config{Workers: 2})
	ctx := context.Background()

	r1, err := eng.Infer(ctx, Request{Network: "tiny@v1", Input: tinyInput(1)})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Version != "v1" || r1.Network != "tiny" || r1.Shape != [3]int{8, 6, 6} {
		t.Fatalf("v1 response: %+v", r1)
	}
	rLatest, err := eng.Infer(ctx, Request{Network: "tiny", Input: tinyInput(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rLatest.Version != "v2" {
		t.Fatalf("bare name served %s, want latest v2", rLatest.Version)
	}
	same := true
	for i := range r1.Output {
		if r1.Output[i] != rLatest.Output[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("v1 and v2 produced identical outputs; versions are not distinct")
	}
	if _, err := eng.Infer(ctx, Request{Network: "tiny@v9"}); err == nil {
		t.Fatal("unknown version served")
	}
	if _, err := eng.Infer(ctx, Request{Network: "ghost@v1"}); err == nil {
		t.Fatal("unknown registry model served")
	}
}

// TestRegistryServesFileBitExact cross-checks the registry serving path
// against a hand-assembled pipeline over the same artifact: same decoded
// FP16 weights and biases, conv+bias+ReLU per layer, max-pool between the
// spatial shrinks. Only kernel-level differences (auto may pick packed vs
// the tuned reference) are tolerated.
func TestRegistryServesFileBitExact(t *testing.T) {
	dir := t.TempDir()
	path := writeTinyArtifact(t, dir, "tiny", "v1", 300)
	eng, _ := registryEngine(t, dir, 0, Config{Workers: 2, MaxBatch: 1})

	fh, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := modelfile.Read(fh)
	fh.Close()
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.FromSlice(tinyInput(3), 4, 12, 12)
	pool := runtime.NewPool(2)
	x := in
	for _, layer := range mf.Layers {
		if layer.Conv.InH != x.Dim(1) {
			x, _ = tensor.MaxPool2D(x, x.Dim(1)/layer.Conv.InH)
		}
		plan, err := codegen.Compile(layer.Conv, codegen.Tuned, lr.DefaultTuning())
		if err != nil {
			t.Fatal(err)
		}
		x = pool.RunLayerFused(plan, x, layer.Bias, true)
	}

	resp, err := eng.Infer(context.Background(), Request{Network: "tiny@v1", Input: tinyInput(3)})
	if err != nil {
		t.Fatal(err)
	}
	got := tensor.FromSlice(resp.Output, resp.Shape[0], resp.Shape[1], resp.Shape[2])
	if d := got.MaxAbsDiff(x); d > 1e-3 {
		t.Fatalf("registry serving diverged from the reference pipeline by %g", d)
	}
}

func TestRegistryHotReloadSwapRetiresBatcher(t *testing.T) {
	dir := t.TempDir()
	writeTinyArtifact(t, dir, "tiny", "v1", 100)
	eng, reg := registryEngine(t, dir, 0, Config{Workers: 2})
	ctx := context.Background()

	before, err := eng.Infer(ctx, Request{Network: "tiny", Input: tinyInput(1)})
	if err != nil {
		t.Fatal(err)
	}
	// Replace v1 in place with different weights: the scan must atomically
	// swap the entry, retire the old batcher, and serve the new plans.
	writeTinyArtifact(t, dir, "tiny", "v1", 999)
	if err := reg.Scan(); err != nil {
		t.Fatal(err)
	}
	after, err := eng.Infer(ctx, Request{Network: "tiny", Input: tinyInput(1)})
	if err != nil {
		t.Fatal(err)
	}
	if after.Version != "v1" {
		t.Fatalf("swapped artifact served version %s", after.Version)
	}
	same := true
	for i := range before.Output {
		if before.Output[i] != after.Output[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("hot reload kept serving the old weights")
	}
	eng.mu.Lock()
	n := len(eng.batchers)
	eng.mu.Unlock()
	if n != 1 {
		t.Fatalf("%d batchers alive after hot swap, want 1 (old one retired)", n)
	}
	if s := eng.Stats(); s.Registry == nil || s.Registry.Reloads != 1 {
		t.Fatalf("registry stats after swap: %+v", s.Registry)
	}
}

func TestRegistryMemoryBudgetEvictsAndLazilyRecompiles(t *testing.T) {
	dir := t.TempDir()
	writeTinyArtifact(t, dir, "tiny", "v1", 100)
	writeTinyArtifact(t, dir, "tiny", "v2", 200)
	eng, reg := registryEngine(t, dir, 0, Config{Workers: 2})
	ctx := context.Background()

	if _, err := eng.Infer(ctx, Request{Network: "tiny@v1"}); err != nil {
		t.Fatal(err)
	}
	one := eng.Stats().Registry.BytesInUse
	if one <= 0 {
		t.Fatalf("resident bytes = %d after first load", one)
	}
	// Budget admits one resident model: loading v2 must evict v1.
	reg.SetMemoryBudget(one + one/2)
	if _, err := eng.Infer(ctx, Request{Network: "tiny@v2"}); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats().Registry
	if s.Evictions != 1 || s.Loaded != 1 || s.BytesInUse > s.MemoryBudget {
		t.Fatalf("after v2 load: %+v", s)
	}
	// v1 recompiles transparently on its next hit (a lazy reload), evicting
	// v2 in turn.
	if _, err := eng.Infer(ctx, Request{Network: "tiny@v1"}); err != nil {
		t.Fatal(err)
	}
	s = eng.Stats().Registry
	if s.LazyReloads != 1 || s.Evictions != 2 {
		t.Fatalf("after lazy reload: %+v", s)
	}
	// Eviction retired the victims' batchers; only the resident model's
	// batcher survives.
	eng.mu.Lock()
	n := len(eng.batchers)
	eng.mu.Unlock()
	if n != 1 {
		t.Fatalf("%d batchers alive, want 1", n)
	}
	// The merged /models listing carries version + residency + bytes.
	var loaded, cold int
	for _, m := range eng.Models() {
		if m.Source != "registry" {
			t.Fatalf("unexpected non-registry model %+v", m)
		}
		if m.Loaded {
			loaded++
			if m.MemoryBytes <= 0 || m.LastUsed.IsZero() {
				t.Fatalf("loaded model missing bytes/last-used: %+v", m)
			}
		} else {
			cold++
		}
	}
	if loaded != 1 || cold != 1 {
		t.Fatalf("listing: %d loaded / %d cold, want 1/1", loaded, cold)
	}
}

// TestRegistryQuantizedBudgetHoldsMoreVersions is the quantized-LRU proof:
// a v3 int8 artifact is byte-accounted at its real (~4× smaller) resident
// size, so a memory budget sized to hold one-and-a-half FP32 copies of the
// same trunk keeps three quantized versions resident with zero evictions.
func TestRegistryQuantizedBudgetHoldsMoreVersions(t *testing.T) {
	ctx := context.Background()

	// Measure the FP32 resident footprint of the tiny trunk.
	fpDir := t.TempDir()
	writeTinyArtifact(t, fpDir, "tiny", "v1", 100)
	fpEng, _ := registryEngine(t, fpDir, 0, Config{Workers: 2})
	if _, err := fpEng.Infer(ctx, Request{Network: "tiny"}); err != nil {
		t.Fatal(err)
	}
	fp32 := fpEng.Stats().Registry.BytesInUse
	if fp32 <= 0 {
		t.Fatalf("FP32 resident bytes = %d", fp32)
	}

	// The same trunk quantized: int8 levels + per-filter scales replace both
	// float32 streams, so one version's footprint lands well under half the
	// FP32 figure (in practice ~4× smaller).
	qDir := t.TempDir()
	for i, ver := range []string{"v1", "v2", "v3"} {
		writeTinyArtifactQ(t, qDir, "tiny", ver, 100+int64(i)*100, 8)
	}
	qEng, _ := registryEngine(t, qDir, fp32+fp32/2, Config{Workers: 2})
	if _, err := qEng.Infer(ctx, Request{Network: "tiny@v1"}); err != nil {
		t.Fatal(err)
	}
	q8 := qEng.Stats().Registry.BytesInUse
	if q8 <= 0 || 2*q8 >= fp32 {
		t.Fatalf("quantized resident bytes = %d, want well under half of FP32 %d", q8, fp32)
	}

	// A budget that admits one-and-a-half FP32 copies holds all three
	// quantized versions at once: no evictions, all resident, and every
	// listing row carries the quantized level.
	for _, net := range []string{"tiny@v2", "tiny@v3"} {
		if _, err := qEng.Infer(ctx, Request{Network: net}); err != nil {
			t.Fatal(err)
		}
	}
	s := qEng.Stats().Registry
	if s.Loaded != 3 || s.Evictions != 0 || s.BytesInUse > s.MemoryBudget {
		t.Fatalf("quantized fleet under FP32-sized budget: %+v", s)
	}
	for _, m := range qEng.Models() {
		if !m.Loaded {
			t.Fatalf("version %s not resident: %+v", m.Version, m)
		}
		if m.Level != codegen.LevelTag(codegen.PackedQ8) {
			t.Fatalf("version %s listed at level %q, want packedq8", m.Version, m.Level)
		}
	}
}

// TestQuantizedRegistryServesEndToEnd is the tentpole's end-to-end proof: a
// v3 quantized artifact in a registry dir hot-loads, serves /infer at level
// packedq8 (explicitly requestable), agrees with the FP32 packed serving
// path on top-1 and within the quantization tolerance, reports the quantized
// level through /models, and warm-recompiles against the persisted tuning DB
// with zero search work — the DB keys carry the new level tag.
func TestQuantizedRegistryServesEndToEnd(t *testing.T) {
	const seed = 700
	ctx := context.Background()
	in := tinyInput(5)

	qDir := t.TempDir()
	writeTinyArtifactQ(t, qDir, "tiny", "v1", seed, 8)
	dbPath := filepath.Join(qDir, "tuning.json")
	eng, _ := registryEngine(t, qDir, 0, Config{Workers: 2, TuningDB: dbPath})

	// The artifact serves quantized by default under "auto"; the explicit
	// per-request spelling resolves to the same compiled model.
	r8, err := eng.Infer(ctx, Request{Network: "tiny", Level: "packedq8", Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if r8.Level != codegen.LevelTag(codegen.PackedQ8) {
		t.Fatalf("response level %q, want packedq8", r8.Level)
	}

	// FP32 reference: the identical trunk, unquantized, served at packed.
	fpDir := t.TempDir()
	writeTinyArtifact(t, fpDir, "tiny", "v1", seed)
	fpEng, _ := registryEngine(t, fpDir, 0, Config{Workers: 2, Level: "packed"})
	rFP, err := fpEng.Infer(ctx, Request{Network: "tiny", Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if a8, aFP := argmax(r8.Output), argmax(rFP.Output); a8 != aFP {
		t.Fatalf("top-1 diverged: packedq8 %d vs packed %d", a8, aFP)
	}
	q := tensor.FromSlice(r8.Output, r8.Shape[0], r8.Shape[1], r8.Shape[2])
	f := tensor.FromSlice(rFP.Output, rFP.Shape[0], rFP.Shape[1], rFP.Shape[2])
	if d := q.MaxAbsDiff(f); d > 5e-2 {
		t.Fatalf("quantized output diverged from FP32 packed by %g", d)
	}

	// /models reports the quantized level and a resident footprint well
	// under the FP32 artifact's.
	var qBytes, fpBytes int64
	for _, m := range eng.Models() {
		if m.Level != codegen.LevelTag(codegen.PackedQ8) {
			t.Fatalf("quantized artifact listed at level %q", m.Level)
		}
		qBytes = m.MemoryBytes
	}
	for _, m := range fpEng.Models() {
		fpBytes = m.MemoryBytes
	}
	if qBytes <= 0 || 2*qBytes >= fpBytes {
		t.Fatalf("quantized resident bytes %d, want well under half of FP32 %d", qBytes, fpBytes)
	}

	// The cold compile missed the empty DB once per conv layer and recorded
	// its decisions under the quantized level's keys.
	cold := eng.Stats()
	if cold.Tuning == nil || cold.Tuning.DB.Misses == 0 || cold.Tuning.DB.Hits != 0 {
		t.Fatalf("cold compile DB traffic: %+v", cold.Tuning)
	}
	if err := eng.Close(); err != nil { // persists the DB
		t.Fatal(err)
	}
	raw, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), codegen.LevelTag(codegen.PackedQ8)) {
		t.Fatalf("tuning DB keys missing the quantized level tag:\n%s", raw)
	}

	// Warm restart over the same DB: the recompile of the v3 artifact hits
	// on every layer and does zero tuner search.
	eng2, _ := registryEngine(t, qDir, 0, Config{Workers: 2, TuningDB: dbPath})
	warm8, err := eng2.Infer(ctx, Request{Network: "tiny", Input: in})
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm8.Output {
		if warm8.Output[i] != r8.Output[i] {
			t.Fatal("warm recompile served different outputs than the cold compile")
		}
	}
	warm := eng2.Stats()
	if warm.Tuning == nil || warm.Tuning.DB.Misses != 0 || warm.Tuning.DB.Hits == 0 {
		t.Fatalf("warm compile DB traffic: %+v, want all hits / zero misses", warm.Tuning)
	}
}

// argmax returns the index of the largest element.
func argmax(xs []float32) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func TestRegistryCorruptDropInDoesNotBreakServing(t *testing.T) {
	dir := t.TempDir()
	writeTinyArtifact(t, dir, "tiny", "v1", 100)
	eng, reg := registryEngine(t, dir, 0, Config{Workers: 2})
	ctx := context.Background()
	if _, err := eng.Infer(ctx, Request{Network: "tiny"}); err != nil {
		t.Fatal(err)
	}

	// A corrupt new version and a truncated rewrite of the good version are
	// both quarantined; the last good artifact keeps serving.
	if err := os.WriteFile(filepath.Join(dir, registry.FileName("tiny", "v2")), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(filepath.Join(dir, registry.FileName("tiny", "v1")))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, registry.FileName("tiny", "v3")), good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reg.Scan(); err != nil {
		t.Fatal(err)
	}
	r, err := eng.Infer(ctx, Request{Network: "tiny"})
	if err != nil || r.Version != "v1" {
		t.Fatalf("serving after corrupt drop-ins: %v / %+v", err, r)
	}
	s := eng.Stats().Registry
	if s.BadFiles != 2 || len(s.Quarantined) != 2 {
		t.Fatalf("quarantine stats: %+v", s)
	}
}

func TestRegistryLevelOverridePinned(t *testing.T) {
	dir := t.TempDir()
	writeTinyArtifact(t, dir, "tiny", "v1", 100)
	eng, _ := registryEngine(t, dir, 0, Config{Workers: 1})
	ctx := context.Background()
	if _, err := eng.Infer(ctx, Request{Network: "tiny", Level: "noopt"}); err == nil ||
		!strings.Contains(err.Error(), "compiled at level") {
		t.Fatalf("conflicting level override: %v, want pinned-level error", err)
	}
	// The engine's own level spelling is accepted.
	if _, err := eng.Infer(ctx, Request{Network: "tiny", Level: "auto"}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryAndGeneratorPathsCoexist(t *testing.T) {
	dir := t.TempDir()
	writeTinyArtifact(t, dir, "disktiny", "v1", 100)
	eng, _ := registryEngine(t, dir, 0, Config{Workers: 2})
	if err := eng.RegisterModel(tinyModel("gentiny", "synthetic")); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rd, err := eng.Infer(ctx, Request{Network: "disktiny", Input: tinyInput(1)})
	if err != nil || rd.Version != "v1" {
		t.Fatalf("registry infer: %v / %+v", err, rd)
	}
	rg, err := eng.Infer(ctx, Request{Network: "gentiny", Dataset: "synthetic", Input: tinyInput(1)})
	if err != nil || rg.Version != "" {
		t.Fatalf("generator infer: %v / %+v", err, rg)
	}
	var sources []string
	for _, m := range eng.Models() {
		sources = append(sources, m.Source)
	}
	if len(sources) != 2 || sources[0] != "registry" || sources[1] != "generator" {
		t.Fatalf("merged listing sources = %v", sources)
	}

	// A registry artifact must not shadow generator models of other
	// datasets: a non-empty Dataset speaks the generator protocol, so the
	// same bare name with a dataset resolves through the generator path.
	if err := eng.RegisterModel(tinyModel("disktiny", "synthetic")); err != nil {
		t.Fatal(err)
	}
	rBoth, err := eng.Infer(ctx, Request{Network: "disktiny", Dataset: "synthetic", Input: tinyInput(1)})
	if err != nil {
		t.Fatalf("dataset-qualified request fell into the registry: %v", err)
	}
	if rBoth.Version != "" || rBoth.Dataset != "synthetic" {
		t.Fatalf("dataset-qualified request served %+v, want the generator model", rBoth)
	}
}

func TestEngineReadinessStates(t *testing.T) {
	dir := t.TempDir()
	writeTinyArtifact(t, dir, "tiny", "v1", 100)
	writeTinyArtifact(t, dir, "tiny", "v2", 200)
	eng, _ := registryEngine(t, dir, 0, Config{Workers: 1})
	if err := eng.RegisterModel(tinyModel("gen", "synthetic")); err != nil {
		t.Fatal(err)
	}
	rd := eng.Readiness()
	if !rd.Ready || rd.Registry == nil || !rd.Registry.InitialScan {
		t.Fatalf("readiness = %+v", rd)
	}
	states := map[string]string{}
	for _, m := range rd.Models {
		states[m.Network+"@"+m.Version] = m.State
	}
	// The generator model is compiled; both registry versions are cold (lazy)
	// — cold must not block readiness.
	if states["gen@"] != "ready" || states["tiny@v1"] != "cold" || states["tiny@v2"] != "cold" {
		t.Fatalf("states = %v", states)
	}
	if _, err := eng.Infer(context.Background(), Request{Network: "tiny@v1"}); err != nil {
		t.Fatal(err)
	}
	rd = eng.Readiness()
	for _, m := range rd.Models {
		if m.Version == "v1" && m.State != "ready" {
			t.Fatalf("loaded version state = %+v", m)
		}
	}
}

// TestLazyCompileDoesNotGateReadiness: a client-triggered compile on an
// otherwise-warm engine must not flip /readyz — only explicit warm-up work
// (Preload, RegisterModel) gates. The compile window is observed by polling
// Readiness while a slow lazy compile runs.
func TestLazyCompileDoesNotGateReadiness(t *testing.T) {
	eng := New(Config{Workers: 2})
	defer eng.Close()
	if err := eng.RegisterModel(tinyModel("tiny", "synthetic")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Lazy path: an uncached paper model requested by a client.
		_, _ = eng.Infer(context.Background(), Request{Network: "VGG", Dataset: "cifar10"})
	}()
	for {
		select {
		case <-done:
			if rd := eng.Readiness(); !rd.Ready {
				t.Fatalf("unready after lazy compile finished: %+v", rd)
			}
			return
		default:
		}
		rd := eng.Readiness()
		for _, m := range rd.Models {
			if m.State == "compiling" && !rd.Ready {
				t.Fatalf("lazy compile of %s/%s gated readiness: %+v", m.Network, m.Dataset, rd)
			}
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetiredArtifactServesStragglersUnbatched pins the eviction race: a
// request that resolved an artifact just before the registry dropped it must
// still be served — unbatched, without resurrecting a batcher that nobody
// would ever retire (which would pin the evicted plan stack until Close).
func TestRetiredArtifactServesStragglersUnbatched(t *testing.T) {
	dir := t.TempDir()
	writeTinyArtifact(t, dir, "tiny", "v1", 100)
	eng, reg := registryEngine(t, dir, 0, Config{Workers: 2})
	ctx := context.Background()

	// Resolve the way a racing request would, holding on to the artifact.
	res, err := reg.Resolve("tiny")
	if err != nil {
		t.Fatal(err)
	}
	cm := res.Artifact.(*diskArtifact).cm
	want, err := eng.Infer(ctx, Request{Network: "tiny", Input: tinyInput(1)})
	if err != nil {
		t.Fatal(err)
	}

	// The registry drops the artifact (budget shrink → Release → retire).
	reg.SetMemoryBudget(1)
	if !cm.retired.Load() {
		t.Fatal("Release did not mark the artifact retired")
	}
	eng.mu.Lock()
	n := len(eng.batchers)
	eng.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d batchers alive after eviction", n)
	}

	// The straggler dispatches against the retired cm directly.
	in, err := cm.inputTensor(tinyInput(1))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.dispatch(ctx, cm, in, ClassInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if resp.BatchSize != 1 || resp.Version != "v1" {
		t.Fatalf("straggler response: %+v", resp)
	}
	for i, v := range resp.Output {
		if v != want.Output[i] {
			t.Fatalf("straggler output[%d] = %g, want %g", i, v, want.Output[i])
		}
	}
	eng.mu.Lock()
	n = len(eng.batchers)
	eng.mu.Unlock()
	if n != 0 {
		t.Fatalf("straggler resurrected %d batcher(s) for a retired artifact", n)
	}
}

// TestRegistryConcurrencyHammer drives hot reloads, corruption, evictions,
// route changes, and inference simultaneously under the race detector.
func TestRegistryConcurrencyHammer(t *testing.T) {
	dir := t.TempDir()
	writeTinyArtifact(t, dir, "tiny", "v1", 100)
	writeTinyArtifact(t, dir, "tiny", "v2", 200)
	eng, reg := registryEngine(t, dir, 0, Config{Workers: 4, MaxBatch: 4, BatchWindow: 200 * time.Microsecond})
	if err := reg.SetRoute("tiny", map[string]int{"v1": 1, "v2": 1}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			specs := []string{"tiny", "tiny@v1", "tiny@v2"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := eng.Infer(context.Background(),
					Request{Network: specs[(i+g)%len(specs)], Input: tinyInput(i)})
				// A version mid-swap may briefly fail its load (truncated
				// rewrite) or vanish; those are well-formed errors, never
				// hangs or panics.
				if err != nil && !strings.Contains(err.Error(), "registry") {
					t.Errorf("infer: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			switch i % 3 {
			case 0:
				writeTinyArtifact(t, dir, "tiny", "v2", int64(1000+i))
			case 1:
				p := filepath.Join(dir, registry.FileName("tiny", "v2"))
				os.WriteFile(p, []byte("garbage"), 0o644)
				mt := time.Unix(1700005000+int64(i), 0)
				os.Chtimes(p, mt, mt)
			case 2:
				reg.SetMemoryBudget(int64(4000 + 100*i))
			}
			if err := reg.Scan(); err != nil {
				t.Error(err)
				return
			}
		}
		reg.SetMemoryBudget(0)
	}()
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The last good v1 always survives, and the books still balance.
	if _, err := eng.Infer(context.Background(), Request{Network: "tiny@v1"}); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats().Registry
	var resident int64
	for _, m := range eng.Models() {
		resident += m.MemoryBytes
	}
	if resident != s.BytesInUse {
		t.Fatalf("byte accounting drifted: listing %d vs stats %d", resident, s.BytesInUse)
	}
}
