package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"patdnn/internal/tensor"
)

func TestNewAndEntries(t *testing.T) {
	p := New(3, 4, 1, 3, 5)
	if p.Entries() != 4 {
		t.Fatalf("Entries = %d, want 4", p.Entries())
	}
	if !p.Has(4) || p.Has(0) {
		t.Fatal("Has wrong")
	}
	want := []int{1, 3, 4, 5}
	got := p.Indices()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(3, 9) },
		func() { New(3, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestString(t *testing.T) {
	p := New(3, 1, 3, 4, 5)
	if s := p.String(); s != ".x./xxx/..." {
		t.Fatalf("String = %q", s)
	}
	if s := Empty.String(); s != ".../.../..." {
		t.Fatalf("Empty String = %q", s)
	}
}

func TestAllNatural(t *testing.T) {
	all := AllNatural()
	if len(all) != 56 {
		t.Fatalf("|natural| = %d, want 56", len(all))
	}
	seen := make(map[uint16]bool)
	for _, p := range all {
		if p.Entries() != 4 {
			t.Fatalf("pattern %v has %d entries", p, p.Entries())
		}
		if !p.HasCenter() {
			t.Fatalf("pattern %v lacks center", p)
		}
		if seen[p.Mask] {
			t.Fatalf("duplicate pattern %v", p)
		}
		seen[p.Mask] = true
	}
}

func TestNaturalKeepsTopMagnitudes(t *testing.T) {
	kernel := []float32{9, 1, 8, 0, 0.5, 0, 7, 0, 0}
	p := Natural(kernel)
	// Center (pos 4) always kept; then 9(pos0), 8(pos2), 7(pos6).
	for _, pos := range []int{0, 2, 4, 6} {
		if !p.Has(pos) {
			t.Fatalf("pattern %v should keep pos %d", p, pos)
		}
	}
}

func TestNaturalDeterministicTieBreak(t *testing.T) {
	kernel := []float32{1, 1, 1, 1, 5, 1, 1, 1, 1} // all ties
	p1 := Natural(kernel)
	p2 := Natural(kernel)
	if p1.Mask != p2.Mask {
		t.Fatal("tie-break not deterministic")
	}
	// Lowest positions win: 0,1,2 + center.
	for _, pos := range []int{0, 1, 2, 4} {
		if !p1.Has(pos) {
			t.Fatalf("tie-break pattern %v", p1)
		}
	}
}

func TestApplyAndRetainedNorm(t *testing.T) {
	kernel := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	p := New(3, 0, 4, 8)
	cp := make([]float32, 9)
	copy(cp, kernel)
	p.Apply(cp)
	if cp[0] != 1 || cp[4] != 5 || cp[8] != 9 {
		t.Fatalf("Apply cleared kept weights: %v", cp)
	}
	if cp[1] != 0 || cp[7] != 0 {
		t.Fatalf("Apply kept pruned weights: %v", cp)
	}
	want := 1.0 + 25 + 81
	got := p.RetainedNorm(kernel)
	if d := got*got - want; d > 1e-6 || d < -1e-6 {
		t.Fatalf("RetainedNorm^2 = %v, want %v", got*got, want)
	}
}

func TestBestPicksMaxNorm(t *testing.T) {
	kernel := []float32{10, 0, 0, 0, 1, 0, 0, 0, 10}
	set := []Pattern{
		New(3, 4, 1, 3, 5), // cross arms: norm^2 = 1
		New(3, 4, 0, 8, 2), // corners incl both 10s: norm^2 = 201
	}
	if got := Best(kernel, set); got.Mask != set[1].Mask {
		t.Fatalf("Best chose %v", got)
	}
}

func TestProjectZeroesOutside(t *testing.T) {
	kernel := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	set := Canonical(8)
	p := Project(kernel, set)
	for pos, v := range kernel {
		if p.Has(pos) && v == 0 {
			t.Fatalf("kept position %d zeroed", pos)
		}
		if !p.Has(pos) && v != 0 {
			t.Fatalf("pruned position %d kept (%v)", pos, v)
		}
	}
}

// Property: projection is idempotent and never increases the L2 norm.
func TestProjectProperties(t *testing.T) {
	set := Canonical(8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kernel := make([]float32, 9)
		for i := range kernel {
			kernel[i] = float32(rng.NormFloat64())
		}
		var before float64
		for _, v := range kernel {
			before += float64(v) * float64(v)
		}
		p1 := Project(kernel, set)
		var after float64
		for _, v := range kernel {
			after += float64(v) * float64(v)
		}
		if after > before+1e-9 {
			return false
		}
		cp := make([]float32, 9)
		copy(cp, kernel)
		p2 := Project(cp, set)
		if p1.Mask != p2.Mask {
			return false
		}
		for i := range cp {
			if cp[i] != kernel[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalSets(t *testing.T) {
	for _, k := range []int{4, 6, 8, 12} {
		set := Canonical(k)
		if len(set) != k {
			t.Fatalf("Canonical(%d) has %d patterns", k, len(set))
		}
		seen := make(map[uint16]bool)
		for _, p := range set {
			if p.Entries() != 4 || !p.HasCenter() {
				t.Fatalf("bad canonical pattern %v", p)
			}
			if seen[p.Mask] {
				t.Fatalf("duplicate canonical pattern %v", p)
			}
			seen[p.Mask] = true
		}
	}
	// The highest-scoring patterns keep all arms orthogonal to the center.
	top := Canonical(4)
	for _, p := range top {
		for _, pos := range p.Indices() {
			if pos != 4 && pos != 1 && pos != 3 && pos != 5 && pos != 7 {
				t.Fatalf("top canonical pattern %v uses diagonal %d", p, pos)
			}
		}
	}
	// Canonical(6) is a prefix of Canonical(12): consistent ranking.
	c6, c12 := Canonical(6), Canonical(12)
	for i := range c6 {
		if c6[i].Mask != c12[i].Mask {
			t.Fatal("Canonical sets are not prefix-consistent")
		}
	}
}

func TestHistogramAndTopK(t *testing.T) {
	// Construct a weight tensor where one natural pattern dominates.
	w := tensor.New(4, 3, 3, 3)
	for oc := 0; oc < 4; oc++ {
		for ic := 0; ic < 3; ic++ {
			off := (oc*3 + ic) * 9
			// Cross pattern strong everywhere except one kernel.
			for _, pos := range []int{1, 3, 4, 5} {
				w.Data[off+pos] = 5
			}
		}
	}
	// One odd kernel with corners dominant.
	for _, pos := range []int{0, 2, 4, 6} {
		w.Data[pos] = 9
	}
	w.Data[1], w.Data[3], w.Data[5] = 0, 0, 0
	h := Histogram(w)
	total := 0
	for _, n := range h {
		total += n
	}
	if total != 12 {
		t.Fatalf("histogram counted %d kernels, want 12", total)
	}
	top := TopK(h, 1)
	want := New(3, 1, 3, 4, 5)
	if top[0].Mask != want.Mask {
		t.Fatalf("TopK = %v, want %v", top[0], want)
	}
}

func TestHistogramIgnoresNon3x3(t *testing.T) {
	w1 := tensor.New(2, 2, 1, 1)
	h := Histogram(w1)
	if len(h) != 0 {
		t.Fatal("1x1 kernels must not contribute")
	}
}

func TestDesignSetFillsFromCanonical(t *testing.T) {
	// A model with a single kernel has one natural pattern; DesignSet(8)
	// must still return 8 distinct patterns.
	w := tensor.New(1, 1, 3, 3)
	for i := range w.Data {
		w.Data[i] = float32(i)
	}
	set := DesignSet(8, w)
	if len(set) != 8 {
		t.Fatalf("DesignSet returned %d patterns", len(set))
	}
	seen := make(map[uint16]bool)
	for _, p := range set {
		if seen[p.Mask] {
			t.Fatal("duplicate in designed set")
		}
		seen[p.Mask] = true
	}
}

func TestIDOf(t *testing.T) {
	set := Canonical(8)
	if IDOf(set[0], set) != 1 || IDOf(set[7], set) != 8 {
		t.Fatal("IDOf wrong for members")
	}
	if IDOf(Empty, set) != 0 {
		t.Fatal("IDOf(Empty) must be 0")
	}
}
