// Package pattern implements PatDNN's kernel patterns: fixed shapes of
// retained weights inside a convolution kernel. For the common 3×3 kernel a
// 4-entry pattern keeps 4 of the 9 weights; the paper's "natural patterns"
// always retain the central weight, giving C(8,3) = 56 candidates. The
// pattern-set designer counts natural patterns over a pre-trained model and
// keeps the Top-k most frequent ones (Section 4.1 of the paper).
package pattern

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Pattern is a set of retained positions inside a K×K kernel, encoded as a
// row-major bitmask (bit i set = position i kept). The zero Pattern keeps
// nothing and is used to denote a kernel removed by connectivity pruning.
type Pattern struct {
	Mask uint16
	K    int
}

// Empty is the pattern of a fully pruned (removed) kernel.
var Empty = Pattern{Mask: 0, K: 3}

// New builds a pattern over a K×K kernel keeping the given row-major
// positions. It panics on out-of-range or duplicate positions.
func New(k int, positions ...int) Pattern {
	p := Pattern{K: k}
	for _, pos := range positions {
		if pos < 0 || pos >= k*k {
			panic(fmt.Sprintf("pattern: position %d out of range for %dx%d kernel", pos, k, k))
		}
		bit := uint16(1) << uint(pos)
		if p.Mask&bit != 0 {
			panic(fmt.Sprintf("pattern: duplicate position %d", pos))
		}
		p.Mask |= bit
	}
	return p
}

// Entries returns the number of retained weights.
func (p Pattern) Entries() int {
	n := 0
	for m := p.Mask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Has reports whether row-major position pos is retained.
func (p Pattern) Has(pos int) bool { return p.Mask&(1<<uint(pos)) != 0 }

// Indices returns the retained row-major positions in ascending order.
func (p Pattern) Indices() []int {
	idx := make([]int, 0, p.Entries())
	for pos := 0; pos < p.K*p.K; pos++ {
		if p.Has(pos) {
			idx = append(idx, pos)
		}
	}
	return idx
}

// IsEmpty reports whether the pattern retains no weights.
func (p Pattern) IsEmpty() bool { return p.Mask == 0 }

// Rotate180 returns the pattern rotated by 180° (row-major position pos maps
// to K*K-1-pos). A transposed convolution over a stride-dilated input is an
// ordinary convolution with the kernel flipped both ways, so the equivalent
// conv's kernels carry the rotated patterns; rotation preserves the entry
// count and, for odd K, the center.
func (p Pattern) Rotate180() Pattern {
	out := Pattern{K: p.K}
	n := p.K * p.K
	for pos := 0; pos < n; pos++ {
		if p.Has(pos) {
			out.Mask |= uint16(1) << uint(n-1-pos)
		}
	}
	return out
}

// HasCenter reports whether the central weight is retained (only meaningful
// for odd K).
func (p Pattern) HasCenter() bool {
	c := (p.K*p.K - 1) / 2
	return p.Has(c)
}

// String renders the pattern as a K×K grid, e.g. ".x./xxx/..." for a cross.
func (p Pattern) String() string {
	var b strings.Builder
	for r := 0; r < p.K; r++ {
		if r > 0 {
			b.WriteByte('/')
		}
		for c := 0; c < p.K; c++ {
			if p.Has(r*p.K + c) {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
	}
	return b.String()
}

// Apply zeroes the pruned positions of a flat K*K kernel slice in place.
func (p Pattern) Apply(kernel []float32) {
	if len(kernel) != p.K*p.K {
		panic(fmt.Sprintf("pattern: kernel len %d does not match %dx%d", len(kernel), p.K, p.K))
	}
	for pos := range kernel {
		if !p.Has(pos) {
			kernel[pos] = 0
		}
	}
}

// RetainedNorm returns the L2 norm of the kernel weights the pattern keeps.
// The ADMM projection assigns each kernel the pattern maximizing this value,
// which is equivalent to minimizing the Euclidean pruning distortion.
func (p Pattern) RetainedNorm(kernel []float32) float64 {
	var s float64
	for _, pos := range p.Indices() {
		v := float64(kernel[pos])
		s += v * v
	}
	return math.Sqrt(s)
}

// AllNatural returns all C(8,3)=56 natural 4-entry patterns for a 3×3
// kernel: the center plus 3 of the remaining 8 positions, in deterministic
// (ascending mask) order.
func AllNatural() []Pattern {
	const k = 3
	const center = 4
	others := []int{0, 1, 2, 3, 5, 6, 7, 8}
	var out []Pattern
	for i := 0; i < len(others); i++ {
		for j := i + 1; j < len(others); j++ {
			for l := j + 1; l < len(others); l++ {
				out = append(out, New(k, center, others[i], others[j], others[l]))
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Mask < out[b].Mask })
	return out
}

// Natural extracts a kernel's natural pattern: the 4 largest-magnitude
// weights, always including the center (paper Section 4.1). kernel must be a
// flat 3×3 slice.
func Natural(kernel []float32) Pattern {
	const k, center = 3, 4
	type wpos struct {
		pos int
		mag float64
	}
	ws := make([]wpos, 0, 8)
	for pos, v := range kernel {
		if pos == center {
			continue
		}
		ws = append(ws, wpos{pos, math.Abs(float64(v))})
	}
	sort.Slice(ws, func(a, b int) bool {
		if ws[a].mag != ws[b].mag {
			return ws[a].mag > ws[b].mag
		}
		return ws[a].pos < ws[b].pos // deterministic tie-break
	})
	return New(k, center, ws[0].pos, ws[1].pos, ws[2].pos)
}

// Best returns the pattern in set with the largest retained L2 norm for the
// kernel (ties broken by lower mask for determinism). It panics on an empty
// set.
func Best(kernel []float32, set []Pattern) Pattern {
	if len(set) == 0 {
		panic("pattern: Best on empty set")
	}
	best := set[0]
	bestNorm := best.RetainedNorm(kernel)
	for _, p := range set[1:] {
		n := p.RetainedNorm(kernel)
		if n > bestNorm || (n == bestNorm && p.Mask < best.Mask) {
			best, bestNorm = p, n
		}
	}
	return best
}

// Project zeroes the kernel weights outside the best-fitting pattern of the
// set and returns the chosen pattern. This is the Euclidean projection used
// by ADMM subproblem 2.
func Project(kernel []float32, set []Pattern) Pattern {
	p := Best(kernel, set)
	p.Apply(kernel)
	return p
}
