package pattern

import (
	"sort"

	"patdnn/internal/tensor"
)

// Histogram counts natural-pattern occurrences over every 3×3 kernel of a
// conv weight tensor [Co, Ci, 3, 3]. Non-3×3 tensors contribute nothing
// (the paper applies pattern pruning to 3×3 kernels only).
func Histogram(weights ...*tensor.Tensor) map[Pattern]int {
	h := make(map[Pattern]int)
	for _, w := range weights {
		if w.Rank() != 4 || w.Dim(2) != 3 || w.Dim(3) != 3 {
			continue
		}
		co, ci := w.Dim(0), w.Dim(1)
		for oc := 0; oc < co; oc++ {
			for ic := 0; ic < ci; ic++ {
				off := ((oc*ci + ic) * 9)
				h[Natural(w.Data[off:off+9])]++
			}
		}
	}
	return h
}

// TopK designs the pattern candidate set: the k most frequent natural
// patterns across the histogram, ties broken by lower mask so the result is
// deterministic (paper Section 4.1).
func TopK(hist map[Pattern]int, k int) []Pattern {
	type pc struct {
		p Pattern
		n int
	}
	all := make([]pc, 0, len(hist))
	for p, n := range hist {
		all = append(all, pc{p, n})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].n != all[b].n {
			return all[a].n > all[b].n
		}
		return all[a].p.Mask < all[b].p.Mask
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]Pattern, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].p
	}
	return out
}

// DesignSet extracts the Top-k pattern set directly from pre-trained conv
// weights, the end-to-end designer used by the training pipeline. If the
// model has fewer than k distinct natural patterns the remainder is filled
// from the canonical set.
func DesignSet(k int, weights ...*tensor.Tensor) []Pattern {
	set := TopK(Histogram(weights...), k)
	if len(set) < k {
		have := make(map[uint16]bool, len(set))
		for _, p := range set {
			have[p.Mask] = true
		}
		for _, p := range Canonical(12) {
			if len(set) == k {
				break
			}
			if !have[p.Mask] {
				set = append(set, p)
				have[p.Mask] = true
			}
		}
	}
	return set
}

// centerAdjacency scores how "visual-cortex like" a pattern is: positions
// orthogonally adjacent to the center score 2, diagonal neighbours score 1.
// The paper observes that desirable kernel shapes cluster around the center,
// matching connection structures in the human visual system.
func centerAdjacency(p Pattern) int {
	orth := map[int]bool{1: true, 3: true, 5: true, 7: true}
	s := 0
	for _, pos := range p.Indices() {
		if pos == 4 {
			continue
		}
		if orth[pos] {
			s += 2
		} else {
			s++
		}
	}
	return s
}

// Canonical returns a deterministic k-pattern set used when no pre-trained
// model is available: the 56 natural patterns ranked by center adjacency
// (descending), ties broken by mask. With k=6/8/12 this yields the compact
// cross-and-corner shapes the paper's Figure 3 illustrates.
func Canonical(k int) []Pattern {
	all := AllNatural()
	sort.Slice(all, func(a, b int) bool {
		sa, sb := centerAdjacency(all[a]), centerAdjacency(all[b])
		if sa != sb {
			return sa > sb
		}
		return all[a].Mask < all[b].Mask
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// IDOf returns 1-based index of p in set, or 0 if absent. ID 0 is reserved
// for the empty (connectivity-pruned) kernel, matching the compiler's
// convention in the FKW format and reorder passes.
func IDOf(p Pattern, set []Pattern) int {
	for i, q := range set {
		if q.Mask == p.Mask && q.K == p.K {
			return i + 1
		}
	}
	return 0
}
