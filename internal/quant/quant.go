// Package quant implements symmetric per-filter INT8 weight quantization for
// the FKW weight stream — the serving-side half of the paper's joint
// pruning + quantization axis. internal/admm already regularizes weights onto
// a uniform symmetric level grid during training (ADMM-NN's third constraint);
// this package encodes the resulting FKW weight stream as one int8 per weight
// plus one float32 scale per output filter, and decodes it back for the
// dequant-fused execution kernels.
//
// The encoding is exact on its own grid: the largest-magnitude weight of a
// filter quantizes to exactly ±limit (limit = 2^(bits-1)−1), so re-quantizing
// a dequantized stream reproduces the same bytes — the property that makes
// modelfile v3 artifacts stable across read → write round trips.
package quant

import (
	"fmt"
	"math"

	"patdnn/internal/sparse"
)

// MinBits and MaxBits bound the supported quantization widths: below 2 bits a
// symmetric grid holds no information, above 8 the int8 storage overflows.
const (
	MinBits = 2
	MaxBits = 8
)

// Limit returns the largest representable level magnitude, 2^(bits-1)−1.
func Limit(bits int) (int, error) {
	if bits < MinBits || bits > MaxBits {
		return 0, fmt.Errorf("quant: bits %d out of range [%d,%d]", bits, MinBits, MaxBits)
	}
	return 1<<(bits-1) - 1, nil
}

// FKW8 is the quantized companion of a sparse.FKW: the same weight stream,
// one int8 level per weight, with one float32 scale per original output
// channel (w ≈ Scales[orig] · Weights[i]). The structural arrays (Offset,
// Reorder, Index, Stride) stay on the FKW — quantization touches only the
// weight level of the format's three-level hierarchy.
type FKW8 struct {
	Bits    int
	Scales  []float32 // len OutC, indexed by ORIGINAL output channel
	Weights []int8    // same order and length as FKW.Weights
}

// EncodedBytes returns the resident size of the quantized weight payload:
// one byte per weight plus a 4-byte scale per filter.
func (q *FKW8) EncodedBytes() int64 {
	return int64(len(q.Weights)) + 4*int64(len(q.Scales))
}

// Quantize encodes f's weight stream at the given bit width. Scales are
// per-filter symmetric: scale = maxAbs/limit over the filter's weights, so
// the largest weight lands exactly on ±limit and nothing saturates. A filter
// with no surviving weights (or all-zero weights) gets scale 1, keeping the
// encoding well-defined without a divide-by-zero.
func Quantize(f *sparse.FKW, bits int) (*FKW8, error) {
	limit, err := Limit(bits)
	if err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("quant: %w", err)
	}
	q := &FKW8{
		Bits:    bits,
		Scales:  make([]float32, f.OutC),
		Weights: make([]int8, len(f.Weights)),
	}
	wOff := 0
	for pos := 0; pos < f.OutC; pos++ {
		orig := int(f.Reorder[pos])
		n := filterWeights(f, pos)
		span := f.Weights[wOff : wOff+n]
		var maxAbs float32
		for _, w := range span {
			if a := abs32(w); a > maxAbs {
				maxAbs = a
			}
		}
		scale := float32(1)
		if maxAbs > 0 {
			scale = maxAbs / float32(limit)
		}
		if math.IsInf(float64(scale), 0) || math.IsNaN(float64(scale)) {
			return nil, fmt.Errorf("quant: filter %d has non-finite weights (maxAbs %g)", orig, maxAbs)
		}
		q.Scales[orig] = scale
		for i, w := range span {
			lv := int(math.RoundToEven(float64(w / scale)))
			// The scale construction makes |w/scale| <= limit; clamp anyway so
			// a float corner case can never overflow the int8.
			if lv > limit {
				lv = limit
			} else if lv < -limit {
				lv = -limit
			}
			q.Weights[wOff+i] = int8(lv)
		}
		wOff += n
	}
	return q, nil
}

// Validate checks q against the structural FKW it quantizes: matching stream
// length and scale count, levels within the bit width's limit, and finite
// positive scales. A malformed instance (e.g. decoded from a corrupted v3
// artifact) errors here instead of corrupting an execution plan.
func (q *FKW8) Validate(f *sparse.FKW) error {
	limit, err := Limit(q.Bits)
	if err != nil {
		return err
	}
	if len(q.Weights) != len(f.Weights) {
		return fmt.Errorf("quant: %d quantized weights for a %d-weight stream", len(q.Weights), len(f.Weights))
	}
	if len(q.Scales) != f.OutC {
		return fmt.Errorf("quant: %d scales for %d output channels", len(q.Scales), f.OutC)
	}
	for oc, s := range q.Scales {
		if !(s > 0) || math.IsInf(float64(s), 0) {
			return fmt.Errorf("quant: filter %d has invalid scale %g", oc, s)
		}
	}
	for i, lv := range q.Weights {
		if int(lv) > limit || int(lv) < -limit {
			return fmt.Errorf("quant: weight %d level %d exceeds %d-bit limit %d", i, lv, q.Bits, limit)
		}
	}
	return nil
}

// Dequantize reconstructs the float32 weight stream for f's layout:
// out[i] = Scales[orig(i)] · Weights[i]. f supplies the structural arrays
// (which scale applies to which stretch of the stream); its Weights field may
// be unset — the stride table implies the stream length, and it must match q.
func (q *FKW8) Dequantize(f *sparse.FKW) ([]float32, error) {
	// Validate structure against the quantized stream length, not whatever
	// f.Weights currently holds (the modelfile reader dequantizes into an FKW
	// whose float32 stream does not exist yet).
	probe := *f
	probe.Weights = make([]float32, len(q.Weights))
	if err := probe.Validate(); err != nil {
		return nil, fmt.Errorf("quant: %w", err)
	}
	if err := q.Validate(&probe); err != nil {
		return nil, err
	}
	f = &probe
	out := probe.Weights
	wOff := 0
	for pos := 0; pos < f.OutC; pos++ {
		orig := int(f.Reorder[pos])
		scale := q.Scales[orig]
		n := filterWeights(f, pos)
		for i := 0; i < n; i++ {
			w := scale * float32(q.Weights[wOff+i])
			// A crafted scale near float32-max can overflow the product even
			// though scale and level are each finite; reject rather than hand
			// Inf weights to the kernels.
			if math.IsInf(float64(w), 0) {
				return nil, fmt.Errorf("quant: filter %d weight %d overflows float32 (scale %g)", orig, wOff+i, scale)
			}
			out[wOff+i] = w
		}
		wOff += n
	}
	return out, nil
}

// filterWeights returns how many weights reordered filter position pos
// contributes to the stream. Callers must have validated f.
func filterWeights(f *sparse.FKW, pos int) int {
	n := 0
	for slot, p := range f.Patterns {
		start, end, _ := f.KernelsOf(pos, slot)
		n += (end - start) * p.Entries()
	}
	return n
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
