package quant

import (
	"bytes"
	"testing"

	"patdnn/internal/compiler/reorder"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/sparse"
)

// testFKW builds a realistically pruned layer's FKW (with a non-identity FKR
// permutation, so the scale indexing by original channel is actually
// exercised).
func testFKW(t *testing.T, seed int64) *sparse.FKW {
	t.Helper()
	l := &model.Layer{Name: "q", Kind: model.Conv, InC: 12, OutC: 16, KH: 3, KW: 3,
		Groups: 1, Stride: 1, Pad: 1, InH: 8, InW: 8, OutH: 8, OutW: 8}
	c := pruned.Generate(l, pattern.Canonical(8), 3.6, seed, true)
	f, err := sparse.Encode(c, reorder.Build(c).FilterPerm)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestQuantizeRoundTripStable(t *testing.T) {
	f := testFKW(t, 7)
	q, err := Quantize(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	deq, err := q.Dequantize(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(deq) != len(f.Weights) {
		t.Fatalf("dequantized stream has %d weights, want %d", len(deq), len(f.Weights))
	}
	// Dequantization error is bounded by half a step per weight.
	wOff := 0
	for pos := 0; pos < f.OutC; pos++ {
		orig := int(f.Reorder[pos])
		n := filterWeights(f, pos)
		half := q.Scales[orig] / 2
		for i := wOff; i < wOff+n; i++ {
			if d := abs32(deq[i] - f.Weights[i]); d > half+1e-7 {
				t.Fatalf("filter %d weight %d: |%g - %g| = %g exceeds half-step %g",
					orig, i, deq[i], f.Weights[i], d, half)
			}
		}
		wOff += n
	}
	// Re-quantizing the dequantized stream is byte-exact: the max-abs weight
	// sits exactly on ±limit, so the scale reproduces itself.
	f2 := *f
	f2.Weights = deq
	q2, err := Quantize(&f2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(int8Bytes(q.Weights), int8Bytes(q2.Weights)) {
		t.Fatal("re-quantization changed the level stream")
	}
	for oc := range q.Scales {
		if q.Scales[oc] != q2.Scales[oc] {
			t.Fatalf("scale %d drifted: %g -> %g", oc, q.Scales[oc], q2.Scales[oc])
		}
	}
}

func TestQuantizeSaturationChecked(t *testing.T) {
	f := testFKW(t, 11)
	for _, bits := range []int{2, 4, 8} {
		q, err := Quantize(f, bits)
		if err != nil {
			t.Fatal(err)
		}
		limit, _ := Limit(bits)
		hit := false
		for _, lv := range q.Weights {
			if int(lv) > limit || int(lv) < -limit {
				t.Fatalf("bits=%d: level %d exceeds limit %d", bits, lv, limit)
			}
			if int(lv) == limit || int(lv) == -limit {
				hit = true
			}
		}
		// The per-filter max-abs weight must land exactly on the limit —
		// that is what makes the grid self-reproducing.
		if !hit {
			t.Fatalf("bits=%d: no weight reached the ±%d limit", bits, limit)
		}
		if err := q.Validate(f); err != nil {
			t.Fatalf("bits=%d: fresh encoding fails validation: %v", bits, err)
		}
	}
}

func TestQuantizeRejectsBadBits(t *testing.T) {
	f := testFKW(t, 3)
	for _, bits := range []int{-1, 0, 1, 9, 16} {
		if _, err := Quantize(f, bits); err == nil {
			t.Fatalf("Quantize accepted bits=%d", bits)
		}
		if _, err := Limit(bits); err == nil {
			t.Fatalf("Limit accepted bits=%d", bits)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	f := testFKW(t, 5)
	fresh := func() *FKW8 {
		q, err := Quantize(f, 8)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	cases := []struct {
		name   string
		mutate func(*FKW8)
	}{
		{"zero-scale", func(q *FKW8) { q.Scales[0] = 0 }},
		{"negative-scale", func(q *FKW8) { q.Scales[1] = -0.5 }},
		{"nan-scale", func(q *FKW8) { q.Scales[2] = nan32() }},
		{"level-overflow", func(q *FKW8) { q.Bits = 4 }},
		{"short-stream", func(q *FKW8) { q.Weights = q.Weights[:len(q.Weights)-1] }},
		{"short-scales", func(q *FKW8) { q.Scales = q.Scales[:len(q.Scales)-1] }},
		{"bad-bits", func(q *FKW8) { q.Bits = 1 }},
	}
	for _, tc := range cases {
		q := fresh()
		tc.mutate(q)
		if err := q.Validate(f); err == nil {
			t.Errorf("%s: corruption passed validation", tc.name)
		}
		if _, err := q.Dequantize(f); err == nil {
			t.Errorf("%s: corruption passed Dequantize", tc.name)
		}
	}
}

func TestEncodedBytesIsQuarterOfFloat32(t *testing.T) {
	f := testFKW(t, 9)
	q, err := Quantize(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	fp32 := int64(4 * len(f.Weights))
	got := q.EncodedBytes()
	want := int64(len(f.Weights)) + 4*int64(f.OutC)
	if got != want {
		t.Fatalf("EncodedBytes = %d, want %d", got, want)
	}
	// The stream itself is exactly 4× smaller; the scale table is the only
	// overhead and stays tiny relative to the weights.
	if got >= fp32 {
		t.Fatalf("quantized payload %d not smaller than fp32 payload %d", got, fp32)
	}
}

func int8Bytes(s []int8) []byte {
	out := make([]byte, len(s))
	for i, v := range s {
		out[i] = byte(v)
	}
	return out
}

func nan32() float32 {
	z := float32(0)
	return z / z
}
