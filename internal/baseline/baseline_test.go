package baseline

import (
	"math/rand"
	"testing"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/device"
	"patdnn/internal/model"
	"patdnn/internal/sparse"
	"patdnn/internal/tensor"
)

func TestWinogradMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []struct{ ci, co, h, w int }{
		{3, 4, 8, 8}, {2, 2, 7, 9}, {5, 3, 6, 6},
	} {
		in := tensor.New(cfg.ci, cfg.h, cfg.w)
		in.Randn(rng, 1)
		wt := tensor.New(cfg.co, cfg.ci, 3, 3)
		wt.Randn(rng, 1)
		b := tensor.New(cfg.co)
		b.Randn(rng, 1)
		want := tensor.Conv2D(in, wt, b, tensor.ConvSpec{Stride: 1, Pad: 1})
		got := WinogradConv3x3(in, wt, b)
		if !got.AllClose(want, 1e-3) {
			t.Fatalf("cfg %+v: winograd diff %g", cfg, got.MaxAbsDiff(want))
		}
	}
}

func TestWinogradNilBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := tensor.New(2, 5, 5)
	in.Randn(rng, 1)
	wt := tensor.New(3, 2, 3, 3)
	wt.Randn(rng, 1)
	want := tensor.Conv2D(in, wt, nil, tensor.ConvSpec{Stride: 1, Pad: 1})
	if got := WinogradConv3x3(in, wt, nil); !got.AllClose(want, 1e-3) {
		t.Fatalf("diff %g", got.MaxAbsDiff(want))
	}
}

func TestCSRConvMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := tensor.New(3, 9, 7)
	in.Randn(rng, 1)
	wt := tensor.New(4, 3, 3, 3)
	// Sparsify ~60%.
	for i := range wt.Data {
		if rng.Float64() < 0.4 {
			wt.Data[i] = float32(rng.NormFloat64())
		}
	}
	b := tensor.New(4)
	b.Randn(rng, 1)
	spec := tensor.ConvSpec{Stride: 1, Pad: 1}
	want := tensor.Conv2D(in, wt, b, spec)
	csr := sparse.FromConvWeights(wt)
	got := CSRConv(in, csr, b, 3, 3, spec)
	if !got.AllClose(want, 1e-3) {
		t.Fatalf("CSR conv diff %g", got.MaxAbsDiff(want))
	}
}

func TestFrameworkOrderingCPU(t *testing.T) {
	// Figure 12's CPU ordering for every network: TFLite slowest, then TVM,
	// then MNN, then PatDNN (sparse).
	d := device.SD855()
	for _, m := range []*model.Model{model.VGG16("imagenet"), model.VGG16("cifar10")} {
		var times []float64
		for _, f := range DenseFrameworks() {
			ms, err := f.TimeMs(m, d, device.CPU)
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, ms)
		}
		if !(times[0] > times[1] && times[1] > times[2]) {
			t.Fatalf("%s/%s CPU ordering wrong: TFLite %.1f TVM %.1f MNN %.1f",
				m.Short, m.Dataset, times[0], times[1], times[2])
		}
	}
}

func TestPatDNNBeatsAllDense(t *testing.T) {
	d := device.SD855()
	m := model.VGG16("imagenet")
	ps, err := CompilePatDNN(m, 8, 3.6, codegen.Tuned, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []device.Target{device.CPU, device.GPU} {
		pat := ps.TimeMs(d, target)
		for _, f := range DenseFrameworks() {
			ms, err := f.TimeMs(m, d, target)
			if err != nil {
				continue // TFLite VGG GPU unsupported
			}
			if pat >= ms {
				t.Fatalf("%s %s: PatDNN %.1f not faster than %s %.1f",
					m.Short, target, pat, f.Name, ms)
			}
		}
	}
}

func TestSpeedupRangesVGGCPU(t *testing.T) {
	// Paper: CPU speedups over TFLite 12.3-44.5x, TVM 2.4-5.1x,
	// MNN 1.9-7.1x. Check VGG/ImageNet lands inside (wide) versions of
	// those bands.
	d := device.SD855()
	m := model.VGG16("imagenet")
	ps, err := CompilePatDNN(m, 8, 3.6, codegen.Tuned, 1)
	if err != nil {
		t.Fatal(err)
	}
	pat := ps.TimeMs(d, device.CPU)
	check := func(f Framework, lo, hi float64) {
		ms, err := f.TimeMs(m, d, device.CPU)
		if err != nil {
			t.Fatal(err)
		}
		s := ms / pat
		if s < lo || s > hi {
			t.Errorf("%s speedup %.1fx outside [%.1f, %.1f]", f.Name, s, lo, hi)
		}
	}
	check(TFLite(), 8, 50)
	check(TVM(), 2, 8)
	check(MNN(), 1.5, 8)
}

func TestTFLiteVGGGPUUnsupported(t *testing.T) {
	_, err := TFLite().TimeMs(model.VGG16("imagenet"), device.SD855(), device.GPU)
	if err == nil {
		t.Fatal("TFLite must reject VGG/ImageNet on GPU (paper footnote 3)")
	}
	// Smaller models are fine.
	if _, err := TFLite().TimeMs(model.MobileNetV2("imagenet"), device.SD855(), device.GPU); err != nil {
		t.Fatal(err)
	}
}

func TestVGGGPURealTime(t *testing.T) {
	// The headline: PatDNN completes VGG CONV layers in ~18.9 ms on the
	// Adreno 640, under the 33 ms real-time bound. Allow a generous band
	// around the paper's number since our GPU is a model.
	d := device.SD855()
	m := model.VGG16("imagenet")
	ps, err := CompilePatDNN(m, 8, 3.6, codegen.Tuned, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Exclude FC (the paper's 18.9 ms covers CONV layers).
	var convStats []codegen.InstrStats
	i := 0
	for _, l := range m.Layers {
		if l.IsConv() || l.Kind == model.FC {
			if l.IsConv() {
				convStats = append(convStats, ps.Stats[i])
			}
			i++
		}
	}
	ms := d.ModelTimeMs(convStats, device.GPU, 8, 2)
	if ms < 5 || ms > 33 {
		t.Fatalf("VGG CONV GPU time %.1f ms, want real-time (<33, paper 18.9)", ms)
	}
}

func TestCSRNoFasterThanPatDNNDense(t *testing.T) {
	// Section 6.2: the CSR sparse implementation shows "almost the same
	// speed to PatDNN's dense version" despite 8x fewer MACs.
	d := device.SD855()
	m := model.VGG16("imagenet")
	csr := CSRSparseTimeMs(m, 3.6, d, device.CPU)
	denseMs, err := PatDNNDense(true).TimeMs(m, d, device.CPU)
	if err != nil {
		t.Fatal(err)
	}
	ratio := csr / denseMs
	if ratio < 0.5 || ratio > 1.6 {
		t.Fatalf("CSR/dense ratio %.2f, want near 1 (paper: almost the same)", ratio)
	}
}

func TestPatDNNDenseFasterThanMNNAndTVM(t *testing.T) {
	// Figure 17(a): PatDNN's dense version beats MNN; Section 6.2: 1.1-1.6x
	// faster than TVM and MNN.
	d := device.SD855()
	m := model.VGG16("imagenet")
	ours, err := PatDNNDense(true).TimeMs(m, d, device.CPU)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Framework{TVM(), MNN()} {
		them, err := f.TimeMs(m, d, device.CPU)
		if err != nil {
			t.Fatal(err)
		}
		ratio := them / ours
		if ratio < 1.05 || ratio > 3.0 {
			t.Errorf("dense vs %s ratio %.2f, want in [1.05, 3.0]", f.Name, ratio)
		}
	}
}

func TestCompilePatDNNAllModels(t *testing.T) {
	// All six Table 5 networks compile; ResNet/MobileNet exercise the
	// connectivity-only path for 1x1/7x7/depthwise layers.
	for _, m := range []*model.Model{
		model.VGG16("cifar10"), model.ResNet50("cifar10"), model.MobileNetV2("cifar10"),
	} {
		ps, err := CompilePatDNN(m, 8, 3.6, codegen.Tuned, 2)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if len(ps.Stats) == 0 {
			t.Fatalf("%s: no stats", m.Name)
		}
		ms := ps.TimeMs(device.SD855(), device.CPU)
		if ms <= 0 {
			t.Fatalf("%s: non-positive time", m.Name)
		}
	}
}
