// Package baseline implements the systems PatDNN is compared against: an
// optimized dense convolution engine with Winograd F(2×2,3×3) (used by all
// dense runs in the paper), a CSR-based sparse engine (the paper's
// "conventional sparse" strawman that fails to beat dense), and simulated
// TFLite/TVM/MNN framework models whose optimization sets follow Table 1.
package baseline

import (
	"patdnn/internal/tensor"
)

// WinogradConv3x3 computes a stride-1, pad-1 3×3 convolution with the
// Winograd F(2×2,3×3) algorithm: each 4×4 input tile produces a 2×2 output
// tile with 16 multiplies instead of 36 (2.25× MAC reduction).
//
//	input:  [Ci, H, W]
//	weight: [Co, Ci, 3, 3]
//	bias:   [Co] or nil
func WinogradConv3x3(input, weight, bias *tensor.Tensor) *tensor.Tensor {
	ci, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	co := weight.Dim(0)
	outH, outW := h, w // stride 1, pad 1
	out := tensor.New(co, outH, outW)

	// Transformed weights U = G·g·Gᵀ per (oc, ic), 4×4 each.
	u := make([][16]float32, co*ci)
	for oc := 0; oc < co; oc++ {
		for ic := 0; ic < ci; ic++ {
			g := weight.Data[((oc*ci)+ic)*9 : ((oc*ci)+ic)*9+9]
			u[oc*ci+ic] = transformWeight(g)
		}
	}

	tilesH := (outH + 1) / 2
	tilesW := (outW + 1) / 2
	var d [16]float32
	for oc := 0; oc < co; oc++ {
		var b float32
		if bias != nil {
			b = bias.Data[oc]
		}
		oplane := out.Data[oc*outH*outW:]
		for th := 0; th < tilesH; th++ {
			for tw := 0; tw < tilesW; tw++ {
				var m [16]float32
				for ic := 0; ic < ci; ic++ {
					// Gather the 4×4 input tile with pad-1 borders.
					iplane := input.Data[ic*h*w:]
					for r := 0; r < 4; r++ {
						ih := th*2 + r - 1
						for c := 0; c < 4; c++ {
							iw := tw*2 + c - 1
							if ih >= 0 && ih < h && iw >= 0 && iw < w {
								d[r*4+c] = iplane[ih*w+iw]
							} else {
								d[r*4+c] = 0
							}
						}
					}
					v := transformInput(d)
					uu := u[oc*ci+ic]
					for i := 0; i < 16; i++ {
						m[i] += uu[i] * v[i]
					}
				}
				y := transformOutput(m)
				for r := 0; r < 2; r++ {
					oh := th*2 + r
					if oh >= outH {
						continue
					}
					for c := 0; c < 2; c++ {
						ow := tw*2 + c
						if ow >= outW {
							continue
						}
						oplane[oh*outW+ow] = y[r*2+c] + b
					}
				}
			}
		}
	}
	return out
}

// transformWeight computes G·g·Gᵀ with G = [[1,0,0],[.5,.5,.5],[.5,-.5,.5],[0,0,1]].
func transformWeight(g []float32) [16]float32 {
	var t [12]float32 // G·g (4×3)
	for c := 0; c < 3; c++ {
		g0, g1, g2 := g[c], g[3+c], g[6+c]
		t[c] = g0
		t[3+c] = 0.5 * (g0 + g1 + g2)
		t[6+c] = 0.5 * (g0 - g1 + g2)
		t[9+c] = g2
	}
	var u [16]float32 // (G·g)·Gᵀ (4×4)
	for r := 0; r < 4; r++ {
		t0, t1, t2 := t[r*3], t[r*3+1], t[r*3+2]
		u[r*4] = t0
		u[r*4+1] = 0.5 * (t0 + t1 + t2)
		u[r*4+2] = 0.5 * (t0 - t1 + t2)
		u[r*4+3] = t2
	}
	return u
}

// transformInput computes Bᵀ·d·B with
// Bᵀ = [[1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]].
func transformInput(d [16]float32) [16]float32 {
	var t [16]float32 // Bᵀ·d
	for c := 0; c < 4; c++ {
		d0, d1, d2, d3 := d[c], d[4+c], d[8+c], d[12+c]
		t[c] = d0 - d2
		t[4+c] = d1 + d2
		t[8+c] = d2 - d1
		t[12+c] = d1 - d3
	}
	var v [16]float32 // (Bᵀ·d)·B
	for r := 0; r < 4; r++ {
		t0, t1, t2, t3 := t[r*4], t[r*4+1], t[r*4+2], t[r*4+3]
		v[r*4] = t0 - t2
		v[r*4+1] = t1 + t2
		v[r*4+2] = t2 - t1
		v[r*4+3] = t1 - t3
	}
	return v
}

// transformOutput computes Aᵀ·m·A with Aᵀ = [[1,1,1,0],[0,1,-1,-1]].
func transformOutput(m [16]float32) [4]float32 {
	var t [8]float32 // Aᵀ·m (2×4)
	for c := 0; c < 4; c++ {
		m0, m1, m2, m3 := m[c], m[4+c], m[8+c], m[12+c]
		t[c] = m0 + m1 + m2
		t[4+c] = m1 - m2 - m3
	}
	var y [4]float32 // (Aᵀ·m)·A (2×2)
	for r := 0; r < 2; r++ {
		t0, t1, t2, t3 := t[r*4], t[r*4+1], t[r*4+2], t[r*4+3]
		y[r*2] = t0 + t1 + t2
		y[r*2+1] = t1 - t2 - t3
	}
	return y
}
