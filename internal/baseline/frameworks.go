package baseline

import (
	"fmt"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/device"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
)

// Framework models an end-to-end DNN inference framework by its optimization
// set (Table 1) and a kernel-quality factor per target. The factors encode
// how much of the device's achievable throughput each framework's generated
// kernels reach; they are calibrated once against the dense VGG numbers the
// paper reports (TVM VGG-16 on Adreno 640: 242 ms; TFLite VGG CPU: 818.1 ms)
// and then reused unchanged for every experiment — the per-model and
// per-optimization variation comes from the real instruction statistics.
type Framework struct {
	Name string
	// Optimization knobs of Table 1.
	AutoTuning    bool
	GraphOptLevel int // 0 = basic, 1 = TVM-class, 2 = ours (op replacement)
	SparseSupport bool
	WinogradDense bool
	// Kernel quality in (0,1]: fraction of tuned-kernel throughput reached.
	CPUEff, GPUEff float64
	// Footprint quirks: TFLite cannot run VGG/ImageNet on its GPU delegate
	// (paper footnote 3).
	GPUUnsupported func(m *model.Model) bool
}

// TFLite returns the TensorFlow Lite framework model.
func TFLite() Framework {
	return Framework{
		Name: "TFLite", AutoTuning: false, GraphOptLevel: 0, WinogradDense: true,
		CPUEff: 0.22, GPUEff: 0.42,
		GPUUnsupported: func(m *model.Model) bool {
			return m.Short == "VGG" && m.Dataset == "imagenet"
		},
	}
}

// TVM returns the TVM framework model.
func TVM() Framework {
	return Framework{
		Name: "TVM", AutoTuning: true, GraphOptLevel: 1, WinogradDense: true,
		CPUEff: 0.62, GPUEff: 0.60,
	}
}

// MNN returns the Alibaba Mobile Neural Network framework model.
func MNN() Framework {
	return Framework{
		Name: "MNN", AutoTuning: false, GraphOptLevel: 1, WinogradDense: true,
		CPUEff: 0.72, GPUEff: 0.78,
	}
}

// PatDNNDense returns PatDNN's own dense baseline — 1.1–1.6× faster than
// TVM/MNN thanks to the extra optimizations of Table 1.
func PatDNNDense(winograd bool) Framework {
	return Framework{
		Name: "PatDNN-dense", AutoTuning: true, GraphOptLevel: 2,
		WinogradDense: winograd, CPUEff: 0.92, GPUEff: 0.95,
	}
}

// DenseFrameworks returns the three competitor frameworks in paper order.
func DenseFrameworks() []Framework { return []Framework{TFLite(), TVM(), MNN()} }

// DenseLayerStats builds the instruction statistics of a dense conv/FC layer
// as executed by a well-optimized dense library (im2col/direct with tiling).
func DenseLayerStats(l *model.Layer, winograd bool) codegen.InstrStats {
	macs := l.MACs()
	if winograd && l.IsConv() && l.KH == 3 && l.Stride == 1 {
		// F(2x2,3x3): 2.25x multiply reduction, ~80% realizable after the
		// transform overhead.
		macs = int64(float64(macs) / 1.8)
	}
	weights := l.Params()
	return codegen.InstrStats{
		MACs: macs,
		// Dense im2col reuses each input element across the filter taps;
		// effective register loads ~0.6 per MAC.
		RegLoads:    int64(0.6 * float64(macs)),
		Branches:    0,
		WeightBytes: 4 * weights,
		ActBytes: 4 * (int64(l.InC)*int64(l.InH)*int64(l.InW) +
			int64(l.OutC)*int64(l.OutH)*int64(l.OutW)),
		Imbalance: 0, Groups: 1, VecEff: 1.0, CacheEff: 0.75,
	}
}

// DenseModelStats returns per-layer dense stats for all weighted layers.
func DenseModelStats(m *model.Model, winograd bool) []codegen.InstrStats {
	var out []codegen.InstrStats
	for _, l := range m.Layers {
		if l.IsConv() || l.Kind == model.FC {
			out = append(out, DenseLayerStats(l, winograd))
		}
	}
	return out
}

// TimeMs predicts the framework's end-to-end model latency on the device
// target. It returns an error for unsupported combinations (TFLite VGG GPU).
func (f Framework) TimeMs(m *model.Model, d device.Device, target device.Target) (float64, error) {
	if target == device.GPU && f.GPUUnsupported != nil && f.GPUUnsupported(m) {
		return 0, fmt.Errorf("%s does not support %s/%s on GPU (memory footprint)",
			f.Name, m.Name, m.Dataset)
	}
	stats := DenseModelStats(m, f.WinogradDense)
	// Frameworks with weaker graph optimization leave extra layout/copy
	// traffic between layers.
	graphPenalty := 1.0
	switch f.GraphOptLevel {
	case 0:
		graphPenalty = 1.18
	case 1:
		graphPenalty = 1.05
	}
	// No auto-tuning: tile/unroll choices are generic, costing cache
	// efficiency.
	if !f.AutoTuning {
		for i := range stats {
			stats[i].CacheEff *= 0.9
		}
	}
	bytesPerWeight := 4
	if target == device.GPU {
		bytesPerWeight = 2 // all GPU runs use FP16 weights
	}
	base := d.ModelTimeMs(stats, target, 8, bytesPerWeight)
	eff := f.CPUEff
	if target == device.GPU {
		eff = f.GPUEff
	}
	return base * graphPenalty / eff, nil
}

// PatDNNSparse holds a compiled sparse model: per-layer plans/stats.
type PatDNNSparse struct {
	Model *model.Model
	Stats []codegen.InstrStats
}

// CompilePatDNN generates the PatDNN execution stats for a model: every 3×3
// conv is pattern+connectivity pruned and compiled at the given level; 1×1
// and other convs get connectivity pruning only (the paper's uniform
// 3.6× kernel pruning), executed branchlessly; FC layers stay dense.
func CompilePatDNN(m *model.Model, setSize int, connRate float64, level codegen.Level, seed int64) (*PatDNNSparse, error) {
	set := pattern.Canonical(setSize)
	tune := lr.DefaultTuning()
	ps := &PatDNNSparse{Model: m}
	firstConv := true
	for _, l := range m.Layers {
		switch {
		case l.IsConv() && l.KH == 3 && l.KW == 3 && l.Kind == model.Conv:
			// The first conv layer is smaller and more sensitive; the paper
			// prunes it at a lower rate (Section 4.2).
			rate := connRate
			if firstConv {
				rate = FirstLayerConnRate(connRate)
				firstConv = false
			}
			c := pruned.Generate(l, set, rate, seed+int64(len(ps.Stats)), true)
			plan, err := codegen.Compile(c, level, tune)
			if err != nil {
				return nil, err
			}
			ps.Stats = append(ps.Stats, plan.Stats())
		case l.Kind == model.DWConv && l.KH == 3 && l.KW == 3:
			// Depthwise 3x3 kernels get pattern pruning too (the paper
			// prunes all 3x3 kernels); no connectivity pruning, since a
			// removed depthwise kernel would delete its channel.
			c := pruned.Generate(l, set, connRate, seed+int64(len(ps.Stats)), true)
			plan, err := codegen.Compile(c, level, tune)
			if err != nil {
				return nil, err
			}
			ps.Stats = append(ps.Stats, plan.Stats())
		case l.Kind == model.ConvTranspose && l.KH == 3 && l.KW == 3:
			// A transposed conv executes as its stride-1 equivalent conv over
			// the dilated input (what the graph executor actually runs), so
			// model that layer's cost, not the scatter form's.
			eq := &model.Layer{
				Name: l.Name, Kind: model.Conv, InC: l.InC, OutC: l.OutC,
				KH: l.KH, KW: l.KW, Stride: 1, Pad: l.KH - 1 - l.Pad, Groups: 1,
				InH:  (l.InH-1)*l.Stride + 1 + l.OutPad,
				InW:  (l.InW-1)*l.Stride + 1 + l.OutPad,
				OutH: l.OutH, OutW: l.OutW,
			}
			c := pruned.Generate(eq, set, connRate, seed+int64(len(ps.Stats)), true)
			plan, err := codegen.Compile(c, level, tune)
			if err != nil {
				return nil, err
			}
			ps.Stats = append(ps.Stats, plan.Stats())
		case l.Kind == model.Conv && l.KH == 1 && l.KW == 1 && connRate > 1:
			// 1x1 bottleneck/expand layers: real connectivity-pruned plan.
			plan, err := codegen.Compile1x1FromLayer(l, connRate, seed+int64(len(ps.Stats)))
			if err != nil {
				return nil, err
			}
			st := plan.Stats()
			if level != codegen.Tuned {
				st.CacheEff = 0.55 + 0.05*float64(level)
			}
			ps.Stats = append(ps.Stats, st)
		case l.IsConv():
			ps.Stats = append(ps.Stats, connectivityOnlyStats(l, connRate, level))
		case l.Kind == model.FC:
			ps.Stats = append(ps.Stats, DenseLayerStats(l, false))
		}
	}
	return ps, nil
}

// FirstLayerConnRate returns the reduced connectivity rate applied to a
// network's first conv layer (Section 4.2's non-uniform exception).
func FirstLayerConnRate(connRate float64) float64 {
	r := connRate / 2
	if r < 1 {
		r = 1
	}
	return r
}

// connectivityOnlyStats models non-3×3 convs (1×1 bottlenecks, the 7×7 stem,
// depthwise) under uniform kernel (connectivity) pruning: computation drops
// by the rate, execution stays branchless and balanced because whole kernels
// vanish. Depthwise layers are kept dense (pruning a DW kernel removes its
// channel entirely).
func connectivityOnlyStats(l *model.Layer, connRate float64, level codegen.Level) codegen.InstrStats {
	st := DenseLayerStats(l, false)
	if l.Kind == model.DWConv || connRate <= 1 {
		return st
	}
	st.MACs = int64(float64(st.MACs) / connRate)
	st.RegLoads = int64(float64(st.RegLoads) / connRate)
	st.WeightBytes = int64(float64(st.WeightBytes)/connRate) +
		2*int64(float64(l.KernelCount())/connRate) // per-kernel index
	switch level {
	case codegen.NoOpt:
		st.VecEff, st.CacheEff = 0.5, 0.5
		st.Branches = st.MACs / int64(l.KH*l.KW)
	case codegen.Reorder:
		st.CacheEff = 0.55
	case codegen.ReorderLRE:
		st.CacheEff = 0.6
	case codegen.Tuned:
		st.CacheEff = 0.9
	}
	return st
}

// TimeMs predicts PatDNN's end-to-end latency.
func (p *PatDNNSparse) TimeMs(d device.Device, target device.Target) float64 {
	bytesPerWeight := 4
	if target == device.GPU {
		bytesPerWeight = 2
	}
	return d.ModelTimeMs(p.Stats, target, 8, bytesPerWeight)
}

// CSRSparseTimeMs models the conventional CSR sparse execution of the same
// pruned model: computation drops by the pruning rate but the kernels stay
// irregular — per-element indirection defeats vectorization and locality, so
// it lands near the dense time (Section 6.2's CSR observation).
func CSRSparseTimeMs(m *model.Model, connRate float64, d device.Device, target device.Target) float64 {
	stats := DenseModelStats(m, false)
	for i := range stats {
		st := &stats[i]
		st.MACs = int64(float64(st.MACs) / (connRate * 2.25))
		// CSR: one column-index load per weight plus gather-style input
		// loads; no register reuse is detectable.
		st.RegLoads = 2 * st.MACs
		st.VecEff = 0.45                                      // gather defeats SIMD
		st.CacheEff = 0.5                                     // irregular access pattern
		st.WeightBytes = st.WeightBytes / int64(connRate) * 2 // values + int32 idx
	}
	bytesPerWeight := 4
	if target == device.GPU {
		bytesPerWeight = 2
	}
	return d.ModelTimeMs(stats, target, 8, bytesPerWeight)
}
