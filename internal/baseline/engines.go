package baseline

import (
	"patdnn/internal/sparse"
	"patdnn/internal/tensor"
)

// CSRConv performs a sparse convolution via im2col + CSR matrix-vector
// products — the conventional sparse execution PatDNN's evaluation
// implements for comparison ("an optimized sparse matrix version ... based on
// CSR, which shows almost the same speed to PatDNN's dense version").
func CSRConv(input *tensor.Tensor, w *sparse.CSR, bias *tensor.Tensor, kh, kw int, spec tensor.ConvSpec) *tensor.Tensor {
	cols := tensor.Im2Col(input, kh, kw, spec)
	ho := tensor.ConvOutDim(input.Dim(1), kh, spec.Stride, spec.Pad)
	wo := tensor.ConvOutDim(input.Dim(2), kw, spec.Stride, spec.Pad)
	out := tensor.New(w.Rows, ho, wo)
	n := ho * wo
	x := make([]float32, w.Cols)
	y := make([]float32, w.Rows)
	for p := 0; p < n; p++ {
		for r := 0; r < w.Cols; r++ {
			x[r] = cols.Data[r*n+p]
		}
		if err := w.MatVec(x, y); err != nil {
			panic(err)
		}
		for oc := 0; oc < w.Rows; oc++ {
			out.Data[oc*n+p] = y[oc]
		}
	}
	if bias != nil {
		for oc := 0; oc < w.Rows; oc++ {
			b := bias.Data[oc]
			plane := out.Data[oc*n : (oc+1)*n]
			for i := range plane {
				plane[i] += b
			}
		}
	}
	return out
}

// DenseDirectConv is the optimized dense direct convolution (blocked loops),
// the PatDNN dense baseline of Figure 17 when Winograd is off.
func DenseDirectConv(input, weight, bias *tensor.Tensor, spec tensor.ConvSpec) *tensor.Tensor {
	return tensor.Conv2DIm2Col(input, weight, bias, spec)
}
