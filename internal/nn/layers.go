// Package nn is a from-scratch trainable neural-network substrate: conv, FC,
// pooling, and activation layers with full backpropagation, plus SGD and Adam
// optimizers. It exists so the ADMM pattern/connectivity pruning of
// internal/admm runs against a *real* loss function end to end rather than a
// mock, as required by the reproduction (the paper trains with PyTorch; see
// DESIGN.md for the substitution rationale).
package nn

import (
	"patdnn/internal/tensor"
)

// Param is a trainable tensor with its accumulated gradient.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable network stage operating on single examples
// (batching is done by gradient accumulation across examples, which keeps the
// substrate simple and deterministic).
type Layer interface {
	// Forward consumes the input and returns the output; implementations may
	// cache state needed by Backward.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward consumes dL/dOutput and returns dL/dInput, accumulating
	// parameter gradients.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns trainable parameters (possibly none).
	Params() []*Param
}

// Conv2D is a trainable 2-D convolution over [Ci,H,W] inputs.
type Conv2D struct {
	Name         string
	Weight, Bias *Param
	Spec         tensor.ConvSpec
	InC, OutC, K int
	inH, inW     int
	cols         *tensor.Tensor // cached im2col of last input
	// Mask, when non-nil, is multiplied into the weight gradient after each
	// backward pass; the ADMM masked-retraining stage uses it to freeze
	// pruned weights at zero.
	Mask *tensor.Tensor
}

// NewConv2D builds a conv layer with uninitialized (zero) weights; call
// InitXavier or set weights directly.
func NewConv2D(name string, inC, outC, k int, spec tensor.ConvSpec) *Conv2D {
	w := tensor.New(outC, inC, k, k)
	b := tensor.New(outC)
	return &Conv2D{
		Name: name, InC: inC, OutC: outC, K: k, Spec: spec,
		Weight: &Param{Name: name + ".weight", W: w, Grad: tensor.New(outC, inC, k, k)},
		Bias:   &Param{Name: name + ".bias", W: b, Grad: tensor.New(outC)},
	}
}

// InputDims returns the spatial input size seen by the most recent Forward
// (zero before any forward pass); the pruning pipeline uses it to record
// layer geometry for the compiler.
func (l *Conv2D) InputDims() (h, w int) { return l.inH, l.inW }

// Forward implements Layer.
func (l *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.inH, l.inW = x.Dim(1), x.Dim(2)
	l.cols = tensor.Im2Col(x, l.K, l.K, l.Spec)
	wmat := l.Weight.W.Reshape(l.OutC, l.InC*l.K*l.K)
	out := tensor.MatMul(wmat, l.cols)
	ho := tensor.ConvOutDim(l.inH, l.K, l.Spec.Stride, l.Spec.Pad)
	wo := tensor.ConvOutDim(l.inW, l.K, l.Spec.Stride, l.Spec.Pad)
	res := out.Reshape(l.OutC, ho, wo)
	for oc := 0; oc < l.OutC; oc++ {
		b := l.Bias.W.Data[oc]
		plane := res.Data[oc*ho*wo : (oc+1)*ho*wo]
		for i := range plane {
			plane[i] += b
		}
	}
	return res
}

// Backward implements Layer.
func (l *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	ho, wo := dout.Dim(1), dout.Dim(2)
	dmat := dout.Reshape(l.OutC, ho*wo)
	// dW = dOut · colsᵀ
	dw := tensor.MatMulT2(dmat, l.cols)
	l.Weight.Grad.AddScaled(dw.Reshape(l.OutC, l.InC, l.K, l.K), 1)
	if l.Mask != nil {
		for i := range l.Weight.Grad.Data {
			l.Weight.Grad.Data[i] *= l.Mask.Data[i]
		}
	}
	// dB = row sums of dOut
	for oc := 0; oc < l.OutC; oc++ {
		var s float32
		for _, v := range dmat.Data[oc*ho*wo : (oc+1)*ho*wo] {
			s += v
		}
		l.Bias.Grad.Data[oc] += s
	}
	// dCols = Wᵀ · dOut, then fold back to the input.
	wmat := l.Weight.W.Reshape(l.OutC, l.InC*l.K*l.K)
	dcols := tensor.MatMulT1(wmat, dmat)
	return tensor.Col2Im(dcols, l.InC, l.inH, l.inW, l.K, l.K, l.Spec)
}

// Params implements Layer.
func (l *Conv2D) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// ReLULayer is the rectified-linear activation.
type ReLULayer struct {
	mask []bool
}

// Forward implements Layer.
func (l *ReLULayer) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	if cap(l.mask) < len(out.Data) {
		l.mask = make([]bool, len(out.Data))
	}
	l.mask = l.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
			l.mask[i] = false
		} else {
			l.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (l *ReLULayer) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := dout.Clone()
	for i := range dx.Data {
		if !l.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (l *ReLULayer) Params() []*Param { return nil }

// MaxPool2 is 2×2 max pooling with stride 2.
type MaxPool2 struct {
	arg     []int
	inShape []int
}

// Forward implements Layer.
func (l *MaxPool2) Forward(x *tensor.Tensor) *tensor.Tensor {
	out, arg := tensor.MaxPool2D(x, 2)
	l.arg = arg
	l.inShape = append(l.inShape[:0], x.Shape()...)
	return out
}

// Backward implements Layer.
func (l *MaxPool2) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(l.inShape...)
	for o, idx := range l.arg {
		dx.Data[idx] += dout.Data[o]
	}
	return dx
}

// Params implements Layer.
func (l *MaxPool2) Params() []*Param { return nil }

// FlattenLayer reshapes [C,H,W] to a vector.
type FlattenLayer struct {
	inShape []int
}

// Forward implements Layer.
func (l *FlattenLayer) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.inShape = append(l.inShape[:0], x.Shape()...)
	return x.Reshape(x.Len())
}

// Backward implements Layer.
func (l *FlattenLayer) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return dout.Reshape(l.inShape...)
}

// Params implements Layer.
func (l *FlattenLayer) Params() []*Param { return nil }

// Dense is a fully-connected layer over flat vectors.
type Dense struct {
	Name         string
	Weight, Bias *Param
	In, Out      int
	x            *tensor.Tensor
}

// NewDense builds an FC layer with zero weights.
func NewDense(name string, in, out int) *Dense {
	return &Dense{
		Name: name, In: in, Out: out,
		Weight: &Param{Name: name + ".weight", W: tensor.New(out, in), Grad: tensor.New(out, in)},
		Bias:   &Param{Name: name + ".bias", W: tensor.New(out), Grad: tensor.New(out)},
	}
}

// Forward implements Layer.
func (l *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	out := tensor.New(l.Out)
	for o := 0; o < l.Out; o++ {
		row := l.Weight.W.Data[o*l.In : (o+1)*l.In]
		s := l.Bias.W.Data[o]
		for i, v := range x.Data {
			s += row[i] * v
		}
		out.Data[o] = s
	}
	return out
}

// Backward implements Layer.
func (l *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(l.In)
	for o := 0; o < l.Out; o++ {
		g := dout.Data[o]
		l.Bias.Grad.Data[o] += g
		row := l.Weight.W.Data[o*l.In : (o+1)*l.In]
		grow := l.Weight.Grad.Data[o*l.In : (o+1)*l.In]
		for i, v := range l.x.Data {
			grow[i] += g * v
			dx.Data[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (l *Dense) Params() []*Param { return []*Param{l.Weight, l.Bias} }
