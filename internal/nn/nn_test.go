package nn

import (
	"math"
	"math/rand"
	"testing"

	"patdnn/internal/dataset"
	"patdnn/internal/tensor"
)

// numericGrad estimates dLoss/dw by central differences for one weight.
func numericGrad(net *Network, x *tensor.Tensor, label int, p *Param, i int) float64 {
	const h = 1e-3
	orig := p.W.Data[i]
	p.W.Data[i] = orig + h
	lp := lossOnly(net, x, label)
	p.W.Data[i] = orig - h
	lm := lossOnly(net, x, label)
	p.W.Data[i] = orig
	return (lp - lm) / (2 * h)
}

func lossOnly(net *Network, x *tensor.Tensor, label int) float64 {
	logits := net.Forward(x)
	return tensor.CrossEntropy(tensor.Softmax(logits), label)
}

func TestGradientCheckConvDense(t *testing.T) {
	net := SmallCNN(2, 8, 8, 4, 6, 3, 11)
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(2, 8, 8)
	x.Randn(rng, 1)
	label := 1

	net.ZeroGrad()
	net.LossAndGrad(x, label)

	checks := 0
	for _, p := range net.Params() {
		// Spot-check a handful of weights in each parameter tensor.
		step := len(p.W.Data)/5 + 1
		for i := 0; i < len(p.W.Data); i += step {
			want := numericGrad(net, x, label, p, i)
			got := float64(p.Grad.Data[i])
			if math.Abs(want-got) > 1e-2*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", p.Name, i, got, want)
			}
			checks++
		}
	}
	if checks < 10 {
		t.Fatalf("too few gradient checks: %d", checks)
	}
}

func TestReLUBackward(t *testing.T) {
	l := &ReLULayer{}
	x := tensor.FromSlice([]float32{-1, 2, -3, 4}, 4)
	l.Forward(x)
	d := tensor.FromSlice([]float32{1, 1, 1, 1}, 4)
	dx := l.Backward(d)
	want := []float32{0, 1, 0, 1}
	for i, v := range want {
		if dx.Data[i] != v {
			t.Fatalf("relu backward = %v", dx.Data)
		}
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	l := &MaxPool2{}
	x := tensor.FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 2, 2)
	l.Forward(x)
	d := tensor.FromSlice([]float32{10}, 1, 1, 1)
	dx := l.Backward(d)
	if dx.At(0, 1, 1) != 10 || dx.At(0, 0, 0) != 0 {
		t.Fatalf("pool backward = %v", dx.Data)
	}
}

func TestDenseForwardKnown(t *testing.T) {
	l := NewDense("fc", 2, 2)
	copy(l.Weight.W.Data, []float32{1, 2, 3, 4})
	copy(l.Bias.W.Data, []float32{0.5, -0.5})
	out := l.Forward(tensor.FromSlice([]float32{1, 1}, 2))
	if out.Data[0] != 3.5 || out.Data[1] != 6.5 {
		t.Fatalf("dense out = %v", out.Data)
	}
}

func TestConvMaskFreezesGradients(t *testing.T) {
	conv := NewConv2D("c", 1, 1, 3, tensor.ConvSpec{Stride: 1, Pad: 1})
	rng := rand.New(rand.NewSource(2))
	conv.Weight.W.Randn(rng, 1)
	mask := tensor.New(1, 1, 3, 3)
	mask.Data[4] = 1 // only center trainable
	conv.Mask = mask
	x := tensor.New(1, 4, 4)
	x.Randn(rng, 1)
	out := conv.Forward(x)
	d := out.Clone()
	d.Fill(1)
	conv.Backward(d)
	for i, g := range conv.Weight.Grad.Data {
		if i != 4 && g != 0 {
			t.Fatalf("masked grad %d = %v, want 0", i, g)
		}
	}
	if conv.Weight.Grad.Data[4] == 0 {
		t.Fatal("unmasked grad should be nonzero")
	}
}

func TestTrainingLearnsSyntheticData(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := dataset.DefaultConfig()
	cfg.N = 300
	data := dataset.Synthetic(cfg)
	train, test := data.Split(0.8)
	net := SmallCNN(cfg.C, cfg.H, cfg.W, 8, 12, cfg.Classes, 3)
	before := net.Accuracy(test)
	Train(net, train, NewAdam(0.004), TrainConfig{Epochs: 6, BatchSize: 16, Seed: 1})
	after := net.Accuracy(test)
	if after < 0.8 {
		t.Fatalf("accuracy after training = %.3f (before %.3f), want >= 0.8", after, before)
	}
	if after <= before {
		t.Fatalf("training did not improve accuracy: %.3f -> %.3f", before, after)
	}
}

func TestCloneIndependence(t *testing.T) {
	net := SmallCNN(1, 8, 8, 3, 4, 2, 9)
	c := net.Clone()
	net.ConvLayers()[0].Weight.W.Data[0] = 99
	if c.ConvLayers()[0].Weight.W.Data[0] == 99 {
		t.Fatal("clone shares weight storage")
	}
	if len(c.Params()) != len(net.Params()) {
		t.Fatal("clone params mismatch")
	}
}

func TestSGDMomentumMoves(t *testing.T) {
	p := &Param{Name: "w", W: tensor.FromSlice([]float32{1}, 1), Grad: tensor.FromSlice([]float32{1}, 1)}
	o := NewSGD(0.1, 0.9)
	o.Step([]*Param{p})
	if math.Abs(float64(p.W.Data[0])-0.9) > 1e-6 {
		t.Fatalf("after step 1: %v", p.W.Data[0])
	}
	// Momentum accumulates: second step moves further.
	o.Step([]*Param{p})
	if math.Abs(float64(p.W.Data[0])-0.71) > 1e-5 {
		t.Fatalf("after step 2: %v", p.W.Data[0])
	}
}

func TestAdamConverges(t *testing.T) {
	// Minimize (w-3)^2 with explicit gradients.
	p := &Param{Name: "w", W: tensor.FromSlice([]float32{0}, 1), Grad: tensor.New(1)}
	o := NewAdam(0.1)
	for i := 0; i < 400; i++ {
		p.Grad.Data[0] = 2 * (p.W.Data[0] - 3)
		o.Step([]*Param{p})
	}
	if math.Abs(float64(p.W.Data[0])-3) > 0.05 {
		t.Fatalf("adam converged to %v, want 3", p.W.Data[0])
	}
}

func TestPermuteDeterministicAndComplete(t *testing.T) {
	a := permute(50, 7)
	b := permute(50, 7)
	seen := make([]bool, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("permute not deterministic")
		}
		seen[a[i]] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d missing from permutation", i)
		}
	}
}
