package nn

import (
	"math/rand"

	"patdnn/internal/dataset"
	"patdnn/internal/tensor"
)

// Network is an ordered stack of layers trained with softmax cross-entropy.
type Network struct {
	Layers []Layer
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ConvLayers returns the trainable conv layers (the pruning targets).
func (n *Network) ConvLayers() []*Conv2D {
	var out []*Conv2D
	for _, l := range n.Layers {
		if c, ok := l.(*Conv2D); ok {
			out = append(out, c)
		}
	}
	return out
}

// ZeroGrad clears all parameter gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// Forward runs the network and returns the logits.
func (n *Network) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// LossAndGrad runs forward + backward for one example, accumulating
// parameter gradients, and returns the cross-entropy loss.
func (n *Network) LossAndGrad(x *tensor.Tensor, label int) float64 {
	logits := n.Forward(x)
	probs := tensor.Softmax(logits)
	loss := tensor.CrossEntropy(probs, label)
	// dL/dlogits = probs - onehot(label)
	dlogits := probs.Clone()
	dlogits.Data[label] -= 1
	d := dlogits
	for i := len(n.Layers) - 1; i >= 0; i-- {
		d = n.Layers[i].Backward(d)
	}
	return loss
}

// Predict returns the argmax class for one example.
func (n *Network) Predict(x *tensor.Tensor) int {
	return n.Forward(x).ArgMax()
}

// Accuracy evaluates top-1 accuracy over a dataset.
func (n *Network) Accuracy(d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i, img := range d.Images {
		if n.Predict(img) == d.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

// Clone deep-copies the network structure and weights (caches excluded).
// Only the layer types defined in this package are supported.
func (n *Network) Clone() *Network {
	c := &Network{}
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Conv2D:
			nc := NewConv2D(v.Name, v.InC, v.OutC, v.K, v.Spec)
			copy(nc.Weight.W.Data, v.Weight.W.Data)
			copy(nc.Bias.W.Data, v.Bias.W.Data)
			if v.Mask != nil {
				nc.Mask = v.Mask.Clone()
			}
			c.Layers = append(c.Layers, nc)
		case *Dense:
			nd := NewDense(v.Name, v.In, v.Out)
			copy(nd.Weight.W.Data, v.Weight.W.Data)
			copy(nd.Bias.W.Data, v.Bias.W.Data)
			c.Layers = append(c.Layers, nd)
		case *ReLULayer:
			c.Layers = append(c.Layers, &ReLULayer{})
		case *MaxPool2:
			c.Layers = append(c.Layers, &MaxPool2{})
		case *FlattenLayer:
			c.Layers = append(c.Layers, &FlattenLayer{})
		default:
			panic("nn: Clone: unsupported layer type")
		}
	}
	return c
}

// SmallCNN builds the reference CNN used by the pruning experiments:
// conv(3→C1, 3×3) → ReLU → pool → conv(C1→C2, 3×3) → ReLU → pool →
// FC → classes. All conv kernels are 3×3, so every kernel is a pattern
// pruning target.
func SmallCNN(inC, h, w, c1, c2, classes int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	conv1 := NewConv2D("conv1", inC, c1, 3, tensor.ConvSpec{Stride: 1, Pad: 1})
	conv1.Weight.W.XavierInit(rng, inC*9, c1*9)
	conv2 := NewConv2D("conv2", c1, c2, 3, tensor.ConvSpec{Stride: 1, Pad: 1})
	conv2.Weight.W.XavierInit(rng, c1*9, c2*9)
	flatIn := c2 * (h / 4) * (w / 4)
	fc := NewDense("fc", flatIn, classes)
	fc.Weight.W.XavierInit(rng, flatIn, classes)
	return &Network{Layers: []Layer{
		conv1, &ReLULayer{}, &MaxPool2{},
		conv2, &ReLULayer{}, &MaxPool2{},
		&FlattenLayer{}, fc,
	}}
}
