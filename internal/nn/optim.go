package nn

import (
	"math"

	"patdnn/internal/dataset"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param][]float32
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param][]float32)}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		v, ok := o.vel[p]
		if !ok {
			v = make([]float32, len(p.W.Data))
			o.vel[p] = v
		}
		m, lr := float32(o.Momentum), float32(o.LR)
		for i := range p.W.Data {
			v[i] = m*v[i] - lr*p.Grad.Data[i]
			p.W.Data[i] += v[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba), the solver the paper uses for
// ADMM subproblem 1.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param][]float32
}

// NewAdam returns an Adam optimizer with standard defaults for the betas.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float32), v: make(map[*Param][]float32),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float32, len(p.W.Data))
			o.m[p] = m
			o.v[p] = make([]float32, len(p.W.Data))
		}
		v := o.v[p]
		b1, b2 := float32(o.Beta1), float32(o.Beta2)
		for i := range p.W.Data {
			g := p.Grad.Data[i]
			m[i] = b1*m[i] + (1-b1)*g
			v[i] = b2*v[i] + (1-b2)*g*g
			mhat := float64(m[i]) / c1
			vhat := float64(v[i]) / c2
			p.W.Data[i] -= float32(o.LR * mhat / (math.Sqrt(vhat) + o.Eps))
		}
	}
}

// TrainConfig controls the simple epoch/minibatch training loop.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Seed      int64
	// ExtraGrad, when non-nil, is invoked after each minibatch's gradient
	// accumulation and before the optimizer step; ADMM uses it to add the
	// proximal-term gradients rho*(W - Z + U).
	ExtraGrad func(net *Network)
}

// Train runs minibatch training and returns the mean loss of the final epoch.
func Train(net *Network, data *dataset.Dataset, opt Optimizer, cfg TrainConfig) float64 {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	var lastLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		order := permute(data.Len(), cfg.Seed+int64(e))
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			net.ZeroGrad()
			for _, idx := range order[start:end] {
				epochLoss += net.LossAndGrad(data.Images[idx], data.Labels[idx])
			}
			scale := 1 / float32(end-start)
			for _, p := range net.Params() {
				p.Grad.Scale(scale)
			}
			if cfg.ExtraGrad != nil {
				cfg.ExtraGrad(net)
			}
			opt.Step(net.Params())
		}
		lastLoss = epochLoss / float64(data.Len())
	}
	return lastLoss
}

// permute returns a deterministic permutation of [0,n).
func permute(n int, seed int64) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	// xorshift-based Fisher-Yates; avoids importing math/rand here.
	s := uint64(seed)*2654435761 + 1
	for i := n - 1; i > 0; i-- {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		j := int(s % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}
