package bench

import (
	"fmt"
	"math"

	"patdnn/internal/baseline"
	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/compiler/lre"
	"patdnn/internal/compiler/reorder"
	"patdnn/internal/compiler/tuner"
	"patdnn/internal/device"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/sparse"
)

// vggUniqueLayers returns the pruned L1..L9 representatives of VGG/ImageNet
// at the paper's operating point (8 patterns, 3.6x connectivity).
func vggUniqueLayers(withWeights bool) []struct {
	Name string
	Conv *pruned.Conv
} {
	m := model.VGG16("imagenet")
	set := pattern.Canonical(8)
	var out []struct {
		Name string
		Conv *pruned.Conv
	}
	for i, u := range m.UniqueConvs() {
		out = append(out, struct {
			Name string
			Conv *pruned.Conv
		}{u.ShortName, pruned.Generate(u.Rep, set, 3.6, int64(100+i), withWeights)})
	}
	return out
}

// Figure12 regenerates the overall-performance comparison: average inference
// time per model for the four frameworks on the SD855, for
// {ImageNet, CIFAR-10} x {CPU, GPU}.
func Figure12() *Table {
	t := &Table{
		ID:      "figure12",
		Title:   "Overall performance on Snapdragon 855 (ms per inference)",
		Columns: []string{"Sub", "Network", "TFLite", "TVM", "MNN", "PatDNN", "Best dense/PatDNN"},
	}
	d := device.SD855()
	subs := []struct {
		id      string
		dataset string
		target  device.Target
	}{
		{"(a) ImageNet-CPU", "imagenet", device.CPU},
		{"(b) CIFAR-10-CPU", "cifar10", device.CPU},
		{"(c) ImageNet-GPU", "imagenet", device.GPU},
		{"(d) CIFAR-10-GPU", "cifar10", device.GPU},
	}
	for _, sub := range subs {
		for _, short := range []string{"VGG", "RNT", "MBNT"} {
			m, _ := model.ByName(short, sub.dataset)
			ps, err := baseline.CompilePatDNN(m, 8, 3.6, codegen.Tuned, 42)
			if err != nil {
				panic(err)
			}
			pat := ps.TimeMs(d, sub.target)
			cells := []string{sub.id, short}
			best := -1.0
			for _, f := range baseline.DenseFrameworks() {
				ms, err := f.TimeMs(m, d, sub.target)
				if err != nil {
					cells = append(cells, "n/a")
					continue
				}
				cells = append(cells, fmt.Sprintf("%.1f", ms))
				if best < 0 || ms < best {
					best = ms
				}
			}
			cells = append(cells, fmt.Sprintf("%.1f", pat),
				fmt.Sprintf("%.1fx", best/pat))
			t.Rows = append(t.Rows, cells)
		}
	}
	t.Notes = append(t.Notes,
		"paper annotations: TFLite VGG/RNT ImageNet-CPU 818.1/698.9 ms; CIFAR-CPU 106.3/133.0;",
		"ImageNet-GPU overflow 176.4/143.3; CIFAR-GPU 51.6/63.8; PatDNN VGG ImageNet-GPU 18.9 ms",
		"paper speedups: vs TFLite 12.3-44.5x (CPU) / 2.5-20x (GPU); vs TVM 2.4-5.1x / 2.8-11.4x; vs MNN 1.9-7.1x / 1.6-6.2x",
		"TFLite VGG/ImageNet GPU is unsupported in the paper too (footnote 3)")
	return t
}

// Figure13 regenerates the per-layer optimization breakdown: speedup of each
// optimization level over No-Opt on L1..L9, CPU and GPU.
func Figure13() *Table {
	t := &Table{
		ID:      "figure13",
		Title:   "Speedup over No-Opt per unique VGG CONV layer (SD855)",
		Columns: []string{"Target", "Layer", "Reorder", "+LRE", "+Tune"},
	}
	d := device.SD855()
	layers := vggUniqueLayers(true)
	for _, target := range []device.Target{device.CPU, device.GPU} {
		bpw := 4
		if target == device.GPU {
			bpw = 2
		}
		for _, l := range layers {
			var times [4]float64
			for i, level := range []codegen.Level{codegen.NoOpt, codegen.Reorder,
				codegen.ReorderLRE, codegen.Tuned} {
				plan, err := codegen.Compile(l.Conv, level, lr.DefaultTuning())
				if err != nil {
					panic(err)
				}
				times[i] = d.TimeMs(plan.Stats(), target, 8, bpw)
			}
			t.AddRow(target.String(), l.Name,
				fmt.Sprintf("%.2fx", times[0]/times[1]),
				fmt.Sprintf("%.2fx", times[0]/times[2]),
				fmt.Sprintf("%.2fx", times[0]/times[3]))
		}
	}
	t.Notes = append(t.Notes,
		"paper CPU: reorder 1.6-3.0x, +LRE 1.6-2.8x more, +tune 1.2-1.9x more",
		"paper GPU: reorder 2.7-6.1x, +LRE 1.5-3.3x more, +tune 1.4-3.8x more (GPU gains more: divergence)")
	return t
}

// Figure14 regenerates (a) the filter-length distribution of VGG L4 before
// and after FKR (summarized by group structure) and (b) register load counts
// before/after LRE for L1..L9.
func Figure14() *Table {
	t := &Table{
		ID:      "figure14",
		Title:   "(a) FKR filter-length grouping on L4; (b) LRE register loads L1..L9",
		Columns: []string{"Part", "Layer", "Metric", "Before", "After"},
	}
	layers := vggUniqueLayers(false)
	// (a): L4.
	l4 := layers[3]
	before := reorder.Identity(l4.Conv)
	after := reorder.Build(l4.Conv)
	t.AddRow("(a)", "L4", "length runs (contiguity)",
		countRuns(before.Lengths(l4.Conv)), countRuns(after.Lengths(l4.Conv)))
	t.AddRow("(a)", "L4", "load imbalance @8 threads",
		fmt.Sprintf("%.3f", before.LoadImbalance(l4.Conv, 8)),
		fmt.Sprintf("%.3f", after.LoadImbalance(l4.Conv, 8)))
	// (b): all layers.
	for _, l := range layers {
		st := lre.AnalyzeDefault(l.Conv)
		t.AddRow("(b)", l.Name, "register loads",
			fmt.Sprintf("%d", st.NoLRE), fmt.Sprintf("%d", st.FilterLRE))
	}
	t.Notes = append(t.Notes,
		"(a) paper: scattered lengths collapse into a few equal-length groups -> thread blocks balance",
		"(b) paper reports ~2-3x load reduction; larger layers have ~1e8-3e8 loads before LRE")
	return t
}

// countRuns counts maximal constant runs in a sequence; sorted sequences have
// as many runs as distinct values.
func countRuns(xs []int) int {
	runs := 0
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			runs++
		}
	}
	return runs
}

// Figure15 regenerates the loop permutation/blocking study: effective GFLOPS
// of each unique layer under the four permutations, on the CPU model. The
// permutations differ in data locality: channel-innermost blocked (cohwci_b)
// wins for the FKW layout, as in the paper.
func Figure15() *Table {
	t := &Table{
		ID:      "figure15",
		Title:   "GFLOPS by loop permutation and blocking (CPU, VGG/ImageNet)",
		Columns: []string{"Layer", "CoCiHW", "CoHWCi", "CoCiHW-Block", "CoHWCi-Block"},
	}
	d := device.SD855()
	perms := []lr.Permutation{lr.PermCoCiHW, lr.PermCoHWCi, lr.PermCoCiHWBlock, lr.PermCoHWCiBlock}
	for _, l := range vggUniqueLayers(true) {
		cells := []string{l.Name}
		for _, p := range perms {
			tune := lr.DefaultTuning()
			tune.Permute = p
			plan, err := codegen.Compile(l.Conv, codegen.Tuned, tune)
			if err != nil {
				panic(err)
			}
			st := plan.Stats() // permutation locality applied by codegen
			ms := d.TimeMs(st, device.CPU, 8, 4)
			gflops := 2 * float64(st.MACs) / (ms / 1e3) / 1e9
			cells = append(cells, fmt.Sprintf("%.1f", gflops))
		}
		t.Rows = append(t.Rows, cells)
	}
	t.Notes = append(t.Notes,
		"paper Figure 15: blocked variants dominate; best configuration differs per layer/input,",
		"which is why auto-tuning matters; effective GFLOPS counted on pruned MACs")
	return t
}

// Figure16 regenerates the FKW-vs-CSR extra-structure overhead comparison at
// overall pruning rates 8x, 12x and 18x (connectivity 3.56/5.33/8 on top of
// the 2.25x pattern rate).
func Figure16() *Table {
	t := &Table{
		ID:      "figure16",
		Title:   "FKW extra-structure overhead as % of CSR (VGG unique layers)",
		Columns: []string{"Layer", "8x rate", "12x rate", "18x rate"},
	}
	m := model.VGG16("imagenet")
	rates := []float64{3.56, 5.33, 8.0}
	totalsF := make([]int64, len(rates))
	totalsC := make([]int64, len(rates))
	set := pattern.Canonical(8)
	for i, u := range m.UniqueConvs() {
		cells := []string{u.ShortName}
		for ri, conn := range rates {
			// L1 is pruned less aggressively (Section 4.2).
			rate := conn
			if i == 0 {
				rate = baseline.FirstLayerConnRate(conn)
			}
			c := pruned.Generate(u.Rep, set, rate, int64(200+i), true)
			st, err := sparse.AnalyzeOverhead(c)
			if err != nil {
				panic(err)
			}
			totalsF[ri] += int64(st.FKWOverhead)
			totalsC[ri] += int64(st.CSROverhead)
			cells = append(cells, fmt.Sprintf("%.1f%%", 100*st.Ratio))
		}
		t.Rows = append(t.Rows, cells)
	}
	all := []string{"All"}
	for ri := range rates {
		all = append(all, fmt.Sprintf("%.1f%%", 100*float64(totalsF[ri])/float64(totalsC[ri])))
	}
	t.Rows = append(t.Rows, all)
	t.Notes = append(t.Notes,
		"paper: FKW saves 87.9/91.6/93.4% of CSR overhead at 8/12/18x (i.e. ratios ~12/8/7%),",
		"yielding 43.9/45.8/46.7% total storage saving; our uint16-indexed FKW lands in the same regime",
		"our per-kernel arrays keep the ratio near 13% across rates rather than shrinking with rate",
		"L1 ([64,3,3,3]) is degenerate: with 3 input channels the per-filter stride array rivals",
		"the tiny CSR structure; its absolute overhead (~1 KB) is negligible either way")
	return t
}

// Figure17 regenerates the GFLOPS study: (a) PatDNN's dense baseline vs MNN
// (no Winograd), (b) per-layer GFLOPS of dense vs pattern execution.
func Figure17() *Table {
	t := &Table{
		ID:      "figure17",
		Title:   "(a) dense PatDNN vs MNN (no Winograd); (b) GFLOPS pattern vs dense",
		Columns: []string{"Part", "Item", "CPU", "GPU"},
	}
	d := device.SD855()
	m := model.VGG16("imagenet")
	// (a) whole-model dense times without Winograd.
	ours := baseline.PatDNNDense(false)
	mnn := baseline.MNN()
	mnn.WinogradDense = false
	for _, f := range []baseline.Framework{mnn, ours} {
		cpu, err := f.TimeMs(m, d, device.CPU)
		if err != nil {
			panic(err)
		}
		gpu, err := f.TimeMs(m, d, device.GPU)
		if err != nil {
			panic(err)
		}
		t.AddRow("(a)", f.Name, fmt.Sprintf("%.1f ms", cpu), fmt.Sprintf("%.1f ms", gpu))
	}
	// (b) per-layer GFLOPS, dense (no Winograd) vs pattern.
	layers := vggUniqueLayers(true)
	mLayers := m.UniqueConvs()
	for i, l := range layers {
		dense := baseline.DenseLayerStats(mLayers[i].Rep, false)
		plan, err := codegen.Compile(l.Conv, codegen.Tuned, lr.DefaultTuning())
		if err != nil {
			panic(err)
		}
		pat := plan.Stats()
		row := []string{"(b)", l.Name}
		for _, target := range []device.Target{device.CPU, device.GPU} {
			bpw := 4
			if target == device.GPU {
				bpw = 2
			}
			dms := d.TimeMs(dense, target, 8, bpw) / 0.92 // dense baseline efficiency
			pms := d.TimeMs(pat, target, 8, bpw)
			dg := 2 * float64(dense.MACs) / (dms / 1e3) / 1e9
			pg := 2 * float64(pat.MACs) / (pms / 1e3) / 1e9
			row = append(row, fmt.Sprintf("%.1f vs %.1f", dg, pg))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: PatDNN dense beats MNN; pattern GFLOPS ~= dense on CPU, above dense on GPU,",
		"so the 8x computation reduction converts into real time savings (columns: dense vs pattern)")
	return t
}

// Figure18 regenerates the portability study on the two other platforms.
func Figure18() *Table {
	t := &Table{
		ID:      "figure18",
		Title:   "Portability: VGG-16/ImageNet on Kirin 980 and Snapdragon 845 (ms)",
		Columns: []string{"Platform", "Target", "TFLite", "TVM", "MNN", "PatDNN"},
	}
	m := model.VGG16("imagenet")
	ps, err := baseline.CompilePatDNN(m, 8, 3.6, codegen.Tuned, 42)
	if err != nil {
		panic(err)
	}
	for _, d := range []device.Device{device.Kirin980(), device.SD845()} {
		for _, target := range []device.Target{device.CPU, device.GPU} {
			cells := []string{d.Name, target.String()}
			for _, f := range baseline.DenseFrameworks() {
				ms, err := f.TimeMs(m, d, target)
				if err != nil {
					cells = append(cells, "n/a")
					continue
				}
				cells = append(cells, fmt.Sprintf("%.1f", ms))
			}
			cells = append(cells, fmt.Sprintf("%.1f", ps.TimeMs(d, target)))
			t.Rows = append(t.Rows, cells)
		}
	}
	t.Notes = append(t.Notes,
		"paper annotations: Kirin 980 TFLite CPU 919 ms; SD845 TFLite CPU 1032 ms",
		"dense frameworks degrade more on the bandwidth-starved Kirin 980; PatDNN stays stable",
		"because pruning cuts both computation and memory traffic (Section 6.5)")
	return t
}

// AblationStorage isolates the paper's Section 6.2 observation: the same
// pruned computation executed through conventional CSR sparse kernels lands
// near the optimized dense time, while the pattern-based pipeline converts
// the MAC reduction into real speedup — the motivating ablation for the whole
// compiler design.
func AblationStorage() *Table {
	t := &Table{
		ID:      "ablation-storage",
		Title:   "Execution strategy ablation: VGG-16/ImageNet on SD855 (ms)",
		Columns: []string{"Strategy", "CPU", "GPU", "vs dense (CPU)"},
	}
	d := device.SD855()
	m := model.VGG16("imagenet")
	dense := baseline.PatDNNDense(true)
	denseCPU, err := dense.TimeMs(m, d, device.CPU)
	if err != nil {
		panic(err)
	}
	denseGPU, err := dense.TimeMs(m, d, device.GPU)
	if err != nil {
		panic(err)
	}
	t.AddRow("dense + Winograd (ours)", fmt.Sprintf("%.1f", denseCPU),
		fmt.Sprintf("%.1f", denseGPU), "1.00x")
	csrCPU := baseline.CSRSparseTimeMs(m, 3.6, d, device.CPU)
	csrGPU := baseline.CSRSparseTimeMs(m, 3.6, d, device.GPU)
	t.AddRow("CSR sparse (8x fewer MACs)", fmt.Sprintf("%.1f", csrCPU),
		fmt.Sprintf("%.1f", csrGPU), fmt.Sprintf("%.2fx", denseCPU/csrCPU))
	ps, err := baseline.CompilePatDNN(m, 8, 3.6, codegen.Tuned, 42)
	if err != nil {
		panic(err)
	}
	patCPU := ps.TimeMs(d, device.CPU)
	patGPU := ps.TimeMs(d, device.GPU)
	t.AddRow("PatDNN pattern + compiler", fmt.Sprintf("%.1f", patCPU),
		fmt.Sprintf("%.1f", patGPU), fmt.Sprintf("%.2fx", denseCPU/patCPU))
	t.Notes = append(t.Notes,
		"paper: the CSR implementation 'shows almost the same speed to PatDNN's dense version';",
		"host-measured counterpart in bench_test.go: CSR conv is slower than dense direct on x86 too")
	return t
}

// AblationTuner compares the GA explorer against random search at equal
// evaluation budget on VGG L4, using the analytic device cost — the design
// choice DESIGN.md calls out.
func AblationTuner() *Table {
	t := &Table{
		ID:      "ablation-tuner",
		Title:   "Auto-tuning ablation on VGG L4 (device-model cost, CPU)",
		Columns: []string{"Strategy", "Evaluations", "Best time(ms)", "vs default config"},
	}
	d := device.SD855()
	l4 := vggUniqueLayers(true)[3]
	evalCfg := func(tune lr.Tuning) float64 {
		plan, err := codegen.Compile(l4.Conv, codegen.Tuned, tune)
		if err != nil {
			return 1e9
		}
		return d.TimeMs(plan.Stats(), device.CPU, tune.Threads, 4)
	}
	defaultMs := evalCfg(lr.DefaultTuning())
	opts := tuner.DefaultOptions()
	opts.WarmStart = []lr.Tuning{lr.DefaultTuning()}
	// The default space and options are statically valid; a search error here
	// is a programming bug, not an input condition.
	ga, gaHist, err := tuner.Search(tuner.DefaultSpace(), evalCfg, opts)
	if err != nil {
		panic(err)
	}
	rnd, _, err := tuner.RandomSearch(tuner.DefaultSpace(), evalCfg, len(gaHist), 3)
	if err != nil {
		panic(err)
	}
	t.AddRow("default config", 1, fmt.Sprintf("%.2f", defaultMs), "1.00x")
	t.AddRow("random search", len(gaHist), fmt.Sprintf("%.2f", rnd.CostMs),
		fmt.Sprintf("%.2fx", defaultMs/rnd.CostMs))
	t.AddRow("genetic algorithm", len(gaHist), fmt.Sprintf("%.2f", ga.CostMs),
		fmt.Sprintf("%.2fx", defaultMs/ga.CostMs))
	// Estimator quality on the GA history.
	est := tuner.NewEstimator(10, 1)
	var trainSet, testSet []tuner.Result
	for i, r := range gaHist {
		if i%5 == 4 {
			testSet = append(testSet, r)
		} else {
			trainSet = append(trainSet, r)
		}
	}
	est.Fit(trainSet, 200, 0.01)
	rmse := math.Sqrt(est.MSE(testSet))
	t.Notes = append(t.Notes,
		fmt.Sprintf("performance estimator RMSE on held-out configs: %.2f ms (best config %.2f ms)",
			rmse, ga.CostMs),
		"paper: GA exploration completes in 3-5 ms for a large DNN; tuning gains 1.2-1.9x on CPU")
	return t
}
