package bench

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func parseLeadingFloat(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(strings.Fields(cell)[0], "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", cell, err)
	}
	return v
}

func TestAllExperimentsRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
	}
	// One per paper artifact: tables 1-7, figures 12-18, + ablation.
	for _, want := range []string{"table1", "table2", "table3", "table4",
		"table5", "table6", "table7", "figure12", "figure13", "figure14",
		"figure15", "figure16", "figure17", "figure18"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
	if _, ok := ByID("table3"); !ok {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID matched garbage")
	}
}

func TestRenderAligned(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Columns: []string{"a", "bb"}}
	tb.AddRow("1", 2)
	tb.AddRow(3.5, "zzz")
	tb.Notes = append(tb.Notes, "n")
	out := tb.Render()
	for _, want := range []string{"== x: t ==", "a", "bb", "zzz", "note: n", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 11 {
		t.Fatalf("table1 rows = %d, want 11 knobs", len(tb.Rows))
	}
	// PatDNN must be the only framework with sparse support.
	for _, row := range tb.Rows {
		if strings.Contains(row[0], "Sparse DNN") {
			if row[1] != "N" || row[2] != "N" || row[3] != "N" || row[4] != "Y" {
				t.Fatalf("sparse support row wrong: %v", row)
			}
		}
	}
}

func TestTable2Ranks(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	get := func(scheme string) float64 {
		for _, row := range tb.Rows {
			if row[0] == scheme {
				return parseLeadingFloat(t, row[3])
			}
		}
		t.Fatalf("scheme %s missing", scheme)
		return 0
	}
	nonStruct := get("Non-structured")
	structured := get("Filter/Channel")
	pat := get("Pattern")
	if structured >= nonStruct {
		t.Fatal("structured pruning must lose more accuracy than non-structured")
	}
	if pat <= structured {
		t.Fatal("pattern pruning must beat structured pruning accuracy")
	}
}

func TestFigure17PatternConvertsComputation(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles 9 layers")
	}
	tb := Figure17()
	// Part (a): our dense beats MNN on both targets.
	var mnnCPU, oursCPU float64
	for _, row := range tb.Rows {
		if row[0] != "(a)" {
			continue
		}
		if row[1] == "MNN" {
			mnnCPU = parseLeadingFloat(t, row[2])
		} else {
			oursCPU = parseLeadingFloat(t, row[2])
		}
	}
	if oursCPU >= mnnCPU {
		t.Fatalf("dense PatDNN (%.1f) not faster than MNN (%.1f)", oursCPU, mnnCPU)
	}
	// Part (b): pattern GFLOPS >= dense on GPU for the large layers (L2+).
	for _, row := range tb.Rows {
		if row[0] != "(b)" || row[1] == "L1" {
			continue
		}
		var dg, pg float64
		if _, err := fmt.Sscanf(row[3], "%f vs %f", &dg, &pg); err != nil {
			t.Fatalf("cannot parse GPU cell %q", row[3])
		}
		if pg < dg {
			t.Fatalf("%s: pattern GPU GFLOPS %.1f below dense %.1f", row[1], pg, dg)
		}
	}
}

func TestTable3Trends(t *testing.T) {
	tb := Table3()
	for _, row := range tb.Rows {
		base := parseLeadingFloat(t, row[1])
		p6 := parseLeadingFloat(t, row[2])
		p8 := parseLeadingFloat(t, row[3])
		p12 := parseLeadingFloat(t, row[4])
		if !(p6 >= base && p8 >= p6 && p12 >= p8) {
			t.Fatalf("%s: pattern accuracy not monotone: %v", row[0], row)
		}
	}
}

func TestTable4OursBeatsPriorAtVGG(t *testing.T) {
	tb := Table4()
	var ours, admmNN float64
	for _, row := range tb.Rows {
		if row[0] == "VGG-16" && strings.HasPrefix(row[1], "Ours") {
			ours = parseLeadingFloat(t, row[2])
		}
		if row[0] == "VGG-16" && strings.Contains(row[1], "ADMM-NN") {
			admmNN = parseLeadingFloat(t, row[2])
		}
	}
	if ours <= admmNN {
		t.Fatalf("ours %.1f must exceed ADMM-NN %.1f at the same 8x rate", ours, admmNN)
	}
}

func TestTable5RowsAndSizes(t *testing.T) {
	tb := Table5()
	if len(tb.Rows) != 6 {
		t.Fatalf("table5 rows = %d, want 6", len(tb.Rows))
	}
	// Spot-check VGG/ImageNet size ~553.5 and layer counts.
	r := tb.Rows[0]
	if r[0] != "VGG" || r[3] != "16" || r[4] != "13" {
		t.Fatalf("VGG row wrong: %v", r)
	}
	size := parseLeadingFloat(t, r[5])
	if size < 545 || size > 560 {
		t.Fatalf("VGG size %v", size)
	}
}

func TestTable6HasNineLayers(t *testing.T) {
	tb := Table6()
	if len(tb.Rows) != 9 {
		t.Fatalf("table6 rows = %d, want 9", len(tb.Rows))
	}
	if tb.Rows[0][1] != "[64,3,3,3]" || tb.Rows[8][1] != "[512,512,3,3]" {
		t.Fatalf("L1/L9 shapes wrong: %v / %v", tb.Rows[0], tb.Rows[8])
	}
}

func TestTable7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles VGG three times")
	}
	tb := Table7()
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Accuracy rises with pattern count; 12-pattern time much worse than 8.
	acc8 := parseLeadingFloat(t, tb.Rows[1][1])
	acc12 := parseLeadingFloat(t, tb.Rows[2][1])
	if acc12 < acc8 {
		t.Fatal("accuracy should not drop from 8 to 12 patterns")
	}
	cpu8 := parseLeadingFloat(t, tb.Rows[1][3])
	cpu12 := parseLeadingFloat(t, tb.Rows[2][3])
	if cpu12 < cpu8*1.2 {
		t.Fatalf("12-pattern CPU time %.1f should clearly exceed 8-pattern %.1f", cpu12, cpu8)
	}
}

func TestFigure13SpeedupsMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles 9 layers x 4 levels")
	}
	tb := Figure13()
	if len(tb.Rows) != 18 { // 9 layers x {CPU, GPU}
		t.Fatalf("rows = %d, want 18", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		reorderX := parseLeadingFloat(t, row[2])
		lreX := parseLeadingFloat(t, row[3])
		tuneX := parseLeadingFloat(t, row[4])
		if !(reorderX >= 1 && lreX >= reorderX && tuneX >= lreX) {
			t.Fatalf("%s/%s: speedups not cumulative: %v", row[0], row[1], row)
		}
		if tuneX < 2 || tuneX > 40 {
			t.Fatalf("%s/%s: total speedup %.2f implausible", row[0], row[1], tuneX)
		}
	}
}

func TestFigure14Shape(t *testing.T) {
	tb := Figure14()
	// (a) rows: groups shrink after FKR; (b): loads shrink after LRE.
	for _, row := range tb.Rows {
		before := parseLeadingFloat(t, row[3])
		after := parseLeadingFloat(t, row[4])
		if after > before {
			t.Fatalf("metric %q worsened: %v", row[2], row)
		}
	}
}

func TestFigure15BlockedWins(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles 9 layers x 4 permutations")
	}
	tb := Figure15()
	for _, row := range tb.Rows {
		cocihw := parseLeadingFloat(t, row[1])
		blocked := parseLeadingFloat(t, row[4])
		if blocked <= cocihw {
			t.Fatalf("%s: cohwci_b (%.1f) must beat cocihw (%.1f)", row[0], blocked, cocihw)
		}
	}
}

func TestFigure16RatiosLow(t *testing.T) {
	if testing.Short() {
		t.Skip("encodes 27 layers")
	}
	tb := Figure16()
	if len(tb.Rows) != 10 { // L1..L9 + All
		t.Fatalf("rows = %d, want 10", len(tb.Rows))
	}
	all := tb.Rows[len(tb.Rows)-1]
	for _, cell := range all[1:] {
		ratio := parseLeadingFloat(t, cell)
		if ratio > 20 {
			t.Fatalf("aggregate FKW/CSR ratio %.1f%% too high", ratio)
		}
	}
}

func TestFigure18PatDNNStable(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles VGG")
	}
	tb := Figure18()
	for _, row := range tb.Rows {
		pat := parseLeadingFloat(t, row[len(row)-1])
		for _, cell := range row[2 : len(row)-1] {
			if cell == "n/a" {
				continue
			}
			if parseLeadingFloat(t, cell) <= pat {
				t.Fatalf("PatDNN not fastest on %s/%s: %v", row[0], row[1], row)
			}
		}
	}
}

func TestAblationStorageShape(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles VGG")
	}
	tb := AblationStorage()
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	denseCPU := parseLeadingFloat(t, tb.Rows[0][1])
	csrCPU := parseLeadingFloat(t, tb.Rows[1][1])
	patCPU := parseLeadingFloat(t, tb.Rows[2][1])
	// CSR near dense (paper: "almost the same"); pattern far faster.
	if r := csrCPU / denseCPU; r < 0.5 || r > 1.6 {
		t.Fatalf("CSR/dense = %.2f, want near 1", r)
	}
	if patCPU >= denseCPU/2 {
		t.Fatalf("pattern (%.1f) should be far faster than dense (%.1f)", patCPU, denseCPU)
	}
}

func TestAblationTunerGAWins(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the GA")
	}
	tb := AblationTuner()
	def := parseLeadingFloat(t, tb.Rows[0][2])
	ga := parseLeadingFloat(t, tb.Rows[2][2])
	if ga > def {
		t.Fatalf("GA (%.2f) worse than default config (%.2f)", ga, def)
	}
}
