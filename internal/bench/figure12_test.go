package bench

import "testing"

// TestFigure12Ordering checks the headline structural claim: on every
// (dataset, target, network) combination, PatDNN is fastest and the dense
// frameworks keep the paper's relative order TFLite > TVM > MNN.
func TestFigure12Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles all six networks")
	}
	tb := Figure12()
	if len(tb.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		pat := parseLeadingFloat(t, row[5])
		var dense []float64
		for _, cell := range row[2:5] {
			if cell == "n/a" {
				continue
			}
			dense = append(dense, parseLeadingFloat(t, cell))
		}
		for i, ms := range dense {
			if ms <= pat {
				t.Fatalf("%s %s: dense framework %d (%.1f) not slower than PatDNN (%.1f)",
					row[0], row[1], i, ms, pat)
			}
		}
		// TFLite > TVM > MNN whenever all three are present.
		if len(dense) == 3 && !(dense[0] > dense[1] && dense[1] > dense[2]) {
			t.Fatalf("%s %s: dense ordering wrong: %v", row[0], row[1], dense)
		}
		// Real-time check for the headline cell.
		if row[0] == "(c) ImageNet-GPU" && row[1] == "VGG" && pat > 33 {
			t.Fatalf("VGG ImageNet GPU %.1f ms misses real-time", pat)
		}
	}
	// The speedup column must show meaningful factors everywhere.
	for _, row := range tb.Rows {
		s := parseLeadingFloat(t, row[6])
		if s < 1.5 || s > 60 {
			t.Fatalf("%s %s: speedup %.1f implausible", row[0], row[1], s)
		}
	}
}
