// Package bench regenerates every table and figure of the paper's evaluation
// (Section 6) from this repository's implementations. Each experiment returns
// a Table — rows/columns mirroring the paper's artifact — plus notes
// recording the paper-reported reference values so EXPERIMENTS.md can compare
// shape (who wins, by what factor) rather than absolute numbers, which depend
// on the substituted device model (see DESIGN.md).
package bench

import (
	"fmt"
	"strings"
)

// Table is one regenerated experiment artifact.
type Table struct {
	ID      string // e.g. "table3", "figure13a"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string // paper-reported reference points and caveats
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment pairs an ID with its generator.
type Experiment struct {
	ID   string
	Desc string
	Run  func() *Table
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "DNN acceleration framework optimization matrix", Table1},
		{"table2", "qualitative comparison of pruning schemes", Table2},
		{"table3", "Top-5 accuracy vs pattern count (pattern pruning only)", Table3},
		{"table4", "joint pattern+connectivity pruning vs prior work", Table4},
		{"table5", "trained DNN characteristics", Table5},
		{"table6", "VGG unique CONV layers L1-L9", Table6},
		{"table7", "pattern count impact on accuracy and execution time", Table7},
		{"figure12", "overall performance vs TFLite/TVM/MNN", Figure12},
		{"figure13", "per-layer speedup of compiler optimizations", Figure13},
		{"figure14", "FKR filter-length distribution and LRE load counts", Figure14},
		{"figure15", "loop permutation and blocking effect (GFLOPS)", Figure15},
		{"figure16", "FKW vs CSR extra-structure overhead", Figure16},
		{"figure17", "GFLOPS: PatDNN pattern vs optimized dense", Figure17},
		{"figure18", "portability: Kirin 980 and Snapdragon 845", Figure18},
		{"ablation-tuner", "GA tuner vs random search (extra ablation)", AblationTuner},
		{"ablation-storage", "dense vs CSR vs pattern execution (extra ablation)", AblationStorage},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
