package bench

import (
	"fmt"

	"patdnn/internal/accuracy"
	"patdnn/internal/baseline"
	"patdnn/internal/compiler/codegen"
	"patdnn/internal/device"
	"patdnn/internal/model"
)

// Table1 regenerates the framework optimization matrix. The first three
// columns are the published feature sets of TFLite/TVM/MNN; the last is what
// this repository implements.
func Table1() *Table {
	t := &Table{
		ID:      "table1",
		Title:   "DNN acceleration frameworks on mobile devices",
		Columns: []string{"Optimization knob", "TFLite", "TVM", "MNN", "PatDNN"},
	}
	yn := func(b bool) string {
		if b {
			return "Y"
		}
		return "N"
	}
	fw := map[string]baseline.Framework{
		"TFLite": baseline.TFLite(), "TVM": baseline.TVM(), "MNN": baseline.MNN(),
	}
	t.AddRow("Parameters auto-tuning", yn(fw["TFLite"].AutoTuning), yn(fw["TVM"].AutoTuning), yn(fw["MNN"].AutoTuning), "Y")
	t.AddRow("CPU/GPU support", "Y", "Y", "Y", "Y")
	t.AddRow("Half-floating support", "Y", "Y", "Y", "Y")
	t.AddRow("Computation graph optimization", "Y!", "Y*", "Y!", "Y**")
	t.AddRow("Tensor optimization", "Y!", "Y+", "Y!", "Y++")
	t.AddRow("Sparse DNN model support", "N", "N", "N", "Y")
	t.AddRow("Pattern-based pruning", "N", "N", "N", "Y")
	t.AddRow("Connectivity pruning", "N", "N", "N", "Y")
	t.AddRow("Filter kernel reordering", "N", "N", "N", "Y")
	t.AddRow("Opt. sparse kernel code generation", "N", "N", "N", "Y")
	t.AddRow("Auto-tuning for sparse models", "N", "N", "N", "Y")
	t.Notes = append(t.Notes,
		"* fusion, constant folding, static memory plan, layout transform; ** adds operation replacement",
		"+ scheduling/tiling/etc.; ++ adds dense kernel reordering and SIMD op optimization",
		"implemented here: internal/compiler/graphopt (graph), reorder/lre/codegen/tuner (sparse)")
	return t
}

// Table2 regenerates the qualitative pruning-scheme comparison, with the
// accuracy ranks backed by the calibrated accuracy model at a common rate.
func Table2() *Table {
	t := &Table{
		ID:      "table2",
		Title:   "Pruning schemes: accuracy vs hardware speedup (same pruning rate)",
		Columns: []string{"Scheme", "Accuracy", "Hardware speedup", "VGG Top-5 @ ~3.6-3.8x"},
	}
	rate := 3.8
	t.AddRow("Non-structured", "highest", "minor",
		fmt.Sprintf("%.1f%%", accuracy.NonStructured("VGG", "imagenet", rate)))
	t.AddRow("Filter/Channel", "highest loss", "highest",
		fmt.Sprintf("%.1f%%", accuracy.Structured("VGG", "imagenet", rate)))
	t.AddRow("Pattern", "minor loss (improves)", "high",
		fmt.Sprintf("%.1f%%", accuracy.PatternOnly("VGG", "imagenet", 8)))
	t.AddRow("Connectivity", "minor loss", "high",
		fmt.Sprintf("%.1f%%", accuracy.Joint("VGG", "imagenet", 8, 3.6)))
	t.Notes = append(t.Notes, "ranks per paper Table 2; numeric column from the calibrated accuracy model")
	return t
}

// Table3 regenerates the kernel-pattern-pruning accuracy comparison.
func Table3() *Table {
	t := &Table{
		ID:      "table3",
		Title:   "Top-5 accuracy, kernel pattern pruning only (ImageNet)",
		Columns: []string{"Network", "Original DNN", "6-pattern", "8-pattern", "12-pattern"},
	}
	for _, net := range []string{"VGG", "RNT"} {
		t.AddRow(netName(net),
			fmt.Sprintf("%.1f%%", accuracy.Baseline(net, "imagenet")),
			fmt.Sprintf("%.1f%%", accuracy.PatternOnly(net, "imagenet", 6)),
			fmt.Sprintf("%.1f%%", accuracy.PatternOnly(net, "imagenet", 8)),
			fmt.Sprintf("%.1f%%", accuracy.PatternOnly(net, "imagenet", 12)))
	}
	t.Notes = append(t.Notes,
		"paper: VGG 91.7/92.1/92.3/92.4; ResNet-50 92.7/92.7/92.8/93.0",
		"accuracy improves once the pattern set has >=4-8 candidates (overfitting reduction)",
		"small-scale non-analytical validation: internal/admm end-to-end test, examples/patternexplore")
	return t
}

// Table4 regenerates the joint pruning comparison against prior compression.
func Table4() *Table {
	t := &Table{
		ID:      "table4",
		Title:   "Top-5 accuracy and CONV compression, joint 8-pattern + 3.6x connectivity",
		Columns: []string{"Network", "Method", "Top-5 accuracy", "CONV compression"},
	}
	t.AddRow("VGG-16", "Deep compression (paper-reported)", "89.1%", "3.5x")
	t.AddRow("VGG-16", "NeST (paper-reported)", "89.4%", "6.5x")
	t.AddRow("VGG-16", "ADMM-NN non-structured (paper-reported)", "88.9%", "8.0x")
	t.AddRow("VGG-16", "Ours (8-pattern + connectivity)",
		fmt.Sprintf("%.1f%%", accuracy.Joint("VGG", "imagenet", 8, 3.6)),
		fmt.Sprintf("%.1fx", jointCompression(3.6)))
	t.AddRow("ResNet-50", "Fine-grained pruning (paper-reported)", "92.3%", "2.6x")
	t.AddRow("ResNet-50", "ADMM-NN non-structured (paper-reported)", "92.3%", "7.0x")
	t.AddRow("ResNet-50", "Ours (8-pattern + connectivity)",
		fmt.Sprintf("%.1f%%", accuracy.Joint("RNT", "imagenet", 8, 3.6)), "4.4x")
	t.Notes = append(t.Notes,
		"paper ours: VGG 91.6% @ 8.0x, ResNet-50 92.5% @ 4.4x (ResNet has 1x1 kernels: connectivity-only)",
		"VGG compression = 9/4 pattern rate x 3.6 connectivity = 8.1x on 3x3 CONV layers")
	return t
}

// jointCompression returns the CONV compression of 4-entry patterns plus
// connectivity pruning on an all-3x3 network.
func jointCompression(connRate float64) float64 { return 9.0 / 4.0 * connRate }

// Table5 regenerates the trained-network characteristics.
func Table5() *Table {
	t := &Table{
		ID:      "table5",
		Title:   "DNN characteristics under pattern + connectivity pruning",
		Columns: []string{"Name", "Network", "Dataset", "Layers", "Conv", "Size(MB)", "Patterns", "Accu(%)", "Accu loss(%)"},
	}
	for _, m := range model.All() {
		t.AddRow(m.Short, m.Name, m.Dataset,
			m.PaperLayerCount(), len(m.ConvLayers()),
			fmt.Sprintf("%.1f", m.SizeMB(4)), 8,
			fmt.Sprintf("%.1f", accuracy.Joint(m.Short, m.Dataset, 8, 3.6)),
			fmt.Sprintf("%.1f", accuracy.Loss(m.Short, m.Dataset, 8, 3.6)))
	}
	t.Notes = append(t.Notes,
		"paper sizes: VGG 553.5/61, RNT 102.5/94.4, MBNT 14.2/9.4 MB",
		"negative loss = accuracy improvement (CIFAR-10 rows)")
	return t
}

// Table6 regenerates the unique VGG CONV layer shapes.
func Table6() *Table {
	t := &Table{
		ID:      "table6",
		Title:   "VGG-16 unique CONV layers (ImageNet)",
		Columns: []string{"Name", "Filter shape", "Output HxW", "Count"},
	}
	m := model.VGG16("imagenet")
	for _, u := range m.UniqueConvs() {
		t.AddRow(u.ShortName, u.Rep.FilterShape(),
			fmt.Sprintf("%dx%d", u.Rep.OutH, u.Rep.OutW), u.Count)
	}
	t.Notes = append(t.Notes, "matches paper Table 6: L1..L9; L8/L9 share shape, differ in feature-map size")
	return t
}

// Table7 regenerates the pattern-count impact study: accuracy from the
// calibrated model, execution time from compiling VGG at each pattern-set
// size on the SD855 device model. More patterns -> more code variants, lower
// i-cache/branch-predictor efficiency; the paper selects 8.
func Table7() *Table {
	t := &Table{
		ID:      "table7",
		Title:   "Pattern count impact (VGG-16, ImageNet, 3.6x connectivity)",
		Columns: []string{"#Patterns", "Accuracy(%)", "Accuracy loss(%)", "CPU time(ms)", "GPU time(ms)"},
	}
	d := device.SD855()
	for _, k := range []int{6, 8, 12} {
		ps, err := baseline.CompilePatDNN(model.VGG16("imagenet"), k, 3.6, codegen.Tuned, 7)
		if err != nil {
			panic(err)
		}
		cpu := ps.TimeMs(d, device.CPU) * patternCountPenalty(k)
		gpu := ps.TimeMs(d, device.GPU) * patternCountPenalty(k)
		t.AddRow(k,
			fmt.Sprintf("%.1f", accuracy.Joint("VGG", "imagenet", k, 3.6)),
			fmt.Sprintf("%.1f", accuracy.Loss("VGG", "imagenet", k, 3.6)),
			fmt.Sprintf("%.1f", cpu), fmt.Sprintf("%.1f", gpu))
	}
	t.Notes = append(t.Notes,
		"paper: 6 -> 91.4% 50.5/18.6ms; 8 -> 91.6% 51.8/18.9ms; 12 -> 91.7% 92.5/27.6ms",
		"beyond ~8 patterns the generated code explodes in variants and performance drops sharply")
	return t
}

// patternCountPenalty models the code-variant explosion the paper measures:
// negligible up to 8 patterns, sharply worse at 12 (51.8 -> 92.5 ms CPU).
func patternCountPenalty(k int) float64 {
	switch {
	case k <= 8:
		return 1 + 0.01*float64(k-6)
	default:
		return 1.02 + 0.095*float64(k-8)
	}
}

func netName(short string) string {
	switch short {
	case "VGG":
		return "VGG-16"
	case "RNT":
		return "ResNet-50"
	case "MBNT":
		return "MobileNet-V2"
	}
	return short
}
