// Package simd provides the vectorized tile-FMA microkernels the packed FKW
// backend's register-blocked drivers (codegen exec_packed / exec_packedq8)
// dispatch into. Each kernel computes, over a rows×cols tile,
//
//	dst[r·dstStride + c] += Σ_t w[t] · src[t][r·srcStride + c]
//
// for 4 or 8 taps t — the 4-entry pattern run of one kernel, or a
// register-blocked pair of kernels. The tap pointers already bake in each
// tap's (Δrow, Δcol) displacement, so one call sweeps a whole spatial tile
// with the tap weights pinned in vector registers: the register-level load
// redundancy elimination of paper §5.4, realized as machine FMAs instead of
// IR bookkeeping.
//
// Three implementations exist: AVX2+FMA (amd64), NEON (arm64), and a
// pure-Go generic that every other build — and the noasm build tag — gets.
// internal/cpu probes the running core once; Active returns the selected
// set. The contract across implementations is exact: identical iteration
// domain, per-element accumulation of all taps in ascending tap order, and
// in-place updates of dst only. Strides are in float32 elements, may exceed
// cols (tiles are strided views over larger planes), and the column step is
// always 1 — stride-2 convolutions keep the scalar driver path.
package simd

import (
	"sync"
	"sync/atomic"

	"patdnn/internal/cpu"
)

// Tile4Func accumulates a 4-tap tile: dst[r,c] += Σ w[t]·src[t][r,c].
type Tile4Func func(dst *float32, dstStride int, src *[4]*float32, srcStride int, w *[4]float32, cols, rows int)

// Tile8Func accumulates an 8-tap tile (a register-blocked kernel pair).
type Tile8Func func(dst *float32, dstStride int, src *[8]*float32, srcStride int, w *[8]float32, cols, rows int)

// Tile8Q8Func is the widening-multiply variant for the PackedQ8 stream: the
// 8 tap weights arrive as int8 quantization levels and are widened to
// float32 (and multiplied by scale) in the kernel prologue, once per tile,
// before the same 8-tap FMA sweep. Pass scale 1 when the caller defers the
// filter scale to a dequant-fused epilogue.
type Tile8Q8Func func(dst *float32, dstStride int, src *[8]*float32, srcStride int, q *[8]int8, scale float32, cols, rows int)

// Kernels is one complete implementation set. Plans capture a set at compile
// time, so a running plan's kernels never change under it.
type Kernels struct {
	Name    string // "avx2", "neon", or "generic"
	Lanes   int    // vector width in float32 lanes (1 for generic)
	Tile4   Tile4Func
	Tile8   Tile8Func
	Tile8Q8 Tile8Q8Func
}

var (
	genericSet = Kernels{
		Name: "generic", Lanes: 1,
		Tile4: fmaTile4Generic, Tile8: fmaTile8Generic, Tile8Q8: fmaTile8Q8Generic,
	}
	// bestSet is filled by the per-arch init when the probe accepts the core;
	// otherwise it stays generic.
	bestSet = genericSet

	forcedGeneric atomic.Bool
	installMu     sync.Mutex
)

// Generic returns the pure-Go implementation set — the noasm fallback, the
// scalar-tail helper, and the reference the differential suite pins the
// vector kernels against.
func Generic() Kernels { return genericSet }

// Active returns the implementation set new plans should capture: the best
// the probe accepted, or the generic set while ForceGeneric holds.
func Active() Kernels {
	if forcedGeneric.Load() {
		return genericSet
	}
	return bestSet
}

// ForceGeneric makes Active return the pure-Go set (on=true) or restores the
// probed best set (on=false). It only affects plans compiled afterwards —
// compiled plans keep the kernels they captured — and exists for tests and
// benchmarks that need a scalar baseline on vector hardware.
func ForceGeneric(on bool) {
	installMu.Lock()
	defer installMu.Unlock()
	forcedGeneric.Store(on)
}

// Arch names the implementation Active currently selects.
func Arch() string { return Active().Name }

// CPUArch reports the probe's verdict for this core, independent of
// ForceGeneric — the string tuning-DB keys and /stats carry.
func CPUArch() string { return cpu.Arch() }
