package simd

import "unsafe"

// The pure-Go microkernels. These are the noasm/unsupported-CPU fallback and
// the reference implementation the vector kernels are pinned against; they
// share the exact iteration-domain contract documented on the package.
//
// The row views are materialized as slices so the compiler can eliminate
// bounds checks in the inner loops; the unsafe.Slice spans cover exactly the
// elements the tile touches ((rows-1)·stride + cols), never more.

func rowSpan(p *float32, stride, cols, rows int) []float32 {
	return unsafe.Slice(p, (rows-1)*stride+cols)
}

func fmaTile4Generic(dst *float32, dstStride int, src *[4]*float32, srcStride int, w *[4]float32, cols, rows int) {
	if cols <= 0 || rows <= 0 {
		return
	}
	d := rowSpan(dst, dstStride, cols, rows)
	s0 := rowSpan(src[0], srcStride, cols, rows)
	s1 := rowSpan(src[1], srcStride, cols, rows)
	s2 := rowSpan(src[2], srcStride, cols, rows)
	s3 := rowSpan(src[3], srcStride, cols, rows)
	w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
	for r := 0; r < rows; r++ {
		do, so := r*dstStride, r*srcStride
		drow := d[do : do+cols]
		r0 := s0[so : so+cols]
		r1 := s1[so : so+cols]
		r2 := s2[so : so+cols]
		r3 := s3[so : so+cols]
		for c := range drow {
			drow[c] += w0*r0[c] + w1*r1[c] + w2*r2[c] + w3*r3[c]
		}
	}
}

func fmaTile8Generic(dst *float32, dstStride int, src *[8]*float32, srcStride int, w *[8]float32, cols, rows int) {
	if cols <= 0 || rows <= 0 {
		return
	}
	d := rowSpan(dst, dstStride, cols, rows)
	s0 := rowSpan(src[0], srcStride, cols, rows)
	s1 := rowSpan(src[1], srcStride, cols, rows)
	s2 := rowSpan(src[2], srcStride, cols, rows)
	s3 := rowSpan(src[3], srcStride, cols, rows)
	s4 := rowSpan(src[4], srcStride, cols, rows)
	s5 := rowSpan(src[5], srcStride, cols, rows)
	s6 := rowSpan(src[6], srcStride, cols, rows)
	s7 := rowSpan(src[7], srcStride, cols, rows)
	w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
	w4, w5, w6, w7 := w[4], w[5], w[6], w[7]
	for r := 0; r < rows; r++ {
		do, so := r*dstStride, r*srcStride
		drow := d[do : do+cols]
		r0 := s0[so : so+cols]
		r1 := s1[so : so+cols]
		r2 := s2[so : so+cols]
		r3 := s3[so : so+cols]
		r4 := s4[so : so+cols]
		r5 := s5[so : so+cols]
		r6 := s6[so : so+cols]
		r7 := s7[so : so+cols]
		for c := range drow {
			drow[c] += w0*r0[c] + w1*r1[c] + w2*r2[c] + w3*r3[c] +
				w4*r4[c] + w5*r5[c] + w6*r6[c] + w7*r7[c]
		}
	}
}

func fmaTile8Q8Generic(dst *float32, dstStride int, src *[8]*float32, srcStride int, q *[8]int8, scale float32, cols, rows int) {
	var w [8]float32
	for i, lv := range q {
		w[i] = scale * float32(lv)
	}
	fmaTile8Generic(dst, dstStride, src, srcStride, &w, cols, rows)
}

// WidenQ8 converts a quad of int8 quantization levels to scaled float32
// weights — the Go-side widening the 4-tap Q8 path and the NEON Q8 wrapper
// use (only the amd64 8-tap kernel widens in-register).
func WidenQ8(q []int8, scale float32, w *[4]float32) {
	w[0] = scale * float32(q[0])
	w[1] = scale * float32(q[1])
	w[2] = scale * float32(q[2])
	w[3] = scale * float32(q[3])
}
