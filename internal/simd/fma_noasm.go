//go:build noasm || !(amd64 || arm64)

package simd

// No hand-written kernels in this build: bestSet keeps its generic zero
// state, so Active() == Generic() — the noasm fallback contract.
