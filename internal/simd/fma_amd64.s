//go:build amd64 && !noasm

#include "textflag.h"

// AVX2+FMA tile-FMA microkernels. Shared shape: tap weights are broadcast
// into YMM registers once per call (the register-level hoist), then every
// tile row is swept 8 output columns at a time — per 8 columns: one
// accumulator load, one FMA per tap, one store. Two accumulator chains
// (Y8/Y9) halve the FMA latency chain; a scalar VFMADD231SS loop finishes
// the cols%8 ragged edge so the iteration domain matches the generic
// kernels exactly. Strides arrive in float32 elements and are converted to
// bytes here.

// func fmaTile4AVX2(dst *float32, dstStride int, src *[4]*float32, srcStride int, w *[4]float32, cols, rows int)
TEXT ·fmaTile4AVX2(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ dstStride+8(FP), R8
	MOVQ src+16(FP), SI
	MOVQ srcStride+24(FP), R9
	MOVQ w+32(FP), DX
	MOVQ cols+40(FP), CX
	MOVQ rows+48(FP), BX

	VBROADCASTSS 0(DX), Y0
	VBROADCASTSS 4(DX), Y1
	VBROADCASTSS 8(DX), Y2
	VBROADCASTSS 12(DX), Y3

	MOVQ 0(SI), R10
	MOVQ 8(SI), R11
	MOVQ 16(SI), R12
	MOVQ 24(SI), R13

	SHLQ $2, R8
	SHLQ $2, R9
	MOVQ CX, DX
	ANDQ $-8, DX

rows4:
	TESTQ BX, BX
	JZ   done4
	XORQ SI, SI

vec4:
	CMPQ SI, DX
	JGE  tail4
	VMOVUPS (DI)(SI*4), Y8
	VMOVUPS (R10)(SI*4), Y10
	VFMADD231PS Y0, Y10, Y8
	VMOVUPS (R11)(SI*4), Y11
	VMULPS Y1, Y11, Y9
	VMOVUPS (R12)(SI*4), Y12
	VFMADD231PS Y2, Y12, Y8
	VMOVUPS (R13)(SI*4), Y13
	VFMADD231PS Y3, Y13, Y9
	VADDPS Y9, Y8, Y8
	VMOVUPS Y8, (DI)(SI*4)
	ADDQ $8, SI
	JMP  vec4

tail4:
	CMPQ SI, CX
	JGE  next4
	VMOVSS (DI)(SI*4), X8
	VMOVSS (R10)(SI*4), X10
	VFMADD231SS X0, X10, X8
	VMOVSS (R11)(SI*4), X11
	VFMADD231SS X1, X11, X8
	VMOVSS (R12)(SI*4), X12
	VFMADD231SS X2, X12, X8
	VMOVSS (R13)(SI*4), X13
	VFMADD231SS X3, X13, X8
	VMOVSS X8, (DI)(SI*4)
	INCQ SI
	JMP  tail4

next4:
	ADDQ R8, DI
	ADDQ R9, R10
	ADDQ R9, R11
	ADDQ R9, R12
	ADDQ R9, R13
	DECQ BX
	JMP  rows4

done4:
	VZEROUPPER
	RET

// func fmaTile8AVX2(dst *float32, dstStride int, src *[8]*float32, srcStride int, w *[8]float32, cols, rows int)
TEXT ·fmaTile8AVX2(SB), NOSPLIT, $8-56
	MOVQ dst+0(FP), DI
	MOVQ dstStride+8(FP), R8
	MOVQ src+16(FP), SI
	MOVQ srcStride+24(FP), R9
	MOVQ w+32(FP), DX
	MOVQ cols+40(FP), CX
	MOVQ rows+48(FP), BX

	VBROADCASTSS 0(DX), Y0
	VBROADCASTSS 4(DX), Y1
	VBROADCASTSS 8(DX), Y2
	VBROADCASTSS 12(DX), Y3
	VBROADCASTSS 16(DX), Y4
	VBROADCASTSS 20(DX), Y5
	VBROADCASTSS 24(DX), Y6
	VBROADCASTSS 28(DX), Y7

	MOVQ CX, AX
	ANDQ $-8, AX
	MOVQ AX, limit-8(SP)

	MOVQ 0(SI), R10
	MOVQ 8(SI), R11
	MOVQ 16(SI), R12
	MOVQ 24(SI), R13
	MOVQ 32(SI), R14
	MOVQ 40(SI), R15
	MOVQ 48(SI), DX
	MOVQ 56(SI), AX

	SHLQ $2, R8
	SHLQ $2, R9

rows8:
	TESTQ BX, BX
	JZ   done8
	XORQ SI, SI

vec8:
	CMPQ SI, limit-8(SP)
	JGE  tail8
	VMOVUPS (DI)(SI*4), Y8
	VMOVUPS (R10)(SI*4), Y10
	VFMADD231PS Y0, Y10, Y8
	VMOVUPS (R11)(SI*4), Y11
	VMULPS Y1, Y11, Y9
	VMOVUPS (R12)(SI*4), Y12
	VFMADD231PS Y2, Y12, Y8
	VMOVUPS (R13)(SI*4), Y13
	VFMADD231PS Y3, Y13, Y9
	VMOVUPS (R14)(SI*4), Y10
	VFMADD231PS Y4, Y10, Y8
	VMOVUPS (R15)(SI*4), Y11
	VFMADD231PS Y5, Y11, Y9
	VMOVUPS (DX)(SI*4), Y12
	VFMADD231PS Y6, Y12, Y8
	VMOVUPS (AX)(SI*4), Y13
	VFMADD231PS Y7, Y13, Y9
	VADDPS Y9, Y8, Y8
	VMOVUPS Y8, (DI)(SI*4)
	ADDQ $8, SI
	JMP  vec8

tail8:
	CMPQ SI, CX
	JGE  next8
	VMOVSS (DI)(SI*4), X8
	VMOVSS (R10)(SI*4), X10
	VFMADD231SS X0, X10, X8
	VMOVSS (R11)(SI*4), X11
	VFMADD231SS X1, X11, X8
	VMOVSS (R12)(SI*4), X12
	VFMADD231SS X2, X12, X8
	VMOVSS (R13)(SI*4), X13
	VFMADD231SS X3, X13, X8
	VMOVSS (R14)(SI*4), X10
	VFMADD231SS X4, X10, X8
	VMOVSS (R15)(SI*4), X11
	VFMADD231SS X5, X11, X8
	VMOVSS (DX)(SI*4), X12
	VFMADD231SS X6, X12, X8
	VMOVSS (AX)(SI*4), X13
	VFMADD231SS X7, X13, X8
	VMOVSS X8, (DI)(SI*4)
	INCQ SI
	JMP  tail8

next8:
	ADDQ R8, DI
	ADDQ R9, R10
	ADDQ R9, R11
	ADDQ R9, R12
	ADDQ R9, R13
	ADDQ R9, R14
	ADDQ R9, R15
	ADDQ R9, DX
	ADDQ R9, AX
	DECQ BX
	JMP  rows8

done8:
	VZEROUPPER
	RET

// func fmaTile8Q8AVX2(dst *float32, dstStride int, src *[8]*float32, srcStride int, q *[8]int8, scale float32, cols, rows int)
//
// The widening-multiply variant for the PackedQ8 int8 weight stream: the 8
// quantization levels are sign-extended to int32, converted to float32, and
// scaled in-register once per call (VPMOVSXBD + VCVTDQ2PS + VMULPS), spilled
// to a stack buffer, and re-broadcast one lane per tap register — then the
// sweep is identical to fmaTile8AVX2.
TEXT ·fmaTile8Q8AVX2(SB), NOSPLIT, $48-64
	MOVQ dst+0(FP), DI
	MOVQ dstStride+8(FP), R8
	MOVQ src+16(FP), SI
	MOVQ srcStride+24(FP), R9
	MOVQ q+32(FP), DX
	MOVQ cols+48(FP), CX
	MOVQ rows+56(FP), BX

	VPMOVSXBD (DX), Y8
	VCVTDQ2PS Y8, Y8
	VBROADCASTSS scale+40(FP), Y9
	VMULPS Y9, Y8, Y8
	VMOVUPS Y8, wbuf-48(SP)

	VBROADCASTSS wbuf-48(SP), Y0
	VBROADCASTSS wbuf-44(SP), Y1
	VBROADCASTSS wbuf-40(SP), Y2
	VBROADCASTSS wbuf-36(SP), Y3
	VBROADCASTSS wbuf-32(SP), Y4
	VBROADCASTSS wbuf-28(SP), Y5
	VBROADCASTSS wbuf-24(SP), Y6
	VBROADCASTSS wbuf-20(SP), Y7

	MOVQ CX, AX
	ANDQ $-8, AX
	MOVQ AX, limit-8(SP)

	MOVQ 0(SI), R10
	MOVQ 8(SI), R11
	MOVQ 16(SI), R12
	MOVQ 24(SI), R13
	MOVQ 32(SI), R14
	MOVQ 40(SI), R15
	MOVQ 48(SI), DX
	MOVQ 56(SI), AX

	SHLQ $2, R8
	SHLQ $2, R9

rowsq:
	TESTQ BX, BX
	JZ   doneq
	XORQ SI, SI

vecq:
	CMPQ SI, limit-8(SP)
	JGE  tailq
	VMOVUPS (DI)(SI*4), Y8
	VMOVUPS (R10)(SI*4), Y10
	VFMADD231PS Y0, Y10, Y8
	VMOVUPS (R11)(SI*4), Y11
	VMULPS Y1, Y11, Y9
	VMOVUPS (R12)(SI*4), Y12
	VFMADD231PS Y2, Y12, Y8
	VMOVUPS (R13)(SI*4), Y13
	VFMADD231PS Y3, Y13, Y9
	VMOVUPS (R14)(SI*4), Y10
	VFMADD231PS Y4, Y10, Y8
	VMOVUPS (R15)(SI*4), Y11
	VFMADD231PS Y5, Y11, Y9
	VMOVUPS (DX)(SI*4), Y12
	VFMADD231PS Y6, Y12, Y8
	VMOVUPS (AX)(SI*4), Y13
	VFMADD231PS Y7, Y13, Y9
	VADDPS Y9, Y8, Y8
	VMOVUPS Y8, (DI)(SI*4)
	ADDQ $8, SI
	JMP  vecq

tailq:
	CMPQ SI, CX
	JGE  nextq
	VMOVSS (DI)(SI*4), X8
	VMOVSS (R10)(SI*4), X10
	VFMADD231SS X0, X10, X8
	VMOVSS (R11)(SI*4), X11
	VFMADD231SS X1, X11, X8
	VMOVSS (R12)(SI*4), X12
	VFMADD231SS X2, X12, X8
	VMOVSS (R13)(SI*4), X13
	VFMADD231SS X3, X13, X8
	VMOVSS (R14)(SI*4), X10
	VFMADD231SS X4, X10, X8
	VMOVSS (R15)(SI*4), X11
	VFMADD231SS X5, X11, X8
	VMOVSS (DX)(SI*4), X12
	VFMADD231SS X6, X12, X8
	VMOVSS (AX)(SI*4), X13
	VFMADD231SS X7, X13, X8
	VMOVSS X8, (DI)(SI*4)
	INCQ SI
	JMP  tailq

nextq:
	ADDQ R8, DI
	ADDQ R9, R10
	ADDQ R9, R11
	ADDQ R9, R12
	ADDQ R9, R13
	ADDQ R9, R14
	ADDQ R9, R15
	ADDQ R9, DX
	ADDQ R9, AX
	DECQ BX
	JMP  rowsq

doneq:
	VZEROUPPER
	RET
