//go:build arm64 && !noasm

#include "textflag.h"

// NEON tile-FMA microkernels, mirroring fma_amd64.s: tap weights VDUPed
// into vector registers once per call, rows swept 4 output columns per
// iteration with one FMLA per tap into a single accumulator, scalar FMADDS
// loop for the cols%4 ragged edge. Strides arrive in float32 elements and
// are converted to bytes here.
//
// Go asm operand order reminders (verified against cmd/asm testdata
// encodings): VFMLA Vm, Vn, Vd computes Vd += Vn*Vm elementwise;
// FMADDS Fm, Fa, Fn, Fd computes Fd = Fa + Fn*Fm.

// func fmaTile4NEON(dst *float32, dstStride int, src *[4]*float32, srcStride int, w *[4]float32, cols, rows int)
TEXT ·fmaTile4NEON(SB), NOSPLIT, $0-56
	MOVD dst+0(FP), R0
	MOVD dstStride+8(FP), R1
	MOVD src+16(FP), R2
	MOVD srcStride+24(FP), R3
	MOVD w+32(FP), R4
	MOVD cols+40(FP), R5
	MOVD rows+48(FP), R6

	VLD1 (R4), [V16.S4]
	VDUP V16.S[0], V0.S4
	VDUP V16.S[1], V1.S4
	VDUP V16.S[2], V2.S4
	VDUP V16.S[3], V3.S4

	MOVD 0(R2), R7
	MOVD 8(R2), R8
	MOVD 16(R2), R9
	MOVD 24(R2), R10

	LSL $2, R1, R1
	LSL $2, R3, R3
	AND $-4, R5, R15

rows4:
	CBZ  R6, done4
	MOVD $0, R16

vec4:
	CMP  R15, R16
	BGE  tail4
	ADD  R16<<2, R0, R19
	VLD1 (R19), [V8.S4]
	ADD  R16<<2, R7, R17
	VLD1 (R17), [V10.S4]
	VFMLA V0.S4, V10.S4, V8.S4
	ADD  R16<<2, R8, R17
	VLD1 (R17), [V11.S4]
	VFMLA V1.S4, V11.S4, V8.S4
	ADD  R16<<2, R9, R17
	VLD1 (R17), [V10.S4]
	VFMLA V2.S4, V10.S4, V8.S4
	ADD  R16<<2, R10, R17
	VLD1 (R17), [V11.S4]
	VFMLA V3.S4, V11.S4, V8.S4
	VST1 [V8.S4], (R19)
	ADD  $4, R16
	B    vec4

tail4:
	CMP  R5, R16
	BGE  next4
	ADD  R16<<2, R0, R19
	FMOVS (R19), F8
	ADD  R16<<2, R7, R17
	FMOVS (R17), F10
	FMADDS F0, F8, F10, F8
	ADD  R16<<2, R8, R17
	FMOVS (R17), F11
	FMADDS F1, F8, F11, F8
	ADD  R16<<2, R9, R17
	FMOVS (R17), F10
	FMADDS F2, F8, F10, F8
	ADD  R16<<2, R10, R17
	FMOVS (R17), F11
	FMADDS F3, F8, F11, F8
	FMOVS F8, (R19)
	ADD  $1, R16
	B    tail4

next4:
	ADD  R1, R0
	ADD  R3, R7
	ADD  R3, R8
	ADD  R3, R9
	ADD  R3, R10
	SUB  $1, R6
	B    rows4

done4:
	RET

// func fmaTile8NEON(dst *float32, dstStride int, src *[8]*float32, srcStride int, w *[8]float32, cols, rows int)
TEXT ·fmaTile8NEON(SB), NOSPLIT, $0-56
	MOVD dst+0(FP), R0
	MOVD dstStride+8(FP), R1
	MOVD src+16(FP), R2
	MOVD srcStride+24(FP), R3
	MOVD w+32(FP), R4
	MOVD cols+40(FP), R5
	MOVD rows+48(FP), R6

	VLD1 (R4), [V16.S4, V17.S4]
	VDUP V16.S[0], V0.S4
	VDUP V16.S[1], V1.S4
	VDUP V16.S[2], V2.S4
	VDUP V16.S[3], V3.S4
	VDUP V17.S[0], V4.S4
	VDUP V17.S[1], V5.S4
	VDUP V17.S[2], V6.S4
	VDUP V17.S[3], V7.S4

	MOVD 0(R2), R7
	MOVD 8(R2), R8
	MOVD 16(R2), R9
	MOVD 24(R2), R10
	MOVD 32(R2), R11
	MOVD 40(R2), R12
	MOVD 48(R2), R13
	MOVD 56(R2), R14

	LSL $2, R1, R1
	LSL $2, R3, R3
	AND $-4, R5, R15

rows8:
	CBZ  R6, done8
	MOVD $0, R16

vec8:
	CMP  R15, R16
	BGE  tail8
	ADD  R16<<2, R0, R19
	VLD1 (R19), [V8.S4]
	ADD  R16<<2, R7, R17
	VLD1 (R17), [V10.S4]
	VFMLA V0.S4, V10.S4, V8.S4
	ADD  R16<<2, R8, R17
	VLD1 (R17), [V11.S4]
	VFMLA V1.S4, V11.S4, V8.S4
	ADD  R16<<2, R9, R17
	VLD1 (R17), [V10.S4]
	VFMLA V2.S4, V10.S4, V8.S4
	ADD  R16<<2, R10, R17
	VLD1 (R17), [V11.S4]
	VFMLA V3.S4, V11.S4, V8.S4
	ADD  R16<<2, R11, R17
	VLD1 (R17), [V10.S4]
	VFMLA V4.S4, V10.S4, V8.S4
	ADD  R16<<2, R12, R17
	VLD1 (R17), [V11.S4]
	VFMLA V5.S4, V11.S4, V8.S4
	ADD  R16<<2, R13, R17
	VLD1 (R17), [V10.S4]
	VFMLA V6.S4, V10.S4, V8.S4
	ADD  R16<<2, R14, R17
	VLD1 (R17), [V11.S4]
	VFMLA V7.S4, V11.S4, V8.S4
	VST1 [V8.S4], (R19)
	ADD  $4, R16
	B    vec8

tail8:
	CMP  R5, R16
	BGE  next8
	ADD  R16<<2, R0, R19
	FMOVS (R19), F8
	ADD  R16<<2, R7, R17
	FMOVS (R17), F10
	FMADDS F0, F8, F10, F8
	ADD  R16<<2, R8, R17
	FMOVS (R17), F11
	FMADDS F1, F8, F11, F8
	ADD  R16<<2, R9, R17
	FMOVS (R17), F10
	FMADDS F2, F8, F10, F8
	ADD  R16<<2, R10, R17
	FMOVS (R17), F11
	FMADDS F3, F8, F11, F8
	ADD  R16<<2, R11, R17
	FMOVS (R17), F10
	FMADDS F4, F8, F10, F8
	ADD  R16<<2, R12, R17
	FMOVS (R17), F11
	FMADDS F5, F8, F11, F8
	ADD  R16<<2, R13, R17
	FMOVS (R17), F10
	FMADDS F6, F8, F10, F8
	ADD  R16<<2, R14, R17
	FMOVS (R17), F11
	FMADDS F7, F8, F11, F8
	FMOVS F8, (R19)
	ADD  $1, R16
	B    tail8

next8:
	ADD  R1, R0
	ADD  R3, R7
	ADD  R3, R8
	ADD  R3, R9
	ADD  R3, R10
	ADD  R3, R11
	ADD  R3, R12
	ADD  R3, R13
	ADD  R3, R14
	SUB  $1, R6
	B    rows8

done8:
	RET
