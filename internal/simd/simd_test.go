package simd

import (
	"math"
	"math/rand"
	"testing"
)

// tileCase exercises ragged and aligned geometries: cols spanning sub-lane,
// exact-lane, and lane+tail widths for both 4- and 8-wide vector units.
var tileCases = []struct{ cols, rows, dstStride, srcStride int }{
	{1, 1, 1, 1},
	{3, 2, 5, 7},
	{4, 3, 4, 9},
	{7, 4, 8, 11},
	{8, 2, 8, 8},
	{9, 3, 16, 13},
	{16, 5, 17, 19},
	{23, 7, 31, 29},
	{56, 4, 56, 58},
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i] - b[i])); d > m {
			m = d
		}
	}
	return m
}

func TestTile4AsmMatchesGeneric(t *testing.T) {
	if bestSet.Tile4 == nil {
		t.Skip("no asm kernels in this build")
	}
	rng := rand.New(rand.NewSource(41))
	for _, tc := range tileCases {
		dstLen := (tc.rows-1)*tc.dstStride + tc.cols
		srcLen := (tc.rows-1)*tc.srcStride + tc.cols
		want := randSlice(rng, dstLen)
		got := append([]float32(nil), want...)
		var srcs [4][]float32
		var ptrs [4]*float32
		for i := range srcs {
			srcs[i] = randSlice(rng, srcLen)
			ptrs[i] = &srcs[i][0]
		}
		w := [4]float32{rng.Float32(), -rng.Float32(), rng.Float32(), rng.Float32()}
		genericSet.Tile4(&want[0], tc.dstStride, &ptrs, tc.srcStride, &w, tc.cols, tc.rows)
		bestSet.Tile4(&got[0], tc.dstStride, &ptrs, tc.srcStride, &w, tc.cols, tc.rows)
		if d := maxAbsDiff(want, got); d > 1e-6 {
			t.Fatalf("tile4 %+v: asm vs generic max diff %g", tc, d)
		}
	}
}

func TestTile8AsmMatchesGeneric(t *testing.T) {
	if bestSet.Tile8 == nil {
		t.Skip("no asm kernels in this build")
	}
	rng := rand.New(rand.NewSource(43))
	for _, tc := range tileCases {
		dstLen := (tc.rows-1)*tc.dstStride + tc.cols
		srcLen := (tc.rows-1)*tc.srcStride + tc.cols
		want := randSlice(rng, dstLen)
		got := append([]float32(nil), want...)
		var srcs [8][]float32
		var ptrs [8]*float32
		for i := range srcs {
			srcs[i] = randSlice(rng, srcLen)
			ptrs[i] = &srcs[i][0]
		}
		var w [8]float32
		for i := range w {
			w[i] = rng.Float32()*2 - 1
		}
		genericSet.Tile8(&want[0], tc.dstStride, &ptrs, tc.srcStride, &w, tc.cols, tc.rows)
		bestSet.Tile8(&got[0], tc.dstStride, &ptrs, tc.srcStride, &w, tc.cols, tc.rows)
		if d := maxAbsDiff(want, got); d > 1e-6 {
			t.Fatalf("tile8 %+v: asm vs generic max diff %g", tc, d)
		}
	}
}

func TestTile8Q8AsmMatchesGeneric(t *testing.T) {
	if bestSet.Tile8Q8 == nil {
		t.Skip("no asm kernels in this build")
	}
	rng := rand.New(rand.NewSource(47))
	for _, tc := range tileCases {
		dstLen := (tc.rows-1)*tc.dstStride + tc.cols
		srcLen := (tc.rows-1)*tc.srcStride + tc.cols
		want := randSlice(rng, dstLen)
		got := append([]float32(nil), want...)
		var srcs [8][]float32
		var ptrs [8]*float32
		for i := range srcs {
			srcs[i] = randSlice(rng, srcLen)
			ptrs[i] = &srcs[i][0]
		}
		var q [8]int8
		for i := range q {
			q[i] = int8(rng.Intn(255) - 127)
		}
		scale := rng.Float32() * 0.05
		genericSet.Tile8Q8(&want[0], tc.dstStride, &ptrs, tc.srcStride, &q, scale, tc.cols, tc.rows)
		bestSet.Tile8Q8(&got[0], tc.dstStride, &ptrs, tc.srcStride, &q, scale, tc.cols, tc.rows)
		// Q8 weights reach ±(127·scale), so reassociation between the two
		// FMA chains shows up above the f32 ulp of the plain-float cases.
		if d := maxAbsDiff(want, got); d > 1e-4 {
			t.Fatalf("tile8q8 %+v: asm vs generic max diff %g", tc, d)
		}
	}
}

func TestForceGeneric(t *testing.T) {
	defer ForceGeneric(false)
	ForceGeneric(true)
	if Active().Name != "generic" {
		t.Fatalf("ForceGeneric(true): Active().Name = %q, want generic", Active().Name)
	}
	ForceGeneric(false)
	if Active().Name != bestSet.Name && bestSet.Tile4 != nil {
		t.Fatalf("ForceGeneric(false): Active().Name = %q, want %q", Active().Name, bestSet.Name)
	}
}

func TestGenericAlwaysComplete(t *testing.T) {
	g := Generic()
	if g.Tile4 == nil || g.Tile8 == nil || g.Tile8Q8 == nil || g.Name != "generic" || g.Lanes != 1 {
		t.Fatalf("generic kernel set incomplete: %+v", g)
	}
}
