//go:build arm64 && !noasm

package simd

import "patdnn/internal/cpu"

// NEON tile kernels (fma_arm64.s). The int8 widening for the PackedQ8
// stream happens in the Go wrapper on arm64 (8 scalar converts per tile
// call, amortized over the whole tile sweep); only amd64 widens in-register.

//go:noescape
func fmaTile4NEON(dst *float32, dstStride int, src *[4]*float32, srcStride int, w *[4]float32, cols, rows int)

//go:noescape
func fmaTile8NEON(dst *float32, dstStride int, src *[8]*float32, srcStride int, w *[8]float32, cols, rows int)

func fmaTile8Q8NEON(dst *float32, dstStride int, src *[8]*float32, srcStride int, q *[8]int8, scale float32, cols, rows int) {
	var w [8]float32
	for i, lv := range q {
		w[i] = scale * float32(lv)
	}
	fmaTile8NEON(dst, dstStride, src, srcStride, &w, cols, rows)
}

func init() {
	if cpu.HasNEON {
		bestSet = Kernels{
			Name: "neon", Lanes: 4,
			Tile4: fmaTile4NEON, Tile8: fmaTile8NEON, Tile8Q8: fmaTile8Q8NEON,
		}
	}
}
