//go:build amd64 && !noasm

package simd

import "patdnn/internal/cpu"

// AVX2+FMA tile kernels (fma_amd64.s). The wrappers are direct asm
// declarations; //go:noescape keeps the caller's stack-allocated pointer and
// weight arrays from escaping, so a microkernel call allocates nothing.

//go:noescape
func fmaTile4AVX2(dst *float32, dstStride int, src *[4]*float32, srcStride int, w *[4]float32, cols, rows int)

//go:noescape
func fmaTile8AVX2(dst *float32, dstStride int, src *[8]*float32, srcStride int, w *[8]float32, cols, rows int)

//go:noescape
func fmaTile8Q8AVX2(dst *float32, dstStride int, src *[8]*float32, srcStride int, q *[8]int8, scale float32, cols, rows int)

func init() {
	if cpu.HasAVX2FMA {
		bestSet = Kernels{
			Name: "avx2", Lanes: 8,
			Tile4: fmaTile4AVX2, Tile8: fmaTile8AVX2, Tile8Q8: fmaTile8Q8AVX2,
		}
	}
}
