package codegen

// Connectivity-pruned 1×1 convolution plans. ResNet-50's bottlenecks and
// MobileNet-V2's expand/project layers are 1×1 convs; the paper applies
// uniform connectivity (kernel) pruning to them — a 1×1 kernel is a single
// weight, so connectivity pruning keeps the largest-magnitude weights per
// layer and the generated code is a branchless sparse channel-combination.

import (
	"fmt"
	"math/rand"
	"sort"

	"patdnn/internal/model"
	"patdnn/internal/tensor"
)

// Plan1x1 is a compiled connectivity-pruned 1×1 conv layer.
type Plan1x1 struct {
	Name       string
	OutC, InC  int
	Stride     int
	InH, InW   int
	OutH, OutW int
	// keepCh[f] lists the retained input channels of filter f, ascending;
	// keepW[f] holds the matching weights.
	keepCh [][]int32
	keepW  [][]float32
}

// Compile1x1 prunes a dense [OutC, InC, 1, 1] weight tensor to the keep
// kernels with the largest |w| (global top-k, the layerwise uniform rate)
// and builds the execution plan.
func Compile1x1(name string, w *tensor.Tensor, keep int, geom struct{ Stride, InH, InW, OutH, OutW int }) (*Plan1x1, error) {
	if w.Rank() != 4 || w.Dim(2) != 1 || w.Dim(3) != 1 {
		return nil, fmt.Errorf("codegen: Compile1x1 requires [Co,Ci,1,1] weights")
	}
	outC, inC := w.Dim(0), w.Dim(1)
	type kw struct {
		idx int
		mag float32
	}
	all := make([]kw, 0, outC*inC)
	for i, v := range w.Data {
		m := v
		if m < 0 {
			m = -m
		}
		all = append(all, kw{i, m})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].mag != all[b].mag {
			return all[a].mag > all[b].mag
		}
		return all[a].idx < all[b].idx
	})
	if keep > len(all) {
		keep = len(all)
	}
	kept := make([]bool, outC*inC)
	for _, k := range all[:keep] {
		kept[k.idx] = true
	}
	p := &Plan1x1{
		Name: name, OutC: outC, InC: inC, Stride: geom.Stride,
		InH: geom.InH, InW: geom.InW, OutH: geom.OutH, OutW: geom.OutW,
		keepCh: make([][]int32, outC), keepW: make([][]float32, outC),
	}
	for f := 0; f < outC; f++ {
		for ch := 0; ch < inC; ch++ {
			if kept[f*inC+ch] {
				p.keepCh[f] = append(p.keepCh[f], int32(ch))
				p.keepW[f] = append(p.keepW[f], w.Data[f*inC+ch])
			}
		}
	}
	return p, nil
}

// Compile1x1FromLayer generates deterministic weights for a model layer and
// compiles it at the given connectivity rate.
func Compile1x1FromLayer(l *model.Layer, connRate float64, seed int64) (*Plan1x1, error) {
	if l.KH != 1 || l.KW != 1 {
		return nil, fmt.Errorf("codegen: layer %s is not 1x1", l.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	w := l.AllocWeights(rng)
	keep := l.OutC * l.InC
	if connRate > 1 {
		keep = int(float64(keep)/connRate + 0.5)
		if keep < 1 {
			keep = 1
		}
	}
	return Compile1x1(l.Name, w, keep, struct{ Stride, InH, InW, OutH, OutW int }{
		l.Stride, l.InH, l.InW, l.OutH, l.OutW,
	})
}

// NNZ returns the retained weight count.
func (p *Plan1x1) NNZ() int {
	n := 0
	for _, ks := range p.keepCh {
		n += len(ks)
	}
	return n
}

// Execute runs the pruned 1×1 conv on [InC, InH, InW] input.
func (p *Plan1x1) Execute(input *tensor.Tensor, bias []float32) *tensor.Tensor {
	out := tensor.New(p.OutC, p.OutH, p.OutW)
	p.ExecuteRangeFused(input, out, 0, p.OutC, bias, nil, false)
	return out
}

// ExecuteRangeFused computes output channels [from, to) with the fused
// epilogue the graph executor uses: each output plane is initialized by the
// kernel itself — to bias, or to the matching shortcut plane plus bias when
// shortcut is non-nil (fused residual add) — the sparse channel combination
// accumulates on top, and relu optionally clamps before write-back. out may
// hold garbage (pooled arena buffers need no zeroing pass); 1×1 convs take
// the raw, unpadded input.
func (p *Plan1x1) ExecuteRangeFused(input, out *tensor.Tensor, from, to int, bias []float32, shortcut *tensor.Tensor, relu bool) {
	n := p.OutH * p.OutW
	for f := from; f < to; f++ {
		orow := out.Data[f*n : (f+1)*n]
		var b float32
		if bias != nil {
			b = bias[f]
		}
		if shortcut != nil {
			sc := shortcut.Data[f*n : (f+1)*n]
			for i, v := range sc {
				orow[i] = v + b
			}
		} else {
			for i := range orow {
				orow[i] = b
			}
		}
		for ki, ch := range p.keepCh[f] {
			wv := p.keepW[f][ki]
			iplane := input.Data[int(ch)*p.InH*p.InW:]
			if p.Stride == 1 {
				for i := 0; i < n; i++ {
					orow[i] += wv * iplane[i]
				}
			} else {
				i := 0
				for oh := 0; oh < p.OutH; oh++ {
					base := oh * p.Stride * p.InW
					for ow := 0; ow < p.OutW; ow++ {
						orow[i] += wv * iplane[base+ow*p.Stride]
						i++
					}
				}
			}
		}
		if relu {
			for i, v := range orow {
				if v < 0 {
					orow[i] = 0
				}
			}
		}
	}
}

// MemoryBytes reports the resident footprint of the compiled plan: 4-byte
// weights plus 4-byte channel indices per retained kernel.
func (p *Plan1x1) MemoryBytes() int64 {
	nnz := int64(p.NNZ())
	return 8 * nnz
}

// Compile1x1Pruned builds the execution plan from an already-pruned dense
// [Co,Ci,1,1] weight tensor, keeping exactly the nonzero weights (the form
// the graph compiler uses: pruning happened when the parameters were
// generated or loaded, so executor and reference share one weight set).
func Compile1x1Pruned(name string, w *tensor.Tensor, geom struct{ Stride, InH, InW, OutH, OutW int }) (*Plan1x1, error) {
	if w.Rank() != 4 || w.Dim(2) != 1 || w.Dim(3) != 1 {
		return nil, fmt.Errorf("codegen: Compile1x1Pruned requires [Co,Ci,1,1] weights")
	}
	outC, inC := w.Dim(0), w.Dim(1)
	p := &Plan1x1{
		Name: name, OutC: outC, InC: inC, Stride: geom.Stride,
		InH: geom.InH, InW: geom.InW, OutH: geom.OutH, OutW: geom.OutW,
		keepCh: make([][]int32, outC), keepW: make([][]float32, outC),
	}
	for f := 0; f < outC; f++ {
		for ch := 0; ch < inC; ch++ {
			if v := w.Data[f*inC+ch]; v != 0 {
				p.keepCh[f] = append(p.keepCh[f], int32(ch))
				p.keepW[f] = append(p.keepW[f], v)
			}
		}
	}
	return p, nil
}

// Stats reports the instruction statistics for the device model: branchless,
// perfectly balanced (each filter's kernel list length varies slightly, but
// there is no pattern dispatch), with a 2-byte channel index per kernel.
func (p *Plan1x1) Stats() InstrStats {
	outPix := int64(p.OutH) * int64(p.OutW)
	nnz := int64(p.NNZ())
	// Load imbalance across 8 round-robin workers.
	loads := make([]int64, 8)
	for f, ks := range p.keepCh {
		loads[f%8] += int64(len(ks))
	}
	minL, maxL := loads[0], loads[0]
	for _, l := range loads[1:] {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	imb := 0.0
	if maxL > 0 {
		imb = float64(maxL-minL) / float64(maxL)
	}
	return InstrStats{
		MACs:        nnz * outPix,
		RegLoads:    nnz * outPix, // one input load per weight per pixel
		Branches:    0,
		WeightBytes: 4*nnz + 2*nnz + 4*int64(p.OutC+1),
		ActBytes: 4 * (int64(p.InC)*int64(p.InH)*int64(p.InW) +
			int64(p.OutC)*outPix),
		Imbalance: imb, Groups: 1, VecEff: 1.0, CacheEff: 0.9,
	}
}
