package codegen

// Execution kernels for the four optimization levels. All operate on a
// pre-padded input [InC, InH+2p, InW+2p] and accumulate into the output
// [OutC, OutH, OutW]. Stride 1 and stride 2 are supported (the networks in
// the evaluation use only these).

import (
	"patdnn/internal/pruned"
	"patdnn/internal/tensor"
)

func (p *Plan) execNoOpt(padded, out *tensor.Tensor)   { p.rangeNoOpt(padded, out, 0, p.Conv.OutC) }
func (p *Plan) execReorder(padded, out *tensor.Tensor) { p.rangeReorder(padded, out, 0, p.Conv.OutC) }
func (p *Plan) execLRE(padded, out *tensor.Tensor)     { p.rangeLRE(padded, out, 0, p.Conv.OutC) }
func (p *Plan) execTuned(padded, out *tensor.Tensor)   { p.rangeTuned(padded, out, 0, p.Conv.OutC) }

// prologue hoists the lookups every range kernel needs — the conv descriptor
// and the padded input's spatial dims — so the kernels share one definition
// instead of each re-deriving them.
func (p *Plan) prologue(padded *tensor.Tensor) (c *pruned.Conv, ph, pw int) {
	return p.Conv, padded.Dim(1), padded.Dim(2)
}

// rangeNoOpt mirrors the paper's "+No-opt" skeleton: for every output
// position it walks all input channels and switches on the kernel's pattern
// style — a per-kernel branch inside the hot loop, full index arithmetic per
// weight.
func (p *Plan) rangeNoOpt(padded, out *tensor.Tensor, from, to int) {
	c, ph, pw := p.prologue(padded)
	for pos := from; pos < to; pos++ {
		f := p.FKR.FilterPerm[pos] // identity for NoOpt
		oplane := out.Data[f*c.OutH*c.OutW:]
		for oh := 0; oh < c.OutH; oh++ {
			for ow := 0; ow < c.OutW; ow++ {
				acc := oplane[oh*c.OutW+ow]
				for ic := 0; ic < c.InC; ic++ {
					id := c.ID(f, ic)
					switch id {
					case 0:
						// skip the empty kernel
					default:
						wbase := (f*c.InC + ic) * c.KH * c.KW
						inCh := c.InputChannel(f, ic)
						for _, d := range p.offsets[id-1] {
							ih := oh*c.Stride + d[0]
							iw := ow*c.Stride + d[1]
							acc += c.Weights.Data[wbase+d[0]*c.KW+d[1]] *
								padded.Data[(inCh*ph+ih)*pw+iw]
						}
					}
				}
				oplane[oh*c.OutW+ow] = acc
			}
		}
	}
}

// rangeReorder mirrors "+Reorder": filters in FKR order, kernels grouped into
// branchless pattern runs; the pattern dispatch is hoisted out of the pixel
// loops entirely.
func (p *Plan) rangeReorder(padded, out *tensor.Tensor, from, to int) {
	c, ph, pw := p.prologue(padded)
	for pos := from; pos < to; pos++ {
		f := p.FKR.FilterPerm[pos]
		oplane := out.Data[f*c.OutH*c.OutW:]
		for _, run := range p.FKR.Runs(c, pos) {
			offs := p.offsets[run.PatternID-1]
			for _, ic := range run.Channels {
				wbase := (f*c.InC + ic) * c.KH * c.KW
				w0 := c.Weights.Data[wbase+offs[0][0]*c.KW+offs[0][1]]
				w1 := c.Weights.Data[wbase+offs[1][0]*c.KW+offs[1][1]]
				w2 := c.Weights.Data[wbase+offs[2][0]*c.KW+offs[2][1]]
				w3 := c.Weights.Data[wbase+offs[3][0]*c.KW+offs[3][1]]
				iplane := padded.Data[c.InputChannel(f, ic)*ph*pw:]
				for oh := 0; oh < c.OutH; oh++ {
					ihBase := oh * c.Stride
					orow := oplane[oh*c.OutW : oh*c.OutW+c.OutW]
					for ow := 0; ow < c.OutW; ow++ {
						iw := ow * c.Stride
						orow[ow] += w0*iplane[(ihBase+offs[0][0])*pw+iw+offs[0][1]] +
							w1*iplane[(ihBase+offs[1][0])*pw+iw+offs[1][1]] +
							w2*iplane[(ihBase+offs[2][0])*pw+iw+offs[2][1]] +
							w3*iplane[(ihBase+offs[3][0])*pw+iw+offs[3][1]]
					}
				}
			}
		}
	}
}

// rangeLRE adds register-level load redundancy elimination: per output row,
// the (at most three) input rows a pattern touches are sliced once and
// reused across the row's outputs and across all weights that read them —
// the kernel-level reuse of Figure 11 (left).
func (p *Plan) rangeLRE(padded, out *tensor.Tensor, from, to int) {
	c, ph, pw := p.prologue(padded)
	for pos := from; pos < to; pos++ {
		f := p.FKR.FilterPerm[pos]
		oplane := out.Data[f*c.OutH*c.OutW:]
		for _, run := range p.FKR.Runs(c, pos) {
			offs := p.offsets[run.PatternID-1]
			for _, ic := range run.Channels {
				wbase := (f*c.InC + ic) * c.KH * c.KW
				var wv [4]float32
				for i, d := range offs {
					wv[i] = c.Weights.Data[wbase+d[0]*c.KW+d[1]]
				}
				iplane := padded.Data[c.InputChannel(f, ic)*ph*pw:]
				for oh := 0; oh < c.OutH; oh++ {
					ihBase := oh * c.Stride
					// Register-held row slices: one load per touched row.
					var rows [4][]float32
					for i, d := range offs {
						r := iplane[(ihBase+d[0])*pw+d[1]:]
						rows[i] = r
					}
					orow := oplane[oh*c.OutW : oh*c.OutW+c.OutW]
					if c.Stride == 1 {
						for ow := range orow {
							orow[ow] += wv[0]*rows[0][ow] + wv[1]*rows[1][ow] +
								wv[2]*rows[2][ow] + wv[3]*rows[3][ow]
						}
					} else {
						for ow := range orow {
							iw := ow * c.Stride
							orow[ow] += wv[0]*rows[0][iw] + wv[1]*rows[1][iw] +
								wv[2]*rows[2][iw] + wv[3]*rows[3][iw]
						}
					}
				}
			}
		}
	}
}

// rangeTuned adds the auto-tuned blocking: output rows are processed in tile
// blocks and kernels with identical (channel, pattern) within an unrolled
// filter block share their input row slices — the filter-level reuse of
// Figure 11 (right). The loop order follows Tune.Permute (cohwci_b places the
// channel loop innermost over a blocked spatial tile).
func (p *Plan) rangeTuned(padded, out *tensor.Tensor, from, to int) {
	c, ph, pw := p.prologue(padded)
	tileOH := p.Tune.Tile[1]
	if tileOH < 1 {
		tileOH = c.OutH
	}
	uoc := p.Tune.Unroll[0]
	if uoc < 1 {
		uoc = 1
	}
	for blockStart := from; blockStart < to; blockStart += uoc {
		blockEnd := blockStart + uoc
		if blockEnd > to {
			blockEnd = to
		}
		// Gather the block's kernels grouped by (channel, pattern) so input
		// slices are shared across the unrolled filters.
		type target struct {
			orig int // original filter index
			wv   [4]float32
		}
		type group struct {
			ic      int
			offs    [][2]int
			targets []target
		}
		var groups []group
		idx := map[[2]int]int{}
		for pos := blockStart; pos < blockEnd; pos++ {
			f := p.FKR.FilterPerm[pos]
			for _, run := range p.FKR.Runs(c, pos) {
				for _, ic := range run.Channels {
					// Sharing is keyed by the *input feature-map channel*
					// (equal to the filter index for depthwise layers, so
					// depthwise kernels never alias each other's inputs).
					inCh := c.InputChannel(f, ic)
					key := [2]int{inCh, run.PatternID}
					gi, ok := idx[key]
					if !ok {
						gi = len(groups)
						idx[key] = gi
						groups = append(groups, group{ic: inCh, offs: p.offsets[run.PatternID-1]})
					}
					wbase := (f*c.InC + ic) * c.KH * c.KW
					var wv [4]float32
					for i, d := range groups[gi].offs {
						wv[i] = c.Weights.Data[wbase+d[0]*c.KW+d[1]]
					}
					groups[gi].targets = append(groups[gi].targets, target{orig: f, wv: wv})
				}
			}
		}
		for ohBase := 0; ohBase < c.OutH; ohBase += tileOH {
			ohEnd := ohBase + tileOH
			if ohEnd > c.OutH {
				ohEnd = c.OutH
			}
			for _, g := range groups {
				iplane := padded.Data[g.ic*ph*pw:]
				for oh := ohBase; oh < ohEnd; oh++ {
					ihBase := oh * c.Stride
					var rows [4][]float32
					for i, d := range g.offs {
						rows[i] = iplane[(ihBase+d[0])*pw+d[1]:]
					}
					for _, tg := range g.targets {
						orow := out.Data[tg.orig*c.OutH*c.OutW+oh*c.OutW:][:c.OutW]
						if c.Stride == 1 {
							for ow := range orow {
								orow[ow] += tg.wv[0]*rows[0][ow] + tg.wv[1]*rows[1][ow] +
									tg.wv[2]*rows[2][ow] + tg.wv[3]*rows[3][ow]
							}
						} else {
							for ow := range orow {
								iw := ow * c.Stride
								orow[ow] += tg.wv[0]*rows[0][iw] + tg.wv[1]*rows[1][iw] +
									tg.wv[2]*rows[2][iw] + tg.wv[3]*rows[3][iw]
							}
						}
					}
				}
			}
		}
	}
}
