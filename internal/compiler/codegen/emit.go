package codegen

import (
	"fmt"
	"strings"
)

// EmitSource renders a C-like skeleton of the generated code for inspection,
// mirroring the code-shape comparison in the paper's Figure 7. It is
// documentation output — the executable path is the compiled Go plan — but
// it shows exactly which control structure each optimization level produces.
func (p *Plan) EmitSource() string {
	var b strings.Builder
	c := p.Conv
	fmt.Fprintf(&b, "// layer %s  [%d,%d,%d,%d]  level %s\n",
		c.Name, c.OutC, c.InC, c.KH, c.KW, p.Level)
	fmt.Fprintf(&b, "// patterns present: %d, non-empty kernels: %d/%d\n",
		len(p.FKW.Patterns), c.NonEmptyKernels(), c.OutC*c.InC)
	switch p.Level {
	case NoOpt:
		b.WriteString(`for (oc = 0; oc < out_channels; oc++)
  for (oh = 0; oh < out_h; oh++)
    for (ow = 0; ow < out_w; ow++)
      for (ic = 0; ic < in_channels; ic++)
        switch (style[oc][ic]) {       // per-kernel branch in the hot loop
          case 0: break;               // skip the empty kernel
`)
		for i := range p.FKW.Patterns {
			fmt.Fprintf(&b, "          case %d: /* compute pattern %d taps */ break;\n", i+1, i+1)
		}
		b.WriteString("        }\n")
	case Reorder:
		b.WriteString(`for (g = 0; g < n_groups; g++)              // FKR groups, equal length
  for (oc = group[g].start; oc < group[g].end; oc++)
    for (run = 0; run < runs[oc]; run++)     // kernels sorted by pattern id
      // branchless: pattern of the whole run known at compile time
      for (oh = 0; oh < out_h; oh++)
        for (ow = 0; ow < out_w; ow++)
          out[reorder[oc]][oh][ow] += taps(run.pattern, in, oh, ow);
`)
	case ReorderLRE:
		b.WriteString(`for (oc ...; run ...)                         // as +Reorder
  for (oh = 0; oh < out_h; oh++) {
    r0 = &in[ch][oh+dr0]; r1 = &in[ch][oh+dr1]; // row slices loaded ONCE
    r2 = &in[ch][oh+dr2]; r3 = &in[ch][oh+dr3]; // (kernel-level LRE)
    for (ow = 0; ow < out_w; ow++)
      out[f][oh][ow] += w0*r0[ow+dc0] + w1*r1[ow+dc1]
                      + w2*r2[ow+dc2] + w3*r3[ow+dc3];
  }
`)
	case Tuned:
		fmt.Fprintf(&b, `for (ocb = 0; ocb < out_channels; ocb += %d)   // unroll_oc
  for (ohb = 0; ohb < out_h; ohb += %d)        // tile_oh (%s)
    for ((ch, pattern) groups in block)        // filter-level LRE:
      // identical (channel,pattern) kernels of the %d unrolled filters
      // share one set of input row loads
      for (oh in tile) { load rows once; accumulate into all filters; }
`, p.Tune.Unroll[0], p.Tune.Tile[1], p.Tune.Permute, p.Tune.Unroll[0])
	case Packed:
		fmt.Fprintf(&b, `w = weights;                                  // FKW-direct: stream the packed array
for (pos = 0; pos < out_channels; pos++) {    // reordered filter order
  f = reorder[pos];                           // FKW reorder array
  plane[f][:] = bias[f];                      // fused epilogue init
  for (ohb = 0; ohb < out_h; ohb += %d)       // spatial tile (tuner-sized)
    for (run in stride[pos])                  // pattern runs, shape known
      for (k = run.start; k < run.end; k++) { // ch = index[k]
        w0 = *w++; w1 = *w++; w2 = *w++; w3 = *w++;  // linear weight sweep,
        for (oh in tile)                      // zero per-weight index math
          out[f][oh][:] += w0*r0 + w1*r1 + w2*r2 + w3*r3;
      }
  relu(plane[f]);                             // fused epilogue
}
`, p.Tune.Tile[1])
	case PackedQ8:
		fmt.Fprintf(&b, `q = qweights;                                 // int8 FKW stream (4x fewer bytes)
for (pos = 0; pos < out_channels; pos++) {    // reordered filter order
  f = reorder[pos];                           // FKW reorder array
  plane[f][:] = 0;                            // raw-level accumulator
  for (ohb = 0; ohb < out_h; ohb += %d)       // spatial tile (tuner-sized)
    for (run in stride[pos])                  // pattern runs, shape known
      for (k = run.start; k < run.end; k++) { // ch = index[k]
        w0 = (f32)*q++; w1 = (f32)*q++;       // int8 levels, no dequant here
        w2 = (f32)*q++; w3 = (f32)*q++;
        for (oh in tile)
          acc[f][oh][:] += w0*r0 + w1*r1 + w2*r2 + w3*r3;
      }
  plane[f][:] = acc[f][:]*scale[f] + bias[f]; // dequant-fused epilogue:
  relu(plane[f]);                             // one scale multiply per filter
}
`, p.Tune.Tile[1])
	}
	return b.String()
}
