package codegen

import (
	"strings"
	"testing"

	"patdnn/internal/compiler/lr"
)

func TestEmitOpenCLNoOptHasDivergentSwitch(t *testing.T) {
	c := smallPruned(t, 20, 1)
	p, err := Compile(c, NoOpt, lr.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	src := p.EmitOpenCL()
	for _, want := range []string{"cl_khr_fp16", "switch (style", "divergent"} {
		if !strings.Contains(src, want) {
			t.Fatalf("NoOpt OpenCL missing %q:\n%s", want, src)
		}
	}
}

func TestEmitOpenCLOptimizedIsBranchless(t *testing.T) {
	c := smallPruned(t, 21, 1)
	p, err := Compile(c, Tuned, lr.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	src := p.EmitOpenCL()
	if strings.Contains(src, "switch") {
		t.Fatal("optimized OpenCL must not contain a switch")
	}
	for _, want := range []string{"get_group_id", "fkw_index", "fkw_stride",
		"zero divergence", "reorder[pos]", "LRE:"} {
		if !strings.Contains(src, want) {
			t.Fatalf("optimized OpenCL missing %q", want)
		}
	}
	// One branchless run per pattern slot present in the layer.
	if got := strings.Count(src, "pattern slot"); got != len(p.FKW.Patterns) {
		t.Fatalf("emitted %d pattern runs, want %d", got, len(p.FKW.Patterns))
	}
	// Every FKR group is mapped to a work-group comment.
	if got := strings.Count(src, "// group "); got != len(p.FKR.Groups) {
		t.Fatalf("emitted %d group mappings, want %d", got, len(p.FKR.Groups))
	}
}
