package codegen

// The PackedQ8 level's execution kernels: the register-tiled FKW-direct walk
// of exec_packed.go over an int8 weight stream.
//
// Quantization is symmetric per filter (internal/quant): every weight of
// reordered filter position pos is scale[orig] × level. The driver shares the
// blocking structure of the float32 packed level — filter group × row tile ×
// column chunk × kernel pairs — but each Tile8 call takes the widening
// Tile8Q8 form: the 8 int8 levels of a kernel pair are sign-extended,
// converted, and scaled in-register once per tile sweep (on amd64 a single
// VPMOVSXBD+VCVTDQ2PS+VMULPS prologue), so the dequantization cost is
// amortized over the whole row tile instead of paid per weight load. A
// trailing odd kernel widens its 4 levels through simd.WidenQ8 and takes the
// plain Tile4 form.
//
// Either way the weight side stays a pure stream — now a quarter the bytes of
// the FP32 packed level, which is the point: less weight traffic contending
// with the activation tile for L1, and ~4× more model versions resident under
// the registry's memory budget.

import (
	"patdnn/internal/quant"
	"patdnn/internal/simd"
	"patdnn/internal/sparse"
	"patdnn/internal/tensor"
)

// packedQ8Run is one pattern run of a filter in the quantized packed view:
// taps decoded at compile time, ch aliasing FKW.Index, and q the int8 levels
// (4 per kernel, in tap order) aliasing the FKW8 stream.
type packedQ8Run struct {
	taps [4][2]int
	ch   []uint16
	q    []int8
}

// packedQ8Filter is one reordered filter position's run list, its original
// output channel, and the filter's dequantization scale.
type packedQ8Filter struct {
	orig  int
	scale float32
	runs  []packedQ8Run
}

// buildPackedQ8 quantizes the FKW weight stream at 8 bits and precompiles the
// per-filter run views over it. The float32 weight streams (Conv.Weights and
// FKW.Weights) are then dropped from the plan via struct copies — never by
// mutating the caller's objects, which other plans may share — so a resident
// PackedQ8 plan really is ~4× smaller.
func (p *Plan) buildPackedQ8() error {
	c := p.Conv
	q, err := quant.Quantize(p.FKW, 8)
	if err != nil {
		return err
	}
	p.kern = simd.Active()
	p.q8Bytes = q.EncodedBytes()
	p.packedQ8 = make([]packedQ8Filter, c.OutC)
	wOff := 0
	for pos := 0; pos < c.OutC; pos++ {
		var runs []sparse.Run
		runs, _ = p.FKW.Runs(nil, pos, wOff)
		orig := int(p.FKW.Reorder[pos])
		pf := packedQ8Filter{orig: orig, scale: q.Scales[orig]}
		for _, r := range runs {
			n := 4 * len(r.Channels)
			pr := packedQ8Run{ch: r.Channels, q: q.Weights[wOff : wOff+n]}
			taps, terr := sparse.TapOffsets(r.Pattern, c.KH, c.KW)
			if terr != nil {
				return terr
			}
			copy(pr.taps[:], taps)
			pf.runs = append(pf.runs, pr)
			wOff += n
		}
		p.packedQ8[pos] = pf
	}
	conv := *c
	conv.Weights = nil
	p.Conv = &conv
	fkw := *p.FKW
	fkw.Weights = nil
	p.FKW = &fkw
	return nil
}

// rangePackedQ8 is the plain ExecuteRange form: accumulate into a
// caller-initialized output, no epilogue. The scale folds into the widened
// tap registers, so accumulating on top of pre-initialized content (bias, a
// residual shortcut) costs nothing extra.
func (p *Plan) rangePackedQ8(padded, out *tensor.Tensor, from, to int) {
	p.rangePackedQ8Tiled(padded, out, from, to, nil, false, false)
}

// rangePackedQ8Fused executes reordered filter positions [from, to) with the
// fused epilogue: the driver initializes each plane to bias (or zero) itself
// and clamps negatives after the plane's last accumulation.
func (p *Plan) rangePackedQ8Fused(padded, out *tensor.Tensor, from, to int, bias []float32, relu bool) {
	p.rangePackedQ8Tiled(padded, out, from, to, bias, true, relu)
}

// rangePackedQ8Tiled is the shared quantized driver, mirroring
// rangePackedFused's blocking with the widening-multiply microkernels.
func (p *Plan) rangePackedQ8Tiled(padded, out *tensor.Tensor, from, to int, bias []float32, init, relu bool) {
	c, _, pw := p.prologue(padded)
	if c.Stride != 1 {
		p.rangePackedQ8Scalar(padded, out, from, to, bias, init, relu)
		return
	}
	phpw := padded.Dim(1) * pw
	oHW := c.OutH * c.OutW
	tileOH := p.Tune.Tile[1]
	if tileOH < 1 || tileOH > c.OutH {
		tileOH = c.OutH
	}
	fg := p.Tune.Unroll[0]
	if fg < 1 {
		fg = 1
	}
	pbw := p.Tune.Unroll[2]
	if pbw < 1 || pbw > c.OutW {
		pbw = c.OutW
	}
	kern := p.kern
	if kern.Tile8Q8 == nil {
		kern = simd.Generic()
	}
	sc := packedScratchPool.Get().(*packedScratch)
	defer putPackedScratch(sc)
	for gBase := from; gBase < to; gBase += fg {
		gEnd := min(gBase+fg, to)
		if init {
			for pos := gBase; pos < gEnd; pos++ {
				pf := &p.packedQ8[pos]
				v := float32(0)
				if bias != nil {
					v = bias[pf.orig]
				}
				oplane := out.Data[pf.orig*oHW : (pf.orig+1)*oHW]
				for i := range oplane {
					oplane[i] = v
				}
			}
		}
		for ohBase := 0; ohBase < c.OutH; ohBase += tileOH {
			rows := min(tileOH, c.OutH-ohBase)
			for pos := gBase; pos < gEnd; pos++ {
				pf := &p.packedQ8[pos]
				scale := pf.scale
				oplane := out.Data[pf.orig*oHW:]
				for ri := range pf.runs {
					run := &pf.runs[ri]
					nk := len(run.ch)
					o0 := (ohBase+run.taps[0][0])*pw + run.taps[0][1]
					o1 := (ohBase+run.taps[1][0])*pw + run.taps[1][1]
					o2 := (ohBase+run.taps[2][0])*pw + run.taps[2][1]
					o3 := (ohBase+run.taps[3][0])*pw + run.taps[3][1]
					for owBase := 0; owBase < c.OutW; owBase += pbw {
						cols := min(pbw, c.OutW-owBase)
						dst := &oplane[ohBase*c.OutW+owBase]
						ki := 0
						for ; ki+2 <= nk; ki += 2 {
							chA, chB := int(run.ch[ki]), int(run.ch[ki+1])
							if c.Depthwise {
								chA, chB = pf.orig, pf.orig
							}
							ipA := padded.Data[chA*phpw:]
							ipB := padded.Data[chB*phpw:]
							sc.s8 = [8]*float32{
								&ipA[o0+owBase], &ipA[o1+owBase], &ipA[o2+owBase], &ipA[o3+owBase],
								&ipB[o0+owBase], &ipB[o1+owBase], &ipB[o2+owBase], &ipB[o3+owBase],
							}
							kern.Tile8Q8(dst, c.OutW, &sc.s8, pw, (*[8]int8)(run.q[4*ki:]), scale, cols, rows)
						}
						if ki < nk {
							chA := int(run.ch[ki])
							if c.Depthwise {
								chA = pf.orig
							}
							ipA := padded.Data[chA*phpw:]
							sc.s4 = [4]*float32{
								&ipA[o0+owBase], &ipA[o1+owBase], &ipA[o2+owBase], &ipA[o3+owBase],
							}
							simd.WidenQ8(run.q[4*ki:4*ki+4], scale, &sc.w4)
							kern.Tile4(dst, c.OutW, &sc.s4, pw, &sc.w4, cols, rows)
						}
					}
				}
			}
		}
		if relu {
			for pos := gBase; pos < gEnd; pos++ {
				pf := &p.packedQ8[pos]
				oplane := out.Data[pf.orig*oHW : (pf.orig+1)*oHW]
				for i, v := range oplane {
					if v < 0 {
						oplane[i] = 0
					}
				}
			}
		}
	}
}

// rangePackedQ8Scalar is the strided fallback: Stride >= 2 keeps the scalar
// FKW walk, dequantizing the four levels of each kernel into registers once
// per tile.
func (p *Plan) rangePackedQ8Scalar(padded, out *tensor.Tensor, from, to int, bias []float32, init, relu bool) {
	c, _, pw := p.prologue(padded)
	phpw := padded.Dim(1) * pw
	oHW := c.OutH * c.OutW
	tileOH := p.Tune.Tile[1]
	if tileOH < 1 {
		tileOH = c.OutH
	}
	for pos := from; pos < to; pos++ {
		pf := &p.packedQ8[pos]
		scale := pf.scale
		oplane := out.Data[pf.orig*oHW : (pf.orig+1)*oHW]
		if init {
			v := float32(0)
			if bias != nil {
				v = bias[pf.orig]
			}
			for i := range oplane {
				oplane[i] = v
			}
		}
		for ohBase := 0; ohBase < c.OutH; ohBase += tileOH {
			ohEnd := min(ohBase+tileOH, c.OutH)
			for ri := range pf.runs {
				run := &pf.runs[ri]
				t0, t1, t2, t3 := run.taps[0], run.taps[1], run.taps[2], run.taps[3]
				q := run.q
				for ki, ch := range run.ch {
					w0 := scale * float32(q[4*ki])
					w1 := scale * float32(q[4*ki+1])
					w2 := scale * float32(q[4*ki+2])
					w3 := scale * float32(q[4*ki+3])
					inCh := int(ch)
					if c.Depthwise {
						inCh = pf.orig
					}
					iplane := padded.Data[inCh*phpw:]
					for oh := ohBase; oh < ohEnd; oh++ {
						ihBase := oh * c.Stride
						r0 := iplane[(ihBase+t0[0])*pw+t0[1]:]
						r1 := iplane[(ihBase+t1[0])*pw+t1[1]:]
						r2 := iplane[(ihBase+t2[0])*pw+t2[1]:]
						r3 := iplane[(ihBase+t3[0])*pw+t3[1]:]
						orow := oplane[oh*c.OutW : oh*c.OutW+c.OutW]
						if c.Stride == 1 {
							for ow := range orow {
								orow[ow] += w0*r0[ow] + w1*r1[ow] + w2*r2[ow] + w3*r3[ow]
							}
						} else {
							for ow := range orow {
								iw := ow * c.Stride
								orow[ow] += w0*r0[iw] + w1*r1[iw] + w2*r2[iw] + w3*r3[iw]
							}
						}
					}
				}
			}
		}
		if relu {
			for i, v := range oplane {
				if v < 0 {
					oplane[i] = 0
				}
			}
		}
	}
}
