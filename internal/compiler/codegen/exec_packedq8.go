package codegen

// The PackedQ8 level's execution kernels: the FKW-direct walk of exec_packed.go
// over an int8 weight stream.
//
// Quantization is symmetric per filter (internal/quant): every weight of
// reordered filter position pos is scale[orig] × level, so the scale factors
// out of the filter's whole accumulation. The fused kernel exploits that —
// it accumulates raw float32(int8) products into the output plane and applies
// the scale ONCE per filter in the bias+ReLU epilogue (out = acc·scale + bias),
// the dequant-fused epilogue of the quantized serving path. The plain
// accumulate-on-top form (ExecuteRange / the residual epilogue) cannot defer
// the scale past pre-initialized content, so it dequantizes at weight load
// instead: four scale multiplies per kernel per tile, amortized over the whole
// output row.
//
// Either way the weight side stays a pure stream — now a quarter the bytes of
// the FP32 packed level, which is the point: less weight traffic contending
// with the activation tile for L1, and ~4× more model versions resident under
// the registry's memory budget.

import (
	"patdnn/internal/quant"
	"patdnn/internal/sparse"
	"patdnn/internal/tensor"
)

// packedQ8Run is one pattern run of a filter in the quantized packed view:
// taps decoded at compile time, ch aliasing FKW.Index, and q the int8 levels
// (4 per kernel, in tap order) aliasing the FKW8 stream.
type packedQ8Run struct {
	taps [4][2]int
	ch   []uint16
	q    []int8
}

// packedQ8Filter is one reordered filter position's run list, its original
// output channel, and the filter's dequantization scale.
type packedQ8Filter struct {
	orig  int
	scale float32
	runs  []packedQ8Run
}

// buildPackedQ8 quantizes the FKW weight stream at 8 bits and precompiles the
// per-filter run views over it. The float32 weight streams (Conv.Weights and
// FKW.Weights) are then dropped from the plan via struct copies — never by
// mutating the caller's objects, which other plans may share — so a resident
// PackedQ8 plan really is ~4× smaller.
func (p *Plan) buildPackedQ8() error {
	c := p.Conv
	q, err := quant.Quantize(p.FKW, 8)
	if err != nil {
		return err
	}
	p.q8Bytes = q.EncodedBytes()
	p.packedQ8 = make([]packedQ8Filter, c.OutC)
	wOff := 0
	for pos := 0; pos < c.OutC; pos++ {
		var runs []sparse.Run
		runs, _ = p.FKW.Runs(nil, pos, wOff)
		orig := int(p.FKW.Reorder[pos])
		pf := packedQ8Filter{orig: orig, scale: q.Scales[orig]}
		for _, r := range runs {
			n := 4 * len(r.Channels)
			pr := packedQ8Run{ch: r.Channels, q: q.Weights[wOff : wOff+n]}
			for i, tap := range r.Pattern.Indices() {
				pr.taps[i] = [2]int{tap / c.KW, tap % c.KW}
			}
			pf.runs = append(pf.runs, pr)
			wOff += n
		}
		p.packedQ8[pos] = pf
	}
	conv := *c
	conv.Weights = nil
	p.Conv = &conv
	fkw := *p.FKW
	fkw.Weights = nil
	p.FKW = &fkw
	return nil
}

// rangePackedQ8 is the plain ExecuteRange form: accumulate into a
// caller-initialized output. Content may already sit in the planes (bias, a
// residual shortcut), so the scale cannot be deferred to an epilogue — the
// levels are dequantized as they are loaded, once per kernel per tile.
func (p *Plan) rangePackedQ8(padded, out *tensor.Tensor, from, to int) {
	c, _, pw := p.prologue(padded)
	phpw := padded.Dim(1) * pw
	oHW := c.OutH * c.OutW
	tileOH := p.Tune.Tile[1]
	if tileOH < 1 {
		tileOH = c.OutH
	}
	for pos := from; pos < to; pos++ {
		pf := &p.packedQ8[pos]
		scale := pf.scale
		oplane := out.Data[pf.orig*oHW : (pf.orig+1)*oHW]
		for ohBase := 0; ohBase < c.OutH; ohBase += tileOH {
			ohEnd := min(ohBase+tileOH, c.OutH)
			for ri := range pf.runs {
				run := &pf.runs[ri]
				t0, t1, t2, t3 := run.taps[0], run.taps[1], run.taps[2], run.taps[3]
				q := run.q
				for ki, ch := range run.ch {
					w0 := scale * float32(q[4*ki])
					w1 := scale * float32(q[4*ki+1])
					w2 := scale * float32(q[4*ki+2])
					w3 := scale * float32(q[4*ki+3])
					inCh := int(ch)
					if c.Depthwise {
						inCh = pf.orig
					}
					iplane := padded.Data[inCh*phpw:]
					for oh := ohBase; oh < ohEnd; oh++ {
						ihBase := oh * c.Stride
						r0 := iplane[(ihBase+t0[0])*pw+t0[1]:]
						r1 := iplane[(ihBase+t1[0])*pw+t1[1]:]
						r2 := iplane[(ihBase+t2[0])*pw+t2[1]:]
						r3 := iplane[(ihBase+t3[0])*pw+t3[1]:]
						orow := oplane[oh*c.OutW : oh*c.OutW+c.OutW]
						if c.Stride == 1 {
							for ow := range orow {
								orow[ow] += w0*r0[ow] + w1*r1[ow] + w2*r2[ow] + w3*r3[ow]
							}
						} else {
							for ow := range orow {
								iw := ow * c.Stride
								orow[ow] += w0*r0[iw] + w1*r1[iw] + w2*r2[iw] + w3*r3[iw]
							}
						}
					}
				}
			}
		}
	}
}

// rangePackedQ8Fused executes reordered filter positions [from, to) with the
// dequant-fused epilogue: the plane is zero-initialized, raw float32(int8)
// products accumulate through the whole filter sweep, and the epilogue applies
// out = acc·scale + bias (then the optional ReLU clamp) in one pass — a single
// scale multiply per output element instead of one per weight load.
func (p *Plan) rangePackedQ8Fused(padded, out *tensor.Tensor, from, to int, bias []float32, relu bool) {
	c, _, pw := p.prologue(padded)
	phpw := padded.Dim(1) * pw
	oHW := c.OutH * c.OutW
	tileOH := p.Tune.Tile[1]
	if tileOH < 1 {
		tileOH = c.OutH
	}
	for pos := from; pos < to; pos++ {
		pf := &p.packedQ8[pos]
		oplane := out.Data[pf.orig*oHW : (pf.orig+1)*oHW]
		clear(oplane)
		for ohBase := 0; ohBase < c.OutH; ohBase += tileOH {
			ohEnd := min(ohBase+tileOH, c.OutH)
			for ri := range pf.runs {
				run := &pf.runs[ri]
				t0, t1, t2, t3 := run.taps[0], run.taps[1], run.taps[2], run.taps[3]
				q := run.q
				for ki, ch := range run.ch {
					w0 := float32(q[4*ki])
					w1 := float32(q[4*ki+1])
					w2 := float32(q[4*ki+2])
					w3 := float32(q[4*ki+3])
					inCh := int(ch)
					if c.Depthwise {
						inCh = pf.orig
					}
					iplane := padded.Data[inCh*phpw:]
					for oh := ohBase; oh < ohEnd; oh++ {
						ihBase := oh * c.Stride
						r0 := iplane[(ihBase+t0[0])*pw+t0[1]:]
						r1 := iplane[(ihBase+t1[0])*pw+t1[1]:]
						r2 := iplane[(ihBase+t2[0])*pw+t2[1]:]
						r3 := iplane[(ihBase+t3[0])*pw+t3[1]:]
						orow := oplane[oh*c.OutW : oh*c.OutW+c.OutW]
						if c.Stride == 1 {
							for ow := range orow {
								orow[ow] += w0*r0[ow] + w1*r1[ow] + w2*r2[ow] + w3*r3[ow]
							}
						} else {
							for ow := range orow {
								iw := ow * c.Stride
								orow[ow] += w0*r0[iw] + w1*r1[iw] + w2*r2[iw] + w3*r3[iw]
							}
						}
					}
				}
			}
		}
		// Dequant-fused epilogue: one scale multiply (and bias add) per
		// output element, after the filter's full accumulation.
		scale := pf.scale
		b := float32(0)
		if bias != nil {
			b = bias[pf.orig]
		}
		if relu {
			for i, v := range oplane {
				v = v*scale + b
				if v < 0 {
					v = 0
				}
				oplane[i] = v
			}
		} else {
			for i, v := range oplane {
				oplane[i] = v*scale + b
			}
		}
	}
}
