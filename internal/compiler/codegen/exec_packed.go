package codegen

// The Packed level's execution kernels: FKW-direct tiled execution.
//
// Every other level gathers weights from the dense [OutC, InC, KH, KW] layout
// through wbase + dr*KW + dc index arithmetic, reconstructing per kernel what
// the FKW format (paper §5.3, Figure 10) already laid out: after Filter
// Kernel Reorder, a filter's surviving weights sit in one contiguous span of
// the Weights array, grouped into pattern runs whose shape is known from the
// Stride table. The packed kernels exploit that directly — one linear sweep
// of Weights per filter, the 4-entry pattern run unrolled into four fused
// multiply-adds, zero per-weight index arithmetic. The weight side of the
// layer becomes a pure stream, which is where PCONV/GRIM-style load
// redundancy wins come from on mobile-class cores.
//
// Output rows are processed in spatial tiles (Tune.Tile[1], sized by
// compiler/tuner's PackedTuning) so the output tile plus the three input rows
// a pattern touches stay cache-resident while the filter's weight stream is
// replayed, and the bias + ReLU epilogue fuses into the same sweep: the
// kernel initializes each output plane itself, so the serving runtime can
// hand it dirty pooled buffers without a zeroing pass.

import (
	"patdnn/internal/sparse"
	"patdnn/internal/tensor"
)

// packedRun is one pattern run of a filter in the packed view: the taps are
// decoded once at compile time, and ch/w alias the FKW Index and Weights
// arrays — executing a run IS walking the packed storage.
type packedRun struct {
	taps [4][2]int // the pattern's (dr, dc) taps
	ch   []uint16  // input channel per kernel (slice of FKW.Index)
	w    []float32 // 4 weights per kernel (slice of FKW.Weights)
}

// packedFilter is one reordered filter position's run list plus its original
// output channel (the FKW Reorder entry).
type packedFilter struct {
	orig int
	runs []packedRun
}

// buildPacked precompiles the FKW arrays into per-filter run views. The
// Channels/Weights slices alias the FKW storage; only the small run headers
// are allocated here, once, at compile time — the execution path allocates
// nothing.
func (p *Plan) buildPacked() {
	c := p.Conv
	p.packed = make([]packedFilter, c.OutC)
	wOff := 0
	for pos := 0; pos < c.OutC; pos++ {
		var runs []sparse.Run
		runs, wOff = p.FKW.Runs(nil, pos, wOff)
		pf := packedFilter{orig: int(p.FKW.Reorder[pos])}
		for _, r := range runs {
			pr := packedRun{ch: r.Channels, w: r.Weights}
			for i, tap := range r.Pattern.Indices() {
				pr.taps[i] = [2]int{tap / c.KW, tap % c.KW}
			}
			pf.runs = append(pf.runs, pr)
		}
		p.packed[pos] = pf
	}
}

// rangePacked is the plain ExecuteRange form: accumulate into a
// caller-initialized output, no epilogue.
func (p *Plan) rangePacked(padded, out *tensor.Tensor, from, to int) {
	p.rangePackedFused(padded, out, from, to, nil, false, false)
}

// rangePackedFused executes reordered filter positions [from, to) by walking
// the packed runs. When init is set the kernel writes each output plane's
// initial value (bias, or zero) itself; relu applies the fused ReLU epilogue
// after the plane's last accumulation.
func (p *Plan) rangePackedFused(padded, out *tensor.Tensor, from, to int, bias []float32, init, relu bool) {
	c, _, pw := p.prologue(padded)
	phpw := padded.Dim(1) * pw
	oHW := c.OutH * c.OutW
	tileOH := p.Tune.Tile[1]
	if tileOH < 1 {
		tileOH = c.OutH
	}
	for pos := from; pos < to; pos++ {
		pf := &p.packed[pos]
		oplane := out.Data[pf.orig*oHW : (pf.orig+1)*oHW]
		if init {
			v := float32(0)
			if bias != nil {
				v = bias[pf.orig]
			}
			for i := range oplane {
				oplane[i] = v
			}
		}
		for ohBase := 0; ohBase < c.OutH; ohBase += tileOH {
			ohEnd := min(ohBase+tileOH, c.OutH)
			for ri := range pf.runs {
				run := &pf.runs[ri]
				t0, t1, t2, t3 := run.taps[0], run.taps[1], run.taps[2], run.taps[3]
				w := run.w
				for ki, ch := range run.ch {
					// The four weights of this kernel: the next 4 entries of
					// the filter's weight stream, in tap order.
					w0, w1, w2, w3 := w[4*ki], w[4*ki+1], w[4*ki+2], w[4*ki+3]
					inCh := int(ch)
					if c.Depthwise {
						inCh = pf.orig
					}
					iplane := padded.Data[inCh*phpw:]
					for oh := ohBase; oh < ohEnd; oh++ {
						ihBase := oh * c.Stride
						r0 := iplane[(ihBase+t0[0])*pw+t0[1]:]
						r1 := iplane[(ihBase+t1[0])*pw+t1[1]:]
						r2 := iplane[(ihBase+t2[0])*pw+t2[1]:]
						r3 := iplane[(ihBase+t3[0])*pw+t3[1]:]
						orow := oplane[oh*c.OutW : oh*c.OutW+c.OutW]
						if c.Stride == 1 {
							for ow := range orow {
								orow[ow] += w0*r0[ow] + w1*r1[ow] + w2*r2[ow] + w3*r3[ow]
							}
						} else {
							for ow := range orow {
								iw := ow * c.Stride
								orow[ow] += w0*r0[iw] + w1*r1[iw] + w2*r2[iw] + w3*r3[iw]
							}
						}
					}
				}
			}
		}
		if relu {
			for i, v := range oplane {
				if v < 0 {
					oplane[i] = 0
				}
			}
		}
	}
}
