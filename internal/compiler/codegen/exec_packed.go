package codegen

// The Packed level's execution kernels: FKW-direct register-tiled execution.
//
// Every other level gathers weights from the dense [OutC, InC, KH, KW] layout
// through wbase + dr*KW + dc index arithmetic, reconstructing per kernel what
// the FKW format (paper §5.3, Figure 10) already laid out: after Filter
// Kernel Reorder, a filter's surviving weights sit in one contiguous span of
// the Weights array, grouped into pattern runs whose shape is known from the
// Stride table. The packed driver exploits that directly — one linear sweep
// of Weights per filter, zero per-weight index arithmetic — and hands each
// span to a register-tiled microkernel (internal/simd).
//
// Blocking structure (the register-level load redundancy elimination of
// paper §5.4, Fig. 12):
//
//	filter group   (Tune.Unroll[0]) — filters sharing the input tile are
//	                                  executed together so the tile's rows are
//	                                  loaded from memory once per group
//	row tile       (Tune.Tile[1])   — output rows per microkernel sweep; the
//	                                  tap weights stay pinned in vector
//	                                  registers for the whole tile
//	column chunk   (Tune.Unroll[2]) — output columns per microkernel call,
//	                                  bounding the per-sweep working set
//	kernel pairs                    — two consecutive kernels of a run (8
//	                                  taps) per Tile8 call, halving output
//	                                  load/store traffic; a trailing odd
//	                                  kernel takes the Tile4 form
//
// The microkernel set is captured from simd.Active() when the plan is built,
// so a compiled plan's behavior is immutable: simd.ForceGeneric only affects
// plans compiled afterwards, and the hot path reads no globals. Strided
// convolutions (Stride >= 2) keep the scalar sweep — the microkernel contract
// is unit column step — as does any geometry the tile kernels cannot express.
//
// The bias + ReLU epilogue fuses into the same walk: the driver initializes
// each output plane itself, so the serving runtime can hand it dirty pooled
// buffers without a zeroing pass.

import (
	"sync"

	"patdnn/internal/simd"
	"patdnn/internal/sparse"
	"patdnn/internal/tensor"
)

// packedScratch holds the pointer/weight buffers a driver call hands to the
// microkernels. The calls go through func values, so escape analysis cannot
// prove the arrays don't leak and stack copies would be heap-allocated on
// every call; pooling one scratch per driver invocation keeps the serving
// hot path allocation-free.
type packedScratch struct {
	s8 [8]*float32
	s4 [4]*float32
	w4 [4]float32
}

var packedScratchPool = sync.Pool{New: func() any { return new(packedScratch) }}

// putPackedScratch clears the held input pointers (so a pooled scratch never
// pins a retired activation buffer) and returns sc to the pool.
func putPackedScratch(sc *packedScratch) {
	*sc = packedScratch{}
	packedScratchPool.Put(sc)
}

// packedRun is one pattern run of a filter in the packed view: the taps are
// decoded once at compile time, and ch/w alias the FKW Index and Weights
// arrays — executing a run IS walking the packed storage.
type packedRun struct {
	taps [4][2]int // the pattern's (dr, dc) taps
	ch   []uint16  // input channel per kernel (slice of FKW.Index)
	w    []float32 // 4 weights per kernel (slice of FKW.Weights)
}

// packedFilter is one reordered filter position's run list plus its original
// output channel (the FKW Reorder entry).
type packedFilter struct {
	orig int
	runs []packedRun
}

// buildPacked precompiles the FKW arrays into per-filter run views. The
// Channels/Weights slices alias the FKW storage; only the small run headers
// are allocated here, once, at compile time — the execution path allocates
// nothing. The active microkernel set is captured here too, fixing the
// plan's dispatch for its lifetime.
func (p *Plan) buildPacked() error {
	c := p.Conv
	p.kern = simd.Active()
	p.packed = make([]packedFilter, c.OutC)
	wOff := 0
	var runs []sparse.Run
	for pos := 0; pos < c.OutC; pos++ {
		runs, wOff = p.FKW.Runs(runs, pos, wOff)
		pf := packedFilter{orig: int(p.FKW.Reorder[pos])}
		for _, r := range runs {
			pr := packedRun{ch: r.Channels, w: r.Weights}
			taps, err := sparse.TapOffsets(r.Pattern, c.KH, c.KW)
			if err != nil {
				return err
			}
			copy(pr.taps[:], taps)
			pf.runs = append(pf.runs, pr)
		}
		p.packed[pos] = pf
	}
	return nil
}

// rangePacked is the plain ExecuteRange form: accumulate into a
// caller-initialized output, no epilogue.
func (p *Plan) rangePacked(padded, out *tensor.Tensor, from, to int) {
	p.rangePackedFused(padded, out, from, to, nil, false, false)
}

// rangePackedFused executes reordered filter positions [from, to) by walking
// the packed runs through the register-tiled microkernels. When init is set
// the driver writes each output plane's initial value (bias, or zero) itself;
// relu applies the fused ReLU epilogue after the plane's last accumulation.
func (p *Plan) rangePackedFused(padded, out *tensor.Tensor, from, to int, bias []float32, init, relu bool) {
	c, _, pw := p.prologue(padded)
	if c.Stride != 1 {
		p.rangePackedScalar(padded, out, from, to, bias, init, relu)
		return
	}
	phpw := padded.Dim(1) * pw
	oHW := c.OutH * c.OutW
	tileOH := p.Tune.Tile[1]
	if tileOH < 1 || tileOH > c.OutH {
		tileOH = c.OutH
	}
	fg := p.Tune.Unroll[0]
	if fg < 1 {
		fg = 1
	}
	pbw := p.Tune.Unroll[2]
	if pbw < 1 || pbw > c.OutW {
		pbw = c.OutW
	}
	kern := p.kern
	if kern.Tile8 == nil {
		kern = simd.Generic()
	}
	sc := packedScratchPool.Get().(*packedScratch)
	defer putPackedScratch(sc)
	for gBase := from; gBase < to; gBase += fg {
		gEnd := min(gBase+fg, to)
		if init {
			for pos := gBase; pos < gEnd; pos++ {
				pf := &p.packed[pos]
				v := float32(0)
				if bias != nil {
					v = bias[pf.orig]
				}
				oplane := out.Data[pf.orig*oHW : (pf.orig+1)*oHW]
				for i := range oplane {
					oplane[i] = v
				}
			}
		}
		// Row tile outside the group's filter loop: every filter of the group
		// replays the same input rows while they are still cache-resident.
		for ohBase := 0; ohBase < c.OutH; ohBase += tileOH {
			rows := min(tileOH, c.OutH-ohBase)
			for pos := gBase; pos < gEnd; pos++ {
				pf := &p.packed[pos]
				oplane := out.Data[pf.orig*oHW:]
				for ri := range pf.runs {
					run := &pf.runs[ri]
					nk := len(run.ch)
					// Tap row offsets for this tile, owBase added per chunk.
					o0 := (ohBase+run.taps[0][0])*pw + run.taps[0][1]
					o1 := (ohBase+run.taps[1][0])*pw + run.taps[1][1]
					o2 := (ohBase+run.taps[2][0])*pw + run.taps[2][1]
					o3 := (ohBase+run.taps[3][0])*pw + run.taps[3][1]
					for owBase := 0; owBase < c.OutW; owBase += pbw {
						cols := min(pbw, c.OutW-owBase)
						dst := &oplane[ohBase*c.OutW+owBase]
						ki := 0
						for ; ki+2 <= nk; ki += 2 {
							chA, chB := int(run.ch[ki]), int(run.ch[ki+1])
							if c.Depthwise {
								chA, chB = pf.orig, pf.orig
							}
							ipA := padded.Data[chA*phpw:]
							ipB := padded.Data[chB*phpw:]
							sc.s8 = [8]*float32{
								&ipA[o0+owBase], &ipA[o1+owBase], &ipA[o2+owBase], &ipA[o3+owBase],
								&ipB[o0+owBase], &ipB[o1+owBase], &ipB[o2+owBase], &ipB[o3+owBase],
							}
							kern.Tile8(dst, c.OutW, &sc.s8, pw, (*[8]float32)(run.w[4*ki:]), cols, rows)
						}
						if ki < nk {
							chA := int(run.ch[ki])
							if c.Depthwise {
								chA = pf.orig
							}
							ipA := padded.Data[chA*phpw:]
							sc.s4 = [4]*float32{
								&ipA[o0+owBase], &ipA[o1+owBase], &ipA[o2+owBase], &ipA[o3+owBase],
							}
							kern.Tile4(dst, c.OutW, &sc.s4, pw, (*[4]float32)(run.w[4*ki:]), cols, rows)
						}
					}
				}
			}
		}
		if relu {
			for pos := gBase; pos < gEnd; pos++ {
				pf := &p.packed[pos]
				oplane := out.Data[pf.orig*oHW : (pf.orig+1)*oHW]
				for i, v := range oplane {
					if v < 0 {
						oplane[i] = 0
					}
				}
			}
		}
	}
}

// rangePackedScalar is the strided fallback: the microkernel contract is unit
// column step, so Stride >= 2 keeps the scalar FKW walk (per-kernel weight
// registers, row-sliced accumulation).
func (p *Plan) rangePackedScalar(padded, out *tensor.Tensor, from, to int, bias []float32, init, relu bool) {
	c, _, pw := p.prologue(padded)
	phpw := padded.Dim(1) * pw
	oHW := c.OutH * c.OutW
	tileOH := p.Tune.Tile[1]
	if tileOH < 1 {
		tileOH = c.OutH
	}
	for pos := from; pos < to; pos++ {
		pf := &p.packed[pos]
		oplane := out.Data[pf.orig*oHW : (pf.orig+1)*oHW]
		if init {
			v := float32(0)
			if bias != nil {
				v = bias[pf.orig]
			}
			for i := range oplane {
				oplane[i] = v
			}
		}
		for ohBase := 0; ohBase < c.OutH; ohBase += tileOH {
			ohEnd := min(ohBase+tileOH, c.OutH)
			for ri := range pf.runs {
				run := &pf.runs[ri]
				t0, t1, t2, t3 := run.taps[0], run.taps[1], run.taps[2], run.taps[3]
				w := run.w
				for ki, ch := range run.ch {
					// The four weights of this kernel: the next 4 entries of
					// the filter's weight stream, in tap order.
					w0, w1, w2, w3 := w[4*ki], w[4*ki+1], w[4*ki+2], w[4*ki+3]
					inCh := int(ch)
					if c.Depthwise {
						inCh = pf.orig
					}
					iplane := padded.Data[inCh*phpw:]
					for oh := ohBase; oh < ohEnd; oh++ {
						ihBase := oh * c.Stride
						r0 := iplane[(ihBase+t0[0])*pw+t0[1]:]
						r1 := iplane[(ihBase+t1[0])*pw+t1[1]:]
						r2 := iplane[(ihBase+t2[0])*pw+t2[1]:]
						r3 := iplane[(ihBase+t3[0])*pw+t3[1]:]
						orow := oplane[oh*c.OutW : oh*c.OutW+c.OutW]
						if c.Stride == 1 {
							for ow := range orow {
								orow[ow] += w0*r0[ow] + w1*r1[ow] + w2*r2[ow] + w3*r3[ow]
							}
						} else {
							for ow := range orow {
								iw := ow * c.Stride
								orow[ow] += w0*r0[iw] + w1*r1[iw] + w2*r2[iw] + w3*r3[iw]
							}
						}
					}
				}
			}
		}
		if relu {
			for i, v := range oplane {
				if v < 0 {
					oplane[i] = 0
				}
			}
		}
	}
}
