package codegen

// Differential golden harness: every optimization level — the four paper
// ablation levels plus the packed FKW-direct backend — must produce the same
// convolution as the dense reference tensor.Conv2D, over a randomized sweep
// of layer geometries, pattern sets, and connectivity sparsities. All sparse
// execution paths share this one ground truth, so a wrong stride handling, a
// misplaced FKW run, or a reorder bug in any level fails here with the seed
// that reproduces it.

import (
	"fmt"
	"math/rand"
	"testing"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/tensor"
)

// diffCase is one randomized layer configuration, fully determined by seed.
type diffCase struct {
	seed         int64
	outC, inC    int
	inH, inW     int
	stride, pad  int
	patterns     int
	connKeepFrac float64 // fraction of kernels surviving connectivity pruning
}

// randomCase derives a layer configuration from a seed, varying every axis
// the executors branch on: channel counts, spatial dims, stride, padding,
// pattern-set size, and sparsity.
func randomCase(seed int64) diffCase {
	rng := rand.New(rand.NewSource(seed))
	strides := []int{1, 2}
	pads := []int{0, 1}
	patSizes := []int{6, 8, 12}
	return diffCase{
		seed:         seed,
		outC:         2 + rng.Intn(15), // 2..16
		inC:          1 + rng.Intn(12), // 1..12
		inH:          5 + rng.Intn(14), // 5..18
		inW:          5 + rng.Intn(14), // 5..18
		stride:       strides[rng.Intn(len(strides))],
		pad:          pads[rng.Intn(len(pads))],
		patterns:     patSizes[rng.Intn(len(patSizes))],
		connKeepFrac: 0.2 + 0.7*rng.Float64(), // 20%..90% kernels survive
	}
}

// buildCase materializes the pruned layer, input, and bias for a case.
func buildCase(dc diffCase) (*pruned.Conv, *tensor.Tensor, []float32) {
	rng := rand.New(rand.NewSource(dc.seed ^ 0x9e3779b9))
	w := tensor.New(dc.outC, dc.inC, 3, 3)
	// Scale weights down so float32 accumulation-order differences across
	// levels stay far inside the 1e-4 gate even for the widest layers.
	w.Randn(rng, 0.25)
	geom := pruned.ConvGeom{
		Stride: dc.stride, Pad: dc.pad, InH: dc.inH, InW: dc.inW,
		OutH: tensor.ConvOutDim(dc.inH, 3, dc.stride, dc.pad),
		OutW: tensor.ConvOutDim(dc.inW, 3, dc.stride, dc.pad),
	}
	keep := int(float64(dc.outC*dc.inC) * dc.connKeepFrac)
	if keep < 1 {
		keep = 1
	}
	c := pruned.FromWeights(fmt.Sprintf("diff-%d", dc.seed), w,
		pattern.Canonical(dc.patterns), keep, geom)
	input := tensor.New(dc.inC, dc.inH, dc.inW)
	input.Randn(rng, 0.5)
	bias := make([]float32, dc.outC)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64()) * 0.25
	}
	return c, input, bias
}

// levelTol is the per-level gate against the dense FP32 reference: the FP32
// levels must agree to 1e-4; PackedQ8 runs the same structure over an 8-bit
// weight grid, so it gets the quantization-error budget (per-filter half-step
// errors accumulate over the receptive field) — still tight enough that a
// wrong tap, stride, or reorder fails by orders of magnitude.
func levelTol(level Level) float64 {
	if level == PackedQ8 {
		return 5e-2
	}
	return 1e-4
}

// TestDifferentialAllLevels pins all six execution paths to tensor.Conv2D
// over ≥50 seeded random layers. Table-driven: each case is an independent
// subtest named by its seed, so a failure names the exact reproducer.
func TestDifferentialAllLevels(t *testing.T) {
	const cases = 60
	for seed := int64(1); seed <= cases; seed++ {
		dc := randomCase(seed)
		t.Run(fmt.Sprintf("seed=%d/oc=%d/ic=%d/s=%d/p=%d/pat=%d",
			dc.seed, dc.outC, dc.inC, dc.stride, dc.pad, dc.patterns), func(t *testing.T) {
			c, input, bias := buildCase(dc)
			want := refConv(c, input, bias)
			for _, level := range AllLevels() {
				p, err := Compile(c, level, lr.DefaultTuning())
				if err != nil {
					t.Fatalf("level %v: %v", level, err)
				}
				got := p.Execute(input, bias)
				if !got.AllClose(want, levelTol(level)) {
					t.Errorf("level %v: max diff %g vs dense reference",
						level, got.MaxAbsDiff(want))
				}
			}
		})
	}
}

// TestDifferentialDepthwiseAllLevels covers the depthwise branch of every
// level (input channel = filter index) against the channel-by-channel dense
// reference — randomized channel counts, spatial dims, and strides.
func TestDifferentialDepthwiseAllLevels(t *testing.T) {
	for seed := int64(301); seed <= 312; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ch := 2 + rng.Intn(10)
		inH, inW := 6+rng.Intn(10), 6+rng.Intn(10)
		stride := 1 + rng.Intn(2)
		w := tensor.New(ch, 1, 3, 3)
		w.Randn(rng, 0.25)
		geom := pruned.ConvGeom{
			Stride: stride, Pad: 1, InH: inH, InW: inW,
			OutH: tensor.ConvOutDim(inH, 3, stride, 1),
			OutW: tensor.ConvOutDim(inW, 3, stride, 1),
		}
		// Depthwise: pattern pruning only — every kernel survives.
		c := pruned.FromWeights(fmt.Sprintf("dw-%d", seed), w, pattern.Canonical(8), ch, geom)
		c.Depthwise = true
		input := tensor.New(c.InChannels(), inH, inW)
		input.Randn(rng, 0.5)
		bias := make([]float32, ch)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64()) * 0.25
		}
		want := refDepthwise(c, input, bias)
		for _, level := range AllLevels() {
			p, err := Compile(c, level, lr.DefaultTuning())
			if err != nil {
				t.Fatalf("seed %d level %v: %v", seed, level, err)
			}
			got := p.Execute(input, bias)
			if !got.AllClose(want, levelTol(level)) {
				t.Errorf("seed %d level %v depthwise: max diff %g", seed, level, got.MaxAbsDiff(want))
			}
		}
	}
}

// TestDifferentialFusedMatchesUnfused checks the fused bias+ReLU epilogue
// path of every level against the unfused compose-it-yourself sequence, over
// dirty (non-zero) output buffers — the pooled-buffer contract.
func TestDifferentialFusedMatchesUnfused(t *testing.T) {
	for seed := int64(101); seed <= 112; seed++ {
		dc := randomCase(seed)
		c, input, bias := buildCase(dc)
		want := refConv(c, input, bias)
		tensor.ReLU(want)
		for _, level := range AllLevels() {
			p, err := Compile(c, level, lr.DefaultTuning())
			if err != nil {
				t.Fatalf("seed %d level %v: %v", seed, level, err)
			}
			padded := p.PadInput(input)
			out := tensor.New(c.OutC, c.OutH, c.OutW)
			for i := range out.Data {
				out.Data[i] = float32(i%7) - 3 // garbage the kernel must overwrite
			}
			p.ExecuteRangeFused(padded, out, 0, c.OutC, bias, true)
			if !out.AllClose(want, levelTol(level)) {
				t.Errorf("seed %d level %v fused: max diff %g", seed, level, out.MaxAbsDiff(want))
			}
		}
	}
}

// TestDifferentialPackedRangeComposes splits the packed sweeps (FP32 and
// quantized) across range boundaries (the runtime's ParallelFor contract) and
// checks the parts sum to the whole.
func TestDifferentialPackedRangeComposes(t *testing.T) {
	for _, level := range []Level{Packed, PackedQ8} {
		for seed := int64(201); seed <= 208; seed++ {
			dc := randomCase(seed)
			c, input, _ := buildCase(dc)
			p, err := Compile(c, level, lr.DefaultTuning())
			if err != nil {
				t.Fatal(err)
			}
			full := p.Execute(input, nil)
			padded := p.PadInput(input)
			split := tensor.New(c.OutC, c.OutH, c.OutW)
			for cut := 1; cut < c.OutC; cut += 3 {
				for i := range split.Data {
					split.Data[i] = 0
				}
				p.ExecuteRange(padded, split, 0, cut)
				p.ExecuteRange(padded, split, cut, c.OutC)
				if !split.AllClose(full, 1e-5) {
					t.Fatalf("seed %d level %v cut %d: split differs by %g",
						seed, level, cut, split.MaxAbsDiff(full))
				}
			}
		}
	}
}

// TestPackedQ8FreesFloatWeights pins the memory contract: a PackedQ8 plan
// drops both float32 weight streams (its int8 view is the only weight
// storage), reports the quantized byte count, and — critically — never
// mutates the caller's shared Conv/FKW, which other plans may still be using.
func TestPackedQ8FreesFloatWeights(t *testing.T) {
	dc := randomCase(77)
	c, input, bias := buildCase(dc)
	p8, err := Compile(c, PackedQ8, lr.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	if p8.Conv.Weights != nil || p8.FKW.Weights != nil {
		t.Fatal("PackedQ8 plan retained float32 weight streams")
	}
	if c.Weights == nil {
		t.Fatal("Compile mutated the caller's Conv")
	}
	qb, ok := p8.QuantizedWeightBytes()
	if !ok || qb <= 0 {
		t.Fatalf("QuantizedWeightBytes = (%d, %v)", qb, ok)
	}
	pFP, err := Compile(c, Packed, lr.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	// 1 byte/weight + one float32 scale per filter vs 4 bytes/weight: even on
	// tiny layers the quantized payload is well under half the FP32 stream.
	if fp32 := int64(4 * pFP.FKW.NNZ()); 2*qb >= fp32 {
		t.Fatalf("quantized payload %d B not well under fp32 %d B", qb, fp32)
	}
	// The weight-free plan still executes, and a plan compiled from the same
	// (unmutated) conv at a float level still matches the dense reference.
	want := refConv(c, input, bias)
	if got := p8.Execute(input, bias); !got.AllClose(want, levelTol(PackedQ8)) {
		t.Errorf("PackedQ8 after weight drop: max diff %g", got.MaxAbsDiff(want))
	}
	if got := pFP.Execute(input, bias); !got.AllClose(want, levelTol(Packed)) {
		t.Errorf("Packed sharing the conv: max diff %g", got.MaxAbsDiff(want))
	}
	// Stats on a weight-free plan must not panic and must report the smaller
	// weight stream.
	st8, stFP := p8.Stats(), pFP.Stats()
	if st8.WeightBytes >= stFP.WeightBytes {
		t.Errorf("PackedQ8 WeightBytes %d not below Packed %d", st8.WeightBytes, stFP.WeightBytes)
	}
}

// TestDifferentialPackedPadInputInto checks the pooled-buffer padding path
// against the allocating one, including a dirty oversized buffer.
func TestDifferentialPackedPadInputInto(t *testing.T) {
	dc := randomCase(42)
	dc.pad = 1
	c, input, _ := buildCase(dc)
	p, err := Compile(c, Packed, lr.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	want := p.PadInput(input)
	buf := make([]float32, p.PaddedLen()+13)
	for i := range buf {
		buf[i] = -99
	}
	got := p.PadInputInto(input, buf)
	if !got.AllClose(want, 0) {
		t.Fatalf("PadInputInto differs from PadInput by %g", got.MaxAbsDiff(want))
	}
}
