package codegen

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/tensor"
)

// smallPruned builds a pruned layer with real weights and small spatial dims
// so the reference conv is cheap.
func smallPruned(t testing.TB, seed int64, stride int) *pruned.Conv {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	outC, inC := 8, 6
	inH, inW := 11, 9
	w := tensor.New(outC, inC, 3, 3)
	w.Randn(rng, 1)
	pad := 1
	geom := pruned.ConvGeom{
		Stride: stride, Pad: pad, InH: inH, InW: inW,
		OutH: tensor.ConvOutDim(inH, 3, stride, pad),
		OutW: tensor.ConvOutDim(inW, 3, stride, pad),
	}
	keep := outC * inC * 2 / 5 // ~2.5x connectivity
	return pruned.FromWeights("test", w, pattern.Canonical(8), keep, geom)
}

func refConv(c *pruned.Conv, input *tensor.Tensor, bias []float32) *tensor.Tensor {
	var b *tensor.Tensor
	if bias != nil {
		b = tensor.FromSlice(bias, len(bias))
	}
	return tensor.Conv2D(input, c.Weights, b, tensor.ConvSpec{Stride: c.Stride, Pad: c.Pad})
}

func TestAllLevelsMatchReference(t *testing.T) {
	for _, stride := range []int{1, 2} {
		c := smallPruned(t, 1, stride)
		rng := rand.New(rand.NewSource(2))
		input := tensor.New(c.InC, c.InH, c.InW)
		input.Randn(rng, 1)
		bias := make([]float32, c.OutC)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		want := refConv(c, input, bias)
		for _, level := range []Level{NoOpt, Reorder, ReorderLRE, Tuned} {
			p, err := Compile(c, level, lr.DefaultTuning())
			if err != nil {
				t.Fatal(err)
			}
			got := p.Execute(input, bias)
			if !got.AllClose(want, 1e-3) {
				t.Fatalf("stride %d level %v: max diff %g", stride, level, got.MaxAbsDiff(want))
			}
		}
	}
}

func TestExecuteWithoutBias(t *testing.T) {
	c := smallPruned(t, 3, 1)
	rng := rand.New(rand.NewSource(4))
	input := tensor.New(c.InC, c.InH, c.InW)
	input.Randn(rng, 1)
	want := refConv(c, input, nil)
	p, err := Compile(c, Tuned, lr.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Execute(input, nil); !got.AllClose(want, 1e-3) {
		t.Fatalf("diff %g", got.MaxAbsDiff(want))
	}
}

func TestExecuteRangeComposes(t *testing.T) {
	// Running two disjoint ranges must equal running the full plan.
	c := smallPruned(t, 5, 1)
	rng := rand.New(rand.NewSource(6))
	input := tensor.New(c.InC, c.InH, c.InW)
	input.Randn(rng, 1)
	for _, level := range []Level{Reorder, Tuned} {
		p, err := Compile(c, level, lr.DefaultTuning())
		if err != nil {
			t.Fatal(err)
		}
		full := p.Execute(input, nil)
		padded := p.PadInput(input)
		split := tensor.New(c.OutC, c.OutH, c.OutW)
		mid := c.OutC / 2
		p.ExecuteRange(padded, split, 0, mid)
		p.ExecuteRange(padded, split, mid, c.OutC)
		if !split.AllClose(full, 1e-4) {
			t.Fatalf("level %v: split execution differs: %g", level, split.MaxAbsDiff(full))
		}
	}
}

func TestCompileRejectsBadInput(t *testing.T) {
	c := smallPruned(t, 7, 1)
	c.Weights = nil
	if _, err := Compile(c, Tuned, lr.DefaultTuning()); err == nil {
		t.Fatal("expected error without weights")
	}
	c2 := smallPruned(t, 7, 1)
	c2.Set = []pattern.Pattern{pattern.New(3, 4, 1)} // 2-entry pattern
	c2.IDs[0] = 1
	if _, err := Compile(c2, Tuned, lr.DefaultTuning()); err == nil {
		t.Fatal("expected error for non-4-entry pattern")
	}
}

func TestStatsMonotoneAcrossLevels(t *testing.T) {
	c := smallPruned(t, 8, 1)
	var prev *InstrStats
	for _, level := range []Level{NoOpt, Reorder, ReorderLRE, Tuned} {
		p, err := Compile(c, level, lr.DefaultTuning())
		if err != nil {
			t.Fatal(err)
		}
		st := p.Stats()
		if st.MACs <= 0 || st.RegLoads <= 0 || st.WeightBytes <= 0 {
			t.Fatalf("level %v: empty stats %+v", level, st)
		}
		if prev != nil {
			if st.Branches > prev.Branches {
				t.Fatalf("level %v increased branches: %d -> %d", level, prev.Branches, st.Branches)
			}
			if st.RegLoads > prev.RegLoads {
				t.Fatalf("level %v increased reg loads: %d -> %d", level, prev.RegLoads, st.RegLoads)
			}
			if st.Imbalance > prev.Imbalance+1e-9 {
				t.Fatalf("level %v worsened imbalance", level)
			}
		}
		s := st
		prev = &s
	}
}

func TestStatsMACsMatchSparsity(t *testing.T) {
	c := smallPruned(t, 9, 1)
	p, err := Compile(c, Tuned, lr.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	want := int64(c.NNZ()) * int64(c.OutH) * int64(c.OutW)
	if got := p.Stats().MACs; got != want {
		t.Fatalf("MACs = %d, want %d", got, want)
	}
}

func TestEmitSourceShapes(t *testing.T) {
	c := smallPruned(t, 10, 1)
	wantFragments := map[Level]string{
		NoOpt:      "switch (style[oc][ic])",
		Reorder:    "branchless",
		ReorderLRE: "row slices loaded ONCE",
		Tuned:      "filter-level LRE",
	}
	for level, frag := range wantFragments {
		p, err := Compile(c, level, lr.DefaultTuning())
		if err != nil {
			t.Fatal(err)
		}
		src := p.EmitSource()
		if !strings.Contains(src, frag) {
			t.Fatalf("level %v source missing %q:\n%s", level, frag, src)
		}
	}
}

// Property: all levels agree with the reference for random layers and inputs.
func TestLevelsAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := smallPruned(t, seed, 1)
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		input := tensor.New(c.InC, c.InH, c.InW)
		input.Randn(rng, 1)
		want := refConv(c, input, nil)
		for _, level := range []Level{NoOpt, Reorder, ReorderLRE, Tuned} {
			p, err := Compile(c, level, lr.DefaultTuning())
			if err != nil {
				return false
			}
			if !p.Execute(input, nil).AllClose(want, 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// refDepthwise computes a reference depthwise conv channel by channel.
func refDepthwise(c *pruned.Conv, input *tensor.Tensor, bias []float32) *tensor.Tensor {
	out := tensor.New(c.OutC, c.OutH, c.OutW)
	for ch := 0; ch < c.OutC; ch++ {
		in1 := tensor.FromSlice(
			input.Data[ch*c.InH*c.InW:(ch+1)*c.InH*c.InW], 1, c.InH, c.InW)
		w1 := tensor.FromSlice(
			c.Weights.Data[ch*9:(ch+1)*9], 1, 1, 3, 3)
		var b *tensor.Tensor
		if bias != nil {
			b = tensor.FromSlice(bias[ch:ch+1], 1)
		}
		o := tensor.Conv2D(in1, w1, b, tensor.ConvSpec{Stride: c.Stride, Pad: c.Pad})
		copy(out.Data[ch*c.OutH*c.OutW:(ch+1)*c.OutH*c.OutW], o.Data)
	}
	return out
}

func TestDepthwiseAllLevelsMatchReference(t *testing.T) {
	m := model.MobileNetV2("cifar10")
	var dw *model.Layer
	for _, l := range m.Layers {
		if l.Kind == model.DWConv && l.Stride == 1 {
			dw = l
			break
		}
	}
	if dw == nil {
		t.Fatal("no stride-1 dwconv found")
	}
	c := pruned.Generate(dw, pattern.Canonical(8), 3.6, 5, true)
	if !c.Depthwise {
		t.Fatal("Generate did not mark depthwise")
	}
	if c.NonEmptyKernels() != c.OutC {
		t.Fatalf("depthwise lost kernels: %d/%d", c.NonEmptyKernels(), c.OutC)
	}
	rng := rand.New(rand.NewSource(6))
	input := tensor.New(c.InChannels(), c.InH, c.InW)
	input.Randn(rng, 1)
	bias := make([]float32, c.OutC)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	want := refDepthwise(c, input, bias)
	for _, level := range []Level{NoOpt, Reorder, ReorderLRE, Tuned} {
		p, err := Compile(c, level, lr.DefaultTuning())
		if err != nil {
			t.Fatal(err)
		}
		got := p.Execute(input, bias)
		if !got.AllClose(want, 1e-3) {
			t.Fatalf("depthwise level %v: diff %g", level, got.MaxAbsDiff(want))
		}
	}
}

func TestDepthwiseStride2(t *testing.T) {
	m := model.MobileNetV2("imagenet")
	var dw *model.Layer
	for _, l := range m.Layers {
		if l.Kind == model.DWConv && l.Stride == 2 && l.InC <= 192 {
			dw = l
			break
		}
	}
	if dw == nil {
		t.Skip("no small stride-2 dwconv")
	}
	c := pruned.Generate(dw, pattern.Canonical(8), 3.6, 7, true)
	rng := rand.New(rand.NewSource(8))
	input := tensor.New(c.InChannels(), c.InH, c.InW)
	input.Randn(rng, 1)
	want := refDepthwise(c, input, nil)
	p, err := Compile(c, Tuned, lr.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Execute(input, nil); !got.AllClose(want, 1e-3) {
		t.Fatalf("stride-2 depthwise diff %g", got.MaxAbsDiff(want))
	}
}

func TestVGGScaleLayerCompiles(t *testing.T) {
	// Compile (not execute) a real VGG L4-sized layer to ensure the plan
	// builder scales.
	m := model.VGG16("imagenet")
	l := m.ConvLayers()[3]
	c := pruned.Generate(l, pattern.Canonical(8), 3.6, 11, true)
	p, err := Compile(c, Tuned, lr.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.MACs == 0 || st.Groups == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}
