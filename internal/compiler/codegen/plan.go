// Package codegen generates executable kernel plans for pattern-pruned
// convolutions, mirroring PatDNN's code-generation flow (paper Figure 7).
// Four optimization levels correspond to the paper's ablation:
//
//	NoOpt      — branchy dispatch on every kernel's pattern (the "+No-opt"
//	             skeleton), original filter order.
//	Reorder    — Filter Kernel Reorder applied: branchless pattern runs,
//	             grouped filters (the "+Reorder" skeleton).
//	ReorderLRE — additionally, register-level load redundancy elimination:
//	             input rows are materialized once per output row and reused
//	             across kernel weights and adjacent outputs ("+LRE").
//	Tuned      — additionally, tile/unroll/permutation parameters from the
//	             auto-tuner are applied ("+Tune"), including filter-block
//	             input sharing.
//
// Every level executes real arithmetic and is checked bit-for-bit (within
// float tolerance) against the dense reference convolution; the levels also
// report the instruction statistics the device model converts to mobile
// execution times.
package codegen

import (
	"fmt"
	"strings"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/compiler/lre"
	"patdnn/internal/compiler/reorder"
	"patdnn/internal/pruned"
	"patdnn/internal/simd"
	"patdnn/internal/sparse"
	"patdnn/internal/tensor"
)

// Level selects the optimization stage.
type Level int

// Optimization levels in ascending order. Packed is the FKW-direct backend:
// instead of gathering weights from the dense layout through per-kernel index
// arithmetic, its kernels walk the packed FKW Offset/Reorder/Index/Stride/
// Weights arrays in one sequential sweep per filter (paper §5.3, Fig. 10 —
// the layout exists precisely so the hot loop can stream weights).
const (
	NoOpt Level = iota
	Reorder
	ReorderLRE
	Tuned
	Packed
	// PackedQ8 is the quantized sibling of Packed: the same FKW-direct walk,
	// but the weight stream is int8 levels with one float32 scale per filter
	// (internal/quant's symmetric encoding), so the hot loop streams 4× fewer
	// weight bytes and the fused epilogue applies the scale once per filter.
	PackedQ8
)

var levelNames = map[Level]string{
	NoOpt: "No-Opt", Reorder: "+Reorder", ReorderLRE: "+Reorder+LRE",
	Tuned: "+Reorder+LRE+Tune", Packed: "+Packed-FKW", PackedQ8: "+Packed-INT8",
}

func (l Level) String() string { return levelNames[l] }

// AllLevels lists every optimization level in ascending order.
func AllLevels() []Level {
	return []Level{NoOpt, Reorder, ReorderLRE, Tuned, Packed, PackedQ8}
}

// ParseLevel maps a user-facing level name ("noopt", "reorder", "lre",
// "tuned", "packed", "packedq8"; case-insensitive) to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "noopt", "no-opt":
		return NoOpt, nil
	case "reorder":
		return Reorder, nil
	case "lre", "reorderlre":
		return ReorderLRE, nil
	case "tuned", "tune":
		return Tuned, nil
	case "packed", "fkw":
		return Packed, nil
	case "packedq8", "q8", "int8":
		return PackedQ8, nil
	}
	return NoOpt, fmt.Errorf("codegen: unknown level %q (want noopt, reorder, lre, tuned, packed, or packedq8)", s)
}

// LevelTag returns the canonical short name ParseLevel accepts for l — the
// form cache keys and stats counters use.
func LevelTag(l Level) string {
	switch l {
	case NoOpt:
		return "noopt"
	case Reorder:
		return "reorder"
	case ReorderLRE:
		return "lre"
	case Tuned:
		return "tuned"
	case Packed:
		return "packed"
	case PackedQ8:
		return "packedq8"
	}
	return "unknown"
}

// Plan is a compiled execution plan for one pruned conv layer.
type Plan struct {
	Level Level
	Conv  *pruned.Conv
	FKR   *reorder.Plan
	FKW   *sparse.FKW
	Tune  lr.Tuning

	// offsets[id-1] lists the (dr, dc) taps of pattern id.
	offsets [][][2]int
	// packed[pos] is the Packed level's precompiled view over the FKW arrays
	// for reordered filter position pos; nil for other levels.
	packed []packedFilter
	// packedQ8[pos] is the PackedQ8 level's quantized run view; nil for other
	// levels. When set, Conv.Weights and FKW.Weights are nil — the int8
	// stream is the plan's only weight storage.
	packedQ8 []packedQ8Filter
	// q8Bytes is the resident size of the quantized weight payload (levels +
	// scale table), recorded before the float32 streams are dropped.
	q8Bytes int64
	// kern is the SIMD microkernel set captured when the packed views were
	// built. Freezing it at compile time keeps the hot path free of global
	// reads: simd.ForceGeneric only affects plans compiled afterwards.
	kern simd.Kernels
}

// KernelArch reports which microkernel set a packed plan dispatches to
// ("avx2", "neon", or "generic"); empty for non-packed levels.
func (p *Plan) KernelArch() string { return p.kern.Name }

// Compile builds the plan for the requested level. Layers must carry weights.
func Compile(c *pruned.Conv, level Level, tune lr.Tuning) (*Plan, error) {
	if c.Weights == nil {
		return nil, fmt.Errorf("codegen: layer %s has no weights", c.Name)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	for _, pat := range c.Set {
		if pat.Entries() != 4 {
			return nil, fmt.Errorf("codegen: pattern %v is not 4-entry; the unrolled microkernels require 4-entry patterns", pat)
		}
	}
	p := &Plan{Level: level, Conv: c, Tune: tune}
	if level == NoOpt {
		p.FKR = reorder.Identity(c)
	} else {
		p.FKR = reorder.Build(c)
	}
	fkw, err := sparse.Encode(c, p.FKR.FilterPerm)
	if err != nil {
		return nil, err
	}
	p.FKW = fkw
	p.offsets = make([][][2]int, len(c.Set))
	for i, pat := range c.Set {
		taps, terr := sparse.TapOffsets(pat, c.KH, c.KW)
		if terr != nil {
			return nil, terr
		}
		p.offsets[i] = taps
	}
	if level == Packed {
		if err := p.buildPacked(); err != nil {
			return nil, err
		}
	}
	if level == PackedQ8 {
		if err := p.buildPackedQ8(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// QuantizedWeightBytes returns the resident quantized weight payload size and
// true for PackedQ8 plans; (0, false) for levels storing float32 weights.
func (p *Plan) QuantizedWeightBytes() (int64, bool) {
	if p.Level != PackedQ8 {
		return 0, false
	}
	return p.q8Bytes, true
}

// pad returns input copied into a zero-padded buffer [C, H+2p, W+2p].
func pad(input *tensor.Tensor, p int) *tensor.Tensor {
	if p == 0 {
		return input
	}
	c, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	out := tensor.New(c, h+2*p, w+2*p)
	pw := w + 2*p
	for ic := 0; ic < c; ic++ {
		for y := 0; y < h; y++ {
			src := input.Data[(ic*h+y)*w : (ic*h+y)*w+w]
			dstOff := (ic*(h+2*p)+y+p)*pw + p
			copy(out.Data[dstOff:dstOff+w], src)
		}
	}
	return out
}

// Execute runs the compiled layer on a [InC, InH, InW] input and returns the
// [OutC, OutH, OutW] output. bias may be nil.
func (p *Plan) Execute(input *tensor.Tensor, bias []float32) *tensor.Tensor {
	c := p.Conv
	out := tensor.New(c.OutC, c.OutH, c.OutW)
	if bias != nil {
		for oc := 0; oc < c.OutC; oc++ {
			plane := out.Data[oc*c.OutH*c.OutW : (oc+1)*c.OutH*c.OutW]
			for i := range plane {
				plane[i] = bias[oc]
			}
		}
	}
	padded := pad(input, c.Pad)
	switch p.Level {
	case NoOpt:
		p.execNoOpt(padded, out)
	case Reorder:
		p.execReorder(padded, out)
	case ReorderLRE:
		p.execLRE(padded, out)
	case Tuned:
		p.execTuned(padded, out)
	case Packed:
		p.rangePacked(padded, out, 0, c.OutC)
	case PackedQ8:
		p.rangePackedQ8(padded, out, 0, c.OutC)
	}
	return out
}

// ExecuteRange computes only output channels (in plan order) [from, to); the
// runtime uses it to parallelize a layer across worker threads along the
// filter-group boundaries FKR produces.
func (p *Plan) ExecuteRange(padded *tensor.Tensor, out *tensor.Tensor, from, to int) {
	switch p.Level {
	case NoOpt:
		p.rangeNoOpt(padded, out, from, to)
	case Reorder:
		p.rangeReorder(padded, out, from, to)
	case ReorderLRE:
		p.rangeLRE(padded, out, from, to)
	case Tuned:
		p.rangeTuned(padded, out, from, to)
	case Packed:
		p.rangePacked(padded, out, from, to)
	case PackedQ8:
		p.rangePackedQ8(padded, out, from, to)
	}
}

// SupportsFused reports whether the plan's kernels fuse the bias + ReLU
// epilogue into the conv sweep. Only the packed FKW-direct backends do: their
// kernels initialize each output plane themselves, so fused execution also
// accepts un-zeroed (pooled) output buffers.
func (p *Plan) SupportsFused() bool { return p.Level == Packed || p.Level == PackedQ8 }

// ExecuteRangeFused computes output channels (in plan order) [from, to) like
// ExecuteRange, but the kernel initializes each output plane itself (to bias,
// or zero) and, when relu is set, clamps negatives before writing back — the
// fused epilogue. out therefore needs no pre-initialization: dirty scratch
// buffers from a pool are fine. Levels without fused kernels fall back to
// init + plain range + epilogue passes over just [from, to).
func (p *Plan) ExecuteRangeFused(padded, out *tensor.Tensor, from, to int, bias []float32, relu bool) {
	if p.Level == Packed {
		p.rangePackedFused(padded, out, from, to, bias, true, relu)
		return
	}
	if p.Level == PackedQ8 {
		p.rangePackedQ8Fused(padded, out, from, to, bias, relu)
		return
	}
	c := p.Conv
	oHW := c.OutH * c.OutW
	for pos := from; pos < to; pos++ {
		f := p.FKR.FilterPerm[pos]
		plane := out.Data[f*oHW : (f+1)*oHW]
		v := float32(0)
		if bias != nil {
			v = bias[f]
		}
		for i := range plane {
			plane[i] = v
		}
	}
	p.ExecuteRange(padded, out, from, to)
	if relu {
		for pos := from; pos < to; pos++ {
			f := p.FKR.FilterPerm[pos]
			plane := out.Data[f*oHW : (f+1)*oHW]
			for i, v := range plane {
				if v < 0 {
					plane[i] = 0
				}
			}
		}
	}
}

// ExecuteRangeResidual computes output channels (in plan order) [from, to)
// with the fused residual epilogue: each output plane is initialized to the
// matching plane of shortcut (plus bias), the convolution accumulates on top,
// and relu optionally clamps — so a bottleneck tail (conv+bn → add → relu)
// runs as one sweep without materializing a separate elementwise add pass.
// shortcut must be [OutC, OutH, OutW]; out may hold garbage.
func (p *Plan) ExecuteRangeResidual(padded, out *tensor.Tensor, from, to int, bias []float32, shortcut *tensor.Tensor, relu bool) {
	c := p.Conv
	oHW := c.OutH * c.OutW
	for pos := from; pos < to; pos++ {
		f := p.FKR.FilterPerm[pos]
		plane := out.Data[f*oHW : (f+1)*oHW]
		sc := shortcut.Data[f*oHW : (f+1)*oHW]
		if bias != nil {
			b := bias[f]
			for i, v := range sc {
				plane[i] = v + b
			}
		} else {
			copy(plane, sc)
		}
	}
	p.ExecuteRange(padded, out, from, to) // every level accumulates
	if relu {
		for pos := from; pos < to; pos++ {
			f := p.FKR.FilterPerm[pos]
			plane := out.Data[f*oHW : (f+1)*oHW]
			for i, v := range plane {
				if v < 0 {
					plane[i] = 0
				}
			}
		}
	}
}

// PadInput exposes the padding step for the runtime's layer pipeline.
func (p *Plan) PadInput(input *tensor.Tensor) *tensor.Tensor {
	return pad(input, p.Conv.Pad)
}

// PaddedLen returns the element count PadInputInto needs in its scratch
// buffer.
func (p *Plan) PaddedLen() int {
	c := p.Conv
	return c.InChannels() * (c.InH + 2*c.Pad) * (c.InW + 2*c.Pad)
}

// PadInputInto pads input into buf, a reusable scratch slice of at least
// PaddedLen() elements whose contents may be garbage, and returns a tensor
// view over it. With zero padding the input is returned directly and buf is
// untouched. This is the allocation-free path the serving runtime's buffer
// pool uses.
func (p *Plan) PadInputInto(input *tensor.Tensor, buf []float32) *tensor.Tensor {
	pd := p.Conv.Pad
	if pd == 0 {
		return input
	}
	c, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	out := tensor.FromSlice(buf[:c*(h+2*pd)*(w+2*pd)], c, h+2*pd, w+2*pd)
	PadInto(input, out, pd)
	return out
}

// PadInto copies input into the zero-padded view out ([C, H+2p, W+2p] over
// scratch whose contents may be garbage): only the border is zeroed, the
// interior is fully overwritten. The graph executor uses it directly with
// prebuilt arena views (tensor construction would allocate in its hot path);
// PadInputInto wraps it for callers holding a raw slice.
func PadInto(input, out *tensor.Tensor, pd int) {
	c, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	ph, pw := h+2*pd, w+2*pd
	for ic := 0; ic < c; ic++ {
		plane := out.Data[ic*ph*pw : (ic+1)*ph*pw]
		clear(plane[:pd*pw])
		clear(plane[(ph-pd)*pw:])
		for y := 0; y < h; y++ {
			row := plane[(y+pd)*pw : (y+pd+1)*pw]
			clear(row[:pd])
			copy(row[pd:pd+w], input.Data[(ic*h+y)*w:(ic*h+y)*w+w])
			clear(row[pd+w:])
		}
	}
}

// DilatePadInto scatters input into out, a zero-dilated and zero-padded view
// whose contents may be garbage: element (y, x) of each input plane lands at
// (pd + y*stride, pd + x*stride), and every other element of out is zeroed.
// This is the staging step of transposed-conv execution — the stride-1
// equivalent conv then sweeps out with PadInto-style arena views, so the FKW
// packed walk and microkernels apply unchanged. out's dims determine the
// dilated extent (trailing output-padding rows/cols stay zero).
func DilatePadInto(input, out *tensor.Tensor, stride, pd int) {
	c, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	ph, pw := out.Dim(1), out.Dim(2)
	for ic := 0; ic < c; ic++ {
		plane := out.Data[ic*ph*pw : (ic+1)*ph*pw]
		clear(plane)
		for y := 0; y < h; y++ {
			src := input.Data[(ic*h+y)*w : (ic*h+y)*w+w]
			row := plane[(pd+y*stride)*pw+pd:]
			if stride == 1 {
				copy(row[:w], src)
				continue
			}
			for x, v := range src {
				row[x*stride] = v
			}
		}
	}
}

// InstrStats aggregates the instruction-level quantities the mobile device
// model consumes.
type InstrStats struct {
	MACs        int64   // multiply-accumulates executed
	RegLoads    int64   // input register loads (after the level's LRE)
	Branches    int64   // pattern-dispatch branches in the inner loops
	WeightBytes int64   // compressed weight bytes streamed from memory
	ActBytes    int64   // activation bytes (input + output feature maps)
	Imbalance   float64 // thread load imbalance in [0,1] (0 = balanced)
	Groups      int     // FKR filter groups (GPU block mapping quality)
	// VecEff is the achievable SIMD-lane utilization: branchy per-kernel
	// dispatch (No-Opt) largely defeats vectorization; branchless pattern
	// runs vectorize fully.
	VecEff float64
	// CacheEff is the data-locality quality in (0,1]: conventional tiling
	// plus tuned blocking keeps the working set cache-resident.
	CacheEff float64
}

// Stats computes the instruction statistics of this plan analytically; it
// does not execute the layer.
func (p *Plan) Stats() InstrStats {
	c := p.Conv
	outPix := int64(c.OutH) * int64(c.OutW)
	loads := lre.Analyze(c, p.FKR, p.Tune)
	st := InstrStats{
		MACs:        int64(c.NNZ()) * outPix,
		WeightBytes: int64(p.FKW.TotalBytes(4)),
		ActBytes:    4 * (int64(c.InChannels())*int64(c.InH)*int64(c.InW) + int64(c.OutC)*outPix),
		Groups:      len(p.FKR.Groups),
	}
	st.Imbalance = p.FKR.LoadImbalance(c, p.Tune.Threads)
	switch p.Level {
	case NoOpt:
		st.RegLoads = loads.NoLRE
		// The "+No-opt" skeleton re-dispatches on the kernel's pattern for
		// every output position (Figure 7): one branch per kernel per pixel.
		st.Branches = int64(c.NonEmptyKernels()) * outPix
		st.VecEff, st.CacheEff = 0.6, 0.55
	case Reorder:
		st.RegLoads = loads.NoLRE
		st.Branches = p.FKR.BranchCount(c, 1)
		st.VecEff, st.CacheEff = 1.0, 0.55
	case ReorderLRE:
		st.RegLoads = loads.KernelLRE
		st.Branches = p.FKR.BranchCount(c, 1)
		st.VecEff, st.CacheEff = 1.0, 0.60
	case Tuned:
		st.RegLoads = loads.FilterLRE
		st.Branches = p.FKR.BranchCount(c, 1)
		// The tuned configuration's locality depends on the chosen loop
		// permutation (Figure 15): channel-innermost blocked preserves both
		// input reuse and FKW weight streaming.
		st.VecEff, st.CacheEff = 1.0, 0.90*permEff(p.Tune.Permute)
	case Packed:
		// FKW-direct streaming: kernel-level LRE on the input side, and the
		// weight side degenerates to one sequential sweep of the packed array
		// per filter — no gather traffic, so locality beats the tuned dense
		// layout even before tiling.
		st.RegLoads = loads.KernelLRE
		st.Branches = p.FKR.BranchCount(c, 1)
		st.VecEff, st.CacheEff = 1.0, 0.95
	case PackedQ8:
		// Same FKW-direct walk as Packed, but the weight stream is int8: a
		// quarter of the bytes contend with the activation tile for L1.
		st.RegLoads = loads.KernelLRE
		st.Branches = p.FKR.BranchCount(c, 1)
		st.VecEff, st.CacheEff = 1.0, 0.97
		st.WeightBytes = int64(p.FKW.OverheadBytes()) + p.q8Bytes
	}
	return st
}

// permEff is the relative cache quality of each loop order for the FKW
// layout, normalized so the default (cohwci_b) is 1.
func permEff(perm lr.Permutation) float64 {
	switch perm {
	case lr.PermCoCiHW:
		return 0.58
	case lr.PermCoHWCi:
		return 0.71
	case lr.PermCoCiHWBlock:
		return 0.96
	case lr.PermCoHWCiBlock:
		return 1.0
	}
	return 1.0
}
