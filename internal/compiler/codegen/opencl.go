package codegen

import (
	"fmt"
	"strings"
)

// EmitOpenCL renders the GPU flavor of the generated code (the paper's
// framework emits OpenCL for mobile GPUs): one kernel per FKR group, so every
// work-group executes filters of identical length — the load-balance property
// FKR establishes — with the pattern dispatch resolved at generation time
// (no divergent branches inside the kernel) and FP16 weight storage.
//
// Like EmitSource, this is inspectable output; execution happens through the
// compiled Go plan and the device model.
func (p *Plan) EmitOpenCL() string {
	var b strings.Builder
	c := p.Conv
	fmt.Fprintf(&b, "// layer %s [%d,%d,%d,%d], level %s, %d FKR groups\n",
		c.Name, c.OutC, c.InC, c.KH, c.KW, p.Level, len(p.FKR.Groups))
	b.WriteString("#pragma OPENCL EXTENSION cl_khr_fp16 : enable\n\n")

	if p.Level == NoOpt {
		// The un-reordered version needs a runtime switch per kernel — the
		// divergence source Figure 7's +No-opt skeleton shows.
		b.WriteString(`__kernel void conv_noopt(__global const half *in,
                         __global const half *weights,
                         __global const ushort *style,
                         __global half *out) {
  int oc = get_global_id(0), oh = get_global_id(1), ow = get_global_id(2);
  float acc = 0.0f;
  for (int ic = 0; ic < IN_CHANNELS; ic++) {
    switch (style[oc * IN_CHANNELS + ic]) {   // divergent across the warp
      case 0: break;                           // empty kernel
      // one case per pattern, each with its own tap offsets
    }
  }
  out[(oc * OUT_H + oh) * OUT_W + ow] = (half)acc;
}
`)
		return b.String()
	}

	for gi, g := range p.FKR.Groups {
		fmt.Fprintf(&b, "// group %d: filters [%d,%d), length %d -> one work-group, zero divergence\n",
			gi, g.Start, g.End, g.Length)
	}
	b.WriteString("\n__kernel void conv_pattern(__global const half *in,\n")
	b.WriteString("                           __global const half *fkw_weights,\n")
	b.WriteString("                           __global const ushort *fkw_index,\n")
	b.WriteString("                           __global const ushort *fkw_stride,\n")
	b.WriteString("                           __global half *out) {\n")
	b.WriteString("  int pos = get_group_id(0);        // reordered filter (FKR)\n")
	b.WriteString("  int oh  = get_global_id(1);\n")
	b.WriteString("  int ow  = get_global_id(2) * UNROLL_W;\n")
	fmt.Fprintf(&b, "  float acc[%d];                    // UNROLL_W accumulators in registers\n",
		p.Tune.Unroll[2])
	for slot, pat := range p.FKW.Patterns {
		idx := pat.Indices()
		fmt.Fprintf(&b, "  // pattern slot %d (%s): branchless run over fkw_stride[pos][%d..%d)\n",
			slot, pat, slot, slot+1)
		fmt.Fprintf(&b, "  for (int k = start%d; k < end%d; k++) {\n", slot, slot)
		b.WriteString("    int ic = fkw_index[k];\n")
		if p.Level >= ReorderLRE {
			rows := map[int]bool{}
			for _, posn := range idx {
				rows[posn/pat.K] = true
			}
			fmt.Fprintf(&b, "    // LRE: %d row segments loaded once, reused across %d taps\n",
				len(rows), len(idx))
		}
		for t, posn := range idx {
			fmt.Fprintf(&b, "    acc[*] += w%d * in[plane(ic) + off(oh+%d, ow+%d)];\n",
				t, posn/pat.K, posn%pat.K)
		}
		b.WriteString("  }\n")
	}
	b.WriteString("  // write through the reorder array to the original output channel\n")
	b.WriteString("  out[reorder[pos]] = ...;\n}\n")
	return b.String()
}
