package codegen

// Differential suite for the SIMD microkernel dispatch: the same layer
// compiled twice — once capturing the arch's best kernel set, once under
// simd.ForceGeneric — must agree to float32 accumulation-order tolerance
// (1e-6 for the FP32 packed level, 1e-2 for PackedQ8's scaled levels). On a
// machine without vector kernels (or under -tags noasm) both plans capture
// the generic set and the comparison is exact; on AVX2/NEON hardware this is
// the test that pins the assembly to the pure-Go reference across pattern
// classes, strides, odd output widths, and every tail-remainder geometry the
// register blocking produces.

import (
	"fmt"
	"math/rand"
	"testing"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/simd"
	"patdnn/internal/tensor"
)

// compileForcedGeneric compiles the layer with the generic microkernel set
// captured into the plan, restoring the dispatch before returning.
func compileForcedGeneric(t *testing.T, c *pruned.Conv, level Level, tune lr.Tuning) *Plan {
	t.Helper()
	simd.ForceGeneric(true)
	defer simd.ForceGeneric(false)
	p, err := Compile(c, level, tune)
	if err != nil {
		t.Fatalf("generic compile: %v", err)
	}
	if p.KernelArch() != "generic" {
		t.Fatalf("ForceGeneric compile captured %q kernels", p.KernelArch())
	}
	return p
}

func simdTol(level Level) float64 {
	if level == PackedQ8 {
		return 1e-2
	}
	return 1e-6
}

// TestPackedAsmMatchesGeneric sweeps geometries chosen to exercise every
// ragged edge of the register blocking: output widths around the 8- and
// 4-lane vector boundaries, strides 1 and 2 (the scalar fallback), all three
// pattern-class sizes, and tile/group/pixel-block knobs that leave odd
// remainders in every loop.
func TestPackedAsmMatchesGeneric(t *testing.T) {
	type geom struct {
		inH, inW, stride, pad, patterns int
	}
	geoms := []geom{
		{9, 9, 1, 1, 6},    // OutW 9: one vector + 1-col tail
		{8, 8, 1, 0, 8},    // OutW 6: sub-vector rows (all tail on AVX2)
		{12, 23, 1, 1, 8},  // OutW 23: odd width, 7-col tail
		{16, 16, 1, 1, 12}, // OutW 16: exact vector multiple
		{14, 33, 1, 1, 8},  // OutW 33: 8|8|8|8|1
		{13, 13, 2, 1, 6},  // stride 2: scalar fallback path
		{18, 10, 2, 0, 8},  // stride 2, pad 0
	}
	tunings := []lr.Tuning{
		lr.DefaultTuning(), // tileOH 32, fg 4, pbw 8
		func() lr.Tuning { // ragged everything: 3-row tiles, group of 3, 5-col chunks
			tn := lr.DefaultTuning()
			tn.Tile[1], tn.Unroll[0], tn.Unroll[2] = 3, 3, 5
			return tn
		}(),
		func() lr.Tuning { // whole-map sweep, single-filter groups
			tn := lr.DefaultTuning()
			tn.Tile[1], tn.Unroll[0], tn.Unroll[2] = 0, 1, 0
			return tn
		}(),
	}
	for gi, g := range geoms {
		for ti, tune := range tunings {
			t.Run(fmt.Sprintf("g%d_t%d_s%d_w%d", gi, ti, g.stride, g.inW), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(100*gi + ti)))
				outC, inC := 2+rng.Intn(9), 1+rng.Intn(9)
				w := tensor.New(outC, inC, 3, 3)
				w.Randn(rng, 0.25)
				geo := pruned.ConvGeom{
					Stride: g.stride, Pad: g.pad, InH: g.inH, InW: g.inW,
					OutH: tensor.ConvOutDim(g.inH, 3, g.stride, g.pad),
					OutW: tensor.ConvOutDim(g.inW, 3, g.stride, g.pad),
				}
				keep := 1 + rng.Intn(outC*inC)
				c := pruned.FromWeights(fmt.Sprintf("simd-%d-%d", gi, ti), w,
					pattern.Canonical(g.patterns), keep, geo)
				input := tensor.New(inC, g.inH, g.inW)
				input.Randn(rng, 0.5)
				bias := make([]float32, outC)
				for i := range bias {
					bias[i] = float32(rng.NormFloat64()) * 0.25
				}
				for _, level := range []Level{Packed, PackedQ8} {
					pAsm, err := Compile(c, level, tune)
					if err != nil {
						t.Fatalf("level %v: %v", level, err)
					}
					pGen := compileForcedGeneric(t, c, level, tune)
					want := pGen.Execute(input, bias)
					got := pAsm.Execute(input, bias)
					if !got.AllClose(want, simdTol(level)) {
						t.Errorf("level %v (%s vs generic): max diff %g",
							level, pAsm.KernelArch(), got.MaxAbsDiff(want))
					}
					// Fused path over a dirty pooled buffer, with ReLU.
					padded := pAsm.PadInput(input)
					outAsm := tensor.New(c.OutC, c.OutH, c.OutW)
					outGen := tensor.New(c.OutC, c.OutH, c.OutW)
					for i := range outAsm.Data {
						outAsm.Data[i] = float32(i%5) - 2
						outGen.Data[i] = -7
					}
					pAsm.ExecuteRangeFused(padded, outAsm, 0, c.OutC, bias, true)
					pGen.ExecuteRangeFused(padded, outGen, 0, c.OutC, bias, true)
					if !outAsm.AllClose(outGen, simdTol(level)) {
						t.Errorf("level %v fused (%s vs generic): max diff %g",
							level, pAsm.KernelArch(), outAsm.MaxAbsDiff(outGen))
					}
				}
			})
		}
	}
}

// TestPackedAsmMatchesGenericDepthwise covers the depthwise branch (input
// plane = filter index) through both kernel sets, strides 1 and 2.
func TestPackedAsmMatchesGenericDepthwise(t *testing.T) {
	for seed := int64(501); seed <= 506; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ch := 2 + rng.Intn(8)
		inH, inW := 6+rng.Intn(12), 6+rng.Intn(12)
		stride := 1 + rng.Intn(2)
		w := tensor.New(ch, 1, 3, 3)
		w.Randn(rng, 0.25)
		geo := pruned.ConvGeom{
			Stride: stride, Pad: 1, InH: inH, InW: inW,
			OutH: tensor.ConvOutDim(inH, 3, stride, 1),
			OutW: tensor.ConvOutDim(inW, 3, stride, 1),
		}
		c := pruned.FromWeights(fmt.Sprintf("simd-dw-%d", seed), w, pattern.Canonical(8), ch, geo)
		c.Depthwise = true
		input := tensor.New(c.InChannels(), inH, inW)
		input.Randn(rng, 0.5)
		for _, level := range []Level{Packed, PackedQ8} {
			pAsm, err := Compile(c, level, lr.DefaultTuning())
			if err != nil {
				t.Fatalf("seed %d level %v: %v", seed, level, err)
			}
			pGen := compileForcedGeneric(t, c, level, lr.DefaultTuning())
			want := pGen.Execute(input, nil)
			got := pAsm.Execute(input, nil)
			if !got.AllClose(want, simdTol(level)) {
				t.Errorf("seed %d level %v depthwise: max diff %g", seed, level, got.MaxAbsDiff(want))
			}
		}
	}
}

// FuzzPackedKernelDifferential feeds the FuzzFKWRoundTrip layer recipe
// through the packed execution path: for any layer the fuzzer derives, the
// arch microkernels, the forced-generic microkernels, and the dense
// reference must agree. Run with:
//
//	go test -fuzz=FuzzPackedKernelDifferential -fuzztime=20s ./internal/compiler/codegen
func FuzzPackedKernelDifferential(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(50), uint8(8), uint8(1))
	f.Add(int64(42), uint8(1), uint8(10), uint8(3), uint8(2))
	f.Add(int64(7), uint8(2), uint8(90), uint8(0), uint8(1))
	f.Add(int64(-3), uint8(0), uint8(1), uint8(255), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, patSize, connPct, knob, strideSel uint8) {
		rng := rand.New(rand.NewSource(seed))
		outC := 1 + rng.Intn(10)
		inC := 1 + rng.Intn(8)
		sizes := []int{6, 8, 12}
		set := pattern.Canonical(sizes[int(patSize)%len(sizes)])
		w := tensor.New(outC, inC, 3, 3)
		w.Randn(rng, 0.25)
		keep := 1 + int(connPct)%(outC*inC)
		stride := 1 + int(strideSel)%2
		inH, inW := 5+rng.Intn(14), 5+rng.Intn(14)
		geo := pruned.ConvGeom{
			Stride: stride, Pad: 1, InH: inH, InW: inW,
			OutH: tensor.ConvOutDim(inH, 3, stride, 1),
			OutW: tensor.ConvOutDim(inW, 3, stride, 1),
		}
		c := pruned.FromWeights("fuzz-kern", w, set, keep, geo)
		// The fuzzed knob perturbs all three blocking genes so the driver's
		// tail loops see arbitrary tile/group/chunk remainders.
		tune := lr.DefaultTuning()
		tune.Tile[1] = 1 + int(knob)%9
		tune.Unroll[0] = 1 + int(knob>>2)%5
		tune.Unroll[2] = 1 + int(knob>>4)%17
		input := tensor.New(inC, inH, inW)
		input.Randn(rng, 0.5)
		pAsm, err := Compile(c, Packed, tune)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		pGen := compileForcedGeneric(t, c, Packed, tune)
		want := refConv(c, input, nil)
		genOut := pGen.Execute(input, nil)
		asmOut := pAsm.Execute(input, nil)
		if !genOut.AllClose(want, 1e-4) {
			t.Fatalf("generic vs dense reference: max diff %g", genOut.MaxAbsDiff(want))
		}
		if !asmOut.AllClose(genOut, 1e-6) {
			t.Fatalf("%s vs generic kernels: max diff %g", pAsm.KernelArch(), asmOut.MaxAbsDiff(genOut))
		}
	})
}
