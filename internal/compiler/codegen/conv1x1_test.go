package codegen

import (
	"math/rand"
	"testing"

	"patdnn/internal/model"
	"patdnn/internal/tensor"
)

func oneByOneLayer(t *testing.T, stride int) *model.Layer {
	t.Helper()
	m := model.ResNet50("cifar10")
	for _, l := range m.AllConvLayers() {
		if l.KH == 1 && l.Stride == stride && l.InC <= 256 {
			return l
		}
	}
	t.Fatalf("no 1x1 layer with stride %d", stride)
	return nil
}

func TestConv1x1MatchesDense(t *testing.T) {
	for _, stride := range []int{1, 2} {
		l := oneByOneLayer(t, stride)
		p, err := Compile1x1FromLayer(l, 3.6, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild the dense weight tensor from the plan for the reference.
		w := tensor.New(p.OutC, p.InC, 1, 1)
		for f := 0; f < p.OutC; f++ {
			for ki, ch := range p.keepCh[f] {
				w.Data[f*p.InC+int(ch)] = p.keepW[f][ki]
			}
		}
		rng := rand.New(rand.NewSource(2))
		in := tensor.New(p.InC, p.InH, p.InW)
		in.Randn(rng, 1)
		bias := make([]float32, p.OutC)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		want := tensor.Conv2D(in, w, tensor.FromSlice(bias, len(bias)),
			tensor.ConvSpec{Stride: stride, Pad: 0})
		got := p.Execute(in, bias)
		if !got.AllClose(want, 1e-3) {
			t.Fatalf("stride %d: 1x1 plan diff %g", stride, got.MaxAbsDiff(want))
		}
	}
}

func TestConv1x1PruningRate(t *testing.T) {
	l := oneByOneLayer(t, 1)
	p, err := Compile1x1FromLayer(l, 3.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := l.OutC * l.InC
	want := int(float64(total)/3.6 + 0.5)
	if p.NNZ() != want {
		t.Fatalf("kept %d weights, want %d", p.NNZ(), want)
	}
	// No pruning at rate <= 1.
	p2, err := Compile1x1FromLayer(l, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p2.NNZ() != total {
		t.Fatalf("rate 1 pruned weights: %d/%d", p2.NNZ(), total)
	}
}

func TestConv1x1KeepsLargestWeights(t *testing.T) {
	w := tensor.New(2, 3, 1, 1)
	copy(w.Data, []float32{5, 0.1, -4, 0.2, 3, -0.3})
	p, err := Compile1x1("t", w, 3, struct{ Stride, InH, InW, OutH, OutW int }{1, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Largest |w|: 5 (f0,c0), -4 (f0,c2), 3 (f1,c1).
	if len(p.keepCh[0]) != 2 || len(p.keepCh[1]) != 1 {
		t.Fatalf("keep structure wrong: %v", p.keepCh)
	}
	if p.keepW[1][0] != 3 {
		t.Fatalf("filter 1 kept %v", p.keepW[1])
	}
}

func TestConv1x1Stats(t *testing.T) {
	l := oneByOneLayer(t, 1)
	p, err := Compile1x1FromLayer(l, 3.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.MACs != int64(p.NNZ())*int64(p.OutH)*int64(p.OutW) {
		t.Fatalf("MACs = %d", st.MACs)
	}
	if st.Branches != 0 {
		t.Fatal("1x1 plan must be branchless")
	}
	if st.Imbalance < 0 || st.Imbalance > 1 {
		t.Fatalf("imbalance %v", st.Imbalance)
	}
}

func TestCompile1x1Rejects3x3(t *testing.T) {
	m := model.VGG16("cifar10")
	if _, err := Compile1x1FromLayer(m.ConvLayers()[0], 3.6, 1); err == nil {
		t.Fatal("expected error for 3x3 layer")
	}
	if _, err := Compile1x1("x", tensor.New(2, 2, 3, 3), 1,
		struct{ Stride, InH, InW, OutH, OutW int }{1, 1, 1, 1, 1}); err == nil {
		t.Fatal("expected error for non-1x1 weights")
	}
}
