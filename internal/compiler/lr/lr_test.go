package lr

import (
	"strings"
	"testing"

	"patdnn/internal/compiler/reorder"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
)

func sampleLayer(t *testing.T) (Layer, *pruned.Conv) {
	t.Helper()
	m := model.VGG16("cifar10")
	c := pruned.Generate(m.ConvLayers()[1], pattern.Canonical(8), 3.6, 1, false)
	plan := reorder.Build(c)
	return FromPruned(c, plan, DefaultTuning()), c
}

func TestFromPruned(t *testing.T) {
	l, c := sampleLayer(t)
	if l.Name != c.Name || l.Storage != "tight" || l.Pattern.Layout != "FKW" {
		t.Fatalf("header wrong: %+v", l)
	}
	if len(l.Pattern.Types) == 0 || len(l.Pattern.Types) > len(c.Set) {
		t.Fatalf("pattern types = %v", l.Pattern.Types)
	}
	for i, id := range l.Pattern.Types {
		if l.Pattern.Masks[i] != c.Set[id-1].Mask {
			t.Fatal("mask does not match pattern ID")
		}
	}
	if len(l.Pattern.FilterOrder) != c.OutC {
		t.Fatal("filter order missing")
	}
	if l.Info.InC != c.InC || l.Info.OutC != c.OutC || l.Info.KH != 3 {
		t.Fatalf("info wrong: %+v", l.Info)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	l, _ := sampleLayer(t)
	r := &Representation{Model: "vgg16", Device: "CPU", Layers: []Layer{l}}
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// The serialized form mirrors Figure 8's fields.
	for _, want := range []string{`"storage": "tight"`, `"layout": "FKW"`,
		`"permute": "cohwci_b"`, `"strides"`, `"dilations"`, `"unroll"`, `"tile"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("serialized LR missing %q", want)
		}
	}
	r2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Layers[0].Name != l.Name || r2.Layers[0].Tuning != l.Tuning {
		t.Fatal("round trip lost data")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	good, _ := sampleLayer(t)
	cases := map[string]func(r *Representation){
		"bad device":     func(r *Representation) { r.Device = "TPU" },
		"unnamed":        func(r *Representation) { r.Layers[0].Name = "" },
		"bad permute":    func(r *Representation) { r.Layers[0].Tuning.Permute = "zigzag" },
		"bad unroll":     func(r *Representation) { r.Layers[0].Tuning.Unroll[0] = 0 },
		"bad tile":       func(r *Representation) { r.Layers[0].Tuning.Tile[2] = -1 },
		"masks mismatch": func(r *Representation) { r.Layers[0].Pattern.Masks = nil },
		"bad perm len":   func(r *Representation) { r.Layers[0].Pattern.FilterOrder = []int{0} },
		"dup perm": func(r *Representation) {
			fo := r.Layers[0].Pattern.FilterOrder
			fo[0] = fo[1]
		},
	}
	for name, corrupt := range cases {
		r := &Representation{Model: "m", Device: "CPU", Layers: []Layer{good}}
		// Deep-ish copy of the mutable bits.
		r.Layers[0].Pattern.FilterOrder = append([]int(nil), good.Pattern.FilterOrder...)
		r.Layers[0].Pattern.Masks = append([]uint16(nil), good.Pattern.Masks...)
		corrupt(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate did not fail", name)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("{not json")); err == nil {
		t.Fatal("expected JSON error")
	}
	if _, err := Unmarshal([]byte(`{"device":"quantum","layers":[]}`)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestPermutationHelpers(t *testing.T) {
	if !PermCoHWCiBlock.Valid() || !PermCoHWCiBlock.Blocked() {
		t.Fatal("cohwci_b should be valid and blocked")
	}
	if PermCoCiHW.Blocked() {
		t.Fatal("cocihw is not blocked")
	}
	if Permutation("x").Valid() {
		t.Fatal("unknown permutation accepted")
	}
}
