// Package lr implements PatDNN's high-level, fine-grained Layerwise
// Representation (paper Section 5.1, Figure 8). The LR captures, per layer,
// the sparsity information the later passes need — pattern types present,
// the FKW pattern layout, the connectivity between kernels and channels —
// plus the tuning-decided execution parameters (tile sizes, unroll factors,
// loop permutation) and basic layer facts (strides, dilations). It
// serializes to JSON for inspection and round-trips losslessly.
package lr

import (
	"encoding/json"
	"fmt"

	"patdnn/internal/compiler/reorder"
	"patdnn/internal/pruned"
)

// Permutation names the computation loop order of a conv layer. The paper's
// Figure 15 evaluates CoCiHW and CoHWCi with and without blocking; cohwci_b
// (blocked output-channel, height, width, input-channel) is the usual winner.
type Permutation string

// Supported loop permutations.
const (
	PermCoCiHW      Permutation = "cocihw"
	PermCoHWCi      Permutation = "cohwci"
	PermCoCiHWBlock Permutation = "cocihw_b"
	PermCoHWCiBlock Permutation = "cohwci_b"
)

// Valid reports whether p is a known permutation.
func (p Permutation) Valid() bool {
	switch p {
	case PermCoCiHW, PermCoHWCi, PermCoCiHWBlock, PermCoHWCiBlock:
		return true
	}
	return false
}

// Blocked reports whether the permutation applies loop tiling.
func (p Permutation) Blocked() bool {
	return p == PermCoCiHWBlock || p == PermCoHWCiBlock
}

// Tuning holds the auto-tuner's decisions for one layer (Figure 8's
// "tuning" block).
type Tuning struct {
	// Unroll factors in loop order [oc, oh, ow, ic].
	Unroll [4]int `json:"unroll"`
	// Tile sizes [oc, oh/ow pair, ic].
	Tile [3]int `json:"tile"`
	// Permute is the loop order.
	Permute Permutation `json:"permute"`
	// Threads the layer is parallelized over.
	Threads int `json:"threads"`
}

// DefaultTuning is a safe starting configuration before auto-tuning.
func DefaultTuning() Tuning {
	return Tuning{
		Unroll:  [4]int{4, 2, 8, 1},
		Tile:    [3]int{16, 32, 8},
		Permute: PermCoHWCiBlock,
		Threads: 8,
	}
}

// PatternInfo describes the sparsity of one layer (Figure 8's "pattern"
// block).
type PatternInfo struct {
	// Types lists the pattern IDs present in the layer.
	Types []int `json:"type"`
	// Layout names the compressed storage; always "FKW" after reorder.
	Layout string `json:"layout"`
	// Masks holds each present pattern's bitmask, parallel to Types.
	Masks []uint16 `json:"masks"`
	// FilterOrder is the FKR filter permutation (reorder array).
	FilterOrder []int `json:"filter_order,omitempty"`
}

// Info carries the basic layer facts (Figure 8's "info" block).
type Info struct {
	Strides   [2]int `json:"strides"`
	Dilations [2]int `json:"dilations"`
	Pad       [2]int `json:"pad"`
	KH        int    `json:"kh"`
	KW        int    `json:"kw"`
	InC       int    `json:"in_channels"`
	OutC      int    `json:"out_channels"`
	InH       int    `json:"in_h"`
	InW       int    `json:"in_w"`
}

// Layer is the LR of one conv op.
type Layer struct {
	Name    string      `json:"name"`
	Storage string      `json:"storage"` // "tight" = compact FKW model
	Pattern PatternInfo `json:"pattern"`
	Tuning  Tuning      `json:"tuning"`
	Info    Info        `json:"info"`
}

// Representation is the whole-model LR.
type Representation struct {
	Model  string  `json:"name"`
	Device string  `json:"device"` // "CPU" or "GPU"
	Layers []Layer `json:"layers"`
}

// FromPruned builds the LR layer for a pruned conv and its FKR plan; plan may
// be nil to defer reordering.
func FromPruned(c *pruned.Conv, plan *reorder.Plan, tune Tuning) Layer {
	present := map[int]bool{}
	for _, id := range c.IDs {
		if id != 0 {
			present[id] = true
		}
	}
	var pi PatternInfo
	pi.Layout = "FKW"
	for id := 1; id <= len(c.Set); id++ {
		if present[id] {
			pi.Types = append(pi.Types, id)
			pi.Masks = append(pi.Masks, c.Set[id-1].Mask)
		}
	}
	if plan != nil {
		pi.FilterOrder = append([]int(nil), plan.FilterPerm...)
	}
	return Layer{
		Name:    c.Name,
		Storage: "tight",
		Pattern: pi,
		Tuning:  tune,
		Info: Info{
			Strides: [2]int{c.Stride, c.Stride}, Dilations: [2]int{1, 1},
			Pad: [2]int{c.Pad, c.Pad}, KH: c.KH, KW: c.KW,
			InC: c.InC, OutC: c.OutC, InH: c.InH, InW: c.InW,
		},
	}
}

// Validate checks structural invariants of the representation.
func (r *Representation) Validate() error {
	if r.Device != "CPU" && r.Device != "GPU" {
		return fmt.Errorf("lr: invalid device %q", r.Device)
	}
	for _, l := range r.Layers {
		if l.Name == "" {
			return fmt.Errorf("lr: unnamed layer")
		}
		if !l.Tuning.Permute.Valid() {
			return fmt.Errorf("lr: layer %s: invalid permutation %q", l.Name, l.Tuning.Permute)
		}
		if len(l.Pattern.Types) != len(l.Pattern.Masks) {
			return fmt.Errorf("lr: layer %s: pattern types/masks mismatch", l.Name)
		}
		for _, u := range l.Tuning.Unroll {
			if u < 1 {
				return fmt.Errorf("lr: layer %s: unroll factor < 1", l.Name)
			}
		}
		for _, tl := range l.Tuning.Tile {
			if tl < 1 {
				return fmt.Errorf("lr: layer %s: tile size < 1", l.Name)
			}
		}
		if fo := l.Pattern.FilterOrder; fo != nil {
			if len(fo) != l.Info.OutC {
				return fmt.Errorf("lr: layer %s: filter order length %d != OutC %d",
					l.Name, len(fo), l.Info.OutC)
			}
			seen := make([]bool, l.Info.OutC)
			for _, f := range fo {
				if f < 0 || f >= l.Info.OutC || seen[f] {
					return fmt.Errorf("lr: layer %s: filter order is not a permutation", l.Name)
				}
				seen[f] = true
			}
		}
	}
	return nil
}

// Marshal renders the representation as indented JSON.
func (r *Representation) Marshal() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Unmarshal parses a representation and validates it.
func Unmarshal(data []byte) (*Representation, error) {
	var r Representation
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("lr: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
