// Package graphopt implements the computational-graph level of PatDNN's
// compiler (paper Section 5, Table 1): the model is converted into a graph IR
// and optimized with operator fusion, constant folding (BN folding), operation
// replacement, data-layout selection, and a liveness-based static memory plan
// with buffer reuse. These are the optimizations PatDNN shares with TVM/MNN;
// the pattern-specific passes live in the sibling packages.
package graphopt

import (
	"fmt"

	"patdnn/internal/model"
)

// Node is one operator in the graph IR.
type Node struct {
	ID     int
	Op     string // "conv", "conv+relu", "conv+bn+relu", "fc", "add", ...
	Layer  *model.Layer
	Inputs []int
	// Layout is the chosen activation layout ("NCHW" or "NHWC").
	Layout string
	// Folded marks operators whose parameters were constant-folded away.
	Folded bool
}

// Graph is a DAG of nodes in topological order (Inputs always reference
// lower IDs).
type Graph struct {
	Nodes []*Node
	// byName maps the producing model-layer name to node ID, for shortcuts.
	byName map[string]int
}

// FromModel lowers a model into the graph IR.
func FromModel(m *model.Model) *Graph {
	g := &Graph{byName: make(map[string]int)}
	prev := -1
	for _, l := range m.Layers {
		n := &Node{ID: len(g.Nodes), Op: l.Kind.String(), Layer: l, Layout: "NCHW"}
		if prev >= 0 {
			n.Inputs = append(n.Inputs, prev)
		}
		if l.Kind == model.Add && l.ShortcutOf != "" {
			if src, ok := g.byName[l.ShortcutOf]; ok {
				n.Inputs = append(n.Inputs, src)
			}
		}
		if l.Projection {
			// Projection convs branch from the block input, not from prev.
			n.Inputs = nil
			if src, ok := g.byName[l.ShortcutOf]; ok {
				n.Inputs = append(n.Inputs, src)
			}
		}
		g.Nodes = append(g.Nodes, n)
		g.byName[l.Name] = n.ID
		prev = n.ID
	}
	return g
}

// Validate checks topological ordering and input validity.
func (g *Graph) Validate() error {
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in < 0 || in >= len(g.Nodes) {
				return fmt.Errorf("graphopt: node %d references missing input %d", n.ID, in)
			}
			if in >= n.ID {
				return fmt.Errorf("graphopt: node %d not topologically ordered (input %d)", n.ID, in)
			}
		}
	}
	return nil
}

// consumers returns how many nodes consume each node's output.
func (g *Graph) consumers() []int {
	uses := make([]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			uses[in]++
		}
	}
	return uses
}

// PassStats records what a pass changed.
type PassStats struct {
	Name    string
	Applied int
}

// FuseConvBNReLU merges conv→bn→relu, conv→bn, and conv→relu chains into
// single fused operators (operator fusion). Fusion requires the intermediate
// values to have a single consumer.
func (g *Graph) FuseConvBNReLU() PassStats {
	st := PassStats{Name: "operator-fusion"}
	uses := g.consumers()
	remove := make(map[int]bool)
	for _, n := range g.Nodes {
		if n.Op != "conv" && n.Op != "dwconv" {
			continue
		}
		cur := n
		// Chain BN then ReLU greedily.
		for {
			next := g.soleConsumer(cur.ID, uses)
			if next == nil {
				break
			}
			if next.Op == "batchnorm" && !remove[next.ID] {
				n.Op += "+bn"
				n.Folded = true // BN scale/shift folded into conv weights
				remove[next.ID] = true
				cur = next
				st.Applied++
				continue
			}
			if next.Op == "relu" && !remove[next.ID] {
				n.Op += "+relu"
				remove[next.ID] = true
				cur = next
				st.Applied++
			}
			break
		}
	}
	g.contract(remove)
	return st
}

// soleConsumer returns the unique consumer of node id, or nil.
func (g *Graph) soleConsumer(id int, uses []int) *Node {
	if uses[id] != 1 {
		return nil
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in == id {
				return n
			}
		}
	}
	return nil
}

// contract removes nodes, rewiring consumers to the removed node's first
// input, and renumbers IDs.
func (g *Graph) contract(remove map[int]bool) {
	if len(remove) == 0 {
		return
	}
	// Forward each removed node to its first input transitively.
	fwd := make([]int, len(g.Nodes))
	for i := range fwd {
		fwd[i] = i
	}
	for id := range remove {
		in := -1
		if len(g.Nodes[id].Inputs) > 0 {
			in = g.Nodes[id].Inputs[0]
		}
		fwd[id] = in
	}
	resolve := func(id int) int {
		for id >= 0 && remove[id] {
			id = fwd[id]
		}
		return id
	}
	var kept []*Node
	newID := make([]int, len(g.Nodes))
	for _, n := range g.Nodes {
		if remove[n.ID] {
			newID[n.ID] = -1
			continue
		}
		newID[n.ID] = len(kept)
		kept = append(kept, n)
	}
	g.byName = make(map[string]int)
	for _, n := range kept {
		var ins []int
		for _, in := range n.Inputs {
			r := resolve(in)
			if r >= 0 {
				ins = append(ins, newID[r])
			}
		}
		n.Inputs = ins
		n.ID = newID[n.ID]
		if n.Layer != nil {
			g.byName[n.Layer.Name] = n.ID
		}
	}
	g.Nodes = kept
}

// FoldConstants counts BN parameters folded into the preceding conv weights
// during fusion (constant folding): every fused "+bn" stage has its scale and
// shift folded, removing 4·C runtime parameters.
func (g *Graph) FoldConstants() PassStats {
	st := PassStats{Name: "constant-folding"}
	for _, n := range g.Nodes {
		if n.Layer != nil && n.Folded {
			st.Applied++
		}
	}
	return st
}

// ReplaceOps applies operation replacement: an FC whose input is 1×1 spatial
// becomes a 1×1 convolution, unifying the executor's kernel set (the paper's
// "operation replacement" beyond TVM's pass list).
func (g *Graph) ReplaceOps() PassStats {
	st := PassStats{Name: "operation-replacement"}
	for _, n := range g.Nodes {
		if n.Op == "fc" && n.Layer != nil && n.Layer.InH == 1 && n.Layer.InW == 1 {
			n.Op = "conv1x1"
			st.Applied++
		}
	}
	return st
}

// SelectLayouts performs the data-layout transform pass: depthwise convs
// prefer NHWC (channel-innermost vectorizes across C), standard convs NCHW.
// A layout-cast is counted whenever a node's producer uses a different
// layout.
func (g *Graph) SelectLayouts() (PassStats, int) {
	st := PassStats{Name: "layout-transform"}
	for _, n := range g.Nodes {
		if n.Layer != nil && n.Layer.Kind == model.DWConv {
			n.Layout = "NHWC"
			st.Applied++
		} else {
			n.Layout = "NCHW"
		}
	}
	casts := 0
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if g.Nodes[in].Layout != n.Layout {
				casts++
			}
		}
	}
	return st, casts
}

// MemoryPlan computes a static activation-memory plan with liveness-based
// buffer reuse and returns (planned bytes, naive sum bytes). Buffers are
// assigned greedily: a freed buffer is reused for the next tensor that fits.
func (g *Graph) MemoryPlan() (planned, naive int64) {
	type buffer struct {
		size int64
		free bool
	}
	lastUse := make([]int, len(g.Nodes))
	for i := range lastUse {
		lastUse[i] = i
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if n.ID > lastUse[in] {
				lastUse[in] = n.ID
			}
		}
	}
	outBytes := func(n *Node) int64 {
		if n.Layer == nil {
			return 0
		}
		l := n.Layer
		return 4 * int64(l.OutC) * int64(max(l.OutH, 1)) * int64(max(l.OutW, 1))
	}
	var pool []buffer
	assigned := make([]int, len(g.Nodes))
	for i := range assigned {
		assigned[i] = -1
	}
	for _, n := range g.Nodes {
		sz := outBytes(n)
		naive += sz
		if sz == 0 {
			continue
		}
		// Free buffers whose tensors died before this node.
		for id, b := range assigned {
			if b >= 0 && lastUse[id] < n.ID {
				pool[b].free = true
				assigned[id] = -2 // released
			}
		}
		// First-fit reuse.
		slot := -1
		for bi := range pool {
			if pool[bi].free && pool[bi].size >= sz {
				slot = bi
				break
			}
		}
		if slot < 0 {
			pool = append(pool, buffer{size: sz})
			slot = len(pool) - 1
		}
		pool[slot].free = false
		assigned[n.ID] = slot
	}
	for _, b := range pool {
		planned += b.size
	}
	return planned, naive
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Optimize runs the full pass pipeline and returns per-pass stats.
func Optimize(g *Graph) []PassStats {
	var out []PassStats
	out = append(out, g.FuseConvBNReLU())
	out = append(out, g.FoldConstants())
	out = append(out, g.ReplaceOps())
	layout, _ := g.SelectLayouts()
	out = append(out, layout)
	return out
}
