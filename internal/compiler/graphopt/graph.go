// Package graphopt implements the computational-graph level of PatDNN's
// compiler (paper Section 5, Table 1): the model is converted into a graph IR
// and optimized with operator fusion, constant folding (BN folding), operation
// replacement, data-layout selection, and a liveness-based static memory plan
// with buffer reuse. These are the optimizations PatDNN shares with TVM/MNN;
// the pattern-specific passes live in the sibling packages.
package graphopt

import (
	"fmt"

	"patdnn/internal/model"
)

// Node is one operator in the graph IR.
type Node struct {
	ID     int
	Op     string // "conv", "conv+relu", "conv+bn+relu", "fc", "add", ...
	Layer  *model.Layer
	Inputs []int
	// Layout is the chosen activation layout ("NCHW" or "NHWC").
	Layout string
	// Folded marks operators whose parameters were constant-folded away.
	Folded bool
	// BN is the BatchNorm layer absorbed into this conv by operator fusion;
	// the executable lowering folds its scale/shift into the conv weights and
	// bias at compile time (nil when no BN was fused).
	BN *model.Layer
	// FusedReLU marks a conv/fc whose following ReLU runs as a fused epilogue.
	FusedReLU bool
	// Residual marks a conv that absorbed the residual Add feeding on its
	// output: Inputs[len(Inputs)-1] is the shortcut edge, and the executable
	// epilogue initializes the output with the shortcut instead of running a
	// separate elementwise pass.
	Residual bool
}

// Graph is a DAG of nodes in topological order (Inputs always reference
// lower IDs).
type Graph struct {
	Nodes []*Node
	// byName maps the producing model-layer name to node ID, for shortcuts.
	byName map[string]int
}

// FromModel lowers a model into the graph IR.
func FromModel(m *model.Model) *Graph {
	g := &Graph{byName: make(map[string]int)}
	prev := -1
	for _, l := range m.Layers {
		n := &Node{ID: len(g.Nodes), Op: l.Kind.String(), Layer: l, Layout: "NCHW"}
		if prev >= 0 {
			n.Inputs = append(n.Inputs, prev)
		}
		if l.Kind == model.Add {
			// Inputs[0] is the main (conv) path, Inputs[1] the shortcut. When
			// a branch layer sits between the main path and the add — a ResNet
			// projection conv, or an SR-head skip upsample — prev IS the
			// branch: the add combines the node before the branch with the
			// branch's output, not the raw block input.
			if prev >= 0 && IsBranchLayer(g.Nodes[prev].Layer) {
				n.Inputs = nil
				if prev-1 >= 0 {
					n.Inputs = append(n.Inputs, prev-1)
				}
				n.Inputs = append(n.Inputs, prev)
			} else if l.ShortcutOf != "" {
				if src, ok := g.byName[l.ShortcutOf]; ok {
					n.Inputs = append(n.Inputs, src)
				}
			}
		}
		if IsBranchLayer(l) {
			// Branch layers feed from the referenced earlier layer, not prev.
			n.Inputs = nil
			if src, ok := g.byName[l.ShortcutOf]; ok {
				n.Inputs = append(n.Inputs, src)
			}
		}
		g.Nodes = append(g.Nodes, n)
		g.byName[l.Name] = n.ID
		prev = n.ID
	}
	return g
}

// IsBranchLayer reports whether l is a side-branch producer: it reads the
// layer named by ShortcutOf instead of the preceding layer, and the add that
// follows consumes its output as the shortcut operand. ResNet projection
// convs and skip upsamples (SR head) are the two branch forms. Exported so
// the dense reference walk applies the identical wiring rule.
func IsBranchLayer(l *model.Layer) bool {
	if l == nil {
		return false
	}
	return l.Projection || (l.Kind == model.Upsample && l.ShortcutOf != "")
}

// Validate checks topological ordering and input validity.
func (g *Graph) Validate() error {
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in < 0 || in >= len(g.Nodes) {
				return fmt.Errorf("graphopt: node %d references missing input %d", n.ID, in)
			}
			if in >= n.ID {
				return fmt.Errorf("graphopt: node %d not topologically ordered (input %d)", n.ID, in)
			}
		}
	}
	return nil
}

// consumers returns how many nodes consume each node's output.
func (g *Graph) consumers() []int {
	uses := make([]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			uses[in]++
		}
	}
	return uses
}

// PassStats records what a pass changed.
type PassStats struct {
	Name    string
	Applied int
}

// FuseConvBNReLU merges conv→bn→relu, conv→bn, and conv→relu chains into
// single fused operators (operator fusion). Fusion requires the intermediate
// values to have a single consumer.
func (g *Graph) FuseConvBNReLU() PassStats {
	st := PassStats{Name: "operator-fusion"}
	uses := g.consumers()
	remove := make(map[int]bool)
	for _, n := range g.Nodes {
		if n.Op != "conv" && n.Op != "dwconv" && n.Op != "convtranspose" {
			continue
		}
		cur := n
		// Chain BN then ReLU greedily.
		for {
			next := g.soleConsumer(cur.ID, uses)
			if next == nil {
				break
			}
			if next.Op == "batchnorm" && !remove[next.ID] {
				n.Op += "+bn"
				n.Folded = true // BN scale/shift folded into conv weights
				n.BN = next.Layer
				remove[next.ID] = true
				cur = next
				st.Applied++
				continue
			}
			if next.Op == "relu" && !remove[next.ID] {
				n.Op += "+relu"
				n.FusedReLU = true
				remove[next.ID] = true
				cur = next
				st.Applied++
			}
			break
		}
	}
	g.contract(remove)
	return st
}

// FuseResidual merges each residual Add (and a ReLU immediately following it)
// into the conv producing the add's main input, so bottleneck tails never
// materialize a separate elementwise pass: the conv's epilogue initializes the
// output planes with the shortcut instead. The shortcut edge is appended to
// the conv's Inputs, which may break topological order (ResNet projection
// shortcuts are emitted after the main-path conv), so the pass finishes with a
// topological re-sort. Run after FuseConvBNReLU.
func (g *Graph) FuseResidual() PassStats {
	st := PassStats{Name: "residual-fusion"}
	uses := g.consumers()
	remove := make(map[int]bool)
	for _, n := range g.Nodes {
		if n.Layer == nil || n.Layer.Kind != model.Add || len(n.Inputs) != 2 {
			continue
		}
		main := g.Nodes[n.Inputs[0]]
		// The epilogue initializes the output before the conv accumulates, so
		// fusion requires the main input to be a conv (forward or transposed)
		// whose only consumer is this add, with no ReLU already fused (ReLU
		// must run after the add).
		if main.Layer == nil ||
			(!main.Layer.IsConv() && main.Layer.Kind != model.ConvTranspose) ||
			uses[main.ID] != 1 || main.FusedReLU || main.Residual {
			continue
		}
		main.Residual = true
		main.Inputs = append(main.Inputs, n.Inputs[1])
		main.Op += "+add"
		remove[n.ID] = true
		st.Applied++
		if next := g.soleConsumer(n.ID, uses); next != nil &&
			next.Op == "relu" && !remove[next.ID] {
			main.Op += "+relu"
			main.FusedReLU = true
			remove[next.ID] = true
			st.Applied++
		}
	}
	g.contract(remove)
	g.Sort()
	return st
}

// FuseFCReLU folds a ReLU whose sole producer is an FC layer into the FC's
// epilogue (the classifier-head analogue of conv+relu fusion). Kept separate
// from FuseConvBNReLU so the conv-fusion statistics stay comparable with the
// paper's.
func (g *Graph) FuseFCReLU() PassStats {
	st := PassStats{Name: "fc-relu-fusion"}
	uses := g.consumers()
	remove := make(map[int]bool)
	for _, n := range g.Nodes {
		if n.Op != "fc" {
			continue
		}
		if next := g.soleConsumer(n.ID, uses); next != nil &&
			next.Op == "relu" && !remove[next.ID] {
			n.Op += "+relu"
			n.FusedReLU = true
			remove[next.ID] = true
			st.Applied++
		}
	}
	g.contract(remove)
	return st
}

// Sort re-establishes topological order (Kahn's algorithm, stable on the
// current order) and renumbers IDs; fusion passes that introduce back-edges
// structurally (residual shortcuts pointing at later-emitted projections)
// call it to restore the Inputs-reference-lower-IDs invariant.
func (g *Graph) Sort() {
	n := len(g.Nodes)
	indeg := make([]int, n)
	out := make([][]int, n)
	for _, nd := range g.Nodes {
		for _, in := range nd.Inputs {
			indeg[nd.ID]++
			out[in] = append(out[in], nd.ID)
		}
	}
	var order []int
	var ready []int
	for _, nd := range g.Nodes {
		if indeg[nd.ID] == 0 {
			ready = append(ready, nd.ID)
		}
	}
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		for _, c := range out[id] {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if len(order) != n {
		return // cyclic (corrupt) graph: leave as-is for Validate to report
	}
	newID := make([]int, n)
	kept := make([]*Node, n)
	for pos, id := range order {
		newID[id] = pos
	}
	for _, nd := range g.Nodes {
		for i, in := range nd.Inputs {
			nd.Inputs[i] = newID[in]
		}
	}
	for _, nd := range g.Nodes {
		pos := newID[nd.ID]
		nd.ID = pos
		kept[pos] = nd
	}
	g.Nodes = kept
	g.byName = make(map[string]int)
	for _, nd := range g.Nodes {
		if nd.Layer != nil {
			g.byName[nd.Layer.Name] = nd.ID
		}
	}
}

// soleConsumer returns the unique consumer of node id, or nil.
func (g *Graph) soleConsumer(id int, uses []int) *Node {
	if uses[id] != 1 {
		return nil
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in == id {
				return n
			}
		}
	}
	return nil
}

// contract removes nodes, rewiring consumers to the removed node's first
// input, and renumbers IDs.
func (g *Graph) contract(remove map[int]bool) {
	if len(remove) == 0 {
		return
	}
	// Forward each removed node to its first input transitively.
	fwd := make([]int, len(g.Nodes))
	for i := range fwd {
		fwd[i] = i
	}
	for id := range remove {
		in := -1
		if len(g.Nodes[id].Inputs) > 0 {
			in = g.Nodes[id].Inputs[0]
		}
		fwd[id] = in
	}
	resolve := func(id int) int {
		for id >= 0 && remove[id] {
			id = fwd[id]
		}
		return id
	}
	var kept []*Node
	newID := make([]int, len(g.Nodes))
	for _, n := range g.Nodes {
		if remove[n.ID] {
			newID[n.ID] = -1
			continue
		}
		newID[n.ID] = len(kept)
		kept = append(kept, n)
	}
	g.byName = make(map[string]int)
	for _, n := range kept {
		var ins []int
		for _, in := range n.Inputs {
			r := resolve(in)
			if r >= 0 {
				ins = append(ins, newID[r])
			}
		}
		n.Inputs = ins
		n.ID = newID[n.ID]
		if n.Layer != nil {
			g.byName[n.Layer.Name] = n.ID
		}
	}
	g.Nodes = kept
}

// FoldConstants counts BN parameters folded into the preceding conv weights
// during fusion (constant folding): every fused "+bn" stage has its scale and
// shift folded, removing 4·C runtime parameters.
func (g *Graph) FoldConstants() PassStats {
	st := PassStats{Name: "constant-folding"}
	for _, n := range g.Nodes {
		if n.Layer != nil && n.Folded {
			st.Applied++
		}
	}
	return st
}

// ReplaceOps applies operation replacement: an FC whose input is 1×1 spatial
// becomes a 1×1 convolution, unifying the executor's kernel set (the paper's
// "operation replacement" beyond TVM's pass list).
func (g *Graph) ReplaceOps() PassStats {
	st := PassStats{Name: "operation-replacement"}
	for _, n := range g.Nodes {
		if n.Op == "fc" && n.Layer != nil && n.Layer.InH == 1 && n.Layer.InW == 1 {
			n.Op = "conv1x1"
			st.Applied++
		}
	}
	return st
}

// SelectLayouts performs the data-layout transform pass: depthwise convs
// prefer NHWC (channel-innermost vectorizes across C), standard convs NCHW.
// A layout-cast is counted whenever a node's producer uses a different
// layout.
func (g *Graph) SelectLayouts() (PassStats, int) {
	st := PassStats{Name: "layout-transform"}
	for _, n := range g.Nodes {
		if n.Layer != nil && n.Layer.Kind == model.DWConv {
			n.Layout = "NHWC"
			st.Applied++
		} else {
			n.Layout = "NCHW"
		}
	}
	casts := 0
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if g.Nodes[in].Layout != n.Layout {
				casts++
			}
		}
	}
	return st, casts
}

// MemoryPlan computes a static activation-memory plan with liveness-based
// buffer reuse and returns (planned bytes, naive sum bytes). Buffers are
// assigned greedily: a freed buffer is reused for the next tensor that fits.
func (g *Graph) MemoryPlan() (planned, naive int64) {
	type buffer struct {
		size int64
		free bool
	}
	lastUse := make([]int, len(g.Nodes))
	for i := range lastUse {
		lastUse[i] = i
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if n.ID > lastUse[in] {
				lastUse[in] = n.ID
			}
		}
	}
	outBytes := func(n *Node) int64 {
		if n.Layer == nil {
			return 0
		}
		l := n.Layer
		return 4 * int64(l.OutC) * int64(max(l.OutH, 1)) * int64(max(l.OutW, 1))
	}
	var pool []buffer
	assigned := make([]int, len(g.Nodes))
	for i := range assigned {
		assigned[i] = -1
	}
	for _, n := range g.Nodes {
		sz := outBytes(n)
		naive += sz
		if sz == 0 {
			continue
		}
		// Free buffers whose tensors died before this node.
		for id, b := range assigned {
			if b >= 0 && lastUse[id] < n.ID {
				pool[b].free = true
				assigned[id] = -2 // released
			}
		}
		// First-fit reuse.
		slot := -1
		for bi := range pool {
			if pool[bi].free && pool[bi].size >= sz {
				slot = bi
				break
			}
		}
		if slot < 0 {
			pool = append(pool, buffer{size: sz})
			slot = len(pool) - 1
		}
		pool[slot].free = false
		assigned[n.ID] = slot
	}
	for _, b := range pool {
		planned += b.size
	}
	return planned, naive
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Optimize runs the full pass pipeline and returns per-pass stats.
func Optimize(g *Graph) []PassStats {
	var out []PassStats
	out = append(out, g.FuseConvBNReLU())
	out = append(out, g.FoldConstants())
	out = append(out, g.ReplaceOps())
	layout, _ := g.SelectLayouts()
	out = append(out, layout)
	return out
}
