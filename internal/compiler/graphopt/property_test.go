package graphopt

import (
	"testing"
	"testing/quick"

	"patdnn/internal/model"
)

// Property: for every model, the full optimization pipeline preserves graph
// validity, never grows the node count, and keeps the memory plan within the
// naive bound.
func TestOptimizePropertyAllModels(t *testing.T) {
	models := model.All()
	f := func(pick uint8) bool {
		m := models[int(pick)%len(models)]
		g := FromModel(m)
		before := len(g.Nodes)
		Optimize(g)
		if err := g.Validate(); err != nil {
			return false
		}
		if len(g.Nodes) > before {
			return false
		}
		planned, naive := g.MemoryPlan()
		return planned > 0 && planned <= naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: fusion never orphans a residual add — both inputs stay resolvable.
func TestFusionKeepsResidualInputs(t *testing.T) {
	for _, m := range []*model.Model{model.ResNet50("imagenet"), model.MobileNetV2("cifar10")} {
		g := FromModel(m)
		wantAdds := 0
		for _, n := range g.Nodes {
			if n.Op == "add" && len(n.Inputs) == 2 {
				wantAdds++
			}
		}
		g.FuseConvBNReLU()
		gotAdds := 0
		for _, n := range g.Nodes {
			if n.Op == "add" && len(n.Inputs) == 2 {
				gotAdds++
			}
		}
		if gotAdds != wantAdds {
			t.Fatalf("%s: residual adds %d -> %d after fusion", m.Name, wantAdds, gotAdds)
		}
	}
}

func TestMemoryPlanDeterministic(t *testing.T) {
	g1 := FromModel(model.VGG16("imagenet"))
	g2 := FromModel(model.VGG16("imagenet"))
	p1, n1 := g1.MemoryPlan()
	p2, n2 := g2.MemoryPlan()
	if p1 != p2 || n1 != n2 {
		t.Fatalf("memory plan not deterministic: %d/%d vs %d/%d", p1, n1, p2, n2)
	}
}
