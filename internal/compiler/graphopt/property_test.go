package graphopt

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"patdnn/internal/model"
)

// Property: for every model, the full optimization pipeline preserves graph
// validity, never grows the node count, and keeps the memory plan within the
// naive bound.
func TestOptimizePropertyAllModels(t *testing.T) {
	models := model.All()
	f := func(pick uint8) bool {
		m := models[int(pick)%len(models)]
		g := FromModel(m)
		before := len(g.Nodes)
		Optimize(g)
		if err := g.Validate(); err != nil {
			return false
		}
		if len(g.Nodes) > before {
			return false
		}
		planned, naive := g.MemoryPlan()
		return planned > 0 && planned <= naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: fusion never orphans a residual add — both inputs stay resolvable.
func TestFusionKeepsResidualInputs(t *testing.T) {
	for _, m := range []*model.Model{model.ResNet50("imagenet"), model.MobileNetV2("cifar10")} {
		g := FromModel(m)
		wantAdds := 0
		for _, n := range g.Nodes {
			if n.Op == "add" && len(n.Inputs) == 2 {
				wantAdds++
			}
		}
		g.FuseConvBNReLU()
		gotAdds := 0
		for _, n := range g.Nodes {
			if n.Op == "add" && len(n.Inputs) == 2 {
				gotAdds++
			}
		}
		if gotAdds != wantAdds {
			t.Fatalf("%s: residual adds %d -> %d after fusion", m.Name, wantAdds, gotAdds)
		}
	}
}

func TestMemoryPlanDeterministic(t *testing.T) {
	g1 := FromModel(model.VGG16("imagenet"))
	g2 := FromModel(model.VGG16("imagenet"))
	p1, n1 := g1.MemoryPlan()
	p2, n2 := g2.MemoryPlan()
	if p1 != p2 || n1 != n2 {
		t.Fatalf("memory plan not deterministic: %d/%d vs %d/%d", p1, n1, p2, n2)
	}
}

// randomLayeredModel emits a random but structurally legal layer chain —
// plain conv stacks, residual blocks with optional projections, classifier
// tails — exercising every shape the fusion passes pattern-match on. Only
// the fields the graph passes consult (Kind, Name, ShortcutOf, Projection,
// coarse output geometry for the memory plan) need to be meaningful.
func randomLayeredModel(r *rand.Rand) *model.Model {
	m := &model.Model{Name: "Rand", Short: "rand", Dataset: "synthetic", Classes: 4}
	id := 0
	mk := func(prefix string, kind model.OpKind) *model.Layer {
		id++
		l := &model.Layer{Name: fmt.Sprintf("%s%d", prefix, id), Kind: kind,
			OutC: 4, OutH: 4, OutW: 4}
		m.Layers = append(m.Layers, l)
		return l
	}
	mk("input", model.Input)
	last := m.Layers[0].Name
	blocks := 1 + r.Intn(7)
	for b := 0; b < blocks; b++ {
		switch r.Intn(4) {
		case 0: // plain conv [+ bn] [+ relu]
			last = mk("conv", model.Conv).Name
			if r.Intn(2) == 0 {
				last = mk("bn", model.BatchNorm).Name
			}
			if r.Intn(2) == 0 {
				last = mk("relu", model.ReLU).Name
			}
		case 1: // residual block: convs, optional projection, add [+ relu]
			entry := last
			last = mk("conv", model.Conv).Name
			if r.Intn(2) == 0 {
				last = mk("bn", model.BatchNorm).Name
			}
			last = mk("relu", model.ReLU).Name
			last = mk("conv", model.Conv).Name
			if r.Intn(2) == 0 {
				last = mk("bn", model.BatchNorm).Name
			}
			if r.Intn(2) == 0 {
				proj := mk("proj", model.Conv)
				proj.Projection = true
				proj.ShortcutOf = entry
				last = proj.Name
			}
			add := mk("add", model.Add)
			add.ShortcutOf = entry
			last = add.Name
			if r.Intn(2) == 0 {
				last = mk("relu", model.ReLU).Name
			}
		case 2: // pool
			last = mk("pool", model.MaxPool).Name
		case 3: // classifier tail: fc [+ relu]
			last = mk("fc", model.FC).Name
			if r.Intn(2) == 0 {
				last = mk("relu", model.ReLU).Name
			}
		}
	}
	_ = last
	return m
}

// TestFusionPassesPreserveInvariantsOnRandomDAGs: for random layered models,
// every fusion pass (FuseConvBNReLU, FuseResidual, FuseFCReLU) must preserve
// acyclicity and topological validity, and its node-count accounting must
// balance — exactly one node leaves the graph per applied fusion step.
func TestFusionPassesPreserveInvariantsOnRandomDAGs(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := FromModel(randomLayeredModel(r))
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: FromModel: %v", seed, err)
		}
		passes := []struct {
			name string
			run  func() PassStats
		}{
			{"FuseConvBNReLU", g.FuseConvBNReLU},
			{"FuseResidual", g.FuseResidual},
			{"FuseFCReLU", g.FuseFCReLU},
		}
		for _, p := range passes {
			before := len(g.Nodes)
			st := p.run()
			if err := g.Validate(); err != nil {
				t.Fatalf("seed %d: %s broke the graph: %v", seed, p.name, err)
			}
			if removed := before - len(g.Nodes); removed != st.Applied {
				t.Fatalf("seed %d: %s removed %d nodes but reported %d applied",
					seed, p.name, removed, st.Applied)
			}
			for _, n := range g.Nodes {
				if n.Residual && len(n.Inputs) < 2 {
					t.Fatalf("seed %d: %s left residual conv %d without a shortcut edge", seed, p.name, n.ID)
				}
			}
		}
		// No fusible pattern may survive the pipeline: a remaining relu/bn
		// whose sole producer is a conv means a pass missed its own pattern.
		uses := g.consumers()
		for _, n := range g.Nodes {
			if n.Op != "relu" && n.Op != "batchnorm" {
				continue
			}
			if len(n.Inputs) != 1 {
				continue
			}
			prod := g.Nodes[n.Inputs[0]]
			if prod.Layer == nil || !prod.Layer.IsConv() || uses[prod.ID] != 1 {
				continue
			}
			if n.Op == "batchnorm" && prod.BN == nil {
				t.Fatalf("seed %d: unfused conv→bn chain survived (conv %d → bn %d)", seed, prod.ID, n.ID)
			}
			if n.Op == "relu" && !prod.FusedReLU {
				t.Fatalf("seed %d: unfused conv→relu chain survived (conv %d → relu %d)", seed, prod.ID, n.ID)
			}
		}
		// The memory plan over the fused graph stays within the naive bound.
		planned, naive := g.MemoryPlan()
		if planned <= 0 || planned > naive {
			t.Fatalf("seed %d: memory plan %d outside (0, naive=%d]", seed, planned, naive)
		}
	}
}

// edgeSet captures the graph's edge relation by stable node names, so
// re-sorts and renumberings can be compared structurally.
func edgeSet(g *Graph) map[string]bool {
	set := make(map[string]bool)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			set[g.Nodes[in].Layer.Name+"->"+n.Layer.Name] = true
		}
	}
	return set
}

// TestSortRestoresTopologyOnRandomDAGs: for random DAGs whose node IDs
// deliberately violate the Inputs-reference-lower-IDs invariant (the state
// residual fusion leaves behind), Sort must restore a valid topological
// order while preserving the node multiset and the edge relation exactly.
func TestSortRestoresTopologyOnRandomDAGs(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		// rank is a hidden topological order; edges only go rank-upward, so
		// the graph is acyclic no matter how IDs are assigned.
		rank := r.Perm(n)
		byRank := make([]int, n) // rank position -> node ID
		for id, rk := range rank {
			byRank[rk] = id
		}
		g := &Graph{byName: make(map[string]int)}
		for id := 0; id < n; id++ {
			nd := &Node{ID: id, Op: "conv",
				Layer: &model.Layer{Name: fmt.Sprintf("n%d", id), Kind: model.Conv,
					OutC: 2, OutH: 2, OutW: 2}}
			g.Nodes = append(g.Nodes, nd)
			g.byName[nd.Layer.Name] = id
		}
		for id := 0; id < n; id++ {
			rk := rank[id]
			for e := 0; e < 1+r.Intn(2) && rk > 0; e++ {
				g.Nodes[id].Inputs = append(g.Nodes[id].Inputs, byRank[r.Intn(rk)])
			}
		}
		nodesBefore := len(g.Nodes)
		edgesBefore := edgeSet(g)

		g.Sort()
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: Sort left an invalid graph: %v", seed, err)
		}
		if len(g.Nodes) != nodesBefore {
			t.Fatalf("seed %d: Sort changed node count %d -> %d", seed, nodesBefore, len(g.Nodes))
		}
		edgesAfter := edgeSet(g)
		if len(edgesAfter) != len(edgesBefore) {
			t.Fatalf("seed %d: Sort changed edge count %d -> %d", seed, len(edgesBefore), len(edgesAfter))
		}
		for e := range edgesBefore {
			if !edgesAfter[e] {
				t.Fatalf("seed %d: Sort dropped edge %s", seed, e)
			}
		}
		for pos, nd := range g.Nodes {
			if nd.ID != pos {
				t.Fatalf("seed %d: node at position %d has ID %d", seed, pos, nd.ID)
			}
			if got := g.byName[nd.Layer.Name]; got != pos {
				t.Fatalf("seed %d: byName[%s] = %d, want %d", seed, nd.Layer.Name, got, pos)
			}
		}

		// Idempotence: a sorted graph re-sorts to the identical order.
		var order []string
		for _, nd := range g.Nodes {
			order = append(order, nd.Layer.Name)
		}
		g.Sort()
		for i, nd := range g.Nodes {
			if nd.Layer.Name != order[i] {
				t.Fatalf("seed %d: Sort not idempotent at position %d: %s vs %s",
					seed, i, nd.Layer.Name, order[i])
			}
		}
	}
}

// TestFullPipelinePlusResidualFusionOnRandomModels runs the whole optimizer
// (Optimize + FuseResidual + FuseFCReLU, the execgraph pass schedule) over
// random models and checks the end state once more — the composition, not
// just each pass in isolation.
func TestFullPipelinePlusResidualFusionOnRandomModels(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := randomLayeredModel(r)
		g := FromModel(m)
		before := len(g.Nodes)
		Optimize(g)
		g.FuseResidual()
		g.FuseFCReLU()
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: pipeline broke the graph: %v", seed, err)
		}
		if len(g.Nodes) > before {
			t.Fatalf("seed %d: pipeline grew the graph %d -> %d", seed, before, len(g.Nodes))
		}
		// Every model layer is either present as a node or fused away into
		// one: no layer may simply vanish unaccounted.
		seen := make(map[string]bool)
		for _, n := range g.Nodes {
			if n.Layer != nil {
				seen[n.Layer.Name] = true
			}
			if n.BN != nil {
				seen[n.BN.Name] = true
			}
		}
		fusedAway := 0
		for _, n := range g.Nodes {
			for _, tag := range []bool{n.FusedReLU, n.Residual} {
				if tag {
					fusedAway++
				}
			}
		}
		missing := 0
		for _, l := range m.Layers {
			if !seen[l.Name] {
				missing++
			}
		}
		if missing > fusedAway {
			t.Fatalf("seed %d: %d layers vanished but only %d fusion epilogues exist", seed, missing, fusedAway)
		}
	}
}
