package graphopt

import (
	"strings"
	"testing"

	"patdnn/internal/model"
)

func TestFromModelValid(t *testing.T) {
	for _, m := range model.All() {
		g := FromModel(m)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s/%s: %v", m.Name, m.Dataset, err)
		}
		if len(g.Nodes) != len(m.Layers) {
			t.Fatalf("%s: node count %d != layer count %d", m.Name, len(g.Nodes), len(m.Layers))
		}
	}
}

func TestResidualEdgesPresent(t *testing.T) {
	g := FromModel(model.ResNet50("imagenet"))
	twoInputs := 0
	for _, n := range g.Nodes {
		if n.Op == "add" && len(n.Inputs) == 2 {
			twoInputs++
		}
	}
	// ResNet-50 has 16 residual adds.
	if twoInputs != 16 {
		t.Fatalf("residual adds with 2 inputs = %d, want 16", twoInputs)
	}
}

func TestFuseVGG(t *testing.T) {
	// VGG: every conv is followed by a ReLU with a single consumer; all 13
	// fuse. The 2 FC ReLUs stay (they follow fc, not conv).
	g := FromModel(model.VGG16("imagenet"))
	st := g.FuseConvBNReLU()
	if st.Applied != 13 {
		t.Fatalf("fusions = %d, want 13", st.Applied)
	}
	fused := 0
	for _, n := range g.Nodes {
		if n.Op == "conv+relu" {
			fused++
		}
		if n.Op == "batchnorm" {
			t.Fatal("VGG has no BN, found one")
		}
	}
	if fused != 13 {
		t.Fatalf("conv+relu nodes = %d, want 13", fused)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFuseResNetCreatesConvBNReLU(t *testing.T) {
	g := FromModel(model.ResNet50("imagenet"))
	before := len(g.Nodes)
	st := g.FuseConvBNReLU()
	if st.Applied == 0 {
		t.Fatal("no fusions on ResNet")
	}
	hasCBR := false
	for _, n := range g.Nodes {
		if n.Op == "conv+bn+relu" {
			hasCBR = true
		}
	}
	if !hasCBR {
		t.Fatal("expected conv+bn+relu fused nodes")
	}
	if len(g.Nodes) >= before {
		t.Fatal("fusion did not shrink the graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Shortcut adds must still have both inputs after contraction.
	adds := 0
	for _, n := range g.Nodes {
		if n.Op == "add" && len(n.Inputs) == 2 {
			adds++
		}
	}
	if adds != 16 {
		t.Fatalf("adds with both inputs after fusion = %d, want 16", adds)
	}
}

func TestFoldConstants(t *testing.T) {
	g := FromModel(model.ResNet50("imagenet"))
	g.FuseConvBNReLU()
	st := g.FoldConstants()
	if st.Applied == 0 {
		t.Fatal("no BN constants folded")
	}
}

func TestReplaceOps(t *testing.T) {
	g := FromModel(model.ResNet50("imagenet"))
	st := g.ReplaceOps()
	if st.Applied != 1 {
		t.Fatalf("replacements = %d, want 1 (the classifier FC)", st.Applied)
	}
	found := false
	for _, n := range g.Nodes {
		if n.Op == "conv1x1" {
			found = true
		}
	}
	if !found {
		t.Fatal("fc not replaced by conv1x1")
	}
	// VGG's fc1 consumes a flattened 25088-vector (1x1 spatial after
	// flatten), so it is also replaceable; check at least it doesn't crash
	// and applies consistently.
	g2 := FromModel(model.VGG16("imagenet"))
	st2 := g2.ReplaceOps()
	if st2.Applied != 3 {
		t.Fatalf("VGG replacements = %d, want 3", st2.Applied)
	}
}

func TestSelectLayouts(t *testing.T) {
	g := FromModel(model.MobileNetV2("imagenet"))
	st, casts := g.SelectLayouts()
	if st.Applied == 0 {
		t.Fatal("no NHWC selections for depthwise convs")
	}
	if casts == 0 {
		t.Fatal("expected layout casts between NCHW and NHWC regions")
	}
	g2 := FromModel(model.VGG16("imagenet"))
	_, casts2 := g2.SelectLayouts()
	if casts2 != 0 {
		t.Fatalf("VGG is homogeneous NCHW; casts = %d", casts2)
	}
}

func TestMemoryPlanReusesBuffers(t *testing.T) {
	for _, m := range []*model.Model{model.VGG16("imagenet"), model.ResNet50("imagenet")} {
		g := FromModel(m)
		g.FuseConvBNReLU()
		planned, naive := g.MemoryPlan()
		if planned <= 0 || naive <= 0 {
			t.Fatalf("%s: empty plan", m.Name)
		}
		if planned >= naive {
			t.Fatalf("%s: memory plan does not reuse buffers: %d >= %d", m.Name, planned, naive)
		}
		// Static planning should cut activation memory by a large factor on
		// deep feed-forward nets.
		if float64(planned) > 0.5*float64(naive) {
			t.Fatalf("%s: weak reuse: planned %d vs naive %d", m.Name, planned, naive)
		}
	}
}

func TestOptimizePipeline(t *testing.T) {
	g := FromModel(model.ResNet50("cifar10"))
	stats := Optimize(g)
	if len(stats) != 4 {
		t.Fatalf("expected 4 passes, got %d", len(stats))
	}
	names := make([]string, 0, len(stats))
	for _, s := range stats {
		names = append(names, s.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"operator-fusion", "constant-folding",
		"operation-replacement", "layout-transform"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing pass %s in %s", want, joined)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
