package execgraph

// Execution over the static memory plan. An Executor owns per-batch-item
// states — one arena slice plus prebuilt tensor views over the plan's buffer
// offsets — and prebuilt per-node kernels, so a steady-state batched sweep
// performs zero allocations: no scratch-pool Get/Put per layer, no per-call
// closures, no padding buffers materialized outside the arena. Conv-like
// nodes parallelize across batch × output-channels in one ParallelFor (the
// serving engine's batched layer sweep); item-local nodes (pools, copies,
// softmax) parallelize across the batch.

import (
	"sync"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

// state is one batch item's execution state: the arena and the per-node
// tensor views aliasing it.
type state struct {
	arena []float32
	out   []*tensor.Tensor // per node: output view over the node's slot
	pad   []*tensor.Tensor // per node: padding-scratch view, or nil
}

func (p *Plan) newState() *state {
	st := &state{
		arena: make([]float32, p.arenaLen),
		out:   make([]*tensor.Tensor, len(p.Nodes)),
		pad:   make([]*tensor.Tensor, len(p.Nodes)),
	}
	for i, n := range p.Nodes {
		off := p.bufOffsets[n.slot]
		sz := n.OutC * n.OutH * n.OutW
		st.out[i] = tensor.FromSlice(st.arena[off:off+sz], n.OutC, n.OutH, n.OutW)
		if n.padSlot >= 0 {
			c := n.Plan.Conv
			ph, pw := c.InH+2*c.Pad, c.InW+2*c.Pad
			poff := p.bufOffsets[n.padSlot]
			st.pad[i] = tensor.FromSlice(st.arena[poff:poff+c.InChannels()*ph*pw],
				c.InChannels(), ph, pw)
		}
	}
	return st
}

// Executor executes a Plan over request batches. Not safe for concurrent use
// by multiple goroutines; get one per call site via GetExecutor (pooled) or
// NewExecutor (owned). It grows to the largest batch it has seen and holds
// that state for reuse.
type Executor struct {
	plan   *Plan
	states []*state

	// Per-call inputs, published to the prebuilt node kernels.
	n    int
	xs   []*tensor.Tensor
	outs []*tensor.Tensor

	// Prebuilt kernels (one closure per node, built once): padFns pad the
	// node input into arena scratch (batch-parallel), runFns execute the node
	// (batch- or batch×channel-parallel depending on wide), finish copies the
	// sink into the caller's outputs.
	padFns []func(s, e int)
	runFns []func(s, e int)
	wide   []int // ParallelFor domain multiplier: OutC for conv-like nodes, else 1
	finish func(s, e int)
}

// execPool is a tiny typed sync.Pool wrapper so Plan can embed it without
// exposing sync.Pool in its API surface.
type execPool struct {
	p sync.Pool
}

// NewExecutor builds an executor for the plan.
func (p *Plan) NewExecutor() *Executor {
	ex := &Executor{plan: p}
	ex.build()
	return ex
}

// GetExecutor borrows a pooled executor; return it with PutExecutor. The pool
// caps steady-state allocation at zero once the working set is warm.
func (p *Plan) GetExecutor() *Executor {
	if ex, ok := p.execs.p.Get().(*Executor); ok {
		return ex
	}
	return p.NewExecutor()
}

// PutExecutor returns a borrowed executor to the plan's pool.
func (p *Plan) PutExecutor(ex *Executor) { p.execs.p.Put(ex) }

// Execute runs one batch with a borrowed executor: xs are the inputs
// ([InC,InH,InW] each), outs the caller-provided outputs ([OutC,OutH,OutW]
// each, contents overwritten). len(outs) must equal len(xs).
func (p *Plan) Execute(pool *runtime.Pool, xs, outs []*tensor.Tensor) {
	ex := p.GetExecutor()
	ex.Run(pool, xs, outs)
	p.PutExecutor(ex)
}

// ensure grows the per-item state set to n entries.
func (ex *Executor) ensure(n int) {
	for len(ex.states) < n {
		ex.states = append(ex.states, ex.plan.newState())
	}
}

// Run executes one batch. outs[i] receives the sink node's output for xs[i].
func (ex *Executor) Run(pool *runtime.Pool, xs, outs []*tensor.Tensor) {
	n := len(xs)
	ex.ensure(n)
	ex.n, ex.xs, ex.outs = n, xs, outs
	for i := range ex.plan.Nodes {
		if ex.padFns[i] != nil {
			pool.ParallelFor(n, ex.padFns[i])
		}
		pool.ParallelFor(n*ex.wide[i], ex.runFns[i])
	}
	pool.ParallelFor(n, ex.finish)
	ex.xs, ex.outs = nil, nil
}

// build compiles the per-node kernels once. Each closure captures only the
// executor and its node, reading the per-call batch through ex.n/ex.xs, so
// Run creates no closures and therefore no garbage.
func (ex *Executor) build() {
	p := ex.plan
	ex.padFns = make([]func(s, e int), len(p.Nodes))
	ex.runFns = make([]func(s, e int), len(p.Nodes))
	ex.wide = make([]int, len(p.Nodes))
	for i, n := range p.Nodes {
		i, n := i, n
		ex.wide[i] = 1
		switch n.Kind {
		case KindInput:
			ex.runFns[i] = func(s, e int) {
				for it := s; it < e; it++ {
					copy(ex.states[it].out[i].Data, ex.xs[it].Data)
				}
			}

		case KindConv:
			in0 := n.Inputs[0]
			if n.padSlot >= 0 {
				ex.padFns[i] = func(s, e int) {
					for it := s; it < e; it++ {
						st := ex.states[it]
						codegen.PadInto(st.out[in0], st.pad[i], n.Plan.Conv.Pad)
					}
				}
			}
			ex.wide[i] = n.OutC
			ex.runFns[i] = func(s, e int) {
				for idx := s; idx < e; {
					it, from := idx/n.OutC, idx%n.OutC
					to := from + (e - idx)
					if to > n.OutC {
						to = n.OutC
					}
					st := ex.states[it]
					padded := st.out[in0]
					if st.pad[i] != nil {
						padded = st.pad[i]
					}
					if n.Shortcut >= 0 {
						n.Plan.ExecuteRangeResidual(padded, st.out[i], from, to,
							n.Bias, st.out[n.Shortcut], n.ReLU)
					} else {
						n.Plan.ExecuteRangeFused(padded, st.out[i], from, to,
							n.Bias, n.ReLU)
					}
					idx += to - from
				}
			}

		case KindConvT:
			// Same range decomposition as KindConv, but the pad step scatters
			// the input into the dilated scratch (always present) and the plan
			// is the stride-1 equivalent conv over it.
			in0 := n.Inputs[0]
			ex.padFns[i] = func(s, e int) {
				for it := s; it < e; it++ {
					st := ex.states[it]
					codegen.DilatePadInto(st.out[in0], st.pad[i], n.DilStride, n.Plan.Conv.Pad)
				}
			}
			ex.wide[i] = n.OutC
			ex.runFns[i] = func(s, e int) {
				for idx := s; idx < e; {
					it, from := idx/n.OutC, idx%n.OutC
					to := from + (e - idx)
					if to > n.OutC {
						to = n.OutC
					}
					st := ex.states[it]
					if n.Shortcut >= 0 {
						n.Plan.ExecuteRangeResidual(st.pad[i], st.out[i], from, to,
							n.Bias, st.out[n.Shortcut], n.ReLU)
					} else {
						n.Plan.ExecuteRangeFused(st.pad[i], st.out[i], from, to,
							n.Bias, n.ReLU)
					}
					idx += to - from
				}
			}

		case KindUpsample:
			in0 := n.Inputs[0]
			ex.runFns[i] = func(s, e int) {
				for it := s; it < e; it++ {
					st := ex.states[it]
					tensor.Upsample2DInto(st.out[in0], n.Scale, st.out[i])
				}
			}

		case KindConv1x1:
			in0 := n.Inputs[0]
			ex.wide[i] = n.OutC
			ex.runFns[i] = func(s, e int) {
				for idx := s; idx < e; {
					it, from := idx/n.OutC, idx%n.OutC
					to := from + (e - idx)
					if to > n.OutC {
						to = n.OutC
					}
					st := ex.states[it]
					var sc *tensor.Tensor
					if n.Shortcut >= 0 {
						sc = st.out[n.Shortcut]
					}
					n.Plan1x1.ExecuteRangeFused(st.out[in0], st.out[i], from, to,
						n.Bias, sc, n.ReLU)
					idx += to - from
				}
			}

		case KindFC:
			in0 := n.Inputs[0]
			ex.wide[i] = n.OutC
			ex.runFns[i] = func(s, e int) {
				for idx := s; idx < e; {
					it, from := idx/n.OutC, idx%n.OutC
					to := from + (e - idx)
					if to > n.OutC {
						to = n.OutC
					}
					st := ex.states[it]
					tensor.FCIntoRange(st.out[i], n.W, st.out[in0], n.Bias, n.ReLU, from, to)
					idx += to - from
				}
			}

		case KindMaxPool:
			in0 := n.Inputs[0]
			ex.runFns[i] = func(s, e int) {
				for it := s; it < e; it++ {
					st := ex.states[it]
					tensor.MaxPool2DInto(st.out[in0], n.PoolK, st.out[i])
				}
			}

		case KindGAP:
			in0 := n.Inputs[0]
			ex.runFns[i] = func(s, e int) {
				for it := s; it < e; it++ {
					st := ex.states[it]
					tensor.AvgPool2DGlobalInto(st.out[in0], st.out[i])
				}
			}

		case KindAdd:
			a, b := n.Inputs[0], n.Inputs[1]
			ex.runFns[i] = func(s, e int) {
				for it := s; it < e; it++ {
					st := ex.states[it]
					tensor.AddInto(st.out[a], st.out[b], st.out[i])
					if n.ReLU {
						tensor.ReLU(st.out[i])
					}
				}
			}

		case KindReLU:
			in0 := n.Inputs[0]
			ex.runFns[i] = func(s, e int) {
				for it := s; it < e; it++ {
					st := ex.states[it]
					copy(st.out[i].Data, st.out[in0].Data)
					tensor.ReLU(st.out[i])
				}
			}

		case KindFlatten:
			in0 := n.Inputs[0]
			ex.runFns[i] = func(s, e int) {
				for it := s; it < e; it++ {
					st := ex.states[it]
					copy(st.out[i].Data, st.out[in0].Data)
				}
			}

		case KindSoftmax:
			in0 := n.Inputs[0]
			ex.runFns[i] = func(s, e int) {
				for it := s; it < e; it++ {
					st := ex.states[it]
					tensor.SoftmaxInto(st.out[in0], st.out[i])
				}
			}
		}
	}
	out := p.output
	ex.finish = func(s, e int) {
		for it := s; it < e; it++ {
			copy(ex.outs[it].Data, ex.states[it].out[out].Data)
		}
	}
}
