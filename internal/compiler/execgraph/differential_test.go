package execgraph

// Differential acceptance tests: the fused graph executor (BN folded into
// conv weights at compile time, residual adds and ReLUs fused into conv
// epilogues, liveness-planned arena buffers) against the dense unfused
// reference forward pass, over the paper's three evaluation networks in
// their CIFAR variants, at both the tuned dense-layout kernels and the
// packed FKW-direct backend. A BN-folding scale/shift bug, a residual
// sign/shape error, or an arena aliasing bug all surface here as a >1e-4
// divergence.

import (
	"testing"

	"patdnn/internal/model"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

func TestDifferentialPaperNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and densely executes all three paper networks")
	}
	nets := []*model.Model{
		model.VGG16("cifar10"),
		model.ResNet50("cifar10"),
		model.MobileNetV2("cifar10"),
	}
	pool := runtime.NewPool(0)
	for _, m := range nets {
		m := m
		t.Run(m.Short, func(t *testing.T) {
			params, err := Generate(m, 8, 3.6, 42)
			if err != nil {
				t.Fatal(err)
			}
			x := genInput(m, 11)
			want, err := Reference(m, params, x)
			if err != nil {
				t.Fatal(err)
			}
			if want.Dim(0) != m.Classes {
				t.Fatalf("reference output has %d classes, want %d", want.Dim(0), m.Classes)
			}
			for _, level := range []string{"tuned", "packed"} {
				plan, err := Compile(m, params, Config{Level: level})
				if err != nil {
					t.Fatalf("level %s: %v", level, err)
				}
				// The paper claim under test: zero BatchNorm nodes execute,
				// and every residual add rides a conv epilogue.
				adds := 0
				for _, l := range m.Layers {
					if l.Kind == model.Add {
						adds++
					}
				}
				for _, n := range plan.Nodes {
					if n.Kind == KindAdd || n.Kind == KindReLU {
						t.Fatalf("level %s: unfused %s node %s in executed plan", level, n.Kind, n.Name)
					}
				}
				if plan.Fused.Residual != adds {
					t.Fatalf("level %s: %d residual adds fused, want %d", level, plan.Fused.Residual, adds)
				}
				if bns := countBN(m); plan.Fused.ConvBN != bns {
					t.Fatalf("level %s: %d BNs folded, want %d", level, plan.Fused.ConvBN, bns)
				}

				// Batched execution: every batch lane must match the dense
				// reference independently (lane 0 and lane 2 share an input).
				xs := []*tensor.Tensor{x, genInput(m, 12), x}
				outs := make([]*tensor.Tensor, len(xs))
				for i := range outs {
					outs[i] = tensor.New(plan.OutC, plan.OutH, plan.OutW)
				}
				plan.Execute(pool, xs, outs)
				for _, lane := range []int{0, 2} {
					if d := outs[lane].MaxAbsDiff(want); d > 1e-4 {
						t.Fatalf("level %s: lane %d diverged from dense reference by %g", level, lane, d)
					}
				}
				want2, err := Reference(m, params, xs[1])
				if err != nil {
					t.Fatal(err)
				}
				if d := outs[1].MaxAbsDiff(want2); d > 1e-4 {
					t.Fatalf("level %s: lane 1 diverged from dense reference by %g", level, d)
				}
			}
		})
	}
}

func countBN(m *model.Model) int {
	n := 0
	for _, l := range m.Layers {
		if l.Kind == model.BatchNorm {
			n++
		}
	}
	return n
}
