// Package execgraph is the executable graph-IR layer of the compiler: it
// lowers a model description through graphopt's computational-graph passes
// (conv+BN+ReLU folding, residual-add fusion, FC-ReLU fusion) into a DAG of
// compiled kernel plans — pattern-pruned 3×3 convolutions via codegen.Plan,
// connectivity-pruned 1×1 convolutions via codegen.Plan1x1, dense FC, pooling,
// and classifier ops — with a liveness-based static memory plan that assigns
// every intermediate tensor a slot in a per-inference arena. BatchNorm is
// folded into the preceding conv's weights and bias at compile time, so the
// executed plan contains zero BatchNorm nodes; residual adds run as conv
// epilogues, so bottleneck tails never materialize a separate elementwise
// pass. This is the layer that turns "compiles VGG-style chains" into "serves
// ResNet-50 and MobileNet-V2 end-to-end" (paper §5.1, Table 1: the graph
// optimizations PatDNN shares with TVM/MNN).
package execgraph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/tensor"
)

// ConvParams holds one pattern-pruned 3×3 (or depthwise 3×3) conv layer's
// parameters before BN folding.
type ConvParams struct {
	Conv *pruned.Conv
	Bias []float32 // nil means zero
}

// DenseParams holds a connectivity-pruned 1×1 conv ([Co,Ci,1,1], zeros
// outside the kept kernels) or a dense FC layer ([Out,In]).
type DenseParams struct {
	W    *tensor.Tensor
	Bias []float32 // nil means zero
}

// BNParams holds inference-time BatchNorm statistics and affine parameters.
type BNParams struct {
	Gamma, Beta, Mean, Var []float32
	Eps                    float32
}

// Params supplies every layer's parameters for Compile, keyed by layer name.
// Both the graph compiler and the dense Reference walk consume the same
// Params, which is what makes the differential tests meaningful: the executor
// folds BN and fuses residuals at compile time, the reference applies them as
// separate ops, and the outputs must still agree.
type Params struct {
	Convs map[string]*ConvParams
	Dense map[string]*DenseParams
	BNs   map[string]*BNParams
}

// ValidateModel reports whether every layer of m is expressible in the
// executable graph IR, without generating any weights — so unsupported
// networks (e.g. a 7×7 ImageNet stem) fail fast and descriptively.
func ValidateModel(m *model.Model) error {
	for _, l := range m.Layers {
		switch l.Kind {
		case model.Conv, model.DWConv:
			if !(l.KH == 3 && l.KW == 3) && !(l.KH == 1 && l.KW == 1) {
				return fmt.Errorf("execgraph: %s/%s: layer %s is a %dx%d conv; only 3x3 pattern kernels and 1x1 connectivity-pruned kernels are servable",
					m.Short, m.Dataset, l.Name, l.KH, l.KW)
			}
			if l.Kind == model.DWConv && l.KH != 3 {
				return fmt.Errorf("execgraph: %s/%s: depthwise layer %s must be 3x3", m.Short, m.Dataset, l.Name)
			}
		case model.ConvTranspose:
			if l.KH != 3 || l.KW != 3 {
				return fmt.Errorf("execgraph: %s/%s: layer %s is a %dx%d transposed conv; only 3x3 pattern kernels are servable",
					m.Short, m.Dataset, l.Name, l.KH, l.KW)
			}
			if l.Groups != 1 {
				return fmt.Errorf("execgraph: %s/%s: transposed conv %s has groups %d; only dense channel connectivity is servable",
					m.Short, m.Dataset, l.Name, l.Groups)
			}
			if l.Stride < 1 || l.OutPad < 0 || l.OutPad >= l.Stride {
				return fmt.Errorf("execgraph: %s/%s: transposed conv %s has stride %d output padding %d; output padding must lie in [0, stride)",
					m.Short, m.Dataset, l.Name, l.Stride, l.OutPad)
			}
			if l.Pad < 0 || l.Pad > l.KH-1 {
				return fmt.Errorf("execgraph: %s/%s: transposed conv %s has padding %d; the stride-1 equivalent conv needs 0 <= pad <= %d",
					m.Short, m.Dataset, l.Name, l.Pad, l.KH-1)
			}
			if want := (l.InH-1)*l.Stride - 2*l.Pad + l.KH + l.OutPad; l.OutH != want || l.OutW != (l.InW-1)*l.Stride-2*l.Pad+l.KW+l.OutPad {
				return fmt.Errorf("execgraph: %s/%s: transposed conv %s declares output %dx%d but geometry yields %dx%d",
					m.Short, m.Dataset, l.Name, l.OutH, l.OutW, want, (l.InW-1)*l.Stride-2*l.Pad+l.KW+l.OutPad)
			}
		case model.Upsample:
			if l.Stride < 1 {
				return fmt.Errorf("execgraph: %s/%s: upsample %s has scale %d; need >= 1", m.Short, m.Dataset, l.Name, l.Stride)
			}
			if l.OutH != l.InH*l.Stride || l.OutW != l.InW*l.Stride {
				return fmt.Errorf("execgraph: %s/%s: upsample %s declares output %dx%d but x%d of %dx%d yields %dx%d",
					m.Short, m.Dataset, l.Name, l.OutH, l.OutW, l.Stride, l.InH, l.InW, l.InH*l.Stride, l.InW*l.Stride)
			}
		case model.MaxPool:
			if l.KW != l.KH || l.Stride != l.KH || l.KH < 1 {
				return fmt.Errorf("execgraph: %s/%s: pool %s is %dx%d stride %d; only square stride==kernel pools are servable",
					m.Short, m.Dataset, l.Name, l.KH, l.KW, l.Stride)
			}
		case model.Input, model.ReLU, model.BatchNorm, model.Add,
			model.AvgPoolGlobal, model.Flatten, model.FC, model.SoftmaxOp:
		default:
			return fmt.Errorf("execgraph: %s/%s: unsupported operator %s (%s)",
				m.Short, m.Dataset, l.Kind, l.Name)
		}
	}
	return nil
}

// Generate synthesizes deterministic parameters for every parametric layer of
// m at the given operating point: 3×3 convs get the full pattern +
// connectivity pruning path (pruned.Generate), 1×1 convs get uniform
// connectivity pruning by weight magnitude (the paper's treatment of
// bottleneck/expand/project layers), FC layers stay dense, and BatchNorm
// layers get plausible inference statistics. Deterministic in seed: the same
// (model, patterns, connRate, seed) always yields byte-identical parameters,
// which is what lets the dense reference reconstruct the executor's weights
// independently.
func Generate(m *model.Model, patterns int, connRate float64, seed int64) (*Params, error) {
	if err := ValidateModel(m); err != nil {
		return nil, err
	}
	set := pattern.Canonical(patterns)
	p := &Params{
		Convs: make(map[string]*ConvParams),
		Dense: make(map[string]*DenseParams),
		BNs:   make(map[string]*BNParams),
	}
	for i, l := range m.Layers {
		switch l.Kind {
		case model.Conv, model.DWConv:
			if l.KH == 3 {
				pc := pruned.Generate(l, set, connRate, seed+int64(i), true)
				p.Convs[l.Name] = &ConvParams{Conv: pc}
				continue
			}
			rng := rand.New(rand.NewSource(seed + int64(i)))
			w := l.AllocWeights(rng)
			prune1x1(w, connRate)
			p.Dense[l.Name] = &DenseParams{W: w}
		case model.ConvTranspose:
			// Transposed convs take the same pattern + connectivity pruning
			// path as forward 3×3 convs; the stored Conv carries the direct
			// (pre-flip) weights and geometry, which both the dense reference
			// and the equivalent-conv lowering consume.
			pc := pruned.Generate(l, set, connRate, seed+int64(i), true)
			p.Convs[l.Name] = &ConvParams{Conv: pc}
		case model.FC:
			rng := rand.New(rand.NewSource(seed + int64(i)))
			p.Dense[l.Name] = &DenseParams{W: l.AllocWeights(rng)}
		case model.BatchNorm:
			p.BNs[l.Name] = genBN(l.OutC, seed+10000+int64(i))
		}
	}
	return p, nil
}

// prune1x1 applies uniform connectivity pruning to a [Co,Ci,1,1] weight
// tensor in place: the keep = Co·Ci/connRate largest-magnitude weights
// survive, everything else is zeroed (a 1×1 kernel is a single weight, so
// kernel pruning and weight pruning coincide — paper §4.1).
func prune1x1(w *tensor.Tensor, connRate float64) {
	if connRate <= 1 {
		return
	}
	total := len(w.Data)
	keep := int(float64(total)/connRate + 0.5)
	if keep < 1 {
		keep = 1
	}
	if keep >= total {
		return
	}
	// Find the magnitude threshold with a copy-and-select; ties resolved by
	// keeping lower indices (stable, deterministic).
	type kw struct {
		idx int
		mag float32
	}
	all := make([]kw, total)
	for i, v := range w.Data {
		m := v
		if m < 0 {
			m = -m
		}
		all[i] = kw{i, m}
	}
	// Full sort keeps the code obvious; layer sizes are bounded (≤ 1280·320
	// for the paper nets). Descending magnitude, ascending index on ties.
	sort.Slice(all, func(a, b int) bool {
		if all[a].mag != all[b].mag {
			return all[a].mag > all[b].mag
		}
		return all[a].idx < all[b].idx
	})
	for _, victim := range all[keep:] {
		w.Data[victim.idx] = 0
	}
}

// genBN generates deterministic, numerically tame BatchNorm inference
// parameters: gamma around 1, variance bounded away from zero, small beta and
// mean — the regime trained networks land in after normalization.
func genBN(c int, seed int64) *BNParams {
	rng := rand.New(rand.NewSource(seed))
	bn := &BNParams{
		Gamma: make([]float32, c), Beta: make([]float32, c),
		Mean: make([]float32, c), Var: make([]float32, c),
		Eps: 1e-5,
	}
	for i := 0; i < c; i++ {
		bn.Gamma[i] = 0.8 + 0.4*rng.Float32()
		bn.Beta[i] = float32(rng.NormFloat64()) * 0.1
		bn.Mean[i] = float32(rng.NormFloat64()) * 0.1
		bn.Var[i] = 0.5 + rng.Float32()
	}
	return bn
}

// foldBNConv returns a copy of pc with bn's scale and shift folded into the
// weights and bias: w'[oc,·] = w[oc,·]·γ/√(σ²+ε), b' = (b-μ)·γ/√(σ²+ε)+β.
// Scaling a filter uniformly preserves its zero pattern, so the folded layer
// keeps the original pattern IDs and set.
func foldBNConv(pc *pruned.Conv, bias []float32, bn *BNParams) (*pruned.Conv, []float32) {
	folded := *pc
	folded.Weights = pc.Weights.Clone()
	outBias := make([]float32, pc.OutC)
	per := len(folded.Weights.Data) / pc.OutC
	for oc := 0; oc < pc.OutC; oc++ {
		scale := float32(1 / math.Sqrt(float64(bn.Var[oc]+bn.Eps)) * float64(bn.Gamma[oc]))
		row := folded.Weights.Data[oc*per : (oc+1)*per]
		for i := range row {
			row[i] *= scale
		}
		var b float32
		if bias != nil {
			b = bias[oc]
		}
		outBias[oc] = (b-bn.Mean[oc])*scale + bn.Beta[oc]
	}
	return &folded, outBias
}

// transposedEquivalent rewrites a direct transposed conv (stride s, padding
// p, output padding op, weights/patterns in forward orientation) as the
// stride-1 forward conv computing the same map: the input is dilated by s
// (zeros between elements, op extra trailing rows/cols), padded by k-1-p, and
// convolved with the 180°-rotated kernels. Rotating a 4-entry pattern yields
// a 4-entry pattern and kernel/pattern IDs are preserved, so the equivalent
// layer rides the FKW packed walk — and, being stride 1, the SIMD
// microkernels — unchanged. The returned Conv's InH/InW are the *dilated*
// (pre-padding) dims, which is what the executor's dilate-pad scratch and
// PaddedLen sizing key off.
func transposedEquivalent(pc *pruned.Conv, outPad int) (*pruned.Conv, error) {
	if pc.Depthwise {
		return nil, fmt.Errorf("execgraph: transposed conv %s: depthwise is not supported", pc.Name)
	}
	if pc.Weights == nil {
		return nil, fmt.Errorf("execgraph: transposed conv %s has no weights", pc.Name)
	}
	kk := pc.KH * pc.KW
	eq := *pc
	eq.Stride = 1
	eq.Pad = pc.KH - 1 - pc.Pad
	eq.InH = (pc.InH-1)*pc.Stride + 1 + outPad
	eq.InW = (pc.InW-1)*pc.Stride + 1 + outPad
	eq.Set = make([]pattern.Pattern, len(pc.Set))
	for i, pat := range pc.Set {
		eq.Set[i] = pat.Rotate180()
	}
	eq.IDs = append([]int(nil), pc.IDs...)
	eq.Weights = tensor.New(pc.OutC, pc.InC, pc.KH, pc.KW)
	for fk := 0; fk < pc.OutC*pc.InC; fk++ {
		src := pc.Weights.Data[fk*kk : (fk+1)*kk]
		dst := eq.Weights.Data[fk*kk : (fk+1)*kk]
		for pos, v := range src {
			dst[kk-1-pos] = v
		}
	}
	if err := eq.Validate(); err != nil {
		return nil, fmt.Errorf("execgraph: transposed conv %s: flipped equivalent invalid: %w", pc.Name, err)
	}
	return &eq, nil
}

// foldBNDense is foldBNConv for a dense [Co,...] weight tensor (1×1 convs).
func foldBNDense(w *tensor.Tensor, bias []float32, bn *BNParams) (*tensor.Tensor, []float32) {
	outC := w.Dim(0)
	folded := w.Clone()
	outBias := make([]float32, outC)
	per := len(folded.Data) / outC
	for oc := 0; oc < outC; oc++ {
		scale := float32(1 / math.Sqrt(float64(bn.Var[oc]+bn.Eps)) * float64(bn.Gamma[oc]))
		row := folded.Data[oc*per : (oc+1)*per]
		for i := range row {
			row[i] *= scale
		}
		var b float32
		if bias != nil {
			b = bias[oc]
		}
		outBias[oc] = (b-bn.Mean[oc])*scale + bn.Beta[oc]
	}
	return folded, outBias
}
