package execgraph

// Regression tests for the v1 chain convention's pool inference. A spatial
// shrink between consecutive conv records is bridged by a stride==kernel
// max-pool — but only a prime shrink ratio has a unique decomposition.
// 32→8 (4×) is either one 4×4 pool or two 2×2 pools, and max is not
// associative across window splits, so the chain loader used to silently
// pick one reading of an ambiguous artifact; now it must reject it.

import (
	"strings"
	"testing"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/model"
	"patdnn/internal/modelfile"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
)

// v1ChainFile builds a two-conv v1 artifact (no topology section) whose
// second conv expects the first conv's output shrunk by the given factor.
func v1ChainFile(shrink int) *modelfile.File {
	set := pattern.Canonical(8)
	mk := func(name string, inC, outC, hw int) *pruned.Conv {
		l := &model.Layer{Name: name, Kind: model.Conv, InC: inC, OutC: outC,
			KH: 3, KW: 3, Stride: 1, Pad: 1, Groups: 1,
			InH: hw, InW: hw, OutH: hw, OutW: hw}
		return pruned.Generate(l, set, 1, 7, true)
	}
	const h = 32
	return &modelfile.File{
		LR: &lr.Representation{Model: "chain", Device: "CPU"},
		Layers: []modelfile.Layer{
			{Conv: mk("c1", 3, 8, h)},
			{Conv: mk("c2", 8, 8, h/shrink)},
		},
	}
}

func TestV1ChainPrimeShrinkInfersPool(t *testing.T) {
	m, _, err := FromFile("chain", v1ChainFile(2))
	if err != nil {
		t.Fatal(err)
	}
	var pool *model.Layer
	for _, l := range m.Layers {
		if l.Kind == model.MaxPool {
			pool = l
		}
	}
	if pool == nil || pool.KH != 2 || pool.Stride != 2 || pool.OutH != 16 {
		t.Fatalf("expected one 2x2 stride-2 pool bridging 32->16, got %+v", pool)
	}
}

func TestV1ChainCompositeShrinkRejected(t *testing.T) {
	for _, shrink := range []int{4, 8, 16} {
		_, _, err := FromFile("chain", v1ChainFile(shrink))
		if err == nil {
			t.Fatalf("shrink %dx: ambiguous chain artifact loaded cleanly", shrink)
		}
		if !strings.Contains(err.Error(), "composite") {
			t.Fatalf("shrink %dx: error does not explain the ambiguity: %v", shrink, err)
		}
	}
}

func TestV1ChainNonUniformShrinkRejected(t *testing.T) {
	// A shrink that is not a clean integer ratio (or differs between H and W)
	// never had a pool bridge; the pre-existing rejection must survive.
	f := v1ChainFile(2)
	f.Layers[1].Conv.InW = 15 // 32/16 on H, non-integral on W
	f.Layers[1].Conv.InH = 16
	if _, _, err := FromFile("chain", f); err == nil {
		t.Fatal("non-uniform shrink loaded cleanly")
	}
}
