package execgraph

import (
	"fmt"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/graphopt"
	"patdnn/internal/compiler/lr"
	"patdnn/internal/compiler/tuner"
	"patdnn/internal/compiler/tuner/tunedb"
	"patdnn/internal/model"
	"patdnn/internal/pruned"
	"patdnn/internal/tensor"
)

// LevelAuto is the Config.Level spelling for "let the tuner's estimator pick
// the kernel backend per layer".
const LevelAuto = "auto"

// Config parameterizes Compile.
type Config struct {
	// Level is the kernel optimization level for pattern-pruned convs
	// ("noopt", "reorder", "lre", "tuned", "packed", "packedq8"); empty or
	// "auto" lets the tuner's estimator choose per layer (never packedq8 —
	// quantization changes the numbers, so it is always an explicit choice,
	// the caller's or the artifact's).
	Level string
	// TuneDB, when non-nil, is consulted for every pattern conv's execution
	// configuration before the analytic heuristics run, and records whichever
	// decision the compile made on a miss — so recompiling a layer already in
	// the DB (a registry lazy recompile after eviction, a warm restart) does
	// zero search work. The Plan's Tuning counters prove it.
	TuneDB *tunedb.DB
	// TuneSearch runs a compile-time GA search (tuner.Search over the packed
	// space, analytic cost model) for packed-level layers the DB misses on,
	// instead of the single-shot PackedTuning heuristic. Requires TuneDB to
	// be worthwhile — without a DB the search result is forgotten.
	TuneSearch bool
}

// Kind enumerates the executable node types. BatchNorm is deliberately
// absent: it folds into conv weights at compile time, and a model whose BN
// cannot fold is rejected.
type Kind int

// Node kinds.
const (
	KindInput   Kind = iota
	KindConv         // pattern-pruned 3×3 (standard or depthwise), codegen.Plan
	KindConv1x1      // connectivity-pruned 1×1, codegen.Plan1x1
	KindFC
	KindMaxPool
	KindGAP
	KindAdd  // unfused residual add (fallback; paper nets fuse these away)
	KindReLU // unfused activation (fallback)
	KindFlatten
	KindSoftmax
	// KindConvT is a pattern-pruned 3×3 transposed conv, executed as its
	// stride-1 equivalent conv (flipped kernels) over a stride-dilated input
	// staged in the padding scratch; Plan holds the equivalent conv's plan.
	KindConvT
	// KindUpsample is parameter-free nearest-neighbor expansion by Scale.
	KindUpsample
)

var kindNames = map[Kind]string{
	KindInput: "input", KindConv: "conv", KindConv1x1: "conv1x1",
	KindFC: "fc", KindMaxPool: "maxpool", KindGAP: "avgpool",
	KindAdd: "add", KindReLU: "relu", KindFlatten: "flatten",
	KindSoftmax: "softmax", KindConvT: "convtranspose", KindUpsample: "upsample",
}

func (k Kind) String() string { return kindNames[k] }

// Node is one executable operator of a compiled graph plan.
type Node struct {
	Kind   Kind
	Name   string
	Op     string // fused display form from the graph passes ("conv+bn+relu", ...)
	Inputs []int  // producing node IDs; Inputs[0] is the data input
	// Shortcut is the node whose output initializes this conv's output planes
	// (fused residual add), or -1.
	Shortcut int
	// ReLU marks a fused ReLU epilogue (convs, 1×1s, FCs).
	ReLU bool
	// BNFolded marks a conv whose weights/bias absorbed a BatchNorm.
	BNFolded bool

	Plan    *codegen.Plan    // KindConv / KindConvT (equivalent-conv plan)
	Plan1x1 *codegen.Plan1x1 // KindConv1x1
	W       *tensor.Tensor   // KindFC weight matrix [Out, In]
	Bias    []float32        // conv/fc bias after folding (nil = zero)
	PoolK   int              // KindMaxPool kernel == stride
	// DilStride is the KindConvT dilation factor (the transposed conv's
	// original stride): the input scatters into the padding scratch at that
	// spacing before the stride-1 equivalent conv sweeps it.
	DilStride int
	Scale     int // KindUpsample nearest-neighbor factor

	OutC, OutH, OutW int

	// Static memory plan: arena buffer IDs for the node output and, for
	// padded convs, the padding scratch (-1 when unused).
	slot    int
	padSlot int
}

// FusedOps counts what the graph passes fused away — the numbers /models
// reports so operators can verify a deployed plan really runs fused.
type FusedOps struct {
	ConvBN   int `json:"conv_bn"`   // BatchNorms folded into conv weights
	ConvReLU int `json:"conv_relu"` // ReLUs fused into conv/fc epilogues
	Residual int `json:"residual"`  // residual adds fused into conv epilogues
}

// Plan is an executable DAG lowered through the graph optimizer, plus its
// static memory plan. Safe for concurrent use: execution state lives in
// per-call Executors (see Execute / GetExecutor).
// TuneStats counts one compile's tuning-DB interactions: how many pattern
// convs took their configuration from the DB, how many missed, and how many
// GA candidate evaluations ran at compile time. A warm compile — every layer
// already in the DB — shows Misses == 0 and Evals == 0.
type TuneStats struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	Evals  int `json:"evals"`
}

type Plan struct {
	Model *model.Model
	Level string
	Nodes []*Node
	Fused FusedOps

	// Tuning reports the tuning-DB traffic of this plan's compile (all zero
	// when no DB was attached).
	Tuning TuneStats

	ConvLayers   int   // pattern + 1×1 conv nodes
	TotalWeights int64 // dense weight count across conv nodes
	KeptWeights  int64 // surviving weight count (compression)

	InC, InH, InW    int
	OutC, OutH, OutW int

	output int // sink node ID

	arenaLen   int   // floats per inference
	bufOffsets []int // arena offset per buffer ID
	naiveLen   int   // sum of all node outputs (what no reuse would cost)

	execs execPool
}

// ArenaBytes returns the per-inference activation arena size in bytes, and
// the bytes a plan without liveness reuse would need.
func (p *Plan) ArenaBytes() (planned, naive int64) {
	return 4 * int64(p.arenaLen), 4 * int64(p.naiveLen)
}

// MemoryBytes is the resident parameter footprint the registry's memory
// budget accounts for: dense pruned weights + packed FKW arrays for pattern
// convs, kept weights + indices for 1×1s, dense FC matrices, and biases.
func (p *Plan) MemoryBytes() int64 {
	var b int64
	for _, n := range p.Nodes {
		switch n.Kind {
		case KindConv, KindConvT:
			if qb, ok := n.Plan.QuantizedWeightBytes(); ok {
				// PackedQ8 plans drop both float32 streams: resident weights
				// are the int8 levels + per-filter scales, plus FKW indices.
				b += int64(n.Plan.FKW.OverheadBytes()) + qb
			} else {
				b += 4 * int64(n.Plan.Conv.TotalWeights())
				b += int64(n.Plan.FKW.TotalBytes(4))
			}
		case KindConv1x1:
			b += n.Plan1x1.MemoryBytes()
		case KindFC:
			b += 4 * int64(n.W.Len())
		default:
			continue
		}
		b += 4 * int64(len(n.Bias))
	}
	return b
}

// Compression returns dense/kept weight ratio across all conv nodes.
func (p *Plan) Compression() float64 {
	if p.KeptWeights == 0 {
		return 0
	}
	return float64(p.TotalWeights) / float64(p.KeptWeights)
}

// layerLevel resolves the optimization level one pattern conv compiles at: an
// explicit tag applies uniformly; "auto" asks the tuner's estimator whether
// the packed FKW-direct backend beats the tuned dense-layout kernels for this
// layer's geometry and sparsity.
func layerLevel(tag string, pc *pruned.Conv) (codegen.Level, error) {
	if tag == LevelAuto {
		if tuner.PreferPacked(pc.OutC, pc.InC, pc.NonEmptyKernels(), pc.OutH, pc.OutW) {
			return codegen.Packed, nil
		}
		return codegen.Tuned, nil
	}
	return codegen.ParseLevel(tag)
}

// layerTuning picks the heuristic tuning a layer compiles with: packed plans
// get the tuner-sized spatial tile; everything else keeps the default
// configuration. The tile budget uses the *maximum* per-filter weight count,
// not the layer mean: the packed kernels stream one filter at a time, so
// under skewed filter sparsity the heaviest filter is what must share L1 with
// the activation tile.
func layerTuning(level codegen.Level, pc *pruned.Conv) lr.Tuning {
	if level != codegen.Packed && level != codegen.PackedQ8 {
		return lr.DefaultTuning()
	}
	return tuner.PackedTuning(pc.OutH, pc.OutW, pc.InW+2*pc.Pad, pc.MaxFilterNNZ(), pc.Stride,
		packedBytesPerWeight(level))
}

// packedBytesPerWeight sizes the weight stream the packed tuning heuristics
// budget for: 4 bytes for the FP32 packed level, 1 for PackedQ8's int8 stream.
func packedBytesPerWeight(level codegen.Level) int {
	if level == codegen.PackedQ8 {
		return 1
	}
	return 4
}

// resolveTuning picks the tuning a pattern conv compiles with, consulting the
// tuning DB first: a hit returns the stored decision with zero search work; a
// miss falls back to the heuristic — or, with TuneSearch, a GA search over
// the packed space under the analytic cost model — and records the choice so
// every later compile of this key hits.
func (p *Plan) resolveTuning(cfg Config, level codegen.Level, pc *pruned.Conv) lr.Tuning {
	var key tunedb.Key
	if cfg.TuneDB != nil {
		key = tunedb.ConvKey(pc, codegen.LevelTag(level))
		if e, ok := cfg.TuneDB.Lookup(key); ok {
			p.Tuning.Hits++
			return e.Config
		}
		p.Tuning.Misses++
	}
	t := layerTuning(level, pc)
	source, cost := tunedb.SourceHeuristic, 0.0
	if cfg.TuneSearch && (level == codegen.Packed || level == codegen.PackedQ8) {
		wpf := pc.MaxFilterNNZ()
		bpw := packedBytesPerWeight(level)
		eval := func(c lr.Tuning) float64 {
			return tuner.PackedCost(pc.OutH, pc.OutW, pc.InW+2*pc.Pad, wpf, pc.Stride, bpw, c)
		}
		// A small deterministic budget, warm-started at the heuristic so the
		// search can never do worse than the fallback it replaces.
		opt := tuner.Options{Population: 8, Generations: 4, MutationP: 0.2, Elite: 2, Seed: 1,
			WarmStart: []lr.Tuning{t}}
		if best, hist, err := tuner.Search(tuner.PackedSpace(), eval, opt); err == nil {
			p.Tuning.Evals += len(hist)
			t, source, cost = best.Config, tunedb.SourceSearch, best.CostMs
		}
	}
	if cfg.TuneDB != nil {
		cfg.TuneDB.Record(key, tunedb.Entry{Config: t, CostMs: cost, Source: source})
	}
	return t
}

// Compile lowers m through the graph optimizer into an executable plan: BN
// folds into conv weights, residual adds and ReLUs fuse into conv epilogues,
// every conv compiles through the pattern (3×3) or connectivity (1×1) path at
// the configured level, and the liveness pass assigns every intermediate
// tensor an arena slot with buffers reused across non-overlapping live
// ranges.
func Compile(m *model.Model, params *Params, cfg Config) (*Plan, error) {
	if err := ValidateModel(m); err != nil {
		return nil, err
	}
	tag := cfg.Level
	if tag == "" {
		tag = LevelAuto
	}
	if tag != LevelAuto {
		lv, err := codegen.ParseLevel(tag)
		if err != nil {
			return nil, err
		}
		tag = codegen.LevelTag(lv)
	}

	cfg.Level = tag

	g := graphopt.FromModel(m)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.FuseConvBNReLU()
	g.FoldConstants()
	g.FuseResidual()
	g.FuseFCReLU()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("execgraph: %s/%s: graph invalid after fusion: %w", m.Short, m.Dataset, err)
	}

	p := &Plan{
		Model: m, Level: tag,
		InC: m.InC, InH: m.InH, InW: m.InW,
	}
	dims := make([][3]int, len(g.Nodes))
	for _, gn := range g.Nodes {
		n, err := p.lower(m, g, gn, params, cfg, dims)
		if err != nil {
			return nil, err
		}
		dims[gn.ID] = [3]int{n.OutC, n.OutH, n.OutW}
		p.Nodes = append(p.Nodes, n)
	}
	if err := p.finish(m); err != nil {
		return nil, err
	}
	return p, nil
}

// lower translates one fused graph node into an executable node.
func (p *Plan) lower(m *model.Model, g *graphopt.Graph, gn *graphopt.Node, params *Params, cfg Config, dims [][3]int) (*Node, error) {
	l := gn.Layer
	n := &Node{
		Kind: KindInput, Name: l.Name, Op: gn.Op,
		Inputs: append([]int(nil), gn.Inputs...), Shortcut: -1,
		ReLU: gn.FusedReLU, BNFolded: gn.BN != nil,
		slot: -1, padSlot: -1,
	}
	var in [3]int
	if len(n.Inputs) > 0 {
		in = dims[n.Inputs[0]]
	}
	badInput := func(wantC, wantH, wantW int) error {
		return fmt.Errorf("execgraph: %s/%s: node %s expects input [%d,%d,%d] but the graph carries [%d,%d,%d]",
			m.Short, m.Dataset, l.Name, wantC, wantH, wantW, in[0], in[1], in[2])
	}
	bn, err := p.bnFor(m, gn, params)
	if err != nil {
		return nil, err
	}

	switch l.Kind {
	case model.Input:
		n.Kind = KindInput
		n.OutC, n.OutH, n.OutW = l.OutC, l.OutH, l.OutW

	case model.Conv, model.DWConv:
		if l.KH == 3 {
			cp, ok := params.Convs[l.Name]
			if !ok {
				return nil, fmt.Errorf("execgraph: %s/%s: no parameters for conv %s", m.Short, m.Dataset, l.Name)
			}
			pc, bias := cp.Conv, cp.Bias
			if in != [3]int{pc.InChannels(), pc.InH, pc.InW} {
				return nil, badInput(pc.InChannels(), pc.InH, pc.InW)
			}
			if bn != nil {
				if len(bn.Gamma) != pc.OutC {
					return nil, fmt.Errorf("execgraph: %s/%s: batchnorm %s has %d channels; conv %s produces %d",
						m.Short, m.Dataset, gn.BN.Name, len(bn.Gamma), l.Name, pc.OutC)
				}
				pc, bias = foldBNConv(pc, bias, bn)
				p.Fused.ConvBN++
			}
			level, err := layerLevel(cfg.Level, pc)
			if err != nil {
				return nil, err
			}
			plan, err := codegen.Compile(pc, level, p.resolveTuning(cfg, level, pc))
			if err != nil {
				return nil, fmt.Errorf("execgraph: %s/%s: %w", m.Short, m.Dataset, err)
			}
			n.Kind, n.Plan, n.Bias = KindConv, plan, bias
			n.OutC, n.OutH, n.OutW = pc.OutC, pc.OutH, pc.OutW
			p.TotalWeights += int64(pc.TotalWeights())
			p.KeptWeights += int64(pc.NNZ())
		} else {
			dp, ok := params.Dense[l.Name]
			if !ok {
				return nil, fmt.Errorf("execgraph: %s/%s: no parameters for 1x1 conv %s", m.Short, m.Dataset, l.Name)
			}
			w, bias := dp.W, dp.Bias
			if in != [3]int{l.InC, l.InH, l.InW} {
				return nil, badInput(l.InC, l.InH, l.InW)
			}
			if bn != nil {
				if len(bn.Gamma) != l.OutC {
					return nil, fmt.Errorf("execgraph: %s/%s: batchnorm %s has %d channels; conv %s produces %d",
						m.Short, m.Dataset, gn.BN.Name, len(bn.Gamma), l.Name, l.OutC)
				}
				w, bias = foldBNDense(w, bias, bn)
				p.Fused.ConvBN++
			}
			plan, err := codegen.Compile1x1Pruned(l.Name, w, struct{ Stride, InH, InW, OutH, OutW int }{
				l.Stride, l.InH, l.InW, l.OutH, l.OutW,
			})
			if err != nil {
				return nil, err
			}
			n.Kind, n.Plan1x1, n.Bias = KindConv1x1, plan, bias
			n.OutC, n.OutH, n.OutW = l.OutC, l.OutH, l.OutW
			p.TotalWeights += int64(l.OutC) * int64(l.InC)
			p.KeptWeights += int64(plan.NNZ())
		}
		p.ConvLayers++
		if gn.Residual {
			n.Shortcut = n.Inputs[len(n.Inputs)-1]
			sc := dims[n.Shortcut]
			if sc != [3]int{n.OutC, n.OutH, n.OutW} {
				return nil, fmt.Errorf("execgraph: %s/%s: residual shortcut into %s is [%d,%d,%d], want [%d,%d,%d]",
					m.Short, m.Dataset, l.Name, sc[0], sc[1], sc[2], n.OutC, n.OutH, n.OutW)
			}
			p.Fused.Residual++
		}
		if n.ReLU {
			p.Fused.ConvReLU++
		}

	case model.ConvTranspose:
		cp, ok := params.Convs[l.Name]
		if !ok {
			return nil, fmt.Errorf("execgraph: %s/%s: no parameters for transposed conv %s", m.Short, m.Dataset, l.Name)
		}
		pc, bias := cp.Conv, cp.Bias
		if in != [3]int{pc.InChannels(), pc.InH, pc.InW} {
			return nil, badInput(pc.InChannels(), pc.InH, pc.InW)
		}
		if bn != nil {
			if len(bn.Gamma) != pc.OutC {
				return nil, fmt.Errorf("execgraph: %s/%s: batchnorm %s has %d channels; transposed conv %s produces %d",
					m.Short, m.Dataset, gn.BN.Name, len(bn.Gamma), l.Name, pc.OutC)
			}
			pc, bias = foldBNConv(pc, bias, bn)
			p.Fused.ConvBN++
		}
		eq, err := transposedEquivalent(pc, l.OutPad)
		if err != nil {
			return nil, fmt.Errorf("execgraph: %s/%s: %w", m.Short, m.Dataset, err)
		}
		level, err := layerLevel(cfg.Level, eq)
		if err != nil {
			return nil, err
		}
		plan, err := codegen.Compile(eq, level, p.resolveTuning(cfg, level, eq))
		if err != nil {
			return nil, fmt.Errorf("execgraph: %s/%s: %w", m.Short, m.Dataset, err)
		}
		n.Kind, n.Plan, n.Bias = KindConvT, plan, bias
		n.DilStride = pc.Stride
		n.OutC, n.OutH, n.OutW = pc.OutC, pc.OutH, pc.OutW
		p.TotalWeights += int64(eq.TotalWeights())
		p.KeptWeights += int64(eq.NNZ())
		p.ConvLayers++
		if gn.Residual {
			n.Shortcut = n.Inputs[len(n.Inputs)-1]
			sc := dims[n.Shortcut]
			if sc != [3]int{n.OutC, n.OutH, n.OutW} {
				return nil, fmt.Errorf("execgraph: %s/%s: residual shortcut into %s is [%d,%d,%d], want [%d,%d,%d]",
					m.Short, m.Dataset, l.Name, sc[0], sc[1], sc[2], n.OutC, n.OutH, n.OutW)
			}
			p.Fused.Residual++
		}
		if n.ReLU {
			p.Fused.ConvReLU++
		}

	case model.Upsample:
		if in != [3]int{l.InC, l.InH, l.InW} {
			return nil, badInput(l.InC, l.InH, l.InW)
		}
		n.Kind, n.Scale = KindUpsample, l.Stride
		n.OutC, n.OutH, n.OutW = in[0], in[1]*l.Stride, in[2]*l.Stride

	case model.FC:
		dp, ok := params.Dense[l.Name]
		if !ok {
			return nil, fmt.Errorf("execgraph: %s/%s: no parameters for fc %s", m.Short, m.Dataset, l.Name)
		}
		if in[0]*max(in[1], 1)*max(in[2], 1) != l.InC {
			return nil, fmt.Errorf("execgraph: %s/%s: fc %s expects %d features but the graph carries [%d,%d,%d]",
				m.Short, m.Dataset, l.Name, l.InC, in[0], in[1], in[2])
		}
		n.Kind, n.W, n.Bias = KindFC, dp.W, dp.Bias
		n.OutC, n.OutH, n.OutW = l.OutC, 1, 1
		if n.ReLU {
			p.Fused.ConvReLU++
		}

	case model.MaxPool:
		if l.KW != l.KH || l.Stride != l.KH || l.KH < 1 {
			return nil, fmt.Errorf("execgraph: %s/%s: pool %s is %dx%d stride %d; only square stride==kernel pools are servable",
				m.Short, m.Dataset, l.Name, l.KH, l.KW, l.Stride)
		}
		if l.OutH != in[1]/l.KH || l.OutW != in[2]/l.KH {
			return nil, fmt.Errorf("execgraph: %s/%s: pool %s declares output %dx%d but %dx%d/%d pooling yields %dx%d",
				m.Short, m.Dataset, l.Name, l.OutH, l.OutW, in[1], in[2], l.KH, in[1]/l.KH, in[2]/l.KH)
		}
		n.Kind, n.PoolK = KindMaxPool, l.KH
		n.OutC, n.OutH, n.OutW = in[0], in[1]/l.KH, in[2]/l.KH

	case model.AvgPoolGlobal:
		n.Kind = KindGAP
		n.OutC, n.OutH, n.OutW = in[0], 1, 1

	case model.Add:
		if len(n.Inputs) != 2 {
			return nil, fmt.Errorf("execgraph: %s/%s: add %s has %d inputs, want 2",
				m.Short, m.Dataset, l.Name, len(n.Inputs))
		}
		if dims[n.Inputs[1]] != in {
			return nil, fmt.Errorf("execgraph: %s/%s: add %s input shapes differ", m.Short, m.Dataset, l.Name)
		}
		n.Kind = KindAdd
		n.OutC, n.OutH, n.OutW = in[0], in[1], in[2]

	case model.ReLU:
		n.Kind = KindReLU
		n.OutC, n.OutH, n.OutW = in[0], in[1], in[2]

	case model.Flatten:
		n.Kind = KindFlatten
		n.OutC, n.OutH, n.OutW = in[0]*max(in[1], 1)*max(in[2], 1), 1, 1

	case model.SoftmaxOp:
		n.Kind = KindSoftmax
		n.OutC, n.OutH, n.OutW = in[0], max(in[1], 1), max(in[2], 1)

	case model.BatchNorm:
		// A BN the fusion pass could not absorb (no producing conv, or a
		// multi-consumer intermediate) cannot run: the executable IR has no
		// BatchNorm node by design.
		return nil, fmt.Errorf("execgraph: %s/%s: batchnorm %s did not fold into a conv; the executed plan must hold zero BatchNorm nodes",
			m.Short, m.Dataset, l.Name)

	default:
		return nil, fmt.Errorf("execgraph: %s/%s: unsupported operator %s (%s)",
			m.Short, m.Dataset, l.Kind, l.Name)
	}
	return n, nil
}

// bnFor resolves the BNParams a fused graph node folds, if any.
func (p *Plan) bnFor(m *model.Model, gn *graphopt.Node, params *Params) (*BNParams, error) {
	if gn.BN == nil {
		return nil, nil
	}
	bn, ok := params.BNs[gn.BN.Name]
	if !ok {
		return nil, fmt.Errorf("execgraph: %s/%s: no parameters for batchnorm %s", m.Short, m.Dataset, gn.BN.Name)
	}
	return bn, nil
}

// finish validates the DAG has a single sink, records the plan output shape,
// and runs the liveness pass that assigns arena slots.
func (p *Plan) finish(m *model.Model) error {
	uses := make([]int, len(p.Nodes))
	for _, n := range p.Nodes {
		for _, in := range n.Inputs {
			uses[in]++
		}
		if n.Shortcut >= 0 && n.Shortcut != n.Inputs[len(n.Inputs)-1] {
			uses[n.Shortcut]++
		}
	}
	sink := -1
	for i, u := range uses {
		if u == 0 {
			if sink >= 0 {
				return fmt.Errorf("execgraph: %s/%s: graph has multiple outputs (%s and %s)",
					m.Short, m.Dataset, p.Nodes[sink].Name, p.Nodes[i].Name)
			}
			sink = i
		}
	}
	if sink != len(p.Nodes)-1 {
		return fmt.Errorf("execgraph: %s/%s: output node is not last in topological order", m.Short, m.Dataset)
	}
	p.output = sink
	out := p.Nodes[sink]
	p.OutC, p.OutH, p.OutW = out.OutC, out.OutH, out.OutW
	p.planArena()
	return nil
}

// planArena runs the liveness analysis: every node output (and every padded
// conv's padding scratch) is assigned a buffer, and a buffer is reused for a
// later tensor as soon as its previous occupant's live range [def, lastUse]
// has closed. Greedy first-fit on size, the same discipline TVM's static
// memory planner uses; offsets are the prefix sums of the final buffer sizes,
// so one arena allocation serves a whole inference with zero steady-state
// allocation.
func (p *Plan) planArena() {
	nN := len(p.Nodes)
	lastUse := make([]int, nN)
	for i := range lastUse {
		lastUse[i] = i
	}
	for id, n := range p.Nodes {
		for _, in := range n.Inputs {
			if id > lastUse[in] {
				lastUse[in] = id
			}
		}
	}
	// The sink's buffer is copied out after execution; keep it live to the end.
	lastUse[p.output] = nN

	type buffer struct {
		size int
		free bool
	}
	var bufs []buffer
	alloc := func(sz int) int {
		for i := range bufs {
			if bufs[i].free && bufs[i].size >= sz {
				bufs[i].free = false
				return i
			}
		}
		bufs = append(bufs, buffer{size: sz})
		return len(bufs) - 1
	}
	released := make([]bool, nN)
	padReleased := make([]bool, nN)
	for i, n := range p.Nodes {
		// Close live ranges that ended strictly before this node; padding
		// scratch lives only during its own node.
		for j := 0; j < i; j++ {
			if !released[j] && lastUse[j] < i {
				bufs[p.Nodes[j].slot].free = true
				released[j] = true
			}
			if ps := p.Nodes[j].padSlot; ps >= 0 && !padReleased[j] {
				bufs[ps].free = true
				padReleased[j] = true
			}
		}
		// A transposed conv always needs the scratch, even at equivalent pad 0:
		// the dilated input is materialized there.
		if (n.Kind == KindConv && n.Plan.Conv.Pad > 0) || n.Kind == KindConvT {
			n.padSlot = alloc(n.Plan.PaddedLen())
			p.naiveLen += n.Plan.PaddedLen()
		}
		sz := n.OutC * n.OutH * n.OutW
		n.slot = alloc(sz)
		p.naiveLen += sz
	}
	p.bufOffsets = make([]int, len(bufs))
	off := 0
	for i, b := range bufs {
		p.bufOffsets[i] = off
		off += b.size
	}
	p.arenaLen = off
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
