package execgraph

import (
	"testing"
	"time"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/compiler/tuner"
	"patdnn/internal/compiler/tuner/tunedb"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
)

// packedL1Bytes mirrors the tuner's budget constant (unexported there): the
// mobile-class L1 the packed tile's working set must stay inside.
const packedL1Bytes = 32 * 1024

// TestTuningDBWarmCompileZeroEvals is the warm-path proof: a first compile
// against an empty tuning DB misses and searches per layer; a second compile
// of the same model hits on every layer and performs zero GA evaluations (and
// is faster, since it skips all search work).
func TestTuningDBWarmCompileZeroEvals(t *testing.T) {
	m := bottleneckModel()
	params, err := Generate(m, 8, 3.6, 42)
	if err != nil {
		t.Fatal(err)
	}
	db := tunedb.Open("")
	cfg := Config{Level: "packed", TuneDB: db, TuneSearch: true}

	coldStart := time.Now()
	cold, err := Compile(m, params, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(coldStart)
	if cold.Tuning.Hits != 0 || cold.Tuning.Misses == 0 {
		t.Fatalf("cold compile: %+v, want all misses", cold.Tuning)
	}
	if cold.Tuning.Evals == 0 {
		t.Fatalf("cold compile ran no GA evaluations: %+v", cold.Tuning)
	}

	warmStart := time.Now()
	warm, err := Compile(m, params, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmDur := time.Since(warmStart)
	if warm.Tuning.Evals != 0 {
		t.Fatalf("warm compile ran %d GA evaluations, want 0", warm.Tuning.Evals)
	}
	if warm.Tuning.Misses != 0 || warm.Tuning.Hits != cold.Tuning.Misses {
		t.Fatalf("warm compile: %+v, want %d hits / 0 misses", warm.Tuning, cold.Tuning.Misses)
	}
	// Both compiles must choose identical kernels: a DB hit replays the
	// recorded decision exactly.
	for i, n := range cold.Nodes {
		if n.Kind == KindConv && warm.Nodes[i].Plan.Tune != n.Plan.Tune {
			t.Fatalf("node %d tuning diverged: cold %+v, warm %+v",
				i, n.Plan.Tune, warm.Nodes[i].Plan.Tune)
		}
	}
	t.Logf("cold compile %v (%d evals), warm compile %v (0 evals)",
		coldDur, cold.Tuning.Evals, warmDur)
}

// TestTuningDBDisabledCountsNothing pins the default path: no DB, no
// counters, identical plans to before the subsystem existed.
func TestTuningDBDisabledCountsNothing(t *testing.T) {
	plan, _ := compileAt(t, bottleneckModel(), "packed")
	if plan.Tuning != (TuneStats{}) {
		t.Fatalf("DB-less compile counted tuning traffic: %+v", plan.Tuning)
	}
}

// skewedConv builds a layer whose mean per-filter weight count is tiny but
// whose heaviest filter is dense: filter 0 retains every kernel, all other
// filters retain one. Geometry chosen so the whole 56-row map fits L1 under
// the mean but not under the heavy filter.
func skewedConv() *pruned.Conv {
	const outC, inC = 64, 512
	c := &pruned.Conv{
		Name: "skew", OutC: outC, InC: inC, KH: 3, KW: 3,
		Stride: 1, Pad: 1, OutH: 56, OutW: 56, InH: 56, InW: 56,
		Set: pattern.Canonical(8),
		IDs: make([]int, outC*inC),
	}
	for k := 0; k < inC; k++ {
		c.IDs[k] = 1 // filter 0: fully retained
	}
	for f := 1; f < outC; f++ {
		c.IDs[f*inC] = 1 // every other filter: one kernel
	}
	return c
}

// TestLayerTuningBudgetsForHeaviestFilter is the skewed-sparsity regression
// test: the packed tile must be sized from the maximum per-filter weight
// count, not the truncating layer mean — the packed kernels stream one
// filter at a time, so the heaviest filter's weights share L1 with the tile.
func TestLayerTuningBudgetsForHeaviestFilter(t *testing.T) {
	pc := skewedConv()
	meanPerFilter := pc.NNZ() / pc.OutC
	maxPerFilter := pc.MaxFilterNNZ()
	if maxPerFilter <= 4*meanPerFilter {
		t.Fatalf("fixture not skewed: mean %d, max %d", meanPerFilter, maxPerFilter)
	}

	workingSet := func(rows, wpf int) int {
		inRows := (rows-1)*pc.Stride + 3
		return 4 * (rows*pc.OutW + inRows*(pc.InW+2*pc.Pad) + wpf)
	}
	// The regression precondition: sizing by the mean picks the whole map...
	meanTile := tuner.PackedTile(pc.OutH, pc.OutW, pc.InW+2*pc.Pad, meanPerFilter, pc.Stride, 4)
	if meanTile != pc.OutH {
		t.Fatalf("fixture: mean-sized tile %d, want whole map %d", meanTile, pc.OutH)
	}
	// ...whose working set the heavy filter blows past the L1 budget.
	if ws := workingSet(meanTile, maxPerFilter); ws <= packedL1Bytes {
		t.Fatalf("fixture: mean-sized tile fits anyway (%d <= %d)", ws, packedL1Bytes)
	}

	tile := layerTuning(codegen.Packed, pc).Tile[1]
	if ws := workingSet(tile, maxPerFilter); ws > packedL1Bytes {
		t.Fatalf("layerTuning tile %d: heavy-filter working set %d exceeds L1 budget %d",
			tile, ws, packedL1Bytes)
	}
	if tile >= meanTile {
		t.Fatalf("layerTuning tile %d did not shrink below the mean-sized %d", tile, meanTile)
	}
}
