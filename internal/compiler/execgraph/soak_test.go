package execgraph

// Differential soak: every paper network (CIFAR variants) × every codegen
// level — the six named kernel generations plus the tuner's auto chooser —
// executed through the graph plan and pinned to the dense unfused reference:
// 1e-4 for the FP32 levels, a quantization-error budget for packedq8 (8-bit
// weights through a deep stack shift the softmax outputs by more than kernel
// reassociation ever could, but far less than a structural bug would). The
// narrower differential test covers tuned+packed; this sweep is the
// exhaustive cross-product, wired into CI as its own -race job so a kernel
// regression in any generation (not just the fast ones the benchmarks favor)
// is caught batch-wide before it ships. Short mode skips it: the sweep
// compiles 21 full plan stacks.

import (
	"testing"

	"patdnn/internal/compiler/codegen"
	"patdnn/internal/model"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

func TestDifferentialSoakAllNetsAllLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles all three paper networks at all six levels")
	}
	levels := []string{"auto"}
	for _, lv := range codegen.AllLevels() {
		levels = append(levels, codegen.LevelTag(lv))
	}
	nets := []*model.Model{
		model.VGG16("cifar10"),
		model.ResNet50("cifar10"),
		model.MobileNetV2("cifar10"),
	}
	pool := runtime.NewPool(0)
	for _, m := range nets {
		m := m
		t.Run(m.Short, func(t *testing.T) {
			params, err := Generate(m, 8, 3.6, 42)
			if err != nil {
				t.Fatal(err)
			}
			// Two references: the batch sweep below runs two distinct lanes,
			// and each must match its own input's dense forward pass.
			xs := []*tensor.Tensor{genInput(m, 21), genInput(m, 22)}
			wants := make([]*tensor.Tensor, len(xs))
			for i, x := range xs {
				if wants[i], err = Reference(m, params, x); err != nil {
					t.Fatal(err)
				}
			}
			for _, level := range levels {
				level := level
				tol := 1e-4
				if level == codegen.LevelTag(codegen.PackedQ8) {
					tol = 5e-2
				}
				t.Run(level, func(t *testing.T) {
					plan, err := Compile(m, params, Config{Level: level})
					if err != nil {
						t.Fatal(err)
					}
					outs := make([]*tensor.Tensor, len(xs))
					for i := range outs {
						outs[i] = tensor.New(plan.OutC, plan.OutH, plan.OutW)
					}
					plan.Execute(pool, xs, outs)
					for i := range outs {
						if d := outs[i].MaxAbsDiff(wants[i]); d > tol {
							t.Fatalf("%s @ %s: lane %d diverged from dense reference by %g",
								m.Short, level, i, d)
						}
					}
					// Auto must never choose quantized execution on its own —
					// quantization changes the numbers, so it is always an
					// explicit caller/artifact decision.
					if level == LevelAuto {
						for _, n := range plan.Nodes {
							if n.Kind != KindConv {
								continue
							}
							if _, quantized := n.Plan.QuantizedWeightBytes(); quantized {
								t.Fatalf("%s @ auto: node %s compiled quantized", m.Short, n.Name)
							}
						}
					}
					// The executed plan must carry no unfused elementwise
					// nodes at any level — fusion is level-independent.
					for _, n := range plan.Nodes {
						if n.Kind == KindAdd || n.Kind == KindReLU {
							t.Fatalf("%s @ %s: unfused %s node %s", m.Short, level, n.Kind, n.Name)
						}
					}
				})
			}
		})
	}
}
