package execgraph

// FromFile reconstructs the (model, parameters) pair of a deployed .patdnn
// artifact, shared by the serving registry loader and cmd/patdnn-run. V2
// graph artifacts carry the topology plus conv/dense/BN records; v1 artifacts
// carry only the pruned 3×3 conv trunk and are reassembled by the chain
// convention previous releases served: every conv runs with its bias and a
// ReLU, and a uniform spatial shrink between consecutive convs becomes the
// stride==kernel max-pool producing exactly the next layer's input geometry.

import (
	"fmt"

	"patdnn/internal/model"
	"patdnn/internal/modelfile"
	"patdnn/internal/tensor"
)

// FromFile rebuilds the executable topology and parameter set of an
// artifact. name becomes the model's serving identity (Model.Short).
func FromFile(name string, mf *modelfile.File) (*model.Model, *Params, error) {
	params := &Params{
		Convs: make(map[string]*ConvParams),
		Dense: make(map[string]*DenseParams),
		BNs:   make(map[string]*BNParams),
	}
	for _, layer := range mf.Layers {
		params.Convs[layer.Conv.Name] = &ConvParams{Conv: layer.Conv, Bias: layer.Bias}
	}

	if mf.Net != nil {
		// Cross-validate every record against the topology before anything
		// executes: each section of a v2 file is individually well-formed
		// after modelfile's checks, but a crafted (or miswritten) artifact
		// can still pair a record with a topology layer of different shape —
		// which would surface as an index-out-of-range panic inside BN
		// folding or a kernel instead of a quarantinable load error.
		badRecord := func(kind, rec string) error {
			return fmt.Errorf("execgraph: artifact %s: %s record %q does not match the topology", name, kind, rec)
		}
		for _, layer := range mf.Layers {
			pc := layer.Conv
			l := mf.Net.Layer(pc.Name)
			ok := l != nil && l.KH == pc.KH && l.KW == pc.KW &&
				l.OutC == pc.OutC && l.Stride == pc.Stride && l.Pad == pc.Pad &&
				l.InH == pc.InH && l.InW == pc.InW && l.OutH == pc.OutH && l.OutW == pc.OutW
			if ok {
				switch {
				case l.IsConv():
					ok = l.InC == pc.InChannels()
				case l.Kind == model.ConvTranspose:
					// Transposed-conv records ride the same wire format; the
					// output-geometry relation (incl. OutPad) is checked by
					// ValidateModel at compile time.
					ok = !pc.Depthwise && l.InC == pc.InC
				default:
					ok = false
				}
			}
			if !ok {
				return nil, nil, badRecord("conv", pc.Name)
			}
		}
		for _, d := range mf.Dense {
			l := mf.Net.Layer(d.Name)
			switch d.Kind {
			case modelfile.DenseConv1x1:
				if l == nil || !l.IsConv() || l.KH != 1 || l.KW != 1 ||
					l.OutC != d.OutC || l.InC != d.InC {
					return nil, nil, badRecord("conv1x1", d.Name)
				}
			default: // DenseFC (modelfile rejects other kinds at read time)
				if l == nil || l.Kind != model.FC || l.OutC != d.OutC || l.InC != d.InC {
					return nil, nil, badRecord("fc", d.Name)
				}
			}
			var w *tensor.Tensor
			if d.Kind == modelfile.DenseConv1x1 {
				w = tensor.FromSlice(d.Weights, d.OutC, d.InC, 1, 1)
			} else {
				w = tensor.FromSlice(d.Weights, d.OutC, d.InC)
			}
			params.Dense[d.Name] = &DenseParams{W: w, Bias: d.Bias}
		}
		for _, bn := range mf.BNs {
			l := mf.Net.Layer(bn.Name)
			if l == nil || l.Kind != model.BatchNorm || len(bn.Gamma) != l.OutC {
				return nil, nil, badRecord("batchnorm", bn.Name)
			}
			params.BNs[bn.Name] = &BNParams{
				Gamma: bn.Gamma, Beta: bn.Beta, Mean: bn.Mean, Var: bn.Var, Eps: bn.Eps,
			}
		}
		// The artifact name is the serving identity; the topology keeps its
		// own display name.
		m := *mf.Net
		m.Short = name
		return &m, params, nil
	}

	// V1 chain convention.
	if len(mf.Layers) == 0 {
		return nil, nil, fmt.Errorf("execgraph: artifact %s holds no conv layers", name)
	}
	first := mf.Layers[0].Conv
	m := &model.Model{
		Name: mf.LR.Model, Short: name,
		InC: first.InChannels(), InH: first.InH, InW: first.InW,
	}
	m.Layers = append(m.Layers, &model.Layer{
		Name: "input", Kind: model.Input,
		OutC: m.InC, OutH: m.InH, OutW: m.InW,
	})
	c, h, w := m.InC, m.InH, m.InW
	for i, layer := range mf.Layers {
		pc := layer.Conv
		if pc.InChannels() != c {
			return nil, nil, fmt.Errorf("execgraph: artifact %s: layer %s expects %d input channels but the trunk carries %d",
				name, pc.Name, pc.InChannels(), c)
		}
		if pc.InH != h || pc.InW != w {
			k := 0
			if pc.InH > 0 && pc.InW > 0 && h%pc.InH == 0 && w%pc.InW == 0 && h/pc.InH == w/pc.InW {
				k = h / pc.InH
			}
			if k < 2 {
				return nil, nil, fmt.Errorf("execgraph: artifact %s: layer %s expects %dx%d input but the trunk carries %dx%d (no stride==kernel pool bridges them)",
					name, pc.Name, pc.InH, pc.InW, h, w)
			}
			// A composite shrink ratio admits more than one pool decomposition
			// (32→8 is one 4×4 pool or two 2×2 pools), and max is not
			// associative across window splits — the choices compute different
			// values. The chain convention is only deterministic for prime
			// ratios, where a single k×k pool is the unique bridge; anything
			// else is rejected rather than silently picking one reading.
			if !isPrime(k) {
				return nil, nil, fmt.Errorf("execgraph: artifact %s: layer %s expects %dx%d input but the trunk carries %dx%d; the %dx shrink is composite and admits multiple stride==kernel pool decompositions — write the pools into the topology (v2) instead of relying on chain inference",
					name, pc.Name, pc.InH, pc.InW, h, w, k)
			}
			m.Layers = append(m.Layers, &model.Layer{
				Name: fmt.Sprintf("pool%d", i), Kind: model.MaxPool, InC: c, OutC: c,
				KH: k, KW: k, Stride: k, InH: h, InW: w, OutH: pc.InH, OutW: pc.InW,
			})
			h, w = pc.InH, pc.InW
		}
		kind, groups := model.Conv, 1
		if pc.Depthwise {
			kind, groups = model.DWConv, pc.InChannels()
		}
		m.Layers = append(m.Layers, &model.Layer{
			Name: pc.Name, Kind: kind, InC: pc.InChannels(), OutC: pc.OutC,
			KH: pc.KH, KW: pc.KW, Stride: pc.Stride, Pad: pc.Pad, Groups: groups,
			InH: pc.InH, InW: pc.InW, OutH: pc.OutH, OutW: pc.OutW, HasBias: true,
		})
		m.Layers = append(m.Layers, &model.Layer{
			Name: fmt.Sprintf("relu%d", i), Kind: model.ReLU, InC: pc.OutC, OutC: pc.OutC,
			InH: pc.OutH, InW: pc.OutW, OutH: pc.OutH, OutW: pc.OutW,
		})
		c, h, w = pc.OutC, pc.OutH, pc.OutW
	}
	return m, params, nil
}

// isPrime reports whether k >= 2 has no divisor other than 1 and itself —
// the condition under which a spatial shrink ratio has exactly one
// stride==kernel pool decomposition.
func isPrime(k int) bool {
	if k < 2 {
		return false
	}
	for d := 2; d*d <= k; d++ {
		if k%d == 0 {
			return false
		}
	}
	return true
}
