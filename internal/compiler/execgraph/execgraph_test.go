package execgraph

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/model"
	"patdnn/internal/modelfile"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

// bottleneckModel hand-builds one ResNet-style bottleneck block on a small
// feature map: conv1x1 → bn → relu → conv3x3 → bn → relu → conv1x1 → bn →
// add(identity) → relu. Every fusion the graph passes implement fires on it.
func bottleneckModel() *model.Model {
	const c, w, h = 16, 8, 8
	m := &model.Model{Name: "Bottleneck", Short: "BTL", Dataset: "synthetic",
		Classes: 4, InC: c, InH: h, InW: w}
	conv := func(name string, inC, outC, k, pad int) *model.Layer {
		return &model.Layer{Name: name, Kind: model.Conv, InC: inC, OutC: outC,
			KH: k, KW: k, Stride: 1, Pad: pad, Groups: 1,
			InH: h, InW: w, OutH: h, OutW: w, HasBias: true}
	}
	bn := func(name string, ch int) *model.Layer {
		return &model.Layer{Name: name, Kind: model.BatchNorm, InC: ch, OutC: ch,
			InH: h, InW: w, OutH: h, OutW: w}
	}
	relu := func(name string, ch int) *model.Layer {
		return &model.Layer{Name: name, Kind: model.ReLU, InC: ch, OutC: ch,
			InH: h, InW: w, OutH: h, OutW: w}
	}
	m.Layers = []*model.Layer{
		{Name: "input", Kind: model.Input, OutC: c, OutH: h, OutW: w},
		conv("a", c, 8, 1, 0), bn("bn_a", 8), relu("relu_a", 8),
		conv("b", 8, 8, 3, 1), bn("bn_b", 8), relu("relu_b", 8),
		conv("c", 8, c, 1, 0), bn("bn_c", c),
		{Name: "add1", Kind: model.Add, InC: c, OutC: c, InH: h, InW: w,
			OutH: h, OutW: w, ShortcutOf: "input"},
		relu("relu_out", c),
	}
	return m
}

func genInput(m *model.Model, seed int64) *tensor.Tensor {
	x := tensor.New(m.InC, m.InH, m.InW)
	x.Randn(rand.New(rand.NewSource(seed)), 1)
	return x
}

func compileAt(t testing.TB, m *model.Model, level string) (*Plan, *Params) {
	t.Helper()
	params, err := Generate(m, 8, 3.6, 42)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(m, params, Config{Level: level})
	if err != nil {
		t.Fatal(err)
	}
	return plan, params
}

func TestBottleneckFusesEverything(t *testing.T) {
	plan, _ := compileAt(t, bottleneckModel(), "auto")
	// conv+bn ×3, residual add fused into the tail conv, relus fused: the
	// executed plan holds input + 3 convs only.
	if len(plan.Nodes) != 4 {
		for _, n := range plan.Nodes {
			t.Logf("node %s kind=%s op=%s", n.Name, n.Kind, n.Op)
		}
		t.Fatalf("plan has %d nodes, want 4 (input + 3 fully-fused convs)", len(plan.Nodes))
	}
	if plan.Fused.ConvBN != 3 || plan.Fused.Residual != 1 || plan.Fused.ConvReLU != 3 {
		t.Fatalf("fused ops = %+v, want 3 BN / 1 residual / 3 ReLU", plan.Fused)
	}
	tail := plan.Nodes[len(plan.Nodes)-1]
	if tail.Shortcut < 0 || !tail.ReLU {
		t.Fatalf("tail conv did not absorb add+relu: %+v", tail)
	}
	for _, n := range plan.Nodes {
		if strings.Contains(n.Op, "batchnorm") || n.Kind == KindAdd || n.Kind == KindReLU {
			t.Fatalf("unfused node survived: %s (%s)", n.Name, n.Op)
		}
	}
}

func TestBottleneckMatchesReference(t *testing.T) {
	m := bottleneckModel()
	for _, level := range []string{"tuned", "packed", "auto"} {
		plan, params := compileAt(t, m, level)
		x := genInput(m, 7)
		want, err := Reference(m, params, x)
		if err != nil {
			t.Fatal(err)
		}
		pool := runtime.NewPool(2)
		out := tensor.New(plan.OutC, plan.OutH, plan.OutW)
		plan.Execute(pool, []*tensor.Tensor{x}, []*tensor.Tensor{out})
		if d := out.MaxAbsDiff(want); d > 1e-4 {
			t.Fatalf("level %s: executor diverged from dense reference by %g", level, d)
		}
	}
}

func TestArenaReusesBuffers(t *testing.T) {
	// Deep feed-forward nets must reuse heavily; a 4-node fully-fused
	// bottleneck has nothing reusable (everything stays live for the
	// shortcut), so the reuse assertion applies to the real nets.
	for _, m := range []*model.Model{model.VGG16("cifar10"), model.ResNet50("cifar10")} {
		plan, _ := compileAt(t, m, "tuned")
		planned, naive := plan.ArenaBytes()
		if planned <= 0 || naive <= 0 {
			t.Fatalf("%s: empty arena plan", m.Name)
		}
		if float64(planned) > 0.5*float64(naive) {
			t.Fatalf("%s: weak liveness reuse: planned %d vs naive %d", m.Name, planned, naive)
		}
	}
}

// TestArenaSlotsNeverAliasLiveTensors checks the memory plan structurally: no
// node's output buffer may coincide with a buffer still holding a live input
// (a tensor consumed by this or a later node), and padding scratch must not
// alias anything live during its node.
func TestArenaSlotsNeverAliasLiveTensors(t *testing.T) {
	for _, m := range []*model.Model{bottleneckModel(), model.ResNet50("cifar10")} {
		plan, _ := compileAt(t, m, "tuned")
		last := make([]int, len(plan.Nodes))
		for i := range last {
			last[i] = i
		}
		for id, n := range plan.Nodes {
			for _, in := range n.Inputs {
				if id > last[in] {
					last[in] = id
				}
			}
		}
		last[len(plan.Nodes)-1] = len(plan.Nodes)
		for i, n := range plan.Nodes {
			for j := 0; j < i; j++ {
				if last[j] >= i && plan.Nodes[j].slot == n.slot {
					t.Fatalf("%s: node %s reuses the buffer of still-live %s",
						m.Name, n.Name, plan.Nodes[j].Name)
				}
				if last[j] >= i && n.padSlot >= 0 && plan.Nodes[j].slot == n.padSlot {
					t.Fatalf("%s: pad scratch of %s aliases live %s",
						m.Name, n.Name, plan.Nodes[j].Name)
				}
			}
			if n.padSlot >= 0 && n.padSlot == n.slot {
				t.Fatalf("%s: node %s pad scratch aliases its own output", m.Name, n.Name)
			}
		}
	}
}

// TestExecutorBatchedZeroAllocs is the arena-reuse acceptance check: a warm
// executor sweeping a batch over a ResNet bottleneck block performs zero
// steady-state allocations. Workers=1 keeps ParallelFor on the calling
// goroutine so goroutine spawns don't count against the kernel path.
func TestExecutorBatchedZeroAllocs(t *testing.T) {
	m := bottleneckModel()
	plan, _ := compileAt(t, m, "packed")
	pool := runtime.NewPool(1)
	const batch = 4
	xs := make([]*tensor.Tensor, batch)
	outs := make([]*tensor.Tensor, batch)
	for i := range xs {
		xs[i] = genInput(m, int64(i))
		outs[i] = tensor.New(plan.OutC, plan.OutH, plan.OutW)
	}
	ex := plan.NewExecutor()
	ex.Run(pool, xs, outs) // warm the per-item states
	if allocs := testing.AllocsPerRun(10, func() {
		ex.Run(pool, xs, outs)
	}); allocs != 0 {
		t.Fatalf("batched sweep allocates %.1f objects/run in steady state, want 0", allocs)
	}
}

// TestConcurrentGraphCompileHammer compiles plans and executes batches from
// many goroutines simultaneously — the -race check over concurrent graph-plan
// compiles sharing the worker pool and the per-plan executor pools.
func TestConcurrentGraphCompileHammer(t *testing.T) {
	m := bottleneckModel()
	params, err := Generate(m, 8, 3.6, 42)
	if err != nil {
		t.Fatal(err)
	}
	pool := runtime.NewPool(4)
	shared, err := Compile(m, params, Config{Level: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			levels := []string{"tuned", "packed", "auto"}
			for i := 0; i < 6; i++ {
				// Fresh compile per iteration: concurrent codegen over shared
				// params must be race-free.
				plan, err := Compile(m, params, Config{Level: levels[(g+i)%len(levels)]})
				if err != nil {
					t.Error(err)
					return
				}
				for _, pl := range []*Plan{plan, shared} {
					xs := []*tensor.Tensor{genInput(m, int64(g*100+i))}
					outs := []*tensor.Tensor{tensor.New(pl.OutC, pl.OutH, pl.OutW)}
					pl.Execute(pool, xs, outs)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestUnsupportedStemRejectedFast(t *testing.T) {
	// ResNet-50/ImageNet starts with a 7×7 conv the pattern compiler cannot
	// express; both Generate and Compile must reject it descriptively.
	m := model.ResNet50("imagenet")
	if _, err := Generate(m, 8, 3.6, 1); err == nil || !strings.Contains(err.Error(), "7x7") {
		t.Fatalf("Generate err = %v, want 7x7 rejection", err)
	}
	if err := ValidateModel(m); err == nil {
		t.Fatal("ValidateModel accepted a 7x7 stem")
	}
}

// TestFromFileRejectsMismatchedRecords pins the artifact cross-validation: a
// v2 file whose records are individually well-formed but disagree with the
// topology must fail the load (a quarantinable error), not panic inside BN
// folding or a kernel at serve time.
func TestFromFileRejectsMismatchedRecords(t *testing.T) {
	m := bottleneckModel()
	params, err := Generate(m, 8, 3.6, 42)
	if err != nil {
		t.Fatal(err)
	}
	base := func() *modelfile.File {
		f := &modelfile.File{LR: &lr.Representation{Model: m.Name, Device: "CPU"}, Net: m}
		for _, name := range []string{"b"} {
			cp := params.Convs[name]
			f.Layers = append(f.Layers, modelfile.Layer{Conv: cp.Conv, Bias: cp.Bias})
		}
		for _, name := range []string{"a", "c"} {
			dp := params.Dense[name]
			l := m.Layer(name)
			f.Dense = append(f.Dense, modelfile.DenseLayer{
				Name: name, Kind: modelfile.DenseConv1x1,
				OutC: l.OutC, InC: l.InC, Stride: l.Stride,
				InH: l.InH, InW: l.InW, OutH: l.OutH, OutW: l.OutW,
				Weights: dp.W.Data, Bias: dp.Bias,
			})
		}
		for _, name := range []string{"bn_a", "bn_b", "bn_c"} {
			bp := params.BNs[name]
			f.BNs = append(f.BNs, modelfile.BNLayer{
				Name: name, Gamma: bp.Gamma, Beta: bp.Beta,
				Mean: bp.Mean, Var: bp.Var, Eps: bp.Eps,
			})
		}
		return f
	}

	// The well-formed artifact loads and compiles.
	good := base()
	gm, gp, err := FromFile("btl", good)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(gm, gp, Config{Level: "tuned"}); err != nil {
		t.Fatal(err)
	}

	mutate := []struct {
		name string
		mod  func(f *modelfile.File)
	}{
		{"bn-wrong-channels", func(f *modelfile.File) {
			f.BNs[0].Gamma = f.BNs[0].Gamma[:1]
			f.BNs[0].Beta = f.BNs[0].Beta[:1]
			f.BNs[0].Mean = f.BNs[0].Mean[:1]
			f.BNs[0].Var = f.BNs[0].Var[:1]
		}},
		{"dense-wrong-outc", func(f *modelfile.File) { f.Dense[0].OutC = 4 }},
		{"dense-wrong-kind", func(f *modelfile.File) { f.Dense[0].Kind = modelfile.DenseFC }},
		{"dense-unknown-layer", func(f *modelfile.File) { f.Dense[0].Name = "ghost" }},
		{"bn-unknown-layer", func(f *modelfile.File) { f.BNs[0].Name = "ghost" }},
		{"conv-wrong-geometry", func(f *modelfile.File) { f.Layers[0].Conv.OutH = 99 }},
	}
	for _, mu := range mutate {
		f := base()
		mu.mod(f)
		fm, fp, err := FromFile("btl", f)
		if err != nil {
			continue // rejected at load: the desired outcome
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: compile panicked instead of erroring: %v", mu.name, r)
				}
			}()
			if _, err := Compile(fm, fp, Config{Level: "tuned"}); err == nil {
				t.Fatalf("%s: inconsistent artifact compiled cleanly", mu.name)
			}
		}()
	}
}
