package execgraph

// Differential coverage for the image-to-image path: transposed convs lower
// to stride-1 equivalent convs over dilated input, upsample branches fuse
// into conv epilogues, and every optimization level must agree with the
// dense, unfused Reference walk (direct scatter-form ConvTranspose2D, no
// kernel flip) to 1e-4.

import (
	"bytes"
	"testing"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/model"
	"patdnn/internal/modelfile"
	"patdnn/internal/runtime"
	"patdnn/internal/tensor"
)

// convTChain builds input → convT → bn → relu chains over a small map for a
// sweep of (stride, pad, outPad) geometries.
func convTChain(inC, outC, h, w, stride, pad, outPad int) *model.Model {
	outH := (h-1)*stride - 2*pad + 3 + outPad
	outW := (w-1)*stride - 2*pad + 3 + outPad
	m := &model.Model{Name: "ConvTChain", Short: "CTC", Dataset: "synthetic",
		InC: inC, InH: h, InW: w}
	m.Layers = []*model.Layer{
		{Name: "input", Kind: model.Input, OutC: inC, OutH: h, OutW: w},
		{Name: "up", Kind: model.ConvTranspose, InC: inC, OutC: outC,
			KH: 3, KW: 3, Stride: stride, Pad: pad, OutPad: outPad, Groups: 1,
			InH: h, InW: w, OutH: outH, OutW: outW, HasBias: true},
		{Name: "bn", Kind: model.BatchNorm, InC: outC, OutC: outC,
			InH: outH, InW: outW, OutH: outH, OutW: outW},
		{Name: "relu", Kind: model.ReLU, InC: outC, OutC: outC,
			InH: outH, InW: outW, OutH: outH, OutW: outW},
	}
	return m
}

func TestConvTransposeGeometriesMatchReference(t *testing.T) {
	cases := []struct{ stride, pad, outPad int }{
		{1, 0, 0}, // pure deconv growth
		{1, 1, 0}, // same-size
		{2, 1, 1}, // the SR head: exact ×2
		{2, 0, 0},
		{2, 1, 0}, // odd output
		{3, 1, 2}, // stride 3, max outPad
	}
	for _, tc := range cases {
		m := convTChain(6, 5, 7, 9, tc.stride, tc.pad, tc.outPad)
		for _, level := range []string{"noopt", "tuned", "packed", "auto"} {
			plan, params := compileAt(t, m, level)
			x := genInput(m, 11)
			want, err := Reference(m, params, x)
			if err != nil {
				t.Fatal(err)
			}
			pool := runtime.NewPool(2)
			out := tensor.New(plan.OutC, plan.OutH, plan.OutW)
			plan.Execute(pool, []*tensor.Tensor{x}, []*tensor.Tensor{out})
			if d := out.MaxAbsDiff(want); d > 1e-4 {
				t.Fatalf("s=%d p=%d op=%d level %s: executor diverged from dense reference by %g",
					tc.stride, tc.pad, tc.outPad, level, d)
			}
		}
	}
}

func TestSRNetMatchesReferenceAllLevels(t *testing.T) {
	m, err := model.ByName("SR", "cifar10")
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []string{"noopt", "reorder", "lre", "tuned", "packed", "auto"} {
		plan, params := compileAt(t, m, level)
		want, err := Reference(m, params, genInput(m, 3))
		if err != nil {
			t.Fatal(err)
		}
		pool := runtime.NewPool(4)
		// Batched execution with distinct inputs: item 0 carries the seed the
		// reference ran, the second item guards against cross-item aliasing.
		xs := []*tensor.Tensor{genInput(m, 3), genInput(m, 4)}
		outs := []*tensor.Tensor{
			tensor.New(plan.OutC, plan.OutH, plan.OutW),
			tensor.New(plan.OutC, plan.OutH, plan.OutW),
		}
		plan.Execute(pool, xs, outs)
		if d := outs[0].MaxAbsDiff(want); d > 1e-4 {
			t.Fatalf("level %s: SR executor diverged from dense reference by %g", level, d)
		}
		if plan.OutC != 3 || plan.OutH != 2*m.InH || plan.OutW != 2*m.InW {
			t.Fatalf("level %s: SR output geometry %dx%dx%d, want 3x%dx%d",
				level, plan.OutC, plan.OutH, plan.OutW, 2*m.InH, 2*m.InW)
		}
	}
}

func TestSRNetFusion(t *testing.T) {
	m, err := model.ByName("SR", "cifar10")
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := compileAt(t, m, "auto")
	var convT, upsample, bn int
	for _, n := range plan.Nodes {
		switch n.Kind {
		case KindConvT:
			convT++
		case KindUpsample:
			upsample++
		}
		if n.Op == "batchnorm" {
			bn++
		}
	}
	if convT != 1 || upsample != 1 {
		t.Fatalf("plan has %d convT / %d upsample nodes, want 1 / 1", convT, upsample)
	}
	if bn != 0 {
		t.Fatalf("%d BatchNorm nodes survived folding", bn)
	}
	// Both residuals fuse: the local conv3 skip and the global up_skip into
	// conv_out's epilogue.
	if plan.Fused.Residual != 2 {
		t.Fatalf("fused %d residual adds, want 2", plan.Fused.Residual)
	}
}

func TestSRNetModelfileRoundTrip(t *testing.T) {
	m, err := model.ByName("SR", "cifar10")
	if err != nil {
		t.Fatal(err)
	}
	roundTripMatches(t, m)
}

// roundTripMatches writes a v2 graph artifact of m (generated params), reads
// it back through modelfile + FromFile, and checks the reloaded executor
// still matches the original dense reference. FP16 weight storage caps
// agreement at ~1e-2 relative, so the tolerance here is looser than the
// in-memory differential suite's 1e-4.
func roundTripMatches(t *testing.T, m *model.Model) {
	t.Helper()
	params, err := Generate(m, 8, 3.6, 42)
	if err != nil {
		t.Fatal(err)
	}
	file := &modelfile.File{LR: &lr.Representation{Model: m.Name, Device: "CPU"}, Net: m}
	for _, l := range m.Layers {
		switch l.Kind {
		case model.Conv, model.DWConv, model.ConvTranspose:
			if cp, ok := params.Convs[l.Name]; ok {
				file.Layers = append(file.Layers, modelfile.Layer{Conv: cp.Conv, Bias: cp.Bias})
				continue
			}
			dp := params.Dense[l.Name]
			file.Dense = append(file.Dense, modelfile.DenseLayer{
				Name: l.Name, Kind: modelfile.DenseConv1x1,
				OutC: l.OutC, InC: l.InC, Stride: l.Stride,
				InH: l.InH, InW: l.InW, OutH: l.OutH, OutW: l.OutW,
				Weights: dp.W.Data, Bias: dp.Bias,
			})
		case model.BatchNorm:
			bp := params.BNs[l.Name]
			file.BNs = append(file.BNs, modelfile.BNLayer{
				Name: l.Name, Gamma: bp.Gamma, Beta: bp.Beta,
				Mean: bp.Mean, Var: bp.Var, Eps: bp.Eps,
			})
		}
	}
	var buf bytes.Buffer
	if err := modelfile.Write(&buf, file); err != nil {
		t.Fatal(err)
	}
	rf, err := modelfile.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rm, rp, err := FromFile("sr-rt", rf)
	if err != nil {
		t.Fatal(err)
	}
	if got := rm.Layer("up"); got == nil || got.Kind != model.ConvTranspose || got.OutPad != 1 {
		t.Fatalf("reloaded topology lost the transposed conv: %+v", got)
	}
	plan, err := Compile(rm, rp, Config{Level: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	x := genInput(m, 5)
	pool := runtime.NewPool(2)
	out := tensor.New(plan.OutC, plan.OutH, plan.OutW)
	plan.Execute(pool, []*tensor.Tensor{x}, []*tensor.Tensor{out})
	// The reloaded executor must match the reloaded params' reference exactly
	// (differential), and the original reference loosely (FP16 weight storage).
	reloaded, err := Reference(rm, rp, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := out.MaxAbsDiff(reloaded); d > 1e-4 {
		t.Fatalf("reloaded executor diverged from reloaded reference by %g", d)
	}
	orig, err := Reference(m, params, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := out.MaxAbsDiff(orig); d > 0.05 {
		t.Fatalf("reloaded artifact diverged from the original reference by %g", d)
	}
}

// TestConvTransposeBatchParallelRace exists for the -race CI job: a batched
// sweep where dilate-pad scratch and conv ranges run concurrently across
// batch × channel.
func TestConvTransposeBatchParallelRace(t *testing.T) {
	m := convTChain(8, 8, 6, 6, 2, 1, 1)
	plan, params := compileAt(t, m, "packed")
	pool := runtime.NewPool(4)
	const batch = 8
	xs := make([]*tensor.Tensor, batch)
	outs := make([]*tensor.Tensor, batch)
	for i := range xs {
		xs[i] = genInput(m, int64(100+i))
		outs[i] = tensor.New(plan.OutC, plan.OutH, plan.OutW)
	}
	plan.Execute(pool, xs, outs)
	for i := range xs {
		want, err := Reference(m, params, xs[i])
		if err != nil {
			t.Fatal(err)
		}
		if d := outs[i].MaxAbsDiff(want); d > 1e-4 {
			t.Fatalf("batch item %d diverged by %g", i, d)
		}
	}
}
