package execgraph

// Reference is the dense, unfused forward pass over the same Params a plan
// compiles from: convolutions run through tensor.Conv2D on the pruned dense
// weights, BatchNorm applies as a separate inference op (not folded),
// residual adds materialize, and activations run standalone. Differential
// tests compare the fused graph executor against this walk — any BN-folding
// scale bug, residual sign error, or shape mix-up shows up as a mismatch.

import (
	"fmt"

	"patdnn/internal/compiler/graphopt"
	"patdnn/internal/model"
	"patdnn/internal/tensor"
)

// Reference computes the dense reference forward pass of m on x using params.
func Reference(m *model.Model, params *Params, x *tensor.Tensor) (*tensor.Tensor, error) {
	outs := make([]*tensor.Tensor, len(m.Layers))
	byName := make(map[string]int, len(m.Layers))
	for i, l := range m.Layers {
		var in *tensor.Tensor
		switch {
		case graphopt.IsBranchLayer(l):
			src, ok := byName[l.ShortcutOf]
			if !ok {
				return nil, fmt.Errorf("execgraph: reference: branch %s has unknown source %q", l.Name, l.ShortcutOf)
			}
			in = outs[src]
		case i > 0:
			in = outs[i-1]
		}
		var out *tensor.Tensor
		switch l.Kind {
		case model.Input:
			out = x
		case model.Conv, model.DWConv:
			var err error
			out, err = refConv(l, params, in)
			if err != nil {
				return nil, err
			}
		case model.ConvTranspose:
			cp, ok := params.Convs[l.Name]
			if !ok {
				return nil, fmt.Errorf("execgraph: reference: no parameters for transposed conv %s", l.Name)
			}
			var bias *tensor.Tensor
			if cp.Bias != nil {
				bias = tensor.FromSlice(cp.Bias, len(cp.Bias))
			}
			// The direct scatter form — no kernel flip, no input dilation —
			// so the equivalent-conv lowering is checked against genuinely
			// independent arithmetic.
			out = tensor.ConvTranspose2D(in, cp.Conv.Weights, bias, l.Stride, l.Pad, l.OutPad)
		case model.Upsample:
			out = tensor.Upsample2D(in, l.Stride)
		case model.BatchNorm:
			bn, ok := params.BNs[l.Name]
			if !ok {
				return nil, fmt.Errorf("execgraph: reference: no parameters for batchnorm %s", l.Name)
			}
			out = tensor.BatchNormInference(in.Clone(),
				tensor.FromSlice(bn.Gamma, len(bn.Gamma)),
				tensor.FromSlice(bn.Beta, len(bn.Beta)),
				tensor.FromSlice(bn.Mean, len(bn.Mean)),
				tensor.FromSlice(bn.Var, len(bn.Var)), bn.Eps)
		case model.ReLU:
			out = tensor.ReLU(in.Clone())
		case model.MaxPool:
			out, _ = tensor.MaxPool2D(in, l.KH)
		case model.AvgPoolGlobal:
			out = tensor.AvgPool2DGlobal(in)
		case model.Add:
			main, shortcut := in, (*tensor.Tensor)(nil)
			if i > 0 && graphopt.IsBranchLayer(m.Layers[i-1]) {
				// The branch layer (projection conv or skip upsample) sits
				// between the main path and the add: main is the layer before
				// the branch, shortcut the branch output.
				main, shortcut = outs[i-2], outs[i-1]
			} else {
				src, ok := byName[l.ShortcutOf]
				if !ok {
					return nil, fmt.Errorf("execgraph: reference: add %s has unknown shortcut %q", l.Name, l.ShortcutOf)
				}
				shortcut = outs[src]
			}
			out = tensor.New(main.Dim(0), main.Dim(1), main.Dim(2))
			tensor.AddInto(main, shortcut, out)
		case model.Flatten:
			out = tensor.FromSlice(in.Data, in.Len(), 1, 1)
		case model.FC:
			dp, ok := params.Dense[l.Name]
			if !ok {
				return nil, fmt.Errorf("execgraph: reference: no parameters for fc %s", l.Name)
			}
			out = tensor.New(l.OutC, 1, 1)
			tensor.FCIntoRange(out, dp.W, in, dp.Bias, false, 0, l.OutC)
		case model.SoftmaxOp:
			out = tensor.New(in.Dim(0), 1, 1)
			tensor.SoftmaxInto(in, out)
		default:
			return nil, fmt.Errorf("execgraph: reference: unsupported operator %s (%s)", l.Kind, l.Name)
		}
		outs[i] = out
		byName[l.Name] = i
	}
	if len(outs) == 0 {
		return nil, fmt.Errorf("execgraph: reference: empty model")
	}
	return outs[len(outs)-1], nil
}

// refConv runs one conv layer densely: standard convs via tensor.Conv2D on
// the pruned dense weights, depthwise channel by channel.
func refConv(l *model.Layer, params *Params, in *tensor.Tensor) (*tensor.Tensor, error) {
	spec := tensor.ConvSpec{Stride: l.Stride, Pad: l.Pad}
	if l.KH == 3 {
		cp, ok := params.Convs[l.Name]
		if !ok {
			return nil, fmt.Errorf("execgraph: reference: no parameters for conv %s", l.Name)
		}
		var bias *tensor.Tensor
		if cp.Bias != nil {
			bias = tensor.FromSlice(cp.Bias, len(cp.Bias))
		}
		if l.Kind == model.DWConv {
			return refDepthwise(cp.Conv.Weights, in, bias, spec), nil
		}
		return tensor.Conv2D(in, cp.Conv.Weights, bias, spec), nil
	}
	dp, ok := params.Dense[l.Name]
	if !ok {
		return nil, fmt.Errorf("execgraph: reference: no parameters for 1x1 conv %s", l.Name)
	}
	var bias *tensor.Tensor
	if dp.Bias != nil {
		bias = tensor.FromSlice(dp.Bias, len(dp.Bias))
	}
	return tensor.Conv2D(in, dp.W, bias, spec), nil
}

// refDepthwise computes a depthwise conv channel by channel with the dense
// reference kernel: weights are [C,1,Kh,Kw], channel c's kernel convolves
// input plane c only.
func refDepthwise(w, in, bias *tensor.Tensor, spec tensor.ConvSpec) *tensor.Tensor {
	c, h, wd := in.Dim(0), in.Dim(1), in.Dim(2)
	kh, kw := w.Dim(2), w.Dim(3)
	ho := tensor.ConvOutDim(h, kh, spec.Stride, spec.Pad)
	wo := tensor.ConvOutDim(wd, kw, spec.Stride, spec.Pad)
	out := tensor.New(c, ho, wo)
	for ch := 0; ch < c; ch++ {
		plane := tensor.FromSlice(in.Data[ch*h*wd:(ch+1)*h*wd], 1, h, wd)
		kernel := tensor.FromSlice(w.Data[ch*kh*kw:(ch+1)*kh*kw], 1, 1, kh, kw)
		var b *tensor.Tensor
		if bias != nil {
			b = tensor.FromSlice(bias.Data[ch:ch+1], 1)
		}
		res := tensor.Conv2D(plane, kernel, b, spec)
		copy(out.Data[ch*ho*wo:(ch+1)*ho*wo], res.Data)
	}
	return out
}
