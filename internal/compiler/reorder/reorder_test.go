package reorder

import (
	"testing"
	"testing/quick"

	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
)

// tinyLayer builds a hand-crafted pruned layer resembling Figure 9's example:
// filters with mixed lengths and pattern IDs.
func tinyLayer() *pruned.Conv {
	set := pattern.Canonical(2)
	return &pruned.Conv{
		Name: "fig9", OutC: 6, InC: 4, KH: 3, KW: 3, Set: set,
		IDs: []int{
			2, 0, 1, 0, // filter 0: len 2
			1, 2, 2, 0, // filter 1: len 3
			2, 2, 2, 1, // filter 2: len 4
			0, 2, 0, 1, // filter 3: len 2
			1, 0, 2, 1, // filter 4: len 3
			1, 2, 1, 2, // filter 5: len 4
		},
	}
}

func genLayer(seed int64) *pruned.Conv {
	m := model.VGG16("cifar10")
	return pruned.Generate(m.ConvLayers()[2], pattern.Canonical(8), 3.6, seed, false)
}

func TestBuildGroupsByDescendingLength(t *testing.T) {
	c := tinyLayer()
	p := Build(c)
	lengths := p.Lengths(c)
	for i := 1; i < len(lengths); i++ {
		if lengths[i] > lengths[i-1] {
			t.Fatalf("lengths not sorted descending: %v", lengths)
		}
	}
	// Groups: len4 x2, len3 x2, len2 x2.
	if len(p.Groups) != 3 {
		t.Fatalf("groups = %+v, want 3 groups", p.Groups)
	}
	wantLens := []int{4, 3, 2}
	for i, g := range p.Groups {
		if g.Length != wantLens[i] || g.End-g.Start != 2 {
			t.Fatalf("group %d = %+v", i, g)
		}
	}
}

func TestFilterPermIsPermutation(t *testing.T) {
	c := genLayer(1)
	p := Build(c)
	seen := make([]bool, c.OutC)
	for _, f := range p.FilterPerm {
		if f < 0 || f >= c.OutC || seen[f] {
			t.Fatalf("invalid permutation: %v...", p.FilterPerm[:10])
		}
		seen[f] = true
	}
}

func TestKernelOrderSortedByPatternID(t *testing.T) {
	c := genLayer(2)
	p := Build(c)
	for pos, ks := range p.KernelOrder {
		f := p.FilterPerm[pos]
		prev := 0
		for _, k := range ks {
			id := c.ID(f, k)
			if id == 0 {
				t.Fatalf("empty kernel %d in kernel order of filter %d", k, f)
			}
			if id < prev {
				t.Fatalf("kernel order not sorted by pattern ID in filter %d", f)
			}
			prev = id
		}
		if len(ks) != c.FilterLength(f) {
			t.Fatalf("filter %d kernel order misses kernels", f)
		}
	}
}

func TestReorderImprovesLoadBalance(t *testing.T) {
	c := genLayer(3)
	before := Identity(c).LoadImbalance(c, 8)
	after := Build(c).LoadImbalance(c, 8)
	if after > before+1e-9 {
		t.Fatalf("FKR worsened load imbalance: %.4f -> %.4f", before, after)
	}
}

func TestReorderReducesBranches(t *testing.T) {
	c := genLayer(4)
	id := Identity(c)
	fkr := Build(c)
	// Without kernel reorder the per-filter ID sequence is unsorted, so it
	// has at least as many pattern runs as the sorted one.
	if fkr.BranchCount(c, 1) > id.BranchCount(c, 1) {
		t.Fatalf("FKR increased branch count: %d -> %d",
			id.BranchCount(c, 1), fkr.BranchCount(c, 1))
	}
	// After kernel reorder, runs per filter <= number of distinct patterns.
	maxRuns := int64(len(c.Set)) * int64(c.OutC)
	if got := fkr.BranchCount(c, 1); got > maxRuns {
		t.Fatalf("branches %d exceed distinct-pattern bound %d", got, maxRuns)
	}
}

func TestRunsCoverAllKernels(t *testing.T) {
	c := tinyLayer()
	p := Build(c)
	for pos := range p.FilterPerm {
		total := 0
		prev := 0
		for _, r := range p.Runs(c, pos) {
			if r.PatternID == 0 {
				t.Fatal("run with empty pattern")
			}
			if r.PatternID < prev {
				t.Fatal("runs not ascending")
			}
			prev = r.PatternID
			total += len(r.Channels)
		}
		if total != c.FilterLength(p.FilterPerm[pos]) {
			t.Fatalf("runs cover %d kernels, want %d", total, c.FilterLength(p.FilterPerm[pos]))
		}
	}
}

func TestSimilarFiltersAdjacent(t *testing.T) {
	set := pattern.Canonical(3)
	// Filters 0 and 2 have identical signatures; 1 differs but same length.
	c := &pruned.Conv{
		Name: "sim", OutC: 3, InC: 3, KH: 3, KW: 3, Set: set,
		IDs: []int{
			1, 2, 0,
			3, 3, 0,
			2, 1, 0,
		},
	}
	p := Build(c)
	// After sorting by signature, filters 0 and 2 (sig [1 2]) must be
	// adjacent, with filter 1 (sig [3 3]) after them.
	if !((p.FilterPerm[0] == 0 && p.FilterPerm[1] == 2) ||
		(p.FilterPerm[0] == 2 && p.FilterPerm[1] == 0)) {
		t.Fatalf("similar filters not adjacent: %v", p.FilterPerm)
	}
}

func TestIdentityPreservesOrder(t *testing.T) {
	c := tinyLayer()
	p := Identity(c)
	for i, f := range p.FilterPerm {
		if f != i {
			t.Fatal("identity plan permutes filters")
		}
	}
}

// Property: for random pruned layers, Build always yields a valid
// permutation with monotone non-increasing lengths and intact kernel sets.
func TestBuildProperty(t *testing.T) {
	m := model.VGG16("cifar10")
	l := m.ConvLayers()[1]
	f := func(seed int64) bool {
		c := pruned.Generate(l, pattern.Canonical(6), 3.0, seed, false)
		p := Build(c)
		seen := make([]bool, c.OutC)
		for _, f := range p.FilterPerm {
			if seen[f] {
				return false
			}
			seen[f] = true
		}
		lens := p.Lengths(c)
		for i := 1; i < len(lens); i++ {
			if lens[i] > lens[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
