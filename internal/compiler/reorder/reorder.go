// Package reorder implements PatDNN's Filter Kernel Reorder (FKR, paper
// Section 5.2). FKR exploits that every kernel's pattern is known after
// training: it (1) groups filters with the same number of non-empty kernels
// ("length") together and orders similar filters adjacently, improving
// thread-level parallelism and load balance, and (2) sorts the kernels inside
// each filter by pattern ID so the generated code executes all kernels of one
// pattern consecutively with no per-kernel branching.
package reorder

import (
	"sort"

	"patdnn/internal/pruned"
)

// Group is a contiguous run of reordered filters sharing one length; the
// compiler maps a group to one GPU thread block or one CPU work chunk.
type Group struct {
	Start, End int // filter positions [Start, End) in the new order
	Length     int // non-empty kernels per filter in this group
}

// Plan is the result of FKR for one layer.
type Plan struct {
	// FilterPerm[newPos] = original filter index (the paper's reorder array).
	FilterPerm []int
	// KernelOrder[newPos] lists the original input-channel indices of the
	// filter's non-empty kernels, sorted by (pattern ID, channel).
	KernelOrder [][]int
	Groups      []Group
}

// Build computes the FKR plan for a pruned layer.
func Build(c *pruned.Conv) *Plan {
	type filterInfo struct {
		orig   int
		length int
		sig    []int // kernel pattern IDs sorted ascending (the similarity key)
	}
	infos := make([]filterInfo, c.OutC)
	for f := 0; f < c.OutC; f++ {
		var sig []int
		for k := 0; k < c.InC; k++ {
			if id := c.ID(f, k); id != 0 {
				sig = append(sig, id)
			}
		}
		sort.Ints(sig)
		infos[f] = filterInfo{orig: f, length: len(sig), sig: sig}
	}
	// Filter reorder: primary key length (descending, so heavy filters lead
	// and groups stay contiguous), secondary key the pattern-ID signature
	// (lexicographic — identical signatures become adjacent, maximizing the
	// similarity the paper's second criterion asks for), tertiary original
	// index for determinism.
	sort.SliceStable(infos, func(a, b int) bool {
		ia, ib := infos[a], infos[b]
		if ia.length != ib.length {
			return ia.length > ib.length
		}
		for i := range ia.sig {
			if ia.sig[i] != ib.sig[i] {
				return ia.sig[i] < ib.sig[i]
			}
		}
		return ia.orig < ib.orig
	})

	p := &Plan{
		FilterPerm:  make([]int, c.OutC),
		KernelOrder: make([][]int, c.OutC),
	}
	for newPos, fi := range infos {
		p.FilterPerm[newPos] = fi.orig
		// Kernel reorder: group kernels by pattern ID within the filter.
		ks := make([]int, 0, fi.length)
		for k := 0; k < c.InC; k++ {
			if c.ID(fi.orig, k) != 0 {
				ks = append(ks, k)
			}
		}
		orig := fi.orig
		sort.SliceStable(ks, func(a, b int) bool {
			ida, idb := c.ID(orig, ks[a]), c.ID(orig, ks[b])
			if ida != idb {
				return ida < idb
			}
			return ks[a] < ks[b]
		})
		p.KernelOrder[newPos] = ks
		// Group bookkeeping.
		if len(p.Groups) == 0 || p.Groups[len(p.Groups)-1].Length != fi.length {
			p.Groups = append(p.Groups, Group{Start: newPos, End: newPos + 1, Length: fi.length})
		} else {
			p.Groups[len(p.Groups)-1].End = newPos + 1
		}
	}
	return p
}

// Identity returns a no-reorder plan (used by the No-Opt code path): original
// filter order, kernels in channel order.
func Identity(c *pruned.Conv) *Plan {
	p := &Plan{
		FilterPerm:  make([]int, c.OutC),
		KernelOrder: make([][]int, c.OutC),
	}
	for f := 0; f < c.OutC; f++ {
		p.FilterPerm[f] = f
		for k := 0; k < c.InC; k++ {
			if c.ID(f, k) != 0 {
				p.KernelOrder[f] = append(p.KernelOrder[f], k)
			}
		}
	}
	p.Groups = []Group{{Start: 0, End: c.OutC, Length: -1}}
	return p
}

// Lengths returns the filter lengths in the plan's order; plotting this
// before (Identity) and after (Build) reorder reproduces Figure 14(a).
func (p *Plan) Lengths(c *pruned.Conv) []int {
	out := make([]int, len(p.FilterPerm))
	for pos, f := range p.FilterPerm {
		out[pos] = c.FilterLength(f)
	}
	return out
}

// LoadImbalance models the thread-divergence cost FKR removes: filters are
// dealt round-robin to `threads` workers in plan order and the result is
// (max-min)/max worker load in kernels. 0 = perfectly balanced.
func (p *Plan) LoadImbalance(c *pruned.Conv, threads int) float64 {
	if threads <= 0 {
		threads = 1
	}
	load := make([]int, threads)
	for pos, f := range p.FilterPerm {
		load[pos%threads] += c.FilterLength(f)
	}
	minL, maxL := load[0], load[0]
	for _, l := range load[1:] {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if maxL == 0 {
		return 0
	}
	return float64(maxL-minL) / float64(maxL)
}

// BranchCount estimates per-inference pattern-switch branches executed in the
// inner loop: without reorder the generated code re-dispatches on every
// kernel (one branch per kernel per output tile); with reorder it dispatches
// once per (filter, pattern) run. Tiles is the number of output tiles the
// layer is split into.
func (p *Plan) BranchCount(c *pruned.Conv, tiles int) int64 {
	if tiles < 1 {
		tiles = 1
	}
	var runs int64
	for pos := range p.FilterPerm {
		prev := -1
		for _, k := range p.KernelOrder[pos] {
			id := c.ID(p.FilterPerm[pos], k)
			if id != prev {
				runs++
				prev = id
			}
		}
	}
	return runs * int64(tiles)
}

// KernelRuns returns, for the filter at plan position pos, the consecutive
// (patternID, channels) runs after kernel reorder; the codegen emits one
// branchless loop per run.
type Run struct {
	PatternID int
	Channels  []int
}

// Runs computes the pattern runs for one reordered filter.
func (p *Plan) Runs(c *pruned.Conv, pos int) []Run {
	f := p.FilterPerm[pos]
	var runs []Run
	for _, k := range p.KernelOrder[pos] {
		id := c.ID(f, k)
		if len(runs) == 0 || runs[len(runs)-1].PatternID != id {
			runs = append(runs, Run{PatternID: id})
		}
		last := &runs[len(runs)-1]
		last.Channels = append(last.Channels, k)
	}
	return runs
}
