package tunedb

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
)

func testConv() *pruned.Conv {
	l := &pruned.Conv{
		Name: "conv1", OutC: 8, InC: 4, KH: 3, KW: 3,
		Stride: 1, Pad: 1, OutH: 12, OutW: 12, InH: 12, InW: 12,
		Set: pattern.Canonical(4),
		IDs: make([]int, 8*4),
	}
	for i := range l.IDs {
		l.IDs[i] = 1 + i%len(l.Set)
	}
	return l
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuning.json")
	db := Open(path)
	if s := db.Stats(); s.Entries != 0 || s.LoadError != "" {
		t.Fatalf("fresh DB not empty: %+v", s)
	}
	key := ConvKey(testConv(), "packed")
	if _, ok := db.Lookup(key); ok {
		t.Fatal("lookup hit on empty DB")
	}
	want := Entry{Config: lr.DefaultTuning(), CostMs: 1.5, Source: SourceSearch}
	db.Record(key, want)
	if err := db.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}

	re := Open(path)
	got, ok := re.Lookup(key)
	if !ok {
		t.Fatal("lookup miss after reload")
	}
	if got.Config != want.Config || got.CostMs != want.CostMs || got.Source != want.Source {
		t.Fatalf("reloaded entry %+v, want %+v", got, want)
	}
	s := re.Stats()
	if s.Entries != 1 || s.Hits != 1 || s.Misses != 0 || s.Quarantined != 0 {
		t.Fatalf("stats after reload: %+v", s)
	}
}

func TestKeyDiscriminates(t *testing.T) {
	a := ConvKey(testConv(), "packed")
	if b := ConvKey(testConv(), "tuned"); a.String() == b.String() {
		t.Fatal("level not in the key")
	}
	c2 := testConv()
	c2.IDs[3] = 0 // different sparsity structure, same geometry
	if b := ConvKey(c2, "packed"); a.String() == b.String() {
		t.Fatal("pattern assignment not in the key")
	}
	c3 := testConv()
	c3.InH, c3.InW = 24, 24
	if b := ConvKey(c3, "packed"); a.String() == b.String() {
		t.Fatal("geometry not in the key")
	}
}

func TestCorruptFileQuarantinedWhole(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuning.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := Open(path)
	s := db.Stats()
	if s.LoadError == "" {
		t.Fatal("corrupt file produced no LoadError")
	}
	if s.Entries != 0 {
		t.Fatalf("corrupt file produced %d entries", s.Entries)
	}
	// The DB must still be fully usable — and Save must rewrite the file.
	key := ConvKey(testConv(), "packed")
	db.Record(key, Entry{Config: lr.DefaultTuning(), Source: SourceHeuristic})
	if err := db.Save(); err != nil {
		t.Fatalf("Save over corrupt file: %v", err)
	}
	if re := Open(path); re.Len() != 1 || re.Stats().LoadError != "" {
		t.Fatalf("rewritten file not clean: %+v", re.Stats())
	}
}

func TestWrongVersionQuarantined(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuning.json")
	if err := os.WriteFile(path, []byte(`{"version": 99, "entries": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s := Open(path).Stats()
	if s.LoadError == "" || !strings.Contains(s.LoadError, "version") {
		t.Fatalf("wrong version not quarantined: %+v", s)
	}
}

func TestBadEntriesQuarantinedIndividually(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuning.json")
	good := record{Key: ConvKey(testConv(), "packed"),
		Entry: Entry{Config: lr.DefaultTuning(), Source: SourceMeasured}}
	badTile := good
	badTile.Key.Level = "tuned"
	badTile.Entry.Config.Tile[1] = 0
	badSource := good
	badSource.Key.Level = "lre"
	badSource.Entry.Source = "vibes"
	badKey := good
	badKey.Key.OutC = -1
	data, err := json.Marshal(fileFormat{Version: FormatVersion,
		Entries: []record{good, badTile, badSource, badKey, good /* duplicate */}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	db := Open(path)
	s := db.Stats()
	if s.Entries != 1 || s.Quarantined != 4 {
		t.Fatalf("got %d entries / %d quarantined, want 1 / 4", s.Entries, s.Quarantined)
	}
	if _, ok := db.Lookup(good.Key); !ok {
		t.Fatal("good entry lost alongside the quarantined ones")
	}
}

func TestMeasuredNeverDowngraded(t *testing.T) {
	db := Open("")
	key := ConvKey(testConv(), "packed")
	measured := lr.DefaultTuning()
	measured.Tile[1] = 8
	db.Record(key, Entry{Config: measured, CostMs: 0.5, Source: SourceMeasured})
	heuristic := lr.DefaultTuning()
	db.Record(key, Entry{Config: heuristic, Source: SourceHeuristic})
	if got, _ := db.Lookup(key); got.Source != SourceMeasured || got.Config != measured {
		t.Fatalf("measured entry downgraded to %+v", got)
	}
	// A newer measurement does replace it.
	measured2 := measured
	measured2.Tile[1] = 16
	db.Record(key, Entry{Config: measured2, CostMs: 0.4, Source: SourceMeasured})
	if got, _ := db.Lookup(key); got.Config != measured2 {
		t.Fatalf("fresh measurement not recorded: %+v", got)
	}
}

func TestInMemorySaveIsNoop(t *testing.T) {
	db := Open("")
	db.Record(ConvKey(testConv(), "packed"), Entry{Config: lr.DefaultTuning(), Source: SourceHeuristic})
	if err := db.Save(); err != nil {
		t.Fatalf("in-memory Save: %v", err)
	}
}

func TestSaveSkipsWhenClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuning.json")
	db := Open(path)
	db.Record(ConvKey(testConv(), "packed"), Entry{Config: lr.DefaultTuning(), Source: SourceHeuristic})
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	st1, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil { // clean: must not rewrite
		t.Fatal(err)
	}
	st2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st1.ModTime().Equal(st2.ModTime()) {
		t.Fatal("clean Save rewrote the file")
	}
}
