// Package tunedb persists auto-tuning decisions across processes: a versioned
// JSON sidecar (conventionally tuning.json next to a registry's .patdnn
// artifacts) mapping (layer shape, pattern-set signature, architecture,
// optimization level) to the execution configuration some earlier compile
// chose — whether by heuristic, compile-time GA search, or the serving
// engine's measured background tuner. A compile that hits the DB does zero
// search work, which is what makes the registry's lazy recompile-after-
// eviction path and warm server restarts cheap.
//
// The reader is checked the way the modelfile reader is: a corrupt file or a
// corrupt entry is quarantined (dropped and counted, visible in Stats) rather
// than crashing or poisoning the serving path — the DB is an accelerator, and
// losing it must never lose the ability to serve.
package tunedb

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/cpu"
	"patdnn/internal/pruned"
)

// FormatVersion is the sidecar file format version. A file with a different
// version is quarantined whole (treated as empty and rewritten on Save); the
// schema is not negotiated across versions.
const FormatVersion = 1

// Entry sources, in increasing order of trust: a heuristic guess, a
// compile-time search under the analytic cost model, and a background search
// under measured wall-clock evaluation.
const (
	SourceHeuristic = "heuristic"
	SourceSearch    = "search"
	SourceMeasured  = "measured"
)

// Key identifies one tuning decision: the pruned layer's geometry and
// sparsity summary, a signature over its pattern set and assignment, the
// architecture the decision was made on, and the codegen level it applies to.
// Two layers with equal keys execute identically, so a decision transfers
// between them (across models, processes, and restarts).
type Key struct {
	Arch      string `json:"arch"`
	Level     string `json:"level"`
	OutC      int    `json:"out_c"`
	InC       int    `json:"in_c"`
	KH        int    `json:"kh"`
	KW        int    `json:"kw"`
	InH       int    `json:"in_h"`
	InW       int    `json:"in_w"`
	Stride    int    `json:"stride"`
	Pad       int    `json:"pad"`
	Depthwise bool   `json:"depthwise,omitempty"`
	// NNZ and MaxFilterNNZ summarize the sparsity the tuner sized for; both
	// are derivable from the signature's inputs but kept explicit so the
	// sidecar stays human-auditable.
	NNZ          int `json:"nnz"`
	MaxFilterNNZ int `json:"max_filter_nnz"`
	// PatternSig is an FNV-1a hash over the pattern set's masks and the
	// per-kernel pattern assignment — the full sparsity structure.
	PatternSig string `json:"pattern_sig"`
}

// String is the canonical map spelling of the key.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s/c%dx%d k%dx%d in%dx%d s%d p%d dw%t nnz%d max%d %s",
		k.Arch, k.Level, k.OutC, k.InC, k.KH, k.KW, k.InH, k.InW,
		k.Stride, k.Pad, k.Depthwise, k.NNZ, k.MaxFilterNNZ, k.PatternSig)
}

// valid rejects keys no compile could have produced (the per-entry quarantine
// check on load).
func (k Key) valid() bool {
	return k.Arch != "" && k.Level != "" && k.PatternSig != "" &&
		k.OutC >= 1 && k.InC >= 1 && k.KH >= 1 && k.KW >= 1 &&
		k.InH >= 1 && k.InW >= 1 && k.Stride >= 1 && k.Pad >= 0 &&
		k.NNZ >= 0 && k.MaxFilterNNZ >= 0
}

// ConvKey derives the DB key for one pattern-pruned conv at a codegen level
// tag, on the running architecture. Arch carries both the instruction set and
// the detected SIMD microkernel tier ("amd64/avx2", "arm64/neon",
// "amd64/generic" under -tags noasm), so a tuning measured against the vector
// kernels never transfers to a scalar build of the same GOARCH, or vice versa.
func ConvKey(c *pruned.Conv, levelTag string) Key {
	h := fnv.New64a()
	var buf [8]byte
	wr := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wr(uint64(len(c.Set)))
	for _, p := range c.Set {
		wr(uint64(p.Mask))
	}
	for _, id := range c.IDs {
		wr(uint64(id))
	}
	return Key{
		Arch: runtime.GOARCH + "/" + cpu.Arch(), Level: levelTag,
		OutC: c.OutC, InC: c.InC, KH: c.KH, KW: c.KW,
		InH: c.InH, InW: c.InW, Stride: c.Stride, Pad: c.Pad,
		Depthwise: c.Depthwise,
		NNZ:       c.NNZ(), MaxFilterNNZ: c.MaxFilterNNZ(),
		PatternSig: fmt.Sprintf("%016x", h.Sum64()),
	}
}

// Entry is one persisted tuning decision.
type Entry struct {
	Config lr.Tuning `json:"config"`
	// CostMs is the cost the decision won with: measured milliseconds for
	// SourceMeasured, the analytic model's unitless cost for SourceSearch,
	// zero for heuristics.
	CostMs  float64   `json:"cost_ms,omitempty"`
	Source  string    `json:"source"`
	Updated time.Time `json:"updated,omitzero"`
}

// valid is the per-entry quarantine check: the stored configuration must be
// executable and the source known.
func (e Entry) valid() bool {
	switch e.Source {
	case SourceHeuristic, SourceSearch, SourceMeasured:
	default:
		return false
	}
	if !e.Config.Permute.Valid() || e.Config.Threads < 1 {
		return false
	}
	for _, v := range e.Config.Tile {
		if v < 1 {
			return false
		}
	}
	for _, v := range e.Config.Unroll {
		if v < 1 {
			return false
		}
	}
	return !(e.CostMs < 0) && e.CostMs == e.CostMs // no negatives, no NaN
}

// record pairs a key with its entry in the sidecar file (self-describing, so
// a reader never has to parse Key.String back apart).
type record struct {
	Key   Key   `json:"key"`
	Entry Entry `json:"entry"`
}

type fileFormat struct {
	Version int      `json:"version"`
	Entries []record `json:"entries"`
}

// Stats snapshots the DB counters. All counters are monotonic for the DB's
// lifetime.
type Stats struct {
	Path    string `json:"path,omitempty"`
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Records uint64 `json:"records"`
	// Quarantined counts entries the checked reader dropped at load time
	// (invalid key or configuration, duplicate key).
	Quarantined uint64 `json:"quarantined,omitempty"`
	// LoadError reports a whole-file quarantine: the sidecar existed but was
	// unreadable or corrupt, so the DB started empty (and Save rewrites it).
	LoadError string `json:"load_error,omitempty"`
}

// DB is a persistent tuning store. Safe for concurrent use. A DB with an
// empty path is purely in-memory (Save is a no-op): the shape the serving
// engine uses when background tuning is on but no sidecar is configured.
type DB struct {
	mu          sync.Mutex
	path        string
	entries     map[string]record
	dirty       bool
	hits        uint64
	misses      uint64
	records     uint64
	quarantined uint64
	loadErr     string
}

// Open loads the sidecar at path ("" for in-memory). Open never fails: a
// missing file is an empty DB, and a corrupt one is quarantined — the DB
// starts empty with the problem recorded in Stats.LoadError — because losing
// the tuning cache must never take serving down with it.
func Open(path string) *DB {
	db := &DB{path: path, entries: make(map[string]record)}
	if path == "" {
		return db
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			db.loadErr = err.Error()
		}
		return db
	}
	var f fileFormat
	if err := json.Unmarshal(data, &f); err != nil {
		db.loadErr = fmt.Sprintf("tunedb: %s: %v", path, err)
		return db
	}
	if f.Version != FormatVersion {
		db.loadErr = fmt.Sprintf("tunedb: %s: format version %d, want %d", path, f.Version, FormatVersion)
		return db
	}
	for _, r := range f.Entries {
		ks := r.Key.String()
		if _, dup := db.entries[ks]; dup || !r.Key.valid() || !r.Entry.valid() {
			db.quarantined++
			continue
		}
		db.entries[ks] = r
	}
	return db
}

// Path returns the sidecar path ("" for in-memory DBs).
func (db *DB) Path() string { return db.path }

// Len returns the number of entries.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.entries)
}

// Lookup returns the stored decision for k, counting a hit or a miss.
func (db *DB) Lookup(k Key) (Entry, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.entries[k.String()]
	if ok {
		db.hits++
		return r.Entry, true
	}
	db.misses++
	return Entry{}, false
}

// Record stores a decision for k, overwriting any previous one, except that a
// measured decision is never downgraded by a heuristic or analytic-search one
// — measurement outranks modeling, and a recompile that hits the DB must not
// erase what the background tuner learned.
func (db *DB) Record(k Key, e Entry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	ks := k.String()
	if old, ok := db.entries[ks]; ok &&
		old.Entry.Source == SourceMeasured && e.Source != SourceMeasured {
		return
	}
	e.Updated = time.Now().UTC()
	db.entries[ks] = record{Key: k, Entry: e}
	db.records++
	db.dirty = true
}

// Save writes the sidecar atomically (temp file + rename) if anything changed
// since the last save. In-memory DBs and clean DBs are no-ops.
func (db *DB) Save() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.path == "" || !db.dirty {
		return nil
	}
	f := fileFormat{Version: FormatVersion, Entries: make([]record, 0, len(db.entries))}
	keys := make([]string, 0, len(db.entries))
	for ks := range db.entries {
		keys = append(keys, ks)
	}
	sort.Strings(keys)
	for _, ks := range keys {
		f.Entries = append(f.Entries, db.entries[ks])
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(db.path), ".tunedb-*")
	if err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tunedb: write %s: %w", db.path, errors2(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), db.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tunedb: %w", err)
	}
	db.dirty = false
	return nil
}

func errors2(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// Stats snapshots the counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return Stats{
		Path: db.path, Entries: len(db.entries),
		Hits: db.hits, Misses: db.misses, Records: db.records,
		Quarantined: db.quarantined, LoadError: db.loadErr,
	}
}
