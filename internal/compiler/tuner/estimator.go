package tuner

import (
	"math"
	"math/rand"

	"patdnn/internal/compiler/lr"
)

// Estimator is the learned performance model (paper Section 5.5): a one-
// hidden-layer MLP trained with a least-squares regression loss on the
// (configuration, measured time) history collected during exploration. On a
// new platform it gives a quick prediction of promising configurations
// without measuring everything.
type Estimator struct {
	hidden int
	// w1 [hidden][features+1], w2 [hidden+1] with bias terms folded in.
	w1 [][]float64
	w2 []float64
	// Normalization of the target collected from training data.
	mean, scale float64
}

const estimatorFeatures = 10

// features encodes a configuration for the MLP.
func features(c lr.Tuning) []float64 {
	f := make([]float64, estimatorFeatures)
	f[0] = math.Log2(float64(c.Tile[0]))
	f[1] = math.Log2(float64(c.Tile[1]))
	f[2] = math.Log2(float64(c.Tile[2]))
	f[3] = float64(c.Unroll[0])
	f[4] = float64(c.Unroll[1])
	f[5] = float64(c.Unroll[2])
	f[6] = float64(c.Threads)
	switch c.Permute {
	case lr.PermCoCiHW:
		f[7] = 1
	case lr.PermCoHWCi:
		f[8] = 1
	case lr.PermCoCiHWBlock:
		f[7], f[9] = 1, 1
	case lr.PermCoHWCiBlock:
		f[8], f[9] = 1, 1
	}
	return f
}

// NewEstimator builds an untrained estimator.
func NewEstimator(hidden int, seed int64) *Estimator {
	rng := rand.New(rand.NewSource(seed))
	e := &Estimator{hidden: hidden, scale: 1}
	e.w1 = make([][]float64, hidden)
	for i := range e.w1 {
		e.w1[i] = make([]float64, estimatorFeatures+1)
		for j := range e.w1[i] {
			e.w1[i][j] = rng.NormFloat64() * 0.3
		}
	}
	e.w2 = make([]float64, hidden+1)
	for i := range e.w2 {
		e.w2[i] = rng.NormFloat64() * 0.3
	}
	return e
}

// forward returns the prediction in normalized space and the hidden
// activations for backprop.
func (e *Estimator) forward(x []float64) (float64, []float64) {
	h := make([]float64, e.hidden)
	for i := range h {
		s := e.w1[i][estimatorFeatures] // bias
		for j, v := range x {
			s += e.w1[i][j] * v
		}
		h[i] = math.Tanh(s)
	}
	out := e.w2[e.hidden] // bias
	for i, v := range h {
		out += e.w2[i] * v
	}
	return out, h
}

// Fit trains the MLP by SGD on the least-squares loss over the history.
// Targets are fit in log space: execution times span orders of magnitude
// across configurations, and ranking quality is what the explorer needs.
func (e *Estimator) Fit(history []Result, epochs int, lrate float64) {
	if len(history) == 0 {
		return
	}
	// Normalize log-targets to zero mean / unit scale for stable training.
	var sum, sum2 float64
	for _, r := range history {
		lt := logCost(r.CostMs)
		sum += lt
		sum2 += lt * lt
	}
	n := float64(len(history))
	e.mean = sum / n
	variance := sum2/n - e.mean*e.mean
	if variance < 1e-12 {
		variance = 1e-12
	}
	e.scale = math.Sqrt(variance)

	rng := rand.New(rand.NewSource(7))
	for ep := 0; ep < epochs; ep++ {
		perm := rng.Perm(len(history))
		for _, idx := range perm {
			r := history[idx]
			x := features(r.Config)
			target := (logCost(r.CostMs) - e.mean) / e.scale
			pred, h := e.forward(x)
			err := pred - target // d(0.5*err^2)/dpred
			// Output layer.
			for i, hv := range h {
				gh := err * e.w2[i] * (1 - hv*hv)
				e.w2[i] -= lrate * err * hv
				// Hidden layer.
				for j, xv := range x {
					e.w1[i][j] -= lrate * gh * xv
				}
				e.w1[i][estimatorFeatures] -= lrate * gh
			}
			e.w2[e.hidden] -= lrate * err
		}
	}
}

// logCost maps a cost to the log domain, guarding non-positive inputs.
func logCost(ms float64) float64 {
	if ms < 1e-9 {
		ms = 1e-9
	}
	return math.Log(ms)
}

// Predict returns the estimated cost (ms) of a configuration.
func (e *Estimator) Predict(c lr.Tuning) float64 {
	pred, _ := e.forward(features(c))
	return math.Exp(pred*e.scale + e.mean)
}

// MSE evaluates mean squared error over a sample set.
func (e *Estimator) MSE(samples []Result) float64 {
	if len(samples) == 0 {
		return 0
	}
	var s float64
	for _, r := range samples {
		d := e.Predict(r.Config) - r.CostMs
		s += d * d
	}
	return s / float64(len(samples))
}
