package tuner

import "testing"

func TestPackedTileSmallMapSingleTile(t *testing.T) {
	// A 28×28 map fits L1 whole: no tiling.
	if got := PackedTile(28, 28, 30, 150, 1, 4); got != 28 {
		t.Fatalf("PackedTile(28x28) = %d, want 28 (single tile)", got)
	}
}

func TestPackedTileLargeMapShrinks(t *testing.T) {
	got := PackedTile(224, 224, 226, 150, 1, 4)
	if got >= 224 {
		t.Fatalf("PackedTile(224x224) = %d, want a real tile < 224", got)
	}
	if got < 1 {
		t.Fatalf("PackedTile(224x224) = %d, want >= 1", got)
	}
	// The chosen tile's working set must actually fit.
	work := 4 * (got*224 + (got+2)*226)
	if work > packedL1Bytes {
		t.Fatalf("chosen tile %d has working set %dB > L1 %dB", got, work, packedL1Bytes)
	}
}

func TestPackedTileStrideCountsInputRows(t *testing.T) {
	// At stride 2 a tile of output rows touches ~2x the input rows, so the
	// chosen tile can only shrink relative to stride 1.
	s1 := PackedTile(112, 112, 226, 150, 1, 4)
	s2 := PackedTile(112, 112, 226, 150, 2, 4)
	if s2 > s1 {
		t.Fatalf("stride-2 tile %d > stride-1 tile %d", s2, s1)
	}
	work := 4 * (s2*112 + ((s2-1)*2+3)*226)
	if work+4*150 > packedL1Bytes {
		t.Fatalf("stride-2 tile %d working set %dB exceeds L1 %dB", s2, work, packedL1Bytes)
	}
}

func TestPackedTuningCarriesTile(t *testing.T) {
	tn := PackedTuning(56, 56, 58, 140, 1, 4)
	if tn.Tile[1] != PackedTile(56, 56, 58, 140, 1, 4) {
		t.Fatalf("PackedTuning tile %d != PackedTile %d", tn.Tile[1], PackedTile(56, 56, 58, 140, 1, 4))
	}
}

func TestPreferPacked(t *testing.T) {
	// The paper's operating point (3.6× connectivity) on a mid-size map:
	// packed wins.
	if !PreferPacked(128, 128, 128*128*10/36, 28, 28) {
		t.Fatal("PreferPacked should pick packed for a sparse 28x28 layer")
	}
	// Dense-ish layer on a huge map: the tuned filter-block sharing amortizes.
	if PreferPacked(64, 64, 64*64, 224, 224) {
		t.Fatal("PreferPacked should keep tuned for a dense 224x224 layer")
	}
	// Degenerate inputs fall back to packed rather than dividing by zero.
	if !PreferPacked(0, 0, 0, 0, 0) {
		t.Fatal("PreferPacked must tolerate degenerate geometry")
	}
}

func TestPackedTileQ8AllowsTallerTiles(t *testing.T) {
	// PackedQ8 streams 1 byte per weight instead of 4: a heavy filter that
	// crowds the FP32 tile budget leaves room for a taller tile — never a
	// shorter one — when quantized.
	fp32 := PackedTile(224, 224, 226, 6000, 1, 4)
	q8 := PackedTile(224, 224, 226, 6000, 1, 1)
	if q8 < fp32 {
		t.Fatalf("q8 tile %d shorter than fp32 tile %d", q8, fp32)
	}
	if q8 == fp32 {
		t.Fatalf("q8 tile %d did not grow past fp32 tile %d despite 18KB freed", q8, fp32)
	}
	work := 4*(q8*224+((q8-1)+3)*226) + 1*6000
	if work > packedL1Bytes {
		t.Fatalf("q8 tile %d working set %dB exceeds L1 %dB", q8, work, packedL1Bytes)
	}
}
