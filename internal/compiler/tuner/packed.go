package tuner

import "patdnn/internal/compiler/lr"

// Sizing for the packed FKW-direct backend (codegen.Packed). The packed
// kernels replay a filter's weight stream once per spatial output tile, so
// the tile wants to be as tall as possible while the tile's working set —
// the output tile rows plus the input rows a 3×3 pattern touches — stays
// resident in a mobile-class L1 data cache.
const packedL1Bytes = 32 * 1024

// PackedTile returns the output-row tile height for an outH×outW output map
// whose padded input rows are paddedW wide, at the given conv stride. It
// picks the largest candidate from the standard tuning space whose working
// set (tile output rows + the tile's input rows + one filter's weight
// stream) fits packedL1Bytes; the whole map in one tile when it fits.
// bytesPerWeight sizes the weight stream: 4 for the FP32 packed level, 1 for
// PackedQ8's int8 stream — the smaller stream leaves room for taller tiles.
func PackedTile(outH, outW, paddedW, weightsPerFilter, stride, bytesPerWeight int) int {
	if stride < 1 {
		stride = 1
	}
	if bytesPerWeight < 1 {
		bytesPerWeight = 4
	}
	fits := func(rows int) bool {
		// rows output rows + the input rows a 3-tap-high pattern touches
		// across the tile ((rows-1)*stride + 3), 4 bytes per element, plus
		// the filter's packed weights.
		inRows := (rows-1)*stride + 3
		work := 4 * (rows*outW + inRows*paddedW)
		return work+bytesPerWeight*weightsPerFilter <= packedL1Bytes
	}
	if fits(outH) {
		return outH
	}
	best := 1
	for _, rows := range DefaultSpace().TileOH {
		if rows <= outH && fits(rows) && rows > best {
			best = rows
		}
	}
	return best
}

// Packed driver knob defaults: the register-tiled driver reads three genes —
// Tile[1] (output rows per microkernel sweep), Unroll[0] (filters sharing an
// input tile), and Unroll[2] (output columns per microkernel call).
const (
	// packedDefaultGroup is the heuristic filter-group size: enough filters
	// to amortize each input-tile load several times without the group's
	// output tiles crowding the input rows out of L1.
	packedDefaultGroup = 4
	// packedLanes is the vector width the cost model assumes when scoring a
	// pixel-block width: blocks narrower than a vector register waste lanes.
	packedLanes = 8
)

// PackedTuning returns the tuning a packed plan should be compiled with: the
// default configuration with the spatial tile swapped for the PackedTile
// choice, a packedDefaultGroup filter group, and whole-row pixel blocks (one
// microkernel call per tile row span — column chunking only pays off when a
// row is too wide for L1, which the GA discovers, not the heuristic). The
// remaining genes do not apply to the packed kernels (the run structure is
// fixed by the FKW layout) and are left at defaults.
func PackedTuning(outH, outW, paddedW, weightsPerFilter, stride, bytesPerWeight int) lr.Tuning {
	t := lr.DefaultTuning()
	t.Tile[1] = PackedTile(outH, outW, paddedW, weightsPerFilter, stride, bytesPerWeight)
	t.Unroll[0] = packedDefaultGroup
	t.Unroll[2] = outW
	return t
}

// PackedSpace returns the search space for the packed FKW-direct backend.
// Three genes are free — the output-row tile, the filter-group size
// (UnrollOC), and the pixel-block width (UnrollOW) — matching the three
// blocking knobs of the register-tiled driver. The FKW run structure fixes
// the rest, and the serving pool owns the thread count, so the remaining
// genes stay pinned at their default candidate. Pixel-block candidates top
// out at 256: the driver clamps Unroll[2] to the output width, so 256 means
// "whole row" for every map in the paper's networks.
func PackedSpace() Space {
	d := lr.DefaultTuning()
	return Space{
		TileOC:   []int{d.Tile[0]},
		TileOH:   DefaultSpace().TileOH,
		TileIC:   []int{d.Tile[2]},
		UnrollOC: []int{1, 2, 4, 8},
		UnrollOH: []int{d.Unroll[1]},
		UnrollOW: []int{16, 32, 64, 256},
		Permute:  []lr.Permutation{d.Permute},
		Threads:  []int{d.Threads},
	}
}

// PackedCost is the analytic cost model a compile-time search over
// PackedSpace minimizes, covering the register-tiled driver's three blocking
// knobs:
//
//   - Tile[1] (output-row tile): one weight-stream replay per tile, and the
//     tile's rows bound the working set.
//   - Unroll[0] (filter group): input-tile traffic divides by the group size
//     (the rows are loaded once per group, not per filter), but the group's
//     output tiles multiply the working set.
//   - Unroll[2] (pixel block): each microkernel call re-broadcasts the tap
//     weights into vector registers and recomputes the source pointers, so
//     narrow blocks pay call overhead per chunk; blocks narrower than a
//     vector register additionally waste lanes on the ragged edge.
//
// Working sets that spill the L1 budget are scaled up sharply, so no
// spilling configuration ever beats a fitting one — what makes the GA's
// winner safe to persist.
func PackedCost(outH, outW, paddedW, weightsPerFilter, stride, bytesPerWeight int, t lr.Tuning) float64 {
	if stride < 1 {
		stride = 1
	}
	if bytesPerWeight < 1 {
		bytesPerWeight = 4
	}
	rows := t.Tile[1]
	if rows < 1 || rows > outH {
		rows = outH
	}
	fg := t.Unroll[0]
	if fg < 1 {
		fg = 1
	}
	pbw := t.Unroll[2]
	if pbw < 1 || pbw > outW {
		pbw = outW
	}
	tiles := (outH + rows - 1) / rows
	inRows := (rows-1)*stride + 3
	// The group's working set: fg output tiles + the shared input rows + fg
	// weight streams.
	work := 4*(fg*rows*outW+inRows*paddedW) + fg*bytesPerWeight*weightsPerFilter
	wpf := max(weightsPerFilter, 1)
	// MACs over the output map, discounted for vector lanes the pixel block
	// leaves idle (the ragged-edge columns run scalar).
	laneEff := 1.0
	if pbw < packedLanes {
		laneEff = float64(pbw) / float64(packedLanes)
	}
	cost := float64(outH*outW*wpf) / laneEff
	// One weight-stream replay per tile.
	cost += float64(tiles * weightsPerFilter)
	// Input rows streamed once per filter group per tile.
	cost += float64(tiles*inRows*paddedW) / float64(fg)
	// Microkernel call overhead: one weight-broadcast + pointer setup per
	// column chunk per kernel pair per tile (each call costs on the order of
	// a dozen scalar ops; 16 keeps the term comparable to the MAC work it
	// displaces on narrow chunks).
	chunks := (outW + pbw - 1) / pbw
	cost += 16 * float64(tiles*chunks*max(wpf/8, 1))
	if work > packedL1Bytes {
		// The group thrashes L1: at least double the cost (so no spilling
		// configuration ever beats a fitting one) and grow with the spill.
		cost *= 2 + float64(work-packedL1Bytes)/float64(packedL1Bytes)
	}
	return cost
}

// PreferPacked is the level chooser the serving engine consults when its
// configuration leaves the optimization level to the tuner: it predicts, from
// the layer's geometry and sparsity, whether the packed FKW-direct backend
// beats the tuned dense-layout kernels. The prediction mirrors the measured
// tradeoff the estimator's features encode: the tuned kernels pay a per-
// execution grouping pass over all kernels (to find filter-block input
// sharing), which only amortizes when the spatial map is large AND the layer
// is dense enough that several kernels of an unrolled filter block actually
// share a (channel, pattern) input row. Pattern-pruned layers at the paper's
// 3.6× connectivity rarely reach that density, so the packed stream wins
// almost everywhere.
func PreferPacked(outC, inC, kernels, outH, outW int) bool {
	if outC <= 0 || inC <= 0 || kernels <= 0 {
		return true
	}
	// Expected kernels landing on the same (channel, pattern) slot within a
	// 4-filter unrolled block, assuming the ~8 canonical patterns: near 1 the
	// tuned filter-level sharing starts reclaiming enough input loads to
	// matter.
	density := float64(kernels) / float64(outC*inC)
	sharing := density * 4 / 8
	// Large maps amortize the tuned grouping pass over more output pixels;
	// a fully dense 8-pattern layer reaches sharing 0.5, the break-even
	// neighborhood.
	bigMap := outH*outW >= 96*96
	return !(bigMap && sharing >= 0.45)
}
