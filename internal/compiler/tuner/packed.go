package tuner

import "patdnn/internal/compiler/lr"

// Sizing for the packed FKW-direct backend (codegen.Packed). The packed
// kernels replay a filter's weight stream once per spatial output tile, so
// the tile wants to be as tall as possible while the tile's working set —
// the output tile rows plus the input rows a 3×3 pattern touches — stays
// resident in a mobile-class L1 data cache.
const packedL1Bytes = 32 * 1024

// PackedTile returns the output-row tile height for an outH×outW output map
// whose padded input rows are paddedW wide, at the given conv stride. It
// picks the largest candidate from the standard tuning space whose working
// set (tile output rows + the tile's input rows + one filter's weight
// stream) fits packedL1Bytes; the whole map in one tile when it fits.
// bytesPerWeight sizes the weight stream: 4 for the FP32 packed level, 1 for
// PackedQ8's int8 stream — the smaller stream leaves room for taller tiles.
func PackedTile(outH, outW, paddedW, weightsPerFilter, stride, bytesPerWeight int) int {
	if stride < 1 {
		stride = 1
	}
	if bytesPerWeight < 1 {
		bytesPerWeight = 4
	}
	fits := func(rows int) bool {
		// rows output rows + the input rows a 3-tap-high pattern touches
		// across the tile ((rows-1)*stride + 3), 4 bytes per element, plus
		// the filter's packed weights.
		inRows := (rows-1)*stride + 3
		work := 4 * (rows*outW + inRows*paddedW)
		return work+bytesPerWeight*weightsPerFilter <= packedL1Bytes
	}
	if fits(outH) {
		return outH
	}
	best := 1
	for _, rows := range DefaultSpace().TileOH {
		if rows <= outH && fits(rows) && rows > best {
			best = rows
		}
	}
	return best
}

// PackedTuning returns the tuning a packed plan should be compiled with: the
// default configuration with the spatial tile swapped for the PackedTile
// choice. The unroll/permutation genes do not apply to the packed kernels
// (the run structure is fixed by the FKW layout) and are left at defaults.
func PackedTuning(outH, outW, paddedW, weightsPerFilter, stride, bytesPerWeight int) lr.Tuning {
	t := lr.DefaultTuning()
	t.Tile[1] = PackedTile(outH, outW, paddedW, weightsPerFilter, stride, bytesPerWeight)
	return t
}

// PackedSpace returns the search space for the packed FKW-direct backend:
// only the spatial output-row tile is free — the FKW run structure fixes the
// unroll and permutation genes, and the serving pool owns the thread count —
// so every other gene is pinned at its default candidate. The tiny space keeps
// compile-time GA searches and measured background searches cheap (at most
// len(TileOH) distinct genomes; the eval cache collapses repeats).
func PackedSpace() Space {
	d := lr.DefaultTuning()
	return Space{
		TileOC:   []int{d.Tile[0]},
		TileOH:   DefaultSpace().TileOH,
		TileIC:   []int{d.Tile[2]},
		UnrollOC: []int{d.Unroll[0]},
		UnrollOH: []int{d.Unroll[1]},
		UnrollOW: []int{d.Unroll[2]},
		Permute:  []lr.Permutation{d.Permute},
		Threads:  []int{d.Threads},
	}
}

// PackedCost is the analytic cost model a compile-time search over
// PackedSpace minimizes: the packed kernels replay one filter's weight stream
// per spatial tile, so cost is the MAC work plus a weight-replay term per
// tile, scaled up sharply when the tile's working set spills the L1 budget.
// Its minimum coincides with PackedTile's choice — the tallest tile that
// still fits — while ranking non-fitting tiles worst, which is what makes the
// GA's winner safe to persist.
func PackedCost(outH, outW, paddedW, weightsPerFilter, stride, bytesPerWeight int, t lr.Tuning) float64 {
	if stride < 1 {
		stride = 1
	}
	if bytesPerWeight < 1 {
		bytesPerWeight = 4
	}
	rows := t.Tile[1]
	if rows < 1 || rows > outH {
		rows = outH
	}
	tiles := (outH + rows - 1) / rows
	inRows := (rows-1)*stride + 3
	work := 4*(rows*outW+inRows*paddedW) + bytesPerWeight*weightsPerFilter
	// MACs over the output map plus one weight-stream replay per tile.
	cost := float64(outH*outW*max(weightsPerFilter, 1)) + float64(tiles*weightsPerFilter)
	if work > packedL1Bytes {
		// The tile thrashes L1: at least double the cost (so no spilling tile
		// ever beats a fitting one) and grow with the spill size.
		cost *= 2 + float64(work-packedL1Bytes)/float64(packedL1Bytes)
	}
	return cost
}

// PreferPacked is the level chooser the serving engine consults when its
// configuration leaves the optimization level to the tuner: it predicts, from
// the layer's geometry and sparsity, whether the packed FKW-direct backend
// beats the tuned dense-layout kernels. The prediction mirrors the measured
// tradeoff the estimator's features encode: the tuned kernels pay a per-
// execution grouping pass over all kernels (to find filter-block input
// sharing), which only amortizes when the spatial map is large AND the layer
// is dense enough that several kernels of an unrolled filter block actually
// share a (channel, pattern) input row. Pattern-pruned layers at the paper's
// 3.6× connectivity rarely reach that density, so the packed stream wins
// almost everywhere.
func PreferPacked(outC, inC, kernels, outH, outW int) bool {
	if outC <= 0 || inC <= 0 || kernels <= 0 {
		return true
	}
	// Expected kernels landing on the same (channel, pattern) slot within a
	// 4-filter unrolled block, assuming the ~8 canonical patterns: near 1 the
	// tuned filter-level sharing starts reclaiming enough input loads to
	// matter.
	density := float64(kernels) / float64(outC*inC)
	sharing := density * 4 / 8
	// Large maps amortize the tuned grouping pass over more output pixels;
	// a fully dense 8-pattern layer reaches sharing 0.5, the break-even
	// neighborhood.
	bigMap := outH*outW >= 96*96
	return !(bigMap && sharing >= 0.45)
}
