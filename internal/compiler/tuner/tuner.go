// Package tuner implements PatDNN's parameter auto-tuning (paper Section
// 5.5): a Genetic-Algorithm explorer over the execution-configuration space
// (tile sizes, unroll factors, loop permutations, thread counts) plus a
// learned performance estimator — a small MLP trained with least-squares loss
// on configurations explored so far — that can predict good starting
// configurations for a new platform. Unlike TVM's simulated annealing, the GA
// evaluates an arbitrary-size population in parallel conceptually; here the
// search is deterministic given a seed.
package tuner

import (
	"fmt"
	"math/rand"
	"sort"

	"patdnn/internal/compiler/lr"
)

// Space enumerates the candidate values per gene. The defaults cover the
// ranges the paper tunes.
type Space struct {
	TileOC   []int
	TileOH   []int
	TileIC   []int
	UnrollOC []int
	UnrollOH []int
	UnrollOW []int
	Permute  []lr.Permutation
	Threads  []int
}

// DefaultSpace returns the standard configuration space.
func DefaultSpace() Space {
	return Space{
		TileOC:   []int{8, 16, 32, 64},
		TileOH:   []int{8, 16, 32, 56},
		TileIC:   []int{4, 8, 16},
		UnrollOC: []int{1, 2, 4, 8},
		UnrollOH: []int{1, 2},
		UnrollOW: []int{2, 4, 8},
		Permute:  []lr.Permutation{lr.PermCoCiHW, lr.PermCoHWCi, lr.PermCoCiHWBlock, lr.PermCoHWCiBlock},
		Threads:  []int{1, 2, 4, 8},
	}
}

// genome is an index per gene into the Space's candidate lists.
type genome [8]int

func (s Space) cardinalities() [8]int {
	return [8]int{len(s.TileOC), len(s.TileOH), len(s.TileIC),
		len(s.UnrollOC), len(s.UnrollOH), len(s.UnrollOW),
		len(s.Permute), len(s.Threads)}
}

// decode converts a genome to a Tuning.
func (s Space) decode(g genome) lr.Tuning {
	return lr.Tuning{
		Tile:    [3]int{s.TileOC[g[0]], s.TileOH[g[1]], s.TileIC[g[2]]},
		Unroll:  [4]int{s.UnrollOC[g[3]], s.UnrollOH[g[4]], s.UnrollOW[g[5]], 1},
		Permute: s.Permute[g[6]],
		Threads: s.Threads[g[7]],
	}
}

// encode maps a Tuning onto the nearest genome in the space: each gene picks
// the candidate closest to the configuration's value (exact match when the
// value is a member).
func (s Space) encode(c lr.Tuning) genome {
	nearestInt := func(vals []int, want int) int {
		best, bestDiff := 0, 1<<30
		for i, v := range vals {
			d := v - want
			if d < 0 {
				d = -d
			}
			if d < bestDiff {
				best, bestDiff = i, d
			}
		}
		return best
	}
	var g genome
	g[0] = nearestInt(s.TileOC, c.Tile[0])
	g[1] = nearestInt(s.TileOH, c.Tile[1])
	g[2] = nearestInt(s.TileIC, c.Tile[2])
	g[3] = nearestInt(s.UnrollOC, c.Unroll[0])
	g[4] = nearestInt(s.UnrollOH, c.Unroll[1])
	g[5] = nearestInt(s.UnrollOW, c.Unroll[2])
	// A permutation outside the space snaps to the first candidate — the
	// deterministic analogue of nearestInt (validated spaces are never empty).
	g[6] = 0
	for i, p := range s.Permute {
		if p == c.Permute {
			g[6] = i
			break
		}
	}
	g[7] = nearestInt(s.Threads, c.Threads)
	return g
}

// geneNames label the genome positions for error messages.
var geneNames = [8]string{"TileOC", "TileOH", "TileIC", "UnrollOC", "UnrollOH", "UnrollOW", "Permute", "Threads"}

// Validate checks that every gene has at least one candidate, every integer
// candidate is positive, and every permutation candidate is a known loop
// order. Search rejects invalid spaces up front: an empty candidate list would
// otherwise panic deep inside the GA's random-genome draw, and a non-positive
// tile or thread count would decode into a Tuning no backend can execute.
func (s Space) Validate() error {
	for i, c := range s.cardinalities() {
		if c == 0 {
			return fmt.Errorf("tuner: space has no %s candidates", geneNames[i])
		}
	}
	for _, vals := range [][]int{s.TileOC, s.TileOH, s.TileIC, s.UnrollOC, s.UnrollOH, s.UnrollOW, s.Threads} {
		for _, v := range vals {
			if v < 1 {
				return fmt.Errorf("tuner: space candidate %d is not positive", v)
			}
		}
	}
	for _, p := range s.Permute {
		if !p.Valid() {
			return fmt.Errorf("tuner: space has unknown permutation %q", p)
		}
	}
	return nil
}

// Size returns the total number of configurations in the space.
func (s Space) Size() int {
	n := 1
	for _, c := range s.cardinalities() {
		n *= c
	}
	return n
}

// Result is one explored configuration with its measured cost.
type Result struct {
	Config lr.Tuning
	CostMs float64
}

// Options controls the GA search.
type Options struct {
	Population  int
	Generations int
	MutationP   float64
	Elite       int
	Seed        int64
	// WarmStart configurations are injected into the initial population
	// (the estimator-predicted starting points of Section 5.5, or simply
	// the default configuration). Configurations outside the Space are
	// snapped to the nearest member gene-by-gene.
	WarmStart []lr.Tuning
}

// DefaultOptions completes a VGG-layer search in a few milliseconds with the
// analytic cost model, matching the paper's 3–5 ms exploration budget.
func DefaultOptions() Options {
	return Options{Population: 24, Generations: 12, MutationP: 0.15, Elite: 4, Seed: 1}
}

// Validate rejects option sets the GA cannot run: an empty population has no
// best individual to return, and a mutation probability outside [0,1] (or NaN)
// silently degenerates the search.
func (o Options) Validate() error {
	if o.Population < 1 {
		return fmt.Errorf("tuner: Population %d, want >= 1", o.Population)
	}
	if o.Generations < 0 {
		return fmt.Errorf("tuner: Generations %d, want >= 0", o.Generations)
	}
	if o.Elite < 0 {
		return fmt.Errorf("tuner: Elite %d, want >= 0", o.Elite)
	}
	if !(o.MutationP >= 0 && o.MutationP <= 1) { // negated to catch NaN
		return fmt.Errorf("tuner: MutationP %g outside [0, 1]", o.MutationP)
	}
	return nil
}

// Search runs the GA, calling eval for each candidate's cost (lower is
// better). It returns the best result and the full evaluation history (the
// training data for the performance estimator); the history holds one entry
// per distinct genome evaluated — repeats hit the cache and cost nothing. An
// invalid space or option set is rejected up front.
func Search(space Space, eval func(lr.Tuning) float64, opt Options) (Result, []Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, nil, err
	}
	if err := opt.Validate(); err != nil {
		return Result{}, nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	card := space.cardinalities()
	randomGenome := func() genome {
		var g genome
		for i, c := range card {
			g[i] = rng.Intn(c)
		}
		return g
	}
	type scored struct {
		g    genome
		cost float64
	}
	var history []Result
	cache := map[genome]float64{}
	score := func(g genome) float64 {
		if c, ok := cache[g]; ok {
			return c
		}
		cfg := space.decode(g)
		c := eval(cfg)
		cache[g] = c
		history = append(history, Result{Config: cfg, CostMs: c})
		return c
	}

	pop := make([]scored, 0, opt.Population)
	for _, warm := range opt.WarmStart {
		if len(pop) == opt.Population {
			break
		}
		g := space.encode(warm)
		pop = append(pop, scored{g, score(g)})
	}
	for len(pop) < opt.Population {
		g := randomGenome()
		pop = append(pop, scored{g, score(g)})
	}
	for gen := 0; gen < opt.Generations; gen++ {
		sort.Slice(pop, func(a, b int) bool { return pop[a].cost < pop[b].cost })
		next := make([]scored, 0, opt.Population)
		// Elitism: carry the best configurations unchanged.
		for i := 0; i < opt.Elite && i < len(pop); i++ {
			next = append(next, pop[i])
		}
		// Tournament selection + single-point crossover + mutation.
		tournament := func() genome {
			a, b := pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))]
			if a.cost < b.cost {
				return a.g
			}
			return b.g
		}
		for len(next) < opt.Population {
			p1, p2 := tournament(), tournament()
			cut := rng.Intn(len(card))
			var child genome
			copy(child[:cut], p1[:cut])
			copy(child[cut:], p2[cut:])
			for i, c := range card {
				if rng.Float64() < opt.MutationP {
					child[i] = rng.Intn(c)
				}
			}
			next = append(next, scored{child, score(child)})
		}
		pop = next
	}
	sort.Slice(pop, func(a, b int) bool { return pop[a].cost < pop[b].cost })
	return Result{Config: space.decode(pop[0].g), CostMs: pop[0].cost}, history, nil
}

// RandomSearch is the ablation baseline: n uniform random samples.
func RandomSearch(space Space, eval func(lr.Tuning) float64, n int, seed int64) (Result, []Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, nil, err
	}
	if n < 1 {
		return Result{}, nil, fmt.Errorf("tuner: random search over %d samples, want >= 1", n)
	}
	rng := rand.New(rand.NewSource(seed))
	card := space.cardinalities()
	best := Result{CostMs: -1}
	var history []Result
	for i := 0; i < n; i++ {
		var g genome
		for j, c := range card {
			g[j] = rng.Intn(c)
		}
		cfg := space.decode(g)
		cost := eval(cfg)
		history = append(history, Result{cfg, cost})
		if best.CostMs < 0 || cost < best.CostMs {
			best = Result{cfg, cost}
		}
	}
	return best, history, nil
}
