package tuner

import (
	"math"
	"testing"

	"patdnn/internal/compiler/lr"
)

// syntheticCost is a deterministic landscape with a known optimum:
// cohwci_b, threads=8, tile {32,32,8}, unroll {4,1,8}.
func syntheticCost(c lr.Tuning) float64 {
	cost := 10.0
	cost += math.Abs(math.Log2(float64(c.Tile[0])) - 5)
	cost += math.Abs(math.Log2(float64(c.Tile[1])) - 5)
	cost += math.Abs(math.Log2(float64(c.Tile[2])) - 3)
	cost += math.Abs(float64(c.Unroll[0]) - 4)
	cost += math.Abs(float64(c.Unroll[2]) - 8)
	cost += 8.0 / float64(c.Threads)
	if c.Permute != lr.PermCoHWCiBlock {
		cost += 3
	}
	return cost
}

// mustSearch / mustRandom fail the test on a search error: every space and
// option set these tests build is statically valid.
func mustSearch(t *testing.T, s Space, eval func(lr.Tuning) float64, opt Options) (Result, []Result) {
	t.Helper()
	best, hist, err := Search(s, eval, opt)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	return best, hist
}

func mustRandom(t *testing.T, s Space, eval func(lr.Tuning) float64, n int, seed int64) (Result, []Result) {
	t.Helper()
	best, hist, err := RandomSearch(s, eval, n, seed)
	if err != nil {
		t.Fatalf("RandomSearch: %v", err)
	}
	return best, hist
}

func TestSpaceSizeAndDecode(t *testing.T) {
	s := DefaultSpace()
	if s.Size() != 4*4*3*4*2*3*4*4 {
		t.Fatalf("space size = %d", s.Size())
	}
	cfg := s.decode(genome{0, 0, 0, 0, 0, 0, 0, 0})
	if cfg.Tile[0] != 8 || cfg.Permute != lr.PermCoCiHW || cfg.Threads != 1 {
		t.Fatalf("decode wrong: %+v", cfg)
	}
}

func TestGAFindsNearOptimum(t *testing.T) {
	best, history := mustSearch(t, DefaultSpace(), syntheticCost, DefaultOptions())
	// Global optimum cost = 10 + 8/8 + 0 = 11.
	if best.CostMs > 13.0 {
		t.Fatalf("GA found cost %.2f, want <= 13 (optimum 11)", best.CostMs)
	}
	if len(history) == 0 {
		t.Fatal("no history collected")
	}
	// GA must beat the mean random configuration decisively.
	_, rnd := mustRandom(t, DefaultSpace(), syntheticCost, 50, 3)
	var mean float64
	for _, r := range rnd {
		mean += r.CostMs
	}
	mean /= float64(len(rnd))
	if best.CostMs >= mean {
		t.Fatalf("GA (%.2f) no better than random mean (%.2f)", best.CostMs, mean)
	}
}

func TestGADeterministic(t *testing.T) {
	b1, h1 := mustSearch(t, DefaultSpace(), syntheticCost, DefaultOptions())
	b2, h2 := mustSearch(t, DefaultSpace(), syntheticCost, DefaultOptions())
	if b1.Config != b2.Config || b1.CostMs != b2.CostMs {
		t.Fatal("GA not deterministic for fixed seed")
	}
	// The full exploration history must replay identically too: it is the
	// estimator's training data, and a warm cache replay depends on it.
	if len(h1) != len(h2) {
		t.Fatalf("history lengths differ: %d vs %d", len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("history[%d] differs: %+v vs %+v", i, h1[i], h2[i])
		}
	}
	opt := DefaultOptions()
	opt.Seed = 99
	b3, _ := mustSearch(t, DefaultSpace(), syntheticCost, opt)
	// Different seeds may find the same optimum, but cost must be sane.
	if b3.CostMs > 14 {
		t.Fatalf("seed 99 found poor cost %.2f", b3.CostMs)
	}
}

func TestGABeatsEqualBudgetRandom(t *testing.T) {
	opt := DefaultOptions()
	gaBest, gaHist := mustSearch(t, DefaultSpace(), syntheticCost, opt)
	rndBest, _ := mustRandom(t, DefaultSpace(), syntheticCost, len(gaHist), 11)
	if gaBest.CostMs > rndBest.CostMs+1.0 {
		t.Fatalf("GA (%.2f) much worse than equal-budget random (%.2f)",
			gaBest.CostMs, rndBest.CostMs)
	}
}

func TestWarmStartNeverLosesToSeed(t *testing.T) {
	// A warm-started GA must return a configuration at least as good as
	// the seed (elitism preserves it).
	seed := lr.DefaultTuning()
	opt := DefaultOptions()
	opt.WarmStart = []lr.Tuning{seed}
	best, _ := mustSearch(t, DefaultSpace(), syntheticCost, opt)
	if best.CostMs > syntheticCost(seed) {
		t.Fatalf("warm-started GA (%.2f) worse than seed (%.2f)",
			best.CostMs, syntheticCost(seed))
	}
}

func TestEncodeRoundTripsMembers(t *testing.T) {
	s := DefaultSpace()
	cfg := lr.Tuning{Tile: [3]int{16, 32, 8}, Unroll: [4]int{4, 2, 8, 1},
		Permute: lr.PermCoHWCiBlock, Threads: 8}
	if got := s.decode(s.encode(cfg)); got != cfg {
		t.Fatalf("encode/decode changed a member config: %+v -> %+v", cfg, got)
	}
	// Non-members snap to the nearest candidate.
	odd := cfg
	odd.Tile[0] = 17
	snapped := s.decode(s.encode(odd))
	if snapped.Tile[0] != 16 {
		t.Fatalf("tile 17 snapped to %d, want 16", snapped.Tile[0])
	}
}

func TestEstimatorLearnsLandscape(t *testing.T) {
	_, history := mustRandom(t, DefaultSpace(), syntheticCost, 220, 5)
	train, test := history[:180], history[180:]
	e := NewEstimator(10, 1)
	baseMSE := e.MSE(test)
	e.Fit(train, 220, 0.01)
	mse := e.MSE(test)
	if mse >= baseMSE {
		t.Fatalf("training did not reduce MSE: %.3f -> %.3f", baseMSE, mse)
	}
	// Compare against predicting the mean: the MLP must beat it clearly.
	var mean float64
	for _, r := range train {
		mean += r.CostMs
	}
	mean /= float64(len(train))
	var meanMSE float64
	for _, r := range test {
		d := r.CostMs - mean
		meanMSE += d * d
	}
	meanMSE /= float64(len(test))
	if mse > meanMSE*0.8 {
		t.Fatalf("estimator MSE %.3f vs mean-predictor %.3f: not learning", mse, meanMSE)
	}
}

func TestEstimatorRanksConfigs(t *testing.T) {
	// The estimator's purpose is ranking candidate configs on a new
	// platform; check it orders a clearly-good config before a clearly-bad
	// one.
	_, history := mustRandom(t, DefaultSpace(), syntheticCost, 250, 9)
	e := NewEstimator(10, 2)
	e.Fit(history, 250, 0.01)
	good := lr.Tuning{Tile: [3]int{32, 32, 8}, Unroll: [4]int{4, 1, 8, 1},
		Permute: lr.PermCoHWCiBlock, Threads: 8}
	bad := lr.Tuning{Tile: [3]int{8, 8, 4}, Unroll: [4]int{1, 2, 2, 1},
		Permute: lr.PermCoCiHW, Threads: 1}
	if e.Predict(good) >= e.Predict(bad) {
		t.Fatalf("estimator ranks bad (%.2f) <= good (%.2f)",
			e.Predict(bad), e.Predict(good))
	}
}

func TestWarmStartAtOptimumNeverLost(t *testing.T) {
	// Elitism invariant: a warm start sitting on the global optimum must
	// survive every generation — the returned best must match its cost (the
	// landscape has equal-cost peers, so the exact genome may differ), for
	// any seed.
	optimum := lr.Tuning{Tile: [3]int{32, 32, 8}, Unroll: [4]int{4, 1, 8, 1},
		Permute: lr.PermCoHWCiBlock, Threads: 8}
	for _, seed := range []int64{1, 7, 42, 1234} {
		opt := DefaultOptions()
		opt.Seed = seed
		opt.WarmStart = []lr.Tuning{optimum}
		best, _ := mustSearch(t, DefaultSpace(), syntheticCost, opt)
		if best.CostMs != syntheticCost(optimum) {
			t.Fatalf("seed %d: optimum warm start lost: got %+v (%.2f, want %.2f)",
				seed, best.Config, best.CostMs, syntheticCost(optimum))
		}
	}
}

func TestCachePreventsDoubleEval(t *testing.T) {
	// Every distinct configuration is evaluated exactly once: repeats hit the
	// genome cache, and the history holds one entry per unique genome.
	seen := map[lr.Tuning]int{}
	eval := func(c lr.Tuning) float64 {
		seen[c]++
		return syntheticCost(c)
	}
	opt := DefaultOptions()
	opt.Generations = 30 // plenty of convergence → plenty of repeated genomes
	_, history := mustSearch(t, DefaultSpace(), eval, opt)
	for c, n := range seen {
		if n != 1 {
			t.Fatalf("config %+v evaluated %d times, want 1", c, n)
		}
	}
	if len(history) != len(seen) {
		t.Fatalf("history has %d entries for %d unique evals", len(history), len(seen))
	}
}

func TestSearchRejectsInvalidSpace(t *testing.T) {
	empty := DefaultSpace()
	empty.TileOH = nil
	if _, _, err := Search(empty, syntheticCost, DefaultOptions()); err == nil {
		t.Fatal("Search accepted a space with no TileOH candidates")
	}
	if _, _, err := RandomSearch(empty, syntheticCost, 10, 1); err == nil {
		t.Fatal("RandomSearch accepted a space with no TileOH candidates")
	}
	badPerm := DefaultSpace()
	badPerm.Permute = []lr.Permutation{"sideways"}
	if _, _, err := Search(badPerm, syntheticCost, DefaultOptions()); err == nil {
		t.Fatal("Search accepted an unknown permutation candidate")
	}
	nonPositive := DefaultSpace()
	nonPositive.Threads = []int{0}
	if _, _, err := Search(nonPositive, syntheticCost, DefaultOptions()); err == nil {
		t.Fatal("Search accepted a non-positive thread candidate")
	}
}

func TestSearchRejectsInvalidOptions(t *testing.T) {
	for _, opt := range []Options{
		{Population: 0, Generations: 5},
		{Population: 8, Generations: -1},
		{Population: 8, Elite: -2},
		{Population: 8, MutationP: 1.5},
		{Population: 8, MutationP: math.NaN()},
	} {
		if _, _, err := Search(DefaultSpace(), syntheticCost, opt); err == nil {
			t.Fatalf("Search accepted invalid options %+v", opt)
		}
	}
	if _, _, err := RandomSearch(DefaultSpace(), syntheticCost, 0, 1); err == nil {
		t.Fatal("RandomSearch accepted n=0")
	}
}

func TestEncodeUnknownPermuteSnapsDeterministically(t *testing.T) {
	s := DefaultSpace()
	cfg := lr.DefaultTuning()
	cfg.Permute = "not-a-permutation"
	g1, g2 := s.encode(cfg), s.encode(cfg)
	if g1 != g2 {
		t.Fatalf("unknown-permute encoding not deterministic: %v vs %v", g1, g2)
	}
	if got := s.decode(g1).Permute; got != s.Permute[0] {
		t.Fatalf("unknown permute snapped to %q, want first candidate %q", got, s.Permute[0])
	}
}

func TestPackedSpaceSearchDominatesHeuristic(t *testing.T) {
	// With the widened space (tile height × filter group × pixel block) the
	// cost minimum may legitimately differ from the single-knob PackedTile
	// choice — e.g. a shorter tile with a larger filter group. What makes a
	// searched decision safe to persist is that it (a) never scores worse
	// than the heuristic under the same model and (b) never picks a blocking
	// whose working set spills L1 when a fitting one exists.
	if err := PackedSpace().Validate(); err != nil {
		t.Fatalf("PackedSpace invalid: %v", err)
	}
	cases := []struct{ outH, outW, paddedW, wpf, stride int }{
		{56, 56, 58, 128, 1},  // mid VGG layer
		{56, 56, 58, 2048, 1}, // heavy filters: tile must shrink
		{28, 28, 58, 512, 2},  // strided
	}
	for _, c := range cases {
		eval := func(tn lr.Tuning) float64 {
			return PackedCost(c.outH, c.outW, c.paddedW, c.wpf, c.stride, 4, tn)
		}
		best, _ := mustSearch(t, PackedSpace(), eval, DefaultOptions())
		heur := PackedTuning(c.outH, c.outW, c.paddedW, c.wpf, c.stride, 4)
		if hc := eval(heur); best.CostMs > hc {
			t.Fatalf("%+v: searched cost %.1f worse than heuristic %.1f (%+v vs %+v)",
				c, best.CostMs, hc, best.Config, heur)
		}
		rows := min(best.Config.Tile[1], c.outH)
		fg := best.Config.Unroll[0]
		inRows := (rows-1)*c.stride + 3
		work := 4*(fg*rows*c.outW+inRows*c.paddedW) + fg*4*c.wpf
		heurRows := PackedTile(c.outH, c.outW, c.paddedW, c.wpf, c.stride, 4)
		heurWork := 4*(heurRows*c.outW+((heurRows-1)*c.stride+3)*c.paddedW) + 4*c.wpf
		if work > packedL1Bytes && heurWork <= packedL1Bytes {
			t.Fatalf("%+v: searched blocking %+v spills L1 (%d bytes) though a fitting one exists",
				c, best.Config, work)
		}
	}
}

func TestFitOnEmptyHistoryIsNoop(t *testing.T) {
	e := NewEstimator(4, 3)
	e.Fit(nil, 10, 0.01)
	// Must not panic and must still predict something finite.
	if math.IsNaN(e.Predict(lr.DefaultTuning())) {
		t.Fatal("NaN prediction after empty fit")
	}
}
