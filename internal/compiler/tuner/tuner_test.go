package tuner

import (
	"math"
	"testing"

	"patdnn/internal/compiler/lr"
)

// syntheticCost is a deterministic landscape with a known optimum:
// cohwci_b, threads=8, tile {32,32,8}, unroll {4,1,8}.
func syntheticCost(c lr.Tuning) float64 {
	cost := 10.0
	cost += math.Abs(math.Log2(float64(c.Tile[0])) - 5)
	cost += math.Abs(math.Log2(float64(c.Tile[1])) - 5)
	cost += math.Abs(math.Log2(float64(c.Tile[2])) - 3)
	cost += math.Abs(float64(c.Unroll[0]) - 4)
	cost += math.Abs(float64(c.Unroll[2]) - 8)
	cost += 8.0 / float64(c.Threads)
	if c.Permute != lr.PermCoHWCiBlock {
		cost += 3
	}
	return cost
}

func TestSpaceSizeAndDecode(t *testing.T) {
	s := DefaultSpace()
	if s.Size() != 4*4*3*4*2*3*4*4 {
		t.Fatalf("space size = %d", s.Size())
	}
	cfg := s.decode(genome{0, 0, 0, 0, 0, 0, 0, 0})
	if cfg.Tile[0] != 8 || cfg.Permute != lr.PermCoCiHW || cfg.Threads != 1 {
		t.Fatalf("decode wrong: %+v", cfg)
	}
}

func TestGAFindsNearOptimum(t *testing.T) {
	best, history := Search(DefaultSpace(), syntheticCost, DefaultOptions())
	// Global optimum cost = 10 + 8/8 + 0 = 11.
	if best.CostMs > 13.0 {
		t.Fatalf("GA found cost %.2f, want <= 13 (optimum 11)", best.CostMs)
	}
	if len(history) == 0 {
		t.Fatal("no history collected")
	}
	// GA must beat the mean random configuration decisively.
	_, rnd := RandomSearch(DefaultSpace(), syntheticCost, 50, 3)
	var mean float64
	for _, r := range rnd {
		mean += r.CostMs
	}
	mean /= float64(len(rnd))
	if best.CostMs >= mean {
		t.Fatalf("GA (%.2f) no better than random mean (%.2f)", best.CostMs, mean)
	}
}

func TestGADeterministic(t *testing.T) {
	b1, _ := Search(DefaultSpace(), syntheticCost, DefaultOptions())
	b2, _ := Search(DefaultSpace(), syntheticCost, DefaultOptions())
	if b1.Config != b2.Config || b1.CostMs != b2.CostMs {
		t.Fatal("GA not deterministic for fixed seed")
	}
	opt := DefaultOptions()
	opt.Seed = 99
	b3, _ := Search(DefaultSpace(), syntheticCost, opt)
	// Different seeds may find the same optimum, but cost must be sane.
	if b3.CostMs > 14 {
		t.Fatalf("seed 99 found poor cost %.2f", b3.CostMs)
	}
}

func TestGABeatsEqualBudgetRandom(t *testing.T) {
	opt := DefaultOptions()
	gaBest, gaHist := Search(DefaultSpace(), syntheticCost, opt)
	rndBest, _ := RandomSearch(DefaultSpace(), syntheticCost, len(gaHist), 11)
	if gaBest.CostMs > rndBest.CostMs+1.0 {
		t.Fatalf("GA (%.2f) much worse than equal-budget random (%.2f)",
			gaBest.CostMs, rndBest.CostMs)
	}
}

func TestWarmStartNeverLosesToSeed(t *testing.T) {
	// A warm-started GA must return a configuration at least as good as
	// the seed (elitism preserves it).
	seed := lr.DefaultTuning()
	opt := DefaultOptions()
	opt.WarmStart = []lr.Tuning{seed}
	best, _ := Search(DefaultSpace(), syntheticCost, opt)
	if best.CostMs > syntheticCost(seed) {
		t.Fatalf("warm-started GA (%.2f) worse than seed (%.2f)",
			best.CostMs, syntheticCost(seed))
	}
}

func TestEncodeRoundTripsMembers(t *testing.T) {
	s := DefaultSpace()
	cfg := lr.Tuning{Tile: [3]int{16, 32, 8}, Unroll: [4]int{4, 2, 8, 1},
		Permute: lr.PermCoHWCiBlock, Threads: 8}
	if got := s.decode(s.encode(cfg)); got != cfg {
		t.Fatalf("encode/decode changed a member config: %+v -> %+v", cfg, got)
	}
	// Non-members snap to the nearest candidate.
	odd := cfg
	odd.Tile[0] = 17
	snapped := s.decode(s.encode(odd))
	if snapped.Tile[0] != 16 {
		t.Fatalf("tile 17 snapped to %d, want 16", snapped.Tile[0])
	}
}

func TestEstimatorLearnsLandscape(t *testing.T) {
	_, history := RandomSearch(DefaultSpace(), syntheticCost, 220, 5)
	train, test := history[:180], history[180:]
	e := NewEstimator(10, 1)
	baseMSE := e.MSE(test)
	e.Fit(train, 220, 0.01)
	mse := e.MSE(test)
	if mse >= baseMSE {
		t.Fatalf("training did not reduce MSE: %.3f -> %.3f", baseMSE, mse)
	}
	// Compare against predicting the mean: the MLP must beat it clearly.
	var mean float64
	for _, r := range train {
		mean += r.CostMs
	}
	mean /= float64(len(train))
	var meanMSE float64
	for _, r := range test {
		d := r.CostMs - mean
		meanMSE += d * d
	}
	meanMSE /= float64(len(test))
	if mse > meanMSE*0.8 {
		t.Fatalf("estimator MSE %.3f vs mean-predictor %.3f: not learning", mse, meanMSE)
	}
}

func TestEstimatorRanksConfigs(t *testing.T) {
	// The estimator's purpose is ranking candidate configs on a new
	// platform; check it orders a clearly-good config before a clearly-bad
	// one.
	_, history := RandomSearch(DefaultSpace(), syntheticCost, 250, 9)
	e := NewEstimator(10, 2)
	e.Fit(history, 250, 0.01)
	good := lr.Tuning{Tile: [3]int{32, 32, 8}, Unroll: [4]int{4, 1, 8, 1},
		Permute: lr.PermCoHWCiBlock, Threads: 8}
	bad := lr.Tuning{Tile: [3]int{8, 8, 4}, Unroll: [4]int{1, 2, 2, 1},
		Permute: lr.PermCoCiHW, Threads: 1}
	if e.Predict(good) >= e.Predict(bad) {
		t.Fatalf("estimator ranks bad (%.2f) <= good (%.2f)",
			e.Predict(bad), e.Predict(good))
	}
}

func TestFitOnEmptyHistoryIsNoop(t *testing.T) {
	e := NewEstimator(4, 3)
	e.Fit(nil, 10, 0.01)
	// Must not panic and must still predict something finite.
	if math.IsNaN(e.Predict(lr.DefaultTuning())) {
		t.Fatal("NaN prediction after empty fit")
	}
}
