// Package lre implements PatDNN's register-level Load Redundancy Elimination
// analysis (paper Section 5.4, Figure 11). Because every kernel's pattern is
// known at compile time, the generated code can (a) reuse input rows already
// held in registers across the weights of one kernel and across vertically
// adjacent outputs (kernel-level LRE), and (b) share identical input loads
// among kernels that sit at the same input channel with the same pattern in
// several unrolled filters (filter-level LRE). This package counts register
// loads with and without each elimination — the quantity Figure 14(b) plots —
// and the counts feed the device timing model.
package lre

import (
	"patdnn/internal/compiler/lr"
	"patdnn/internal/compiler/reorder"
	"patdnn/internal/pruned"
)

// Stats holds input register-load counts for one layer under three code
// generation strategies. Loads are scalar-equivalent counts per inference.
type Stats struct {
	// NoLRE: every retained weight loads its input operand for every output
	// position it contributes to.
	NoLRE int64
	// KernelLRE: row segments are loaded once per kernel per output block
	// and reused across the weights in a row and across the unrolled
	// vertical outputs.
	KernelLRE int64
	// FilterLRE: additionally, kernels with identical (channel, pattern) in
	// an unrolled filter block share one load (requires FKR grouping).
	FilterLRE int64
}

// KernelReduction returns NoLRE/KernelLRE.
func (s Stats) KernelReduction() float64 {
	if s.KernelLRE == 0 {
		return 0
	}
	return float64(s.NoLRE) / float64(s.KernelLRE)
}

// TotalReduction returns NoLRE/FilterLRE.
func (s Stats) TotalReduction() float64 {
	if s.FilterLRE == 0 {
		return 0
	}
	return float64(s.NoLRE) / float64(s.FilterLRE)
}

// rowsTouched returns how many distinct input rows a pattern touches when Uh
// vertically adjacent outputs are computed together: |R ⊕ [0,Uh)| where R is
// the set of kernel rows with retained weights.
func rowsTouched(mask uint16, k, uh int) int {
	var rows uint32
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			if mask&(1<<uint(r*k+c)) != 0 {
				rows |= 1 << uint(r)
				break
			}
		}
	}
	var touched uint32
	for u := 0; u < uh; u++ {
		touched |= rows << uint(u)
	}
	n := 0
	for ; touched != 0; touched &= touched - 1 {
		n++
	}
	return n
}

// blocks returns ceil(n/b).
func blocks(n, b int) int64 {
	if b < 1 {
		b = 1
	}
	return int64((n + b - 1) / b)
}

// Analyze counts register loads for a pruned layer under the FKR plan and
// tuning configuration. Plan may be an Identity plan; filter-level LRE then
// still applies but finds fewer sharing opportunities, exactly as in the
// real system (FKR is what creates the adjacency).
func Analyze(c *pruned.Conv, plan *reorder.Plan, t lr.Tuning) Stats {
	uh, uw, uoc := t.Unroll[1], t.Unroll[2], t.Unroll[0]
	if uh < 1 {
		uh = 1
	}
	if uw < 1 {
		uw = 1
	}
	if uoc < 1 {
		uoc = 1
	}
	hBlocks := blocks(c.OutH, uh)
	wBlocks := blocks(c.OutW, uw)
	outPix := int64(c.OutH) * int64(c.OutW)
	segWidth := int64(uw + c.KW - 1) // input scalars per loaded row segment

	// perBlock returns the register loads one kernel of the given pattern
	// costs per output block: the row-segment loads of kernel-level LRE,
	// clamped at the naive per-weight cost (the generated code falls back to
	// direct loads when reuse cannot win, e.g. on very narrow outputs).
	perBlock := func(mask uint16, entries int) int64 {
		rt := int64(rowsTouched(mask, c.KH, uh))
		naive := int64(entries) * int64(uh) * int64(uw)
		if l := rt * segWidth; l < naive {
			return l
		}
		return naive
	}

	var s Stats
	// Per-kernel terms: NoLRE and kernel-level LRE.
	for _, id := range c.IDs {
		if id == 0 {
			continue
		}
		p := c.Set[id-1]
		entries := int64(p.Entries())
		s.NoLRE += entries * outPix
		s.KernelLRE += hBlocks * wBlocks * perBlock(p.Mask, p.Entries())
	}
	// Filter-level sharing: walk filters in plan order in blocks of uoc;
	// kernels with equal (channel, pattern) inside a block load once.
	for start := 0; start < c.OutC; start += uoc {
		end := start + uoc
		if end > c.OutC {
			end = c.OutC
		}
		type key struct {
			ch int
			id int
		}
		seen := map[key]bool{}
		for pos := start; pos < end; pos++ {
			f := plan.FilterPerm[pos]
			for _, ch := range plan.KernelOrder[pos] {
				id := c.ID(f, ch)
				// Sharing requires the same *input feature-map* channel;
				// depthwise kernels each read their own channel.
				k := key{c.InputChannel(f, ch), id}
				if seen[k] {
					continue // shared load: costs nothing extra
				}
				seen[k] = true
				p := c.Set[id-1]
				s.FilterLRE += hBlocks * wBlocks * perBlock(p.Mask, p.Entries())
			}
		}
	}
	// Partial edge blocks are counted whole by the ceil-division above; a
	// real code generator emits the naive loop for them, so the eliminated
	// versions can never exceed the naive count.
	if s.KernelLRE > s.NoLRE {
		s.KernelLRE = s.NoLRE
	}
	if s.FilterLRE > s.KernelLRE {
		s.FilterLRE = s.KernelLRE
	}
	return s
}

// AnalyzeDefault runs Analyze with the FKR plan and default tuning — the
// configuration Figure 14(b) uses.
func AnalyzeDefault(c *pruned.Conv) Stats {
	return Analyze(c, reorder.Build(c), lr.DefaultTuning())
}
