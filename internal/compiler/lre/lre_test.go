package lre

import (
	"testing"
	"testing/quick"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/compiler/reorder"
	"patdnn/internal/model"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
)

func genLayer(seed int64) *pruned.Conv {
	m := model.VGG16("cifar10")
	return pruned.Generate(m.ConvLayers()[2], pattern.Canonical(8), 3.6, seed, false)
}

func TestRowsTouched(t *testing.T) {
	cross := pattern.New(3, 1, 3, 4, 5) // rows {0,1}
	if got := rowsTouched(cross.Mask, 3, 1); got != 2 {
		t.Fatalf("rowsTouched(cross, uh=1) = %d, want 2", got)
	}
	// With Uh=2 the union of {0,1} and {1,2} is {0,1,2}.
	if got := rowsTouched(cross.Mask, 3, 2); got != 3 {
		t.Fatalf("rowsTouched(cross, uh=2) = %d, want 3", got)
	}
	col := pattern.New(3, 1, 4, 7, 5) // rows {0,1,2}
	if got := rowsTouched(col.Mask, 3, 1); got != 3 {
		t.Fatalf("rowsTouched(col) = %d", got)
	}
	oneRow := pattern.New(3, 3, 4, 5, 0) // rows {0,1}
	if got := rowsTouched(oneRow.Mask, 3, 1); got != 2 {
		t.Fatalf("rowsTouched = %d", got)
	}
}

func TestNoLREKnownValue(t *testing.T) {
	// One filter, one kernel, 4-entry pattern, 4x4 output:
	// NoLRE = 4 weights * 16 outputs = 64 loads.
	c := &pruned.Conv{
		Name: "k", OutC: 1, InC: 1, KH: 3, KW: 3,
		OutH: 4, OutW: 4,
		Set: []pattern.Pattern{pattern.New(3, 1, 3, 4, 5)},
		IDs: []int{1},
	}
	s := Analyze(c, reorder.Identity(c), lr.Tuning{Unroll: [4]int{1, 1, 1, 1}, Tile: [3]int{1, 1, 1}, Permute: lr.PermCoCiHW, Threads: 1})
	if s.NoLRE != 64 {
		t.Fatalf("NoLRE = %d, want 64", s.NoLRE)
	}
	// KernelLRE with uh=uw=1: 2 rows * (1+2) scalars * 16 blocks = 96...
	// larger than naive for tiny unroll, which is why the tuner picks
	// uw>1; with uw=4: blocks = 4*1, rows 2, seg 6 -> 48 < 64.
	s4 := Analyze(c, reorder.Identity(c), lr.Tuning{Unroll: [4]int{1, 1, 4, 1}, Tile: [3]int{1, 1, 1}, Permute: lr.PermCoCiHW, Threads: 1})
	if s4.KernelLRE >= s4.NoLRE {
		t.Fatalf("kernel LRE with uw=4 should reduce loads: %d >= %d", s4.KernelLRE, s4.NoLRE)
	}
}

func TestFilterLRESharesAcrossFilters(t *testing.T) {
	// Two filters with identical (channel, pattern) kernels: with uoc=2,
	// filter-level LRE halves the loads relative to kernel-level.
	set := []pattern.Pattern{pattern.New(3, 1, 3, 4, 5)}
	c := &pruned.Conv{
		Name: "share", OutC: 2, InC: 1, KH: 3, KW: 3, OutH: 4, OutW: 4,
		Set: set, IDs: []int{1, 1},
	}
	tun := lr.Tuning{Unroll: [4]int{2, 1, 4, 1}, Tile: [3]int{1, 1, 1}, Permute: lr.PermCoHWCiBlock, Threads: 1}
	s := Analyze(c, reorder.Build(c), tun)
	if s.FilterLRE*2 != s.KernelLRE {
		t.Fatalf("filter LRE should halve loads: kernel %d, filter %d", s.KernelLRE, s.FilterLRE)
	}
}

func TestMonotonicityOnRealLayer(t *testing.T) {
	c := genLayer(1)
	s := AnalyzeDefault(c)
	if !(s.NoLRE > 0 && s.KernelLRE > 0 && s.FilterLRE > 0) {
		t.Fatalf("zero loads: %+v", s)
	}
	if s.KernelLRE > s.NoLRE {
		t.Fatalf("kernel LRE increased loads: %+v", s)
	}
	if s.FilterLRE > s.KernelLRE {
		t.Fatalf("filter LRE increased loads: %+v", s)
	}
	// Figure 14(b) shows a substantial (>1.5x) total reduction.
	if s.TotalReduction() < 1.5 {
		t.Fatalf("total reduction = %.2f, want >= 1.5", s.TotalReduction())
	}
}

func TestFKRImprovesFilterLRE(t *testing.T) {
	// Filter-level sharing depends on similar filters being adjacent,
	// which is exactly what FKR provides.
	c := genLayer(2)
	tun := lr.DefaultTuning()
	ident := Analyze(c, reorder.Identity(c), tun)
	fkr := Analyze(c, reorder.Build(c), tun)
	if fkr.FilterLRE > ident.FilterLRE {
		t.Fatalf("FKR should not reduce sharing: identity %d, fkr %d",
			ident.FilterLRE, fkr.FilterLRE)
	}
}

func TestUnrollWidthReducesLoads(t *testing.T) {
	c := genLayer(3)
	plan := reorder.Build(c)
	narrow := lr.DefaultTuning()
	narrow.Unroll[2] = 1
	wide := lr.DefaultTuning()
	wide.Unroll[2] = 8
	sn := Analyze(c, plan, narrow)
	sw := Analyze(c, plan, wide)
	if sw.KernelLRE >= sn.KernelLRE {
		t.Fatalf("wider ow unroll should reduce kernel loads: %d vs %d",
			sw.KernelLRE, sn.KernelLRE)
	}
}

// Property: load counts are positive and ordered for random layers/configs.
func TestAnalyzeProperty(t *testing.T) {
	m := model.VGG16("cifar10")
	l := m.ConvLayers()[1]
	f := func(seed int64, uhRaw, uwRaw, uocRaw uint8) bool {
		c := pruned.Generate(l, pattern.Canonical(6), 3.0, seed, false)
		tun := lr.DefaultTuning()
		tun.Unroll[1] = int(uhRaw%3) + 1
		tun.Unroll[2] = int(uwRaw%8) + 1
		tun.Unroll[0] = int(uocRaw%8) + 1
		s := Analyze(c, reorder.Build(c), tun)
		return s.NoLRE > 0 && s.FilterLRE > 0 && s.FilterLRE <= s.KernelLRE
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
