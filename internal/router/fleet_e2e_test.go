package router_test

// Fleet SLO end-to-end, loadgen-driven:
//
//  1. Scaling: aggregate fleet throughput through the router reaches >= 3x
//     a single-replica baseline at 4 replicas.
//  2. Chaos: killing one replica mid-run costs zero failed (non-shed)
//     requests — the router's passive ejection plus one-hop spill absorbs
//     the loss — while interactive p99 stays inside the SLO bound and no
//     replica ever executes an expired request.
//
// Both tests run the replicas behind routertest's capacity gate
// (MaxInflight=1, ServiceDelay=4ms => 250 rps per replica, deterministic).
// That choice is what makes the scaling assertion machine-independent: on a
// one-core CI runner, K in-process engines cannot speed up with CPU
// parallelism, so an ungated test would measure the host's core count.
// Gated, per-replica capacity is a constant and aggregate throughput
// measures exactly the router's contribution — whether it spreads models
// across the ring and fails over without dropping traffic. The gate sleeps
// while holding the replica's single slot, so the core stays free for the
// other replicas — the same concurrency shape as a real multi-host fleet.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"patdnn/internal/loadgen"
	"patdnn/internal/router"
	"patdnn/internal/router/routertest"
)

const (
	e2eServiceDelay = 4 * time.Millisecond
	e2eStreams      = 4
	e2eRequests     = 40 // per stream, request-bounded scaling runs
)

// pickCoveringModels returns one registry-legal model name per replica,
// each owned (on the router's ring) by a distinct replica — the workload
// shape that lets a consistent-hashing fleet scale, since one model alone
// is pinned to one replica by design.
func pickCoveringModels(t *testing.T, urls []string, vnodes int) []string {
	t.Helper()
	ring := router.NewRing(urls, vnodes)
	byOwner := map[string]string{}
	for i := 0; len(byOwner) < len(urls) && i < 65536; i++ {
		name := fmt.Sprintf("m%05d", i)
		owner := ring.Pick(name + "\x00")
		if _, ok := byOwner[owner]; !ok {
			byOwner[owner] = name
		}
	}
	if len(byOwner) < len(urls) {
		t.Fatalf("could not find names covering all %d replicas", len(urls))
	}
	names := make([]string, 0, len(urls))
	for _, u := range urls {
		names = append(names, byOwner[u])
	}
	return names
}

// e2eFleet stands up n gated replicas with the e2eStreams workload models
// registered and warmed, plus a router front door; returns the front URL
// and the model names.
func e2eFleet(t *testing.T, n int, routerCfg router.Config) (*routertest.Fleet, *router.Router, string, []string) {
	t.Helper()
	fleet := routertest.NewFleet(t, routertest.Options{
		Replicas:     n,
		WithRegistry: true,
		MaxInflight:  1,
		ServiceDelay: e2eServiceDelay,
	})
	var names []string
	if n >= e2eStreams {
		names = pickCoveringModels(t, fleet.URLs(), routerCfg.VNodes)
	} else {
		// Baseline fleets: same stream count, any names (all co-located).
		for i := 0; i < e2eStreams; i++ {
			names = append(names, fmt.Sprintf("b%05d", i))
		}
	}
	fleet.RegisterTiny("v1", names...)
	fleet.WaitReady(15 * time.Second)

	routerCfg.Replicas = fleet.URLs()
	rt, err := router.New(routerCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	// Warm every model through the router so measurements exclude first
	// -request compile latency.
	for _, name := range names {
		body, _ := json.Marshal(map[string]any{
			"network": name, "input": routertest.TinyInput(1),
		})
		resp, err := http.Post(front.URL+"/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm %s: HTTP %d", name, resp.StatusCode)
		}
	}
	return fleet, rt, front.URL, names
}

// runStreams drives one closed-loop interactive stream per model through
// the router and returns (results, aggregate throughput over wall time).
func runStreams(t *testing.T, frontURL string, names []string, requests int, duration, timeout time.Duration) ([]*loadgen.Result, float64) {
	t.Helper()
	specs := make([]loadgen.Spec, len(names))
	for i, name := range names {
		specs[i] = loadgen.Spec{
			Name: "stream_" + name, URL: frontURL, Network: name,
			Mode: "closed", Clients: 2,
			Requests: requests, Duration: duration, Timeout: timeout,
			Seed: int64(i + 1),
		}
	}
	start := time.Now()
	results, err := loadgen.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	totalOK := 0
	for _, r := range results {
		totalOK += r.OK
	}
	return results, float64(totalOK) / wall.Seconds()
}

func TestFleetThroughputScalesNearLinearly(t *testing.T) {
	cfg := router.Config{VNodes: 64, ProbeInterval: 100 * time.Millisecond, Logf: t.Logf}

	_, _, front1, names1 := e2eFleet(t, 1, cfg)
	res1, agg1 := runStreams(t, front1, names1, e2eRequests, 0, 0)
	for _, r := range res1 {
		if r.Failed != 0 || r.OK != e2eRequests {
			t.Fatalf("baseline stream %s: %+v", r.Name, r)
		}
	}

	_, _, front4, names4 := e2eFleet(t, 4, cfg)
	res4, agg4 := runStreams(t, front4, names4, e2eRequests, 0, 0)
	for _, r := range res4 {
		if r.Failed != 0 || r.OK != e2eRequests {
			t.Fatalf("fleet stream %s: %+v", r.Name, r)
		}
	}

	// Per-replica capacity is gated at 1/e2eServiceDelay rps, so with the 4
	// streams' models covering all 4 replicas, the fleet ceiling is 4x the
	// baseline's. >=3x leaves room for router hop + loopback overhead while
	// still proving near-linear spreading; anything near 1x would mean the
	// ring piled every model onto one replica.
	ratio := agg4 / agg1
	t.Logf("aggregate throughput: 1 replica %.0f rps, 4 replicas %.0f rps (%.2fx)", agg1, agg4, ratio)
	if ratio < 3.0 {
		t.Fatalf("4-replica fleet reached only %.2fx single-replica throughput (%.0f vs %.0f rps), want >= 3x",
			ratio, agg4, agg1)
	}
}

func TestKillOneReplicaMidRunZeroFailures(t *testing.T) {
	cfg := router.Config{
		VNodes:        64,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  20 * time.Millisecond,
		EjectAfter:    2,
		RecoverAfter:  time.Hour, // the dead replica stays dead
		Logf:          t.Logf,
	}
	fleet, rt, front, names := e2eFleet(t, 4, cfg)
	victim := fleet.Replica(router.NewRing(fleet.URLs(), cfg.VNodes).Pick(names[0] + "\x00"))

	// Duration-bounded streams with a real per-request deadline: the SLO
	// harness shape. The kill lands ~25% in.
	killTimer := time.AfterFunc(300*time.Millisecond, victim.Kill)
	defer killTimer.Stop()
	results, _ := runStreams(t, front, names, 0, 1200*time.Millisecond, 500*time.Millisecond)

	targets := map[string]bool{}
	for _, r := range results {
		// Zero failed: every non-shed request got an answer. The victim's
		// in-flight and subsequent requests must have spilled to the ring
		// sibling or been rerouted after ejection — never dropped.
		if r.Failed != 0 {
			t.Fatalf("stream %s: %d failed requests (first error: %s)", r.Name, r.Failed, r.FirstError)
		}
		if r.OK == 0 {
			t.Fatalf("stream %s completed nothing: %+v", r.Name, r)
		}
		// Interactive SLO holds through the chaos: generous against the
		// 4ms gated service time, but far below the 500ms deadline — a
		// router that stalled on the dead replica would blow it.
		if err := r.CheckP99(150 * time.Millisecond); err != nil {
			t.Fatalf("stream %s: %v", r.Name, err)
		}
		for target := range r.PerTarget {
			targets[target] = true
		}
	}
	// The victim's stream kept flowing, so >= 2 distinct replicas must
	// appear in the per-target attribution.
	if len(targets) < 2 {
		t.Fatalf("all traffic attributed to %v — failover invisible", targets)
	}

	// The router noticed: the victim is ejected with zero inflight.
	found := false
	for _, rv := range rt.Fleet().Replicas {
		if rv.URL == victim.URL() {
			found = true
			if rv.State != "ejected" || rv.Ejections < 1 {
				t.Fatalf("victim not ejected: %+v", rv)
			}
		}
	}
	if !found {
		t.Fatal("victim missing from fleet view")
	}

	// The deadline contract holds fleet-wide: no engine — including the
	// killed replica's, still readable in-process — ever executed an
	// expired request.
	var expiredExecuted uint64
	for _, rp := range fleet.Replicas {
		expiredExecuted += rp.Engine.Stats().ExpiredExecuted
	}
	if expiredExecuted != 0 {
		t.Fatalf("fleet executed %d expired requests, want 0", expiredExecuted)
	}
}
