// Package routertest is the in-process fleet harness behind the router's
// fault-injection and fleet-SLO tests: it stands up K *real* patdnn-serve
// replicas — full engines with compiled plans, class lanes, and optional
// shared-directory model registries — on ephemeral localhost ports, each
// wrapped in a scriptable fault gate (hang, TCP reset, 503, slow replies,
// slow /readyz) and an optional capacity gate.
//
// The capacity gate (MaxInflight + ServiceDelay) exists because scaling
// tests must be machine-independent: on a one-core CI runner, K in-process
// engines cannot exhibit CPU-parallel speedup, so "4 replicas ≈ 4× one
// replica" would silently depend on the host. Gating each replica to a
// deterministic service rate (MaxInflight slots × ServiceDelay per request)
// makes per-replica capacity a constant, so fleet throughput measures the
// one thing actually under test — whether the router spreads, spills, and
// fails over correctly — not how many cores the host happens to have.
package routertest

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"patdnn/internal/compiler/lr"
	"patdnn/internal/model"
	"patdnn/internal/modelfile"
	"patdnn/internal/pattern"
	"patdnn/internal/pruned"
	"patdnn/internal/registry"
	"patdnn/internal/serve"
)

// Fault is a scriptable failure mode injected in front of a replica's real
// serve handler.
type Fault int32

const (
	// FaultNone serves normally.
	FaultNone Fault = iota
	// FaultHang holds every request open until the client (or the router's
	// deadline) gives up — the stuck-process failure mode.
	FaultHang
	// FaultReset kills every connection with a TCP RST (SO_LINGER 0) — the
	// crashed-process / dropped-conntrack failure mode.
	FaultReset
	// Fault503 answers everything with 503 — the "engine closing" mode.
	Fault503
	// FaultSlowReply delays every response by the fleet's SlowDelay — the
	// degraded-but-alive mode (slow enough to trip probe timeouts).
	FaultSlowReply
	// FaultSlowReadyz delays only /readyz by SlowDelay: inference still
	// works, but health probes time out — the partial-failure mode that
	// distinguishes probe-driven ejection from data-path failures.
	FaultSlowReadyz
)

// Options configures a fleet.
type Options struct {
	// Replicas is the fleet size (default 3).
	Replicas int
	// Serve is the base engine config for every replica (zero value gets
	// Workers: 2).
	Serve serve.Config
	// WithRegistry attaches a shared models directory (one artifact store,
	// one registry per replica over it — the multi-reader deployment
	// shape). Required for RegisterTiny and rollout tests.
	WithRegistry bool
	// MaxInflight caps concurrent /infer requests inside each replica's
	// capacity gate (0 = no gate).
	MaxInflight int
	// ServiceDelay is the artificial minimum service time per gated /infer
	// (0 = none). With MaxInflight it fixes a replica's max throughput at
	// MaxInflight/ServiceDelay requests per second.
	ServiceDelay time.Duration
	// SlowDelay is the delay the Slow* faults inject (default 500ms).
	SlowDelay time.Duration
}

// Replica is one fleet member: a real serve engine behind a fault gate,
// listening on its own ephemeral port.
type Replica struct {
	Name     string
	Engine   *serve.Engine
	Registry *registry.Registry // nil without Options.WithRegistry

	t            testing.TB
	addr         string // host:port, stable across Kill/Restart
	inner        http.Handler
	fault        atomic.Int32
	slowDelay    time.Duration
	served       atomic.Uint64
	sem          chan struct{}
	serviceDelay time.Duration

	srv atomic.Pointer[http.Server]
}

// URL returns the replica's base URL.
func (rp *Replica) URL() string { return "http://" + rp.addr }

// SetFault scripts the replica's failure mode; FaultNone heals it.
func (rp *Replica) SetFault(f Fault) { rp.fault.Store(int32(f)) }

// Served reports how many /infer requests passed the gates and reached the
// real engine handler — the "zero traffic to an ejected replica" assertions
// diff this counter.
func (rp *Replica) Served() uint64 { return rp.served.Load() }

// Kill hard-stops the replica: the listener closes and every open
// connection is torn down, so new dials get connection-refused — the
// process-death failure mode. The engine itself stays alive (its stats
// remain readable in-process).
func (rp *Replica) Kill() {
	if srv := rp.srv.Swap(nil); srv != nil {
		srv.Close()
	}
}

// Restart brings a killed replica back on its original address.
func (rp *Replica) Restart() {
	if rp.srv.Load() != nil {
		return
	}
	ln, err := net.Listen("tcp", rp.addr)
	if err != nil {
		rp.t.Fatalf("routertest: restart %s: %v", rp.Name, err)
	}
	rp.start(ln)
}

func (rp *Replica) start(ln net.Listener) {
	srv := &http.Server{Handler: rp}
	rp.srv.Store(srv)
	go srv.Serve(ln)
}

// ServeHTTP is the gate chain: fault gate, then capacity gate (on /infer),
// then the real serve handler.
func (rp *Replica) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch Fault(rp.fault.Load()) {
	case FaultHang:
		<-r.Context().Done()
		return
	case FaultReset:
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("routertest: ResponseWriter is not a Hijacker")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetLinger(0) // unsent-data discard => RST on close
		}
		conn.Close()
		return
	case Fault503:
		http.Error(w, `{"error":"routertest: injected 503"}`, http.StatusServiceUnavailable)
		return
	case FaultSlowReply:
		sleepOrDone(r, rp.slowDelay)
	case FaultSlowReadyz:
		if r.URL.Path == "/readyz" {
			sleepOrDone(r, rp.slowDelay)
		}
	}
	if r.URL.Path == "/infer" {
		if rp.sem != nil {
			select {
			case rp.sem <- struct{}{}:
				defer func() { <-rp.sem }()
			case <-r.Context().Done():
				// The caller's deadline died while queued at the gate; the
				// engine would answer 504 for the same reason.
				http.Error(w, `{"error":"routertest: deadline at capacity gate"}`, http.StatusGatewayTimeout)
				return
			}
			if rp.serviceDelay > 0 {
				sleepOrDone(r, rp.serviceDelay)
			}
		}
		rp.served.Add(1)
	}
	rp.inner.ServeHTTP(w, r)
}

func sleepOrDone(r *http.Request, d time.Duration) {
	select {
	case <-time.After(d):
	case <-r.Context().Done():
	}
}

// Fleet is K replicas plus the shared model store.
type Fleet struct {
	T         testing.TB
	Replicas  []*Replica
	ModelsDir string // shared artifact directory ("" without registries)
}

// NewFleet stands up the replicas (and their registries) and tears
// everything down in t.Cleanup.
func NewFleet(t testing.TB, opts Options) *Fleet {
	t.Helper()
	if opts.Replicas <= 0 {
		opts.Replicas = 3
	}
	if opts.Serve.Workers == 0 {
		opts.Serve.Workers = 2
	}
	if opts.SlowDelay <= 0 {
		opts.SlowDelay = 500 * time.Millisecond
	}
	f := &Fleet{T: t}
	if opts.WithRegistry {
		f.ModelsDir = t.TempDir()
	}
	for i := 0; i < opts.Replicas; i++ {
		rp := &Replica{
			Name:         fmt.Sprintf("replica-%d", i),
			t:            t,
			slowDelay:    opts.SlowDelay,
			serviceDelay: opts.ServiceDelay,
		}
		if opts.MaxInflight > 0 {
			rp.sem = make(chan struct{}, opts.MaxInflight)
		}
		rp.Engine = serve.New(opts.Serve)
		t.Cleanup(func() { rp.Engine.Close() })
		if opts.WithRegistry {
			reg, err := rp.Engine.WithRegistry(registry.Config{Dir: f.ModelsDir, Poll: -1})
			if err != nil {
				t.Fatalf("routertest: registry for %s: %v", rp.Name, err)
			}
			rp.Registry = reg
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("routertest: listen: %v", err)
		}
		rp.addr = ln.Addr().String()
		rp.inner = serve.NewHandler(rp.Engine, rp.Registry, rp.Name)
		rp.start(ln)
		t.Cleanup(rp.Kill)
		f.Replicas = append(f.Replicas, rp)
	}
	return f
}

// URLs returns every replica's base URL in fleet order.
func (f *Fleet) URLs() []string {
	urls := make([]string, len(f.Replicas))
	for i, rp := range f.Replicas {
		urls[i] = rp.URL()
	}
	return urls
}

// Replica returns the fleet member listening at url (as reported by URLs).
func (f *Fleet) Replica(url string) *Replica {
	for _, rp := range f.Replicas {
		if rp.URL() == url {
			return rp
		}
	}
	f.T.Fatalf("routertest: no replica at %s", url)
	return nil
}

// RegisterTiny writes a tiny two-conv artifact (version ver) into the
// shared store under each name and rescans every live replica's registry,
// so the names become servable fleet-wide. Registry-backed names (rather
// than the generator's fixed set) let tests pick names that hash wherever
// the ring needs them.
func (f *Fleet) RegisterTiny(ver string, names ...string) {
	f.T.Helper()
	if f.ModelsDir == "" {
		f.T.Fatal("routertest: RegisterTiny needs Options.WithRegistry")
	}
	for i, name := range names {
		WriteTinyArtifact(f.T, f.ModelsDir, name, ver, int64(1000+i))
	}
	for _, rp := range f.Replicas {
		if err := rp.Registry.Scan(); err != nil {
			f.T.Fatalf("routertest: scan %s: %v", rp.Name, err)
		}
	}
}

// TinyInput returns a deterministic input for the tiny artifact (and the
// generator's tiny test model): 4 channels of 12x12.
func TinyInput(seed int) []float32 {
	in := make([]float32, 4*12*12)
	for i := range in {
		in[i] = float32((i*31+seed*17)%13) / 13
	}
	return in
}

// WriteTinyArtifact writes a tiny two-conv .patdnn artifact (4x12x12 input)
// named name@ver into dir. Seed varies the weights, so two versions of one
// model genuinely differ.
func WriteTinyArtifact(t testing.TB, dir, name, ver string, seed int64) string {
	t.Helper()
	set := pattern.Canonical(8)
	layers := []*model.Layer{
		{Name: "c1", Kind: model.Conv, InC: 4, OutC: 8, KH: 3, KW: 3,
			Stride: 1, Pad: 1, Groups: 1, InH: 12, InW: 12, OutH: 12, OutW: 12},
		{Name: "c2", Kind: model.Conv, InC: 8, OutC: 8, KH: 3, KW: 3,
			Stride: 1, Pad: 1, Groups: 1, InH: 6, InW: 6, OutH: 6, OutW: 6},
	}
	rng := rand.New(rand.NewSource(seed))
	file := &modelfile.File{LR: &lr.Representation{Model: "tiny-cnn", Device: "CPU"}}
	for i, l := range layers {
		c := pruned.Generate(l, set, 2, seed+int64(i), true)
		bias := make([]float32, c.OutC)
		for j := range bias {
			bias[j] = float32(rng.NormFloat64()) * 0.1
		}
		file.Layers = append(file.Layers, modelfile.Layer{Conv: c, Bias: bias})
	}
	path := filepath.Join(dir, registry.FileName(name, ver))
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := modelfile.Write(fh, file); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	mt := time.Unix(1700000000+seed, seed)
	if err := os.Chtimes(path, mt, mt); err != nil {
		t.Fatal(err)
	}
	return path
}

// WaitReady polls every live replica's /readyz until it answers 200 or the
// deadline passes — tests call it after RegisterTiny plus a warming request
// set so measurements never include compile latency.
func (f *Fleet) WaitReady(timeout time.Duration) {
	f.T.Helper()
	deadline := time.Now().Add(timeout)
	for _, rp := range f.Replicas {
		for {
			resp, err := http.Get(rp.URL() + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				f.T.Fatalf("routertest: %s not ready after %v", rp.Name, timeout)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
