package router_test

// Fleet-level control plane: operator drain/undrain shifts traffic off a
// replica without ejecting it, and /fleet/rollout extends the registry's
// canary weights fleet-wide — drain a replica, wait for its in-flight
// requests to finish, shift its registry route, undrain, next replica.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"patdnn/internal/router"
	"patdnn/internal/router/routertest"
)

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// inferVersion posts one inference and returns (status, replica, version).
func inferVersion(t *testing.T, routerURL, model string) (int, string, string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"network": model, "input": routertest.TinyInput(1), "timeout_ms": 2000,
	})
	resp, err := http.Post(routerURL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r struct {
		Version string `json:"version"`
	}
	json.NewDecoder(resp.Body).Decode(&r)
	return resp.StatusCode, resp.Header.Get("X-Patdnn-Replica"), r.Version
}

func TestDrainShiftsTrafficWithoutEjection(t *testing.T) {
	fleet := routertest.NewFleet(t, routertest.Options{Replicas: 2, WithRegistry: true})
	owner := fleet.Replicas[0]
	model := pickOwnedModel(t, fleet.URLs(), 64, owner.URL())
	fleet.RegisterTiny("v1", model)
	fleet.WaitReady(10 * time.Second)

	rt, err := router.New(router.Config{
		Replicas: fleet.URLs(), VNodes: 64,
		ProbeInterval: 20 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	if _, by, _ := inferVersion(t, front.URL, model); by != owner.Name {
		t.Fatalf("pre-drain served by %q, want owner %s", by, owner.Name)
	}

	status, _ := postJSON(t, front.URL+"/fleet/drain", map[string]string{"replica": owner.URL()})
	if status != 200 {
		t.Fatalf("drain: HTTP %d", status)
	}
	for i := 0; i < 10; i++ {
		if _, by, _ := inferVersion(t, front.URL, model); by == owner.Name {
			t.Fatalf("request %d served by drained replica", i)
		}
	}
	// Drain is operator intent, not failure: the replica stays healthy.
	for _, rv := range rt.Fleet().Replicas {
		if rv.URL == owner.URL() {
			if rv.State != "healthy" || !rv.Drained || rv.Ejections != 0 {
				t.Fatalf("drained replica state: %+v", rv)
			}
		}
	}

	status, _ = postJSON(t, front.URL+"/fleet/undrain", map[string]string{"replica": owner.URL()})
	if status != 200 {
		t.Fatalf("undrain: HTTP %d", status)
	}
	if _, by, _ := inferVersion(t, front.URL, model); by != owner.Name {
		t.Fatalf("post-undrain served by %q, want owner back", by)
	}

	// Unknown replica is a client error, not a silent no-op.
	if status, _ := postJSON(t, front.URL+"/fleet/drain", map[string]string{"replica": "http://nope:1"}); status != 404 {
		t.Fatalf("drain of unknown replica: HTTP %d, want 404", status)
	}
}

func TestFleetRolloutShiftsCanaryWeightsEverywhere(t *testing.T) {
	fleet := routertest.NewFleet(t, routertest.Options{Replicas: 2, WithRegistry: true})
	fleet.RegisterTiny("v1", "roll")
	fleet.RegisterTiny("v2", "roll")
	fleet.WaitReady(10 * time.Second)

	rt, err := router.New(router.Config{
		Replicas: fleet.URLs(), VNodes: 64,
		ProbeInterval: 20 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Unrouted, the bare name resolves to the latest version.
	if status, _, ver := inferVersion(t, front.URL, "roll"); status != 200 || ver != "v2" {
		t.Fatalf("pre-rollout: status=%d version=%q, want 200/v2", status, ver)
	}

	status, out := postJSON(t, front.URL+"/fleet/rollout", map[string]any{
		"model": "roll", "weights": map[string]int{"v1": 1},
	})
	if status != 200 || out["ok"] != true {
		t.Fatalf("rollout: HTTP %d body %v", status, out)
	}

	// Every replica's registry now routes "roll" to v1 — including replicas
	// that don't currently own the model's ring slot.
	for _, rp := range fleet.Replicas {
		routes := rp.Registry.Routes()
		if len(routes["roll"]) == 0 {
			t.Fatalf("%s has no route for \"roll\" after rollout: %v", rp.Name, routes)
		}
	}
	for i := 0; i < 5; i++ {
		if status, _, ver := inferVersion(t, front.URL, "roll"); status != 200 || ver != "v1" {
			t.Fatalf("post-rollout request %d: status=%d version=%q, want 200/v1", i, status, ver)
		}
	}

	// Rolling back to "latest" (empty weights clears the route) works too.
	status, out = postJSON(t, front.URL+"/fleet/rollout", map[string]any{
		"model": "roll", "weights": map[string]int{},
	})
	if status != 200 || out["ok"] != true {
		t.Fatalf("rollback: HTTP %d body %v", status, out)
	}
	if status, _, ver := inferVersion(t, front.URL, "roll"); status != 200 || ver != "v2" {
		t.Fatalf("post-rollback: status=%d version=%q, want 200/v2", status, ver)
	}
}

func TestFleetRolloutSkipsEjectedReplica(t *testing.T) {
	fleet := routertest.NewFleet(t, routertest.Options{Replicas: 2, WithRegistry: true})
	fleet.RegisterTiny("v1", "roll")
	fleet.RegisterTiny("v2", "roll")
	fleet.WaitReady(10 * time.Second)

	rt, err := router.New(router.Config{
		Replicas: fleet.URLs(), VNodes: 64,
		ProbeInterval: 15 * time.Millisecond,
		ProbeTimeout:  50 * time.Millisecond,
		EjectAfter:    2,
		RecoverAfter:  time.Hour,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	dead := fleet.Replicas[1]
	dead.SetFault(routertest.Fault503)
	waitFleet(t, rt, dead.URL(), 5*time.Second, "ejected",
		func(rv router.ReplicaView) bool { return rv.State == "ejected" })

	// The rollout reports partial failure (502, ok=false) but still shifts
	// the live replica — one dead box must not block the fleet.
	status, out := postJSON(t, front.URL+"/fleet/rollout", map[string]any{
		"model": "roll", "weights": map[string]int{"v1": 1},
	})
	if status != http.StatusBadGateway || out["ok"] != false {
		t.Fatalf("rollout with ejected replica: HTTP %d body %v, want 502/ok=false", status, out)
	}
	if routes := fleet.Replicas[0].Registry.Routes(); len(routes["roll"]) == 0 {
		t.Fatal("live replica's route was not shifted")
	}
	if routes := dead.Registry.Routes(); len(routes["roll"]) != 0 {
		t.Fatal("ejected replica unexpectedly received the route shift")
	}
}
