package router

// The front-door proxy. POST /infer is the hot path: hash the request's
// (network, dataset) key onto the ring, forward to the primary replica, and
// — because /infer is idempotent (pure function of the request body) — retry
// exactly once on the ring sibling when the primary sheds (429), is closing
// (503), or the connection dies, provided enough of the request's own
// deadline budget remains to make the second attempt worth issuing.
// Everything else is control plane: fleet-wide /stats and /models
// aggregation, per-replica drain/undrain, and a rolling canary-weight
// rollout that drains each replica before shifting its registry routes.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"patdnn/internal/serve"
)

// Config configures a Router.
type Config struct {
	// Replicas lists the backend base URLs ("http://host:port"). Required.
	Replicas []string
	// VNodes is the virtual nodes per replica on the hash ring (default 128).
	VNodes int
	// ProbeInterval is the active /readyz check period (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 250ms); a hung
	// /readyz counts as a failure when it fires.
	ProbeTimeout time.Duration
	// EjectAfter is the consecutive-failure threshold that opens a
	// replica's breaker (default 3).
	EjectAfter int
	// RecoverAfter is how long an ejected replica cools off before a
	// half-open probe may close the breaker again (default 2s).
	RecoverAfter time.Duration
	// RetryBudget is the minimum remaining request deadline required to
	// attempt a spill retry (default 5ms): with less left than this, the
	// retry would expire in flight and only add load.
	RetryBudget time.Duration
	// Logf receives router events (ejections, recoveries, rollout steps).
	// Nil disables logging.
	Logf func(format string, args ...any)
	// Transport overrides the forwarding transport (tests inject faults
	// here); nil uses a keep-alive transport sized for fan-out.
	Transport http.RoundTripper
}

func (cfg Config) withDefaults() (Config, error) {
	if len(cfg.Replicas) == 0 {
		return cfg, errors.New("router: no replicas configured")
	}
	seen := map[string]bool{}
	for _, r := range cfg.Replicas {
		if r == "" {
			return cfg, errors.New("router: empty replica URL")
		}
		if seen[r] {
			return cfg, fmt.Errorf("router: duplicate replica %q", r)
		}
		seen[r] = true
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 128
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 250 * time.Millisecond
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = 3
	}
	if cfg.RecoverAfter <= 0 {
		cfg.RecoverAfter = 2 * time.Second
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 5 * time.Millisecond
	}
	return cfg, nil
}

// Router fronts a fleet of patdnn-serve replicas.
type Router struct {
	cfg         Config
	ring        *Ring
	replicas    map[string]*replica
	replicaList []*replica // ring-member order (sorted URLs)

	client      *http.Client // forwards; per-request deadlines via context
	probeClient *http.Client // probes; ProbeTimeout built in

	spills      atomic.Uint64 // spill retries attempted
	spillServed atomic.Uint64 // spill retries that produced a 200
	noEligible  atomic.Uint64 // requests refused: no routable replica
	proxied     atomic.Uint64 // total /infer requests through the front door
	closeOnce   sync.Once
	stop        chan struct{}
	wg          sync.WaitGroup
}

// New validates cfg, builds the ring, and starts the health prober.
func New(cfg Config) (*Router, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        2048,
			MaxIdleConnsPerHost: 2048,
			IdleConnTimeout:     30 * time.Second,
		}
	}
	rt := &Router{
		cfg:         cfg,
		ring:        NewRing(cfg.Replicas, cfg.VNodes),
		replicas:    make(map[string]*replica, len(cfg.Replicas)),
		client:      &http.Client{Transport: transport},
		probeClient: &http.Client{Transport: transport, Timeout: cfg.ProbeTimeout},
		stop:        make(chan struct{}),
	}
	for _, url := range rt.ring.Members() {
		rp := &replica{url: url}
		rt.replicas[url] = rp
		rt.replicaList = append(rt.replicaList, rp)
	}
	rt.wg.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Close stops the prober. In-flight forwards finish on their own deadlines.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

// Handler returns the router's HTTP API.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /infer", rt.handleInfer)
	mux.HandleFunc("GET /stats", rt.handleStats)
	mux.HandleFunc("GET /models", rt.handleModels)
	mux.HandleFunc("GET /fleet", rt.handleFleet)
	mux.HandleFunc("POST /fleet/drain", rt.handleDrain(true))
	mux.HandleFunc("POST /fleet/undrain", rt.handleDrain(false))
	mux.HandleFunc("POST /fleet/rollout", rt.handleRollout)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// The front door is ready when it can place traffic somewhere.
		n := 0
		for _, rp := range rt.replicaList {
			if rp.eligible() {
				n++
			}
		}
		status := http.StatusOK
		if n == 0 {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{"ready": n > 0, "eligible_replicas": n})
	})
	return mux
}

// inferKey is the slice of the /infer body the router needs: the hash key
// (model identity) and the deadline budget. The body itself is forwarded
// verbatim — the router never rewrites requests.
type inferKey struct {
	Network   string  `json:"network"`
	Dataset   string  `json:"dataset"`
	TimeoutMs float64 `json:"timeout_ms"`
}

// handleInfer is the hot path: hash, forward, spill once if shed.
func (rt *Router) handleInfer(w http.ResponseWriter, r *http.Request) {
	rt.proxied.Add(1)
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
		return
	}
	var key inferKey
	if err := json.Unmarshal(body, &key); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if key.Network == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing \"network\""))
		return
	}

	// The ring key pins a model (and dataset variant) to one replica so its
	// plan cache and batch lanes stay warm; version tags ride inside
	// Network ("name@version") and hash with it.
	ringKey := key.Network + "\x00" + key.Dataset
	var deadline time.Time
	ctx := r.Context()
	if key.TimeoutMs > 0 {
		timeout := time.Duration(key.TimeoutMs * float64(time.Millisecond))
		deadline = time.Now().Add(timeout)
		var cancel func()
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}

	candidates := rt.eligibleCandidates(ringKey)
	if len(candidates) == 0 {
		rt.noEligible.Add(1)
		httpError(w, http.StatusServiceUnavailable, errors.New("router: no eligible replica"))
		return
	}

	// Attempt 1: the key's owner. Attempt 2 (at most): the ring sibling —
	// one hop bounds the worst case to two backend timeouts and avoids
	// retry storms under fleet-wide overload.
	for attempt, rp := range candidates {
		if attempt > 1 {
			break
		}
		spill := attempt > 0
		if spill {
			// Only spend a second attempt when the request still has budget
			// to finish it; otherwise return the shed verbatim.
			if !deadline.IsZero() && time.Until(deadline) < rt.cfg.RetryBudget {
				break
			}
			rt.spills.Add(1)
			rp.spilled.Add(1)
		} else {
			rp.routed.Add(1)
		}
		rp.inflight.Add(1)
		resp, err := rt.forward(ctx, rp.url, r, body)
		if err != nil {
			rp.inflight.Add(-1)
			// Transport-level death (refused, reset, proxy-side deadline):
			// passive health signal. The prober will confirm, but counting
			// it here ejects a dead replica within EjectAfter requests
			// instead of waiting out probe intervals.
			if ctx.Err() == nil {
				if rp.recordFailure(rt.cfg.EjectAfter, time.Now()) {
					rt.logf("router: replica %s ejected (forward error: %v)", rp.url, err)
				}
				continue
			}
			// The request's own deadline died mid-flight: not the replica's
			// fault, and the client's answer is 504 either way.
			httpError(w, http.StatusGatewayTimeout, fmt.Errorf("router: deadline exceeded forwarding to %s", rp.url))
			return
		}
		if rt.shouldSpill(resp, spill) {
			drainBody(resp)
			rp.inflight.Add(-1)
			if resp.StatusCode == http.StatusServiceUnavailable {
				// 503 = engine closing/unready: a health signal, unlike 429.
				if rp.recordFailure(rt.cfg.EjectAfter, time.Now()) {
					rt.logf("router: replica %s ejected (503 on /infer)", rp.url)
				}
			}
			continue
		}
		rp.recordSuccess()
		copyResponse(w, resp)
		rp.inflight.Add(-1)
		if spill && resp.StatusCode == http.StatusOK {
			rt.spillServed.Add(1)
		}
		return
	}
	// Both attempts shed or died. 429 tells the client the fleet is
	// saturated — the same contract a single replica's shed has.
	httpError(w, http.StatusTooManyRequests, errors.New("router: all candidate replicas shed or unreachable"))
}

// shouldSpill reports whether resp justifies burning the one spill hop:
// sheds (429) and closing engines (503) do; everything else — including
// hard errors — is the model's real answer and proxies through. A response
// on the spill attempt itself never spills again.
func (rt *Router) shouldSpill(resp *http.Response, alreadySpilled bool) bool {
	if alreadySpilled {
		return false
	}
	return resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable
}

// eligibleCandidates walks the key's ring order keeping routable replicas.
func (rt *Router) eligibleCandidates(ringKey string) []*replica {
	var out []*replica
	for _, url := range rt.ring.Candidates(ringKey) {
		if rp := rt.replicas[url]; rp != nil && rp.eligible() {
			out = append(out, rp)
		}
	}
	return out
}

// forward proxies one /infer body to a replica.
func (rt *Router) forward(ctx context.Context, url string, orig *http.Request, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/infer", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := orig.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	return rt.client.Do(req)
}

// copyResponse relays a backend response — status, content type, the
// replica-attribution header, body — to the client.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if id := resp.Header.Get(serve.ReplicaHeader); id != "" {
		w.Header().Set(serve.ReplicaHeader, id)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func drainBody(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// --- fleet view -----------------------------------------------------------

// ReplicaView is one replica's row in GET /fleet.
type ReplicaView struct {
	URL            string `json:"url"`
	State          string `json:"state"`
	Drained        bool   `json:"drained"`
	Failures       int    `json:"consecutive_failures"`
	Inflight       int64  `json:"inflight"`
	Routed         uint64 `json:"routed"`
	Spilled        uint64 `json:"spilled"`
	Probes         uint64 `json:"probes"`
	HalfOpenProbes uint64 `json:"half_open_probes"`
	Ejections      uint64 `json:"ejections"`
	Recoveries     uint64 `json:"recoveries"`
}

// FleetView is the GET /fleet response.
type FleetView struct {
	Replicas    []ReplicaView `json:"replicas"`
	Proxied     uint64        `json:"proxied"`
	Spills      uint64        `json:"spills"`
	SpillServed uint64        `json:"spill_served"`
	NoEligible  uint64        `json:"no_eligible"`
}

// Fleet snapshots the router's per-replica routing state.
func (rt *Router) Fleet() FleetView {
	fv := FleetView{
		Proxied:     rt.proxied.Load(),
		Spills:      rt.spills.Load(),
		SpillServed: rt.spillServed.Load(),
		NoEligible:  rt.noEligible.Load(),
	}
	for _, rp := range rt.replicaList {
		state, drained, failures := rp.snapshot()
		fv.Replicas = append(fv.Replicas, ReplicaView{
			URL:            rp.url,
			State:          state.String(),
			Drained:        drained,
			Failures:       failures,
			Inflight:       rp.inflight.Load(),
			Routed:         rp.routed.Load(),
			Spilled:        rp.spilled.Load(),
			Probes:         rp.probes.Load(),
			HalfOpenProbes: rp.halfOpenProbes.Load(),
			Ejections:      rp.ejections.Load(),
			Recoveries:     rp.recoveries.Load(),
		})
	}
	return fv
}

func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Fleet())
}

// --- fleet-wide stats & models -------------------------------------------

// ReplicaStats is one replica's slice of the fleet /stats aggregate.
type ReplicaStats struct {
	URL     string       `json:"url"`
	State   string       `json:"state"`
	Drained bool         `json:"drained,omitempty"`
	Error   string       `json:"error,omitempty"` // stats fetch failure
	Stats   *serve.Stats `json:"stats,omitempty"`
}

// FleetStats is the GET /stats response: per-replica snapshots plus
// fleet-level sums of the engine counters that are meaningful added up.
// Because serve.Stats.Admitted is monotonic across each replica's
// hot-reload swaps, the fleet totals here are monotonic too (modulo
// unreachable replicas, which are reported rather than silently zeroed).
type FleetStats struct {
	Replicas []ReplicaStats `json:"replicas"`
	// Aggregates over reachable replicas:
	Requests        uint64            `json:"requests"`
	Errors          uint64            `json:"errors"`
	Shed            uint64            `json:"shed"`
	DeadlineSheds   uint64            `json:"deadline_sheds"`
	ExpiredExecuted uint64            `json:"expired_executed"`
	Batches         uint64            `json:"batches"`
	Admitted        map[string]uint64 `json:"admitted,omitempty"`
	ShedByClass     map[string]uint64 `json:"shed_by_class,omitempty"`
	Unreachable     int               `json:"unreachable"`
	// Router-level counters:
	Proxied     uint64 `json:"proxied"`
	Spills      uint64 `json:"spills"`
	SpillServed uint64 `json:"spill_served"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	fs := FleetStats{
		Admitted:    map[string]uint64{},
		ShedByClass: map[string]uint64{},
		Proxied:     rt.proxied.Load(),
		Spills:      rt.spills.Load(),
		SpillServed: rt.spillServed.Load(),
	}
	rows := rt.fanout(r, "/stats")
	for i, rp := range rt.replicaList {
		state, drained, _ := rp.snapshot()
		row := ReplicaStats{URL: rp.url, State: state.String(), Drained: drained}
		if rows[i].err != nil {
			row.Error = rows[i].err.Error()
			fs.Unreachable++
		} else {
			var s serve.Stats
			if err := json.Unmarshal(rows[i].body, &s); err != nil {
				row.Error = fmt.Sprintf("decode stats: %v", err)
				fs.Unreachable++
			} else {
				row.Stats = &s
				fs.Requests += s.Requests
				fs.Errors += s.Errors
				fs.Shed += s.Shed
				fs.DeadlineSheds += s.DeadlineSheds
				fs.ExpiredExecuted += s.ExpiredExecuted
				fs.Batches += s.Batches
				for k, n := range s.Admitted {
					fs.Admitted[k] += n
				}
				for k, n := range s.ShedByClass {
					fs.ShedByClass[k] += n
				}
			}
		}
		fs.Replicas = append(fs.Replicas, row)
	}
	writeJSON(w, http.StatusOK, fs)
}

// FleetModel is one model as seen fleet-wide: the serve.ModelInfo plus
// which replicas report it.
type FleetModel struct {
	serve.ModelInfo
	Replicas []string `json:"replicas"`
}

func (rt *Router) handleModels(w http.ResponseWriter, r *http.Request) {
	rows := rt.fanout(r, "/models")
	merged := map[string]*FleetModel{}
	var unreachable []string
	for i, rp := range rt.replicaList {
		if rows[i].err != nil {
			unreachable = append(unreachable, rp.url)
			continue
		}
		var models []serve.ModelInfo
		if err := json.Unmarshal(rows[i].body, &models); err != nil {
			unreachable = append(unreachable, rp.url)
			continue
		}
		for _, m := range models {
			// Identity excludes volatile per-replica fields (residency,
			// last-used): the fleet view is "what is servable where".
			key := m.Network + "\x00" + m.Dataset + "\x00" + m.Version + "\x00" + m.Level + "\x00" + m.Source
			fm := merged[key]
			if fm == nil {
				fm = &FleetModel{ModelInfo: m}
				merged[key] = fm
			}
			fm.Replicas = append(fm.Replicas, rp.url)
		}
	}
	out := make([]FleetModel, 0, len(merged))
	for _, fm := range merged {
		sort.Strings(fm.Replicas)
		out = append(out, *fm)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Network != b.Network {
			return a.Network < b.Network
		}
		if a.Dataset != b.Dataset {
			return a.Dataset < b.Dataset
		}
		return a.Version < b.Version
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"models": out, "unreachable": unreachable,
	})
}

// fanoutRow is one replica's raw response in a control-plane fan-out.
type fanoutRow struct {
	body []byte
	err  error
}

// fanout GETs path on every replica concurrently (2s cap per call) and
// returns rows in replicaList order. Ejected replicas are still asked —
// control-plane reads are cheap and an unreachable one reports as such.
func (rt *Router) fanout(r *http.Request, path string) []fanoutRow {
	rows := make([]fanoutRow, len(rt.replicaList))
	var wg sync.WaitGroup
	for i, rp := range rt.replicaList {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+path, nil)
			if err != nil {
				rows[i].err = err
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				rows[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
				rows[i].err = fmt.Errorf("%s%s: HTTP %d: %s", url, path, resp.StatusCode, bytes.TrimSpace(body))
				return
			}
			rows[i].body, rows[i].err = io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		}(i, rp.url)
	}
	wg.Wait()
	return rows
}

// --- drain / rollout ------------------------------------------------------

type drainRequest struct {
	Replica string `json:"replica"`
}

func (rt *Router) handleDrain(drain bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req drainRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		rp := rt.replicas[req.Replica]
		if rp == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("router: unknown replica %q", req.Replica))
			return
		}
		rp.setDrained(drain)
		rt.logf("router: replica %s drained=%v", rp.url, drain)
		writeJSON(w, http.StatusOK, map[string]any{"replica": rp.url, "drained": drain})
	}
}

// rolloutRequest is the POST /fleet/rollout body: shift model's canary
// weights on every replica, one replica at a time, draining each first so
// in-flight requests finish on the old routing before the shift.
type rolloutRequest struct {
	Model   string         `json:"model"`
	Weights map[string]int `json:"weights"`
	// DrainTimeoutMs bounds the wait for a replica's in-flight requests to
	// finish (default 5000).
	DrainTimeoutMs float64 `json:"drain_timeout_ms"`
}

// rolloutStep is one replica's outcome in the rollout response.
type rolloutStep struct {
	Replica string `json:"replica"`
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	Skipped bool   `json:"skipped,omitempty"` // ejected replica: no route shift possible
}

func (rt *Router) handleRollout(w http.ResponseWriter, r *http.Request) {
	var req rolloutRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Model == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing \"model\""))
		return
	}
	drainTimeout := 5 * time.Second
	if req.DrainTimeoutMs > 0 {
		drainTimeout = time.Duration(req.DrainTimeoutMs * float64(time.Millisecond))
	}
	routeBody, err := json.Marshal(map[string]any{"model": req.Model, "weights": req.Weights})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	steps := make([]rolloutStep, 0, len(rt.replicaList))
	allOK := true
	for _, rp := range rt.replicaList {
		step := rolloutStep{Replica: rp.url}
		if state, _, _ := rp.snapshot(); state == StateEjected {
			// An ejected replica can't take the route update; it re-joins
			// with stale weights, which the operator must re-apply. Failing
			// the whole rollout for one dead box would block the fleet.
			step.Skipped = true
			step.Error = "replica ejected; weights not applied"
			allOK = false
			steps = append(steps, step)
			continue
		}
		step.OK, step.Error = rt.rolloutOne(r, rp, routeBody, drainTimeout)
		if !step.OK {
			allOK = false
		}
		steps = append(steps, step)
	}
	status := http.StatusOK
	if !allOK {
		status = http.StatusBadGateway
	}
	writeJSON(w, status, map[string]any{"ok": allOK, "model": req.Model, "steps": steps})
}

// rolloutOne performs drain → wait-idle → shift-route → undrain on one
// replica. The drain is always lifted, even on failure — leaving a replica
// silently out of rotation is worse than a failed weight shift.
func (rt *Router) rolloutOne(r *http.Request, rp *replica, routeBody []byte, drainTimeout time.Duration) (ok bool, errMsg string) {
	rp.setDrained(true)
	rt.logf("router: rollout draining %s", rp.url)
	defer func() {
		rp.setDrained(false)
		rt.logf("router: rollout undrained %s", rp.url)
	}()

	idleBy := time.Now().Add(drainTimeout)
	for rp.inflight.Load() > 0 {
		if time.Now().After(idleBy) {
			return false, fmt.Sprintf("drain timed out with %d in flight", rp.inflight.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rp.url+"/registry/route", bytes.NewReader(routeBody))
	if err != nil {
		return false, err.Error()
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, fmt.Sprintf("route shift: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	drainBody(resp)
	rt.logf("router: rollout shifted weights on %s", rp.url)
	return true, ""
}
