// Package router is the fleet front door: it consistent-hashes inference
// requests onto a set of patdnn-serve replicas, health-checks each replica
// with an ejection/half-open-recovery state machine, retries idempotent
// sheds on a ring sibling (spill-on-shed), and aggregates the fleet's
// /stats and /models views behind one endpoint.
//
// The design target is the PatDNN serving story scaled out: each replica is
// a full compressed-model engine with its own plan cache and class lanes;
// the router's job is purely placement and failure handling, never compute.
// Consistent hashing keeps each (model, dataset) key pinned to one replica
// so its plan cache and batcher stay warm — spreading one model across the
// fleet would multiply compile work and shrink every batch.
package router

import "sort"

// Ring is a consistent-hash ring over replica URLs with virtual nodes.
// Hashing is FNV-1a 64-bit over explicit strings, so placement is fully
// deterministic across processes and restarts: a router restart (or a
// second router instance over the same replica list) routes every key
// identically. Construction order of members does not matter.
type Ring struct {
	vnodes  int
	members []string // sorted, deduplicated
	points  []ringPoint
}

type ringPoint struct {
	hash   uint64
	member string
}

// fnv64a is FNV-1a 64-bit, inlined so the hash is a fixed part of the wire
// contract (hash/fnv would work today, but spelling it out pins it).
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// vnodeLabel derives the i-th virtual node's hash input for a member.
func vnodeLabel(member string, i int) string {
	// member#i with a manual itoa keeps this allocation-light and obvious.
	buf := make([]byte, 0, len(member)+6)
	buf = append(buf, member...)
	buf = append(buf, '#')
	if i == 0 {
		buf = append(buf, '0')
	} else {
		var digits [10]byte
		n := 0
		for i > 0 {
			digits[n] = byte('0' + i%10)
			i /= 10
			n++
		}
		for n > 0 {
			n--
			buf = append(buf, digits[n])
		}
	}
	return string(buf)
}

// NewRing builds a ring over members with vnodes virtual nodes each
// (vnodes <= 0 selects the default, 128). Duplicate members collapse.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 128
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{fnv64a(vnodeLabel(m, i)), m})
		}
	}
	// Ties (distinct vnode labels hashing equal) are broken by member name so
	// two rings built from any permutation of the same set agree exactly.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member set, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Pick returns the member owning key: the first virtual node clockwise from
// the key's hash. Empty rings return "".
func (r *Ring) Pick(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].member
}

// Candidates returns every member in the key's clockwise walk order, primary
// first. The second entry is the spill sibling: the replica that would own
// the key if the primary left the ring, so shed traffic lands where the key
// would live anyway.
func (r *Ring) Candidates(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	for i, start := 0, r.search(key); len(out) < len(r.members); i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// search finds the index of the first point with hash >= hash(key),
// wrapping to 0 past the last point.
func (r *Ring) search(key string) int {
	h := fnv64a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
